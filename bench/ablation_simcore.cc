// Microbenchmark (google-benchmark): raw event throughput of the simulator
// core, the figure that bounds how many packet-events per wall-second the
// experiment harness can process.

#include <benchmark/benchmark.h>

#include "sim/rng.h"
#include "sim/simulator.h"

using namespace greencc::sim;

namespace {

void BM_ScheduleAndRun(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < batch; ++i) {
      sim.schedule(SimTime::nanoseconds(i % 977), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ScheduleAndRun)->Arg(1'000)->Arg(100'000);

void BM_EventChain(benchmark::State& state) {
  // Self-rescheduling event: the latency-critical simulator path.
  for (auto _ : state) {
    Simulator sim;
    int remaining = 10'000;
    std::function<void()> hop = [&] {
      if (--remaining > 0) sim.schedule(SimTime::nanoseconds(10), hop);
    };
    sim.schedule(SimTime::nanoseconds(10), hop);
    sim.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventChain);

void BM_TimerRearm(benchmark::State& state) {
  // The per-ACK RTO re-arm pattern: must be O(1)-ish, not one event each.
  for (auto _ : state) {
    Simulator sim;
    Timer timer(sim, [] {});
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule(SimTime::nanoseconds(i), [&] {
        timer.arm(SimTime::milliseconds(200));
      });
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_TimerRearm);

void BM_RngU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngU64);

}  // namespace

BENCHMARK_MAIN();
