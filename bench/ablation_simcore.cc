// Microbenchmark (google-benchmark): raw event throughput of the simulator
// core, the figure that bounds how many packet-events per wall-second the
// experiment harness can process.
//
// Beyond the google-benchmark suite, two modes support the committed
// BENCH_fleet.json baseline (written by ext_fleet --json):
//
//   ablation_simcore --check-baseline PATH
//       Re-measure the hold-model throughput of both event-queue kinds at
//       10k pending events and exit non-zero if (a) the calendar queue has
//       regressed more than 20% below the committed events/sec, or (b) its
//       speedup over the binary heap fell below 3x — the floor the
//       calendar-queue refactor is accountable to. This is the perf smoke
//       ctest runs (label `perf`, RUN_SERIAL so nothing steals its cores).
//
//   ablation_simcore --hold
//       Print the hold-model numbers without judging them.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "queue_hold.h"
#include "sim/rng.h"
#include "sim/simulator.h"

using namespace greencc::sim;

namespace {

void BM_ScheduleAndRun(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < batch; ++i) {
      sim.schedule(SimTime::nanoseconds(i % 977), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ScheduleAndRun)->Arg(1'000)->Arg(100'000);

void BM_EventChain(benchmark::State& state) {
  // Self-rescheduling event: the latency-critical simulator path.
  for (auto _ : state) {
    Simulator sim;
    int remaining = 10'000;
    std::function<void()> hop = [&] {
      if (--remaining > 0) sim.schedule(SimTime::nanoseconds(10), hop);
    };
    sim.schedule(SimTime::nanoseconds(10), hop);
    sim.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventChain);

void BM_TimerRearm(benchmark::State& state) {
  // The per-ACK RTO re-arm pattern: with true cancellation this reclaims
  // every superseded event instead of leaking it into the heap.
  for (auto _ : state) {
    Simulator sim;
    Timer timer(sim, [] {});
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule(SimTime::nanoseconds(i), [&] {
        timer.arm(SimTime::milliseconds(200));
      });
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_TimerRearm);

// The hold model (pop-min, push-replacement at steady pending count) for
// both queue kinds — the binary heap pays log2(pending) sift levels per
// op where the calendar queue pays O(1), so the gap widens with the
// pending count (fleet scale = flows' worth of pending timers).
void BM_HoldPattern(benchmark::State& state) {
  const auto kind = state.range(0) == 0 ? EventQueueKind::kCalendar
                                        : EventQueueKind::kBinaryHeap;
  const auto pending = static_cast<std::size_t>(state.range(1));
  auto q = greencc::bench::make_hold_queue(kind);
  Rng rng(1);
  std::uint64_t seq = greencc::bench::hold_prefill(*q, rng, pending);
  for (auto _ : state) {
    greencc::bench::hold_step(*q, rng, seq);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(q->name());
}
BENCHMARK(BM_HoldPattern)
    ->ArgsProduct({{0, 1}, {1'000, 10'000, 100'000}});

void BM_RngU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngU64);

constexpr std::size_t kGatePending = 10'000;
constexpr std::size_t kGateOps = 2'000'000;
constexpr int kGateReps = 5;             ///< best-of-n timed passes per kind
constexpr double kMaxRegression = 0.20;  ///< fail below 80% of baseline
constexpr double kMinSpeedup = 3.0;      ///< calendar vs heap floor

/// Pull "key": <number> out of the committed JSON baseline. The schema is
/// written by ext_fleet's JsonWriter (flat keys, no nesting tricks), so a
/// text scan is sufficient and keeps the gate dependency-free.
bool json_number(const std::string& text, const std::string& key,
                 double* out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::atof(text.c_str() + pos + needle.size());
  return true;
}

int run_baseline_gate(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "simcore-gate: cannot read baseline %s\n", path);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  double committed = 0.0;
  if (!json_number(buf.str(), "calendar_events_per_sec", &committed) ||
      committed <= 0) {
    std::fprintf(stderr,
                 "simcore-gate: baseline %s has no calendar_events_per_sec\n",
                 path);
    return 2;
  }

  const double floor = committed * (1.0 - kMaxRegression);
  // A wall-clock gate on a shared machine will occasionally catch a noisy
  // window no matter how careful the measurement; one re-measure before
  // failing turns a ~5% flake rate into a negligible one without letting a
  // real regression through (a real regression fails both attempts).
  for (int attempt = 0;; ++attempt) {
    const greencc::bench::HoldResult hold =
        greencc::bench::hold_head_to_head(kGatePending, kGateOps,
                                          /*seed=*/1, kGateReps);
    const double speedup = hold.speedup();
    std::printf(
        "simcore-gate: hold @%zu pending — calendar %.2fM/s (committed "
        "%.2fM/s, floor %.2fM/s), heap %.2fM/s, speedup %.2fx (floor %.1fx)\n",
        kGatePending, hold.calendar_eps / 1e6, committed / 1e6, floor / 1e6,
        hold.heap_eps / 1e6, speedup, kMinSpeedup);
    if (hold.calendar_eps >= floor && speedup >= kMinSpeedup) {
      std::printf("simcore-gate: OK\n");
      return 0;
    }
    if (attempt == 0) {
      std::printf("simcore-gate: below a floor — re-measuring once\n");
      continue;
    }
    if (hold.calendar_eps < floor) {
      std::fprintf(stderr,
                   "simcore-gate: FAIL — calendar throughput regressed "
                   ">%.0f%% vs committed baseline\n",
                   kMaxRegression * 100);
    }
    if (speedup < kMinSpeedup) {
      std::fprintf(stderr,
                   "simcore-gate: FAIL — calendar/heap speedup %.2fx below "
                   "%.1fx floor\n",
                   speedup, kMinSpeedup);
    }
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      return run_baseline_gate(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--hold") == 0) {
      for (std::size_t pending : {1'000u, 10'000u, 100'000u}) {
        const auto hold = greencc::bench::hold_head_to_head(pending, kGateOps);
        std::printf("hold @%6zu pending: calendar %8.2fM/s  heap %8.2fM/s  "
                    "speedup %5.2fx\n",
                    pending, hold.calendar_eps / 1e6, hold.heap_eps / 1e6,
                    hold.speedup());
      }
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
