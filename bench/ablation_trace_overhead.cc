// Microbenchmark (google-benchmark): cost of the tracing hooks on a full
// scenario run. The contract is that a traced-off run (no sink attached)
// pays only an untaken branch per potential event site — this bench is the
// guard that keeps that true, alongside ablation_simcore for the raw
// simulator core.
//
//   BM_ScenarioUntraced     — baseline, sink pointer nullptr everywhere
//   BM_ScenarioFilteredOut  — sink attached but mask selects nothing:
//                             the per-event branch is taken, emit() drops
//                             the event before formatting
//   BM_ScenarioCounted      — in-memory sink accepting every class

#include <benchmark/benchmark.h>

#include <memory>

#include "app/scenario.h"
#include "trace/trace.h"

using namespace greencc;

namespace {

// Big enough to overflow the bottleneck (drops, retransmits — the traced
// code paths), small enough for benchmark iterations.
std::unique_ptr<app::Scenario> make_scenario() {
  app::ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  auto scenario = std::make_unique<app::Scenario>(config);
  app::FlowSpec flow;
  flow.bytes = units::Bytes{25'000'000};
  scenario->add_flow(flow);
  return scenario;
}

void BM_ScenarioUntraced(benchmark::State& state) {
  for (auto _ : state) {
    auto scenario = make_scenario();
    const auto r = scenario->run();
    benchmark::DoNotOptimize(r.total_energy);
  }
}
BENCHMARK(BM_ScenarioUntraced)->Unit(benchmark::kMillisecond);

void BM_ScenarioFilteredOut(benchmark::State& state) {
  for (auto _ : state) {
    auto scenario = make_scenario();
    trace::VectorTraceSink sink(0);  // wants() nothing
    scenario->set_trace_sink(&sink);
    const auto r = scenario->run();
    benchmark::DoNotOptimize(r.total_energy);
    benchmark::DoNotOptimize(sink.events_emitted());
  }
}
BENCHMARK(BM_ScenarioFilteredOut)->Unit(benchmark::kMillisecond);

void BM_ScenarioCounted(benchmark::State& state) {
  for (auto _ : state) {
    auto scenario = make_scenario();
    trace::VectorTraceSink sink;
    scenario->set_trace_sink(&sink);
    const auto r = scenario->run();
    benchmark::DoNotOptimize(r.total_energy);
    benchmark::DoNotOptimize(sink.events().size());
  }
}
BENCHMARK(BM_ScenarioCounted)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
