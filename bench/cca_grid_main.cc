// Standalone driver for the Figures 5-8 measurement grid — now a thin
// wrapper over the committed scenario file scenarios/cca_grid.toml,
// executed by the scenario DSL runner (src/scenario_dsl/). The legacy CLI
// is kept verbatim; each flag lowers onto a RunOptions override, so the
// CSV stays byte-identical to the historical hand-written sweep (the
// byte-identity suite pins this).
//
//   cca_grid --jobs 8 --repeats 3 --csv grid.csv \
//            --journal grid_journal.jsonl --deadline 120 --retries 2
//
// The sweep runs supervised: `--deadline SEC` and `--event-budget N` bound
// each run, `--retries K` re-attempts throwing cells before quarantine,
// `--journal FILE` appends each finished run crash-safely and `--resume`
// replays it, re-running only what is missing. SIGINT/SIGTERM stop
// dispatch, flush the journal and exit 75 (partial results). `--cache` is
// accepted for CLI compatibility and ignored (the journal subsumes it).

#include <cstdio>
#include <string>

#include "common.h"
#include "robust/shutdown.h"
#include "scenario_dsl/doc.h"
#include "scenario_dsl/runner.h"

#ifndef GREENCC_SCENARIO_FILE
#define GREENCC_SCENARIO_FILE "scenarios/cca_grid.toml"
#endif

using namespace greencc;

int main(int argc, char** argv) {
  robust::install_shutdown_handler();

  dsl::RunOptions run;
  run.overrides.push_back(
      "flow.0.bytes=" +
      std::to_string(bench::flag_i64(argc, argv, "--bytes",
                                     bench::kDefaultBytes)));
  run.repeats = static_cast<int>(bench::flag_i64(argc, argv, "--repeats", 3));
  run.have_seed = true;
  run.seed =
      static_cast<std::uint64_t>(bench::flag_i64(argc, argv, "--seed", 1));
  run.jobs = bench::flag_jobs(argc, argv);
  run.audit = bench::flag_set(argc, argv, "--audit");
  run.csv_path = bench::flag_str(argc, argv, "--csv", "cca_grid.csv");
  run.cell_deadline_sec = bench::flag_double(argc, argv, "--deadline", 0.0);
  run.event_budget = static_cast<std::uint64_t>(
      bench::flag_i64(argc, argv, "--event-budget", 0));
  run.max_attempts =
      static_cast<int>(bench::flag_i64(argc, argv, "--retries", 0)) + 1;
  run.journal_path = bench::flag_str(argc, argv, "--journal", "");
  run.resume = bench::flag_set(argc, argv, "--resume");
  if (run.resume && run.journal_path.empty()) {
    run.journal_path = "cca_grid_journal.jsonl";
  }
  run.progress = true;
  bench::flag_str(argc, argv, "--cache", "");  // accepted, ignored

  const std::string scenario_file =
      bench::flag_str(argc, argv, "--scenario", GREENCC_SCENARIO_FILE);

  bench::print_header(
      "CCA x MTU measurement grid (shared by Figures 5-8)",
      "energy, power, FCT and retransmissions per cell, 50 GB-equivalent");

  try {
    dsl::ScenarioDoc doc = dsl::load_scenario_file(scenario_file);
    // --mtu M restricts the sweep to one MTU (used by the audit preset to
    // keep the checked sweep cheap); default remains the full paper set.
    if (const std::int64_t mtu = bench::flag_i64(argc, argv, "--mtu", 0);
        mtu) {
      for (dsl::AxisDoc& axis : doc.axes) {
        if (axis.name != "mtu") continue;
        dsl::TomlValue v;
        v.kind = dsl::TomlValue::Kind::kInt;
        v.integer = mtu;
        v.number = static_cast<double>(mtu);
        axis.values = {{v}};
      }
    }
    const dsl::SweepOutcome outcome = dsl::run_sweep(doc, run);
    std::fprintf(stderr, "  %s\n", outcome.report.summary().c_str());
    std::printf("wrote %zu cells to %s (jobs=%d)\n", outcome.cells,
                outcome.csv_path.c_str(), run.jobs);
    return outcome.report.complete() ? 0 : robust::kPartialResultsExit;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cca_grid: %s\n", e.what());
    return 1;
  }
}
