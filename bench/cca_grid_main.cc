// Standalone driver for the Figures 5-8 measurement grid: runs the full
// CCA x MTU x repeat sweep — in parallel with --jobs N — and writes one CSV
// row per cell. Output is deterministic: for a fixed (bytes, repeats, seed)
// the CSV is byte-identical whatever the thread count.
//
// The sweep runs supervised: `--deadline SEC` and `--event-budget N` bound
// each run, `--retries K` re-attempts throwing cells before quarantine,
// `--journal FILE` appends each finished run crash-safely and `--resume`
// replays it, re-running only what is missing. SIGINT/SIGTERM stop
// dispatch, flush the journal and exit 75 (partial results) instead of
// dying mid-write.
//
//   cca_grid --jobs 8 --repeats 3 --csv grid.csv --cache "" \
//            --journal grid_journal.jsonl --deadline 120 --retries 2

#include <cstdio>
#include <fstream>

#include "cca_grid.h"
#include "common.h"
#include "robust/shutdown.h"

using namespace greencc;

int main(int argc, char** argv) {
  robust::install_shutdown_handler();

  bench::GridOptions options;
  options.bytes = bench::flag_i64(argc, argv, "--bytes", bench::kDefaultBytes);
  options.repeats =
      static_cast<int>(bench::flag_i64(argc, argv, "--repeats", 3));
  options.base_seed = static_cast<std::uint64_t>(
      bench::flag_i64(argc, argv, "--seed", 1));
  options.jobs = bench::flag_jobs(argc, argv);
  options.cache_path =
      bench::flag_str(argc, argv, "--cache", options.cache_path);
  if (bench::flag_set(argc, argv, "--audit")) {
    // Audited sweeps bypass the cache: the point is to re-run the
    // simulations under the invariant checker, not to reload numbers.
    options.audit_interval = sim::SimTime::milliseconds(10);
    options.cache_path.clear();
  }
  // --mtu M restricts the sweep to one MTU (used by the audit preset to
  // keep the checked sweep cheap); default remains the full paper set.
  if (const std::int64_t mtu = bench::flag_i64(argc, argv, "--mtu", 0); mtu) {
    options.mtus = {static_cast<int>(mtu)};
  }
  bench::apply_supervisor_flags(argc, argv, options);
  const std::string csv_path =
      bench::flag_str(argc, argv, "--csv", "cca_grid.csv");

  bench::print_header(
      "CCA x MTU measurement grid (shared by Figures 5-8)",
      "energy, power, FCT and retransmissions per cell, 50 GB-equivalent");

  robust::SweepReport report;
  const auto cells = bench::run_cca_grid(options, &report);
  std::fprintf(stderr, "  %s\n", report.summary().c_str());

  std::ofstream out(csv_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }
  out.precision(12);
  out << "cca,mtu_bytes,energy_joules,energy_stddev,power_watts,fct_sec,"
         "retransmissions\n";
  for (const auto& cell : cells) {
    out << cell.cca << ',' << cell.mtu_bytes << ',' << cell.energy_joules
        << ',' << cell.energy_stddev << ',' << cell.power_watts << ','
        << cell.fct_sec << ',' << cell.retransmissions << "\n";
  }
  std::printf("wrote %zu cells to %s (jobs=%d)\n", cells.size(),
              csv_path.c_str(), options.jobs);
  return report.complete() ? 0 : robust::kPartialResultsExit;
}
