// Ablation: Theorem 1 numerics. How large is the fair-allocation energy
// penalty, and how does it depend on the number of flows and the curvature
// of the power function? Also verifies zero violations over large random
// allocation samples for the calibrated curve.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/theorem.h"
#include "energy/power_model.h"
#include "sim/rng.h"
#include "stats/table.h"

using namespace greencc;

int main(int argc, char** argv) {
  const int trials =
      static_cast<int>(bench::flag_i64(argc, argv, "--trials", 20000));

  bench::print_header(
      "Ablation — Theorem 1: fair share maximizes power for concave p",
      "P(fair) > P(y) for every other allocation; FSI saving = the "
      "concavity gap");

  energy::PackagePowerModel model;
  const energy::PowerCalibration calib;
  const auto calibrated = [&](double x) {
    return model
        .single_flow_watts(units::BitRate::gbps(x), calib.fig2_util_per_gbps,
                           calib.fig2_pps_per_gbps)
        .watts();
  };

  struct Curve {
    const char* name;
    std::function<double(double)> p;
  };
  const Curve curves[] = {
      {"calibrated-fig2", calibrated},
      {"sqrt", [](double x) { return 20.0 + 5.0 * std::sqrt(x); }},
      {"log", [](double x) { return 20.0 + 6.0 * std::log1p(x); }},
      {"weak-concave",
       [](double x) { return 20.0 + 1.4 * x - 0.02 * x * x; }},
  };

  stats::Table table({"curve", "flows", "violations", "fsi-savings[%]"});
  sim::Rng rng(2024);
  for (const auto& curve : curves) {
    for (int flows : {2, 3, 4, 8}) {
      const int violations =
          core::Theorem1::count_violations(10.0, flows, curve.p, trials, rng);
      const double savings =
          core::Theorem1::fsi_savings(10.0, flows, curve.p);
      table.add_row({curve.name, std::to_string(flows),
                     std::to_string(violations),
                     stats::Table::num(100.0 * savings, 2)});
    }
  }
  table.print(std::cout);
  std::printf("\n(0 violations everywhere == the theorem holds numerically; "
              "calibrated 2-flow FSI saving should be ~16.3%%)\n");
  return 0;
}
