#pragma once

// The CCA x MTU measurement grid behind Figures 5-8: every congestion
// control algorithm of the paper at MTUs {1500, 3000, 6000, 9000}, repeated
// with distinct seeds, energies/FCTs reported as 50 GB equivalents.
//
// The sweep runs under the robust::SweepSupervisor: per-cell wall
// deadlines and event budgets, retry-then-quarantine for throwing cells, a
// crash-safe journal with --resume, and graceful SIGINT/SIGTERM. With all
// supervision options at their defaults the behavior degrades to the bare
// pool, except that a throwing cell quarantines (partial results) instead
// of aborting the whole grid.

#include <cstdint>
#include <string>
#include <vector>

#include "core/efficiency.h"
#include "robust/supervisor.h"
#include "sim/time.h"

namespace greencc::bench {

struct GridOptions {
  std::int64_t bytes = 2'000'000'000;
  int repeats = 3;
  std::uint64_t base_seed = 1;
  /// Worker threads for the (CCA x MTU x repeat) sweep; 1 = serial, <= 0 =
  /// all hardware threads. Per-run seeds are derived from (base_seed, cell,
  /// repeat), so the resulting cells — and any CSV written from them — are
  /// byte-identical for every jobs value.
  int jobs = 1;
  std::vector<int> mtus = {1500, 3000, 6000, 9000};
  /// Figures 5-8 share one measurement grid. When non-empty, a finished
  /// grid is written here and an existing file with matching parameters is
  /// loaded instead of re-simulating (runs are deterministic per seed, so
  /// the cache is exact). The header carries a schema version and a config
  /// hash; a cache written by an older binary or a different sweep config
  /// is regenerated, never silently reused. Delete the file to force a
  /// fresh run. A partial sweep (quarantined/timed-out/interrupted cells)
  /// is never cached.
  std::string cache_path = "cca_grid_cache.csv";
  /// When positive, every run carries an invariant auditor walking the
  /// topology at this sim-time cadence (the `audit` preset's sweep). The
  /// auditor does not touch the measured quantities — it only reads — so a
  /// clean audited grid is numerically identical to an unaudited one.
  sim::SimTime audit_interval = sim::SimTime::zero();

  // --- supervision (robust::SweepSupervisor) ---
  /// Wall-clock deadline per (cell, repeat) run; 0 = none. A cell cut by
  /// the watchdog is reported timed_out, not aggregated.
  double cell_deadline_sec = 0.0;
  /// Simulator event budget per run; 0 = none. Catches scenarios that spin
  /// without advancing wall time.
  std::uint64_t event_budget = 0;
  /// Attempts per run before quarantine (1 = no retries).
  int max_attempts = 1;
  /// Crash-safe journal of completed (cell, repeat) results; empty = off.
  std::string journal_path;
  /// Replay a matching journal and re-run only missing cells. Bit-identical
  /// to an uninterrupted run: seeds derive from (base_seed, cell, repeat).
  bool resume = false;
};

/// Parse the shared supervision flags every grid bench accepts —
/// `--deadline SEC --event-budget N --retries K --journal FILE --resume` —
/// into `options` (retries K means K extra attempts, so max_attempts is
/// K + 1). `--resume` without `--journal` selects the default journal path
/// "<cache stem>_journal.jsonl".
void apply_supervisor_flags(int argc, char** argv, GridOptions& options);

/// Runs the full grid and returns one cell per (CCA, MTU), with energy (J),
/// power (W), FCT (s) and retransmissions scaled to the paper's 50 GB
/// transfer size. Prints one progress line per cell to stderr.
///
/// With `report` non-null, the supervisor's health report (per-cell
/// outcomes and wall times) is written there; callers should exit
/// robust::kPartialResultsExit when !report->complete(). Cells whose every
/// repeat failed carry zeros — the report, not the numbers, discloses the
/// gap.
std::vector<core::GridCell> run_cca_grid(const GridOptions& options,
                                         robust::SweepReport* report);
std::vector<core::GridCell> run_cca_grid(const GridOptions& options);

}  // namespace greencc::bench
