#pragma once

// The CCA x MTU measurement grid behind Figures 5-8: every congestion
// control algorithm of the paper at MTUs {1500, 3000, 6000, 9000}, repeated
// with distinct seeds, energies/FCTs reported as 50 GB equivalents.

#include <cstdint>
#include <string>
#include <vector>

#include "core/efficiency.h"
#include "sim/time.h"

namespace greencc::bench {

struct GridOptions {
  std::int64_t bytes = 2'000'000'000;
  int repeats = 3;
  std::uint64_t base_seed = 1;
  /// Worker threads for the (CCA x MTU x repeat) sweep; 1 = serial, <= 0 =
  /// all hardware threads. Per-run seeds are derived from (base_seed, cell,
  /// repeat), so the resulting cells — and any CSV written from them — are
  /// byte-identical for every jobs value.
  int jobs = 1;
  std::vector<int> mtus = {1500, 3000, 6000, 9000};
  /// Figures 5-8 share one measurement grid. When non-empty, a finished
  /// grid is written here and an existing file with matching parameters is
  /// loaded instead of re-simulating (runs are deterministic per seed, so
  /// the cache is exact). Delete the file to force a fresh run.
  std::string cache_path = "cca_grid_cache.csv";
  /// When positive, every run carries an invariant auditor walking the
  /// topology at this sim-time cadence (the `audit` preset's sweep). The
  /// auditor does not touch the measured quantities — it only reads — so a
  /// clean audited grid is numerically identical to an unaudited one.
  sim::SimTime audit_interval = sim::SimTime::zero();
};

/// Runs the full grid and returns one cell per (CCA, MTU), with energy (J),
/// power (W), FCT (s) and retransmissions scaled to the paper's 50 GB
/// transfer size. Prints one progress line per cell to stderr.
std::vector<core::GridCell> run_cca_grid(const GridOptions& options);

}  // namespace greencc::bench
