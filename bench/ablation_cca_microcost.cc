// Microbenchmark (google-benchmark): the actual wall-clock cost of each
// congestion controller's per-ACK processing in *this* implementation.
//
// The paper's §5 calls for decomposing the per-mechanism energy cost of
// CCAs ("maintained flow state, packet pacing, cwnd calculation
// arithmetic"). This bench measures our implementations directly — a sanity
// check that the relative compute-cost ordering assumed in
// energy/calibration.h (baseline < reno < ... < bbr < bbr2) is reflected by
// real code.

#include <benchmark/benchmark.h>

#include "cca/cca.h"

using namespace greencc;

namespace {

void BM_CcaOnAck(benchmark::State& state, const std::string& name) {
  cca::CcaConfig config;
  config.mss_bytes = units::Bytes{1448};
  auto cc = cca::make_cca(name, config);
  cca::AckEvent ev;
  ev.rtt = sim::SimTime::microseconds(100);
  ev.srtt = sim::SimTime::microseconds(100);
  ev.min_rtt = sim::SimTime::microseconds(100);
  ev.acked_segments = 2;
  ev.inflight = 50;
  ev.delivery_rate = units::BitRate::bps(5e9);
  std::int64_t delivered = 0;
  std::int64_t t = 0;
  for (auto _ : state) {
    ev.now = sim::SimTime::nanoseconds(t += 20'000);
    ev.delivered = delivered += 2;
    cc->on_ack(ev);
    benchmark::DoNotOptimize(cc->cwnd_segments());
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : cca::all_names()) {
    benchmark::RegisterBenchmark(("on_ack/" + name).c_str(),
                                 [name](benchmark::State& state) {
                                   BM_CcaOnAck(state, name);
                                 });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
