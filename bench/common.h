#pragma once

// Shared helpers for the figure-reproduction benches: tiny flag parsing and
// the scaling conventions (the paper transfers 50 GB per scenario; we default
// to 2 GB simulated and report 50 GB equivalents, which is exact at steady
// state because energy and completion time are linear in bytes there).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace greencc::bench {

inline std::int64_t flag_i64(int argc, char** argv, const char* name,
                             std::int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

inline double flag_double(int argc, char** argv, const char* name,
                          double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

inline std::string flag_str(int argc, char** argv, const char* name,
                            const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

/// Worker threads for grid/repeat sweeps (`--jobs N`; N <= 0 means all
/// hardware threads). Every bench that fans out over scenarios accepts it;
/// results are deterministic regardless of the value.
inline int flag_jobs(int argc, char** argv) {
  return static_cast<int>(flag_i64(argc, argv, "--jobs", 1));
}

/// Presence flag (no value): true when `name` appears anywhere on the line.
inline bool flag_set(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// Paper transfer size and our simulated default.
constexpr std::int64_t kPaperBytes = 50'000'000'000;   // 50 GB
constexpr std::int64_t kDefaultBytes = 2'000'000'000;  // 2 GB simulated

inline double scale_to_paper(std::int64_t simulated) {
  return static_cast<double>(kPaperBytes) /
         static_cast<double>(simulated);
}

inline void print_header(const char* figure, const char* paper_claim) {
  std::printf("=== %s ===\n", figure);
  std::printf("paper: %s\n\n", paper_claim);
}

}  // namespace greencc::bench
