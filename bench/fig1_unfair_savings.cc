// Figure 1: "Increasing throughput imbalance for two competing TCP flows
// can reduce energy usage."
//
// Two CUBIC flows share the 10 Gb/s bottleneck, each transferring 10 Gbit.
// Flow 1 is rate-limited to a fraction of the link; flow 2 is
// work-conserving. At fraction 1.0 the flows run back-to-back ("full speed,
// then idle"). Total energy is measured from experiment start until both
// flows complete, exactly as in §4.1, and reported as savings relative to
// the fair 50/50 split. The rightmost column shows the closed-form
// prediction from the calibrated power curve (core::AllocationAnalysis).

#include <cstdio>
#include <iostream>

#include "app/runner.h"
#include "common.h"
#include "core/allocation.h"
#include "core/scheduler.h"
#include "stats/table.h"
#include "units/units.h"

using namespace greencc;

namespace {

app::RepeatResult run_fraction(double fraction, units::Bytes bytes,
                               int repeats, int jobs) {
  auto builder = [&](std::uint64_t seed) {
    app::ScenarioConfig config;
    config.tcp.mtu_bytes = units::Bytes{9000};
    config.seed = seed;
    auto scenario = std::make_unique<app::Scenario>(config);
    const auto schedule = fraction >= 1.0 ? core::Schedule::kFullSpeedThenIdle
                          : fraction <= 0.5 ? core::Schedule::kFairShare
                                            : core::Schedule::kWeighted;
    auto specs = core::make_schedule(schedule, 2, bytes, "cubic",
                                     units::BitRate::gbps(10), fraction);
    if (schedule == core::Schedule::kWeighted) {
      // Enforce the split while flow 1 runs: flow 2 is held to the leftover
      // bandwidth, then released to "use the rest of the link" (§4.1).
      specs[1].rate_limit = units::BitRate::bps((1.0 - fraction) * 10e9);
      specs[1].unlimit_after_flow = 0;
    }
    for (const auto& spec : specs) scenario->add_flow(spec);
    return scenario;
  };
  app::RepeatOptions options;
  options.repeats = repeats;
  options.jobs = jobs;
  // Each fraction is one grid cell: mix it into the seeds so repeats stay
  // statistically independent across the sweep.
  options.cell_index = static_cast<std::uint64_t>(fraction * 100.0);
  return app::run_repeated(builder, options);
}

}  // namespace

int main(int argc, char** argv) {
  const units::Bytes bytes{
      bench::flag_i64(argc, argv, "--bytes", 1'250'000'000)};  // 10 Gbit
  const int repeats =
      static_cast<int>(bench::flag_i64(argc, argv, "--repeats", 5));
  const int jobs = bench::flag_jobs(argc, argv);

  bench::print_header(
      "Figure 1 — energy savings vs. bandwidth fraction of flow 1",
      "fair 50/50 split is least efficient; full-speed-then-idle saves ~16%");

  const energy::PowerCalibration calib;
  core::AllocationAnalysis closed_form(energy::PackagePowerModel{},
                                       units::BitRate::gbps(10),
                                       calib.fig2_util_per_gbps,
                                       calib.fig2_pps_per_gbps);

  stats::Table table({"fraction", "achieved", "energy[J]", "stddev",
                      "savings[%]", "closed-form[%]"});

  const auto fair = run_fraction(0.5, bytes, repeats, jobs);
  const units::Energy fair_energy = units::Energy::joules(fair.joules.mean());

  for (double f : {0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95,
                   1.0}) {
    // lint-allow: float-eq (f iterates literal values; 0.5 compares exact)
    const auto agg = f == 0.5 ? fair : run_fraction(f, bytes, repeats, jobs);
    // Achieved fraction: flow 1's average share of the link while it ran.
    stats::Summary achieved;
    for (const auto& run : agg.runs) {
      achieved.add(run.flows[0].avg_rate.gbps() / 10.0);
    }
    const double savings =
        (fair_energy.joules() - agg.joules.mean()) / fair_energy.joules();
    const double predicted =
        closed_form
            .energy_at_fraction(f, units::Bits{bytes.count() * units::kBitsPerByte})
            .savings_vs_fair;
    table.add_row({stats::Table::num(f, 2),
                   stats::Table::num(f >= 1.0 ? 1.0 : achieved.mean(), 3),
                   stats::Table::num(agg.joules.mean(), 1),
                   stats::Table::num(agg.joules.stddev(), 2),
                   stats::Table::num(100.0 * savings, 2),
                   stats::Table::num(100.0 * predicted, 2)});
  }

  table.print(std::cout);
  table.write_csv(bench::flag_str(argc, argv, "--csv", "fig1.csv"));

  const auto fsi = run_fraction(1.0, bytes, repeats, jobs);
  const double headline =
      (fair_energy.joules() - fsi.joules.mean()) / fair_energy.joules();
  std::printf(
      "\nfull-speed-then-idle saves %.1f%% over the fair allocation "
      "(paper: 16%%)\n",
      100.0 * headline);
  return 0;
}
