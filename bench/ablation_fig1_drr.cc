// Ablation: Figure 1 with the bandwidth split enforced *in the network*.
//
// The paper (and our fig1 bench) limits flow 1 at the application, iperf3
// -b style. A programmable switch could instead enforce the split with
// per-flow scheduling weights. If the headline result is about the
// *allocation* and not the enforcement mechanism, both must produce the
// same savings curve. Here the bottleneck runs Deficit Round Robin with
// weights {f, 1-f} over two unlimited CUBIC flows.

#include <cstdio>
#include <iostream>

#include "app/scenario.h"
#include "common.h"
#include "core/allocation.h"
#include "stats/table.h"

using namespace greencc;

namespace {

app::ScenarioResult run_weighted(double fraction, units::Bytes bytes,
                                 std::uint64_t seed) {
  app::ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = seed;
  config.use_drr_bottleneck = true;
  app::Scenario scenario(config);

  app::FlowSpec flow1;
  flow1.cca = "cubic";
  flow1.bytes = bytes;
  flow1.weight = std::max(fraction, 1e-3);
  scenario.add_flow(flow1);

  app::FlowSpec flow2 = flow1;
  flow2.weight = std::max(1.0 - fraction, 1e-3);
  scenario.add_flow(flow2);

  return scenario.run();
}

}  // namespace

int main(int argc, char** argv) {
  const units::Bytes bytes{
      bench::flag_i64(argc, argv, "--bytes", 1'250'000'000)};  // 10 Gbit

  bench::print_header(
      "Ablation — Fig 1 enforced by switch scheduling (DRR weights)",
      "the savings curve must match the application-limited version: the "
      "result is about the allocation, not the enforcement mechanism");

  const energy::PowerCalibration calib;
  core::AllocationAnalysis closed_form(energy::PackagePowerModel{},
                                       units::BitRate::gbps(10),
                                       calib.fig2_util_per_gbps,
                                       calib.fig2_pps_per_gbps);

  const auto fair = run_weighted(0.5, bytes, 1);
  const units::Energy fair_energy = fair.total_energy;

  stats::Table table({"weight frac", "achieved", "energy[J]", "savings[%]",
                      "closed-form[%]"});
  for (double f : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    // lint-allow: float-eq (f iterates literal values; 0.5 compares exact)
    const auto r = f == 0.5 ? fair : run_weighted(f, bytes, 1);
    if (!r.all_completed) {
      std::printf("fraction %.2f did not complete\n", f);
      continue;
    }
    // Flow 1's achieved share while both flows were active: use its rate
    // relative to the link during its own lifetime.
    const double achieved = r.flows[0].avg_rate.gbps() / 10.0;
    const double savings =
        (fair_energy - r.total_energy).joules() / fair_energy.joules();
    const double predicted =
        closed_form
            .energy_at_fraction(f, units::Bits{bytes.count() * units::kBitsPerByte})
            .savings_vs_fair;
    table.add_row({stats::Table::num(f, 2), stats::Table::num(achieved, 3),
                   stats::Table::num(r.total_energy.joules(), 1),
                   stats::Table::num(100.0 * savings, 2),
                   stats::Table::num(100.0 * predicted, 2)});
  }
  table.print(std::cout);
  std::printf(
      "\n(weights act only while both flows are backlogged; once flow 1 "
      "finishes, DRR's work conservation hands flow 2 the whole link — "
      "the same 'use the rest' semantics as the paper's setup)\n");
  return 0;
}
