// Ablation: how sensitive is the headline result to the calibration?
//
// The power model is fitted to three published anchor points; a sceptic
// should ask whether the "fair share is least efficient" conclusion
// survives calibration error. This bench perturbs each fitted constant by
// +/-20% and recomputes the two-flow full-speed-then-idle saving from the
// closed form. The *sign* never flips (Theorem 1 needs only concavity);
// the magnitude moves modestly around 16%.

#include <cstdio>
#include <functional>
#include <iostream>

#include "common.h"
#include "core/theorem.h"
#include "energy/power_model.h"
#include "stats/table.h"

using namespace greencc;

namespace {

double fsi_savings(const energy::PowerCalibration& calib) {
  energy::PackagePowerModel model(calib);
  const auto p = [&](double x) {
    return model
        .single_flow_watts(units::BitRate::gbps(x), calib.fig2_util_per_gbps,
                           calib.fig2_pps_per_gbps)
        .watts();
  };
  return core::Theorem1::fsi_savings(10.0, 2, p);
}

bool still_concave(const energy::PowerCalibration& calib) {
  energy::PackagePowerModel model(calib);
  const auto p = [&](double x) {
    return model
        .single_flow_watts(units::BitRate::gbps(x), calib.fig2_util_per_gbps,
                           calib.fig2_pps_per_gbps)
        .watts();
  };
  return core::Theorem1::is_strictly_concave(10.0, p);
}

}  // namespace

int main(int, char**) {
  bench::print_header(
      "Ablation — calibration sensitivity of the headline saving",
      "the 16% fair-vs-FSI gap must not hinge on exact constants; only "
      "concavity matters (Theorem 1)");

  const energy::PowerCalibration base;
  stats::Table table({"perturbation", "fsi-savings[%]", "concave"});
  table.add_row({"baseline (fitted)",
                 stats::Table::num(100.0 * fsi_savings(base), 2), "yes"});

  struct Knob {
    const char* name;
    std::function<void(energy::PowerCalibration&, double)> scale;
  };
  const Knob knobs[] = {
      {"idle_watts",
       [](energy::PowerCalibration& c, double f) { c.idle_watts *= f; }},
      {"net_amplitude_watts",
       [](energy::PowerCalibration& c, double f) {
         c.net_amplitude_watts *= f;
       }},
      {"net_util_scale",
       [](energy::PowerCalibration& c, double f) { c.net_util_scale *= f; }},
      {"omega_watts_per_pps",
       [](energy::PowerCalibration& c, double f) {
         c.omega_watts_per_pps *= f;
       }},
  };
  for (const auto& knob : knobs) {
    for (double factor : {0.8, 1.2}) {
      auto calib = base;
      knob.scale(calib, factor);
      char label[64];
      snprintf(label, sizeof(label), "%s x%.1f", knob.name, factor);
      table.add_row({label, stats::Table::num(100.0 * fsi_savings(calib), 2),
                     still_concave(calib) ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::printf(
      "\n(savings stay strictly positive under every perturbation; the\n"
      "magnitude tracks the curvature knobs — amplitude and util_scale —\n"
      "as Theorem 1 predicts. The linear omega term shifts power levels\n"
      "but cancels out of the concavity gap, so it barely moves savings.)\n");
  return 0;
}
