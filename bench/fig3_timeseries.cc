// Figure 3: throughput over time for the two scheduling extremes.
//
// Left panel: both 10 Gbit CUBIC flows run concurrently at the fair share
// (~5 Gb/s each) and finish together at ~2 s. Right panel: "full speed,
// then idle" — flow 1 sends at line rate while flow 2 idles, then they
// swap. Both panels carry the same average throughput per flow.

#include <cstdio>
#include <iostream>

#include "app/scenario.h"
#include "common.h"
#include "core/scheduler.h"
#include "stats/table.h"
#include "units/units.h"

using namespace greencc;

namespace {

app::ScenarioResult run_schedule(core::Schedule schedule,
                                 units::Bytes bytes) {
  app::ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = 3;
  config.report_interval = sim::SimTime::milliseconds(50);
  app::Scenario scenario(config);
  for (const auto& spec :
       core::make_schedule(schedule, 2, bytes, "cubic",
                           units::BitRate::gbps(10))) {
    scenario.add_flow(spec);
  }
  return scenario.run();
}

void print_panel(const char* title, const app::ScenarioResult& result,
                 const std::string& csv) {
  std::printf("--- %s (total energy %.1f J over %.2f s) ---\n", title,
              result.total_energy.joules(), result.duration_sec);
  stats::Table table({"t[s]", "flow1[Gbps]", "flow2[Gbps]"});
  const auto& a = result.flows[0].series;
  const auto& b = result.flows[1].series;
  for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    const double t = i < a.size() ? a[i].first : b[i].first;
    table.add_row({stats::Table::num(t, 2),
                   stats::Table::num(i < a.size() ? a[i].second : 0.0, 2),
                   stats::Table::num(i < b.size() ? b[i].second : 0.0, 2)});
  }
  table.print(std::cout);
  table.write_csv(csv);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const units::Bytes bytes{
      bench::flag_i64(argc, argv, "--bytes", 1'250'000'000)};  // 10 Gbit

  bench::print_header(
      "Figure 3 — throughput vs. time, fair share vs. full-speed-then-idle",
      "fair: both at ~5 Gb/s for 2 s; FSI: each at ~10 Gb/s for 1 s while "
      "the other idles; FSI uses less total energy");

  const auto fair = run_schedule(core::Schedule::kFairShare, bytes);
  const auto fsi = run_schedule(core::Schedule::kFullSpeedThenIdle, bytes);

  print_panel("fair share", fair,
              bench::flag_str(argc, argv, "--csv-fair", "fig3_fair.csv"));
  print_panel("full speed, then idle", fsi,
              bench::flag_str(argc, argv, "--csv-fsi", "fig3_fsi.csv"));

  std::printf("energy: fair %.1f J vs FSI %.1f J -> FSI saves %.1f%%\n",
              fair.total_energy.joules(), fsi.total_energy.joules(),
              100.0 * (fair.total_energy - fsi.total_energy).joules() /
                  fair.total_energy.joules());
  return 0;
}
