// Extension: energy of SRPT-like scheduling — §5: "to improve energy
// efficiency, CCAs should aim to send as fast as possible for minimal
// completion time. One intriguing approach would be to measure the energy
// usage of existing transport protocols that approximate the Shortest
// Remaining Processing Time first (SRPT) scheduling."
//
// A mixed workload (a few elephants + many mice) runs under four
// scheduling policies; for each we report total energy, mean and p99-ish
// flow completion time. Serial schedules all burn the same *busy* energy;
// SRPT additionally minimizes mean FCT — greener *and* faster for the
// average flow.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "app/scenario.h"
#include "common.h"
#include "core/scheduler.h"
#include "stats/stats.h"
#include "stats/table.h"

using namespace greencc;

namespace {

struct Outcome {
  double joules = 0.0;
  double duration = 0.0;
  double mean_fct = 0.0;
  double max_fct = 0.0;
  bool done = false;
};

Outcome run(core::SizedSchedule schedule,
            const std::vector<units::Bytes>& sizes) {
  app::ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = 31;
  app::Scenario scenario(config);
  for (const auto& spec : core::make_sized_schedule(schedule, sizes, "cubic")) {
    scenario.add_flow(spec);
  }
  const auto r = scenario.run();
  Outcome o;
  o.done = r.all_completed;
  o.joules = r.total_energy.joules();
  o.duration = r.duration_sec;
  // SRPT optimizes time-to-completion from the experiment's start (a
  // serialized flow "waits" before it runs), not the per-flow transfer time.
  stats::Summary fct;
  for (const auto& f : r.flows) fct.add(f.finished_at_sec);
  o.mean_fct = fct.mean();
  o.max_fct = fct.max();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const units::Bytes unit{
      bench::flag_i64(argc, argv, "--unit", 125'000'000)};  // 1 Gbit

  bench::print_header(
      "Extension — energy of SRPT-like flow scheduling (§5)",
      "sending as fast as possible minimizes completion time and energy; "
      "SRPT ordering additionally minimizes *mean* FCT");

  // 2 elephants + 6 mice (sizes in 1 Gbit units: 8, 6, 1 x6).
  std::vector<units::Bytes> sizes = {unit * 8, unit, unit, unit * 6,
                                     unit,    unit, unit, unit};

  stats::Table table({"schedule", "energy[J]", "duration[s]", "mean completion[s]",
                      "last completion[s]"});
  units::Energy fair_energy;
  for (auto schedule :
       {core::SizedSchedule::kFairShare, core::SizedSchedule::kFifoSerial,
        core::SizedSchedule::kLongestFirst,
        core::SizedSchedule::kSrptSerial}) {
    const auto o = run(schedule, sizes);
    if (!o.done) {
      std::printf("%s did not complete\n", to_string(schedule).c_str());
      return 1;
    }
    if (schedule == core::SizedSchedule::kFairShare) {
      fair_energy = units::Energy::joules(o.joules);
    }
    table.add_row({to_string(schedule), stats::Table::num(o.joules, 1),
                   stats::Table::num(o.duration, 2),
                   stats::Table::num(o.mean_fct, 3),
                   stats::Table::num(o.max_fct, 2)});
  }
  table.print(std::cout);

  const auto srpt = run(core::SizedSchedule::kSrptSerial, sizes);
  std::printf("\nSRPT saves %.1f%% energy over fair sharing and has the "
              "lowest mean FCT of the serial orders\n",
              100.0 * (fair_energy.joules() - srpt.joules) / fair_energy.joules());
  std::printf("(total duration is schedule-invariant — the bottleneck is "
              "work-conserving — so the energy gap is pure idle-vs-active "
              "host time, and the FCT gap is pure ordering)\n");
  return 0;
}
