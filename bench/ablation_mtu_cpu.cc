// Ablation: where does the MTU effect come from? Compares the analytic
// per-packet CPU caps of the work model against the throughput the full
// simulator actually achieves per MTU, separating the host-capped regime
// (small MTU) from the switch-capped regime (jumbo frames).

#include <cstdio>
#include <iostream>

#include "app/scenario.h"
#include "common.h"
#include "stats/table.h"

using namespace greencc;

namespace {

double measured_tput(int mtu, units::Bytes bytes) {
  app::ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{mtu};
  config.seed = 11;
  app::Scenario scenario(config);
  app::FlowSpec flow;
  flow.cca = "cubic";
  flow.bytes = bytes;
  scenario.add_flow(flow);
  const auto result = scenario.run();
  return result.flows[0].avg_rate.gbps();
}

}  // namespace

int main(int argc, char** argv) {
  const units::Bytes bytes{
      bench::flag_i64(argc, argv, "--bytes", 1'000'000'000)};

  bench::print_header(
      "Ablation — MTU vs. host packet-processing limits",
      "jumbo frames needed for line rate (§3); small MTUs are "
      "receiver-CPU-bound, which is what makes them burn more energy");

  const energy::WorkCalibration work;
  stats::Table table({"mtu", "tx-cap[Gbps]", "rx-cap[Gbps]",
                      "bottleneck", "measured[Gbps]"});
  for (int mtu : {1500, 3000, 4500, 6000, 9000}) {
    const double bits = mtu * 8.0;
    const double tx_cap =
        bits / (work.pkt_ns + mtu * work.byte_ns + 0.5 * work.ack_ns);
    const double rx_cap = bits / (work.rx_pkt_ns + mtu * work.rx_byte_ns);
    const double line = 10.0;
    const double cap = std::min({tx_cap, rx_cap, line});
    const char* bottleneck = cap == rx_cap   ? "receiver-cpu"
                             : cap == tx_cap ? "sender-cpu"
                                             : "switch";
    table.add_row({std::to_string(mtu), stats::Table::num(tx_cap, 2),
                   stats::Table::num(rx_cap, 2), bottleneck,
                   stats::Table::num(measured_tput(mtu, bytes), 2)});
  }
  table.print(std::cout);
  std::printf("\n(caps are per-core analytic limits: MTU*8 / per-packet "
              "service time)\n");
  return 0;
}
