// Ablation: does active queue management change the energy story?
//
// The paper's testbed uses a plain tail-drop/step-ECN switch queue. Modern
// switches run RED or CoDel. Since energy is dominated by completion time
// (§4.5) and AQM mainly trades queueing delay against throughput, the
// energy effect should be small for bulk transfers — unless the AQM
// sacrifices goodput. This bench measures it.

#include <cstdio>
#include <iostream>

#include "app/scenario.h"
#include "common.h"
#include "stats/table.h"

using namespace greencc;

namespace {

struct Outcome {
  double joules = 0.0;
  double gbps = 0.0;
  std::int64_t retx = 0;
  std::int64_t max_queue = 0;
};

Outcome run(const std::string& cca, net::AqmMode mode, units::Bytes bytes) {
  app::ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = 23;
  config.bottleneck_aqm.mode = mode;
  app::Scenario scenario(config);
  app::FlowSpec flow;
  flow.cca = cca;
  flow.bytes = bytes;
  scenario.add_flow(flow);
  const auto r = scenario.run();
  Outcome o;
  o.joules = r.total_energy.joules();
  o.gbps = r.flows[0].avg_rate.gbps();
  o.retx = r.flows[0].retransmissions;
  o.max_queue = r.bottleneck.max_bytes_seen.count();
  return o;
}

const char* mode_name(net::AqmMode mode) {
  switch (mode) {
    case net::AqmMode::kNone:
      return "tail-drop";
    case net::AqmMode::kStepEcn:
      return "step-ecn";
    case net::AqmMode::kRed:
      return "red";
    case net::AqmMode::kCodel:
      return "codel";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const units::Bytes bytes{
      bench::flag_i64(argc, argv, "--bytes", 1'000'000'000)};

  bench::print_header(
      "Ablation — AQM at the bottleneck vs. transport energy",
      "energy follows completion time; AQM that preserves goodput is "
      "energy-neutral, AQM drops that cost throughput cost joules");

  stats::Table table({"cca", "aqm", "energy[J]", "Gb/s", "retx",
                      "max queue[KB]"});
  for (const char* cca : {"cubic", "dctcp", "bbr"}) {
    for (auto mode : {net::AqmMode::kNone, net::AqmMode::kRed,
                      net::AqmMode::kCodel}) {
      const auto o = run(cca, mode, bytes);
      table.add_row({cca, mode_name(mode), stats::Table::num(o.joules, 1),
                     stats::Table::num(o.gbps, 2), std::to_string(o.retx),
                     stats::Table::num(
                         static_cast<double>(o.max_queue) / 1e3, 0)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\n(CoDel slashes the standing queue — latency for free — while bulk "
      "energy barely moves as long as goodput holds; loss-based CCAs pay a "
      "small energy cost where early drops shave throughput)\n");
  return 0;
}
