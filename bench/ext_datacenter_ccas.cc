// Extension: the "standardized evaluation" benchmark the paper's §5 calls
// for — "It is particularly intriguing for us to evaluate production
// algorithms of large data centers, i.e., Swift, DCQCN, and HPCC ...
// we invite the community to build a benchmark for a standardized
// evaluation of such algorithms."
//
// Runs the paper's energy protocol (50 GB-equivalent transfers, RAPL-style
// before/after reads) over the production algorithms Swift, DCQCN, HPCC
// and TIMELY, alongside three references from the paper's own set (CUBIC,
// DCTCP, BBR), at MTU 1500 and 9000.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "app/runner.h"
#include "common.h"
#include "stats/table.h"

using namespace greencc;

int main(int argc, char** argv) {
  const std::int64_t bytes =
      bench::flag_i64(argc, argv, "--bytes", bench::kDefaultBytes);
  const int repeats =
      static_cast<int>(bench::flag_i64(argc, argv, "--repeats", 3));
  const int jobs = bench::flag_jobs(argc, argv);
  const double scale = bench::scale_to_paper(bytes);

  bench::print_header(
      "Extension — energy benchmark for production datacenter CCAs (§5)",
      "\"evaluate production algorithms of large data centers, i.e., "
      "Swift, DCQCN, and HPCC\" under the paper's energy protocol");

  const std::vector<std::string> ccas = {"cubic", "dctcp",  "bbr",  "swift",
                                         "dcqcn", "hpcc",   "timely"};

  struct Cell {
    std::string cca;
    int mtu;
    double kj, kj_sd, watts, fct, retx;
  };
  std::vector<Cell> cells;

  for (int mtu : {1500, 9000}) {
    for (const auto& name : ccas) {
      auto builder = [&](std::uint64_t seed) {
        app::ScenarioConfig config;
        config.tcp.mtu_bytes = units::Bytes{mtu};
        config.seed = seed;
        auto scenario = std::make_unique<app::Scenario>(config);
        app::FlowSpec flow;
        flow.cca = name;
        flow.bytes = units::Bytes{bytes};
        scenario->add_flow(flow);
        return scenario;
      };
      app::RepeatOptions repeat_options;
      repeat_options.repeats = repeats;
      repeat_options.jobs = jobs;
      repeat_options.cell_index = cells.size();  // one cell per (MTU, CCA)
      const auto agg = app::run_repeated(builder, repeat_options);
      stats::Summary fct;
      for (const auto& run : agg.runs) fct.add(run.flows[0].fct_sec);
      cells.push_back({name, mtu, agg.joules.mean() * scale / 1e3,
                       agg.joules.stddev() * scale / 1e3, agg.watts.mean(),
                       fct.mean() * scale, agg.retransmissions.mean() * scale});
      std::fprintf(stderr, "  dc-bench: mtu=%-5d %-7s done\n", mtu,
                   name.c_str());
    }
  }

  for (int mtu : {1500, 9000}) {
    std::printf("--- MTU %d (50 GB equivalents, %d repeats) ---\n", mtu,
                repeats);
    stats::Table table(
        {"cca", "energy[kJ]", "sd[J]", "power[W]", "fct[s]", "retx"});
    std::vector<Cell> rows;
    for (const auto& c : cells) {
      if (c.mtu == mtu) rows.push_back(c);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Cell& a, const Cell& b) { return a.kj < b.kj; });
    for (const auto& c : rows) {
      table.add_row({c.cca, stats::Table::num(c.kj, 3),
                     stats::Table::num(c.kj_sd * 1e3, 1),
                     stats::Table::num(c.watts, 2),
                     stats::Table::num(c.fct, 1),
                     stats::Table::num(c.retx, 0)});
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "(lower energy == greener; the delay/INT-driven production algorithms "
      "avoid loss entirely at MTU 9000 and pay little or no energy premium "
      "over the greenest paper algorithms)\n");
  return 0;
}
