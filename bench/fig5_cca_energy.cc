// Figure 5: "Average energy consumption of the CCAs to transmit 50 GB of
// data" — the full CCA x MTU energy grid with error bars, plus §4.3/§4.4's
// quantitative claims: CCAs beat the no-CC baseline by 8.2-14.2%, the BBR
// versions differ by ~40%, and MTU 1500 -> 9000 saves 13.4-31.9%.

#include <cstdio>
#include <iostream>

#include "cca/cca.h"
#include "cca_grid.h"
#include "common.h"
#include "core/efficiency.h"
#include "robust/shutdown.h"
#include "stats/table.h"

using namespace greencc;

int main(int argc, char** argv) {
  robust::install_shutdown_handler();
  bench::GridOptions options;
  options.bytes = bench::flag_i64(argc, argv, "--bytes", bench::kDefaultBytes);
  options.repeats =
      static_cast<int>(bench::flag_i64(argc, argv, "--repeats", 3));
  options.jobs = bench::flag_jobs(argc, argv);
  options.cache_path =
      bench::flag_str(argc, argv, "--cache", options.cache_path);
  bench::apply_supervisor_flags(argc, argv, options);

  bench::print_header(
      "Figure 5 — energy per CCA and MTU (50 GB-equivalent transfers)",
      "all CCAs except BBR2 use 8.2-14.2% less energy than the constant-cwnd "
      "baseline; BBR vs BBR2 differ ~40%; larger MTUs save 13.4-31.9%");

  robust::SweepReport health;
  const auto cells = bench::run_cca_grid(options, &health);
  std::fprintf(stderr, "  %s\n", health.summary().c_str());
  core::EfficiencyReport report;
  for (const auto& cell : cells) report.add(cell);

  stats::Table table({"cca", "mtu1500[kJ]", "sd[J]", "mtu3000[kJ]", "sd[J]",
                      "mtu6000[kJ]", "sd[J]", "mtu9000[kJ]", "sd[J]"});
  for (const auto& name : cca::all_names()) {
    std::vector<std::string> row = {name};
    for (int mtu : options.mtus) {
      for (const auto& cell : cells) {
        if (cell.cca == name && cell.mtu_bytes == mtu) {
          row.push_back(stats::Table::num(cell.energy_joules / 1e3, 3));
          row.push_back(stats::Table::num(cell.energy_stddev, 1));
        }
      }
    }
    table.add_row(row);
  }
  table.print(std::cout);
  table.write_csv(bench::flag_str(argc, argv, "--csv", "fig5.csv"));

  // --- §4.3: CCAs vs the baseline, averaged over MTUs ---
  std::printf("\nenergy savings vs. the constant-cwnd baseline "
              "(mean over MTUs; paper: 8.2%%-14.2%% for all but BBR2):\n");
  for (const auto& name : cca::all_names()) {
    if (name == "baseline") continue;
    double sum = 0.0;
    for (int mtu : options.mtus) {
      sum += report.savings_vs(name, "baseline", mtu);
    }
    std::printf("  %-10s %+6.2f%%\n", name.c_str(),
                100.0 * sum / static_cast<double>(options.mtus.size()));
  }

  // --- §4.3: BBR vs BBR2 ---
  double bbr = 0.0, bbr2 = 0.0;
  for (const auto& cell : cells) {
    if (cell.cca == "bbr") bbr += cell.energy_joules;
    if (cell.cca == "bbr2") bbr2 += cell.energy_joules;
  }
  std::printf("\nBBR2-alpha uses %.1f%% more energy than BBR v1 "
              "(paper: ~40%%)\n", 100.0 * (bbr2 - bbr) / bbr);

  // --- §4.4: MTU savings ---
  std::printf("\nenergy saved going MTU 1500 -> 9000 "
              "(paper: 13.4%%-31.9%%):\n");
  for (const auto& name : cca::all_names()) {
    std::printf("  %-10s %5.1f%%\n", name.c_str(),
                100.0 * report.mtu_savings(name));
  }
  return health.complete() ? 0 : robust::kPartialResultsExit;
}
