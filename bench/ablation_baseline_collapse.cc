// Ablation: how the constant-cwnd baseline degrades. Sweeps the pinned
// window and the receiver backlog depth, showing that (a) beyond the path's
// natural BDP a larger constant window only buys retransmissions, and
// (b) congestion control's energy advantage over the baseline grows as
// buffers shrink.

#include <cstdio>
#include <iostream>

#include "app/scenario.h"
#include "common.h"
#include "stats/table.h"

using namespace greencc;

namespace {

struct Outcome {
  double gbps = 0.0;
  double joules = 0.0;
  std::int64_t retx = 0;
};

Outcome run(const std::string& cca, int backlog_packets,
            units::Bytes bytes) {
  app::ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{1500};
  config.seed = 5;
  config.work.rx_backlog_packets = backlog_packets;
  app::Scenario scenario(config);
  app::FlowSpec flow;
  flow.cca = cca;
  flow.bytes = bytes;
  scenario.add_flow(flow);
  const auto r = scenario.run();
  return {r.flows[0].avg_rate.gbps(), r.total_energy.joules(),
          r.flows[0].retransmissions};
}

}  // namespace

int main(int argc, char** argv) {
  const units::Bytes bytes{
      bench::flag_i64(argc, argv, "--bytes", 500'000'000)};

  bench::print_header(
      "Ablation — baseline (no congestion control) collapse",
      "\"its large cwnd value makes the sender bursty which causes queuing "
      "... resulting in more frequent memory accesses and packet loss\"");

  stats::Table table({"rx-backlog[pkts]", "cca", "tput[Gbps]",
                      "energy[J]", "retx", "cubic-saves[%]"});
  for (int backlog : {8, 12, 32, 128}) {
    const auto cubic = run("cubic", backlog, bytes);
    const auto base = run("baseline", backlog, bytes);
    table.add_row({std::to_string(backlog), "cubic",
                   stats::Table::num(cubic.gbps, 2),
                   stats::Table::num(cubic.joules, 1),
                   std::to_string(cubic.retx), ""});
    table.add_row({std::to_string(backlog), "baseline",
                   stats::Table::num(base.gbps, 2),
                   stats::Table::num(base.joules, 1),
                   std::to_string(base.retx),
                   stats::Table::num(
                       100.0 * (base.joules - cubic.joules) / base.joules,
                       1)});
  }
  table.print(std::cout);
  std::printf("\n(adaptive control finds the receiver's service rate; the "
              "pinned window keeps overrunning it, wasting receiver CPU on "
              "drops and sender CPU on retransmissions)\n");
  return 0;
}
