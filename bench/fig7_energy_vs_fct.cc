// Figure 7: "Energy consumption vs flow completion time for different CCAs
// transmitting 50 GB of data."
//
// Every (CCA, MTU) cell becomes one scatter point. The paper's plot shows a
// strong positive relation with two clusters: large-MTU runs in the
// bottom-left (fast and frugal) and MTU-1500 runs in the top-right.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "cca_grid.h"
#include "common.h"
#include "core/efficiency.h"
#include "robust/shutdown.h"
#include "stats/stats.h"
#include "stats/table.h"

using namespace greencc;

int main(int argc, char** argv) {
  robust::install_shutdown_handler();
  bench::GridOptions options;
  options.bytes = bench::flag_i64(argc, argv, "--bytes", bench::kDefaultBytes);
  options.repeats =
      static_cast<int>(bench::flag_i64(argc, argv, "--repeats", 3));
  options.jobs = bench::flag_jobs(argc, argv);
  options.cache_path =
      bench::flag_str(argc, argv, "--cache", options.cache_path);
  bench::apply_supervisor_flags(argc, argv, options);

  bench::print_header(
      "Figure 7 — energy vs. flow completion time (50 GB equivalents)",
      "energy is strongly correlated with FCT; MTU-1500 runs cluster at "
      "long FCT / high energy, jumbo-frame runs at short FCT / low energy");

  robust::SweepReport health;
  auto cells = bench::run_cca_grid(options, &health);
  std::fprintf(stderr, "  %s\n", health.summary().c_str());
  std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
    return a.fct_sec < b.fct_sec;
  });

  stats::Table table({"cca", "mtu", "fct[s]", "energy[kJ]"});
  for (const auto& cell : cells) {
    table.add_row({cell.cca, std::to_string(cell.mtu_bytes),
                   stats::Table::num(cell.fct_sec, 1),
                   stats::Table::num(cell.energy_joules / 1e3, 3)});
  }
  table.print(std::cout);
  table.write_csv(bench::flag_str(argc, argv, "--csv", "fig7.csv"));

  core::EfficiencyReport report;
  for (const auto& cell : cells) report.add(cell);
  std::printf("\ncorr(energy, FCT) = %+.2f (paper: strong positive)\n",
              report.corr_energy_fct());

  // Cluster summary: mean FCT of MTU-1500 cells vs the rest.
  stats::Summary small_mtu, large_mtu;
  for (const auto& cell : cells) {
    (cell.mtu_bytes == 1500 ? small_mtu : large_mtu).add(cell.fct_sec);
  }
  std::printf("clusters: MTU1500 mean FCT %.1f s vs larger MTUs %.1f s "
              "(paper: ~60-90 s vs ~45-57 s)\n",
              small_mtu.mean(), large_mtu.mean());
  return health.complete() ? 0 : robust::kPartialResultsExit;
}
