// Extension: energy under non-congestive loss — the paper's J/GB ordering
// of CCAs (§4, Figs 5-8) measured on a clean 10 Gb/s bottleneck, re-swept
// across injected random-loss rates via the fault subsystem (src/fault/).
// Loss-tolerant model-based algorithms (BBRv1/v2) hold goodput — and
// therefore J/GB — roughly flat as the loss rate climbs, while loss-as-
// signal algorithms (Reno, CUBIC, Westwood) collapse: each spurious window
// cut stretches the transfer, and idle-ish watts times a longer transfer is
// more joules per delivered gigabyte.
//
// Now a thin wrapper over scenarios/ext_energy_under_loss.toml, executed
// by the scenario DSL runner; the legacy CLI lowers onto RunOptions
// overrides and the CSV stays byte-identical to the historical
// hand-written sweep.
//
//   ext_energy_under_loss [--bytes N] [--repeats K] [--jobs N]
//                         [--seed S] [--csv FILE] [--audit]
//                         [--deadline SEC] [--event-budget N] [--retries K]
//                         [--journal FILE] [--resume]

#include <cstdio>
#include <string>

#include "common.h"
#include "robust/shutdown.h"
#include "scenario_dsl/doc.h"
#include "scenario_dsl/runner.h"

#ifndef GREENCC_SCENARIO_FILE
#define GREENCC_SCENARIO_FILE "scenarios/ext_energy_under_loss.toml"
#endif

using namespace greencc;

int main(int argc, char** argv) {
  robust::install_shutdown_handler();

  dsl::RunOptions run;
  // Loss stretches FCTs ~10x at the high end; the scenario's modest default
  // transfer keeps the full sweep minutes, not hours. --bytes scales it.
  run.overrides.push_back(
      "flow.0.bytes=" +
      std::to_string(bench::flag_i64(argc, argv, "--bytes", 200'000'000)));
  run.repeats = static_cast<int>(bench::flag_i64(argc, argv, "--repeats", 3));
  run.have_seed = true;
  run.seed =
      static_cast<std::uint64_t>(bench::flag_i64(argc, argv, "--seed", 1));
  run.jobs = bench::flag_jobs(argc, argv);
  run.audit = bench::flag_set(argc, argv, "--audit");
  run.csv_path =
      bench::flag_str(argc, argv, "--csv", "ext_energy_under_loss.csv");
  run.cell_deadline_sec = bench::flag_double(argc, argv, "--deadline", 0.0);
  run.event_budget = static_cast<std::uint64_t>(
      bench::flag_i64(argc, argv, "--event-budget", 0));
  run.max_attempts =
      static_cast<int>(bench::flag_i64(argc, argv, "--retries", 0)) + 1;
  run.journal_path = bench::flag_str(argc, argv, "--journal", "");
  run.resume = bench::flag_set(argc, argv, "--resume");
  if (run.resume && run.journal_path.empty()) {
    run.journal_path = "ext_energy_under_loss_journal.jsonl";
  }
  run.progress = true;

  const std::string scenario_file =
      bench::flag_str(argc, argv, "--scenario", GREENCC_SCENARIO_FILE);

  bench::print_header(
      "Extension — energy per delivered GB under injected random loss",
      "\"unfair congestion control algorithms can be more energy "
      "efficient\" — and so can loss-tolerant ones once the wire itself "
      "drops packets");

  try {
    const dsl::ScenarioDoc doc = dsl::load_scenario_file(scenario_file);
    const dsl::SweepOutcome outcome = dsl::run_sweep(doc, run);
    std::fprintf(stderr, "  %s\n", outcome.report.summary().c_str());
    std::printf(
        "wrote %zu cells to %s\n"
        "\n(J/GB = sender energy over delivered gigabytes; loss is the "
        "bottleneck's injected i.i.d. drop rate. Loss-based CCAs pay for "
        "every spurious cut with idle watts; model-based ones mostly "
        "don't.)\n",
        outcome.cells, outcome.csv_path.c_str());
    return outcome.report.complete() ? 0 : robust::kPartialResultsExit;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ext_energy_under_loss: %s\n", e.what());
    return 1;
  }
}
