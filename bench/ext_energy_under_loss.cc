// Extension: energy under non-congestive loss — the paper's J/GB ordering
// of CCAs (§4, Figs 5-8) measured on a clean 10 Gb/s bottleneck, re-swept
// across injected random-loss rates via the fault subsystem (src/fault/).
// Loss-tolerant model-based algorithms (BBRv1/v2) hold goodput — and
// therefore J/GB — roughly flat as the loss rate climbs, while loss-as-
// signal algorithms (Reno, CUBIC, Westwood) collapse: each spurious window
// cut stretches the transfer, and idle-ish watts times a longer transfer is
// more joules per delivered gigabyte.
//
//   ext_energy_under_loss [--bytes N] [--repeats K] [--jobs N]
//                         [--seed S] [--csv FILE] [--audit]
//                         [--deadline SEC] [--event-budget N] [--retries K]
//                         [--journal FILE] [--resume]
//
// One row per (loss rate, CCA): J/GB, goodput, retransmissions, FCT. The
// CSV is byte-identical for any --jobs value (per-(cell,repeat) derived
// seeds, serial aggregation), which the determinism suite asserts. The
// sweep runs under the robust::SweepSupervisor — this is the supervised
// impaired sweep the audit and tsan presets exercise.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "app/parallel_runner.h"
#include "app/scenario.h"
#include "common.h"
#include "robust/journal.h"
#include "robust/shutdown.h"
#include "robust/supervisor.h"
#include "stats/stats.h"
#include "stats/table.h"

using namespace greencc;

int main(int argc, char** argv) {
  robust::install_shutdown_handler();

  // Loss stretches FCTs ~10x at the high end; a modest default transfer
  // keeps the full sweep minutes, not hours. --bytes scales it back up.
  const std::int64_t bytes =
      bench::flag_i64(argc, argv, "--bytes", 200'000'000);
  const int repeats =
      static_cast<int>(bench::flag_i64(argc, argv, "--repeats", 3));
  const int jobs = bench::flag_jobs(argc, argv);
  const auto base_seed =
      static_cast<std::uint64_t>(bench::flag_i64(argc, argv, "--seed", 1));
  const bool audit = bench::flag_set(argc, argv, "--audit");

  bench::print_header(
      "Extension — energy per delivered GB under injected random loss",
      "\"unfair congestion control algorithms can be more energy "
      "efficient\" — and so can loss-tolerant ones once the wire itself "
      "drops packets");

  const std::vector<double> loss_rates = {0.0, 1e-4, 1e-3, 3e-3, 1e-2};
  const std::vector<std::string> ccas = {"reno", "cubic", "bbr", "bbr2",
                                         "westwood"};

  struct CellSpec {
    double loss = 0.0;
    std::string cca;
  };
  std::vector<CellSpec> specs;
  for (double loss : loss_rates) {
    for (const auto& name : ccas) specs.push_back({loss, name});
  }
  const auto reps = static_cast<std::size_t>(std::max(repeats, 1));
  const std::size_t total = specs.size() * reps;
  std::vector<app::ScenarioResult> runs(total);
  std::vector<char> present(total, 0);

  // Binds the journal to everything that can change the numbers (`jobs`
  // and the supervision knobs deliberately excluded).
  std::ostringstream canon;
  // "/2" tags the journal payload format (rates journaled in bps).
  canon << "loss-sweep/2 bytes=" << bytes << " repeats=" << repeats
        << " seed=" << base_seed << " cells=";
  for (const auto& spec : specs) canon << spec.loss << ":" << spec.cca << ",";

  robust::SupervisorOptions sup;
  sup.jobs = jobs;
  sup.max_attempts =
      static_cast<int>(bench::flag_i64(argc, argv, "--retries", 0)) + 1;
  sup.cell_deadline_sec = bench::flag_double(argc, argv, "--deadline", 0.0);
  sup.event_budget = static_cast<std::uint64_t>(
      bench::flag_i64(argc, argv, "--event-budget", 0));
  sup.journal_path = bench::flag_str(argc, argv, "--journal", "");
  sup.config_hash = robust::fnv1a64(canon.str());
  sup.resume = bench::flag_set(argc, argv, "--resume");
  if (sup.resume && sup.journal_path.empty()) {
    sup.journal_path = "ext_energy_under_loss_journal.jsonl";
  }
  sup.progress = [&specs, reps](std::size_t done, std::size_t n,
                                std::size_t index, double secs) {
    const CellSpec& spec = specs[index / reps];
    std::fprintf(stderr,
                 "  loss-sweep: [%3zu/%zu] loss=%-7g %-9s rep=%zu"
                 "  %6.2fs\n",
                 done, n, spec.loss, spec.cca.c_str(), index % reps, secs);
  };

  robust::CellHooks hooks;
  hooks.run = [&](std::size_t t, robust::CellContext& ctx) -> std::string {
    const std::size_t cell = t / reps;
    const std::size_t rep = t % reps;
    app::ScenarioConfig config;
    config.seed = app::derive_seed(base_seed, cell, rep);
    ctx.set_seed(config.seed);
    if (audit) config.audit_interval = sim::SimTime::milliseconds(10);
    config.faults.impair.loss_rate = specs[cell].loss;
    config.faults.install = true;  // stage present even at loss 0
    app::Scenario scenario(std::move(config));
    app::FlowSpec flow;
    flow.cca = specs[cell].cca;
    flow.bytes = units::Bytes{bytes};
    // Pace at 90% of line rate so the bottleneck queue never overflows:
    // every retransmission is then attributable to the injected loss (the
    // non-congestive axis this sweep isolates), which also makes the retx
    // column monotone in the loss rate.
    flow.rate_limit = units::BitRate::bps(9e9);
    scenario.add_flow(flow);
    auto watch = ctx.watch(scenario.simulator());
    app::ScenarioResult result = scenario.run();
    if (ctx.cut() || result.stop_reason == "stopped" ||
        result.stop_reason == "budget_exhausted") {
      return {};  // truncated run: neither published nor journaled
    }
    // %.17g round-trips doubles exactly: a resumed sweep aggregates
    // bit-identical values to an uninterrupted one.
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "%.17g %.17g %.17g %" PRId64 " %" PRId64 " %d",
                  result.total_energy.joules(), result.flows[0].avg_rate.bps(),
                  result.flows[0].fct_sec, result.flows[0].delivered_bytes.count(),
                  result.flows[0].retransmissions,
                  result.all_completed ? 1 : 0);
    runs[t] = std::move(result);
    present[t] = 1;
    return buf;
  };
  hooks.restore = [&](std::size_t t, const std::string& payload) {
    // The rate is journaled in bps so restore rebuilds the exact double.
    double joules = 0.0, rate_bps = 0.0, fct = 0.0;  // lint-allow: unit-suffix (journal wire field)
    long long delivered = 0, retx = 0;
    int completed = 0;
    if (std::sscanf(payload.c_str(), "%lg %lg %lg %lld %lld %d", &joules,
                    &rate_bps, &fct, &delivered, &retx, &completed) != 6) {
      return;  // malformed: cell stays absent and is not aggregated
    }
    app::ScenarioResult run;
    run.total_energy = units::Energy::joules(joules);
    run.flows.resize(1);
    run.flows[0].avg_rate = units::BitRate::bps(rate_bps);
    run.flows[0].fct_sec = fct;
    run.flows[0].delivered_bytes = units::Bytes{delivered};
    run.flows[0].retransmissions = retx;
    run.all_completed = completed != 0;
    runs[t] = std::move(run);
    present[t] = 1;
  };

  robust::SweepSupervisor supervisor(std::move(sup));
  const robust::SweepReport report = supervisor.run(total, hooks);
  std::fprintf(stderr, "  %s\n", report.summary().c_str());

  // Serial aggregation in cell order: byte-identical for any --jobs value.
  // Absent repeats (cut/quarantined/not-run) are skipped; the health line
  // above discloses them.
  stats::Table table({"loss", "cca", "J/GB", "sd", "goodput[Gbps]", "retx",
                      "fct[s]", "completed"});
  for (std::size_t c = 0; c < specs.size(); ++c) {
    stats::Summary jpgb, gbps, retxs, fct;
    bool all_done = true;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const std::size_t t = c * reps + rep;
      if (!present[t]) {
        all_done = false;
        continue;
      }
      const auto& run = runs[t];
      all_done &= run.all_completed;
      const double gb =
          static_cast<double>(run.flows[0].delivered_bytes.count()) / 1e9;
      jpgb.add(gb > 0 ? run.total_energy.joules() / gb : 0.0);
      gbps.add(run.flows[0].avg_rate.gbps());
      retxs.add(static_cast<double>(run.flows[0].retransmissions));
      fct.add(run.flows[0].fct_sec);
    }
    table.add_row({stats::Table::num(specs[c].loss, 4), specs[c].cca,
                   stats::Table::num(jpgb.mean(), 2),
                   stats::Table::num(jpgb.stddev(), 2),
                   stats::Table::num(gbps.mean(), 3),
                   stats::Table::num(retxs.mean(), 0),
                   stats::Table::num(fct.mean(), 3),
                   all_done ? "yes" : "NO"});
  }
  table.print(std::cout);
  table.write_csv(
      bench::flag_str(argc, argv, "--csv", "ext_energy_under_loss.csv"));
  std::printf(
      "\n(J/GB = sender energy over delivered gigabytes; loss is the "
      "bottleneck's injected i.i.d. drop rate. Loss-based CCAs pay for "
      "every spurious cut with idle watts; model-based ones mostly "
      "don't.)\n");
  return report.complete() ? 0 : robust::kPartialResultsExit;
}
