// Extension: energy under non-congestive loss — the paper's J/GB ordering
// of CCAs (§4, Figs 5-8) measured on a clean 10 Gb/s bottleneck, re-swept
// across injected random-loss rates via the fault subsystem (src/fault/).
// Loss-tolerant model-based algorithms (BBRv1/v2) hold goodput — and
// therefore J/GB — roughly flat as the loss rate climbs, while loss-as-
// signal algorithms (Reno, CUBIC, Westwood) collapse: each spurious window
// cut stretches the transfer, and idle-ish watts times a longer transfer is
// more joules per delivered gigabyte.
//
//   ext_energy_under_loss [--bytes N] [--repeats K] [--jobs N]
//                         [--seed S] [--csv FILE] [--audit]
//
// One row per (loss rate, CCA): J/GB, goodput, retransmissions, FCT. The
// CSV is byte-identical for any --jobs value (per-(cell,repeat) derived
// seeds, serial aggregation), which the determinism suite asserts.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "app/parallel_runner.h"
#include "app/scenario.h"
#include "common.h"
#include "stats/stats.h"
#include "stats/table.h"

using namespace greencc;

int main(int argc, char** argv) {
  // Loss stretches FCTs ~10x at the high end; a modest default transfer
  // keeps the full sweep minutes, not hours. --bytes scales it back up.
  const std::int64_t bytes =
      bench::flag_i64(argc, argv, "--bytes", 200'000'000);
  const int repeats =
      static_cast<int>(bench::flag_i64(argc, argv, "--repeats", 3));
  const int jobs = bench::flag_jobs(argc, argv);
  const auto base_seed =
      static_cast<std::uint64_t>(bench::flag_i64(argc, argv, "--seed", 1));
  const bool audit = bench::flag_set(argc, argv, "--audit");

  bench::print_header(
      "Extension — energy per delivered GB under injected random loss",
      "\"unfair congestion control algorithms can be more energy "
      "efficient\" — and so can loss-tolerant ones once the wire itself "
      "drops packets");

  const std::vector<double> loss_rates = {0.0, 1e-4, 1e-3, 3e-3, 1e-2};
  const std::vector<std::string> ccas = {"reno", "cubic", "bbr", "bbr2",
                                         "westwood"};

  struct CellSpec {
    double loss = 0.0;
    std::string cca;
  };
  std::vector<CellSpec> specs;
  for (double loss : loss_rates) {
    for (const auto& name : ccas) specs.push_back({loss, name});
  }
  const auto reps = static_cast<std::size_t>(std::max(repeats, 1));
  const std::size_t total = specs.size() * reps;
  std::vector<app::ScenarioResult> runs(total);

  app::ParallelRunner pool(
      jobs, [&specs, reps](std::size_t done, std::size_t n, std::size_t index,
                           double secs) {
        const CellSpec& spec = specs[index / reps];
        std::fprintf(stderr,
                     "  loss-sweep: [%3zu/%zu] loss=%-7g %-9s rep=%zu"
                     "  %6.2fs\n",
                     done, n, spec.loss, spec.cca.c_str(), index % reps, secs);
      });
  pool.for_each_index(total, [&](std::size_t t) {
    const std::size_t cell = t / reps;
    const std::size_t rep = t % reps;
    app::ScenarioConfig config;
    config.seed = app::derive_seed(base_seed, cell, rep);
    if (audit) config.audit_interval = sim::SimTime::milliseconds(10);
    config.faults.impair.loss_rate = specs[cell].loss;
    config.faults.install = true;  // stage present even at loss 0
    app::Scenario scenario(std::move(config));
    app::FlowSpec flow;
    flow.cca = specs[cell].cca;
    flow.bytes = bytes;
    // Pace at 90% of line rate so the bottleneck queue never overflows:
    // every retransmission is then attributable to the injected loss (the
    // non-congestive axis this sweep isolates), which also makes the retx
    // column monotone in the loss rate.
    flow.rate_limit_bps = 9e9;
    scenario.add_flow(flow);
    runs[t] = scenario.run();
  });

  // Serial aggregation in cell order: byte-identical for any --jobs value.
  stats::Table table({"loss", "cca", "J/GB", "sd", "goodput[Gbps]", "retx",
                      "fct[s]", "completed"});
  for (std::size_t c = 0; c < specs.size(); ++c) {
    stats::Summary jpgb, gbps, retxs, fct;
    bool all_done = true;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto& run = runs[c * reps + rep];
      all_done &= run.all_completed;
      const double gb = static_cast<double>(run.flows[0].delivered_bytes) / 1e9;
      jpgb.add(gb > 0 ? run.total_joules / gb : 0.0);
      gbps.add(run.flows[0].avg_gbps);
      retxs.add(static_cast<double>(run.flows[0].retransmissions));
      fct.add(run.flows[0].fct_sec);
    }
    table.add_row({stats::Table::num(specs[c].loss, 4), specs[c].cca,
                   stats::Table::num(jpgb.mean(), 2),
                   stats::Table::num(jpgb.stddev(), 2),
                   stats::Table::num(gbps.mean(), 3),
                   stats::Table::num(retxs.mean(), 0),
                   stats::Table::num(fct.mean(), 3),
                   all_done ? "yes" : "NO"});
  }
  table.print(std::cout);
  table.write_csv(
      bench::flag_str(argc, argv, "--csv", "ext_energy_under_loss.csv"));
  std::printf(
      "\n(J/GB = sender energy over delivered gigabytes; loss is the "
      "bottleneck's injected i.i.d. drop rate. Loss-based CCAs pay for "
      "every spurious cut with idle watts; model-based ones mostly "
      "don't.)\n");
  return 0;
}
