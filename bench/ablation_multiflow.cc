// Ablation: does unfairness stay green beyond two flows? The paper's §5
// lists "multiplexing multiple flows at the same sender" as future work;
// Theorem 1 predicts the fair share stays the worst allocation for any
// flow count. This bench measures fair-share vs. full-speed-then-idle for
// n = 2..8 flows in full simulation and compares against the closed form.

#include <cstdio>
#include <iostream>

#include "app/scenario.h"
#include "common.h"
#include "core/scheduler.h"
#include "core/theorem.h"
#include "energy/power_model.h"
#include "stats/table.h"

using namespace greencc;

namespace {

double run_schedule(core::Schedule schedule, int flows, units::Bytes bytes) {
  app::ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = 21;
  app::Scenario scenario(config);
  for (const auto& spec :
       core::make_schedule(schedule, flows, bytes, "cubic",
                           units::BitRate::gbps(10))) {
    scenario.add_flow(spec);
  }
  return scenario.run().total_energy.joules();
}

}  // namespace

int main(int argc, char** argv) {
  const units::Bytes bytes{
      bench::flag_i64(argc, argv, "--bytes", 625'000'000)};  // 5 Gbit/flow

  bench::print_header(
      "Ablation — full-speed-then-idle savings vs. flow count",
      "Theorem 1: fair share maximizes power for every n; savings persist "
      "beyond the paper's two-flow experiment");

  energy::PackagePowerModel model;
  const energy::PowerCalibration calib;
  const auto p = [&](double x) {
    return model
        .single_flow_watts(units::BitRate::gbps(x), calib.fig2_util_per_gbps,
                           calib.fig2_pps_per_gbps)
        .watts();
  };

  stats::Table table({"flows", "fair[J]", "fsi[J]", "savings[%]",
                      "closed-form[%]"});
  for (int flows : {2, 3, 4, 6, 8}) {
    const double fair =
        run_schedule(core::Schedule::kFairShare, flows, bytes);
    const double fsi =
        run_schedule(core::Schedule::kFullSpeedThenIdle, flows, bytes);
    const double savings = (fair - fsi) / fair;
    const double predicted = core::Theorem1::fsi_savings(10.0, flows, p);
    table.add_row({std::to_string(flows), stats::Table::num(fair, 1),
                   stats::Table::num(fsi, 1),
                   stats::Table::num(100.0 * savings, 2),
                   stats::Table::num(100.0 * predicted, 2)});
  }
  table.print(std::cout);
  std::printf("\n(each flow carries %.1f Gbit; fair runs all flows "
              "concurrently, FSI serializes them at line rate)\n",
              static_cast<double>(bytes.count()) * 8.0 / 1e9);
  return 0;
}
