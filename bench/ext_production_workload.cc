// Extension: production-style workloads — §5: "Investigating if this holds
// at scale, with hardware offloading, and with the sorts of workloads used
// in production data centers is needed as future work."
//
// Open-loop Poisson arrivals drawn from the web-search (DCTCP) and
// data-mining (VL2) flow-size distributions hit the testbed at increasing
// offered load; per (workload, CCA, load) we report goodput, energy per
// delivered gigabyte and FCT slowdowns. The energy-per-byte cost of a
// transport is what a datacenter operator would actually budget.

#include <cstdio>
#include <iostream>

#include "app/workload.h"
#include "common.h"
#include "stats/table.h"

using namespace greencc;

int main(int argc, char** argv) {
  const double horizon_sec = bench::flag_double(argc, argv, "--horizon", 1.5);

  bench::print_header(
      "Extension — energy under production workloads (§5)",
      "Poisson arrivals from the web-search / data-mining CDFs; energy per "
      "delivered GB rises as load falls (idle power amortizes worse) — the "
      "fleet-level version of the paper's concavity argument");

  const auto websearch = app::websearch_workload();
  const auto datamining = app::datamining_workload();
  struct Workload {
    const char* label;
    const app::FlowSizeDistribution* dist;
  };
  const Workload workloads[] = {{"websearch", websearch.get()},
                                {"datamining", datamining.get()}};

  stats::Table table({"workload", "cca", "load", "flows", "goodput[Gbps]",
                      "J/GB", "p99 slowdown", "mice p99"});
  for (const auto& workload : workloads) {
    for (const char* cca : {"cubic", "dctcp", "swift"}) {
      for (double load : {0.3, 0.6, 0.8}) {
        app::WorkloadConfig config;
        config.cca = cca;
        config.load = load;
        config.sizes = workload.dist;
        config.horizon = sim::SimTime::seconds(horizon_sec);
        config.seed = 11;
        const auto r = app::run_workload(config);
        table.add_row({workload.label, cca, stats::Table::num(load, 1),
                       std::to_string(r.flows_completed) + "/" +
                           std::to_string(r.flows_started),
                       stats::Table::num(r.goodput.gbps(), 2),
                       stats::Table::num(r.energy_intensity.joules_per_gb(), 1),
                       stats::Table::num(r.p99_slowdown, 1),
                       stats::Table::num(r.mice_p99_slowdown, 1)});
        std::fprintf(stderr, "  workload: %s %s load=%.1f done\n",
                     workload.label, cca, load);
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\n(J/GB falls as load rises: the senders' idle/baseline power is\n"
      "amortized over more delivered bytes — the same concavity that makes\n"
      "full-speed-then-idle the greenest schedule makes *busy* servers the\n"
      "greenest servers. Slowdowns show the usual transport trade-off:\n"
      "delay-based CCAs protect mice, loss-based ones favor elephants.)\n");
  return 0;
}
