// Figure 2: "Rate of energy consumption for a CUBIC sender while sending at
// different throughputs."
//
// One CUBIC flow, MTU 9000, rate-limited to each target throughput; average
// sender power is measured over the transfer. The "full speed, then idle"
// column is the chord of the curve — the power of achieving the same
// average throughput by bursting at line rate and idling (§4.1's tangent
// argument: because the curve is strictly concave, the chord lies below it
// everywhere except the endpoints).

#include <cstdio>
#include <iostream>

#include "app/runner.h"
#include "common.h"
#include "stats/stats.h"
#include "stats/table.h"
#include "units/units.h"

using namespace greencc;

namespace {

double measured_power(double gbps, units::Bytes bytes, int repeats,
                      int jobs) {
  auto builder = [&](std::uint64_t seed) {
    app::ScenarioConfig config;
    config.tcp.mtu_bytes = units::Bytes{9000};
    config.seed = seed;
    auto scenario = std::make_unique<app::Scenario>(config);
    app::FlowSpec flow;
    flow.cca = "cubic";
    flow.bytes = bytes;
    flow.rate_limit = units::BitRate::gbps(gbps);  // 0 = unlimited
    scenario->add_flow(flow);
    return scenario;
  };
  app::RepeatOptions options;
  options.repeats = repeats;
  options.jobs = jobs;
  // One cell per target bitrate, so seeds never overlap along the curve.
  options.cell_index = static_cast<std::uint64_t>(gbps * 10.0);
  return app::run_repeated(builder, options).watts.mean();
}

double idle_power(int repeats) {
  // An (almost) idle host: a minimal transfer over a long metering window
  // dominated by idle time would skew the average, so read the model's idle
  // point the way the paper reads RAPL on a quiet server.
  (void)repeats;
  energy::PackagePowerModel model;
  return model.watts(energy::HostActivity{}).watts();
}

}  // namespace

int main(int argc, char** argv) {
  const int repeats =
      static_cast<int>(bench::flag_i64(argc, argv, "--repeats", 3));
  const int jobs = bench::flag_jobs(argc, argv);

  bench::print_header(
      "Figure 2 — power vs. average throughput (CUBIC, MTU 9000)",
      "strictly concave: idle 21.49 W, 34.23 W @5G, 35.82 W @10G; "
      "+12.7 W for the first 5 Gb/s but only +1.6 W for the next 5");

  const double p0 = idle_power(repeats);

  std::vector<double> xs = {0.0};
  std::vector<double> ys = {p0};
  stats::Table table({"Gbps", "smooth[W]", "full-speed-then-idle[W]"});

  // Measure the full-rate point first; the chord interpolates p0..p10.
  double p10 = 0.0;
  std::vector<std::pair<double, double>> rows;
  for (double gbps : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0}) {
    // Scale bytes so each point simulates ~1.5 s of traffic.
    const units::Bytes bytes{static_cast<std::int64_t>(gbps * 1e9 * 1.5 / 8.0)};
    const double rate_limit = gbps >= 10.0 ? 0.0 : gbps;
    const double watts =
        measured_power(rate_limit, bytes, repeats, jobs);
    rows.emplace_back(gbps, watts);
    xs.push_back(gbps);
    ys.push_back(watts);
    if (gbps >= 10.0) p10 = watts;
  }

  table.add_row({"0", stats::Table::num(p0, 2), stats::Table::num(p0, 2)});
  for (const auto& [gbps, watts] : rows) {
    const double chord = p0 + (p10 - p0) * gbps / 10.0;
    table.add_row({stats::Table::num(gbps, 0), stats::Table::num(watts, 2),
                   stats::Table::num(chord, 2)});
  }
  table.print(std::cout);
  table.write_csv(bench::flag_str(argc, argv, "--csv", "fig2.csv"));

  std::printf("\nconcavity check (strictly concave): %s\n",
              stats::is_strictly_concave(xs, ys) ? "PASS" : "FAIL");
  std::printf("anchors: p(0)=%.2f W (paper 21.49), p(5)=%.2f W (paper "
              "34.23), p(10)=%.2f W (paper 35.82)\n",
              p0, ys[5], p10);
  std::printf("marginal power: first 5G +%.2f W, next 5G +%.2f W "
              "(paper: +12.7, +1.6)\n",
              ys[5] - p0, p10 - ys[5]);
  return 0;
}
