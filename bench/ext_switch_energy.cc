// Extension: load imbalance across links with energy-proportional switches —
// the paper's closing research direction: "prior work suggests that
// utilization does not significantly affect the energy consumption of
// switches ... [but if] networking equipment should be built to reduce
// power usage when the load is reduced ... our results imply that there
// could be significant power savings by increasing load imbalance across
// data center links."
//
// Two 5 Gb/s flows cross a two-path fabric (two 10 Gb/s links). A balanced
// (ECMP-style) placement puts one flow on each link; a packed placement
// puts both on one link and leaves the other idle. Switch energy is
// integrated under the three port power profiles.

#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>

#include "cca/cca.h"
#include "common.h"
#include "energy/cpu.h"
#include "energy/switch_power.h"
#include "net/port.h"
#include "sim/simulator.h"
#include "stats/table.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"

using namespace greencc;

namespace {

/// Routes packets to one of two endpoints by flow id.
class FlowDemux : public net::PacketHandler {
 public:
  net::PacketHandler* a = nullptr;
  net::PacketHandler* b = nullptr;
  void handle(net::Packet pkt) override {
    (pkt.flow == 1 ? a : b)->handle(pkt);
  }
};

/// Two senders, two parallel 10 Gb/s paths, a static flow->path placement.
struct TwoPathFabric {
  TwoPathFabric(sim::Simulator& sim, bool packed, units::Bytes bytes,
                units::BitRate rate)
      : sim_(&sim), total_bytes_(bytes.count()), app_rate_(rate) {
    net::PortConfig path_config;
    path_config.rate = units::BitRate::bps(10e9);
    path_config.propagation = sim::SimTime::microseconds(5);
    net::PortConfig return_config = path_config;

    paths[0] = std::make_unique<net::QueuedPort>(sim, "path0", path_config,
                                                 nullptr);
    paths[1] = std::make_unique<net::QueuedPort>(sim, "path1", path_config,
                                                 nullptr);
    ack_path = std::make_unique<net::QueuedPort>(sim, "ack", return_config,
                                                 nullptr);

    for (int i = 0; i < 2; ++i) {
      const int path_index = packed ? 0 : i;
      cca::CcaConfig cca_config;
      tcp::TcpConfig tcp_config;
      cca_config.mss_bytes = tcp_config.mss_bytes();
      senders[i] = std::make_unique<tcp::TcpSender>(
          sim, /*flow=*/i + 1, /*src=*/1 + i, /*dst=*/0, tcp_config,
          cca::make_cca("cubic", cca_config), &cores[i],
          paths[path_index].get());
      receivers[i] = std::make_unique<tcp::TcpReceiver>(
          sim, i + 1, 0, tcp_config, ack_path.get());

      // App-level 5 Gb/s token bucket (the flows are meant to *fit*
      // side-by-side on one 10 Gb/s link). The pump reschedules itself
      // through the fabric (which outlives the run) instead of an owning
      // shared_ptr closure, which would self-reference and leak.
      sim.schedule(sim::SimTime::zero(), [this, i] { pump(i); });
    }

    // Demux by flow id on both directions.
    rx_demux = std::make_unique<FlowDemux>();
    rx_demux->a = receivers[0].get();
    rx_demux->b = receivers[1].get();
    ack_demux = std::make_unique<FlowDemux>();
    ack_demux->a = senders[0].get();
    ack_demux->b = senders[1].get();
    paths[0]->set_next(rx_demux.get());
    paths[1]->set_next(rx_demux.get());
    ack_path->set_next(ack_demux.get());
  }

  bool complete() const {
    return senders[0]->complete() && senders[1]->complete();
  }

  energy::CpuCore cores[2];
  std::unique_ptr<net::QueuedPort> paths[2];
  std::unique_ptr<net::QueuedPort> ack_path;
  std::unique_ptr<tcp::TcpSender> senders[2];
  std::unique_ptr<tcp::TcpReceiver> receivers[2];

 private:
  void pump(int i) {
    const auto grant =
        static_cast<std::int64_t>(app_rate_.bps() / 8.0 * 500e-6);
    const auto left = total_bytes_ - granted_[i];
    const auto now_grant = std::min<std::int64_t>(grant, left);
    if (now_grant > 0) {
      granted_[i] += now_grant;
      senders[i]->add_app_data(units::Bytes{now_grant});
      if (granted_[i] >= total_bytes_) senders[i]->mark_app_eof();
      senders[i]->start();
    }
    if (granted_[i] < total_bytes_) {
      sim_->schedule(sim::SimTime::microseconds(500), [this, i] { pump(i); });
    }
  }

  std::unique_ptr<FlowDemux> rx_demux;
  std::unique_ptr<FlowDemux> ack_demux;
  sim::Simulator* sim_;
  std::int64_t total_bytes_;
  units::BitRate app_rate_;
  std::int64_t granted_[2] = {0, 0};
};

struct Outcome {
  units::Energy switch_energy;
  double duration = 0.0;
  bool done = false;
};

Outcome run(bool packed, energy::PortPowerProfile profile,
            units::Bytes bytes) {
  sim::Simulator sim;
  TwoPathFabric fabric(sim, packed, bytes, units::BitRate::bps(5e9));
  energy::SwitchEnergyMeter meter(sim, energy::SwitchPowerConfig{}, profile);
  meter.attach_port(fabric.paths[0].get());
  meter.attach_port(fabric.paths[1].get());
  meter.start();
  // The measurement window ends when both flows complete (the paper's
  // before/after protocol).
  int done = 0;
  for (auto& sender : fabric.senders) {
    sender->set_on_complete([&] {
      if (++done == 2) sim.stop();
    });
  }
  sim.run_until(sim::SimTime::seconds(30.0));
  meter.stop();
  Outcome o;
  o.switch_energy = meter.energy();
  o.duration = sim.now().sec();
  o.done = fabric.complete();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const units::Bytes bytes{
      bench::flag_i64(argc, argv, "--bytes", 1'250'000'000)};  // 10 Gbit/flow

  bench::print_header(
      "Extension — load imbalance across links with rate-adaptive switches",
      "constant-power switches don't care about placement; rate-adaptive / "
      "sleep-capable ports reward packing flows onto fewer links (§5)");

  struct Row {
    const char* profile;
    energy::PortPowerProfile p;
  };
  const Row rows[] = {
      {"constant (measured gear)", energy::PortPowerProfile::kConstant},
      {"rate-adaptive", energy::PortPowerProfile::kRateAdaptive},
      {"sleep-capable", energy::PortPowerProfile::kSleepCapable},
  };

  stats::Table table({"port profile", "balanced[J]", "packed[J]",
                      "saves[%]", "port-only saves[%]"});
  const energy::SwitchPowerConfig power_config;
  for (const auto& row : rows) {
    const auto balanced = run(false, row.p, bytes);
    const auto packed = run(true, row.p, bytes);
    if (!balanced.done || !packed.done) {
      std::printf("run did not complete\n");
      return 1;
    }
    const double savings = 100.0 *
                           (balanced.switch_energy.joules() - packed.switch_energy.joules()) /
                           balanced.switch_energy.joules();
    // Per-port energy with the (placement-invariant) chassis removed: the
    // number a full-fabric deployment would multiply by its port count.
    const double b_ports =
        balanced.switch_energy.joules() -
        power_config.chassis_watts.watts() * balanced.duration;
    const double p_ports =
        packed.switch_energy.joules() -
        power_config.chassis_watts.watts() * packed.duration;
    const double port_savings =
        b_ports > 0 ? 100.0 * (b_ports - p_ports) / b_ports : 0.0;
    table.add_row({row.profile, stats::Table::num(balanced.switch_energy.joules(), 1),
                   stats::Table::num(packed.switch_energy.joules(), 1),
                   stats::Table::num(savings, 2),
                   stats::Table::num(port_savings, 1)});
  }
  table.print(std::cout);
  std::printf(
      "\n(both flows are 5 Gb/s app-limited; 'packed' shares one 10 Gb/s "
      "link so the second link can step down or sleep. With constant-power "
      "gear the placement is energy-neutral — the paper's cited "
      "measurement — while energy-proportional gear rewards imbalance, the "
      "paper's proposed direction for routing/load-balancing research.)\n");
  return 0;
}
