// Figure 8: "Energy consumption vs retransmissions for different CCAs
// transmitting 50 GB of data."
//
// One scatter point per (CCA, MTU) cell. §4.5 reports corr = 0.47 when the
// highly variable BBR2 measurements are excluded, and observes that the
// no-CC baseline "naturally induces a higher rate of retransmissions and
// ends up consuming a larger amount of energy on average".

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "cca_grid.h"
#include "common.h"
#include "core/efficiency.h"
#include "robust/shutdown.h"
#include "stats/table.h"

using namespace greencc;

int main(int argc, char** argv) {
  robust::install_shutdown_handler();
  bench::GridOptions options;
  options.bytes = bench::flag_i64(argc, argv, "--bytes", bench::kDefaultBytes);
  options.repeats =
      static_cast<int>(bench::flag_i64(argc, argv, "--repeats", 3));
  options.jobs = bench::flag_jobs(argc, argv);
  options.cache_path =
      bench::flag_str(argc, argv, "--cache", options.cache_path);
  bench::apply_supervisor_flags(argc, argv, options);

  bench::print_header(
      "Figure 8 — energy vs. retransmissions (50 GB equivalents)",
      "corr(energy, retx) ~ 0.47 excluding BBR2; the baseline has by far "
      "the most retransmissions and above-average energy");

  robust::SweepReport health;
  auto cells = bench::run_cca_grid(options, &health);
  std::fprintf(stderr, "  %s\n", health.summary().c_str());
  std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
    return a.retransmissions < b.retransmissions;
  });

  stats::Table table({"cca", "mtu", "retx[pkts]", "energy[kJ]"});
  for (const auto& cell : cells) {
    table.add_row({cell.cca, std::to_string(cell.mtu_bytes),
                   stats::Table::num(cell.retransmissions, 0),
                   stats::Table::num(cell.energy_joules / 1e3, 3)});
  }
  table.print(std::cout);
  table.write_csv(bench::flag_str(argc, argv, "--csv", "fig8.csv"));

  core::EfficiencyReport report;
  for (const auto& cell : cells) report.add(cell);
  std::printf("\ncorr(energy, retx) excluding bbr2 = %+.2f (paper: 0.47)\n",
              report.corr_energy_retx("bbr2"));
  std::printf("corr(energy, retx) including bbr2 = %+.2f\n",
              report.corr_energy_retx());

  // Baseline has the most retransmissions at every MTU.
  bool baseline_max = true;
  for (int mtu : options.mtus) {
    double base = 0.0, best_other = 0.0;
    for (const auto& cell : cells) {
      if (cell.mtu_bytes != mtu) continue;
      if (cell.cca == "baseline") {
        base = cell.retransmissions;
      } else {
        best_other = std::max(best_other, cell.retransmissions);
      }
    }
    if (base <= best_other) baseline_max = false;
  }
  std::printf("baseline has the most retransmissions at every MTU: %s\n",
              baseline_max ? "PASS" : "FAIL");
  return health.complete() ? 0 : robust::kPartialResultsExit;
}
