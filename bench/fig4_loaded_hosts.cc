// Figure 4: "Rate of energy consumption for a CUBIC sender with different
// amounts of server loads in the background" — plus §4.2's fleet-scale
// extrapolation ($10M/year for a 1% saving at 100k racks).
//
// The `stress` tool of the paper maps to ScenarioConfig::stress_cores
// (32 cores total, so 25% load = 8 cores). For each load level the bench
// sweeps the flow's bitrate and reports average sender power, then computes
// the full-speed-then-idle saving at that load from the measured endpoints.

#include <cstdio>
#include <iostream>

#include "app/runner.h"
#include "common.h"
#include "core/estimator.h"
#include "stats/table.h"
#include "units/units.h"

using namespace greencc;

namespace {

double measured_power(double gbps, int stress_cores, int repeats, int jobs) {
  auto builder = [&](std::uint64_t seed) {
    app::ScenarioConfig config;
    config.tcp.mtu_bytes = units::Bytes{9000};
    config.seed = seed;
    config.stress_cores = stress_cores;
    auto scenario = std::make_unique<app::Scenario>(config);
    app::FlowSpec flow;
    flow.cca = "cubic";
    flow.bytes =
        units::Bytes{static_cast<std::int64_t>(std::max(gbps, 0.5) * 1e9 / 8.0)};
    flow.rate_limit = gbps >= 10.0 ? units::BitRate::zero()
                                   : units::BitRate::gbps(gbps);
    scenario->add_flow(flow);
    return scenario;
  };
  app::RepeatOptions options;
  options.repeats = repeats;
  options.jobs = jobs;
  // One cell per (load, bitrate) point of the power matrix.
  options.cell_index = static_cast<std::uint64_t>(stress_cores) * 100 +
                       static_cast<std::uint64_t>(gbps * 10.0);
  return app::run_repeated(builder, options).watts.mean();
}

double idle_power(int stress_cores) {
  energy::PackagePowerModel model;
  energy::HostActivity activity;
  activity.stress_cores = stress_cores;
  return model.watts(activity).watts();
}

}  // namespace

int main(int argc, char** argv) {
  const int repeats =
      static_cast<int>(bench::flag_i64(argc, argv, "--repeats", 3));
  const int jobs = bench::flag_jobs(argc, argv);

  bench::print_header(
      "Figure 4 — power vs. bitrate under background load (+ §4.2 savings)",
      "curves flatten as load grows: FSI saves 16% on idle hosts, ~1% at "
      "25% load, ~0.17% at 75% load; 1% of a 100k-rack fleet ~= $10M/year");

  const int loads_pct[] = {0, 25, 50, 75};
  stats::Table table({"Gbps", "0%load[W]", "25%load[W]", "50%load[W]",
                      "75%load[W]"});

  // Power matrix: rows = bitrate, cols = load.
  double p[11][4] = {};
  for (int col = 0; col < 4; ++col) {
    const int cores = loads_pct[col] * 32 / 100;
    p[0][col] = idle_power(cores);
    for (int gbps = 2; gbps <= 10; gbps += 2) {
      p[gbps][col] = measured_power(gbps, cores, repeats, jobs);
    }
    p[5][col] = measured_power(5.0, cores, repeats, jobs);
  }
  for (int gbps : {0, 2, 4, 5, 6, 8, 10}) {
    table.add_row({stats::Table::num(gbps, 0),
                   stats::Table::num(p[gbps][0], 2),
                   stats::Table::num(p[gbps][1], 2),
                   stats::Table::num(p[gbps][2], 2),
                   stats::Table::num(p[gbps][3], 2)});
  }
  table.print(std::cout);
  table.write_csv(bench::flag_str(argc, argv, "--csv", "fig4.csv"));

  // §4.2: FSI saving at each load from the measured endpoints, and what it
  // is worth across a datacenter fleet.
  std::printf("\nfull-speed-then-idle savings by load (2 flows, measured "
              "p(0)/p(5)/p(10)):\n");
  core::SavingsEstimator fleet;
  for (int col = 0; col < 4; ++col) {
    const double fair = 2.0 * p[5][col];
    const double fsi = p[10][col] + p[0][col];
    const double savings = (fair - fsi) / fair;
    std::printf("  load %2d%%: %6.3f%%  -> fleet savings ~$%.1fM/year\n",
                loads_pct[col], 100.0 * savings,
                fleet.usd_per_year(savings) / 1e6);
  }
  std::printf("(paper: 16%% at idle, ~1%% at 25%%, ~0.17%% at 75%%; \"a 1%% "
              "improvement corresponds to ... $10 million/year\")\n");
  return 0;
}
