// Extension: incast — §5: "Investigating if this holds at scale ... is
// needed as future work, including multiplexing multiple flows at the same
// sender, and incast."
//
// N senders simultaneously push equal shares of a fixed aggregate to one
// receiver (the classic partition/aggregate pattern). We sweep the fan-in
// and compare the fair (all-at-once) schedule against full-speed-then-idle
// serialization, reporting total sender energy, drops at the bottleneck
// and the §4.1 savings as a function of fan-in.

#include <cstdio>
#include <iostream>

#include "app/scenario.h"
#include "common.h"
#include "core/scheduler.h"
#include "stats/table.h"

using namespace greencc;

namespace {

struct Outcome {
  double joules = 0.0;
  double duration = 0.0;
  std::uint64_t drops = 0;
  std::int64_t retx = 0;
  bool done = false;
};

Outcome run(core::Schedule schedule, int fan_in, units::Bytes total_bytes) {
  app::ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = 77;
  app::Scenario scenario(config);
  for (const auto& spec : core::make_schedule(
           schedule, fan_in, total_bytes / fan_in, "cubic",
           units::BitRate::gbps(10))) {
    scenario.add_flow(spec);
  }
  const auto r = scenario.run();
  Outcome o;
  o.done = r.all_completed;
  o.joules = r.total_energy.joules();
  o.duration = r.duration_sec;
  o.drops = r.bottleneck.dropped + r.rx_backlog.dropped;
  for (const auto& f : r.flows) o.retx += f.retransmissions;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const units::Bytes total_bytes{
      bench::flag_i64(argc, argv, "--bytes", 2'500'000'000)};  // 20 Gbit total

  bench::print_header(
      "Extension — incast: does unfairness stay green at high fan-in? (§5)",
      "N synchronized senders, one receiver; fair-share incast burns "
      "idle-capable host time and suffers drops, serialization avoids both");

  stats::Table table({"fan-in", "fair[J]", "fair drops", "fair retx",
                      "fsi[J]", "fsi drops", "savings[%]"});
  for (int fan_in : {2, 4, 8, 16, 32}) {
    const auto fair = run(core::Schedule::kFairShare, fan_in, total_bytes);
    const auto fsi =
        run(core::Schedule::kFullSpeedThenIdle, fan_in, total_bytes);
    if (!fair.done || !fsi.done) {
      std::printf("fan-in %d did not complete\n", fan_in);
      continue;
    }
    table.add_row(
        {std::to_string(fan_in), stats::Table::num(fair.joules, 1),
         std::to_string(fair.drops), std::to_string(fair.retx),
         stats::Table::num(fsi.joules, 1), std::to_string(fsi.drops),
         stats::Table::num(
             100.0 * (fair.joules - fsi.joules) / fair.joules, 2)});
  }
  table.print(std::cout);
  std::printf(
      "\n(each sender host is a separate RAPL domain, as in Fig 1's "
      "accounting; the aggregate transfer is %.1f Gbit split across the "
      "fan-in. Savings persist — and the drop/retransmission burden of "
      "synchronized fair-share incast disappears under serialization.)\n",
      static_cast<double>(total_bytes.count()) * 8.0 / 1e9);
  return 0;
}
