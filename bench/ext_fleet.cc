// Extension: fleet-scale stress — 100k..1M concurrent TCP flows of the
// production-workload mix (web-search + data-mining flow sizes, §5's ask)
// through a shared rack/core fabric, driven on one simulator. This is the
// scale the calendar-queue event core, the slab scoreboard/flow state and
// the batched pacing path exist for: the binary-heap core pays O(log n)
// per event at n ≈ flows pending timers, the calendar queue O(1).
//
//   ext_fleet [--flows N] [--racks R] [--repeats K] [--jobs N] [--seed S]
//             [--max-flow-kb N] [--ramp-ms M] [--horizon-sec S] [--mtu N]
//             [--cca NAME] [--queue calendar|heap] [--json FILE]
//             [--deadline SEC] [--event-budget N] [--retries K]
//             [--journal FILE] [--resume]
//
// Topology: flows are spread round-robin over R rack uplinks (DRR-scheduled
// — the per-flow state slab is exercised at fleet width), which feed one
// shared core port to the receivers; ACKs return over a shared reverse
// port. All flows start within the ramp window, so the fleet is genuinely
// concurrent: peak open flows ≈ N.
//
// Reported per repeat: events executed, wall seconds, events/sec, peak
// pending events, peak concurrently-open flows, completions, and process
// peak RSS. `--json` additionally writes the BENCH_fleet.json baseline,
// including the hold-model simcore section (calendar vs binary-heap
// events/sec at 10k pending) that ablation_simcore's --check-baseline gate
// compares against. Runs under robust::SweepSupervisor: deadline, event
// budget, retry, journal/resume all apply per repeat.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "app/parallel_runner.h"
#include "app/workload.h"
#include "cca/cca.h"
#include "common.h"
#include "energy/cpu.h"
#include "net/drr.h"
#include "net/packet.h"
#include "net/port.h"
#include "queue_hold.h"
#include "robust/journal.h"
#include "robust/shutdown.h"
#include "robust/supervisor.h"
#include "sim/simulator.h"
#include "stats/json.h"
#include "stats/table.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"

using namespace greencc;

namespace {

/// Route packets to the per-flow endpoint. Flow ids are dense [0, n), so
/// this is one indexed load — no hash map on the fleet's fast path.
class Demux : public net::PacketHandler {
 public:
  explicit Demux(std::size_t n) : sinks_(n, nullptr) {}
  void set(net::FlowId flow, net::PacketHandler* sink) {
    sinks_[static_cast<std::size_t>(flow)] = sink;
  }
  void handle(net::Packet pkt) override {
    sinks_[static_cast<std::size_t>(pkt.flow)]->handle(pkt);
  }

 private:
  std::vector<net::PacketHandler*> sinks_;
};

/// Linux reports ru_maxrss in KiB; monotone over the process lifetime.
double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct FleetConfig {
  std::int64_t flows = 100'000;
  std::int64_t racks = 64;
  units::Bytes max_flow_bytes{256 * 1024};
  std::int64_t ramp_ms = 20;
  double horizon_sec = 60.0;
  std::int32_t mtu = 9000;
  std::string cca = "cubic";
  sim::EventQueueKind queue = sim::Simulator::default_queue_kind();
  std::uint64_t seed = 1;
};

struct FleetResult {
  std::int64_t flows = 0;
  std::int64_t completed = 0;
  std::int64_t peak_open = 0;       ///< max concurrently-open flows
  std::uint64_t events = 0;
  std::uint64_t peak_pending = 0;   ///< max simultaneously-pending events
  double sim_sec = 0.0;
  double wall_sec = 0.0;
  double events_per_sec = 0.0;
  double rss_mb = 0.0;              ///< process peak (monotone across reps)
};

/// One fleet run: build the fabric, ramp every flow in, drain to the
/// horizon. Endpoint state lives in parallel vectors of unique_ptrs so a
/// million-flow build stays a handful of big allocations plus the slabs.
FleetResult run_fleet(const FleetConfig& config, robust::CellContext& ctx) {
  sim::Simulator sim(config.queue);
  const auto n = static_cast<std::size_t>(config.flows);
  const auto racks = static_cast<std::size_t>(
      std::max<std::int64_t>(1, std::min(config.racks, config.flows)));

  tcp::TcpConfig tcp_config;
  tcp_config.mtu_bytes = units::Bytes{config.mtu};
  cca::CcaConfig cca_config;
  cca_config.mss_bytes = tcp_config.mss_bytes();

  // Fabric: rack DRR uplinks (40G) -> shared 400G core -> receivers;
  // ACKs converge on one shared 400G reverse port. The core is heavily
  // oversubscribed during the ramp — by design: a fleet-wide incast is
  // what pins 100k+ flows open (and their timers pending) at once.
  Demux rx_demux(n);
  Demux tx_demux(n);
  net::PortConfig core_config;
  core_config.rate = units::BitRate::bps(400e9);
  core_config.queue_capacity_bytes = units::Bytes{8 << 20};
  net::QueuedPort core(sim, "core", core_config, &rx_demux);
  net::PortConfig ack_config;
  ack_config.rate = units::BitRate::bps(400e9);
  ack_config.queue_capacity_bytes = units::Bytes{8 << 20};
  net::QueuedPort ack_port(sim, "ack", ack_config, &tx_demux);

  net::DrrPort::Config rack_config;
  rack_config.rate = units::BitRate::bps(40e9);
  rack_config.per_flow_queue_bytes = units::Bytes{1 << 16};  // bound fleet-wide buffering
  std::vector<std::unique_ptr<net::DrrPort>> uplinks;
  uplinks.reserve(racks);
  for (std::size_t r = 0; r < racks; ++r) {
    uplinks.push_back(std::make_unique<net::DrrPort>(
        sim, "rack" + std::to_string(r), rack_config, &core));
  }

  std::vector<energy::CpuCore> cores(n);
  std::vector<std::unique_ptr<tcp::TcpSender>> senders(n);
  std::vector<std::unique_ptr<tcp::TcpReceiver>> receivers(n);

  // Production mix: even flows web-search, odd flows data-mining, sizes
  // capped (a fleet probe, not a bulk-transfer study) and rounded up to
  // whole segments so every flow can report completion.
  const auto websearch = app::websearch_workload();
  const auto datamining = app::datamining_workload();
  sim::Rng size_rng(config.seed);
  const std::int64_t mss = tcp_config.mss_bytes().count();

  std::int64_t open = 0;
  std::int64_t peak_open = 0;
  std::int64_t completed = 0;
  const std::int64_t ramp_ns = config.ramp_ms * 1'000'000;
  for (std::size_t f = 0; f < n; ++f) {
    const app::FlowSizeDistribution& dist =
        (f % 2 == 0) ? *websearch : *datamining;
    std::int64_t bytes =
        std::clamp(dist.sample(size_rng), mss, config.max_flow_bytes.count());
    bytes = (bytes + mss - 1) / mss * mss;

    auto cc = cca::make_cca(config.cca, cca_config);
    senders[f] = std::make_unique<tcp::TcpSender>(
        sim, static_cast<net::FlowId>(f), /*src=*/static_cast<net::HostId>(f),
        /*dst=*/static_cast<net::HostId>(f + n), tcp_config, std::move(cc),
        &cores[f], uplinks[f % racks].get());
    receivers[f] = std::make_unique<tcp::TcpReceiver>(
        sim, static_cast<net::FlowId>(f),
        /*self=*/static_cast<net::HostId>(f + n), tcp_config, &ack_port);
    rx_demux.set(f, receivers[f].get());
    tx_demux.set(f, senders[f].get());

    tcp::TcpSender* sender = senders[f].get();
    sender->add_app_data(units::Bytes{bytes});
    sender->mark_app_eof();
    sender->set_on_complete([&open, &completed] {
      --open;
      ++completed;
    });
    // Deterministic stagger across the ramp window: distinct start
    // instants, no thundering single-tick herd, full overlap.
    const sim::SimTime start = sim::SimTime::nanoseconds(
        n > 1 ? ramp_ns * static_cast<std::int64_t>(f) /
                    static_cast<std::int64_t>(n - 1)
              : 0);
    sim.schedule_at(start, [sender, &open, &peak_open] {
      ++open;
      peak_open = std::max(peak_open, open);
      sender->start();
    });
  }

  auto watch = ctx.watch(sim);
  // lint-allow: wall-clock (events/sec throughput measurement only)
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(sim::SimTime::seconds(config.horizon_sec));
  // lint-allow: wall-clock (events/sec throughput measurement only)
  const auto t1 = std::chrono::steady_clock::now();

  FleetResult result;
  result.flows = config.flows;
  result.completed = completed;
  result.peak_open = peak_open;
  result.events = sim.events_executed();
  result.peak_pending = sim.peak_pending_events();
  result.sim_sec = sim.now().sec();
  result.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  result.events_per_sec =
      result.wall_sec > 0
          ? static_cast<double>(result.events) / result.wall_sec
          : 0.0;
  result.rss_mb = peak_rss_mb();
  return result;
}

constexpr std::size_t kHoldPending = 10'000;
constexpr std::size_t kHoldOps = 2'000'000;

}  // namespace

int main(int argc, char** argv) {
  robust::install_shutdown_handler();

  FleetConfig config;
  config.flows = bench::flag_i64(argc, argv, "--flows", config.flows);
  config.racks = bench::flag_i64(argc, argv, "--racks", config.racks);
  config.max_flow_bytes =
      units::Bytes{bench::flag_i64(argc, argv, "--max-flow-kb", 256) * 1024};
  config.ramp_ms = bench::flag_i64(argc, argv, "--ramp-ms", config.ramp_ms);
  config.horizon_sec =
      bench::flag_double(argc, argv, "--horizon-sec", config.horizon_sec);
  config.mtu =
      static_cast<std::int32_t>(bench::flag_i64(argc, argv, "--mtu", 9000));
  config.cca = bench::flag_str(argc, argv, "--cca", config.cca);
  config.seed =
      static_cast<std::uint64_t>(bench::flag_i64(argc, argv, "--seed", 1));
  const std::string queue_flag = bench::flag_str(argc, argv, "--queue", "");
  if (queue_flag == "heap") {
    config.queue = sim::EventQueueKind::kBinaryHeap;
  } else if (queue_flag == "calendar") {
    config.queue = sim::EventQueueKind::kCalendar;
  }
  const int repeats =
      static_cast<int>(bench::flag_i64(argc, argv, "--repeats", 1));
  const int jobs = bench::flag_jobs(argc, argv);
  const std::string json_path = bench::flag_str(argc, argv, "--json", "");

  bench::print_header(
      "Extension — fleet-scale event-core stress (calendar queue)",
      "\"test with the sorts of workloads used in production data "
      "centers\" — here at fleet width: 100k+ concurrent flows on one "
      "simulator");

  const auto reps = static_cast<std::size_t>(std::max(repeats, 1));
  std::vector<FleetResult> runs(reps);
  std::vector<char> present(reps, 0);

  std::ostringstream canon;
  canon << "fleet flows=" << config.flows << " racks=" << config.racks
        << " max=" << config.max_flow_bytes.count() << " ramp=" << config.ramp_ms
        << " horizon=" << config.horizon_sec << " mtu=" << config.mtu
        << " cca=" << config.cca << " seed=" << config.seed
        << " repeats=" << repeats;

  robust::SupervisorOptions sup;
  sup.jobs = jobs;
  sup.max_attempts =
      static_cast<int>(bench::flag_i64(argc, argv, "--retries", 0)) + 1;
  sup.cell_deadline_sec = bench::flag_double(argc, argv, "--deadline", 0.0);
  sup.event_budget = static_cast<std::uint64_t>(
      bench::flag_i64(argc, argv, "--event-budget", 0));
  sup.journal_path = bench::flag_str(argc, argv, "--journal", "");
  sup.config_hash = robust::fnv1a64(canon.str());
  sup.resume = bench::flag_set(argc, argv, "--resume");
  if (sup.resume && sup.journal_path.empty()) {
    sup.journal_path = "ext_fleet_journal.jsonl";
  }
  sup.progress = [](std::size_t done, std::size_t total, std::size_t index,
                    double secs) {
    std::fprintf(stderr, "  fleet: [%zu/%zu] rep=%zu  %6.2fs\n", done, total,
                 index, secs);
  };

  robust::CellHooks hooks;
  hooks.run = [&](std::size_t rep, robust::CellContext& ctx) -> std::string {
    FleetConfig cell = config;
    cell.seed = app::derive_seed(config.seed, rep, 0);
    ctx.set_seed(cell.seed);
    FleetResult result = run_fleet(cell, ctx);
    if (ctx.cut()) return {};
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%" PRId64 " %" PRId64 " %" PRId64 " %" PRIu64 " %" PRIu64
                  " %.17g %.17g %.17g %.17g",
                  result.flows, result.completed, result.peak_open,
                  result.events, result.peak_pending, result.sim_sec,
                  result.wall_sec, result.events_per_sec, result.rss_mb);
    runs[rep] = result;
    present[rep] = 1;
    return buf;
  };
  hooks.restore = [&](std::size_t rep, const std::string& payload) {
    FleetResult r;
    if (std::sscanf(payload.c_str(),
                    "%" SCNd64 " %" SCNd64 " %" SCNd64 " %" SCNu64 " %" SCNu64
                    " %lg %lg %lg %lg",
                    &r.flows, &r.completed, &r.peak_open, &r.events,
                    &r.peak_pending, &r.sim_sec, &r.wall_sec,
                    &r.events_per_sec, &r.rss_mb) != 9) {
      return;
    }
    runs[rep] = r;
    present[rep] = 1;
  };

  robust::SweepSupervisor supervisor(std::move(sup));
  const robust::SweepReport report = supervisor.run(reps, hooks);
  std::fprintf(stderr, "  %s\n", report.summary().c_str());

  stats::Table table({"rep", "flows", "completed", "peak_open", "events",
                      "peak_pending", "sim[s]", "wall[s]", "events/s",
                      "rss[MB]"});
  for (std::size_t rep = 0; rep < reps; ++rep) {
    if (!present[rep]) continue;
    const FleetResult& r = runs[rep];
    table.add_row({std::to_string(rep), std::to_string(r.flows),
                   std::to_string(r.completed), std::to_string(r.peak_open),
                   std::to_string(static_cast<long long>(r.events)),
                   std::to_string(static_cast<long long>(r.peak_pending)),
                   stats::Table::num(r.sim_sec, 3),
                   stats::Table::num(r.wall_sec, 2),
                   stats::Table::num(r.events_per_sec, 0),
                   stats::Table::num(r.rss_mb, 1)});
  }
  table.print(std::cout);

  // The committed baseline pairs the fleet numbers with the hold-model
  // simcore comparison the ablation gate replays.
  if (!json_path.empty()) {
    std::fprintf(stderr, "  fleet: measuring simcore hold baseline...\n");
    const bench::HoldResult hold =
        bench::hold_head_to_head(kHoldPending, kHoldOps, /*seed=*/1,
                                 /*reps=*/5);
    const double calendar_eps = hold.calendar_eps;
    const double heap_eps = hold.heap_eps;

    stats::JsonWriter json;
    json.begin_object();
    json.field("schema", 1);
    json.key("config").begin_object();
    json.field("flows", config.flows);
    json.field("racks", config.racks);
    json.field("max_flow_bytes", config.max_flow_bytes.count());
    json.field("ramp_ms", config.ramp_ms);
    json.field("mtu", config.mtu);
    json.field("cca", config.cca);
    json.field("seed", config.seed);
    json.field("queue", sim::Simulator(config.queue).queue_name());
    json.end_object();
    json.key("reps").begin_array();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      if (!present[rep]) continue;
      const FleetResult& r = runs[rep];
      json.begin_object();
      json.field("rep", static_cast<std::int64_t>(rep));
      json.field("flows", r.flows);
      json.field("completed", r.completed);
      json.field("peak_open_flows", r.peak_open);
      json.field("events_executed", r.events);
      json.field("peak_pending_events", r.peak_pending);
      json.field("sim_sec", r.sim_sec);
      json.field("wall_sec", r.wall_sec);
      json.field("events_per_sec", r.events_per_sec);
      json.field("peak_rss_mb", r.rss_mb);
      json.end_object();
    }
    json.end_array();
    json.key("simcore").begin_object();
    json.field("hold_pending_events", static_cast<std::int64_t>(kHoldPending));
    json.field("hold_ops", static_cast<std::int64_t>(kHoldOps));
    json.field("calendar_events_per_sec", calendar_eps);
    json.field("heap_events_per_sec", heap_eps);
    json.field("calendar_speedup",
               heap_eps > 0 ? calendar_eps / heap_eps : 0.0);
    json.end_object();
    json.end_object();
    std::ofstream out(json_path);
    out << json.str() << "\n";
    std::printf("\nwrote %s (simcore hold @%zu pending: calendar %.2fM/s, "
                "heap %.2fM/s, speedup %.2fx)\n",
                json_path.c_str(), kHoldPending, calendar_eps / 1e6,
                heap_eps / 1e6, heap_eps > 0 ? calendar_eps / heap_eps : 0.0);
  }

  std::printf(
      "\n(One simulator, %" PRId64 " flows over %" PRId64
      " DRR rack uplinks into a shared core; peak_open is the high-water "
      "mark of concurrently active flows, peak_pending the event queue's. "
      "events/s is wall-clock throughput — compare --queue calendar vs "
      "heap.)\n",
      config.flows, config.racks);
  return report.complete() ? 0 : robust::kPartialResultsExit;
}
