// Figure 6: "Rate of energy consumption for the CCAs to transmit 50 GB of
// data" — average power per CCA and MTU. §4.3 notes the ordering differs
// drastically from Figure 5's energy ordering: corr(energy, power) ~ -0.8,
// i.e. algorithms that draw less power per second tend to run longer and
// spend *more* energy in total.

#include <cstdio>
#include <iostream>

#include "cca/cca.h"
#include "cca_grid.h"
#include "common.h"
#include "core/efficiency.h"
#include "robust/shutdown.h"
#include "stats/table.h"

using namespace greencc;

int main(int argc, char** argv) {
  robust::install_shutdown_handler();
  bench::GridOptions options;
  options.bytes = bench::flag_i64(argc, argv, "--bytes", bench::kDefaultBytes);
  options.repeats =
      static_cast<int>(bench::flag_i64(argc, argv, "--repeats", 3));
  options.jobs = bench::flag_jobs(argc, argv);
  options.cache_path =
      bench::flag_str(argc, argv, "--cache", options.cache_path);
  bench::apply_supervisor_flags(argc, argv, options);

  bench::print_header(
      "Figure 6 — average power per CCA and MTU",
      "power ordering nearly inverts the energy ordering: "
      "corr(energy, power) ~ -0.8");

  robust::SweepReport health;
  const auto cells = bench::run_cca_grid(options, &health);
  std::fprintf(stderr, "  %s\n", health.summary().c_str());
  core::EfficiencyReport report;
  for (const auto& cell : cells) report.add(cell);

  stats::Table table({"cca", "mtu1500[W]", "mtu3000[W]", "mtu6000[W]",
                      "mtu9000[W]"});
  for (const auto& name : cca::all_names()) {
    std::vector<std::string> row = {name};
    for (int mtu : options.mtus) {
      for (const auto& cell : cells) {
        if (cell.cca == name && cell.mtu_bytes == mtu) {
          row.push_back(stats::Table::num(cell.power_watts, 2));
        }
      }
    }
    table.add_row(row);
  }
  table.print(std::cout);
  table.write_csv(bench::flag_str(argc, argv, "--csv", "fig6.csv"));

  // The paper's -0.8 compares the CCA orderings at fixed MTU (its Figs 5
  // and 6 are both sorted "for 1500 Bytes of MTU").
  std::printf("\ncorr(energy, power) across CCAs at MTU 1500: %+.2f "
              "(paper: -0.8)\n",
              report.corr_energy_power(1500));
  for (int mtu : {3000, 6000, 9000}) {
    std::printf("corr(energy, power) across CCAs at MTU %d: %+.2f\n", mtu,
                report.corr_energy_power(mtu));
  }

  // The paper also highlights the ~14% power spread between CCAs at fixed
  // MTU; report ours at 1500 B.
  double lo = 1e9, hi = 0.0;
  for (const auto& cell : cells) {
    if (cell.mtu_bytes != 1500) continue;
    lo = std::min(lo, cell.power_watts);
    hi = std::max(hi, cell.power_watts);
  }
  std::printf("power spread across CCAs at MTU 1500: %.1f%% "
              "(paper: ~14%%)\n", 100.0 * (hi - lo) / hi);
  return health.complete() ? 0 : robust::kPartialResultsExit;
}
