#include "cca_grid.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "app/parallel_runner.h"
#include "app/scenario.h"
#include "cca/cca.h"
#include "common.h"
#include "stats/stats.h"

namespace greencc::bench {

namespace {

std::string cache_tag(const GridOptions& options) {
  // v2: per-run seeds switched from base_seed+i to the mixed
  // (base_seed, cell, repeat) derivation; v1 caches hold different numbers
  // and must not be loaded. `jobs` is deliberately absent — it cannot
  // change the results.
  std::ostringstream tag;
  tag << "# greencc-grid v2 bytes=" << options.bytes
      << " repeats=" << options.repeats << " seed=" << options.base_seed;
  for (int mtu : options.mtus) tag << " " << mtu;
  return tag.str();
}

bool load_cache(const GridOptions& options,
                std::vector<core::GridCell>& cells) {
  if (options.cache_path.empty()) return false;
  std::ifstream in(options.cache_path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != cache_tag(options)) return false;
  while (std::getline(in, line)) {
    std::istringstream row(line);
    core::GridCell cell;
    if (!(row >> cell.cca >> cell.mtu_bytes >> cell.energy_joules >>
          cell.energy_stddev >> cell.power_watts >> cell.fct_sec >>
          cell.retransmissions)) {
      cells.clear();
      return false;
    }
    cells.push_back(cell);
  }
  if (cells.empty()) return false;
  std::fprintf(stderr, "  grid: loaded %zu cells from %s\n", cells.size(),
               options.cache_path.c_str());
  return true;
}

void save_cache(const GridOptions& options,
                const std::vector<core::GridCell>& cells) {
  if (options.cache_path.empty()) return;
  // Write-then-rename so a concurrent grid process (or a crash mid-write)
  // can never leave a truncated cache that a later run would half-parse.
  const std::string tmp_path = options.cache_path + ".tmp";
  {
    std::ofstream out(tmp_path);
    if (!out) return;
    out << cache_tag(options) << "\n";
    out.precision(12);
    for (const auto& cell : cells) {
      out << cell.cca << ' ' << cell.mtu_bytes << ' ' << cell.energy_joules
          << ' ' << cell.energy_stddev << ' ' << cell.power_watts << ' '
          << cell.fct_sec << ' ' << cell.retransmissions << "\n";
    }
    if (!out) return;
  }
  std::rename(tmp_path.c_str(), options.cache_path.c_str());
}

}  // namespace

std::vector<core::GridCell> run_cca_grid(const GridOptions& options) {
  std::vector<core::GridCell> cells;
  if (load_cache(options, cells)) return cells;
  const double scale = scale_to_paper(options.bytes);

  // Flatten the grid: cell index is mtu-major (the historical iteration
  // order), and every (cell, repeat) pair is one independent task, so the
  // pool stays busy even when a single cell's repeats are slow.
  struct CellSpec {
    std::string cca;
    int mtu = 0;
  };
  std::vector<CellSpec> specs;
  for (int mtu : options.mtus) {
    for (const auto& name : cca::all_names()) specs.push_back({name, mtu});
  }
  const auto repeats = static_cast<std::size_t>(std::max(options.repeats, 0));
  const std::size_t total = specs.size() * repeats;
  std::vector<app::ScenarioResult> runs(total);

  app::ParallelRunner pool(
      options.jobs, [&specs, repeats](std::size_t done, std::size_t n,
                                      std::size_t index, double secs) {
        const CellSpec& spec = specs[index / repeats];
        std::fprintf(stderr,
                     "  grid: [%3zu/%zu] mtu=%-5d %-10s rep=%zu  %6.2fs\n",
                     done, n, spec.mtu, spec.cca.c_str(), index % repeats,
                     secs);
      });
  pool.for_each_index(total, [&](std::size_t t) {
    const std::size_t cell = t / repeats;
    const std::size_t rep = t % repeats;
    app::ScenarioConfig config;
    config.tcp.mtu_bytes = specs[cell].mtu;
    config.seed = app::derive_seed(options.base_seed, cell, rep);
    config.audit_interval = options.audit_interval;
    app::Scenario scenario(std::move(config));
    app::FlowSpec flow;
    flow.cca = specs[cell].cca;
    flow.bytes = options.bytes;
    scenario.add_flow(flow);
    runs[t] = scenario.run();
  });

  // Aggregate serially in cell order once the pool drained: independent of
  // thread count and completion order, so the cells (and the CSV/cache
  // written from them) are byte-identical for any --jobs value.
  for (std::size_t c = 0; c < specs.size(); ++c) {
    stats::Summary joules, watts, retxs, fct;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      const auto& run = runs[c * repeats + rep];
      joules.add(run.total_joules);
      watts.add(run.avg_watts);
      std::int64_t retx = 0;
      for (const auto& flow : run.flows) retx += flow.retransmissions;
      retxs.add(static_cast<double>(retx));
      fct.add(run.flows[0].fct_sec);
    }

    core::GridCell cell;
    cell.cca = specs[c].cca;
    cell.mtu_bytes = specs[c].mtu;
    cell.energy_joules = joules.mean() * scale;
    cell.energy_stddev = joules.stddev() * scale;
    cell.power_watts = watts.mean();
    cell.fct_sec = fct.mean() * scale;
    cell.retransmissions = retxs.mean() * scale;
    cells.push_back(cell);

    std::fprintf(stderr, "  grid: mtu=%-5d %-10s E=%8.1f J  P=%6.2f W\n",
                 cell.mtu_bytes, cell.cca.c_str(), cell.energy_joules,
                 cell.power_watts);
  }
  save_cache(options, cells);
  return cells;
}

}  // namespace greencc::bench
