#include "cca_grid.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "app/config_canon.h"
#include "app/parallel_runner.h"
#include "app/scenario.h"
#include "cca/cca.h"
#include "common.h"
#include "robust/journal.h"
#include "stats/stats.h"
#include "units/units.h"

namespace greencc::bench {

namespace {

/// Hash of every option that can change the grid's numbers. Binds both the
/// CSV cache and the resume journal: a file written under a different
/// configuration is regenerated, never half-reused. `jobs` and the
/// supervision knobs are deliberately absent — they cannot change what a
/// *completed* cell measured.
std::uint64_t grid_config_hash(const GridOptions& options) {
  // Derived from the canonical serialization of every cell's full
  // ScenarioConfig + flows (app/config_canon.h), not a hand-maintained
  // field list: any config field that can change a number — including ones
  // added after this bench was written — changes the hash automatically.
  std::ostringstream canon;
  canon << "grid/v4 repeats=" << options.repeats
        << " seed=" << options.base_seed << ";";
  for (int mtu : options.mtus) {
    for (const auto& name : cca::all_names()) {
      app::ScenarioConfig config;
      config.tcp.mtu_bytes = units::Bytes{mtu};
      config.seed = options.base_seed;
      config.audit_interval = options.audit_interval;
      std::vector<app::FlowSpec> flows(1);
      flows[0].cca = name;
      flows[0].bytes = units::Bytes{options.bytes};
      canon << app::canonical_string(config, flows);
    }
  }
  return robust::fnv1a64(canon.str());
}

std::string cache_tag(const GridOptions& options) {
  // v4: the config hash is now derived from the canonical ScenarioConfig
  // serialization, so staleness is detected even for config fields the old
  // hand-listed hash did not cover. v1-v3 caches fail the comparison and
  // are regenerated.
  std::ostringstream tag;
  tag << "# greencc-grid v4 config=" << std::hex << std::setw(16)
      << std::setfill('0') << grid_config_hash(options) << std::dec
      << " bytes=" << options.bytes << " repeats=" << options.repeats
      << " seed=" << options.base_seed;
  for (int mtu : options.mtus) tag << " " << mtu;
  return tag.str();
}

bool load_cache(const GridOptions& options,
                std::vector<core::GridCell>& cells) {
  if (options.cache_path.empty()) return false;
  std::ifstream in(options.cache_path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != cache_tag(options)) return false;
  while (std::getline(in, line)) {
    std::istringstream row(line);
    core::GridCell cell;
    if (!(row >> cell.cca >> cell.mtu_bytes >> cell.energy_joules >>
          cell.energy_stddev >> cell.power_watts >> cell.fct_sec >>
          cell.retransmissions)) {
      cells.clear();
      return false;
    }
    cells.push_back(cell);
  }
  if (cells.empty()) return false;
  std::fprintf(stderr, "  grid: loaded %zu cells from %s\n", cells.size(),
               options.cache_path.c_str());
  return true;
}

void save_cache(const GridOptions& options,
                const std::vector<core::GridCell>& cells) {
  if (options.cache_path.empty()) return;
  // Write-then-rename so a concurrent grid process (or a crash mid-write)
  // can never leave a truncated cache that a later run would half-parse.
  const std::string tmp_path = options.cache_path + ".tmp";
  {
    std::ofstream out(tmp_path);
    if (!out) return;
    out << cache_tag(options) << "\n";
    out.precision(12);
    for (const auto& cell : cells) {
      out << cell.cca << ' ' << cell.mtu_bytes << ' ' << cell.energy_joules
          << ' ' << cell.energy_stddev << ' ' << cell.power_watts << ' '
          << cell.fct_sec << ' ' << cell.retransmissions << "\n";
    }
    if (!out) return;
  }
  std::rename(tmp_path.c_str(), options.cache_path.c_str());
}

/// Journal payload for one (cell, repeat) run: exactly the scalars the
/// aggregation below reads. %.17g round-trips IEEE doubles exactly, so a
/// resumed sweep aggregates bit-identical values to an uninterrupted one.
std::string encode_run(const app::ScenarioResult& run) {
  std::int64_t retx = 0;
  for (const auto& flow : run.flows) retx += flow.retransmissions;
  const double fct = run.flows.empty() ? 0.0 : run.flows[0].fct_sec;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%.17g %.17g %.17g %" PRId64 " %d",
                run.total_energy.joules(), run.avg_power.watts(), fct, retx,
                run.all_completed ? 1 : 0);
  return buf;
}

bool decode_run(const std::string& payload, app::ScenarioResult& run) {
  double joules = 0.0, watts = 0.0, fct = 0.0;
  long long retx = 0;
  int completed = 0;
  if (std::sscanf(payload.c_str(), "%lg %lg %lg %lld %d", &joules, &watts,
                  &fct, &retx, &completed) != 5) {
    return false;
  }
  run.total_energy = units::Energy::joules(joules);
  run.avg_power = units::Power::watts(watts);
  run.flows.resize(1);
  run.flows[0].fct_sec = fct;
  run.flows[0].retransmissions = retx;
  run.all_completed = completed != 0;
  run.stop_reason = completed ? "completed" : "deadline";
  return true;
}

}  // namespace

void apply_supervisor_flags(int argc, char** argv, GridOptions& options) {
  options.cell_deadline_sec =
      flag_double(argc, argv, "--deadline", options.cell_deadline_sec);
  options.event_budget = static_cast<std::uint64_t>(flag_i64(
      argc, argv, "--event-budget",
      static_cast<std::int64_t>(options.event_budget)));
  options.max_attempts = static_cast<int>(flag_i64(
      argc, argv, "--retries", options.max_attempts - 1)) + 1;
  options.journal_path =
      flag_str(argc, argv, "--journal", options.journal_path);
  options.resume = flag_set(argc, argv, "--resume") || options.resume;
  if (options.resume && options.journal_path.empty()) {
    std::string stem = options.cache_path;
    if (const auto dot = stem.rfind('.'); dot != std::string::npos) {
      stem.erase(dot);
    }
    if (stem.empty()) stem = "sweep";
    options.journal_path = stem + "_journal.jsonl";
  }
}

std::vector<core::GridCell> run_cca_grid(const GridOptions& options,
                                         robust::SweepReport* report_out) {
  robust::SweepReport local_report;
  robust::SweepReport& report = report_out ? *report_out : local_report;
  report = robust::SweepReport{};

  std::vector<core::GridCell> cells;
  if (load_cache(options, cells)) return cells;
  const double scale = scale_to_paper(options.bytes);

  // Flatten the grid: cell index is mtu-major (the historical iteration
  // order), and every (cell, repeat) pair is one independent task, so the
  // pool stays busy even when a single cell's repeats are slow.
  struct CellSpec {
    std::string cca;
    int mtu = 0;
  };
  std::vector<CellSpec> specs;
  for (int mtu : options.mtus) {
    for (const auto& name : cca::all_names()) specs.push_back({name, mtu});
  }
  const auto repeats = static_cast<std::size_t>(std::max(options.repeats, 0));
  const std::size_t total = specs.size() * repeats;
  std::vector<app::ScenarioResult> runs(total);
  // A run slot is aggregated only when its task completed (fresh or
  // restored from the journal); cut/quarantined tasks leave it absent.
  // Each task writes only its own slot, per the pool's determinism
  // contract, so no locking is needed.
  std::vector<char> present(total, 0);

  robust::SupervisorOptions sup;
  sup.jobs = options.jobs;
  sup.max_attempts = std::max(options.max_attempts, 1);
  sup.cell_deadline_sec = options.cell_deadline_sec;
  sup.event_budget = options.event_budget;
  sup.journal_path = options.journal_path;
  sup.config_hash = grid_config_hash(options);
  sup.resume = options.resume;
  sup.progress = [&specs, repeats](std::size_t done, std::size_t n,
                                   std::size_t index, double secs) {
    const CellSpec& spec = specs[index / repeats];
    std::fprintf(stderr, "  grid: [%3zu/%zu] mtu=%-5d %-10s rep=%zu  %6.2fs\n",
                 done, n, spec.mtu, spec.cca.c_str(), index % repeats, secs);
  };

  robust::CellHooks hooks;
  hooks.run = [&](std::size_t t, robust::CellContext& ctx) -> std::string {
    const std::size_t cell = t / repeats;
    const std::size_t rep = t % repeats;
    app::ScenarioConfig config;
    config.tcp.mtu_bytes = units::Bytes{specs[cell].mtu};
    config.seed = app::derive_seed(options.base_seed, cell, rep);
    config.audit_interval = options.audit_interval;
    ctx.set_seed(config.seed);
    app::Scenario scenario(std::move(config));
    app::FlowSpec flow;
    flow.cca = specs[cell].cca;
    flow.bytes = units::Bytes{options.bytes};
    scenario.add_flow(flow);
    // The guard is constructed after the scenario so it is destroyed first,
    // while the simulator is still alive for its snapshot.
    auto watch = ctx.watch(scenario.simulator());
    app::ScenarioResult result = scenario.run();
    if (ctx.cut() || result.stop_reason == "stopped" ||
        result.stop_reason == "budget_exhausted") {
      // Truncated run: never published, never journaled. The supervisor
      // records the cell as timed out (or not-run under shutdown).
      return {};
    }
    std::string payload = encode_run(result);
    runs[t] = std::move(result);
    present[t] = 1;
    return payload;
  };
  hooks.restore = [&](std::size_t t, const std::string& payload) {
    app::ScenarioResult run;
    if (!decode_run(payload, run)) return;  // malformed: cell stays absent
    runs[t] = std::move(run);
    present[t] = 1;
  };

  robust::SweepSupervisor supervisor(std::move(sup));
  report = supervisor.run(total, hooks);

  // Aggregate serially in cell order once the pool drained: independent of
  // thread count and completion order, so the cells (and the CSV/cache
  // written from them) are byte-identical for any --jobs value. Absent
  // repeats (quarantined/timed-out/not-run) are skipped; a cell with no
  // surviving repeat carries zeros — the health report, not the numbers,
  // discloses the gap.
  for (std::size_t c = 0; c < specs.size(); ++c) {
    stats::Summary joules, watts, retxs, fct;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      const std::size_t t = c * repeats + rep;
      if (!present[t]) continue;
      const auto& run = runs[t];
      joules.add(run.total_energy.joules());
      watts.add(run.avg_power.watts());
      std::int64_t retx = 0;
      for (const auto& flow : run.flows) retx += flow.retransmissions;
      retxs.add(static_cast<double>(retx));
      fct.add(run.flows.empty() ? 0.0 : run.flows[0].fct_sec);
    }

    core::GridCell cell;
    cell.cca = specs[c].cca;
    cell.mtu_bytes = specs[c].mtu;
    cell.energy_joules = joules.mean() * scale;
    cell.energy_stddev = joules.stddev() * scale;
    cell.power_watts = watts.mean();
    cell.fct_sec = fct.mean() * scale;
    cell.retransmissions = retxs.mean() * scale;
    cells.push_back(cell);

    std::fprintf(stderr, "  grid: mtu=%-5d %-10s E=%8.1f J  P=%6.2f W\n",
                 cell.mtu_bytes, cell.cca.c_str(), cell.energy_joules,
                 cell.power_watts);
  }
  // A partial sweep must never poison the shared cache: later runs would
  // reload zeros for the quarantined cells with no sign anything failed.
  if (report.complete()) save_cache(options, cells);
  return cells;
}

std::vector<core::GridCell> run_cca_grid(const GridOptions& options) {
  return run_cca_grid(options, nullptr);
}

}  // namespace greencc::bench
