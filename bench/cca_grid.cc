#include "cca_grid.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "app/runner.h"
#include "cca/cca.h"
#include "common.h"
#include "stats/stats.h"

namespace greencc::bench {

namespace {

std::string cache_tag(const GridOptions& options) {
  std::ostringstream tag;
  tag << "# greencc-grid bytes=" << options.bytes
      << " repeats=" << options.repeats << " seed=" << options.base_seed;
  for (int mtu : options.mtus) tag << " " << mtu;
  return tag.str();
}

bool load_cache(const GridOptions& options,
                std::vector<core::GridCell>& cells) {
  if (options.cache_path.empty()) return false;
  std::ifstream in(options.cache_path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line != cache_tag(options)) return false;
  while (std::getline(in, line)) {
    std::istringstream row(line);
    core::GridCell cell;
    if (!(row >> cell.cca >> cell.mtu_bytes >> cell.energy_joules >>
          cell.energy_stddev >> cell.power_watts >> cell.fct_sec >>
          cell.retransmissions)) {
      cells.clear();
      return false;
    }
    cells.push_back(cell);
  }
  if (cells.empty()) return false;
  std::fprintf(stderr, "  grid: loaded %zu cells from %s\n", cells.size(),
               options.cache_path.c_str());
  return true;
}

void save_cache(const GridOptions& options,
                const std::vector<core::GridCell>& cells) {
  if (options.cache_path.empty()) return;
  std::ofstream out(options.cache_path);
  if (!out) return;
  out << cache_tag(options) << "\n";
  out.precision(12);
  for (const auto& cell : cells) {
    out << cell.cca << ' ' << cell.mtu_bytes << ' ' << cell.energy_joules
        << ' ' << cell.energy_stddev << ' ' << cell.power_watts << ' '
        << cell.fct_sec << ' ' << cell.retransmissions << "\n";
  }
}

}  // namespace

std::vector<core::GridCell> run_cca_grid(const GridOptions& options) {
  std::vector<core::GridCell> cells;
  if (load_cache(options, cells)) return cells;
  const double scale = scale_to_paper(options.bytes);

  for (int mtu : options.mtus) {
    for (const auto& name : cca::all_names()) {
      auto builder = [&](std::uint64_t seed) {
        app::ScenarioConfig config;
        config.tcp.mtu_bytes = mtu;
        config.seed = seed;
        auto scenario = std::make_unique<app::Scenario>(config);
        app::FlowSpec flow;
        flow.cca = name;
        flow.bytes = options.bytes;
        scenario->add_flow(flow);
        return scenario;
      };
      const auto agg =
          app::run_repeated(builder, options.repeats, options.base_seed);

      stats::Summary fct;
      for (const auto& run : agg.runs) fct.add(run.flows[0].fct_sec);

      core::GridCell cell;
      cell.cca = name;
      cell.mtu_bytes = mtu;
      cell.energy_joules = agg.joules.mean() * scale;
      cell.energy_stddev = agg.joules.stddev() * scale;
      cell.power_watts = agg.watts.mean();
      cell.fct_sec = fct.mean() * scale;
      cell.retransmissions = agg.retransmissions.mean() * scale;
      cells.push_back(cell);

      std::fprintf(stderr, "  grid: mtu=%-5d %-10s E=%8.1f J  P=%6.2f W\n",
                   mtu, name.c_str(), cell.energy_joules, cell.power_watts);
    }
  }
  save_cache(options, cells);
  return cells;
}

}  // namespace greencc::bench
