#pragma once

// The classical "hold model" throughput probe for event queues (Vaucher &
// Duval 1975, the workload calendar queues were designed for): keep a fixed
// number of events pending, repeatedly pop the minimum and push a
// replacement a random increment into the future. Steady state with n
// pending events costs the binary heap ~log2(n) sift levels per operation
// and the calendar queue O(1), so this is the measurement behind the
// committed simcore baseline in BENCH_fleet.json and the ablation_simcore
// regression gate.
//
// Event *times* come from the seeded sim::Rng (deterministic); only the
// wall-clock timing of the loop varies run to run.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace greencc::bench {

inline std::unique_ptr<sim::EventQueue> make_hold_queue(
    sim::EventQueueKind kind) {
  if (kind == sim::EventQueueKind::kBinaryHeap) {
    return std::make_unique<sim::BinaryHeapQueue>();
  }
  return std::make_unique<sim::CalendarQueue>();
}

/// One hold step: pop the minimum, push its replacement. Split out so the
/// google-benchmark loop and the baseline gate time the same code.
inline void hold_step(sim::EventQueue& q, sim::Rng& rng, std::uint64_t& seq) {
  sim::EventQueue::Event ev = q.pop_move();
  // Mean inter-event gap 1 us, uniform — a mid-density fleet schedule.
  const std::int64_t advance =
      1 + static_cast<std::int64_t>(rng.next_below(2000));
  ev.when = ev.when + sim::SimTime::nanoseconds(advance);
  ev.seq = seq++;
  q.push(std::move(ev));
}

/// Fill `q` with `pending` events so the hold loop starts in steady state:
/// initial times are drawn from the same increment distribution the hold
/// steps use, per the classical model — every pending event lives inside
/// the active window, the way every flow in a fleet holds a timer within
/// an RTT. (Prefilling over a much wider span would instead park most of
/// the population in a dormant far tail and measure a different, easier
/// regime.)
inline std::uint64_t hold_prefill(sim::EventQueue& q, sim::Rng& rng,
                                  std::size_t pending) {
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    sim::EventQueue::Event ev;
    ev.when = sim::SimTime::nanoseconds(
        1 + static_cast<std::int64_t>(rng.next_below(2000)));
    ev.seq = seq++;
    ev.cb = [] {};
    q.push(std::move(ev));
  }
  return seq;
}

/// Hold-pattern throughput (operations per wall second) of both queue
/// kinds at a fixed pending-event count, measured head to head: timed
/// passes alternate calendar/heap/calendar/heap and each kind keeps its
/// best. Interleaving matters more than repetition — a governor ramp or a
/// noisy co-tenant then degrades both kinds' slow passes alike instead of
/// silently taxing whichever kind happened to run first, and the best-of-n
/// minimum-time estimator strips what noise remains. The speedup ratio is
/// what the regression gate judges, so it is the thing to keep stable.
struct HoldResult {
  double calendar_eps = 0.0;
  double heap_eps = 0.0;
  double speedup() const {
    return heap_eps > 0 ? calendar_eps / heap_eps : 0.0;
  }
};

inline HoldResult hold_head_to_head(std::size_t pending, std::size_t ops,
                                    std::uint64_t seed = 1, int reps = 3) {
  auto qc = make_hold_queue(sim::EventQueueKind::kCalendar);
  auto qh = make_hold_queue(sim::EventQueueKind::kBinaryHeap);
  sim::Rng rng_c(seed);
  sim::Rng rng_h(seed);
  std::uint64_t seq_c = hold_prefill(*qc, rng_c, pending);
  std::uint64_t seq_h = hold_prefill(*qh, rng_h, pending);
  // Warm up past the adaptation transient (the calendar re-derives its
  // width from the observed schedule along the way): the figure of merit
  // is the steady-state throughput a long sweep actually runs at.
  for (std::size_t i = 0; i < ops / 2; ++i) {
    hold_step(*qc, rng_c, seq_c);
    hold_step(*qh, rng_h, seq_h);
  }
  const auto timed_pass = [ops](sim::EventQueue& q, sim::Rng& rng,
                                std::uint64_t& seq) {
    // lint-allow: wall-clock (bench throughput measurement, never sim state)
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) hold_step(q, rng, seq);
    // lint-allow: wall-clock (bench throughput measurement, never sim state)
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    return sec > 0 ? static_cast<double>(ops) / sec : 0.0;
  };
  HoldResult out;
  for (int rep = 0; rep < reps; ++rep) {
    out.calendar_eps = std::max(out.calendar_eps, timed_pass(*qc, rng_c, seq_c));
    out.heap_eps = std::max(out.heap_eps, timed_pass(*qh, rng_h, seq_h));
  }
  return out;
}

}  // namespace greencc::bench
