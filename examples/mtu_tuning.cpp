// MTU tuning advisor: sweep the MTU for a given CCA and report throughput,
// energy per gigabyte and where the bottleneck sits — §4.4's "increasing
// MTU saves energy" as an operator-facing tool.
//
//   ./build/examples/mtu_tuning [cca]

#include <cstdio>
#include <iostream>
#include <string>

#include "app/scenario.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace greencc;

  const std::string cca = argc > 1 ? argv[1] : "cubic";
  const std::int64_t bytes = 1'000'000'000;

  std::printf("MTU sweep for %s, %.1f GB transfer:\n\n", cca.c_str(),
              static_cast<double>(bytes) / 1e9);

  stats::Table table({"mtu", "Gb/s", "J/GB", "avg W", "retx", "note"});
  double baseline_j_per_gb = 0.0;
  for (int mtu : {1500, 3000, 4500, 6000, 9000}) {
    app::ScenarioConfig config;
    config.tcp.mtu_bytes = units::Bytes{mtu};
    config.seed = 17;
    app::Scenario scenario(config);
    app::FlowSpec flow;
    flow.cca = cca;
    flow.bytes = units::Bytes{bytes};
    scenario.add_flow(flow);
    const auto result = scenario.run();
    const double j_per_gb =
        result.total_energy.joules() / (static_cast<double>(bytes) / 1e9);
    if (mtu == 1500) baseline_j_per_gb = j_per_gb;
    const double saved = 100.0 * (baseline_j_per_gb - j_per_gb) /
                         baseline_j_per_gb;
    char note[64];
    snprintf(note, sizeof(note), "%+.1f%% vs 1500", saved);
    table.add_row({std::to_string(mtu),
                   stats::Table::num(result.flows[0].avg_rate.gbps(), 2),
                   stats::Table::num(j_per_gb, 2),
                   stats::Table::num(result.avg_power.watts(), 2),
                   std::to_string(result.flows[0].retransmissions),
                   mtu == 1500 ? "reference" : note});
  }
  table.print(std::cout);
  std::printf("\n(the paper measures 13.4%%-31.9%% energy savings going "
              "1500 -> 9000 depending on the CCA)\n");
  return 0;
}
