// CCA energy audit: compare the energy footprint of every congestion
// control algorithm on your workload — the §5 "benchmark for a standardized
// evaluation" the paper calls for, in miniature.
//
//   ./build/examples/cca_energy_audit [mtu] [gigabytes]
//
// Prints joules per gigabyte, average power and retransmissions per
// algorithm, plus the greenest/most wasteful spread.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "app/scenario.h"
#include "cca/cca.h"
#include "stats/table.h"

int main(int argc, char** argv) {
  using namespace greencc;

  const int mtu = argc > 1 ? std::atoi(argv[1]) : 9000;
  const double gigabytes = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("CCA energy audit: %.1f GB per algorithm, MTU %d\n\n",
              gigabytes, mtu);

  struct Row {
    std::string cca;
    double j_per_gb;
    double watts;
    double gbps;
    long long retx;
  };
  std::vector<Row> rows;

  for (const auto& name : cca::all_names()) {
    app::ScenarioConfig config;
    config.tcp.mtu_bytes = units::Bytes{mtu};
    config.seed = 42;
    app::Scenario scenario(config);
    app::FlowSpec flow;
    flow.cca = name;
    flow.bytes = units::Bytes{static_cast<std::int64_t>(gigabytes * 1e9)};
    scenario.add_flow(flow);
    const auto result = scenario.run();
    if (!result.all_completed) {
      std::printf("%-10s did not complete before the deadline\n",
                  name.c_str());
      continue;
    }
    rows.push_back({name, result.total_energy.joules() / gigabytes,
                    result.avg_power.watts(), result.flows[0].avg_rate.gbps(),
                    static_cast<long long>(result.flows[0].retransmissions)});
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.j_per_gb < b.j_per_gb; });

  stats::Table table({"rank", "cca", "J/GB", "avg W", "Gb/s", "retx"});
  int rank = 1;
  for (const auto& row : rows) {
    table.add_row({std::to_string(rank++), row.cca,
                   stats::Table::num(row.j_per_gb, 2),
                   stats::Table::num(row.watts, 2),
                   stats::Table::num(row.gbps, 2),
                   std::to_string(row.retx)});
  }
  table.print(std::cout);

  if (rows.size() >= 2) {
    const double spread =
        (rows.back().j_per_gb - rows.front().j_per_gb) / rows.back().j_per_gb;
    std::printf("\ngreenest: %s; most wasteful: %s (spread %.1f%%)\n",
                rows.front().cca.c_str(), rows.back().cca.c_str(),
                100.0 * spread);
  }
  return 0;
}
