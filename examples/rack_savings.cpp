// Fleet-scale what-if: how much money and energy would a datacenter save by
// scheduling transfers full-speed-then-idle instead of fair-sharing?
//
//   ./build/examples/rack_savings [flows] [load_percent]
//
// Measures both schedules in the simulator at the given background load,
// then extrapolates with the paper's §4.2 fleet model ($10k/rack/year,
// 100k racks).

#include <cstdio>
#include <cstdlib>

#include "app/scenario.h"
#include "core/estimator.h"
#include "core/scheduler.h"

int main(int argc, char** argv) {
  using namespace greencc;

  const int flows = argc > 1 ? std::atoi(argv[1]) : 2;
  const int load_pct = argc > 2 ? std::atoi(argv[2]) : 0;
  const units::Bytes bytes{1'250'000'000};  // 10 Gbit per flow

  auto run_schedule = [&](core::Schedule schedule) {
    app::ScenarioConfig config;
    config.tcp.mtu_bytes = units::Bytes{9000};
    config.seed = 9;
    config.stress_cores = load_pct * 32 / 100;
    app::Scenario scenario(config);
    for (const auto& spec :
         core::make_schedule(schedule, flows, bytes, "cubic",
                             units::BitRate::gbps(10))) {
      scenario.add_flow(spec);
    }
    return scenario.run();
  };

  std::printf("schedules for %d x 10 Gbit flows at %d%% background load:\n\n",
              flows, load_pct);

  const auto fair = run_schedule(core::Schedule::kFairShare);
  const auto fsi = run_schedule(core::Schedule::kFullSpeedThenIdle);

  std::printf("  fair share           : %8.1f J over %.2f s (%.2f W avg)\n",
              fair.total_energy.joules(), fair.duration_sec, fair.avg_power.watts());
  std::printf("  full speed, then idle: %8.1f J over %.2f s (%.2f W avg)\n",
              fsi.total_energy.joules(), fsi.duration_sec, fsi.avg_power.watts());

  const double savings =
      (fair.total_energy - fsi.total_energy).joules() / fair.total_energy.joules();
  std::printf("\n  unfair scheduling saves %.2f%% energy\n", 100.0 * savings);

  core::SavingsEstimator fleet;
  std::printf("\nat fleet scale (%d racks x $%.0f/rack/year):\n", fleet.racks,
              fleet.rack_cost_usd_per_year);
  std::printf("  ~$%.1fM/year, ~%.0f GWh/year\n",
              fleet.usd_per_year(savings) / 1e6,
              fleet.gwh_per_year(savings));
  std::printf("\n(the paper estimates $10M/year per 1%% saved; savings "
              "shrink as background load rises — try \"%s 2 75\")\n",
              argv[0]);
  return 0;
}
