// Quickstart: measure the energy of one CUBIC bulk transfer, the way the
// paper's harness wraps iperf3 with RAPL counter reads (§3).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "app/scenario.h"

int main() {
  using namespace greencc;

  // Testbed from §3: 10 Gb/s bottleneck behind a switch, bonded 2x10G
  // sender NIC, jumbo frames.
  app::ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = 42;

  app::Scenario scenario(config);

  // One iperf3-like flow: 2 GB of bulk data over CUBIC.
  app::FlowSpec flow;
  flow.cca = "cubic";
  flow.bytes = units::Bytes{2'000'000'000};
  scenario.add_flow(flow);

  app::ScenarioResult result = scenario.run();

  const auto& f = result.flows.front();
  std::printf("transfer      : %.2f GB over %s\n",
              static_cast<double>(f.bytes.count()) / 1e9, f.cca.c_str());
  std::printf("completion    : %.3f s (%.2f Gb/s)\n", f.fct_sec, f.avg_rate.gbps());
  std::printf("retransmits   : %lld segments\n",
              static_cast<long long>(f.retransmissions));
  std::printf("energy        : %.1f J (avg %.2f W)\n", result.total_energy.joules(),
              result.avg_power.watts());
  std::printf("bottleneck    : %llu drops, %llu ECN marks\n",
              static_cast<unsigned long long>(result.bottleneck.dropped),
              static_cast<unsigned long long>(result.bottleneck.ecn_marked));
  return 0;
}
