// Window-dynamics viewer: trace a congestion controller's cwnd, smoothed
// RTT, inflight and the bottleneck queue over a transfer, and dump the
// series to CSV for plotting — the debugging loop for anyone adding a new
// algorithm to the testbed.
//
//   ./build/examples/cwnd_dynamics [cca] [out.csv]

#include <cstdio>
#include <fstream>
#include <string>

#include "app/scenario.h"

int main(int argc, char** argv) {
  using namespace greencc;

  const std::string cca = argc > 1 ? argv[1] : "cubic";
  const std::string csv = argc > 2 ? argv[2] : "cwnd_" + cca + ".csv";

  app::ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = 4;
  config.trace_interval = sim::SimTime::milliseconds(2);
  app::Scenario scenario(config);
  app::FlowSpec flow;
  flow.cca = cca;
  flow.bytes = units::Bytes{1'000'000'000};
  scenario.add_flow(flow);
  const auto result = scenario.run();

  if (!result.all_completed) {
    std::printf("transfer did not complete\n");
    return 1;
  }

  std::ofstream out(csv);
  out << "t_sec,cwnd_segments,srtt_us,pipe_segments,queue_bytes\n";
  const auto& trace = result.flows[0].trace;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& s = trace[i];
    const std::int64_t queue =
        i < result.queue_series.size() ? result.queue_series[i].second : 0;
    out << s.t_sec << ',' << s.cwnd_segments << ',' << s.srtt_us << ','
        << s.pipe_segments << ',' << queue << '\n';
  }

  // Quick text view: min/max/mean of each traced quantity.
  double cwnd_min = 1e18, cwnd_max = 0, srtt_max = 0;
  for (const auto& s : trace) {
    cwnd_min = std::min(cwnd_min, s.cwnd_segments);
    cwnd_max = std::max(cwnd_max, s.cwnd_segments);
    srtt_max = std::max(srtt_max, s.srtt_us);
  }
  std::printf("%s: %.2f Gb/s, %zu trace samples -> %s\n", cca.c_str(),
              result.flows[0].avg_rate.gbps(), trace.size(), csv.c_str());
  std::printf("cwnd range [%.0f, %.0f] segments, peak srtt %.0f us, "
              "bottleneck drops %llu\n",
              cwnd_min, cwnd_max, srtt_max,
              static_cast<unsigned long long>(result.bottleneck.dropped));
  std::printf("(plot the CSV: t vs cwnd shows the %s sawtooth/probe shape)\n",
              cca.c_str());
  return 0;
}
