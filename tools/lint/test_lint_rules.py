#!/usr/bin/env python3
"""Fixture tests for the project lint rules.

Each rule must (a) fire on a known-bad snippet and (b) stay silent when the
snippet carries a `// lint-allow: <rule> (reason)` escape. Without this, a
regex edit can silently stop a rule from matching anything and the lint
keeps reporting "clean" forever. Fixtures live in testdata/ with .bad/.ok
extensions so `git ls-files '*.cc'` (the format check) never picks them up.

Runs the lint modules in-process (they are plain stdlib python). Exit 0 on
success, 1 with per-case diagnostics on failure. Registered as the
`lint_rules` ctest under the `lint` label.
"""

import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))

import nondeterminism_lint  # noqa: E402
import unit_suffix_lint  # noqa: E402

TESTDATA = HERE / "testdata"
failures = []


def check(label, cond, detail=""):
    if cond:
        print(f"ok   {label}")
    else:
        print(f"FAIL {label} {detail}")
        failures.append(label)


def nd_rules(findings):
    return sorted({rule for _, rule, _ in findings})


# --- unit-suffix: fires once per bad declaration, silent on the ok file ---

bad = unit_suffix_lint.lint_file(TESTDATA / "unit_suffix.cc.bad")
check("unit-suffix fires on every bad decl", len(bad) == 8,
      f"(got {len(bad)}: {bad})")

ok = unit_suffix_lint.lint_file(TESTDATA / "unit_suffix.cc.ok")
check("unit-suffix silent on allows/ratios/members", not ok, f"(got {ok})")

# --- nondeterminism rules: each fires on its line, all silenced by allows ---

bad = nondeterminism_lint.lint_file(
    TESTDATA / "nondeterminism.cc.bad", pathlib.Path("src/fixture.cc"))
for rule in ("wall-clock", "libc-rand", "float-eq", "seed-arith"):
    check(f"{rule} fires on bad fixture", rule in nd_rules(bad),
          f"(fired: {nd_rules(bad)})")

ok = nondeterminism_lint.lint_file(
    TESTDATA / "nondeterminism.cc.ok", pathlib.Path("src/fixture.cc"))
check("nondeterminism rules silent under lint-allow", not ok, f"(got {ok})")

# --- const-cast: scoped to src/sim/ -- fires there, nowhere else ---

in_sim = nondeterminism_lint.lint_file(
    TESTDATA / "const_cast.cc.bad", pathlib.Path("src/sim/fixture.cc"))
check("const-cast fires under src/sim/", "const-cast" in nd_rules(in_sim),
      f"(fired: {nd_rules(in_sim)})")

outside = nondeterminism_lint.lint_file(
    TESTDATA / "const_cast.cc.bad", pathlib.Path("src/tcp/fixture.cc"))
check("const-cast silent outside src/sim/",
      "const-cast" not in nd_rules(outside), f"(fired: {nd_rules(outside)})")

# --- the real tree must be clean right now (guards against regex rot that
# *widens* a rule and floods the build with false positives) ---

check("unit-suffix lint clean on tree", unit_suffix_lint.main() == 0)
check("nondeterminism lint clean on tree", nondeterminism_lint.main() == 0)

if failures:
    print(f"\n{len(failures)} lint fixture case(s) failed", file=sys.stderr)
    sys.exit(1)
print("\nall lint fixture cases passed")
