#!/usr/bin/env python3
"""Nondeterminism lint for the greencc tree.

The simulator's contract is bit-identical results for a given seed, on any
machine, at any thread count. The classic ways C++ code breaks that contract
are cheap to catch with a grep-shaped scan, so this lint bans them outright:

  wall-clock       std::chrono::{system,steady,high_resolution}_clock,
                   time(nullptr)/time(0), gettimeofday, clock() — wall time
                   must never feed simulated results. (Profiling wall time is
                   fine; annotate the site.)
  libc-rand        rand()/srand()/drand48()/std::random_device — all
                   randomness must come from the seeded sim::Rng.
  unordered-iter   range-for over a std::unordered_{map,set}: iteration
                   order is implementation-defined, so anything
                   order-sensitive built from it diverges across platforms.
  float-eq         == / != against a floating-point literal: exact equality
                   on computed floats is almost always a latent bug. Exact
                   sentinel checks (x == 0.0 meaning "unset") are legitimate;
                   annotate them.
  seed-arith       sim::Rng seeded with ad-hoc arithmetic on a seed
                   (seed * 7919 + 17, seed + i): nearby seeds produce
                   overlapping or correlated streams, the hazard the fault
                   subsystem's per-stage streams must never inherit. Derive
                   with sim::mix_seed(seed, site, stream) /
                   app::derive_seed instead.
  const-cast       const_cast under src/sim: the event core once popped
                   events by const_cast-ing std::priority_queue::top() —
                   mutating a node the container believes frozen, UB the
                   moment an implementation caches anything about it. The
                   queue now exposes pop_move(); nothing in the simulator
                   core gets to strip const again.

A finding is suppressed by a `lint-allow: <rule>` comment on the same line
or the line above, which doubles as documentation for why the site is safe:

    const auto t0 = std::chrono::steady_clock::now();  // lint-allow: wall-clock (profiling only)

Exit status: 0 when clean, 1 with one "file:line: [rule] ..." per finding.
Stdlib only; no third-party dependencies.
"""

import pathlib
import re
import sys

ROOTS = ("src", "tests", "bench", "examples")
SUFFIXES = (".cc", ".h")
ALLOW = "lint-allow:"

WALL_CLOCK = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|\bgettimeofday\s*\("
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
    r"|\bclock\s*\(\s*\)"
)
LIBC_RAND = re.compile(
    r"(?<![\w:])s?rand\s*\(" r"|\brandom_device\b" r"|\b[dl]rand48\s*\("
)
# A float literal: 1.0, .5, 2e9, 1.5e-3, 1.f — but not a plain integer.
_FLOAT = r"(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)[fF]?"
FLOAT_EQ = re.compile(rf"[=!]=\s*(?:{_FLOAT})(?![\w.])|(?:{_FLOAT})\s*[=!]=")
# Rng constructions (both `Rng(expr)` and `Rng name(expr)`) whose argument
# does arithmetic on an identifier ending in "seed". mix_seed/derive_seed
# calls never match: their own opening paren stops the [^()]* run.
SEED_ARITH = re.compile(r"\bRng\b[^();=]*\(\s*[^()]*seed\b[^()]*[-+*^%][^()]*\)")
UNORDERED_DECL = re.compile(r"\bunordered_(?:multi)?(?:map|set)\s*<[^;=()]*>\s+(\w+)\s*[;{{=]")
RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*:\s*\*?(\w+)\s*\)")

CONST_CAST = re.compile(r"\bconst_cast\s*<")

RULES = (
    ("wall-clock", WALL_CLOCK),
    ("libc-rand", LIBC_RAND),
    ("float-eq", FLOAT_EQ),
    ("seed-arith", SEED_ARITH),
)

# Rules that apply only under particular subtrees (relative to the repo
# root). const_cast is banned in the simulator core specifically: that is
# where it once produced the UB-adjacent frozen-heap-node pop.
SCOPED_RULES = (
    ("src/sim", ("const-cast", CONST_CAST)),
)


def strip_code_noise(line: str) -> str:
    """Remove string/char literals and the trailing // comment, so the rule
    regexes only see code. Crude but sufficient for this tree's style."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)'", "''", line)
    return line.split("//", 1)[0]


def allowed(rule: str, lines: list, index: int) -> bool:
    for probe in (index, index - 1):
        if probe < 0:
            continue
        comment = lines[probe].partition("//")[2]
        if ALLOW in comment and rule in comment.split(ALLOW, 1)[1]:
            return True
    return False


def unordered_names(path: pathlib.Path, text: str) -> set:
    """Identifiers declared as unordered containers in this file or its
    paired header/source (same stem), so switch.cc sees egress_ from
    switch.h."""
    names = set(UNORDERED_DECL.findall(text))
    for sibling_suffix in SUFFIXES:
        sibling = path.with_suffix(sibling_suffix)
        if sibling != path and sibling.exists():
            names |= set(UNORDERED_DECL.findall(sibling.read_text()))
    return names


def lint_file(path: pathlib.Path, rel: pathlib.Path) -> list:
    text = path.read_text()
    lines = text.splitlines()
    unordered = unordered_names(path, text)
    rules = list(RULES)
    for prefix, scoped in SCOPED_RULES:
        if str(rel).startswith(prefix):
            rules.append(scoped)
    findings = []
    in_block_comment = False
    for i, raw in enumerate(lines):
        if in_block_comment:
            if "*/" in raw:
                in_block_comment = False
            continue
        if raw.lstrip().startswith("/*") or raw.lstrip().startswith("*"):
            if "/*" in raw and "*/" not in raw:
                in_block_comment = True
            continue
        code = strip_code_noise(raw)
        for rule, pattern in rules:
            if pattern.search(code) and not allowed(rule, lines, i):
                findings.append((i + 1, rule, raw.strip()))
        for_match = RANGE_FOR.search(code)
        if for_match and (
            for_match.group(1) in unordered or "unordered" in code
        ):
            if not allowed("unordered-iter", lines, i):
                findings.append((i + 1, "unordered-iter", raw.strip()))
    return findings


def main() -> int:
    repo = pathlib.Path(__file__).resolve().parent.parent.parent
    failed = 0
    for root in ROOTS:
        base = repo / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(repo)
            for line_no, rule, snippet in lint_file(path, rel):
                print(f"{rel}:{line_no}: [{rule}] {snippet}")
                failed += 1
    if failed:
        print(
            f"\n{failed} nondeterminism finding(s). Fix them, or mark a "
            f"deliberate site with `// lint-allow: <rule> (reason)`.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
