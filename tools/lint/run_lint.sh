#!/bin/sh
# Project lint entry point (wired as the `lint`-labelled ctest):
#
#   1. nondeterminism lint  — bans wall-clock, libc rand, unordered-container
#      iteration and float == (tools/lint/nondeterminism_lint.py). Fails the
#      build on findings; requires only python3.
#   2. unit-suffix lint     — bans fresh raw double/int declarations whose
#      names claim a unit (_bps, _bytes, _joules, ...) outside src/units/
#      (tools/lint/unit_suffix_lint.py): use the units:: type instead.
#   3. lint-allow ratchet   — the per-rule budget of lint-allow escape
#      comments (tools/lint/lint_allow_budget.txt) only goes down.
#   4. clang-format check   — via check_format.sh; skipped when clang-format
#      is not installed.
#   5. clang-tidy           — project .clang-tidy over src/, using the
#      compile_commands.json exported by the default preset; skipped when
#      clang-tidy (or the compilation database) is missing.
#
# Missing tools skip their step with a notice instead of failing, so the
# lint target works in minimal containers and tightens automatically on
# developer machines with the full LLVM toolchain.
#
# Usage: run_lint.sh [repo_root [build_dir]]
set -eu

script_dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
repo_root=${1:-$(CDPATH= cd -- "$script_dir/../.." && pwd)}
build_dir=${2:-$repo_root/build}
cd "$repo_root"

status=0

if command -v python3 >/dev/null 2>&1; then
  echo "== nondeterminism lint =="
  python3 "$script_dir/nondeterminism_lint.py" || status=1
  echo "== unit-suffix lint =="
  python3 "$script_dir/unit_suffix_lint.py" || status=1
  echo "== lint-allow ratchet =="
  python3 "$script_dir/lint_allow_ratchet.py" || status=1
else
  echo "run_lint: python3 not found - skipping python lints"
fi

echo "== format check =="
"$script_dir/check_format.sh" "$repo_root" || status=1

echo "== clang-tidy =="
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_lint: clang-tidy not found - skipping (install LLVM to enable)"
elif [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_lint: $build_dir/compile_commands.json missing - configure the" \
       "default preset first (cmake --preset default)"
else
  # shellcheck disable=SC2046 -- word-splitting the file list is intended.
  clang-tidy -p "$build_dir" --quiet $(git ls-files 'src/*.cc') || status=1
fi

if [ "$status" -eq 0 ]; then
  echo "lint: clean"
else
  echo "lint: FAILED"
fi
exit "$status"
