#!/usr/bin/env python3
"""lint-allow ratchet: the escape-hatch budget only goes down.

Every `// lint-allow: <rule> (reason)` comment is a deliberate hole in a
lint rule. Individually each is justified; collectively they rot — new code
copies the comment instead of fixing the finding. This checker counts the
allows per rule across the linted roots and compares against the committed
budget in lint_allow_budget.txt:

  * count > budget   -> FAIL. Fix the finding instead of suppressing it, or
                        (for a genuine new interop boundary) raise the budget
                        explicitly in the same commit and defend it in review.
  * count < budget   -> FAIL with a reminder to re-run with --write-budget:
                        the ratchet only ratchets if shrinkage is locked in.
  * count == budget  -> clean.

Usage:
  lint_allow_ratchet.py                 # check against the committed budget
  lint_allow_ratchet.py --write-budget  # rewrite budget from current counts

Stdlib only; no third-party dependencies.
"""

import pathlib
import re
import sys

ROOTS = ("src", "tests", "bench", "examples")
SUFFIXES = (".cc", ".h", ".cpp")
BUDGET_FILE = "lint_allow_budget.txt"

# Matches the rule name after "lint-allow:". Reasons in parentheses are
# free-form and not parsed.
ALLOW = re.compile(r"//\s*lint-allow:\s*([a-z][a-z0-9-]*)")


def count_allows(repo: pathlib.Path) -> dict:
    counts = {}
    for root in ROOTS:
        base = repo / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES or not path.is_file():
                continue
            for line in path.read_text().splitlines():
                m = ALLOW.search(line)
                if m:
                    counts[m.group(1)] = counts.get(m.group(1), 0) + 1
    return counts


def read_budget(path: pathlib.Path) -> dict:
    budget = {}
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        rule, _, count = line.partition(" ")
        budget[rule] = int(count)
    return budget


def write_budget(path: pathlib.Path, counts: dict) -> None:
    lines = [
        "# lint-allow budget: max escape-hatch comments per lint rule.",
        "# Maintained by tools/lint/lint_allow_ratchet.py --write-budget.",
        "# Counts may only go DOWN; raising one requires an explicit edit",
        "# here, defended in review.",
    ]
    for rule in sorted(counts):
        lines.append(f"{rule} {counts[rule]}")
    path.write_text("\n".join(lines) + "\n")


def main() -> int:
    here = pathlib.Path(__file__).resolve().parent
    repo = here.parent.parent
    budget_path = here / BUDGET_FILE
    counts = count_allows(repo)

    if "--write-budget" in sys.argv[1:]:
        write_budget(budget_path, counts)
        print(f"lint-allow budget written: {dict(sorted(counts.items()))}")
        return 0

    if not budget_path.is_file():
        print(
            f"lint-allow ratchet: {budget_path} missing - run with "
            f"--write-budget to create it",
            file=sys.stderr,
        )
        return 1

    budget = read_budget(budget_path)
    failed = 0
    for rule in sorted(set(counts) | set(budget)):
        have = counts.get(rule, 0)
        allowed = budget.get(rule, 0)
        if have > allowed:
            print(
                f"lint-allow ratchet: rule '{rule}' has {have} allows, "
                f"budget is {allowed}. Fix the finding instead of "
                f"suppressing it (or raise the budget explicitly in "
                f"tools/lint/{BUDGET_FILE} and defend it in review)."
            )
            failed = 1
        elif have < allowed:
            print(
                f"lint-allow ratchet: rule '{rule}' shrank to {have} "
                f"(budget {allowed}). Lock it in: re-run with "
                f"--write-budget and commit the new budget."
            )
            failed = 1
    if not failed:
        print(f"lint-allow ratchet: clean ({sum(counts.values())} allows)")
    return failed


if __name__ == "__main__":
    sys.exit(main())
