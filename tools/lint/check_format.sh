#!/bin/sh
# Format check against the project .clang-format. Degrades gracefully: when
# clang-format is not installed the check is skipped (exit 0 with a notice),
# so the `lint` ctest label stays green on minimal containers while still
# enforcing format wherever the tool exists.
#
# Usage: check_format.sh [repo_root]
set -eu

repo_root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/../.." && pwd)}
cd "$repo_root"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found - skipping (install it to enforce .clang-format)"
  exit 0
fi

# Tracked C++ sources only; build trees and vendored files never qualify.
files=$(git ls-files '*.cc' '*.h' 2>/dev/null || true)
if [ -z "$files" ]; then
  # Not a git checkout (tarball export): fall back to the source roots.
  files=$(find src tests bench examples -name '*.cc' -o -name '*.h' 2>/dev/null)
fi

status=0
for f in $files; do
  if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "check_format: $f is not clang-format clean"
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "check_format: run 'clang-format -i' on the files above"
fi
exit "$status"
