#!/usr/bin/env python3
"""Unit-suffix lint for the greencc tree.

src/units/ provides strongly-typed quantities (units::Bytes, units::BitRate,
units::Energy, units::Power, ...). Once a quantity is typed, the compiler
proves its dimension; a raw `double rate_bps` re-opens the bits-vs-bytes /
J-vs-W hole the units layer closed. This lint bans *fresh* raw arithmetic
declarations whose names claim a unit:

  unit-suffix   a declaration of double/float/int-family type whose variable
                name ends in _bps, _bytes, _bits, _joules, _watts, _gbps,
                _pps or _seconds anywhere outside src/units/. Declare the
                variable with the matching units:: type instead.

Names that are *ratios* of units (containing `_per_`, e.g. the calibration
fit coefficients `util_per_gbps`) are exempt: a W-per-Gb/s slope is a model
parameter, not a quantity the units layer models. Private members with a
trailing underscore (`rate_bps_`) do not end in a unit suffix and are
likewise not matched — typed interfaces with raw internal representations
are the intended pattern for hot-path code.

Deliberate raw sites (journal wire fields, wall-clock profiling) are
suppressed the same way as the nondeterminism lint, and the suppression
documents why:

    double rate_bps = 0.0;  // lint-allow: unit-suffix (journal wire field)

Exit status: 0 when clean, 1 with one "file:line: [unit-suffix] ..." per
finding. Stdlib only; no third-party dependencies.
"""

import pathlib
import re
import sys

ROOTS = ("src", "tests", "bench", "examples")
EXEMPT_PREFIXES = ("src/units",)
SUFFIXES = (".cc", ".h", ".cpp")
ALLOW = "lint-allow:"
RULE = "unit-suffix"

# Raw arithmetic types a unit-named variable must not be declared with.
_RAW_TYPE = (
    r"(?:double|float"
    r"|(?:std::)?u?int(?:8|16|32|64)?_t"
    r"|(?:std::)?size_t"
    r"|(?:unsigned\s+)?(?:long\s+long|long|int|short)"
    r")"
)
_UNIT_SUFFIX = r"(?:bps|bytes|bits|joules|watts|gbps|pps|seconds)"

# A declaration: optional qualifiers, a raw type, then a unit-suffixed name
# that is not a function (no `(` after) and not a member with a trailing
# underscore. `_per_` names are ratio coefficients and exempt by design.
DECL = re.compile(
    r"(?:^\s*|[;{(,]\s*|\breturn\s+)"
    r"(?:(?:const|constexpr|static|inline|mutable|volatile)\s+)*"
    rf"{_RAW_TYPE}\s*&?\s+"
    rf"(\w*_{_UNIT_SUFFIX})\b(?!\s*\(|_)"
)


def strip_code_noise(line: str) -> str:
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)'", "''", line)
    return line.split("//", 1)[0]


def allowed(lines: list, index: int) -> bool:
    for probe in (index, index - 1):
        if probe < 0:
            continue
        comment = lines[probe].partition("//")[2]
        if ALLOW in comment and RULE in comment.split(ALLOW, 1)[1]:
            return True
    return False


def lint_file(path: pathlib.Path) -> list:
    lines = path.read_text().splitlines()
    findings = []
    in_block_comment = False
    for i, raw in enumerate(lines):
        if in_block_comment:
            if "*/" in raw:
                in_block_comment = False
            continue
        if raw.lstrip().startswith("/*") or raw.lstrip().startswith("*"):
            if "/*" in raw and "*/" not in raw:
                in_block_comment = True
            continue
        code = strip_code_noise(raw)
        for match in DECL.finditer(code):
            name = match.group(1)
            if "_per_" in name:
                continue
            if not allowed(lines, i):
                findings.append((i + 1, raw.strip()))
    return findings


def main() -> int:
    repo = pathlib.Path(__file__).resolve().parent.parent.parent
    failed = 0
    for root in ROOTS:
        base = repo / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(repo)
            if str(rel).startswith(EXEMPT_PREFIXES):
                continue
            for line_no, snippet in lint_file(path):
                print(f"{rel}:{line_no}: [{RULE}] {snippet}")
                failed += 1
    if failed:
        print(
            f"\n{failed} unit-suffix finding(s). Use the matching units:: "
            f"type, or mark a deliberate raw site with "
            f"`// lint-allow: {RULE} (reason)`.",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
