#!/bin/sh
# One-stop pre-merge gate: every static and dynamic check the repo defines,
# in dependency order, with a single summary at the end. Keeps running after
# a failure so one run reports *all* problems:
#
#   1. format        — clang-format via tools/lint/check_format.sh
#   2. lints         — nondeterminism + unit-suffix + lint-allow ratchet
#   3. lint fixtures — tools/lint/test_lint_rules.py (rules actually fire)
#   4. scenario pack — greencc_sweep --validate over every scenarios/ file
#   5. default build — cmake --preset default, build, full ctest
#   6. audit build   — cmake --preset audit, build, full ctest
#
# The sanitizer presets (asan/ubsan/tsan) are heavier and stay separate;
# see ROADMAP.md for the full release checklist. Usage:
#
#   tools/ci/check_all.sh [repo_root]
#
# Also registered as the `check_all` ctest under the `ci` CONFIGURATION, so
# a plain `ctest` run never nests a full build inside itself; CI drivers
# invoke it explicitly: ctest --test-dir build -C ci -R check_all.
set -u

repo_root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/../.." && pwd)}
cd "$repo_root"

results=""
overall=0

step() {
  name=$1
  shift
  echo ""
  echo "=== $name ==="
  if "$@"; then
    results="$results
  PASS  $name"
  else
    results="$results
  FAIL  $name"
    overall=1
  fi
}

build_and_test() {
  preset=$1
  cmake --preset "$preset" >/dev/null &&
    cmake --build --preset "$preset" -j "$(nproc)" &&
    ctest --test-dir "build$(
      [ "$preset" = default ] || echo "-$preset"
    )" --output-on-failure -E '^check_all$'
}

validate_scenarios() {
  # Every committed scenario file must parse, type-check and compile.
  # Prefers the freshly built default-preset binary; falls back to any
  # existing build so the step works standalone too.
  sweep=""
  for candidate in build/src/tools/greencc_sweep build-audit/src/tools/greencc_sweep; do
    [ -x "$candidate" ] && sweep=$candidate && break
  done
  if [ -z "$sweep" ]; then
    echo "greencc_sweep not built yet; building default preset first"
    cmake --preset default >/dev/null &&
      cmake --build --preset default -j "$(nproc)" --target greencc_sweep ||
      return 1
    sweep=build/src/tools/greencc_sweep
  fi
  "$sweep" --validate scenarios/
}

step "format"        tools/lint/check_format.sh "$repo_root"
step "lints"         sh -c "
  python3 tools/lint/nondeterminism_lint.py &&
  python3 tools/lint/unit_suffix_lint.py &&
  python3 tools/lint/lint_allow_ratchet.py"
step "lint-fixtures" python3 tools/lint/test_lint_rules.py
step "scenario-pack-validate" validate_scenarios
step "build+test default" build_and_test default
step "build+test audit"   build_and_test audit

echo ""
echo "=== check_all summary ==="
echo "$results"
if [ "$overall" -eq 0 ]; then
  echo "check_all: ALL CLEAN"
else
  echo "check_all: FAILURES (see above)"
fi
exit "$overall"
