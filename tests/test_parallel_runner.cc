#include "app/parallel_runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/runner.h"

namespace greencc::app {
namespace {

// --- seed derivation ---

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(2, 2, 3));
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 3, 3));
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 2, 4));
}

TEST(DeriveSeed, NoCollisionsAcrossAGrid) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t cell = 0; cell < 64; ++cell) {
    for (std::uint64_t repeat = 0; repeat < 16; ++repeat) {
      seen.insert(derive_seed(1, cell, repeat));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 16u);
}

TEST(DeriveSeed, DoesNotReproduceTheOverlappingLinearScheme) {
  // The old scheme was base_seed + repeat, which made cell A's repeat 1
  // identical to cell B's repeat 0 (every cell shared one base seed). The
  // mixed derivation must not produce those overlaps.
  EXPECT_NE(derive_seed(1, 0, 1), 2u);
  EXPECT_NE(derive_seed(1, 0, 1), derive_seed(1, 1, 0));
  EXPECT_NE(derive_seed(5, 0, 0), 5u);
}

// --- the pool itself ---

TEST(ParallelRunner, RunsEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> counts(100);
    ParallelRunner pool(jobs);
    pool.for_each_index(counts.size(),
                        [&](std::size_t i) { counts[i].fetch_add(1); });
    for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
  }
}

TEST(ParallelRunner, MoreJobsThanTasks) {
  std::vector<std::atomic<int>> counts(3);
  ParallelRunner pool(16);
  pool.for_each_index(counts.size(),
                      [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelRunner, ZeroTasksIsANoop) {
  ParallelRunner pool(4);
  pool.for_each_index(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelRunner, NonPositiveJobsSelectsHardwareConcurrency) {
  ParallelRunner pool(0);
  EXPECT_GE(pool.jobs(), 1);
}

TEST(ParallelRunner, SingleFailureRethrowsTheOriginalException) {
  ParallelRunner pool(4);
  std::atomic<int> ran{0};
  try {
    pool.for_each_index(8, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 5) throw std::out_of_range("boom at 5");
    });
    FAIL() << "expected a throw";
  } catch (const std::out_of_range& e) {
    // The original type survives, not a generic wrapper.
    EXPECT_STREQ(e.what(), "boom at 5");
  }
  // The pool drains before throwing: the failure cancels nothing.
  EXPECT_EQ(ran.load(), 8);
}

TEST(ParallelRunner, MultipleFailuresAggregateEveryMessage) {
  ParallelRunner pool(2);
  try {
    pool.for_each_index(10, [](std::size_t i) {
      if (i == 2 || i == 7) {
        throw std::runtime_error("boom at " + std::to_string(i));
      }
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    // The second failure is not silently discarded behind the first.
    const std::string what = e.what();
    EXPECT_NE(what.find("boom at 2"), std::string::npos) << what;
    EXPECT_NE(what.find("boom at 7"), std::string::npos) << what;
  }
}

TEST(ParallelRunner, CollectReturnsEveryFailureInIndexOrder) {
  for (int jobs : {1, 4}) {
    ParallelRunner pool(jobs);
    std::atomic<int> ran{0};
    const auto failures =
        pool.for_each_index_collect(12, [&](std::size_t i) {
          ran.fetch_add(1);
          if (i % 3 == 0) {
            throw std::runtime_error("fail " + std::to_string(i));
          }
        });
    EXPECT_EQ(ran.load(), 12);
    ASSERT_EQ(failures.size(), 4u) << "jobs=" << jobs;
    for (std::size_t k = 0; k < failures.size(); ++k) {
      EXPECT_EQ(failures[k].index, k * 3);
      EXPECT_EQ(failures[k].message, "fail " + std::to_string(k * 3));
      ASSERT_TRUE(failures[k].error);
      EXPECT_THROW(std::rethrow_exception(failures[k].error),
                   std::runtime_error);
    }
  }
}

TEST(ParallelRunner, CollectReturnsEmptyOnSuccess) {
  ParallelRunner pool(4);
  EXPECT_TRUE(pool.for_each_index_collect(6, [](std::size_t) {}).empty());
}

TEST(ParallelRunner, ReportsProgressForEveryTask) {
  std::size_t calls = 0;
  std::size_t max_done = 0;
  ParallelRunner pool(2, [&](std::size_t done, std::size_t total,
                             std::size_t /*index*/, double secs) {
    // Called under the pool's progress mutex, so plain writes are safe.
    ++calls;
    max_done = std::max(max_done, done);
    EXPECT_EQ(total, 10u);
    EXPECT_GE(secs, 0.0);
  });
  pool.for_each_index(10, [](std::size_t) {});
  EXPECT_EQ(calls, 10u);
  EXPECT_EQ(max_done, 10u);
}

// --- determinism of the full experiment path ---

std::unique_ptr<Scenario> build(std::uint64_t seed) {
  ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = seed;
  auto scenario = std::make_unique<Scenario>(config);
  FlowSpec flow;
  flow.bytes = units::Bytes{62'500'000};  // 0.5 Gbit, keeps the test fast
  scenario->add_flow(flow);
  return scenario;
}

std::vector<double> fingerprint(const RepeatResult& agg) {
  std::vector<double> v = {agg.joules.mean(),          agg.joules.stddev(),
                           agg.watts.mean(),           agg.watts.stddev(),
                           agg.duration_sec.mean(),    agg.duration_sec.stddev(),
                           agg.retransmissions.mean()};
  for (const auto& run : agg.runs) {
    v.push_back(run.total_energy.joules());
    v.push_back(run.avg_power.watts());
    v.push_back(run.duration_sec);
    v.push_back(run.flows[0].fct_sec);
    v.push_back(static_cast<double>(run.flows[0].retransmissions));
  }
  return v;
}

TEST(ParallelRunner, ThreadCountDoesNotChangeResults) {
  RepeatOptions serial;
  serial.repeats = 4;
  serial.base_seed = 7;
  serial.jobs = 1;
  const auto reference = fingerprint(run_repeated(build, serial));

  for (int jobs : {2, 8}) {
    RepeatOptions parallel = serial;
    parallel.jobs = jobs;
    const auto got = fingerprint(run_repeated(build, parallel));
    ASSERT_EQ(got.size(), reference.size());
    // Byte-identical, not approximately equal: the parallel path must run
    // the exact same simulations and aggregate them in the same order.
    EXPECT_EQ(0, std::memcmp(got.data(), reference.data(),
                             reference.size() * sizeof(double)))
        << "jobs=" << jobs << " diverged from the serial run";
  }
}

TEST(ParallelRunner, CellIndexDecorrelatesRepeats) {
  RepeatOptions a;
  a.repeats = 2;
  a.base_seed = 7;
  RepeatOptions b = a;
  b.cell_index = 1;
  EXPECT_NE(run_repeated(build, a).joules.mean(),
            run_repeated(build, b).joules.mean());
}

}  // namespace
}  // namespace greencc::app
