#include "net/port.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace greencc::net {
namespace {

using sim::SimTime;
using sim::Simulator;

class Collector : public PacketHandler {
 public:
  explicit Collector(Simulator& sim) : sim_(sim) {}
  void handle(Packet pkt) override {
    arrivals.emplace_back(sim_.now(), pkt);
  }
  std::vector<std::pair<SimTime, Packet>> arrivals;

 private:
  Simulator& sim_;
};

Packet pkt_of(std::int64_t seq, std::int32_t size) {
  Packet p;
  p.seq = seq;
  p.size_bytes = units::Bytes{size};
  return p;
}

TEST(QueuedPort, SerializationPlusPropagation) {
  Simulator sim;
  Collector sink(sim);
  PortConfig cfg;
  cfg.rate = units::BitRate::bps(10e9);
  cfg.propagation = SimTime::microseconds(5);
  QueuedPort port(sim, "p", cfg, &sink);
  port.handle(pkt_of(0, 1500));  // 1.2 us serialization
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first,
            SimTime::nanoseconds(1200) + SimTime::microseconds(5));
}

TEST(QueuedPort, BackToBackPacketsSpaceAtLineRate) {
  Simulator sim;
  Collector sink(sim);
  PortConfig cfg;
  cfg.rate = units::BitRate::bps(10e9);
  cfg.propagation = SimTime::zero();
  QueuedPort port(sim, "p", cfg, &sink);
  for (int i = 0; i < 3; ++i) port.handle(pkt_of(i, 1500));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[0].first, SimTime::nanoseconds(1200));
  EXPECT_EQ(sink.arrivals[1].first, SimTime::nanoseconds(2400));
  EXPECT_EQ(sink.arrivals[2].first, SimTime::nanoseconds(3600));
}

TEST(QueuedPort, PerPacketOverheadSlowsService) {
  Simulator sim;
  Collector sink(sim);
  PortConfig cfg;
  cfg.rate = units::BitRate::bps(10e9);
  cfg.propagation = SimTime::zero();
  cfg.per_packet_ns = 800.0;
  QueuedPort port(sim, "p", cfg, &sink);
  port.handle(pkt_of(0, 1500));
  sim.run();
  EXPECT_EQ(sink.arrivals[0].first, SimTime::nanoseconds(2000));
}

TEST(QueuedPort, IdlePortResumesCleanly) {
  Simulator sim;
  Collector sink(sim);
  PortConfig cfg;
  cfg.rate = units::BitRate::bps(10e9);
  cfg.propagation = SimTime::zero();
  QueuedPort port(sim, "p", cfg, &sink);
  port.handle(pkt_of(0, 1500));
  sim.run();
  // Second packet long after the first drained.
  sim.schedule(SimTime::microseconds(100) - sim.now(),
               [&] { port.handle(pkt_of(1, 1500)); });
  sim.run();
  EXPECT_EQ(sink.arrivals[1].first,
            SimTime::microseconds(100) + SimTime::nanoseconds(1200));
}

TEST(QueuedPort, TailDropWhenQueueFull) {
  Simulator sim;
  Collector sink(sim);
  PortConfig cfg;
  cfg.rate = units::BitRate::bps(1e9);
  cfg.queue_capacity_bytes = units::Bytes{3000};
  cfg.propagation = SimTime::zero();
  QueuedPort port(sim, "p", cfg, &sink);
  // First goes straight to the transmitter (leaves the queue immediately);
  // next two fill the queue; the rest drop.
  for (int i = 0; i < 6; ++i) port.handle(pkt_of(i, 1500));
  sim.run();
  EXPECT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(port.queue_stats().dropped, 3u);
}

TEST(QueuedPort, DropServicePenaltyDelaysNextPacket) {
  Simulator sim;
  Collector sink(sim);
  PortConfig cfg;
  cfg.rate = units::BitRate::bps(10e9);
  cfg.propagation = SimTime::zero();
  cfg.queue_capacity_bytes = units::Bytes{1500};  // room for exactly one queued packet
  cfg.drop_service_ns = 1000.0;
  QueuedPort port(sim, "p", cfg, &sink);
  port.handle(pkt_of(0, 1500));  // transmitting
  port.handle(pkt_of(1, 1500));  // queued
  port.handle(pkt_of(2, 1500));  // dropped -> 1000 ns penalty
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].first, SimTime::nanoseconds(1200));
  // Packet 1's service charges the accumulated drop penalty.
  EXPECT_EQ(sink.arrivals[1].first, SimTime::nanoseconds(1200 + 1200 + 1000));
}

TEST(QueuedPort, AllDropSubscribersSeeEveryDrop) {
  // The drop site fans out to every subscriber in registration order: the
  // receiver's energy meter and the fault/test layers observe the same
  // drops without displacing one another.
  Simulator sim;
  Collector sink(sim);
  PortConfig cfg;
  cfg.rate = units::BitRate::bps(1e9);
  cfg.queue_capacity_bytes = units::Bytes{3000};
  cfg.propagation = SimTime::zero();
  QueuedPort port(sim, "p", cfg, &sink);
  std::vector<std::pair<int, std::int64_t>> calls;
  port.add_on_drop([&](units::Bytes b) { calls.emplace_back(1, b.count()); });
  port.set_on_drop([&](units::Bytes b) { calls.emplace_back(2, b.count()); });
  for (int i = 0; i < 5; ++i) port.handle(pkt_of(i, 1500));
  sim.run();
  ASSERT_EQ(port.queue_stats().dropped, 2u);
  ASSERT_EQ(calls.size(), 4u);
  EXPECT_EQ(calls[0], (std::pair<int, std::int64_t>{1, 1500}));
  EXPECT_EQ(calls[1], (std::pair<int, std::int64_t>{2, 1500}));
  EXPECT_EQ(calls[2], (std::pair<int, std::int64_t>{1, 1500}));
  EXPECT_EQ(calls[3], (std::pair<int, std::int64_t>{2, 1500}));
}

TEST(QueuedPort, MidRunRerateAndRedelayApplyToNextTransmission) {
  Simulator sim;
  Collector sink(sim);
  PortConfig cfg;
  cfg.rate = units::BitRate::bps(10e9);
  cfg.propagation = SimTime::zero();
  QueuedPort port(sim, "p", cfg, &sink);
  port.handle(pkt_of(0, 1500));  // 1.2 us at 10G
  sim.run();
  port.set_rate(units::BitRate::bps(1e9));
  port.set_propagation(SimTime::microseconds(7));
  sim.schedule(SimTime::microseconds(10) - sim.now(),
               [&] { port.handle(pkt_of(1, 1500)); });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].first, SimTime::nanoseconds(1200));
  // 12 us serialization at the new rate plus the new propagation delay.
  EXPECT_EQ(sink.arrivals[1].first, SimTime::microseconds(10 + 12 + 7));
}

TEST(QueuedPort, TransmitCallbackSeesWireBytes) {
  Simulator sim;
  Collector sink(sim);
  PortConfig cfg;
  QueuedPort port(sim, "p", cfg, &sink);
  std::int64_t seen = 0;
  port.set_on_transmit([&](units::Bytes b) { seen += b.count(); });
  port.handle(pkt_of(0, 1500));
  port.handle(pkt_of(1, 9000));
  sim.run();
  EXPECT_EQ(seen, 10'500);
  EXPECT_EQ(port.bytes_sent().count(), 10'500);
  EXPECT_EQ(port.packets_sent(), 2u);
}

}  // namespace
}  // namespace greencc::net
