// Property tests for Theorem 1: for strictly concave per-flow power, the
// fair allocation maximizes total power (is the least energy-efficient).

#include "core/theorem.h"

#include <gtest/gtest.h>

#include <cmath>

#include "energy/power_model.h"
#include "sim/rng.h"

namespace greencc::core {
namespace {

TEST(Theorem1, TotalPowerSums) {
  const auto p = [](double x) { return 2.0 * x + 1.0; };
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Theorem1::total_power(xs, p), 2.0 * 6.0 + 3.0);
}

TEST(Theorem1, FairPower) {
  const auto p = [](double x) { return std::sqrt(x); };
  EXPECT_DOUBLE_EQ(Theorem1::fair_power(8.0, 2, p), 4.0);
  EXPECT_THROW(Theorem1::fair_power(8.0, 0, p), std::invalid_argument);
}

TEST(Theorem1, ConcavityChecker) {
  EXPECT_TRUE(Theorem1::is_strictly_concave(
      10.0, [](double x) { return std::sqrt(x); }));
  EXPECT_FALSE(
      Theorem1::is_strictly_concave(10.0, [](double x) { return x * x; }));
  EXPECT_FALSE(
      Theorem1::is_strictly_concave(10.0, [](double x) { return 3.0 * x; }));
}

// A family of strictly concave power functions; the theorem must hold on
// every one with zero violations across random allocations.
struct ConcaveCase {
  const char* name;
  double (*p)(double);
};

double sqrt_p(double x) { return 5.0 + std::sqrt(x); }
double log_p(double x) { return 2.0 + std::log1p(x); }
double saturating_p(double x) { return 21.49 + 13.0 * (1.0 - std::exp(-x / 2.0)); }
double power_law_p(double x) { return 1.0 + std::pow(x, 0.7); }
double mixed_p(double x) { return 4.0 + 2.0 * std::sqrt(x) + 0.5 * std::log1p(x); }

class TheoremHolds : public ::testing::TestWithParam<ConcaveCase> {};

TEST_P(TheoremHolds, FairAllocationIsWorstOnRandomAllocations) {
  sim::Rng rng(1234);
  for (int flows : {2, 3, 5, 10}) {
    EXPECT_EQ(
        Theorem1::count_violations(10.0, flows, GetParam().p, 500, rng),
        0)
        << GetParam().name << " flows=" << flows;
  }
}

TEST_P(TheoremHolds, IsStrictlyConcave) {
  EXPECT_TRUE(Theorem1::is_strictly_concave(10.0, GetParam().p))
      << GetParam().name;
}

TEST_P(TheoremHolds, FsiSavingsPositive) {
  for (int flows : {2, 3, 4, 8}) {
    EXPECT_GT(Theorem1::fsi_savings(10.0, flows, GetParam().p), 0.0)
        << GetParam().name << " flows=" << flows;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConcaveFamily, TheoremHolds,
    ::testing::Values(ConcaveCase{"sqrt", sqrt_p}, ConcaveCase{"log", log_p},
                      ConcaveCase{"saturating", saturating_p},
                      ConcaveCase{"power_law", power_law_p},
                      ConcaveCase{"mixed", mixed_p}),
    [](const auto& info) { return info.param.name; });

TEST(Theorem1, ConvexPowerReversesTheConclusion) {
  // With convex p, fairness is optimal: random allocations should *exceed*
  // the fair power, i.e. every sample is a "violation".
  sim::Rng rng(99);
  const int violations = Theorem1::count_violations(
      10.0, 4, [](double x) { return x * x; }, 200, rng);
  EXPECT_EQ(violations, 200);
}

TEST(Theorem1, LinearPowerIsAllocationInvariant) {
  // P(x) = sum(a*x_i + b) depends only on sum(x) = C: every allocation ties
  // the fair one (within tolerance), so all samples count as violations of
  // the *strict* inequality.
  sim::Rng rng(7);
  const int violations = Theorem1::count_violations(
      10.0, 4, [](double x) { return 3.0 * x + 1.0; }, 100, rng, 1e-6);
  EXPECT_EQ(violations, 100);
}

TEST(Theorem1, CalibratedModelSatisfiesHypothesis) {
  // The calibrated Fig 2 curve is strictly concave, so Theorem 1 applies to
  // the paper's own testbed model.
  energy::PackagePowerModel model;
  const energy::PowerCalibration calib;
  const auto p = [&](double x) {
    return model
        .single_flow_watts(units::BitRate::gbps(x), calib.fig2_util_per_gbps,
                           calib.fig2_pps_per_gbps)
        .watts();
  };
  EXPECT_TRUE(Theorem1::is_strictly_concave(10.0, p));
  sim::Rng rng(5);
  EXPECT_EQ(Theorem1::count_violations(10.0, 2, p, 1000, rng), 0);
  // And the two-flow FSI saving is the paper's 16%.
  EXPECT_NEAR(Theorem1::fsi_savings(10.0, 2, p), 0.163, 0.01);
}

TEST(Theorem1, FsiSavingsMatchClosedForm) {
  // For n = 2: savings = 1 - (p(C) + p(0)) / (2 p(C/2)).
  const auto p = saturating_p;
  const double expected = 1.0 - (p(10.0) + p(0.0)) / (2.0 * p(5.0));
  EXPECT_NEAR(Theorem1::fsi_savings(10.0, 2, p), expected, 1e-12);
}

}  // namespace
}  // namespace greencc::core
