// Vegas: delay-based congestion avoidance.

#include <gtest/gtest.h>

#include "cca/vegas.h"

namespace greencc::cca {
namespace {

using sim::SimTime;

CcaConfig config() {
  CcaConfig c;
  c.mss_bytes = units::Bytes{1448};
  c.initial_cwnd = 10;
  return c;
}

// Emit one RTT epoch worth of ACKs with a given measured RTT; Vegas adjusts
// once per epoch.
void run_epoch(Vegas& v, SimTime& now, SimTime rtt, int acks = 10) {
  for (int i = 0; i < acks; ++i) {
    AckEvent ev;
    ev.now = now;
    ev.acked_segments = 1;
    ev.rtt = rtt;
    ev.srtt = rtt;
    ev.min_rtt = rtt;
    ev.inflight = 10;
    ev.delivered = 1;
    v.on_ack(ev);
  }
  now += rtt;
}

TEST(Vegas, ExitsSlowStartThenHoldsWithLowDelay) {
  Vegas v(config());
  // Leave slow start via a loss.
  LossEvent loss;
  loss.now = SimTime::milliseconds(1);
  loss.inflight = 20;
  v.on_loss(loss);
  const double w0 = v.cwnd_segments();
  EXPECT_LT(w0, 20.0);
}

TEST(Vegas, GrowsWhenQueueingDelayLow) {
  Vegas v(config());
  LossEvent loss;
  loss.now = SimTime::zero();
  loss.inflight = 20;
  v.on_loss(loss);  // leave slow start (ssthresh = cwnd)
  const double w0 = v.cwnd_segments();

  SimTime now = SimTime::milliseconds(1);
  const SimTime base = SimTime::microseconds(100);
  // RTT equals baseRTT: diff = 0 < alpha, so +1 segment per epoch.
  for (int e = 0; e < 5; ++e) run_epoch(v, now, base);
  EXPECT_NEAR(v.cwnd_segments(), w0 + 4.0, 1.5);
}

TEST(Vegas, ShrinksWhenQueueingDelayHigh) {
  Vegas v(config());
  LossEvent loss;
  loss.now = SimTime::zero();
  loss.inflight = 20;
  v.on_loss(loss);
  SimTime now = SimTime::milliseconds(1);
  const SimTime base = SimTime::microseconds(100);
  run_epoch(v, now, base);  // establish baseRTT

  const double w0 = v.cwnd_segments();
  // RTT is now 2x base: diff = cwnd*(rtt-base)/rtt = cwnd/2 > beta.
  for (int e = 0; e < 5; ++e) {
    run_epoch(v, now, SimTime::microseconds(200));
  }
  EXPECT_LT(v.cwnd_segments(), w0);
}

TEST(Vegas, StableInsideAlphaBetaBand) {
  Vegas v(config());
  LossEvent loss;
  loss.now = SimTime::zero();
  loss.inflight = 20;
  v.on_loss(loss);
  SimTime now = SimTime::milliseconds(1);
  const SimTime base = SimTime::microseconds(100);
  run_epoch(v, now, base);
  const double w = v.cwnd_segments();
  // Choose an RTT so that diff = w*(rtt-base)/rtt lands between alpha (2)
  // and beta (4): rtt = base * w / (w - 3).
  const auto rtt = SimTime::nanoseconds(
      static_cast<std::int64_t>(base.ns() * w / (w - 3.0)));
  for (int e = 0; e < 10; ++e) run_epoch(v, now, rtt);
  EXPECT_NEAR(v.cwnd_segments(), w, 1.0);
}

TEST(Vegas, LossStillHalves) {
  Vegas v(config());
  // Slow start up.
  SimTime now = SimTime::milliseconds(1);
  for (int i = 0; i < 50; ++i) {
    AckEvent ev;
    ev.now = now;
    ev.acked_segments = 1;
    ev.rtt = SimTime::microseconds(100);
    ev.srtt = SimTime::microseconds(100);
    ev.inflight = 10;
    v.on_ack(ev);
  }
  const double before = v.cwnd_segments();
  LossEvent loss;
  loss.now = now;
  loss.inflight = static_cast<std::int64_t>(before);
  v.on_loss(loss);
  EXPECT_NEAR(v.cwnd_segments(), before / 2.0, 1.0);
}

}  // namespace
}  // namespace greencc::cca
