#include "app/runner.h"

#include <gtest/gtest.h>

namespace greencc::app {
namespace {

std::unique_ptr<Scenario> build(std::uint64_t seed) {
  ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = seed;
  auto scenario = std::make_unique<Scenario>(config);
  FlowSpec flow;
  flow.bytes = units::Bytes{62'500'000};  // 0.5 Gbit, keeps the test fast
  scenario->add_flow(flow);
  return scenario;
}

TEST(Runner, AggregatesRequestedRepeats) {
  const auto agg = run_repeated(build, 5, /*base_seed=*/100);
  EXPECT_EQ(agg.joules.count(), 5u);
  EXPECT_EQ(agg.runs.size(), 5u);
  for (const auto& run : agg.runs) {
    EXPECT_TRUE(run.all_completed);
  }
}

TEST(Runner, ReportsSpreadAcrossSeeds) {
  const auto agg = run_repeated(build, 5, 100);
  EXPECT_GT(agg.joules.mean(), 0.0);
  // Seeds differ, so the work jitter produces a non-zero but small spread.
  EXPECT_GT(agg.joules.stddev(), 0.0);
  EXPECT_LT(agg.joules.stddev() / agg.joules.mean(), 0.1);
}

TEST(Runner, ReproducibleForSameBaseSeed) {
  const auto a = run_repeated(build, 3, 42);
  const auto b = run_repeated(build, 3, 42);
  EXPECT_DOUBLE_EQ(a.joules.mean(), b.joules.mean());
  EXPECT_DOUBLE_EQ(a.duration_sec.mean(), b.duration_sec.mean());
}

TEST(Runner, DistinctBaseSeedsDiffer) {
  const auto a = run_repeated(build, 3, 1);
  const auto b = run_repeated(build, 3, 1000);
  EXPECT_NE(a.joules.mean(), b.joules.mean());
}

TEST(Runner, LegacyOverloadMatchesOptionsPath) {
  const auto a = run_repeated(build, 3, 42);
  RepeatOptions options;
  options.repeats = 3;
  options.base_seed = 42;
  const auto b = run_repeated(build, options);
  EXPECT_DOUBLE_EQ(a.joules.mean(), b.joules.mean());
  EXPECT_DOUBLE_EQ(a.duration_sec.mean(), b.duration_sec.mean());
}

TEST(Runner, TracksRetransmissions) {
  const auto agg = run_repeated(build, 3, 7);
  EXPECT_GE(agg.retransmissions.mean(), 0.0);
}

}  // namespace
}  // namespace greencc::app
