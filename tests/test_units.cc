// Tests for the strongly-typed units layer (src/units/units.h): exactness
// contracts (BitRate::bps passthrough, int64 byte counters past the double
// 2^53 cliff), the cross-dimension algebra against the raw arithmetic it
// replaces, and the literal suffixes. The *negative* half of the contract —
// expressions that must not compile — lives in tests/compile_fail/.

#include <gtest/gtest.h>

#include <cstdint>

#include "sim/time.h"
#include "units/units.h"

namespace greencc::units {
namespace {

using namespace greencc::units::literals;

// --- Bytes: 64-bit counter precision (the fleet-scale regression) ---

TEST(Bytes, CounterStaysExactPastDoublePrecisionCliff) {
  // 2^53 is the largest integer a double can count by ones. A fleet sweep's
  // aggregate tx counter crosses it (~9 PB); the old `double tx_bytes`
  // IntRecord field silently stopped incrementing there.
  constexpr std::int64_t cliff = std::int64_t{1} << 53;
  Bytes counter{cliff};
  counter += Bytes{1};
  EXPECT_EQ(counter.count(), cliff + 1);  // int64: exact
  // The double it replaced loses the increment at the same point.
  const double as_double = static_cast<double>(cliff) + 1.0;
  EXPECT_EQ(static_cast<std::int64_t>(as_double), cliff);

  // And MTU-sized increments keep full precision well past the cliff.
  counter += Bytes{1500};
  EXPECT_EQ(counter.count(), cliff + 1501);
}

TEST(Bytes, Arithmetic) {
  EXPECT_EQ((Bytes{1500} + Bytes{40}).count(), 1540);
  EXPECT_EQ((Bytes{1500} - Bytes{40}).count(), 1460);
  EXPECT_EQ((Bytes{1500} * 3).count(), 4500);
  EXPECT_EQ((3 * Bytes{1500}).count(), 4500);
  EXPECT_EQ((Bytes{1500} / 4).count(), 375);  // truncates like raw int64
  EXPECT_LT(Bytes{100}, Bytes{200});
  EXPECT_EQ(Bytes::zero().count(), 0);
}

TEST(BytesBits, ExplicitFactorOfEight) {
  EXPECT_EQ(Bytes{1500}.bits().count(), 12000);
  EXPECT_EQ(Bits{12000}.whole_bytes().count(), 1500);
  EXPECT_EQ(Bits{7}.whole_bytes().count(), 0);  // truncating, documented
  static_assert(kBitsPerByte == 8);
}

// --- BitRate: representation-passthrough exactness ---

TEST(BitRate, BpsRoundTripsExactly) {
  // The conversion policy rests on this: wrapping an existing bps value and
  // reading it back is a bit-for-bit no-op, for every double.
  for (double v : {0.0, 1.0, 9.6e9, 12345.6789, 2.5e10, 1e-3}) {
    EXPECT_EQ(BitRate::bps(v).bps(), v);
  }
}

TEST(BitRate, GbpsAccessorMatchesRawDivision) {
  const double raw = 9'600'000'000.0;
  EXPECT_EQ(BitRate::bps(raw).gbps(), raw / 1e9);
  EXPECT_EQ(BitRate::gbps(10.0).bps(), 10.0 * 1e9);
}

TEST(BitRate, ZeroIsTheUnlimitedSentinel) {
  EXPECT_TRUE(BitRate::zero().is_zero());
  EXPECT_TRUE(BitRate{}.is_zero());
  EXPECT_FALSE(BitRate::bps(1.0).is_zero());
}

TEST(BitRate, DimensionlessScalingAndRatio) {
  EXPECT_EQ((BitRate::gbps(10.0) * 0.5).bps(), 5e9);
  EXPECT_EQ((BitRate::gbps(10.0) / 2.0).bps(), 5e9);
  EXPECT_EQ(BitRate::gbps(5.0) / BitRate::gbps(10.0), 0.5);
}

// --- cross-dimension algebra: must equal the raw arithmetic it replaced ---

TEST(Algebra, SerializationDelayMatchesSimHelper) {
  const Bytes b{1500};
  const BitRate r = BitRate::gbps(10.0);
  EXPECT_EQ((b / r).ns(), sim::serialization_delay(1500, 10e9).ns());
}

TEST(Algebra, AverageRateMatchesRawExpression) {
  const Bytes b{50'000'000};
  const sim::SimTime t = sim::SimTime::seconds(0.04);
  const double raw = static_cast<double>(b.count()) * 8.0 * 1e9 /
                     static_cast<double>(t.ns());
  EXPECT_EQ((b / t).bps(), raw);
  EXPECT_TRUE((Bytes{100} / sim::SimTime::zero()).is_zero());
}

TEST(Algebra, PowerIntegratesOverTime) {
  const Power p = Power::watts(120.0);
  const sim::SimTime dt = sim::SimTime::seconds(0.25);
  EXPECT_EQ((p * dt).joules(), 120.0 * dt.sec());
  EXPECT_EQ((dt * p).joules(), (p * dt).joules());
  // And average power recovers the raw division.
  EXPECT_EQ((Energy::joules(30.0) / dt).watts(), 30.0 / dt.sec());
}

TEST(Algebra, EnergyIntensity) {
  const Energy e = Energy::joules(25.0);
  const Bytes b{1'000'000'000};
  EXPECT_EQ((e / b).joules_per_byte(), 25.0 / 1e9);
  EXPECT_EQ((e / b).joules_per_gb(), 25.0);
  // W / (Gb/s): 80 W at 10 Gb/s = 64 nJ/byte.
  EXPECT_EQ((Power::watts(80.0) / BitRate::gbps(10.0)).joules_per_byte(),
            80.0 / (10e9 / 8.0));
}

// --- energy/power bookkeeping ---

TEST(EnergyPower, AccumulationMatchesRawDoubles) {
  Energy total;
  double raw = 0.0;
  for (int i = 1; i <= 1000; ++i) {
    const double j = 0.001 * i;
    total += Energy::joules(j);
    raw += j;
  }
  EXPECT_EQ(total.joules(), raw);  // identical op order -> identical bits
  EXPECT_EQ(Energy::millijoules(1500.0).joules(), 1.5);
  EXPECT_EQ(Power::milliwatts(500.0).watts(), 0.5);
}

// --- literals ---

TEST(Literals, AllSuffixes) {
  EXPECT_EQ((1500_bytes).count(), 1500);
  EXPECT_EQ((64_KiB).count(), 65536);
  EXPECT_EQ((2_MiB).count(), 2 * 1024 * 1024);
  EXPECT_EQ((96_bits).count(), 96);
  EXPECT_EQ((10_gbps).bps(), 10e9);
  EXPECT_EQ((9.6_gbps).bps(), 9.6e9);
  EXPECT_EQ((100_mbps).bps(), 1e8);
  EXPECT_EQ((250000_pps).pps(), 250000.0);
  EXPECT_EQ((2_J).joules(), 2.0);
  EXPECT_EQ((500_mJ).joules(), 0.5);
  EXPECT_EQ((50_W).watts(), 50.0);
  EXPECT_EQ((3500_mW).watts(), 3.5);
}

// --- the compile-time dimension probes themselves ---

TEST(DimensionProbes, AlgebraShapeIsPinned) {
  static_assert(can_add<Bytes, Bytes>);
  static_assert(!can_add<Bytes, Bits>);
  static_assert(!can_add<Energy, Power>);
  static_assert(!can_add<BitRate, PacketRate>);
  static_assert(can_multiply<Power, sim::SimTime>);
  static_assert(!can_multiply<Energy, sim::SimTime>);
  static_assert(can_divide<Bytes, BitRate>);
  static_assert(!can_multiply<Bytes, BitRate>);
  static_assert(can_divide<Energy, Bytes>);
  SUCCEED();
}

}  // namespace
}  // namespace greencc::units
