// Tests for the AQM disciplines (RED, CoDel) layered onto the queue, both
// at unit level and end-to-end through the scenario.

#include <gtest/gtest.h>

#include "app/scenario.h"
#include "net/port.h"
#include "net/queue.h"
#include "sim/simulator.h"

namespace greencc::net {
namespace {

using sim::SimTime;

Packet pkt_of(std::int32_t size, bool ect = false) {
  Packet p;
  p.size_bytes = units::Bytes{size};
  p.ecn_capable = ect;
  return p;
}

AqmConfig red_config() {
  AqmConfig aqm;
  aqm.mode = AqmMode::kRed;
  aqm.red_min_bytes = units::Bytes{10'000};
  aqm.red_max_bytes = units::Bytes{30'000};
  aqm.red_max_probability = 0.2;
  aqm.red_weight = 0.2;  // fast-moving average for unit tests
  return aqm;
}

TEST(Red, NoActionBelowMinThreshold) {
  DropTailQueue q(units::Bytes{1 << 20}, red_config());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.enqueue(pkt_of(1'500, true)));
  }
  EXPECT_EQ(q.stats().ecn_marked, 0u);
  EXPECT_EQ(q.stats().dropped, 0u);
}

TEST(Red, MarksEctTrafficUnderPressure) {
  DropTailQueue q(units::Bytes{1 << 20}, red_config());
  // Keep the queue standing between the thresholds: enqueue 20 KB and
  // never drain, then keep offering.
  int admitted = 0;
  for (int i = 0; i < 200; ++i) {
    if (q.enqueue(pkt_of(1'500, true))) ++admitted;
    if (q.bytes() > units::Bytes{20'000}) q.dequeue();
  }
  EXPECT_GT(q.stats().ecn_marked, 0u);
  // ECT traffic between the thresholds is marked, not dropped.
  EXPECT_LE(q.stats().dropped, 5u);
}

TEST(Red, DropsNonEctTrafficUnderPressure) {
  DropTailQueue q(units::Bytes{1 << 20}, red_config());
  for (int i = 0; i < 200; ++i) {
    q.enqueue(pkt_of(1'500, false));
    if (q.bytes() > units::Bytes{20'000}) q.dequeue();
  }
  EXPECT_GT(q.stats().dropped, 0u);
  EXPECT_EQ(q.stats().ecn_marked, 0u);
}

TEST(Red, AverageTracksOccupancy) {
  DropTailQueue q(units::Bytes{1 << 20}, red_config());
  for (int i = 0; i < 50; ++i) q.enqueue(pkt_of(1'500));
  EXPECT_GT(q.red_average_bytes(), 5'000.0);
}

AqmConfig codel_config() {
  AqmConfig aqm;
  aqm.mode = AqmMode::kCodel;
  aqm.codel_target = SimTime::microseconds(50);
  aqm.codel_interval = SimTime::milliseconds(1);
  return aqm;
}

TEST(Codel, NoDropsWhenSojournBelowTarget) {
  DropTailQueue q(units::Bytes{1 << 20}, codel_config());
  for (int i = 0; i < 10; ++i) {
    q.enqueue(pkt_of(1'500), SimTime::microseconds(i));
  }
  // Dequeue promptly: sojourn ~ tens of microseconds but below target.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(q.dequeue(SimTime::microseconds(10 + i)).has_value());
  }
  EXPECT_EQ(q.stats().dropped, 0u);
}

TEST(Codel, DropsAfterSustainedStandingQueue) {
  DropTailQueue q(units::Bytes{1 << 20}, codel_config());
  // 100 packets enqueued at t=0; drain slowly so sojourn >> target for
  // much longer than one interval.
  for (int i = 0; i < 100; ++i) q.enqueue(pkt_of(9'000), SimTime::zero());
  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    const auto t = SimTime::milliseconds(1 + i);
    if (q.dequeue(t).has_value()) ++delivered;
  }
  EXPECT_GT(q.stats().dropped, 0u);
  EXPECT_LT(delivered, 100);
}

TEST(Codel, RecoversWhenQueueDrains) {
  DropTailQueue q(units::Bytes{1 << 20}, codel_config());
  for (int i = 0; i < 50; ++i) q.enqueue(pkt_of(9'000), SimTime::zero());
  for (int i = 0; i < 60; ++i) q.dequeue(SimTime::milliseconds(1 + i));
  const auto dropped_before = q.stats().dropped;
  // Fresh traffic with low sojourn: no more drops.
  for (int i = 0; i < 10; ++i) {
    q.enqueue(pkt_of(1'500), SimTime::milliseconds(100));
    q.dequeue(SimTime::milliseconds(100) + SimTime::microseconds(5));
  }
  EXPECT_EQ(q.stats().dropped, dropped_before);
}

TEST(Codel, EngagesAt1500ByteMtu) {
  // Regression: the "nearly empty" floor used to hardcode two 9018-byte
  // jumbo frames, so at MTU 1500 a standing queue of ~12 KB (eight full
  // frames — far above two MTUs) never tripped CoDel at all.
  AqmConfig aqm = codel_config();
  aqm.mtu_bytes = units::Bytes{1'500};
  DropTailQueue q(units::Bytes{1 << 20}, aqm);
  for (int i = 0; i < 8; ++i) q.enqueue(pkt_of(1'500), SimTime::zero());
  // Drain slowly: sojourn is milliseconds against a 50 us target.
  int delivered = 0;
  for (int i = 0; i < 8; ++i) {
    if (q.dequeue(SimTime::milliseconds(5 + 5 * i)).has_value()) ++delivered;
  }
  EXPECT_GT(q.stats().dropped, 0u);
  EXPECT_LT(delivered, 8);
}

TEST(Red, DropDoesNotReapplyIdleDecay) {
  // Regression: a RED drop used to leave the idle bookkeeping stale (only a
  // successful enqueue cleared it), so the arrival after the drop decayed
  // red_avg_ for the same idle period a second time.
  AqmConfig aqm;
  aqm.mode = AqmMode::kRed;
  aqm.red_min_bytes = units::Bytes{5'000};
  aqm.red_max_bytes = units::Bytes{20'000};
  aqm.red_weight = 0.25;
  aqm.red_idle_packet_time = SimTime::milliseconds(1);
  DropTailQueue q(units::Bytes{1 << 20}, aqm);

  // Pump the average well above red_max with ECT packets (marked, not
  // dropped, while the average is still below red_max), then drain fully.
  for (int i = 0; i < 1000 && q.red_average_bytes() < 2.0 * 20'000; ++i) {
    q.enqueue(pkt_of(9'000, true), SimTime::zero());
  }
  ASSERT_GE(q.red_average_bytes(), 2.0 * 20'000);
  while (q.dequeue(SimTime::milliseconds(1)).has_value()) {
  }

  // First arrival after 1 ms idle: one idle-packet decay step, then the
  // EWMA update; the average is still >= red_max, so the non-ECT packet is
  // dropped deterministically (p = 1).
  ASSERT_FALSE(q.enqueue(pkt_of(1'500, false), SimTime::milliseconds(2)));
  const double after_drop = q.red_average_bytes();
  ASSERT_GE(after_drop, 20'000.0);

  // Second arrival at the same instant: zero further idle time has passed,
  // so the average must take exactly one EWMA step toward the (empty)
  // queue — no re-applied idle decay for the interval the dropped arrival
  // already accounted.
  q.enqueue(pkt_of(1'500, false), SimTime::milliseconds(2));
  EXPECT_DOUBLE_EQ(q.red_average_bytes(), (1.0 - 0.25) * after_drop);
}

// --- end-to-end: RED marking drives DCTCP through the scenario ---

TEST(AqmEndToEnd, RedMarkedBottleneckDrivesDctcp) {
  app::ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = 3;
  // Replace the step-ECN bottleneck with RED.
  config.bottleneck_aqm.mode = AqmMode::kRed;
  config.bottleneck_aqm.red_min_bytes = units::Bytes{60'000};
  config.bottleneck_aqm.red_max_bytes = units::Bytes{200'000};
  app::Scenario scenario(config);
  app::FlowSpec flow;
  flow.cca = "dctcp";
  flow.bytes = units::Bytes{125'000'000};
  scenario.add_flow(flow);
  const auto r = scenario.run();
  ASSERT_TRUE(r.all_completed);
  EXPECT_GT(r.flows[0].avg_rate.gbps(), 8.0);
  EXPECT_GT(r.bottleneck.ecn_marked, 0u);
}

TEST(AqmEndToEnd, CodelBoundsCubicQueueDelay) {
  auto run_with = [](AqmMode mode) {
    app::ScenarioConfig config;
    config.tcp.mtu_bytes = units::Bytes{9000};
    config.seed = 3;
    config.trace_interval = SimTime::milliseconds(5);
    if (mode == AqmMode::kCodel) {
      config.bottleneck_aqm.mode = AqmMode::kCodel;
    }
    app::Scenario scenario(config);
    app::FlowSpec flow;
    flow.cca = "cubic";
    flow.bytes = units::Bytes{250'000'000};
    scenario.add_flow(flow);
    return scenario.run();
  };
  const auto fifo = run_with(AqmMode::kNone);
  const auto codel = run_with(AqmMode::kCodel);
  ASSERT_TRUE(fifo.all_completed);
  ASSERT_TRUE(codel.all_completed);
  auto max_queue = [](const app::ScenarioResult& r) {
    std::int64_t peak = 0;
    for (const auto& [t, bytes] : r.queue_series) {
      peak = std::max(peak, bytes);
    }
    return peak;
  };
  // CoDel keeps the standing queue far below the 1 MiB tail-drop point.
  EXPECT_LT(max_queue(codel), max_queue(fifo) / 2);
}

}  // namespace
}  // namespace greencc::net
