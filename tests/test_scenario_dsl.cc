// Scenario DSL unit suite: the TOML-subset parser, line-accurate golden
// errors (the fixtures in tests/data/dsl/), sweep expansion order, the
// parse -> serialize -> parse round-trip property, and the config_canon
// equality/hash layer the journal fingerprints bind to.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "app/config_canon.h"
#include "scenario_dsl/compile.h"
#include "scenario_dsl/doc.h"
#include "scenario_dsl/serialize.h"
#include "scenario_dsl/sweep.h"
#include "scenario_dsl/toml.h"

#ifndef GREENCC_DSL_DATA_DIR
#define GREENCC_DSL_DATA_DIR "tests/data/dsl"
#endif
#ifndef GREENCC_SCENARIO_DIR
#define GREENCC_SCENARIO_DIR "scenarios"
#endif

namespace {

using namespace greencc;

std::string fixture(const std::string& name) {
  return std::string(GREENCC_DSL_DATA_DIR) + "/" + name;
}

// --- TOML-subset parser -----------------------------------------------------

TEST(Toml, ScalarKindsAndLines) {
  const dsl::TomlValue root = dsl::parse_toml(
      "a = \"text\"\n"
      "b = 42\n"
      "c = 2.5\n"
      "d = true\n"
      "e = 1e-3\n");
  EXPECT_TRUE(root.table.at("a").is_string());
  EXPECT_EQ(root.table.at("a").str, "text");
  EXPECT_EQ(root.table.at("a").line, 1);
  EXPECT_TRUE(root.table.at("b").is_int());
  EXPECT_EQ(root.table.at("b").integer, 42);
  EXPECT_DOUBLE_EQ(root.table.at("b").number, 42.0);  // int mirrors number
  EXPECT_TRUE(root.table.at("c").is_float());
  EXPECT_DOUBLE_EQ(root.table.at("c").number, 2.5);
  EXPECT_TRUE(root.table.at("d").is_bool());
  EXPECT_TRUE(root.table.at("d").boolean);
  EXPECT_TRUE(root.table.at("e").is_float());
  EXPECT_DOUBLE_EQ(root.table.at("e").number, 1e-3);
  EXPECT_EQ(root.table.at("e").line, 5);
}

TEST(Toml, TablesAndArraysOfTables) {
  const dsl::TomlValue root = dsl::parse_toml(
      "[top]\n"
      "x = 1\n"
      "[top.sub]\n"
      "y = 2\n"
      "[[entry]]\n"
      "z = 3\n"
      "[[entry]]\n"
      "z = 4\n");
  const dsl::TomlValue& top = root.table.at("top");
  ASSERT_TRUE(top.is_table());
  EXPECT_EQ(top.table.at("x").integer, 1);
  EXPECT_EQ(top.table.at("sub").table.at("y").integer, 2);
  const dsl::TomlValue& entries = root.table.at("entry");
  ASSERT_TRUE(entries.is_array());
  ASSERT_EQ(entries.array.size(), 2u);
  EXPECT_EQ(entries.array[0].table.at("z").integer, 3);
  EXPECT_EQ(entries.array[1].table.at("z").integer, 4);
}

TEST(Toml, MultilineAndNestedArrays) {
  const dsl::TomlValue root = dsl::parse_toml(
      "vals = [1,\n"
      "  2, 3]\n"
      "zip = [[\"a\", 1], [\"b\", 2]]\n");
  ASSERT_EQ(root.table.at("vals").array.size(), 3u);
  const dsl::TomlValue& zip = root.table.at("zip");
  ASSERT_EQ(zip.array.size(), 2u);
  EXPECT_EQ(zip.array[0].array[0].str, "a");
  EXPECT_EQ(zip.array[1].array[1].integer, 2);
}

TEST(Toml, StringEscapesAndComments) {
  const dsl::TomlValue root = dsl::parse_toml(
      "# leading comment\n"
      "s = \"quo\\\"te\\\\slash\"  # trailing comment\n");
  EXPECT_EQ(root.table.at("s").str, "quo\"te\\slash");
}

TEST(Toml, SyntaxErrorsNameTheLine) {
  try {
    dsl::parse_toml("ok = 1\nbroken = \"unterminated\n");
    FAIL() << "expected ParseError";
  } catch (const dsl::ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW(dsl::parse_toml("dup = 1\ndup = 2\n"), dsl::ParseError);
  EXPECT_THROW(dsl::parse_toml("x = {a = 1}\n"), dsl::ParseError);
  EXPECT_THROW(dsl::parse_toml("x = 1 garbage\n"), dsl::ParseError);
}

// --- Golden line-accurate schema errors ------------------------------------

std::string dsl_error(const std::string& path) {
  try {
    dsl::load_scenario_file(path);
  } catch (const dsl::DslError& e) {
    return e.what();
  }
  return "<no error>";
}

TEST(Golden, UnknownKey) {
  const std::string path = fixture("unknown_key.toml");
  EXPECT_EQ(dsl_error(path),
            path + ":5: unknown key 'frobnicate' in [scenario]");
}

TEST(Golden, WrongUnitSuffix) {
  const std::string path = fixture("bad_unit.toml");
  EXPECT_EQ(dsl_error(path),
            path +
                ":7: topology.link_delay: expected a time like \"5us\" "
                "(suffix ns/us/ms/s), got '5parsecs'");
}

TEST(Golden, OverlappingSweepAxes) {
  const std::string path = fixture("overlap_axes.toml");
  EXPECT_EQ(dsl_error(path),
            path +
                ":11: sweep axis 'b' binds path 'tcp.mtu', already bound "
                "by axis 'a'");
}

TEST(Golden, UnknownUnitInRate) {
  try {
    dsl::parse_scenario_text(
        "[scenario]\nname = \"t\"\n[topology]\nbottleneck = \"10mph\"\n",
        "inline.toml");
    FAIL() << "expected DslError";
  } catch (const dsl::DslError& e) {
    EXPECT_EQ(e.line(), 4);
    EXPECT_NE(std::string(e.what()).find("suffix bps/kbps/Mbps/Gbps"),
              std::string::npos);
  }
}

// --- Sweep expansion --------------------------------------------------------

dsl::ScenarioDoc two_axis_doc() {
  return dsl::parse_scenario_text(
      "[scenario]\n"
      "name = \"t\"\n"
      "[[sweep.axis]]\n"
      "name = \"mtu\"\n"
      "path = \"tcp.mtu\"\n"
      "values = [1500, 3000, 9000]\n"
      "[[sweep.axis]]\n"
      "name = \"cca\"\n"
      "path = \"flow.0.cca\"\n"
      "values = [\"cubic\", \"bbr\"]\n",
      "inline.toml");
}

TEST(Sweep, FirstAxisVariesSlowest) {
  const dsl::ScenarioDoc doc = two_axis_doc();
  const dsl::SweepGrid grid = dsl::expand_sweep(doc);
  ASSERT_EQ(grid.cells.size(), 6u);
  // Row-major: mtu (first axis) outer, cca inner — the legacy grid nesting.
  for (std::size_t i = 0; i < grid.cells.size(); ++i) {
    EXPECT_EQ(grid.cells[i].index, i);
    ASSERT_EQ(grid.cells[i].choice.size(), 2u);
    EXPECT_EQ(grid.cells[i].choice[0], i / 2);
    EXPECT_EQ(grid.cells[i].choice[1], i % 2);
  }
}

TEST(Sweep, CellBindingsApply) {
  const dsl::ScenarioDoc doc = two_axis_doc();
  const dsl::SweepGrid grid = dsl::expand_sweep(doc);
  const dsl::ScenarioDoc cell = dsl::doc_for_cell(doc, grid.cells[3]);
  // Cell 3: mtu index 1 (3000), cca index 1 (bbr).
  EXPECT_EQ(cell.tcp.mtu_bytes.count(), 3000);
  ASSERT_EQ(cell.flows.size(), 1u);
  EXPECT_EQ(cell.flows[0].cca, "bbr");
}

TEST(Sweep, ZipAxisBindsAllPathsPerStep) {
  const dsl::ScenarioDoc doc = dsl::parse_scenario_text(
      "[scenario]\n"
      "name = \"t\"\n"
      "[[sweep.axis]]\n"
      "name = \"pair\"\n"
      "paths = [\"tcp.mtu\", \"flow.0.cca\"]\n"
      "values = [[1500, \"cubic\"], [9000, \"bbr\"]]\n",
      "inline.toml");
  const dsl::SweepGrid grid = dsl::expand_sweep(doc);
  ASSERT_EQ(grid.cells.size(), 2u);
  const dsl::ScenarioDoc cell = dsl::doc_for_cell(doc, grid.cells[1]);
  EXPECT_EQ(cell.tcp.mtu_bytes.count(), 9000);
  EXPECT_EQ(cell.flows[0].cca, "bbr");
}

TEST(Sweep, OverrideTypesByShape) {
  dsl::ScenarioDoc doc = dsl::parse_scenario_text(
      "[scenario]\nname = \"t\"\n[[flow]]\ncca = \"cubic\"\n",
      "inline.toml");
  dsl::apply_override(doc, "flow.0.bytes=5000000");
  dsl::apply_override(doc, "flow.0.rate_limit=9Gbps");
  dsl::apply_override(doc, "faults.loss=0.001");
  EXPECT_EQ(doc.flows[0].bytes.count(), 5'000'000);
  EXPECT_DOUBLE_EQ(doc.flows[0].rate_limit.bps(), 9e9);
  EXPECT_DOUBLE_EQ(doc.faults.impair.loss_rate, 0.001);
  EXPECT_THROW(dsl::apply_override(doc, "no.such.path=1"), dsl::ParseError);
}

// --- Round-trip property ----------------------------------------------------

// serialize(parse(text)) must re-parse, and the re-parsed document must
// compile every cell to a bit-identical app config (canonical strings
// equal), and re-serialize to the identical canonical text.
void expect_round_trip(const dsl::ScenarioDoc& doc) {
  const std::string canon_text = dsl::serialize_scenario(doc);
  const dsl::ScenarioDoc reparsed =
      dsl::parse_scenario_text(canon_text, doc.source_file + "<roundtrip>");
  EXPECT_EQ(dsl::serialize_scenario(reparsed), canon_text)
      << doc.source_file << ": canonical text not a fixed point";

  const dsl::SweepGrid grid = dsl::expand_sweep(doc);
  const dsl::SweepGrid grid2 = dsl::expand_sweep(reparsed);
  ASSERT_EQ(grid.cells.size(), grid2.cells.size());
  for (const dsl::SweepCell& cell : grid.cells) {
    const dsl::CompiledCell a =
        dsl::compile_scenario(dsl::doc_for_cell(doc, cell));
    const dsl::CompiledCell b =
        dsl::compile_scenario(dsl::doc_for_cell(reparsed, cell));
    ASSERT_EQ(a.is_workload, b.is_workload);
    if (a.is_workload) continue;  // workload configs compared via members
    EXPECT_EQ(app::canonical_string(a.scenario.config(), a.scenario.flows()),
              app::canonical_string(b.scenario.config(), b.scenario.flows()))
        << doc.source_file << ": cell " << cell.index;
  }
}

TEST(RoundTrip, PortedScenarios) {
  expect_round_trip(dsl::load_scenario_file(std::string(GREENCC_SCENARIO_DIR) +
                                            "/cca_grid.toml"));
  expect_round_trip(dsl::load_scenario_file(
      std::string(GREENCC_SCENARIO_DIR) + "/ext_energy_under_loss.toml"));
}

TEST(RoundTrip, PackSamples) {
  const char* files[] = {
      "/pack/incast/incast_cubic.toml",
      "/pack/parking_lot/parking_lot_bbr.toml",
      "/pack/fat_tree/fat_tree_cubic.toml",
      "/pack/mix/mix_bbr_cubic.toml",
      "/pack/fault_events/fault_events_westwood.toml",
      "/pack/aqm/aqm_codel_reno.toml",
      "/pack/calibration/calib_i80_w10.toml",
  };
  for (const char* f : files) {
    expect_round_trip(
        dsl::load_scenario_file(std::string(GREENCC_SCENARIO_DIR) + f));
  }
}

// --- config_canon: canonical form, equality, hash ---------------------------

dsl::CompiledCell compile_text(const std::string& text) {
  return dsl::compile_scenario(dsl::parse_scenario_text(text, "inline.toml"));
}

TEST(ConfigCanon, EqualityIsCanonicalStringEquality) {
  const std::string text =
      "[scenario]\nname = \"t\"\n[[flow]]\ncca = \"cubic\"\n";
  const dsl::CompiledCell a = compile_text(text);
  const dsl::CompiledCell b = compile_text(text);
  EXPECT_TRUE(a.scenario.config() == b.scenario.config());
  EXPECT_EQ(app::config_hash(a.scenario.config(), a.scenario.flows()),
            app::config_hash(b.scenario.config(), b.scenario.flows()));
}

TEST(ConfigCanon, AnyObservableFieldChangesHashAndEquality) {
  const dsl::CompiledCell base = compile_text(
      "[scenario]\nname = \"t\"\n[[flow]]\ncca = \"cubic\"\n");
  struct Variant {
    const char* label;
    const char* extra;
  };
  const Variant variants[] = {
      {"mtu", "[tcp]\nmtu = 4000\n"},
      {"queue", "[topology]\nqueue = \"2MiB\"\n"},
      {"aqm", "[aqm]\nmode = \"step\"\nstep_threshold = \"100kB\"\n"},
      {"loss", "[faults]\ninstall = true\nloss = 0.001\n"},
      {"energy", "[energy]\nidle = 99.0\n"},
      {"flow-cca", "[[flow]]\ncca = \"bbr\"\n"},
  };
  for (const Variant& v : variants) {
    std::string text = "[scenario]\nname = \"t\"\n";
    // Flow sections must come after plain tables for the flow-cca variant.
    if (std::string(v.label) == "flow-cca") {
      text += "[[flow]]\ncca = \"cubic\"\n" + std::string(v.extra);
    } else {
      text += std::string(v.extra) + "[[flow]]\ncca = \"cubic\"\n";
    }
    const dsl::CompiledCell changed = compile_text(text);
    EXPECT_NE(
        app::canonical_string(base.scenario.config(), base.scenario.flows()),
        app::canonical_string(changed.scenario.config(),
                              changed.scenario.flows()))
        << v.label;
    EXPECT_NE(
        app::config_hash(base.scenario.config(), base.scenario.flows()),
        app::config_hash(changed.scenario.config(), changed.scenario.flows()))
        << v.label;
  }
}

TEST(ConfigCanon, FlowSpecEquality) {
  app::FlowSpec a;
  app::FlowSpec b;
  EXPECT_TRUE(a == b);
  b.cca = "bbr";
  EXPECT_TRUE(a != b);
  b = a;
  b.bytes = units::Bytes{123};
  EXPECT_TRUE(a != b);
}

// Tripwire: extending ScenarioConfig or FlowSpec without teaching
// config_canon about the new field must fail here, not silently alias two
// different configs to one hash. Update the expected sizes together with
// canonical_string().
TEST(ConfigCanon, StructGrowthTripwire) {
  // If either assertion fires: a field was added (or removed). Extend
  // app::canonical_string() to cover it, then update the pinned size.
  EXPECT_EQ(sizeof(app::FlowSpec), 80u)
      << "FlowSpec changed: extend config_canon and re-pin";
  EXPECT_EQ(sizeof(app::ScenarioConfig), 552u)
      << "ScenarioConfig changed: extend config_canon and re-pin";
}

}  // namespace
