#include "tcp/seq_window.h"

#include <gtest/gtest.h>

#include <memory>

namespace greencc::tcp {
namespace {

TEST(SeqWindow, StartsEmpty) {
  SeqWindow<int> w;
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.find(0), nullptr);
  EXPECT_FALSE(w.contains(0));
}

TEST(SeqWindow, AppendAndLookup) {
  SeqWindow<int> w;
  w.append(100) = 1;
  w.append(101) = 2;
  w.append(102) = 3;
  EXPECT_EQ(w.begin_seq(), 100);
  EXPECT_EQ(w.end_seq(), 103);
  EXPECT_EQ(w.at(101), 2);
  EXPECT_EQ(*w.find(102), 3);
  EXPECT_EQ(w.find(99), nullptr);
  EXPECT_EQ(w.find(103), nullptr);
}

TEST(SeqWindow, PopFrontSlides) {
  SeqWindow<int> w;
  for (int i = 0; i < 5; ++i) w.append(i) = i * 10;
  w.pop_front();
  w.pop_front();
  EXPECT_EQ(w.begin_seq(), 2);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.front(), 20);
  EXPECT_EQ(w.find(0), nullptr);  // cum-acked segments are gone
  EXPECT_EQ(w.at(4), 40);
}

TEST(SeqWindow, AppendReturnsFreshEntry) {
  SeqWindow<int> w;
  w.append(0) = 7;
  w.pop_front();
  // The slot is recycled once the ring wraps; the new entry must not see
  // the stale value.
  for (int i = 1; i <= 32; ++i) EXPECT_EQ(w.append(i), 0) << "seq " << i;
}

TEST(SeqWindow, ReanchorsAfterDraining) {
  SeqWindow<int> w;
  w.append(0) = 1;
  w.pop_front();
  EXPECT_TRUE(w.empty());
  // An empty window accepts any next base (snd_una jumped forward).
  w.append(500) = 9;
  EXPECT_EQ(w.begin_seq(), 500);
  EXPECT_EQ(w.at(500), 9);
}

TEST(SeqWindow, GrowsPastInitialCapacityWithWrap) {
  SeqWindow<std::int64_t> w;
  // Interleave pops so the live range wraps the ring before each growth.
  std::int64_t next = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 37; ++i) w.append(next) = next, ++next;
    for (int i = 0; i < 11; ++i) w.pop_front();
  }
  for (std::int64_t seq = w.begin_seq(); seq < w.end_seq(); ++seq) {
    ASSERT_EQ(w.at(seq), seq);
  }
  EXPECT_EQ(w.size(), 100u * (37 - 11));
}

TEST(SeqWindow, PopReleasesOwnedResources) {
  SeqWindow<std::shared_ptr<int>> w;
  auto tracked = std::make_shared<int>(42);
  std::weak_ptr<int> watch = tracked;
  w.append(0) = std::move(tracked);
  EXPECT_FALSE(watch.expired());
  w.pop_front();
  EXPECT_TRUE(watch.expired());  // pop_front must not pin the old value
}

}  // namespace
}  // namespace greencc::tcp
