// The fault subsystem's determinism contract, asserted end to end:
//  - an impaired sweep is bit-identical run serially and under --jobs N;
//  - an installed-but-disabled impairment stage leaves a run byte-identical
//    to one with no fault machinery at all (each stage draws from a private
//    RNG stream, and a zero-rate stage draws nothing).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/runner.h"
#include "app/scenario.h"
#include "fault/plan.h"

namespace greencc::fault {
namespace {

app::RepeatOptions repeat_options(int jobs) {
  app::RepeatOptions options;
  options.repeats = 4;
  options.base_seed = 17;
  options.jobs = jobs;
  return options;
}

std::unique_ptr<app::Scenario> build_impaired(std::uint64_t seed) {
  app::ScenarioConfig config;
  config.seed = seed;
  config.faults.impair.loss_rate = 1e-2;
  config.faults.impair.reorder_rate = 5e-3;
  config.faults.impair.reorder_delay = sim::SimTime::microseconds(50);
  config.faults.impair.duplicate_rate = 1e-3;
  config.faults.install = true;
  auto scenario = std::make_unique<app::Scenario>(std::move(config));
  app::FlowSpec flow;
  flow.cca = "cubic";
  flow.bytes = units::Bytes{10'000'000};
  scenario->add_flow(flow);
  return scenario;
}

/// Everything a run reports that could possibly differ, flattened for exact
/// (not approximate) comparison.
struct Fingerprint {
  std::vector<double> doubles;
  std::vector<std::uint64_t> counters;

  bool operator==(const Fingerprint& other) const {
    return doubles == other.doubles && counters == other.counters;
  }
};

Fingerprint fingerprint(const app::RepeatResult& result) {
  Fingerprint fp;
  for (const auto& run : result.runs) {
    fp.doubles.push_back(run.total_energy.joules());
    fp.doubles.push_back(run.duration_sec);
    for (const auto& flow : run.flows) {
      fp.doubles.push_back(flow.fct_sec);
      fp.counters.push_back(
          static_cast<std::uint64_t>(flow.retransmissions));
      fp.counters.push_back(
          static_cast<std::uint64_t>(flow.delivered_bytes.count()));
    }
    fp.counters.push_back(run.bottleneck.dropped);
    for (const auto& [name, value] : run.counters) fp.counters.push_back(value);
  }
  return fp;
}

TEST(FaultDeterminism, ImpairedSweepIsIdenticalSerialAndParallel) {
  const auto serial = run_repeated(build_impaired, repeat_options(1));
  const auto parallel = run_repeated(build_impaired, repeat_options(4));
  EXPECT_TRUE(fingerprint(serial) == fingerprint(parallel));
  // The impairment actually did something, so the comparison is not
  // trivially between two clean runs.
  std::uint64_t fault_drops = 0;
  for (const auto& [name, value] : serial.runs[0].counters) {
    if (name == "fault:data.loss_drops") fault_drops = value;
  }
  EXPECT_GT(fault_drops, 0u);
}

TEST(FaultDeterminism, DisabledStageLeavesBaselineByteIdentical) {
  auto run_once = [](bool install_disabled_stage) {
    app::ScenarioConfig config;
    config.seed = 5;
    // All-zero impairment config: the stage forwards synchronously and
    // draws no random numbers.
    config.faults.install = install_disabled_stage;
    app::Scenario scenario(std::move(config));
    app::FlowSpec flow;
    flow.cca = "reno";
    flow.bytes = units::Bytes{10'000'000};
    scenario.add_flow(flow);
    return scenario.run();
  };
  const app::ScenarioResult with_stage = run_once(true);
  const app::ScenarioResult without = run_once(false);
  ASSERT_EQ(with_stage.flows.size(), without.flows.size());
  EXPECT_EQ(with_stage.total_energy.joules(), without.total_energy.joules());
  EXPECT_EQ(with_stage.duration_sec, without.duration_sec);
  EXPECT_EQ(with_stage.flows[0].fct_sec, without.flows[0].fct_sec);
  EXPECT_EQ(with_stage.flows[0].retransmissions,
            without.flows[0].retransmissions);
  EXPECT_EQ(with_stage.bottleneck.dropped, without.bottleneck.dropped);
}

TEST(FaultDeterminism, ImpairmentSeedIsIsolatedFromScenarioRandomness) {
  // Changing only the plan's impairment seed must change fault decisions
  // (different drops) without perturbing how much data the flow delivers.
  auto run_with_fault_seed = [](std::uint64_t fault_seed) {
    app::ScenarioConfig config;
    config.seed = 5;
    config.faults.impair.loss_rate = 1e-2;
    config.faults.impair.seed = fault_seed;
    config.faults.install = true;
    app::Scenario scenario(std::move(config));
    app::FlowSpec flow;
    flow.cca = "cubic";
    flow.bytes = units::Bytes{10'000'000};
    scenario.add_flow(flow);
    return scenario.run();
  };
  const auto a = run_with_fault_seed(1);
  const auto b = run_with_fault_seed(2);
  auto loss_drops = [](const app::ScenarioResult& r) {
    for (const auto& [name, value] : r.counters) {
      if (name == "fault:data.loss_drops") return value;
    }
    return std::uint64_t{0};
  };
  EXPECT_GT(loss_drops(a), 0u);
  EXPECT_GT(loss_drops(b), 0u);
  EXPECT_EQ(a.flows[0].delivered_bytes, b.flows[0].delivered_bytes);
  // Same loss *rate*, different *pattern*: the runs should not be clones.
  EXPECT_NE(a.flows[0].fct_sec, b.flows[0].fct_sec);
}

}  // namespace
}  // namespace greencc::fault
