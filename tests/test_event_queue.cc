#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/rng.h"

namespace greencc::sim {
namespace {

std::unique_ptr<EventQueue> make(EventQueueKind kind) {
  if (kind == EventQueueKind::kBinaryHeap) {
    return std::make_unique<BinaryHeapQueue>();
  }
  return std::make_unique<CalendarQueue>();
}

class EventQueueTest : public ::testing::TestWithParam<EventQueueKind> {};

INSTANTIATE_TEST_SUITE_P(AllQueues, EventQueueTest,
                         ::testing::Values(EventQueueKind::kCalendar,
                                           EventQueueKind::kBinaryHeap),
                         [](const auto& info) {
                           return info.param == EventQueueKind::kCalendar
                                      ? "Calendar"
                                      : "BinaryHeap";
                         });

TEST_P(EventQueueTest, PopsInWhenSeqOrder) {
  auto q = make(GetParam());
  // Deliberately out-of-order times plus a same-time pair (seq breaks ties).
  q->push({SimTime::microseconds(30), 0, [] {}});
  q->push({SimTime::microseconds(10), 1, [] {}});
  q->push({SimTime::microseconds(10), 2, [] {}});
  q->push({SimTime::microseconds(20), 3, [] {}});
  EXPECT_EQ(q->size(), 4u);

  std::vector<EventId> order;
  while (!q->empty()) {
    EXPECT_EQ(q->next_when(), q->next_when());  // next_when is stable
    order.push_back(q->pop_move().seq);
  }
  EXPECT_EQ(order, (std::vector<EventId>{1, 2, 3, 0}));
}

TEST_P(EventQueueTest, PopMoveTransfersCallbackOwnership) {
  auto q = make(GetParam());
  int fired = 0;
  q->push({SimTime::microseconds(1), 0, [&fired] { ++fired; }});
  EventQueue::Event ev = q->pop_move();
  EXPECT_TRUE(q->empty());
  ev.cb();
  EXPECT_EQ(fired, 1);
}

TEST_P(EventQueueTest, CancelRemovesFromSizeImmediately) {
  auto q = make(GetParam());
  q->push({SimTime::microseconds(1), 0, [] {}});
  q->push({SimTime::microseconds(2), 1, [] {}});
  q->push({SimTime::microseconds(3), 2, [] {}});
  EXPECT_EQ(q->size(), 3u);
  EXPECT_TRUE(q->cancel(1));
  EXPECT_EQ(q->size(), 2u);
  EXPECT_EQ(q->pop_move().seq, 0u);
  EXPECT_EQ(q->pop_move().seq, 2u);  // the tombstone never surfaces
  EXPECT_TRUE(q->empty());
}

TEST_P(EventQueueTest, CancelledCallbackNeverRuns) {
  auto q = make(GetParam());
  int fired = 0;
  q->push({SimTime::microseconds(1), 0, [&fired] { ++fired; }});
  q->cancel(0);
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(fired, 0);
}

TEST_P(EventQueueTest, CancelHeadThenPopSkipsIt) {
  auto q = make(GetParam());
  q->push({SimTime::microseconds(1), 0, [] {}});
  q->push({SimTime::microseconds(1), 1, [] {}});
  q->cancel(0);
  EXPECT_EQ(q->next_when(), SimTime::microseconds(1));
  EXPECT_EQ(q->pop_move().seq, 1u);
}

TEST_P(EventQueueTest, CancelStormReclaimsEverything) {
  // The Timer churn pattern at fleet scale: push a wave, cancel most of it,
  // repeat. Live size must track exactly and survivors must come out in
  // (when, seq) order.
  auto q = make(GetParam());
  Rng rng(7);
  std::vector<EventQueue::Event> expected;
  EventId seq = 0;
  for (int wave = 0; wave < 50; ++wave) {
    std::vector<EventId> pushed;
    for (int i = 0; i < 200; ++i) {
      const auto when =
          SimTime::nanoseconds(static_cast<std::int64_t>(rng.next_below(
              1'000'000'000)));
      q->push({when, seq, [] {}});
      pushed.push_back(seq);
      expected.push_back({when, seq, nullptr});
      ++seq;
    }
    // Cancel ~90% of this wave.
    for (EventId id : pushed) {
      if (rng.next_below(10) != 0) {
        EXPECT_TRUE(q->cancel(id));
        expected.erase(std::find_if(
            expected.begin(), expected.end(),
            [id](const EventQueue::Event& e) { return e.seq == id; }));
      }
    }
    EXPECT_EQ(q->size(), expected.size());
  }
  std::sort(expected.begin(), expected.end(), detail::event_before);
  for (const auto& want : expected) {
    ASSERT_FALSE(q->empty());
    const EventQueue::Event got = q->pop_move();
    EXPECT_EQ(got.when, want.when);
    EXPECT_EQ(got.seq, want.seq);
  }
  EXPECT_TRUE(q->empty());
}

TEST_P(EventQueueTest, RandomizedModelComparison) {
  // Drive the queue with a random interleave of pushes, cancels, and pops,
  // and hold it to a sorted-vector reference model.  Time ranges span 9
  // orders of magnitude so the calendar queue exercises overflow, cursor
  // jumps, and rebuilds.
  auto q = make(GetParam());
  Rng rng(42);
  std::vector<EventQueue::Event> model;  // kept sorted by (when, seq)
  EventId seq = 0;
  SimTime low_water = SimTime::zero();  // pops only move forward in time
  for (int step = 0; step < 20'000; ++step) {
    const std::uint64_t dice = rng.next_below(10);
    if (dice < 5 || model.empty()) {
      // Push at or after the last popped time (the simulator's invariant).
      const auto when =
          low_water + SimTime::nanoseconds(static_cast<std::int64_t>(
                          rng.next_below(1'000'000'000'000)));
      EventQueue::Event ev{when, seq++, [] {}};
      model.insert(std::upper_bound(model.begin(), model.end(), ev,
                                    detail::event_before),
                   {ev.when, ev.seq, nullptr});
      q->push(std::move(ev));
    } else if (dice < 7) {
      // Cancel a random live event.
      const std::size_t idx = rng.next_below(model.size());
      ASSERT_TRUE(q->cancel(model[idx].seq));
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      ASSERT_EQ(q->next_when(), model.front().when);
      const EventQueue::Event got = q->pop_move();
      ASSERT_EQ(got.when, model.front().when);
      ASSERT_EQ(got.seq, model.front().seq);
      low_water = got.when;
      model.erase(model.begin());
    }
    ASSERT_EQ(q->size(), model.size());
  }
  while (!model.empty()) {
    const EventQueue::Event got = q->pop_move();
    ASSERT_EQ(got.seq, model.front().seq);
    model.erase(model.begin());
  }
  EXPECT_TRUE(q->empty());
}

TEST(CalendarQueue, RebuildsUnderLoad) {
  // Push far more events than the initial ring can hold at ~1 event per
  // bucket; the resize policy must kick in and keep operations correct.
  CalendarQueue q;
  const std::size_t initial_buckets = q.bucket_count();
  Rng rng(3);
  for (EventId i = 0; i < 10'000; ++i) {
    q.push({SimTime::nanoseconds(static_cast<std::int64_t>(
                rng.next_below(1'000'000))),
            i, [] {}});
  }
  EXPECT_GT(q.bucket_count(), initial_buckets);
  SimTime prev = SimTime::zero();
  while (!q.empty()) {
    const auto ev = q.pop_move();
    EXPECT_GE(ev.when, prev);
    prev = ev.when;
  }
}

TEST(CalendarQueue, FarFutureEventsSitInOverflow) {
  CalendarQueue q;
  q.push({SimTime::seconds(3600), 0, [] {}});  // an hour out: overflow
  EXPECT_EQ(q.overflow_size(), 1u);
  q.push({SimTime::nanoseconds(10), 1, [] {}});
  EXPECT_EQ(q.pop_move().seq, 1u);
  // The cursor jumps straight to the far event instead of walking an
  // hour's worth of empty buckets.
  EXPECT_EQ(q.pop_move().seq, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, SparseThenDenseTrafficAdaptsWidth) {
  // A sparse prelude (wide gaps) followed by a dense burst: rebuilds must
  // re-derive the width so dense-phase performance does not degrade, and
  // ordering must hold throughout.
  CalendarQueue q;
  EventId seq = 0;
  for (int i = 0; i < 100; ++i) {
    q.push({SimTime::milliseconds(i * 100), seq++, [] {}});
  }
  for (int i = 0; i < 5'000; ++i) {
    q.push({SimTime::nanoseconds(i), seq++, [] {}});
  }
  SimTime prev = SimTime::zero();
  std::size_t popped = 0;
  while (!q.empty()) {
    const auto ev = q.pop_move();
    EXPECT_GE(ev.when, prev);
    prev = ev.when;
    ++popped;
  }
  EXPECT_EQ(popped, 5'100u);
}

}  // namespace
}  // namespace greencc::sim
