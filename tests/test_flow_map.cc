#include "net/flow_map.h"

#include <gtest/gtest.h>

#include <vector>

namespace greencc::net {
namespace {

TEST(FlowMap, CreatesOnFirstTouch) {
  FlowMap<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), nullptr);
  m[7] = 70;
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(7), 70);
  EXPECT_TRUE(m.contains(7));
  m[7] = 71;  // second touch reuses the entry
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(7), 71);
}

TEST(FlowMap, ReferencesStayStableAcrossGrowth) {
  FlowMap<int> m;
  int& first = m[0];
  first = 1;
  // Push far past several chunk boundaries; `first` must not move.
  for (FlowId f = 1; f < 1000; ++f) m[f] = static_cast<int>(f);
  EXPECT_EQ(&first, &m.at(0));
  EXPECT_EQ(first, 1);
  EXPECT_EQ(m.at(999), 999);
}

TEST(FlowMap, ForEachVisitsInKeyOrder) {
  FlowMap<int> m;
  // Insert out of order: the audit/ledger paths depend on key-order
  // traversal for deterministic output.
  for (FlowId f : {50, 10, 90, 30, 70}) m[f] = static_cast<int>(f);
  std::vector<FlowId> seen;
  m.for_each([&](FlowId f, int& v) {
    EXPECT_EQ(v, static_cast<int>(f));
    seen.push_back(f);
  });
  EXPECT_EQ(seen, (std::vector<FlowId>{10, 30, 50, 70, 90}));
}

TEST(FlowMap, AscendingInsertFastPathMatchesRandomOrder) {
  FlowMap<int> ascending;
  FlowMap<int> shuffled;
  for (FlowId f = 0; f < 300; ++f) ascending[f] = static_cast<int>(f * 3);
  for (FlowId f = 0; f < 300; f += 2) shuffled[f] = static_cast<int>(f * 3);
  for (std::int64_t f = 299; f >= 1; f -= 2) {
    shuffled[static_cast<FlowId>(f)] = static_cast<int>(f * 3);
  }
  for (FlowId f = 0; f < 300; ++f) {
    ASSERT_EQ(ascending.at(f), shuffled.at(f)) << "flow " << f;
  }
}

TEST(FlowMap, ConstLookups) {
  FlowMap<int> m;
  m[3] = 33;
  const FlowMap<int>& cm = m;
  EXPECT_EQ(cm.at(3), 33);
  EXPECT_EQ(*cm.find(3), 33);
  EXPECT_EQ(cm.find(4), nullptr);
  int sum = 0;
  cm.for_each([&](FlowId, const int& v) { sum += v; });
  EXPECT_EQ(sum, 33);
}

}  // namespace
}  // namespace greencc::net
