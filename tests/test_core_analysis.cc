// Tests for the analysis half of the core library: the Fig 1 closed-form
// allocation sweep, the flow schedulers, the fleet savings estimator and the
// cross-metric efficiency report.

#include <gtest/gtest.h>

#include "core/allocation.h"
#include "core/efficiency.h"
#include "core/estimator.h"
#include "core/scheduler.h"
#include "units/units.h"

namespace greencc::core {
namespace {

AllocationAnalysis analysis() {
  const energy::PowerCalibration calib;
  return AllocationAnalysis(energy::PackagePowerModel{},
                            units::BitRate::bps(10e9),
                            calib.fig2_util_per_gbps,
                            calib.fig2_pps_per_gbps);
}

constexpr units::Bits kTenGbit{10'000'000'000};  // bits per flow, as in Fig 1

// --- AllocationAnalysis (Fig 1 closed form) ---

TEST(Allocation, FairSplitHasZeroSavings) {
  const auto r = analysis().energy_at_fraction(0.5, kTenGbit);
  EXPECT_NEAR(r.savings_vs_fair, 0.0, 1e-9);
  EXPECT_NEAR(r.duration_sec, 2.0, 1e-9);
}

TEST(Allocation, FullSpeedThenIdleSavesSixteenPercent) {
  const auto r = analysis().energy_at_fraction(1.0, kTenGbit);
  EXPECT_NEAR(r.savings_vs_fair, 0.163, 0.01);
}

TEST(Allocation, SavingsMonotoneInUnfairness) {
  double prev = -1.0;
  for (double f : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}) {
    const auto r = analysis().energy_at_fraction(f, kTenGbit);
    EXPECT_GT(r.savings_vs_fair, prev) << f;
    prev = r.savings_vs_fair;
  }
}

TEST(Allocation, DurationInvariant) {
  // The bottleneck is work-conserving: every split finishes in 2 s.
  for (double f : {0.5, 0.7, 0.9, 1.0}) {
    EXPECT_NEAR(analysis().energy_at_fraction(f, kTenGbit).duration_sec, 2.0,
                1e-9)
        << f;
  }
}

TEST(Allocation, OutOfRangeFractionThrows) {
  EXPECT_THROW(analysis().energy_at_fraction(0.4, kTenGbit),
               std::invalid_argument);
  EXPECT_THROW(analysis().energy_at_fraction(1.1, kTenGbit),
               std::invalid_argument);
}

TEST(Allocation, SweepMatchesPointQueries) {
  const std::vector<double> fractions = {0.5, 0.75, 1.0};
  const auto sweep = analysis().sweep(fractions, kTenGbit);
  ASSERT_EQ(sweep.size(), 3u);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto point =
        analysis().energy_at_fraction(fractions[i], kTenGbit);
    EXPECT_DOUBLE_EQ(sweep[i].energy.joules(), point.energy.joules());
  }
}

TEST(Allocation, LoadedHostsShrinkSavings) {
  const double idle = analysis().energy_at_fraction(1.0, kTenGbit, 0.0)
                          .savings_vs_fair;
  const double quarter = analysis().energy_at_fraction(1.0, kTenGbit, 0.25)
                             .savings_vs_fair;
  const double three_quarters =
      analysis().energy_at_fraction(1.0, kTenGbit, 0.75).savings_vs_fair;
  EXPECT_GT(idle, quarter);
  EXPECT_GT(quarter, three_quarters);
  EXPECT_NEAR(quarter, 0.01, 0.005);           // §4.2: ~1%
  EXPECT_NEAR(three_quarters, 0.0017, 0.002);  // §4.2: ~0.17%
}

// --- Schedulers ---

TEST(Scheduler, FairShareLeavesFlowsUnlimited) {
  const auto specs =
      make_schedule(Schedule::kFairShare, 3, units::Bytes{1'000'000}, "cubic",
                    units::BitRate::bps(10e9));
  ASSERT_EQ(specs.size(), 3u);
  for (const auto& s : specs) {
    EXPECT_EQ(s.rate_limit.bps(), 0.0);
    EXPECT_EQ(s.start_after_flow, -1);
    EXPECT_EQ(s.cca, "cubic");
  }
}

TEST(Scheduler, WeightedLimitsFirstFlow) {
  const auto specs =
      make_schedule(Schedule::kWeighted, 2, units::Bytes{1'000'000}, "cubic",
                    units::BitRate::bps(10e9), 0.7);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_NEAR(specs[0].rate_limit.bps(), 7e9, 1.0);
  EXPECT_EQ(specs[1].rate_limit.bps(), 0.0);
}

TEST(Scheduler, WeightedRequiresTwoFlows) {
  EXPECT_THROW(
      make_schedule(Schedule::kWeighted, 3, units::Bytes{1'000'000}, "cubic",
                    units::BitRate::bps(10e9)),
      std::invalid_argument);
}

TEST(Scheduler, FullSpeedThenIdleChains) {
  const auto specs = make_schedule(Schedule::kFullSpeedThenIdle, 4,
                                   units::Bytes{1'000'000}, "cubic",
                                   units::BitRate::bps(10e9));
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].start_after_flow, -1);
  EXPECT_EQ(specs[1].start_after_flow, 0);
  EXPECT_EQ(specs[2].start_after_flow, 1);
  EXPECT_EQ(specs[3].start_after_flow, 2);
}

TEST(Scheduler, Names) {
  EXPECT_EQ(to_string(Schedule::kFairShare), "fair-share");
  EXPECT_EQ(to_string(Schedule::kFullSpeedThenIdle), "full-speed-then-idle");
  EXPECT_EQ(to_string(SizedSchedule::kSrptSerial), "srpt-serial");
  EXPECT_EQ(to_string(SizedSchedule::kLongestFirst), "longest-first");
}

// --- sized schedules (SRPT and friends) ---

TEST(SizedScheduler, FairShareRunsAllConcurrently) {
  const auto specs = make_sized_schedule(SizedSchedule::kFairShare,
                                         {units::Bytes{100}, units::Bytes{300}, units::Bytes{200}}, "cubic");
  for (const auto& s : specs) EXPECT_EQ(s.start_after_flow, -1);
}

TEST(SizedScheduler, FifoChainsInInputOrder) {
  const auto specs = make_sized_schedule(SizedSchedule::kFifoSerial,
                                         {units::Bytes{100}, units::Bytes{300}, units::Bytes{200}}, "cubic");
  EXPECT_EQ(specs[0].start_after_flow, -1);
  EXPECT_EQ(specs[1].start_after_flow, 0);
  EXPECT_EQ(specs[2].start_after_flow, 1);
}

TEST(SizedScheduler, SrptChainsShortestFirst) {
  // Sizes 100 (idx 0), 300 (idx 1), 200 (idx 2): execution order 0, 2, 1.
  const auto specs = make_sized_schedule(SizedSchedule::kSrptSerial,
                                         {units::Bytes{100}, units::Bytes{300}, units::Bytes{200}}, "cubic");
  EXPECT_EQ(specs[0].start_after_flow, -1);  // shortest starts first
  EXPECT_EQ(specs[2].start_after_flow, 0);   // then 200 after 100
  EXPECT_EQ(specs[1].start_after_flow, 2);   // then 300 after 200
}

TEST(SizedScheduler, LongestFirstReverses) {
  const auto specs = make_sized_schedule(SizedSchedule::kLongestFirst,
                                         {units::Bytes{100}, units::Bytes{300}, units::Bytes{200}}, "cubic");
  EXPECT_EQ(specs[1].start_after_flow, -1);  // longest first
  EXPECT_EQ(specs[2].start_after_flow, 1);
  EXPECT_EQ(specs[0].start_after_flow, 2);
}

TEST(SizedScheduler, StableForTies) {
  const auto specs = make_sized_schedule(SizedSchedule::kSrptSerial,
                                         {units::Bytes{100}, units::Bytes{100}, units::Bytes{100}}, "cubic");
  EXPECT_EQ(specs[0].start_after_flow, -1);
  EXPECT_EQ(specs[1].start_after_flow, 0);
  EXPECT_EQ(specs[2].start_after_flow, 1);
}

TEST(SizedScheduler, EmptyThrows) {
  EXPECT_THROW(make_sized_schedule(SizedSchedule::kSrptSerial, {}, "cubic"),
               std::invalid_argument);
}

// --- SavingsEstimator (§4.2's $10M/year) ---

TEST(Estimator, PaperHeadlineNumber) {
  SavingsEstimator est;
  // "a 1% improvement corresponds to a cost savings of on the order of
  // $10 million/year".
  EXPECT_NEAR(est.usd_per_year(0.01), 10e6, 1e-6);
}

TEST(Estimator, ScalesLinearly) {
  SavingsEstimator est;
  EXPECT_DOUBLE_EQ(est.usd_per_year(0.16), 16.0 * est.usd_per_year(0.01));
}

TEST(Estimator, EnergyConversion) {
  SavingsEstimator est;
  // $10M/yr at $0.08/kWh = 125 GWh/yr.
  EXPECT_NEAR(est.gwh_per_year(0.01), 125.0, 0.1);
}

// --- EfficiencyReport ---

EfficiencyReport synthetic_grid() {
  EfficiencyReport report;
  // Two CCAs x two MTUs with an inverse energy/power relation.
  report.add({.cca = "fast", .mtu_bytes = 1500, .energy_joules = 100.0,
              .energy_stddev = 0.0, .power_watts = 40.0, .fct_sec = 10.0,
              .retransmissions = 50.0});
  report.add({.cca = "fast", .mtu_bytes = 9000, .energy_joules = 70.0,
              .energy_stddev = 0.0, .power_watts = 36.0, .fct_sec = 7.0,
              .retransmissions = 20.0});
  report.add({.cca = "slow", .mtu_bytes = 1500, .energy_joules = 130.0,
              .energy_stddev = 0.0, .power_watts = 39.0, .fct_sec = 14.0,
              .retransmissions = 400.0});
  report.add({.cca = "slow", .mtu_bytes = 9000, .energy_joules = 90.0,
              .energy_stddev = 0.0, .power_watts = 35.0, .fct_sec = 9.0,
              .retransmissions = 100.0});
  return report;
}

TEST(Efficiency, NegativeEnergyPowerCorrelationWithinMtu) {
  // At fixed MTU, lower power <=> longer runtime <=> more energy.
  EXPECT_LT(synthetic_grid().corr_energy_power(1500), 0.0);
  EXPECT_LT(synthetic_grid().corr_energy_power(9000), 0.0);
}

TEST(Efficiency, PooledCorrelationFlipsSign) {
  // Pooled across MTUs the MTU effect dominates: high power and high
  // energy move together (the small-MTU cells).
  EXPECT_GT(synthetic_grid().corr_energy_power(0), 0.0);
}

TEST(Efficiency, PositiveEnergyFctCorrelation) {
  EXPECT_GT(synthetic_grid().corr_energy_fct(), 0.9);
}

TEST(Efficiency, RetxCorrelationAndExclusion) {
  auto report = synthetic_grid();
  const double with_all = report.corr_energy_retx();
  const double excluding = report.corr_energy_retx("slow");
  EXPECT_GT(with_all, 0.0);
  // Excluding a CCA leaves only the two "fast" cells.
  EXPECT_NE(with_all, excluding);
}

TEST(Efficiency, MtuSavings) {
  EXPECT_NEAR(synthetic_grid().mtu_savings("fast"), 0.3, 1e-9);
  EXPECT_THROW(synthetic_grid().mtu_savings("nope"), std::invalid_argument);
}

TEST(Efficiency, SavingsVsBaseline) {
  // "fast" uses (130-100)/130 less energy than "slow" at MTU 1500.
  EXPECT_NEAR(synthetic_grid().savings_vs("fast", "slow", 1500), 30.0 / 130.0,
              1e-9);
  EXPECT_THROW(synthetic_grid().savings_vs("fast", "slow", 4242),
               std::invalid_argument);
}

}  // namespace
}  // namespace greencc::core
