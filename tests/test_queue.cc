#include "net/queue.h"

#include <gtest/gtest.h>

namespace greencc::net {
namespace {

Packet data_packet(std::int64_t seq, std::int32_t size, bool ect = false) {
  Packet p;
  p.seq = seq;
  p.size_bytes = units::Bytes{size};
  p.ecn_capable = ect;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(units::Bytes{10'000});
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.enqueue(data_packet(i, 100)));
  for (int i = 0; i < 5; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailQueue, ByteAccounting) {
  DropTailQueue q(units::Bytes{10'000});
  q.enqueue(data_packet(0, 1500));
  q.enqueue(data_packet(1, 500));
  EXPECT_EQ(q.bytes().count(), 2000);
  EXPECT_EQ(q.packets(), 2u);
  q.dequeue();
  EXPECT_EQ(q.bytes().count(), 500);
}

TEST(DropTailQueue, DropsWhenBytesFull) {
  DropTailQueue q(units::Bytes{3'000});
  EXPECT_TRUE(q.enqueue(data_packet(0, 1500)));
  EXPECT_TRUE(q.enqueue(data_packet(1, 1500)));
  EXPECT_FALSE(q.enqueue(data_packet(2, 1500)));
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().enqueued, 2u);
}

TEST(DropTailQueue, DropsWhenPacketCapFull) {
  DropTailQueue q(units::Bytes{1 << 20}, units::Bytes::zero(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.enqueue(data_packet(i, 100)));
  EXPECT_FALSE(q.enqueue(data_packet(3, 100)));
  EXPECT_EQ(q.stats().dropped, 1u);
  // Space frees after a dequeue.
  q.dequeue();
  EXPECT_TRUE(q.enqueue(data_packet(4, 100)));
}

TEST(DropTailQueue, ZeroPacketCapMeansUnlimited) {
  DropTailQueue q(units::Bytes{1 << 20}, units::Bytes::zero(), 0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(q.enqueue(data_packet(i, 100)));
  }
}

TEST(DropTailQueue, EcnMarksAboveThreshold) {
  DropTailQueue q(units::Bytes{1 << 20}, units::Bytes{3'000});
  // Below threshold: no mark.
  q.enqueue(data_packet(0, 1500, true));
  q.enqueue(data_packet(1, 1500, true));
  // Queue depth now 3000 >= threshold: next ECT packet gets CE.
  q.enqueue(data_packet(2, 1500, true));
  EXPECT_EQ(q.stats().ecn_marked, 1u);
  auto p0 = q.dequeue();
  auto p1 = q.dequeue();
  auto p2 = q.dequeue();
  EXPECT_FALSE(p0->ce);
  EXPECT_FALSE(p1->ce);
  EXPECT_TRUE(p2->ce);
}

TEST(DropTailQueue, NonEctPacketsNeverMarked) {
  DropTailQueue q(units::Bytes{1 << 20}, units::Bytes{100});
  q.enqueue(data_packet(0, 1500, false));
  q.enqueue(data_packet(1, 1500, false));
  q.enqueue(data_packet(2, 1500, false));
  EXPECT_EQ(q.stats().ecn_marked, 0u);
}

TEST(DropTailQueue, MaxBytesSeenTracksHighWater) {
  DropTailQueue q(units::Bytes{1 << 20});
  q.enqueue(data_packet(0, 4000));
  q.enqueue(data_packet(1, 4000));
  q.dequeue();
  q.enqueue(data_packet(2, 1000));
  EXPECT_EQ(q.stats().max_bytes_seen.count(), 8000);
}

TEST(DropTailQueue, MaxPacketsSeenTracksHighWater) {
  DropTailQueue q(units::Bytes{1 << 20}, units::Bytes::zero(), 8);
  for (int i = 0; i < 5; ++i) q.enqueue(data_packet(i, 100));
  for (int i = 0; i < 4; ++i) q.dequeue();
  q.enqueue(data_packet(5, 100));
  EXPECT_EQ(q.stats().max_packets_seen, 5u);
  // Draining never lowers the high-water mark.
  while (q.dequeue()) {
  }
  EXPECT_EQ(q.stats().max_packets_seen, 5u);
}

TEST(DropTailQueue, EmptyReporting) {
  DropTailQueue q(units::Bytes{1000});
  EXPECT_TRUE(q.empty());
  q.enqueue(data_packet(0, 100));
  EXPECT_FALSE(q.empty());
  q.dequeue();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace greencc::net
