#include "net/switch.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace greencc::net {
namespace {

using sim::SimTime;
using sim::Simulator;

class Collector : public PacketHandler {
 public:
  void handle(Packet pkt) override { seqs.push_back(pkt.seq); }
  std::vector<std::int64_t> seqs;
};

Packet to_host(HostId dst, std::int64_t seq) {
  Packet p;
  p.dst = dst;
  p.seq = seq;
  p.size_bytes = units::Bytes{1500};
  return p;
}

TEST(Switch, RoutesByDestination) {
  Simulator sim;
  Switch sw(sim);
  Collector a, b;
  sw.add_egress(1, PortConfig{}, &a);
  sw.add_egress(2, PortConfig{}, &b);
  sw.handle(to_host(1, 10));
  sw.handle(to_host(2, 20));
  sw.handle(to_host(1, 11));
  sim.run();
  EXPECT_EQ(a.seqs, (std::vector<std::int64_t>{10, 11}));
  EXPECT_EQ(b.seqs, (std::vector<std::int64_t>{20}));
}

TEST(Switch, CountsUnroutable) {
  Simulator sim;
  Switch sw(sim);
  sw.handle(to_host(99, 0));
  EXPECT_EQ(sw.unroutable_packets(), 1u);
}

TEST(Switch, DuplicateEgressThrows) {
  Simulator sim;
  Switch sw(sim);
  Collector a;
  sw.add_egress(1, PortConfig{}, &a);
  EXPECT_THROW(sw.add_egress(1, PortConfig{}, &a), std::logic_error);
}

TEST(Switch, EgressLookup) {
  Simulator sim;
  Switch sw(sim);
  Collector a;
  auto& port = sw.add_egress(1, PortConfig{}, &a);
  EXPECT_EQ(&sw.egress(1), &port);
  EXPECT_THROW(sw.egress(2), std::out_of_range);
}

TEST(BondedNic, RoundRobinAcrossPorts) {
  Simulator sim;
  Collector sink;
  PortConfig cfg;
  cfg.propagation = SimTime::zero();
  BondedNic nic(sim, "nic", 2, cfg, &sink);
  for (int i = 0; i < 6; ++i) nic.handle(to_host(0, i));
  sim.run();
  EXPECT_EQ(nic.port(0).packets_sent(), 3u);
  EXPECT_EQ(nic.port(1).packets_sent(), 3u);
  EXPECT_EQ(sink.seqs.size(), 6u);
}

TEST(BondedNic, AggregateBandwidthIsSummed) {
  // Two 10 Gb/s ports drain a 12 Gb/s offered load without loss — the
  // reason the paper bonds the sender's NICs.
  Simulator sim;
  Collector sink;
  PortConfig cfg;
  cfg.rate = units::BitRate::bps(10e9);
  cfg.propagation = SimTime::zero();
  BondedNic nic(sim, "nic", 2, cfg, &sink);
  // 800 x 1500 B back to back = 9.6 Mbit; at 20 Gb/s aggregate ~480 us
  // (a single 10 Gb/s port would need ~960 us).
  for (int i = 0; i < 800; ++i) nic.handle(to_host(0, i));
  sim.run();
  EXPECT_EQ(sink.seqs.size(), 800u);
  EXPECT_EQ(nic.port(0).queue_stats().dropped, 0u);
  EXPECT_EQ(nic.port(1).queue_stats().dropped, 0u);
  EXPECT_LE(sim.now(), SimTime::microseconds(520));
}

TEST(BondedNic, SinglePortDegenerate) {
  Simulator sim;
  Collector sink;
  BondedNic nic(sim, "nic", 1, PortConfig{}, &sink);
  for (int i = 0; i < 4; ++i) nic.handle(to_host(0, i));
  sim.run();
  EXPECT_EQ(nic.port(0).packets_sent(), 4u);
}

TEST(BondedNic, RejectsZeroPorts) {
  Simulator sim;
  Collector sink;
  EXPECT_THROW(BondedNic(sim, "nic", 0, PortConfig{}, &sink),
               std::invalid_argument);
}

TEST(BondedNic, TransmitCallbackCoversAllPorts) {
  Simulator sim;
  Collector sink;
  PortConfig cfg;
  BondedNic nic(sim, "nic", 2, cfg, &sink);
  std::int64_t bytes = 0;
  nic.set_on_transmit([&](units::Bytes b) { bytes += b.count(); });
  for (int i = 0; i < 4; ++i) nic.handle(to_host(0, i));
  sim.run();
  EXPECT_EQ(bytes, 4 * 1500);
  EXPECT_EQ(nic.bytes_sent().count(), 4 * 1500);
}

}  // namespace
}  // namespace greencc::net
