#include "energy/switch_power.h"

#include <gtest/gtest.h>

#include "net/packet.h"

namespace greencc::energy {
namespace {

using sim::SimTime;
using sim::Simulator;

class Sink : public net::PacketHandler {
 public:
  void handle(net::Packet) override {}
};

net::Packet pkt(std::int32_t size) {
  net::Packet p;
  p.size_bytes = units::Bytes{size};
  return p;
}

SwitchPowerConfig config() { return SwitchPowerConfig{}; }

TEST(SwitchPower, PortWattsPerProfile) {
  Simulator sim;
  const auto idle_long = SimTime::seconds(1.0);
  const auto idle_short = SimTime::microseconds(10);

  SwitchEnergyMeter constant(sim, config(), PortPowerProfile::kConstant);
  EXPECT_DOUBLE_EQ(constant.port_power(0.0, idle_long).watts(), 2.5);
  EXPECT_DOUBLE_EQ(constant.port_power(1.0, idle_short).watts(), 2.5);

  SwitchEnergyMeter adaptive(sim, config(), PortPowerProfile::kRateAdaptive);
  EXPECT_DOUBLE_EQ(adaptive.port_power(0.0, idle_long).watts(), 0.5);   // low mode
  EXPECT_DOUBLE_EQ(adaptive.port_power(0.05, idle_short).watts(), 0.5); // low mode
  EXPECT_DOUBLE_EQ(adaptive.port_power(0.5, idle_short).watts(), 2.5);  // full mode

  SwitchEnergyMeter sleepy(sim, config(), PortPowerProfile::kSleepCapable);
  EXPECT_DOUBLE_EQ(sleepy.port_power(0.0, idle_long).watts(), 0.1);    // asleep
  EXPECT_DOUBLE_EQ(sleepy.port_power(0.0, idle_short).watts(), 0.5);   // not yet
  EXPECT_DOUBLE_EQ(sleepy.port_power(0.5, idle_short).watts(), 2.5);
}

TEST(SwitchPower, IdleSwitchDrawsChassisPlusPortFloor) {
  Simulator sim;
  Sink sink;
  net::PortConfig port_config;
  net::QueuedPort port(sim, "p", port_config, &sink);
  SwitchEnergyMeter meter(sim, config(), PortPowerProfile::kSleepCapable);
  meter.attach_port(&port);
  meter.start();
  sim.run_until(SimTime::seconds(1.0));
  meter.stop();
  // Chassis 150 W + a sleeping port 0.1 W (after the first ms at low mode).
  EXPECT_NEAR(meter.average_power().watts(), 150.1, 0.05);
}

TEST(SwitchPower, BusyPortDrawsFullMode) {
  Simulator sim;
  Sink sink;
  net::PortConfig port_config;
  port_config.rate = units::BitRate::bps(10e9);
  port_config.propagation = SimTime::zero();
  net::QueuedPort port(sim, "p", port_config, &sink);
  SwitchEnergyMeter meter(sim, config(), PortPowerProfile::kSleepCapable);
  meter.attach_port(&port);
  meter.start();
  // Keep the port ~50% utilized: one 1500 B packet every 2.4 us.
  for (int i = 0; i < 100'000; ++i) {
    sim.schedule(SimTime::nanoseconds(i * 2'400),
                 [&port] { port.handle(pkt(1500)); });
  }
  sim.run_until(SimTime::milliseconds(240));
  meter.stop();
  EXPECT_NEAR(meter.average_power().watts(), 150.0 + 2.5, 0.1);
}

TEST(SwitchPower, ConstantProfileIsLoadInvariant) {
  // The paper's cited measurement: load does not change the power draw of
  // legacy equipment.
  for (bool busy : {false, true}) {
    Simulator sim;
    Sink sink;
    net::PortConfig port_config;
    port_config.propagation = SimTime::zero();
    net::QueuedPort port(sim, "p", port_config, &sink);
    SwitchEnergyMeter meter(sim, config(), PortPowerProfile::kConstant);
    meter.attach_port(&port);
    meter.start();
    if (busy) {
      for (int i = 0; i < 1000; ++i) {
        sim.schedule(SimTime::microseconds(i * 10),
                     [&port] { port.handle(pkt(1500)); });
      }
    }
    sim.run_until(SimTime::milliseconds(10));
    meter.stop();
    EXPECT_NEAR(meter.average_power().watts(), 152.5, 0.01) << busy;
  }
}

TEST(SwitchPower, SleepRequiresSustainedIdle) {
  Simulator sim;
  Sink sink;
  net::PortConfig port_config;
  port_config.propagation = SimTime::zero();
  net::QueuedPort port(sim, "p", port_config, &sink);
  SwitchEnergyMeter meter(sim, config(), PortPowerProfile::kSleepCapable);
  meter.attach_port(&port);
  meter.start();
  // Activity every 0.5 ms keeps the port from ever reaching the 1 ms sleep
  // threshold.
  for (int i = 0; i < 40; ++i) {
    sim.schedule(SimTime::microseconds(i * 500),
                 [&port] { port.handle(pkt(1500)); });
  }
  sim.run_until(SimTime::milliseconds(20));
  meter.stop();
  EXPECT_GT(meter.average_power().watts(), 150.4);  // never fell to 0.1 W floor
}

}  // namespace
}  // namespace greencc::energy
