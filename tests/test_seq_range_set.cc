#include "tcp/seq_range_set.h"

#include <gtest/gtest.h>

#include <set>

namespace greencc::tcp {
namespace {

TEST(SeqRangeSet, EmptyByDefault) {
  SeqRangeSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(0));
  EXPECT_EQ(s.contiguous_end(5), 5);
}

TEST(SeqRangeSet, SingleInsertContains) {
  SeqRangeSet s;
  s.insert(10, 15);
  for (std::int64_t i = 10; i < 15; ++i) EXPECT_TRUE(s.contains(i));
  EXPECT_FALSE(s.contains(9));
  EXPECT_FALSE(s.contains(15));
}

TEST(SeqRangeSet, EmptyRangeThrows) {
  SeqRangeSet s;
  EXPECT_THROW(s.insert(5, 5), std::invalid_argument);
  EXPECT_THROW(s.insert(5, 3), std::invalid_argument);
}

TEST(SeqRangeSet, AdjacentRangesMerge) {
  SeqRangeSet s;
  s.insert(0, 5);
  s.insert(5, 10);
  EXPECT_EQ(s.range_count(), 1u);
  EXPECT_EQ(s.contiguous_end(0), 10);
}

TEST(SeqRangeSet, OverlappingRangesMerge) {
  SeqRangeSet s;
  s.insert(0, 6);
  s.insert(4, 10);
  EXPECT_EQ(s.range_count(), 1u);
  EXPECT_EQ(s.contiguous_end(0), 10);
}

TEST(SeqRangeSet, BridgingInsertMergesBothSides) {
  SeqRangeSet s;
  s.insert(0, 3);
  s.insert(6, 9);
  EXPECT_EQ(s.range_count(), 2u);
  s.insert(3, 6);
  EXPECT_EQ(s.range_count(), 1u);
  EXPECT_EQ(s.contiguous_end(0), 9);
}

TEST(SeqRangeSet, DisjointRangesStaySeparate) {
  SeqRangeSet s;
  s.insert(0, 2);
  s.insert(10, 12);
  EXPECT_EQ(s.range_count(), 2u);
  EXPECT_FALSE(s.contains(5));
}

TEST(SeqRangeSet, EraseBelowTrims) {
  SeqRangeSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  s.erase_below(5);
  EXPECT_FALSE(s.contains(4));
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(25));
  s.erase_below(30);
  EXPECT_TRUE(s.empty());
}

TEST(SeqRangeSet, ContiguousEndMidRange) {
  SeqRangeSet s;
  s.insert(5, 10);
  EXPECT_EQ(s.contiguous_end(7), 10);
  EXPECT_EQ(s.contiguous_end(10), 10);  // 10 not contained
  EXPECT_EQ(s.contiguous_end(4), 4);
}

TEST(SeqRangeSet, BlocksAboveReturnsLowestFirst) {
  SeqRangeSet s;
  s.insert(10, 12);
  s.insert(20, 25);
  s.insert(30, 31);
  const auto blocks = s.blocks_above(0, 2);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].start, 10);
  EXPECT_EQ(blocks[0].end, 12);
  EXPECT_EQ(blocks[1].start, 20);
}

TEST(SeqRangeSet, BlocksAboveSkipsLowerRanges) {
  SeqRangeSet s;
  s.insert(10, 12);
  s.insert(20, 25);
  const auto blocks = s.blocks_above(15, 3);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].start, 20);
}

TEST(SeqRangeSet, RangeContaining) {
  SeqRangeSet s;
  s.insert(10, 20);
  const auto r = s.range_containing(15);
  EXPECT_EQ(r.start, 10);
  EXPECT_EQ(r.end, 20);
  const auto miss = s.range_containing(25);
  EXPECT_EQ(miss.start, 25);
  EXPECT_EQ(miss.end, 25);
}

TEST(SeqRangeSet, FrontReturnsLowestRange) {
  SeqRangeSet s;
  EXPECT_EQ(s.front().start, 0);
  EXPECT_EQ(s.front().end, 0);
  s.insert(20, 25);
  s.insert(5, 8);
  EXPECT_EQ(s.front().start, 5);
  EXPECT_EQ(s.front().end, 8);
}

TEST(SeqRangeSet, WellFormedAfterAdversarialInserts) {
  // Every insert pattern that has historically broken interval sets:
  // re-inserting contained ranges, swallowing many ranges at once,
  // extending by one on either side, exact duplicates.
  SeqRangeSet s;
  s.insert(10, 20);
  s.insert(10, 20);  // exact duplicate
  s.insert(12, 18);  // strictly inside
  s.insert(9, 21);   // strictly outside
  EXPECT_EQ(s.range_count(), 1u);
  s.insert(30, 32);
  s.insert(40, 42);
  s.insert(50, 52);
  s.insert(31, 51);  // swallows the middle range, truncates both ends
  EXPECT_EQ(s.range_count(), 2u);
  EXPECT_TRUE(s.contains(45));
  std::string why;
  EXPECT_TRUE(s.well_formed(&why)) << why;
}

TEST(SeqRangeSet, InsertSpanningManyRangesMergesAll) {
  SeqRangeSet s;
  for (std::int64_t i = 0; i < 10; ++i) s.insert(i * 10, i * 10 + 3);
  ASSERT_EQ(s.range_count(), 10u);
  s.insert(1, 95);
  EXPECT_EQ(s.range_count(), 1u);
  EXPECT_EQ(s.contiguous_end(0), 95);
  std::string why;
  EXPECT_TRUE(s.well_formed(&why)) << why;
}

TEST(SeqRangeSet, BlocksAboveStraddlingRangeIsIncluded) {
  // A range that starts at or below `above` but extends past it still
  // represents receivable data above the cumulative ACK.
  SeqRangeSet s;
  s.insert(10, 30);
  const auto blocks = s.blocks_above(20, 3);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].end, 30);
}

TEST(SeqRangeSet, EraseBelowKeepsWellFormed) {
  SeqRangeSet s;
  for (std::int64_t i = 0; i < 8; ++i) s.insert(i * 10, i * 10 + 5);
  for (std::int64_t cut : {3, 11, 25, 44, 80}) {
    s.erase_below(cut);
    std::string why;
    ASSERT_TRUE(s.well_formed(&why)) << "after erase_below(" << cut
                                     << "): " << why;
  }
  EXPECT_TRUE(s.empty());
}

TEST(SeqRangeSet, WellFormedExplainsNothingWhenHealthy) {
  SeqRangeSet s;
  s.insert(0, 4);
  s.insert(10, 14);
  std::string why = "untouched";
  EXPECT_TRUE(s.well_formed(&why));
  EXPECT_EQ(why, "untouched");  // only written on violation
  EXPECT_TRUE(s.well_formed(nullptr));
}

// Property test: random inserts/erases agree with a reference std::set of
// individual sequence numbers.
class SeqRangeSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeqRangeSetProperty, MatchesReferenceSet) {
  std::uint64_t state = GetParam();
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  SeqRangeSet s;
  std::set<std::int64_t> ref;
  for (int op = 0; op < 500; ++op) {
    const auto kind = next() % 10;
    if (kind < 7) {
      const std::int64_t start = static_cast<std::int64_t>(next() % 200);
      const std::int64_t len = 1 + static_cast<std::int64_t>(next() % 10);
      s.insert(start, start + len);
      for (std::int64_t i = start; i < start + len; ++i) ref.insert(i);
    } else {
      const std::int64_t below = static_cast<std::int64_t>(next() % 200);
      s.erase_below(below);
      ref.erase(ref.begin(), ref.lower_bound(below));
    }
    // Spot-check membership at random points.
    for (int probe = 0; probe < 10; ++probe) {
      const std::int64_t q = static_cast<std::int64_t>(next() % 220);
      ASSERT_EQ(s.contains(q), ref.count(q) > 0)
          << "op " << op << " seq " << q;
    }
    std::string why;
    ASSERT_TRUE(s.well_formed(&why)) << "op " << op << ": " << why;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqRangeSetProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 42, 1234));

}  // namespace
}  // namespace greencc::tcp
