// End-to-end observability tests: a traced scenario's event stream must
// agree with the aggregate statistics the result already reports, counters
// must match the per-flow transport stats, run profiling must be populated,
// and parallel repeats with per-run sinks must stay bit-identical (the
// `concurrency` label puts this file under the ThreadSanitizer build).

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "app/runner.h"
#include "app/scenario.h"
#include "trace/trace.h"

namespace greencc::app {
namespace {

using sim::SimTime;
using trace::EventClass;

// Small enough to run in milliseconds, big enough to overflow the
// bottleneck queue and force drops + retransmissions.
ScenarioConfig lossy_config(std::uint64_t seed = 1) {
  ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = seed;
  return config;
}

constexpr std::int64_t kTransfer = 50'000'000;

std::uint64_t find_counter(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters,
    const std::string& name) {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

TEST(Observability, EventCountsMatchAggregateStats) {
  Scenario s(lossy_config());
  FlowSpec flow;
  flow.bytes = units::Bytes{kTransfer};
  s.add_flow(flow);
  trace::VectorTraceSink sink;
  s.set_trace_sink(&sink);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);

  // Every queue drop (bottleneck + receiver backlog + NICs, which never
  // drop here) appears exactly once in the stream.
  EXPECT_EQ(sink.count(EventClass::kDrop),
            r.bottleneck.dropped + r.rx_backlog.dropped);
  EXPECT_GT(sink.count(EventClass::kDrop), 0u);

  std::int64_t retx = 0;
  for (const auto& f : r.flows) retx += f.retransmissions;
  EXPECT_EQ(sink.count(EventClass::kRetransmit),
            static_cast<std::uint64_t>(retx));

  std::int64_t rtos = 0;
  for (const auto& f : r.flows) rtos += f.timeouts;
  EXPECT_EQ(sink.count(EventClass::kRto), static_cast<std::uint64_t>(rtos));

  EXPECT_EQ(sink.count(EventClass::kEcnMark),
            r.bottleneck.ecn_marked + r.rx_backlog.ecn_marked);

  EXPECT_EQ(sink.count(EventClass::kFlowStart), r.flows.size());
  EXPECT_EQ(sink.count(EventClass::kFlowFinish), r.flows.size());
}

TEST(Observability, EventsAreTimeOrdered) {
  Scenario s(lossy_config());
  FlowSpec flow;
  flow.bytes = units::Bytes{kTransfer};
  s.add_flow(flow);
  trace::VectorTraceSink sink;
  s.set_trace_sink(&sink);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  ASSERT_GT(sink.events().size(), 100u);
  for (std::size_t i = 1; i < sink.events().size(); ++i) {
    ASSERT_LE(sink.events()[i - 1].t, sink.events()[i].t) << i;
  }
}

TEST(Observability, FilterMasksUnwantedClasses) {
  Scenario s(lossy_config());
  FlowSpec flow;
  flow.bytes = units::Bytes{kTransfer};
  s.add_flow(flow);
  trace::VectorTraceSink sink(trace::class_bit(EventClass::kDrop) |
                              trace::class_bit(EventClass::kRetransmit));
  s.set_trace_sink(&sink);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  EXPECT_GT(sink.count(EventClass::kDrop), 0u);
  EXPECT_EQ(sink.count(EventClass::kEnqueue), 0u);
  EXPECT_EQ(sink.count(EventClass::kCwnd), 0u);
  EXPECT_EQ(sink.count(EventClass::kAckSent), 0u);
}

TEST(Observability, CountersMatchFlowAndQueueStats) {
  Scenario s(lossy_config());
  FlowSpec flow;
  flow.bytes = units::Bytes{kTransfer};
  s.add_flow(flow);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);

  EXPECT_EQ(find_counter(r.counters, "switch:egress0.dropped"),
            r.bottleneck.dropped);
  EXPECT_EQ(find_counter(r.counters, "switch:egress0.peak_bytes"),
            static_cast<std::uint64_t>(r.bottleneck.max_bytes_seen.count()));
  EXPECT_EQ(find_counter(r.counters, "receiver:softirq.dropped"),
            r.rx_backlog.dropped);
  EXPECT_EQ(find_counter(r.counters, "switch.unroutable_packets"), 0u);
  EXPECT_GT(find_counter(r.counters, "host1.meter.tx_bytes"),
            static_cast<std::uint64_t>(kTransfer));
  EXPECT_GT(find_counter(r.counters, "host1.meter.energy_uj"), 0u);

  ASSERT_EQ(r.flows.size(), 1u);
  const auto& fc = r.flows[0].counters;
  EXPECT_EQ(find_counter(fc, "sender.retransmissions"),
            static_cast<std::uint64_t>(r.flows[0].retransmissions));
  EXPECT_EQ(find_counter(fc, "sender.segments_sent"),
            static_cast<std::uint64_t>(r.flows[0].segments_sent));
  EXPECT_GT(find_counter(fc, "receiver.acks_sent"), 0u);

  // Names are sorted, making the snapshot diffable across runs.
  EXPECT_TRUE(std::is_sorted(
      r.counters.begin(), r.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(Observability, RunProfilePopulated) {
  Scenario s(lossy_config());
  FlowSpec flow;
  flow.bytes = units::Bytes{kTransfer};
  s.add_flow(flow);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  EXPECT_GT(r.profile.events_executed, 1000u);
  EXPECT_GT(r.profile.peak_pending_events, 0u);
  EXPECT_GT(r.profile.wall_seconds, 0.0);
  EXPECT_GT(r.profile.events_per_sec, 0.0);
}

TEST(Observability, JsonlStreamMatchesQueueStats) {
  const std::string path = ::testing::TempDir() + "/obs_trace.jsonl";
  ScenarioResult r;
  {
    Scenario s(lossy_config());
    FlowSpec flow;
    flow.bytes = units::Bytes{kTransfer};
    s.add_flow(flow);
    trace::JsonlTraceSink sink(path);
    s.set_trace_sink(&sink);
    r = s.run();
  }  // sink flushed
  ASSERT_TRUE(r.all_completed);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::uint64_t lines = 0, drops = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_EQ(line.front(), '{') << line;
    ASSERT_EQ(line.back(), '}') << line;
    if (line.find("\"ev\":\"drop\"") != std::string::npos) ++drops;
  }
  EXPECT_GT(lines, 100u);
  EXPECT_EQ(drops, r.bottleneck.dropped + r.rx_backlog.dropped);
  std::remove(path.c_str());
}

// Per-run sinks must keep parallel repeats race-free and bit-identical.
// Forwards into externally owned vector sinks so the events survive the
// runner destroying the per-run sink.
class ForwardingSink : public trace::TraceSink {
 public:
  explicit ForwardingSink(trace::VectorTraceSink* target) : target_(target) {}

 protected:
  void record(const trace::Event& e) override { target_->emit(e); }

 private:
  trace::VectorTraceSink* target_;
};

TEST(Observability, ParallelTracedRepeatsAreDeterministic) {
  constexpr int kRepeats = 4;
  auto builder = [](std::uint64_t seed) {
    auto s = std::make_unique<Scenario>(lossy_config(seed));
    FlowSpec flow;
    flow.bytes = units::Bytes{kTransfer};
    s->add_flow(flow);
    return s;
  };

  auto run_with_jobs = [&](int jobs,
                           std::vector<trace::VectorTraceSink>& sinks) {
    RepeatOptions options;
    options.repeats = kRepeats;
    options.jobs = jobs;
    options.trace_sink_factory =
        [&sinks](std::size_t i) -> std::unique_ptr<trace::TraceSink> {
      return std::make_unique<ForwardingSink>(&sinks[i]);
    };
    return run_repeated(builder, options);
  };

  std::vector<trace::VectorTraceSink> serial_sinks(kRepeats);
  std::vector<trace::VectorTraceSink> parallel_sinks(kRepeats);
  const auto serial = run_with_jobs(1, serial_sinks);
  const auto parallel = run_with_jobs(4, parallel_sinks);

  for (int i = 0; i < kRepeats; ++i) {
    EXPECT_DOUBLE_EQ(serial.runs[i].total_energy.joules(),
                     parallel.runs[i].total_energy.joules());
    EXPECT_EQ(serial.runs[i].bottleneck.dropped,
              parallel.runs[i].bottleneck.dropped);
    // Identical event streams, run by run.
    ASSERT_EQ(serial_sinks[i].events().size(),
              parallel_sinks[i].events().size());
    ASSERT_GT(serial_sinks[i].events().size(), 100u);
    for (std::size_t k = 0; k < serial_sinks[i].events().size(); ++k) {
      const auto& a = serial_sinks[i].events()[k];
      const auto& b = parallel_sinks[i].events()[k];
      ASSERT_EQ(a.t, b.t);
      ASSERT_EQ(a.cls, b.cls);
      ASSERT_EQ(a.flow, b.flow);
      ASSERT_EQ(a.seq, b.seq);
    }
  }
}

}  // namespace
}  // namespace greencc::app
