// Transport integration tests: sender + receiver wired through simple port
// topologies, exercising delivery, SACK recovery, RACK loss detection, TLP,
// RTO, ECN echo and application-limited sending.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "cca/cca.h"
#include "energy/cpu.h"
#include "net/port.h"
#include "sim/simulator.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"

namespace greencc::tcp {
namespace {

using sim::SimTime;
using sim::Simulator;

/// A two-endpoint harness: sender -> forward port -> receiver -> reverse
/// port -> sender. Ports are configurable to create loss.
struct Harness {
  explicit Harness(const std::string& cca_name = "reno",
                   net::PortConfig forward_config = {},
                   TcpConfig tcp_config = {}) {
    forward_config.propagation = SimTime::microseconds(5);
    net::PortConfig reverse_config;
    reverse_config.propagation = SimTime::microseconds(5);

    cca::CcaConfig cca_config;
    cca_config.mss_bytes = tcp_config.mss_bytes();
    auto cc = cca::make_cca(cca_name, cca_config);

    forward = std::make_unique<net::QueuedPort>(sim, "fwd", forward_config,
                                                nullptr);
    reverse = std::make_unique<net::QueuedPort>(sim, "rev", reverse_config,
                                                nullptr);
    sender = std::make_unique<TcpSender>(sim, /*flow=*/1, /*src=*/1,
                                         /*dst=*/2, tcp_config,
                                         std::move(cc), &core,
                                         forward.get());
    receiver = std::make_unique<TcpReceiver>(sim, 1, 2, tcp_config,
                                             reverse.get());
    forward->set_next(receiver.get());
    reverse->set_next(sender.get());
  }

  void transfer(std::int64_t bytes) {
    sender->add_app_data(units::Bytes{bytes});
    sender->mark_app_eof();
    sender->start();
    sim.run_until(SimTime::seconds(30.0));
  }

  Simulator sim;
  energy::CpuCore core;
  std::unique_ptr<net::QueuedPort> forward;
  std::unique_ptr<net::QueuedPort> reverse;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;
};

TEST(Tcp, CleanTransferCompletes) {
  Harness h;
  h.transfer(1'000'000);
  EXPECT_TRUE(h.sender->complete());
  EXPECT_EQ(h.sender->stats().retransmissions, 0);
  EXPECT_EQ(h.sender->stats().timeouts, 0);
  EXPECT_EQ(h.receiver->rcv_nxt(), h.sender->snd_nxt());
}

TEST(Tcp, CompletionCallbackFiresOnce) {
  Harness h;
  int called = 0;
  h.sender->set_on_complete([&] { ++called; });
  h.transfer(100'000);
  EXPECT_EQ(called, 1);
}

TEST(Tcp, SubMssDataStaysQueued) {
  // add_app_data only releases whole segments; a sub-MSS remainder waits
  // for more data (like a Nagle-ish sender without a push).
  Harness h;
  h.sender->add_app_data(units::Bytes{1});
  h.sender->start();
  h.sim.run_until(SimTime::seconds(1.0));
  EXPECT_FALSE(h.sender->complete());
  EXPECT_EQ(h.sender->snd_nxt(), 0);
  // Topping it up past one MSS releases the segment.
  h.sender->add_app_data(units::Bytes{9000});
  h.sender->mark_app_eof();
  h.sender->start();
  h.sim.run_until(SimTime::seconds(2.0));
  EXPECT_TRUE(h.sender->complete());
  EXPECT_EQ(h.sender->snd_nxt(), 1);
}

TEST(Tcp, NotCompleteWithoutAppEof) {
  // A drained token bucket is not a finished transfer.
  Harness h;
  h.sender->add_app_data(units::Bytes{100'000});
  h.sender->start();
  h.sim.run_until(SimTime::seconds(1.0));
  EXPECT_FALSE(h.sender->complete());
  h.sender->mark_app_eof();
  EXPECT_TRUE(h.sender->complete());
}

TEST(Tcp, RttEstimateMatchesPath) {
  Harness h;
  h.transfer(2'000'000);
  // Path: 2 x 5 us propagation + serialization + receiver delack.
  EXPECT_GT(h.sender->rtt().srtt(), SimTime::microseconds(10));
  EXPECT_LT(h.sender->rtt().srtt(), SimTime::milliseconds(2));
}

TEST(Tcp, RecoversFromTailDropsWithoutSpuriousRetx) {
  // A shallow bottleneck queue forces drops; every retransmission should
  // correspond to a genuinely dropped packet (no spurious retx).
  net::PortConfig narrow;
  narrow.rate = units::BitRate::bps(1e9);
  narrow.queue_capacity_bytes = units::Bytes{30'000};
  Harness h("reno", narrow);
  h.transfer(5'000'000);
  EXPECT_TRUE(h.sender->complete());
  const auto drops = h.forward->queue_stats().dropped;
  EXPECT_GT(drops, 0u);
  // TLP probes may retransmit a delivered segment; allow a small surplus.
  EXPECT_LE(h.sender->stats().retransmissions,
            static_cast<std::int64_t>(drops) + 2 * h.sender->stats().timeouts +
                10);
  EXPECT_EQ(h.receiver->rcv_nxt(), h.sender->snd_nxt());
}

TEST(Tcp, SackRecoveryAvoidsRtoOnIsolatedLoss) {
  net::PortConfig narrow;
  narrow.rate = units::BitRate::bps(1e9);
  narrow.queue_capacity_bytes = units::Bytes{40'000};
  Harness h("cubic", narrow);
  h.transfer(3'000'000);
  EXPECT_TRUE(h.sender->complete());
  EXPECT_GT(h.forward->queue_stats().dropped, 0u);
  EXPECT_EQ(h.sender->stats().timeouts, 0);
}

TEST(Tcp, DuplicateDataIsAckedNotDelivered) {
  net::PortConfig narrow;
  narrow.rate = units::BitRate::bps(1e9);
  narrow.queue_capacity_bytes = units::Bytes{30'000};
  Harness h("reno", narrow);
  h.transfer(5'000'000);
  // Receiver counted some duplicates only if spurious retx occurred; either
  // way rcv_nxt must equal the stream length exactly once.
  EXPECT_EQ(h.receiver->rcv_nxt(), h.sender->snd_nxt());
}

/// A handler that drops everything — a blackhole for RTO tests.
class Blackhole : public net::PacketHandler {
 public:
  void handle(net::Packet) override {}
};

TEST(Tcp, RtoFiresOnTotalBlackhole) {
  Simulator sim;
  energy::CpuCore core;
  Blackhole hole;
  TcpConfig config;
  cca::CcaConfig cca_config;
  cca_config.mss_bytes = config.mss_bytes();
  TcpSender sender(sim, 1, 1, 2, config, cca::make_cca("reno", cca_config),
                   &core, &hole);
  sender.add_app_data(units::Bytes{100'000});
  sender.start();
  sim.run_until(SimTime::seconds(5.0));
  EXPECT_FALSE(sender.complete());
  EXPECT_GE(sender.stats().timeouts, 2);  // backed-off retries
}

TEST(Tcp, TlpConvertsTailLossIntoFastRecovery) {
  // Drop exactly the last packets of the transfer by shrinking the queue
  // late: easier variant — a queue sized so the final burst overflows.
  net::PortConfig narrow;
  narrow.rate = units::BitRate::bps(500e6);
  narrow.queue_capacity_bytes = units::Bytes{20'000};
  Harness h("reno", narrow);
  h.transfer(400'000);
  EXPECT_TRUE(h.sender->complete());
  // With TLP the total stall count stays small even with tail drops.
  EXPECT_LE(h.sender->stats().timeouts, 1);
}

TEST(Tcp, EcnEchoReachesSender) {
  net::PortConfig marking;
  marking.rate = units::BitRate::bps(1e9);
  marking.ecn_threshold_bytes = units::Bytes{20'000};
  Harness h("dctcp", marking);
  h.transfer(5'000'000);
  EXPECT_TRUE(h.sender->complete());
  EXPECT_GT(h.forward->queue_stats().ecn_marked, 0u);
  EXPECT_GT(h.sender->stats().ecn_echoes, 0);
  // DCTCP holds the queue near the threshold instead of overflowing it.
  EXPECT_EQ(h.forward->queue_stats().dropped, 0u);
}

TEST(Tcp, NonEcnFlowNeverMarked) {
  net::PortConfig marking;
  marking.rate = units::BitRate::bps(1e9);
  marking.ecn_threshold_bytes = units::Bytes{20'000};
  Harness h("reno", marking);
  h.transfer(2'000'000);
  EXPECT_EQ(h.forward->queue_stats().ecn_marked, 0u);
  EXPECT_EQ(h.sender->stats().ecn_echoes, 0);
}

TEST(Tcp, PacedSenderSmoothsBursts) {
  // BBR paces: the forward queue should stay shallow compared to a
  // window-dumping sender.
  net::PortConfig cfg;
  cfg.rate = units::BitRate::bps(10e9);
  Harness bbr_h("bbr", cfg);
  bbr_h.transfer(20'000'000);
  Harness reno_h("reno", cfg);
  reno_h.transfer(20'000'000);
  EXPECT_TRUE(bbr_h.sender->complete());
  EXPECT_TRUE(reno_h.sender->complete());
  EXPECT_LE(bbr_h.forward->queue_stats().max_bytes_seen,
            reno_h.forward->queue_stats().max_bytes_seen);
}

TEST(Tcp, InflightBoundedByLargestWindow) {
  // The pipe may transiently exceed the *current* window right after a
  // multiplicative decrease, but it can never exceed the largest window
  // granted so far (plus the one TLP probe).
  Harness h("reno");
  h.sender->add_app_data(units::Bytes{10'000'000});
  h.sender->start();
  std::int64_t max_cwnd = 0;
  for (int t = 1; t < 200; ++t) {
    h.sim.run_until(SimTime::microseconds(t * 100));
    max_cwnd = std::max(max_cwnd,
                        static_cast<std::int64_t>(
                            h.sender->congestion_control().cwnd_segments()));
    ASSERT_GE(h.sender->inflight_segments(), 0);
    ASSERT_LE(h.sender->inflight_segments(), max_cwnd + 1);
  }
}

TEST(Tcp, StatsCountSegmentsConsistently) {
  Harness h;
  h.transfer(1'000'000);
  const auto& s = h.sender->stats();
  EXPECT_EQ(s.segments_sent - s.retransmissions, h.sender->snd_nxt());
  EXPECT_EQ(s.delivered_segments, h.sender->snd_nxt());
  EXPECT_GT(s.acks_received, 0);
}

TEST(Tcp, AppLimitedFlowIdlesBetweenGrants) {
  Harness h;
  h.sender->add_app_data(units::Bytes{50'000});
  h.sender->start();
  h.sim.run_until(SimTime::seconds(1.0));
  const auto sent_before = h.sender->stats().segments_sent;
  // Backlog drained but no EOF: the flow idles, not completes.
  EXPECT_FALSE(h.sender->complete());
  EXPECT_GT(sent_before, 0);
  // Granting more data resumes the flow.
  h.sender->add_app_data(units::Bytes{50'000});
  h.sender->mark_app_eof();
  h.sender->start();
  h.sim.run_until(SimTime::seconds(31.0));
  EXPECT_GT(h.sender->stats().segments_sent, sent_before);
  EXPECT_TRUE(h.sender->complete());
}

TEST(Tcp, DelayedAckReducesAckTraffic) {
  Harness h;
  h.transfer(10'000'000);
  // With delack=2 the receiver sends roughly one ACK per two segments.
  EXPECT_LT(h.receiver->acks_sent(),
            h.receiver->segments_received() * 3 / 4 + 10);
  EXPECT_GT(h.receiver->acks_sent(), h.receiver->segments_received() / 3);
}

}  // namespace
}  // namespace greencc::tcp
