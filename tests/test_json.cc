#include "stats/json.h"

#include <gtest/gtest.h>

namespace greencc::stats {
namespace {

TEST(Json, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
}

TEST(Json, ScalarFields) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "cubic");
  w.field("count", std::int64_t{42});
  w.field("watts", 35.5);
  w.field("done", true);
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"cubic\",\"count\":42,\"watts\":35.5,\"done\":true}");
}

TEST(Json, Uint64AboveInt64MaxStaysUnsigned) {
  // Regression: value(std::uint64_t) used to cast through std::int64_t,
  // turning counters past 2^63-1 (RAPL µJ readings, event totals) negative.
  JsonWriter w;
  w.begin_object();
  w.field("energy_uj", std::uint64_t{18'446'744'073'709'551'615ull});
  w.field("small", std::uint64_t{7});
  w.end_object();
  EXPECT_EQ(w.str(), "{\"energy_uj\":18446744073709551615,\"small\":7}");
}

TEST(Json, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("runs").begin_array();
  w.begin_object().field("id", 1).end_object();
  w.begin_object().field("id", 2).end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"runs\":[{\"id\":1},{\"id\":2}]}");
}

TEST(Json, ArrayOfScalars) {
  JsonWriter w;
  w.begin_array().value(1).value(2).value(3).end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonWriter::escape(std::string("x\x01y")), "x\\u0001y");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array().value(1.0 / 0.0).value(0.0 / 0.0).end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Json, ValueWithoutKeyThrows) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.value(1), std::logic_error);
}

TEST(Json, KeyOutsideObjectThrows) {
  JsonWriter w;
  w.begin_array();
  EXPECT_THROW(w.key("oops"), std::logic_error);
}

TEST(Json, MismatchedCloseThrows) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.end_array(), std::logic_error);
}

TEST(Json, UnclosedDocumentThrowsOnStr) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.str(), std::logic_error);
}

TEST(Json, WritingPastCompleteThrows) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_THROW(w.begin_object(), std::logic_error);
}

}  // namespace
}  // namespace greencc::stats
