// InvariantAuditor tests: a healthy topology audits clean, and — the part
// that matters — every invariant class demonstrably FIRES on corrupted
// state. Each corruption test breaks exactly one private field through
// check::AuditCorruptor (befriended by the audited classes) or feeds a raw
// audit seam with impossible values, then asserts the auditor reports that
// specific invariant. A checker that cannot fail verifies nothing.

#include "check/auditor.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "app/scenario.h"
#include "cca/cca.h"
#include "check/check.h"
#include "energy/cpu.h"
#include "net/drr.h"
#include "net/packet.h"
#include "net/port.h"
#include "net/queue.h"
#include "net/switch.h"
#include "sim/simulator.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"
#include "trace/trace.h"

namespace greencc::check {

/// Test-only backdoor into the audited classes' private state. Each method
/// breaks one specific book so the matching invariant must fire.
struct AuditCorruptor {
  static void add_phantom_bytes(net::DropTailQueue& q, std::int64_t delta) {
    q.bytes_ += units::Bytes{delta};
  }
  static void forge_enqueue_count(net::DropTailQueue& q) {
    ++q.stats_.enqueued;
  }
  static void forge_port_tx_count(net::QueuedPort& p) { ++p.packets_sent_; }
  static void force_idle_with_backlog(net::QueuedPort& p) {
    p.transmitting_ = false;
  }
  static void set_negative_deficit(net::DrrPort& d, net::FlowId flow) {
    d.flows_.at(flow).deficit = units::Bytes{-5};
  }
  static void push_unknown_active_flow(net::DrrPort& d, net::FlowId flow) {
    d.active_.push_back(flow);
  }
  static void forge_unroutable(net::Switch& sw) { ++sw.unroutable_; }
  static void forge_sacked_out(tcp::TcpSender& s) { ++s.sacked_out_; }
  static void forge_pipe(tcp::TcpSender& s) { s.pipe_ += 3; }
  static void forge_snd_nxt(tcp::TcpSender& s) { ++s.snd_nxt_; }
  static void insert_raw_range(tcp::TcpReceiver& r, std::int64_t start,
                               std::int64_t end) {
    r.out_of_order_.ranges_[start] = end;
  }
  static void insert_raw_range(tcp::SeqRangeSet& s, std::int64_t start,
                               std::int64_t end) {
    s.ranges_[start] = end;
  }
};

namespace {

using sim::SimTime;
using sim::Simulator;

bool fires(const std::vector<Violation>& violations,
           const std::string& invariant) {
  for (const auto& v : violations) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

std::string render(const std::vector<Violation>& violations) {
  std::string out;
  for (const auto& v : violations) out += v.to_string() + "\n";
  return out;
}

net::Packet data_packet(net::FlowId flow, std::int32_t size) {
  net::Packet pkt;
  pkt.flow = flow;
  pkt.size_bytes = units::Bytes{size};
  return pkt;
}

/// Minimal sender<->receiver loop (mirrors test_tcp.cc's Harness) so the
/// TCP invariants can be audited — and corrupted — on a real scoreboard.
struct Harness {
  Harness() {
    net::PortConfig port_config;
    port_config.propagation = SimTime::microseconds(5);
    cca::CcaConfig cca_config;
    tcp::TcpConfig tcp_config;
    cca_config.mss_bytes = tcp_config.mss_bytes();
    forward = std::make_unique<net::QueuedPort>(sim, "fwd", port_config,
                                                nullptr);
    reverse = std::make_unique<net::QueuedPort>(sim, "rev", port_config,
                                                nullptr);
    sender = std::make_unique<tcp::TcpSender>(
        sim, /*flow=*/1, /*src=*/1, /*dst=*/2, tcp_config,
        cca::make_cca("reno", cca_config), &core, forward.get());
    receiver = std::make_unique<tcp::TcpReceiver>(sim, 1, 2, tcp_config,
                                                  reverse.get());
    forward->set_next(receiver.get());
    reverse->set_next(sender.get());
  }

  void transfer(std::int64_t bytes, SimTime deadline = SimTime::seconds(5)) {
    sender->add_app_data(units::Bytes{bytes});
    sender->mark_app_eof();
    sender->start();
    sim.run_until(deadline);
  }

  Simulator sim;
  energy::CpuCore core;
  std::unique_ptr<net::QueuedPort> forward;
  std::unique_ptr<net::QueuedPort> reverse;
  std::unique_ptr<tcp::TcpSender> sender;
  std::unique_ptr<tcp::TcpReceiver> receiver;
};

/// CCA stub with directly settable outputs, for the sanity checks.
class FakeCc : public cca::CongestionControl {
 public:
  void on_ack(const cca::AckEvent&) override {}
  void on_loss(const cca::LossEvent&) override {}
  void on_rto(SimTime) override {}
  double cwnd_segments() const override { return cwnd; }
  units::BitRate pacing_rate() const override {
    return units::BitRate::bps(pacing);
  }
  energy::CcaCost cost() const override { return {}; }
  std::string name() const override { return "fake"; }

  double cwnd = 10.0;
  double pacing = 0.0;
};

// ---------------------------------------------------------------- healthy

TEST(Auditor, HealthyTransferAuditsClean) {
  ScopedFailureHandler guard(&throwing_failure_handler);
  Harness h;
  InvariantAuditor::Config config;
  config.cadence = SimTime::milliseconds(1);
  InvariantAuditor auditor(config);
  auditor.watch_simulator(&h.sim);
  auditor.watch_port(h.forward.get());
  auditor.watch_port(h.reverse.get());
  auditor.watch_flow(1, h.sender.get(), h.receiver.get());
  h.forward->set_ledger(&auditor.ledger());
  h.reverse->set_ledger(&auditor.ledger());
  auditor.set_complete_topology(true);

  auditor.arm(h.sim);
  EXPECT_NO_THROW(h.transfer(500'000, SimTime::seconds(2)));
  auditor.disarm();
  EXPECT_NO_THROW(auditor.check_now());
  EXPECT_TRUE(h.sender->complete());
  EXPECT_GT(auditor.audits_run(), 10u);
}

TEST(Auditor, ScenarioWiresAuditorEndToEnd) {
  ScopedFailureHandler guard(&throwing_failure_handler);
  app::ScenarioConfig config;
  config.audit_interval = SimTime::milliseconds(1);
  app::Scenario scenario(std::move(config));
  ASSERT_NE(scenario.auditor(), nullptr);
  app::FlowSpec flow;
  flow.bytes = units::Bytes{20'000'000};
  scenario.add_flow(flow);
  const auto result = scenario.run();
  EXPECT_TRUE(result.all_completed);
  EXPECT_GT(scenario.auditor()->audits_run(), 1u);
}

TEST(Auditor, ScenarioWithoutIntervalHasNoAuditor) {
  app::Scenario scenario(app::ScenarioConfig{});
  EXPECT_EQ(scenario.auditor(), nullptr);
}

// ------------------------------------------------------------- simulator

TEST(Auditor, FiresOnClockRegression) {
  InvariantAuditor auditor;
  std::vector<Violation> out;
  auditor.audit_simulator_state(SimTime::seconds(2), 0, 0, 0, out);
  auditor.audit_simulator_state(SimTime::seconds(1), 0, 0, 0, out);
  EXPECT_TRUE(fires(out, "sim.time_monotonic")) << render(out);
}

TEST(Auditor, FiresOnPeakBelowPending) {
  InvariantAuditor auditor;
  std::vector<Violation> out;
  auditor.audit_simulator_state(SimTime::zero(), /*pending=*/7,
                                /*peak_pending=*/3, /*events_executed=*/0,
                                out);
  EXPECT_TRUE(fires(out, "sim.heap_high_water")) << render(out);
}

TEST(Auditor, FiresOnExecutedCountRegression) {
  InvariantAuditor auditor;
  std::vector<Violation> out;
  auditor.audit_simulator_state(SimTime::zero(), 0, 0, 100, out);
  auditor.audit_simulator_state(SimTime::seconds(1), 0, 0, 99, out);
  EXPECT_TRUE(fires(out, "sim.events_monotonic")) << render(out);
}

// ----------------------------------------------------------------- queue

TEST(Auditor, FiresOnQueuePhantomBytes) {
  net::DropTailQueue queue(units::Bytes{100'000});
  ASSERT_TRUE(queue.enqueue(data_packet(1, 1'000)));
  ASSERT_TRUE(queue.enqueue(data_packet(1, 1'000)));
  AuditCorruptor::add_phantom_bytes(queue, 37);

  InvariantAuditor auditor;
  auditor.watch_queue("q", &queue);
  const auto out = auditor.run_once();
  EXPECT_TRUE(fires(out, "queue.accounting")) << render(out);
}

TEST(Auditor, FiresOnQueueBookImbalance) {
  net::DropTailQueue queue(units::Bytes{100'000});
  ASSERT_TRUE(queue.enqueue(data_packet(1, 1'000)));
  AuditCorruptor::forge_enqueue_count(queue);  // enqueued++ with no packet

  InvariantAuditor auditor;
  auditor.watch_queue("q", &queue);
  const auto out = auditor.run_once();
  EXPECT_TRUE(fires(out, "queue.accounting")) << render(out);
}

TEST(Auditor, HealthyQueueAuditsClean) {
  net::DropTailQueue queue(units::Bytes{100'000});
  ASSERT_TRUE(queue.enqueue(data_packet(1, 1'000)));
  (void)queue.dequeue();

  InvariantAuditor auditor;
  auditor.watch_queue("q", &queue);
  const auto out = auditor.run_once();
  EXPECT_TRUE(out.empty()) << render(out);
}

// ------------------------------------------------------------------ port

TEST(Auditor, FiresOnPortTransmitCountMismatch) {
  Simulator sim;
  net::QueuedPort port(sim, "p0", net::PortConfig{}, nullptr);
  AuditCorruptor::forge_port_tx_count(port);  // sent 1, dequeued 0

  InvariantAuditor auditor;
  auditor.watch_port(&port);
  const auto out = auditor.run_once();
  EXPECT_TRUE(fires(out, "port.accounting")) << render(out);
}

TEST(Auditor, FiresOnPortIdleWithBacklog) {
  Simulator sim;
  net::QueuedPort port(sim, "p0", net::PortConfig{}, nullptr);
  port.handle(data_packet(1, 1'000));  // head is now serializing
  port.handle(data_packet(1, 1'000));  // second packet waits behind it
  ASSERT_FALSE(port.queue_stats().enqueued == 0);
  AuditCorruptor::force_idle_with_backlog(port);

  InvariantAuditor auditor;
  auditor.watch_port(&port);
  const auto out = auditor.run_once();
  EXPECT_TRUE(fires(out, "port.accounting")) << render(out);
}

// ------------------------------------------------------------------- drr

TEST(Auditor, FiresOnNegativeDrrDeficit) {
  Simulator sim;
  net::DrrPort drr(sim, "drr0", net::DrrPort::Config{}, nullptr);
  drr.set_weight(1, 1.0);  // creates the flow's scheduler state
  AuditCorruptor::set_negative_deficit(drr, 1);

  InvariantAuditor auditor;
  auditor.watch_drr("drr0", &drr);
  const auto out = auditor.run_once();
  EXPECT_TRUE(fires(out, "drr.scheduler")) << render(out);
}

TEST(Auditor, FiresOnUnknownFlowInDrrRound) {
  Simulator sim;
  net::DrrPort drr(sim, "drr0", net::DrrPort::Config{}, nullptr);
  AuditCorruptor::push_unknown_active_flow(drr, 42);

  InvariantAuditor auditor;
  auditor.watch_drr("drr0", &drr);
  const auto out = auditor.run_once();
  EXPECT_TRUE(fires(out, "drr.scheduler")) << render(out);
}

// ---------------------------------------------------------------- switch

TEST(Auditor, FiresOnUnroutablePackets) {
  Simulator sim;
  net::Switch sw(sim, "sw0");
  AuditCorruptor::forge_unroutable(sw);

  InvariantAuditor auditor;
  auditor.watch_switch("sw0", &sw);
  const auto out = auditor.run_once();
  EXPECT_TRUE(fires(out, "switch.accounting")) << render(out);
}

// ------------------------------------------------------------------- tcp

TEST(Auditor, FiresOnForgedSackCount) {
  Harness h;
  h.transfer(200'000);
  ASSERT_TRUE(h.sender->complete());
  AuditCorruptor::forge_sacked_out(*h.sender);

  InvariantAuditor auditor;
  auditor.watch_flow(1, h.sender.get(), h.receiver.get());
  const auto out = auditor.run_once();
  EXPECT_TRUE(fires(out, "tcp.scoreboard")) << render(out);
}

TEST(Auditor, FiresOnForgedPipe) {
  Harness h;
  h.transfer(200'000);
  AuditCorruptor::forge_pipe(*h.sender);

  InvariantAuditor auditor;
  auditor.watch_flow(1, h.sender.get(), h.receiver.get());
  const auto out = auditor.run_once();
  EXPECT_TRUE(fires(out, "tcp.scoreboard")) << render(out);
}

TEST(Auditor, FiresOnSndNxtBeyondAppData) {
  Harness h;
  h.transfer(200'000);
  AuditCorruptor::forge_snd_nxt(*h.sender);  // claims an unsent segment sent

  InvariantAuditor auditor;
  auditor.watch_flow(1, h.sender.get(), h.receiver.get());
  const auto out = auditor.run_once();
  EXPECT_TRUE(fires(out, "tcp.scoreboard")) << render(out);
}

TEST(Auditor, FiresOnMalformedReassemblyQueue) {
  Harness h;
  h.transfer(200'000);
  // An empty range [10, 10) can never be produced by insert(); only a
  // corrupted map holds one.
  AuditCorruptor::insert_raw_range(*h.receiver, h.receiver->rcv_nxt() + 10,
                                   h.receiver->rcv_nxt() + 10);

  InvariantAuditor auditor;
  auditor.watch_flow(1, h.sender.get(), h.receiver.get());
  const auto out = auditor.run_once();
  EXPECT_TRUE(fires(out, "tcp.reassembly")) << render(out);
}

TEST(Auditor, FiresOnReassemblyRangeBelowRcvNxt) {
  Harness h;
  h.transfer(200'000);
  ASSERT_GT(h.receiver->rcv_nxt(), 2);
  AuditCorruptor::insert_raw_range(*h.receiver, 0, 2);  // already delivered

  InvariantAuditor auditor;
  auditor.watch_flow(1, h.sender.get(), h.receiver.get());
  const auto out = auditor.run_once();
  EXPECT_TRUE(fires(out, "tcp.reassembly")) << render(out);
}

TEST(Auditor, FiresOnCumulativeAckRegression) {
  InvariantAuditor auditor;
  std::vector<Violation> out;
  auditor.audit_flow_progress(1, /*snd_una=*/50, /*rcv_nxt=*/60, out);
  auditor.audit_flow_progress(1, /*snd_una=*/40, /*rcv_nxt=*/60, out);
  EXPECT_TRUE(fires(out, "tcp.cumack_monotonic")) << render(out);
}

TEST(Auditor, FiresOnRcvNxtRegression) {
  InvariantAuditor auditor;
  std::vector<Violation> out;
  auditor.audit_flow_progress(1, 50, 60, out);
  auditor.audit_flow_progress(1, 50, 59, out);
  EXPECT_TRUE(fires(out, "tcp.rcvnxt_monotonic")) << render(out);
}

TEST(Auditor, FiresOnAckAheadOfReceiver) {
  InvariantAuditor auditor;
  std::vector<Violation> out;
  auditor.audit_flow_progress(1, /*snd_una=*/61, /*rcv_nxt=*/60, out);
  EXPECT_TRUE(fires(out, "tcp.cumack_bound")) << render(out);
}

// ------------------------------------------------------------------- cca

TEST(Auditor, FiresOnNonFiniteCwnd) {
  InvariantAuditor auditor;
  FakeCc cc;
  cc.cwnd = std::numeric_limits<double>::quiet_NaN();
  std::vector<Violation> out;
  auditor.audit_cca(1, cc, out);
  EXPECT_TRUE(fires(out, "cca.cwnd_sane")) << render(out);
}

TEST(Auditor, FiresOnSubUnityCwnd) {
  InvariantAuditor auditor;
  FakeCc cc;
  cc.cwnd = 0.25;
  std::vector<Violation> out;
  auditor.audit_cca(1, cc, out);
  EXPECT_TRUE(fires(out, "cca.cwnd_sane")) << render(out);
}

TEST(Auditor, FiresOnNegativePacingRate) {
  InvariantAuditor auditor;
  FakeCc cc;
  cc.pacing = -1.0;
  std::vector<Violation> out;
  auditor.audit_cca(1, cc, out);
  EXPECT_TRUE(fires(out, "cca.pacing_sane")) << render(out);
}

TEST(Auditor, HealthyCcaAuditsClean) {
  InvariantAuditor auditor;
  FakeCc cc;
  std::vector<Violation> out;
  auditor.audit_cca(1, cc, out);
  EXPECT_TRUE(out.empty()) << render(out);
}

// ---------------------------------------------------------- conservation

TEST(Auditor, FiresOnNegativeDataInFlight) {
  InvariantAuditor auditor;
  std::vector<Violation> out;
  auditor.audit_flow_conservation(1, /*data_sent=*/10, /*data_injected=*/0,
                                  /*data_delivered=*/8, /*data_dropped=*/5,
                                  /*data_fault_dropped=*/0, /*acks_sent=*/0,
                                  /*acks_injected=*/0, /*acks_received=*/0,
                                  /*acks_dropped=*/0,
                                  /*acks_fault_dropped=*/0, out);
  EXPECT_TRUE(fires(out, "conservation.data")) << render(out);
}

TEST(Auditor, FiresOnNegativeAckInFlight) {
  InvariantAuditor auditor;
  std::vector<Violation> out;
  auditor.audit_flow_conservation(1, 0, 0, 0, 0, 0, /*acks_sent=*/3,
                                  /*acks_injected=*/0, /*acks_received=*/4,
                                  /*acks_dropped=*/0,
                                  /*acks_fault_dropped=*/0, out);
  EXPECT_TRUE(fires(out, "conservation.ack")) << render(out);
}

TEST(Auditor, LedgerSeparatesDataAndAckDrops) {
  PacketLedger ledger;
  net::Packet data = data_packet(7, 1'000);
  net::Packet ack = data_packet(7, 60);
  ack.is_ack = true;
  ledger.on_drop(data);
  ledger.on_drop(data);
  ledger.on_drop(ack);
  EXPECT_EQ(ledger.data_drops(7), 2);
  EXPECT_EQ(ledger.ack_drops(7), 1);
  EXPECT_EQ(ledger.data_drops(8), 0);
  EXPECT_EQ(ledger.ack_drops(8), 0);
}

// --------------------------------------------------- reporting & aborting

TEST(Auditor, CheckNowRaisesThroughFailureHandler) {
  ScopedFailureHandler guard(&throwing_failure_handler);
  net::DropTailQueue queue(units::Bytes{100'000});
  ASSERT_TRUE(queue.enqueue(data_packet(1, 1'000)));
  AuditCorruptor::add_phantom_bytes(queue, 1);

  InvariantAuditor auditor;
  auditor.watch_queue("bad_queue", &queue);
  try {
    auditor.check_now();
    FAIL() << "check_now did not raise";
  } catch (const CheckFailedError& e) {
    EXPECT_NE(e.info.message.find("bad_queue"), std::string::npos)
        << e.info.message;
    EXPECT_NE(e.info.message.find("queue.accounting"), std::string::npos)
        << e.info.message;
  }
}

TEST(Auditor, ViolationsEmitInvariantTraceEvents) {
  ScopedFailureHandler guard(&throwing_failure_handler);
  net::DropTailQueue queue(units::Bytes{100'000});
  ASSERT_TRUE(queue.enqueue(data_packet(1, 1'000)));
  AuditCorruptor::add_phantom_bytes(queue, 1);

  trace::VectorTraceSink sink;
  InvariantAuditor auditor;
  auditor.watch_queue("bad_queue", &queue);
  auditor.set_trace(&sink);
  EXPECT_THROW(auditor.check_now(), CheckFailedError);

  ASSERT_GE(sink.count(trace::EventClass::kInvariant), 1u);
  const trace::Event& event = sink.events().front();
  EXPECT_EQ(event.cls, trace::EventClass::kInvariant);
  EXPECT_EQ(event.src, "bad_queue");
  EXPECT_FALSE(event.detail.empty());
}

TEST(Auditor, ArmedAuditorCatchesMidRunCorruption) {
  ScopedFailureHandler guard(&throwing_failure_handler);
  Harness h;
  InvariantAuditor::Config config;
  config.cadence = SimTime::milliseconds(1);
  InvariantAuditor auditor(config);
  auditor.watch_flow(1, h.sender.get(), h.receiver.get());
  auditor.arm(h.sim);

  // Corrupt the scoreboard after ~0.5 ms of simulated transfer; the next
  // cadence tick must catch it and abort the run through the handler.
  h.sim.schedule(SimTime::microseconds(500),
                 [&h] { AuditCorruptor::forge_pipe(*h.sender); });
  h.sender->add_app_data(units::Bytes{5'000'000});
  h.sender->mark_app_eof();
  h.sender->start();
  EXPECT_THROW(h.sim.run_until(SimTime::seconds(5)), CheckFailedError);
  auditor.disarm();
}

}  // namespace
}  // namespace greencc::check
