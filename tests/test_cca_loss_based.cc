// Unit tests for the loss-based window algorithms sharing the
// LossBasedCca machinery: Reno, Scalable, HighSpeed, Westwood and the
// constant-cwnd baseline. CUBIC and DCTCP have dedicated files.

#include <gtest/gtest.h>

#include <memory>

#include "cca/cca.h"
#include "cca/highspeed.h"
#include "cca/reno.h"
#include "cca/scalable.h"
#include "cca/westwood.h"

namespace greencc::cca {
namespace {

using sim::SimTime;

CcaConfig config() {
  CcaConfig c;
  c.mss_bytes = units::Bytes{1448};
  c.initial_cwnd = 10;
  return c;
}

AckEvent ack_of(std::int64_t acked, std::int64_t inflight = 10,
                SimTime now = SimTime::milliseconds(1)) {
  AckEvent ev;
  ev.now = now;
  ev.acked_segments = acked;
  ev.rtt = SimTime::microseconds(100);
  ev.srtt = SimTime::microseconds(100);
  ev.min_rtt = SimTime::microseconds(100);
  ev.inflight = inflight;
  ev.delivered = acked;
  return ev;
}

LossEvent loss_of(std::int64_t inflight) {
  LossEvent ev;
  ev.now = SimTime::milliseconds(1);
  ev.inflight = inflight;
  ev.lost_segments = 1;
  return ev;
}

// --- generic contract, parameterized over the loss-based family ---

class LossBasedContract : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<CongestionControl> cc_ = make_cca(GetParam(), config());
};

TEST_P(LossBasedContract, StartsAtInitialWindow) {
  EXPECT_DOUBLE_EQ(cc_->cwnd_segments(), 10.0);
}

TEST_P(LossBasedContract, SlowStartDoublesPerRtt) {
  // One ACK per delivered segment: cwnd should grow by ~1 per ACK in slow
  // start (exponential per RTT).
  const double before = cc_->cwnd_segments();
  for (int i = 0; i < 10; ++i) cc_->on_ack(ack_of(1));
  EXPECT_NEAR(cc_->cwnd_segments(), before + 10.0, 1e-9);
}

TEST_P(LossBasedContract, LossShrinksWindow) {
  for (int i = 0; i < 30; ++i) cc_->on_ack(ack_of(1));
  const double before = cc_->cwnd_segments();
  cc_->on_loss(loss_of(static_cast<std::int64_t>(before)));
  EXPECT_LT(cc_->cwnd_segments(), before);
  EXPECT_GE(cc_->cwnd_segments(), 2.0);
}

TEST_P(LossBasedContract, RtoCollapsesToOneSegment) {
  for (int i = 0; i < 30; ++i) cc_->on_ack(ack_of(1));
  cc_->on_rto(SimTime::milliseconds(5));
  EXPECT_DOUBLE_EQ(cc_->cwnd_segments(), 1.0);
}

TEST_P(LossBasedContract, WindowNeverBelowOne) {
  for (int i = 0; i < 5; ++i) {
    cc_->on_rto(SimTime::milliseconds(i + 1));
    cc_->on_loss(loss_of(1));
    EXPECT_GE(cc_->cwnd_segments(), 1.0);
  }
}

TEST_P(LossBasedContract, RecoveryFreezesGrowth) {
  for (int i = 0; i < 20; ++i) cc_->on_ack(ack_of(1));
  const double before = cc_->cwnd_segments();
  auto ev = ack_of(1);
  ev.in_recovery = true;
  for (int i = 0; i < 10; ++i) cc_->on_ack(ev);
  EXPECT_DOUBLE_EQ(cc_->cwnd_segments(), before);
}

TEST_P(LossBasedContract, NoPacingByDefault) {
  EXPECT_DOUBLE_EQ(cc_->pacing_rate().bps(), 0.0);
}

TEST_P(LossBasedContract, CostIsPositive) {
  EXPECT_GT(cc_->cost().per_ack_ns, 0.0);
  EXPECT_GE(cc_->cost().per_packet_ns, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Family, LossBasedContract,
                         ::testing::Values("reno", "scalable", "highspeed",
                                           "westwood"));

// --- Reno specifics ---

TEST(Reno, CongestionAvoidanceGrowsOnePerRtt) {
  Reno reno(config());
  for (int i = 0; i < 30; ++i) reno.on_ack(ack_of(1));  // slow start to 40
  const double w = reno.cwnd_segments();
  reno.on_loss(loss_of(static_cast<std::int64_t>(w)));  // enter CA
  const double after_loss = reno.cwnd_segments();
  EXPECT_NEAR(after_loss, w / 2.0, 1.0);
  // One RTT worth of ACKs (cwnd segments) grows the window by ~1.
  const int acks = static_cast<int>(after_loss);
  for (int i = 0; i < acks; ++i) reno.on_ack(ack_of(1));
  EXPECT_NEAR(reno.cwnd_segments(), after_loss + 1.0, 0.1);
}

TEST(Reno, HalvesOnLoss) {
  Reno reno(config());
  for (int i = 0; i < 54; ++i) reno.on_ack(ack_of(1));
  EXPECT_NEAR(reno.cwnd_segments(), 64.0, 1e-9);
  reno.on_loss(loss_of(64));
  EXPECT_NEAR(reno.cwnd_segments(), 32.0, 1e-9);
}

// --- Scalable specifics ---

TEST(Scalable, MimdGrowth) {
  Scalable s(config());
  for (int i = 0; i < 90; ++i) s.on_ack(ack_of(1));  // slow start to 100
  s.on_loss(loss_of(100));
  const double w0 = s.cwnd_segments();
  EXPECT_NEAR(w0, 87.5, 0.5);  // 0.875 decrease
  for (int i = 0; i < 100; ++i) s.on_ack(ack_of(1));
  // +0.01 per acked segment.
  EXPECT_NEAR(s.cwnd_segments(), w0 + 1.0, 1e-6);
}

// --- HighSpeed specifics ---

TEST(HighSpeed, RenoCompatibleAtSmallWindows) {
  EXPECT_DOUBLE_EQ(HighSpeed::a_of_w(10.0), 1.0);
  EXPECT_DOUBLE_EQ(HighSpeed::b_of_w(10.0), 0.5);
  EXPECT_DOUBLE_EQ(HighSpeed::a_of_w(38.0), 1.0);
  EXPECT_DOUBLE_EQ(HighSpeed::b_of_w(38.0), 0.5);
}

TEST(HighSpeed, IncreaseGrowsWithWindow) {
  double prev = HighSpeed::a_of_w(50.0);
  for (double w : {100.0, 1000.0, 10000.0, 83000.0}) {
    const double a = HighSpeed::a_of_w(w);
    EXPECT_GT(a, prev) << "w=" << w;
    prev = a;
  }
}

TEST(HighSpeed, DecreaseShrinksWithWindow) {
  double prev = HighSpeed::b_of_w(50.0);
  for (double w : {100.0, 1000.0, 10000.0, 83000.0}) {
    const double b = HighSpeed::b_of_w(w);
    EXPECT_LT(b, prev) << "w=" << w;
    EXPECT_GE(b, 0.1);
    prev = b;
  }
}

TEST(HighSpeed, Rfc3649ReferencePoint) {
  // RFC 3649: at the reference window 83000, b(w) bottoms out at 0.1 and
  // a(w) lands in the tens.
  EXPECT_NEAR(HighSpeed::b_of_w(83000.0), 0.1, 1e-9);
  EXPECT_GT(HighSpeed::a_of_w(83000.0), 50.0);
  EXPECT_LT(HighSpeed::a_of_w(83000.0), 90.0);
}

// --- Westwood specifics ---

TEST(Westwood, BandwidthEstimateConverges) {
  Westwood w(config());
  // Deliver 100 segments per 1 ms RTT: 1448*8*100 / 1 ms = 1.158 Gb/s.
  SimTime now = SimTime::zero();
  for (int rtt = 0; rtt < 50; ++rtt) {
    for (int i = 0; i < 100; ++i) {
      auto ev = ack_of(1, 100, now);
      ev.srtt = SimTime::milliseconds(1);
      w.on_ack(ev);
    }
    now += SimTime::milliseconds(1);
  }
  EXPECT_NEAR(w.bandwidth_estimate_bps(), 1448 * 8 * 100 * 1000.0, 2e8);
}

TEST(Westwood, LossSetsWindowToBdp) {
  Westwood w(config());
  SimTime now = SimTime::zero();
  for (int rtt = 0; rtt < 50; ++rtt) {
    for (int i = 0; i < 100; ++i) {
      auto ev = ack_of(1, 100, now);
      ev.srtt = SimTime::milliseconds(1);
      ev.rtt = SimTime::milliseconds(1);
      ev.min_rtt = SimTime::milliseconds(1);
      w.on_ack(ev);
    }
    now += SimTime::milliseconds(1);
  }
  w.on_loss(loss_of(200));
  // BWE * RTTmin / MSS ~= 100 segments.
  EXPECT_NEAR(w.cwnd_segments(), 100.0, 15.0);
}

// --- baseline ---

TEST(Baseline, WindowNeverMoves) {
  ConstantCwndBaseline base(config(), 10'000.0);
  EXPECT_DOUBLE_EQ(base.cwnd_segments(), 10'000.0);
  base.on_ack(ack_of(100));
  base.on_loss(loss_of(10'000));
  base.on_rto(SimTime::seconds(1.0));
  EXPECT_DOUBLE_EQ(base.cwnd_segments(), 10'000.0);
}

TEST(Baseline, CheapestPerAck) {
  ConstantCwndBaseline base(config());
  Reno reno(config());
  EXPECT_LT(base.cost().per_ack_ns, reno.cost().per_ack_ns);
}

}  // namespace
}  // namespace greencc::cca
