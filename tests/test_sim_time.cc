#include "sim/time.h"

#include <gtest/gtest.h>

namespace greencc::sim {
namespace {

TEST(SimTime, FactoriesAgree) {
  EXPECT_EQ(SimTime::microseconds(1), SimTime::nanoseconds(1'000));
  EXPECT_EQ(SimTime::milliseconds(1), SimTime::microseconds(1'000));
  EXPECT_EQ(SimTime::seconds(1.0), SimTime::milliseconds(1'000));
  EXPECT_EQ(SimTime::zero().ns(), 0);
}

TEST(SimTime, ConversionRoundTrips) {
  const SimTime t = SimTime::nanoseconds(1'234'567'890);
  EXPECT_EQ(t.ns(), 1'234'567'890);
  EXPECT_DOUBLE_EQ(t.us(), 1'234'567.890);
  EXPECT_DOUBLE_EQ(t.ms(), 1'234.567890);
  EXPECT_DOUBLE_EQ(t.sec(), 1.234567890);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::microseconds(10);
  const SimTime b = SimTime::microseconds(3);
  EXPECT_EQ((a + b).ns(), 13'000);
  EXPECT_EQ((a - b).ns(), 7'000);
  EXPECT_EQ((a * 3).ns(), 30'000);
  EXPECT_EQ((3 * a).ns(), 30'000);
  EXPECT_EQ((a / 2).ns(), 5'000);
  EXPECT_DOUBLE_EQ(a / b, 10.0 / 3.0);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = SimTime::microseconds(5);
  t += SimTime::microseconds(2);
  EXPECT_EQ(t, SimTime::microseconds(7));
  t -= SimTime::microseconds(4);
  EXPECT_EQ(t, SimTime::microseconds(3));
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::nanoseconds(1), SimTime::nanoseconds(2));
  EXPECT_GT(SimTime::seconds(1.0), SimTime::milliseconds(999));
  EXPECT_LE(SimTime::zero(), SimTime::zero());
  EXPECT_GE(SimTime::max(), SimTime::seconds(1e9));
}

TEST(SimTime, Scaled) {
  const SimTime t = SimTime::microseconds(100);
  EXPECT_EQ(t.scaled(0.5), SimTime::microseconds(50));
  EXPECT_EQ(t.scaled(2.0), SimTime::microseconds(200));
}

TEST(SimTime, SerializationDelayMatchesRateMath) {
  // 1500 bytes at 10 Gb/s = 1.2 us.
  EXPECT_EQ(serialization_delay(1500, 10e9), SimTime::nanoseconds(1'200));
  // 9000 bytes at 10 Gb/s = 7.2 us.
  EXPECT_EQ(serialization_delay(9000, 10e9), SimTime::nanoseconds(7'200));
  // 64 bytes at 1 Gb/s = 512 ns.
  EXPECT_EQ(serialization_delay(64, 1e9), SimTime::nanoseconds(512));
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::seconds(1.5).to_string(), "1.500s");
  EXPECT_EQ(SimTime::milliseconds(250).to_string(), "250.000ms");
  EXPECT_EQ(SimTime::microseconds(42).to_string(), "42.000us");
}

TEST(SimTime, ToStringUnitBoundariesDoNotCarry) {
  // Values whose %.3f rendering rounds up a unit must switch to the larger
  // unit: 999,999,999 ns is 999.999999 ms, which would print "1000.000ms"
  // if the unit were chosen from the raw nanosecond count.
  EXPECT_EQ(SimTime::nanoseconds(999'999'999).to_string(), "1.000s");
  EXPECT_EQ(SimTime::nanoseconds(999'999'499).to_string(), "999.999ms");
  EXPECT_EQ(SimTime::nanoseconds(1'000'000'000).to_string(), "1.000s");
  EXPECT_EQ(SimTime::nanoseconds(1'000'000).to_string(), "1.000ms");
  EXPECT_EQ(SimTime::nanoseconds(999'999).to_string(), "999.999us");
  // Negative values mirror the positive boundaries.
  EXPECT_EQ(SimTime::nanoseconds(-999'999'999).to_string(), "-1.000s");
  EXPECT_EQ(SimTime::nanoseconds(-999'999'499).to_string(), "-999.999ms");
  EXPECT_EQ(SimTime::nanoseconds(-999'999).to_string(), "-999.999us");
}

}  // namespace
}  // namespace greencc::sim
