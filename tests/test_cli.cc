// Smoke tests for the greencc_run CLI: flags parse, runs complete, JSON is
// written. The binary path is injected by CMake.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(GREENCC_RUN_PATH) + " " + args + " > /dev/null 2>&1";
  return std::system(cmd.c_str());
}

// std::system returns a wait status; the CLI's documented exit codes
// (0 complete, 2 usage, 75 partial results) live in WEXITSTATUS.
int exit_code(int status) {
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The raw text of `"key":<value>` up to the next comma/brace — exact
// string comparison, so two runs agree only if the doubles are identical.
std::string json_field(const std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = doc.find(needle);
  if (pos == std::string::npos) return {};
  const auto start = pos + needle.size();
  const auto end = doc.find_first_of(",}", start);
  return doc.substr(start, end - start);
}

TEST(Cli, HelpAndListExitCleanly) {
  EXPECT_EQ(run_cli("--help"), 0);
  EXPECT_EQ(run_cli("--list-ccas"), 0);
}

TEST(Cli, UnknownFlagFails) { EXPECT_NE(run_cli("--frobnicate"), 0); }

// The usage contract: any flag-parse failure aborts with usage on stderr
// and exit code 2 — never a half-configured run under defaults.
TEST(Cli, UnknownFlagExitsUsageCode) {
  EXPECT_EQ(exit_code(run_cli("--frobnicate")), 2);
}

TEST(Cli, UnknownScheduleExitsUsageCode) {
  EXPECT_EQ(exit_code(run_cli("--schedule not-a-schedule --bytes 1e6")), 2);
}

TEST(Cli, WeightedSchedulePrefixStillParses) {
  EXPECT_EQ(run_cli("--schedule weighted:3 --flows 2 --bytes 1e6"), 0);
}

TEST(Cli, UnknownCcaFails) {
  EXPECT_NE(run_cli("--cca not-a-cca --bytes 1e6"), 0);
}

TEST(Cli, RunsAndWritesJson) {
  const std::string json = ::testing::TempDir() + "/cli_out.json";
  ASSERT_EQ(run_cli("--cca cubic --bytes 5e7 --json " + json), 0);
  std::ifstream in(json);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_NE(doc.find("\"cca\":\"cubic\""), std::string::npos);
  EXPECT_NE(doc.find("\"all_completed\":true"), std::string::npos);
  std::remove(json.c_str());
}

TEST(Cli, JsonIncludesProfileAndCounters) {
  const std::string json = ::testing::TempDir() + "/cli_prof.json";
  ASSERT_EQ(run_cli("--cca cubic --bytes 5e7 --json " + json), 0);
  std::ifstream in(json);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_NE(doc.find("\"profile\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"events_executed\":"), std::string::npos);
  EXPECT_NE(doc.find("\"peak_pending_events\":"), std::string::npos);
  EXPECT_NE(doc.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"switch:egress0.dropped\":"), std::string::npos);
  EXPECT_NE(doc.find("\"sender.retransmissions\":"), std::string::npos);
  std::remove(json.c_str());
}

TEST(Cli, TraceOutWritesJsonl) {
  const std::string trace = ::testing::TempDir() + "/cli_trace.jsonl";
  ASSERT_EQ(run_cli("--cca cubic --bytes 5e7 --trace-out " + trace), 0);
  std::ifstream in(trace);
  ASSERT_TRUE(in.good());
  std::string first;
  ASSERT_TRUE(std::getline(in, first));
  EXPECT_EQ(first.rfind("{\"t\":", 0), 0u) << first;
  std::stringstream buffer;
  buffer << first << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_NE(doc.find("\"ev\":\"flow_start\""), std::string::npos);
  EXPECT_NE(doc.find("\"ev\":\"flow_finish\""), std::string::npos);
  std::remove(trace.c_str());
}

TEST(Cli, TraceFilterRestrictsClasses) {
  const std::string trace = ::testing::TempDir() + "/cli_trace_drop.jsonl";
  ASSERT_EQ(run_cli("--cca cubic --bytes 5e7 --trace-out " + trace +
                    " --trace-filter drop,retransmit"),
            0);
  std::ifstream in(trace);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_EQ(doc.find("\"ev\":\"enqueue\""), std::string::npos);
  EXPECT_NE(doc.find("\"ev\":\"drop\""), std::string::npos);
  std::remove(trace.c_str());
}

TEST(Cli, BadTraceFilterFails) {
  EXPECT_NE(run_cli("--trace-filter not-a-class --bytes 1e6"), 0);
}

TEST(Cli, CountersFlagRuns) {
  EXPECT_EQ(run_cli("--cca cubic --bytes 2e7 --counters"), 0);
}

TEST(Cli, PerRepeatTraceFiles) {
  const std::string base = ::testing::TempDir() + "/cli_multi.jsonl";
  ASSERT_EQ(
      run_cli("--cca cubic --bytes 2e7 --repeats 2 --trace-out " + base), 0);
  for (int r = 0; r < 2; ++r) {
    const std::string path = base + ".cubic-r" + std::to_string(r);
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::remove(path.c_str());
  }
}

TEST(Cli, SrptScheduleWithSizes) {
  EXPECT_EQ(run_cli("--schedule srpt --sizes 5e7,2e7,1e7"), 0);
}

// --- the supervised sweep path ---

TEST(Cli, QuarantinedCcaExitsPartialButKeepsGoodRuns) {
  // One bad algorithm must not abort the sweep: cubic's runs complete, the
  // bad cell quarantines, and the process exits 75 (partial results).
  const std::string json = ::testing::TempDir() + "/cli_partial.json";
  const int status =
      run_cli("--cca cubic,not-a-cca --bytes 2e7 --json " + json);
  EXPECT_EQ(exit_code(status), 75);
  const std::string doc = slurp(json);
  EXPECT_NE(doc.find("\"cca\":\"cubic\""), std::string::npos);
  EXPECT_EQ(json_field(doc, "quarantined"), "1") << doc;
  EXPECT_NE(doc.find("\"outcome\":\"quarantined\""), std::string::npos);
  std::remove(json.c_str());
}

TEST(Cli, EventBudgetExitsPartial) {
  // A budget far below what the transfer needs cuts the run; the health
  // report calls it timed_out and the exit code flags partial results.
  const std::string json = ::testing::TempDir() + "/cli_budget.json";
  const int status =
      run_cli("--cca cubic --bytes 5e7 --event-budget 1000 --json " + json);
  EXPECT_EQ(exit_code(status), 75);
  const std::string doc = slurp(json);
  EXPECT_EQ(json_field(doc, "timed_out"), "1") << doc;
  EXPECT_NE(doc.find("event budget"), std::string::npos);
  std::remove(json.c_str());
}

TEST(Cli, JournalResumeReproducesEnergiesExactly) {
  const std::string journal = ::testing::TempDir() + "/cli_journal.jsonl";
  const std::string json_a = ::testing::TempDir() + "/cli_resume_a.json";
  const std::string json_b = ::testing::TempDir() + "/cli_resume_b.json";
  std::remove(journal.c_str());
  const std::string common = "--cca cubic --bytes 2e7 --repeats 2 --journal " +
                             journal;
  ASSERT_EQ(run_cli(common + " --json " + json_a), 0);
  // Second invocation restores every run from the journal instead of
  // simulating, and must aggregate bit-identical numbers.
  ASSERT_EQ(run_cli(common + " --resume --json " + json_b), 0);
  const std::string a = slurp(json_a);
  const std::string b = slurp(json_b);
  EXPECT_EQ(json_field(b, "resumed"), "2") << b;
  for (const char* key : {"energy_joules_mean", "energy_joules_stddev",
                          "power_watts_mean", "duration_sec_mean",
                          "retransmissions_mean"}) {
    EXPECT_EQ(json_field(a, key), json_field(b, key)) << key;
    EXPECT_FALSE(json_field(a, key).empty()) << key;
  }
  std::remove(journal.c_str());
  std::remove(json_a.c_str());
  std::remove(json_b.c_str());
}

TEST(Cli, FsiScheduleMultiFlow) {
  EXPECT_EQ(run_cli("--flows 2 --schedule fsi --bytes 5e7"), 0);
}

}  // namespace
