// Smoke tests for the greencc_run CLI: flags parse, runs complete, JSON is
// written. The binary path is injected by CMake.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(GREENCC_RUN_PATH) + " " + args + " > /dev/null 2>&1";
  return std::system(cmd.c_str());
}

TEST(Cli, HelpAndListExitCleanly) {
  EXPECT_EQ(run_cli("--help"), 0);
  EXPECT_EQ(run_cli("--list-ccas"), 0);
}

TEST(Cli, UnknownFlagFails) { EXPECT_NE(run_cli("--frobnicate"), 0); }

TEST(Cli, UnknownCcaFails) {
  EXPECT_NE(run_cli("--cca not-a-cca --bytes 1e6"), 0);
}

TEST(Cli, RunsAndWritesJson) {
  const std::string json = ::testing::TempDir() + "/cli_out.json";
  ASSERT_EQ(run_cli("--cca cubic --bytes 5e7 --json " + json), 0);
  std::ifstream in(json);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_NE(doc.find("\"cca\":\"cubic\""), std::string::npos);
  EXPECT_NE(doc.find("\"all_completed\":true"), std::string::npos);
  std::remove(json.c_str());
}

TEST(Cli, SrptScheduleWithSizes) {
  EXPECT_EQ(run_cli("--schedule srpt --sizes 5e7,2e7,1e7"), 0);
}

TEST(Cli, FsiScheduleMultiFlow) {
  EXPECT_EQ(run_cli("--flows 2 --schedule fsi --bytes 5e7"), 0);
}

}  // namespace
