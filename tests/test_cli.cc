// Smoke tests for the greencc_run CLI: flags parse, runs complete, JSON is
// written. The binary path is injected by CMake.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(GREENCC_RUN_PATH) + " " + args + " > /dev/null 2>&1";
  return std::system(cmd.c_str());
}

TEST(Cli, HelpAndListExitCleanly) {
  EXPECT_EQ(run_cli("--help"), 0);
  EXPECT_EQ(run_cli("--list-ccas"), 0);
}

TEST(Cli, UnknownFlagFails) { EXPECT_NE(run_cli("--frobnicate"), 0); }

TEST(Cli, UnknownCcaFails) {
  EXPECT_NE(run_cli("--cca not-a-cca --bytes 1e6"), 0);
}

TEST(Cli, RunsAndWritesJson) {
  const std::string json = ::testing::TempDir() + "/cli_out.json";
  ASSERT_EQ(run_cli("--cca cubic --bytes 5e7 --json " + json), 0);
  std::ifstream in(json);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_NE(doc.find("\"cca\":\"cubic\""), std::string::npos);
  EXPECT_NE(doc.find("\"all_completed\":true"), std::string::npos);
  std::remove(json.c_str());
}

TEST(Cli, JsonIncludesProfileAndCounters) {
  const std::string json = ::testing::TempDir() + "/cli_prof.json";
  ASSERT_EQ(run_cli("--cca cubic --bytes 5e7 --json " + json), 0);
  std::ifstream in(json);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_NE(doc.find("\"profile\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"events_executed\":"), std::string::npos);
  EXPECT_NE(doc.find("\"peak_pending_events\":"), std::string::npos);
  EXPECT_NE(doc.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"switch:egress0.dropped\":"), std::string::npos);
  EXPECT_NE(doc.find("\"sender.retransmissions\":"), std::string::npos);
  std::remove(json.c_str());
}

TEST(Cli, TraceOutWritesJsonl) {
  const std::string trace = ::testing::TempDir() + "/cli_trace.jsonl";
  ASSERT_EQ(run_cli("--cca cubic --bytes 5e7 --trace-out " + trace), 0);
  std::ifstream in(trace);
  ASSERT_TRUE(in.good());
  std::string first;
  ASSERT_TRUE(std::getline(in, first));
  EXPECT_EQ(first.rfind("{\"t\":", 0), 0u) << first;
  std::stringstream buffer;
  buffer << first << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_NE(doc.find("\"ev\":\"flow_start\""), std::string::npos);
  EXPECT_NE(doc.find("\"ev\":\"flow_finish\""), std::string::npos);
  std::remove(trace.c_str());
}

TEST(Cli, TraceFilterRestrictsClasses) {
  const std::string trace = ::testing::TempDir() + "/cli_trace_drop.jsonl";
  ASSERT_EQ(run_cli("--cca cubic --bytes 5e7 --trace-out " + trace +
                    " --trace-filter drop,retransmit"),
            0);
  std::ifstream in(trace);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_EQ(doc.find("\"ev\":\"enqueue\""), std::string::npos);
  EXPECT_NE(doc.find("\"ev\":\"drop\""), std::string::npos);
  std::remove(trace.c_str());
}

TEST(Cli, BadTraceFilterFails) {
  EXPECT_NE(run_cli("--trace-filter not-a-class --bytes 1e6"), 0);
}

TEST(Cli, CountersFlagRuns) {
  EXPECT_EQ(run_cli("--cca cubic --bytes 2e7 --counters"), 0);
}

TEST(Cli, PerRepeatTraceFiles) {
  const std::string base = ::testing::TempDir() + "/cli_multi.jsonl";
  ASSERT_EQ(
      run_cli("--cca cubic --bytes 2e7 --repeats 2 --trace-out " + base), 0);
  for (int r = 0; r < 2; ++r) {
    const std::string path = base + ".cubic-r" + std::to_string(r);
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::remove(path.c_str());
  }
}

TEST(Cli, SrptScheduleWithSizes) {
  EXPECT_EQ(run_cli("--schedule srpt --sizes 5e7,2e7,1e7"), 0);
}

TEST(Cli, FsiScheduleMultiFlow) {
  EXPECT_EQ(run_cli("--flows 2 --schedule fsi --bytes 5e7"), 0);
}

}  // namespace
