#include "tcp/rtt.h"

#include <gtest/gtest.h>

namespace greencc::tcp {
namespace {

using sim::SimTime;

RttEstimator make() {
  return RttEstimator(SimTime::milliseconds(200), SimTime::seconds(30.0));
}

TEST(Rtt, InitialRtoIsOneSecond) {
  auto rtt = make();
  EXPECT_EQ(rtt.rto(), SimTime::seconds(1.0));
}

TEST(Rtt, FirstSampleSeedsFilters) {
  auto rtt = make();
  rtt.add_sample(SimTime::milliseconds(100), SimTime::zero());
  EXPECT_EQ(rtt.srtt(), SimTime::milliseconds(100));
  EXPECT_EQ(rtt.rttvar(), SimTime::milliseconds(50));
  // RTO = srtt + 4*rttvar = 300 ms, above the floor.
  EXPECT_EQ(rtt.rto(), SimTime::milliseconds(300));
}

TEST(Rtt, ExponentialSmoothing) {
  auto rtt = make();
  rtt.add_sample(SimTime::milliseconds(100), SimTime::zero());
  rtt.add_sample(SimTime::milliseconds(200), SimTime::zero());
  // srtt = 7/8*100 + 1/8*200 = 112.5 ms
  EXPECT_EQ(rtt.srtt(), SimTime::microseconds(112'500));
  // rttvar = 3/4*50 + 1/4*|200-100| = 62.5 ms
  EXPECT_EQ(rtt.rttvar(), SimTime::microseconds(62'500));
}

TEST(Rtt, ConvergesToSteadyValue) {
  auto rtt = make();
  for (int i = 0; i < 100; ++i) {
    rtt.add_sample(SimTime::microseconds(50), SimTime::zero());
  }
  EXPECT_NEAR(rtt.srtt().us(), 50.0, 1.0);
  EXPECT_LT(rtt.rttvar(), SimTime::microseconds(5));
}

TEST(Rtt, RtoClampedToFloor) {
  // Datacenter RTTs with Linux's 200 ms min RTO: the floor dominates.
  auto rtt = make();
  for (int i = 0; i < 50; ++i) {
    rtt.add_sample(SimTime::microseconds(30), SimTime::zero());
  }
  EXPECT_EQ(rtt.rto(), SimTime::milliseconds(200));
}

TEST(Rtt, RtoClampedToCeiling) {
  RttEstimator rtt(SimTime::milliseconds(200), SimTime::seconds(2.0));
  rtt.add_sample(SimTime::seconds(10.0), SimTime::zero());
  EXPECT_EQ(rtt.rto(), SimTime::seconds(2.0));
}

TEST(Rtt, MinRttTracksMinimum) {
  auto rtt = make();
  rtt.add_sample(SimTime::microseconds(100), SimTime::zero());
  rtt.add_sample(SimTime::microseconds(40), SimTime::zero());
  rtt.add_sample(SimTime::microseconds(90), SimTime::zero());
  EXPECT_EQ(rtt.min_rtt(), SimTime::microseconds(40));
}

TEST(Rtt, MinRttWindowExpires) {
  auto rtt = make();
  rtt.add_sample(SimTime::microseconds(40), SimTime::zero());
  // 11 seconds later (window is 10 s), a larger sample replaces the min.
  rtt.add_sample(SimTime::microseconds(90), SimTime::seconds(11.0));
  EXPECT_EQ(rtt.min_rtt(), SimTime::microseconds(90));
}

TEST(Rtt, IgnoresNonPositiveSamples) {
  auto rtt = make();
  rtt.add_sample(SimTime::zero(), SimTime::zero());
  EXPECT_EQ(rtt.srtt(), SimTime::zero());
  EXPECT_EQ(rtt.rto(), SimTime::seconds(1.0));
}

}  // namespace
}  // namespace greencc::tcp
