#include "energy/power_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/stats.h"

namespace greencc::energy {
namespace {

// The Fig 2 operating point: a CUBIC sender at MTU 9000 (see calibration.h).
PackagePowerModel model() { return PackagePowerModel{}; }

double p(double gbps, double load = 0.0) {
  const PowerCalibration c;
  return model()
      .single_flow_watts(units::BitRate::gbps(gbps), c.fig2_util_per_gbps,
                         c.fig2_pps_per_gbps, load)
      .watts();
}

// --- The paper's published anchors (Fig 2 / §4.1) ---

TEST(PowerModel, IdleAnchor) { EXPECT_NEAR(p(0.0), 21.49, 0.01); }

TEST(PowerModel, FiveGbpsAnchor) { EXPECT_NEAR(p(5.0), 34.23, 0.05); }

TEST(PowerModel, TenGbpsAnchor) { EXPECT_NEAR(p(10.0), 35.82, 0.05); }

TEST(PowerModel, MarginalPowerDecreases) {
  // §4.1: +5 Gb/s from idle costs ~12.7 W (+60%), +5 Gb/s from 5 Gb/s only
  // ~1.6 W (+5%).
  EXPECT_NEAR(p(5.0) - p(0.0), 12.74, 0.1);
  EXPECT_NEAR(p(10.0) - p(5.0), 1.59, 0.1);
}

TEST(PowerModel, StrictlyConcaveInThroughput) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 40; ++i) {
    xs.push_back(i * 0.25);
    ys.push_back(p(i * 0.25));
  }
  EXPECT_TRUE(stats::is_strictly_concave(xs, ys));
}

TEST(PowerModel, MonotoneIncreasingInThroughput) {
  double prev = p(0.0);
  for (int i = 1; i <= 40; ++i) {
    const double cur = p(i * 0.25);
    EXPECT_GT(cur, prev) << "at " << i * 0.25 << " Gb/s";
    prev = cur;
  }
}

// --- The Fig 1 / Theorem 1 consequence, closed form ---

TEST(PowerModel, FullSpeedThenIdleBeatsFairBy16Percent) {
  // Two flows, 10 Gbit each, 10 Gb/s link. Fair: both at 5 for 2 s.
  // FSI: each host at 10 for 1 s + idle for 1 s.
  const double fair = 2.0 * p(5.0) * 2.0;
  const double fsi = 2.0 * (p(10.0) * 1.0 + p(0.0) * 1.0);
  const double savings = (fair - fsi) / fair;
  EXPECT_NEAR(savings, 0.163, 0.01);  // the paper reports 16%
}

// --- Composition ---

TEST(PowerModel, StressCoresAddLinearly) {
  HostActivity idle;
  HostActivity stressed;
  stressed.stress_cores = 8;
  const PowerCalibration c;
  EXPECT_NEAR(model().watts(stressed).watts() - model().watts(idle).watts(),
              8 * c.stress_core_watts.watts(), 1e-9);
}

TEST(PowerModel, PpsTermIsLinear) {
  HostActivity a, b;
  a.net_pkt_rate = units::PacketRate::pps(100'000);
  b.net_pkt_rate = units::PacketRate::pps(200'000);
  const PowerCalibration c;
  const double base = model().watts(HostActivity{}).watts();
  EXPECT_NEAR(model().watts(a).watts() - base, c.omega_watts_per_pps * 1e5, 1e-9);
  EXPECT_NEAR(model().watts(b).watts() - model().watts(a).watts(),
              c.omega_watts_per_pps * 1e5, 1e-9);
}

TEST(PowerModel, MultipleCoresSum) {
  HostActivity one, two;
  one.net_core_utils = {0.5};
  two.net_core_utils = {0.5, 0.5};
  const double base = model().watts(HostActivity{}).watts();
  const double one_core = model().watts(one).watts() - base;
  const double two_cores = model().watts(two).watts() - base;
  EXPECT_NEAR(two_cores, 2.0 * one_core, 1e-9);
}

TEST(PowerModel, UtilizationClamped) {
  // A core cannot contribute more than f(1).
  EXPECT_DOUBLE_EQ(model().core_power(1.5).watts(), model().core_power(1.0).watts());
  EXPECT_DOUBLE_EQ(model().core_power(-0.5).watts(), model().core_power(0.0).watts());
  EXPECT_DOUBLE_EQ(model().core_power(0.0).watts(), 0.0);
}

// --- phi(L): the loaded-host attenuation (§4.2) ---

TEST(PowerModel, PhiNearOneWhenIdle) { EXPECT_NEAR(model().phi(0.0), 1.0, 0.01); }

TEST(PowerModel, PhiMonotoneDecreasing) {
  double prev = model().phi(0.0);
  for (int i = 1; i <= 10; ++i) {
    const double cur = model().phi(i * 0.1);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(PowerModel, PhiStaysPositive) {
  EXPECT_GT(model().phi(1.0), 0.0);
}

// §4.2's savings triple: the FSI saving collapses to ~1% at 25% load and
// ~0.17% at 75% load.
class LoadedSavings
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(LoadedSavings, MatchesPaper) {
  const auto [load, expected, tol] = GetParam();
  const double fair = 2.0 * p(5.0, load) * 2.0;
  const double fsi = 2.0 * (p(10.0, load) + p(0.0, load));
  const double savings = (fair - fsi) / fair;
  EXPECT_NEAR(savings, expected, tol);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTriple, LoadedSavings,
    ::testing::Values(std::make_tuple(0.0, 0.163, 0.01),
                      std::make_tuple(0.25, 0.01, 0.005),
                      std::make_tuple(0.75, 0.0017, 0.002)));

// Savings must decrease monotonically with background load.
TEST(PowerModel, SavingsShrinkWithLoad) {
  double prev = 1.0;
  for (double load : {0.0, 0.125, 0.25, 0.5, 0.75, 1.0}) {
    const double fair = 2.0 * p(5.0, load) * 2.0;
    const double fsi = 2.0 * (p(10.0, load) + p(0.0, load));
    const double savings = (fair - fsi) / fair;
    EXPECT_LT(savings, prev) << "load " << load;
    EXPECT_GE(savings, 0.0) << "load " << load;
    prev = savings;
  }
}

// Fig 4's absolute levels: ~100 W at 75% load with idle network, ~120 W at
// 10 Gb/s.
TEST(PowerModel, LoadedHostAbsoluteLevels) {
  EXPECT_NEAR(p(0.0, 0.75), 100.7, 3.0);
  EXPECT_NEAR(p(10.0, 0.75), 121.0, 4.0);
}

TEST(PowerModel, CalibrationIsAdjustable) {
  PowerCalibration calib;
  calib.idle_watts = units::Power::watts(50.0);
  PackagePowerModel custom(calib);
  EXPECT_NEAR(custom.watts(HostActivity{}).watts(), 50.0, 1e-9);
}

// Pin watts() against hand-computed values of the documented formula
// (idle + 3.3*stress + phi(load)*sum(core_power(u)) + omega*pps +
// chi*load*gbps, with the default calibration). These are regression pins:
// any refactor of watts() that changes these digits changes every energy
// number the repo reports.
TEST(PowerModel, WattsPinnedToHandComputedValues) {
  const PackagePowerModel m;

  HostActivity idle;
  EXPECT_NEAR(m.watts(idle).watts(), 21.49, 1e-9);

  HostActivity single;  // one net core at 0.5 util, 5 Gb/s, no stress
  single.net_core_utils = {0.5};
  single.net_rate = units::BitRate::gbps(5.0);
  single.net_pkt_rate = units::PacketRate::pps(5.0 * 13'888.9);
  EXPECT_NEAR(m.watts(single).watts(), 34.854215937832, 1e-9);

  HostActivity loaded;  // 8 stress cores, two net cores, 10 Gb/s
  loaded.net_core_utils = {0.3, 0.7};
  loaded.stress_cores = 8;
  loaded.net_rate = units::BitRate::gbps(10.0);
  loaded.net_pkt_rate = units::PacketRate::pps(138'889.0);
  EXPECT_NEAR(m.watts(loaded).watts(), 58.416782847849, 1e-9);

  // single_flow_watts at the Fig 2 operating point must agree with the
  // equivalent hand-built HostActivity.
  const PowerCalibration calib;
  EXPECT_NEAR(m.single_flow_watts(units::BitRate::gbps(5.0),
                                  calib.fig2_util_per_gbps,
                                  calib.fig2_pps_per_gbps)
                  .watts(),
              34.230473080786, 1e-9);
}

}  // namespace
}  // namespace greencc::energy
