// SweepSupervisor: retry/backoff/quarantine, the watchdog (wall deadline
// and event budget), journal-backed resume, graceful shutdown, and the
// determinism contract under worker threads.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <functional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "app/parallel_runner.h"
#include "robust/journal.h"
#include "robust/shutdown.h"
#include "robust/supervisor.h"
#include "sim/simulator.h"
#include "stats/json.h"
#include "trace/trace.h"

namespace {

using namespace greencc;
using robust::CellHooks;
using robust::CellOutcome;
using robust::SupervisorOptions;
using robust::SweepReport;
using robust::SweepSupervisor;

class SupervisorTest : public ::testing::Test {
 protected:
  // Shutdown state is process-wide and one-way in production; tests that
  // trigger it must not poison the rest of the suite.
  void TearDown() override { robust::reset_shutdown_for_test(); }
};

TEST(Backoff, CappedExponentialSchedule) {
  EXPECT_DOUBLE_EQ(robust::backoff_ms(0, 10.0, 2000.0), 0.0);
  EXPECT_DOUBLE_EQ(robust::backoff_ms(1, 10.0, 2000.0), 10.0);
  EXPECT_DOUBLE_EQ(robust::backoff_ms(2, 10.0, 2000.0), 20.0);
  EXPECT_DOUBLE_EQ(robust::backoff_ms(3, 10.0, 2000.0), 40.0);
  EXPECT_DOUBLE_EQ(robust::backoff_ms(9, 10.0, 2000.0), 2000.0);  // capped
  EXPECT_DOUBLE_EQ(robust::backoff_ms(1000, 10.0, 2000.0), 2000.0);  // no inf
  EXPECT_DOUBLE_EQ(robust::backoff_ms(3, 0.0, 2000.0), 0.0);  // disabled
}

TEST_F(SupervisorTest, AllCellsOkOnCleanSweep) {
  SupervisorOptions options;
  options.jobs = 1;
  SweepSupervisor supervisor(std::move(options));
  CellHooks hooks;
  hooks.run = [](std::size_t index, robust::CellContext&) {
    return "cell " + std::to_string(index);
  };
  const SweepReport report = supervisor.run(5, hooks);
  ASSERT_EQ(report.cells.size(), 5u);
  EXPECT_EQ(report.count(CellOutcome::kOk), 5u);
  EXPECT_TRUE(report.complete());
  EXPECT_FALSE(report.interrupted);
  EXPECT_TRUE(report.quarantine().empty());
  for (const auto& cell : report.cells) EXPECT_EQ(cell.attempts, 1);
}

TEST_F(SupervisorTest, ThrowingCellRetriesThenSucceeds) {
  std::atomic<int> attempts{0};
  SupervisorOptions options;
  options.max_attempts = 3;
  options.backoff_base_ms = 1.0;  // keep the test fast
  trace::VectorTraceSink sink;
  options.trace = &sink;
  SweepSupervisor supervisor(std::move(options));
  CellHooks hooks;
  hooks.run = [&](std::size_t, robust::CellContext&) -> std::string {
    if (attempts.fetch_add(1) < 2) {
      throw std::runtime_error("transient failure");
    }
    return "ok";
  };
  const SweepReport report = supervisor.run(1, hooks);
  EXPECT_EQ(report.cells[0].outcome, CellOutcome::kRetried);
  EXPECT_EQ(report.cells[0].attempts, 3);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(sink.count(trace::EventClass::kSupervisorRetry), 2u);
  EXPECT_EQ(sink.count(trace::EventClass::kSupervisorQuarantine), 0u);
}

TEST_F(SupervisorTest, QuarantineAfterMaxAttempts) {
  std::atomic<int> attempts{0};
  SupervisorOptions options;
  options.max_attempts = 3;
  options.backoff_base_ms = 1.0;
  trace::VectorTraceSink sink;
  options.trace = &sink;
  SweepSupervisor supervisor(std::move(options));
  CellHooks hooks;
  hooks.run = [&](std::size_t index, robust::CellContext& ctx) -> std::string {
    if (index == 1) {
      attempts.fetch_add(1);
      ctx.set_seed(4242);
      throw std::runtime_error("deterministic bug in cell 1");
    }
    return "ok";
  };
  const SweepReport report = supervisor.run(3, hooks);
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(report.cells[1].outcome, CellOutcome::kQuarantined);
  EXPECT_EQ(report.cells[1].attempts, 3);
  EXPECT_EQ(report.cells[1].seed, 4242u);
  EXPECT_EQ(report.cells[1].error, "deterministic bug in cell 1");
  EXPECT_EQ(report.count(CellOutcome::kOk), 2u);
  EXPECT_FALSE(report.complete());
  ASSERT_EQ(report.quarantine().size(), 1u);
  EXPECT_EQ(report.quarantine()[0]->index, 1u);
  EXPECT_EQ(sink.count(trace::EventClass::kSupervisorRetry), 2u);
  EXPECT_EQ(sink.count(trace::EventClass::kSupervisorQuarantine), 1u);
  // The health report serializes without throwing and carries the record.
  stats::JsonWriter json;
  report.write_json(json);
  const std::string doc = json.str();
  EXPECT_NE(doc.find("\"quarantined\":1"), std::string::npos);
  EXPECT_NE(doc.find("deterministic bug in cell 1"), std::string::npos);
}

TEST_F(SupervisorTest, WatchdogCutsStalledCell) {
  SupervisorOptions options;
  options.cell_deadline_sec = 0.15;
  trace::VectorTraceSink sink;
  options.trace = &sink;
  SweepSupervisor supervisor(std::move(options));
  CellHooks hooks;
  hooks.run = [](std::size_t, robust::CellContext& ctx) -> std::string {
    // A scenario that never finishes: every event re-schedules itself and
    // burns a little wall time, so only the watchdog can end the run.
    sim::Simulator sim;
    std::function<void()> tick = [&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      sim.schedule(sim::SimTime::microseconds(1), tick);
    };
    sim.schedule(sim::SimTime::zero(), tick);
    auto watch = ctx.watch(sim);
    sim.run();
    EXPECT_TRUE(ctx.cut());
    return {};
  };
  const SweepReport report = supervisor.run(1, hooks);
  EXPECT_EQ(report.cells[0].outcome, CellOutcome::kTimedOut);
  EXPECT_EQ(report.cells[0].attempts, 1);  // cuts are terminal, no retry
  EXPECT_NE(report.cells[0].error.find("wall deadline"), std::string::npos);
  EXPECT_GT(report.cells[0].events_executed, 0u);
  EXPECT_FALSE(report.complete());
  EXPECT_EQ(sink.count(trace::EventClass::kSupervisorTimeout), 1u);
}

TEST_F(SupervisorTest, EventBudgetStopsRunawayCell) {
  SupervisorOptions options;
  options.event_budget = 1000;
  SweepSupervisor supervisor(std::move(options));
  CellHooks hooks;
  hooks.run = [](std::size_t, robust::CellContext& ctx) -> std::string {
    sim::Simulator sim;
    std::function<void()> tick = [&] {
      sim.schedule(sim::SimTime::microseconds(1), tick);
    };
    sim.schedule(sim::SimTime::zero(), tick);
    auto watch = ctx.watch(sim);
    sim.run();  // returns once the budget is exhausted
    return {};
  };
  const SweepReport report = supervisor.run(1, hooks);
  EXPECT_EQ(report.cells[0].outcome, CellOutcome::kTimedOut);
  EXPECT_EQ(report.cells[0].events_executed, 1000u);
  EXPECT_NE(report.cells[0].error.find("event budget"), std::string::npos);
  EXPECT_FALSE(report.complete());
}

TEST_F(SupervisorTest, ResumeSkipsJournaledCells) {
  const std::string path = ::testing::TempDir() + "/supervisor_resume.jsonl";
  std::remove(path.c_str());
  const std::uint64_t hash = robust::fnv1a64("resume-test");

  std::set<std::size_t> executed;
  CellHooks hooks;
  hooks.run = [&](std::size_t index, robust::CellContext&) {
    executed.insert(index);
    return "payload " + std::to_string(index);
  };

  {
    SupervisorOptions options;
    options.journal_path = path;
    options.config_hash = hash;
    SweepSupervisor supervisor(std::move(options));
    EXPECT_TRUE(supervisor.run(4, hooks).complete());
  }
  ASSERT_EQ(executed.size(), 4u);

  executed.clear();
  std::vector<std::pair<std::size_t, std::string>> restored;
  hooks.restore = [&](std::size_t index, const std::string& payload) {
    restored.emplace_back(index, payload);
  };
  {
    SupervisorOptions options;
    options.journal_path = path;
    options.config_hash = hash;
    options.resume = true;
    SweepSupervisor supervisor(std::move(options));
    const SweepReport report = supervisor.run(4, hooks);
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.count(CellOutcome::kResumed), 4u);
  }
  EXPECT_TRUE(executed.empty()) << "resume re-ran a journaled cell";
  ASSERT_EQ(restored.size(), 4u);
  EXPECT_EQ(restored[0].second, "payload 0");
  EXPECT_EQ(restored[3].second, "payload 3");
  std::remove(path.c_str());
}

TEST_F(SupervisorTest, ResumeRunsOnlyMissingCells) {
  const std::string path = ::testing::TempDir() + "/supervisor_partial.jsonl";
  std::remove(path.c_str());
  const std::uint64_t hash = robust::fnv1a64("partial-resume-test");
  {
    robust::SweepJournal journal(path, hash, false);
    journal.append(0, "done 0");
    journal.append(2, "done 2");
  }
  std::set<std::size_t> executed;
  CellHooks hooks;
  hooks.run = [&](std::size_t index, robust::CellContext&) {
    executed.insert(index);
    return "fresh " + std::to_string(index);
  };
  SupervisorOptions options;
  options.journal_path = path;
  options.config_hash = hash;
  options.resume = true;
  SweepSupervisor supervisor(std::move(options));
  const SweepReport report = supervisor.run(4, hooks);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.count(CellOutcome::kResumed), 2u);
  EXPECT_EQ(report.count(CellOutcome::kOk), 2u);
  EXPECT_EQ(executed, (std::set<std::size_t>{1, 3}));
  // The journal now covers every cell: a second resume re-runs nothing.
  EXPECT_EQ(robust::SweepJournal::load(path, hash).size(), 4u);
  std::remove(path.c_str());
}

TEST_F(SupervisorTest, ShutdownStopsDispatchAndFlushesJournal) {
  const std::string path = ::testing::TempDir() + "/supervisor_shutdown.jsonl";
  std::remove(path.c_str());
  const std::uint64_t hash = robust::fnv1a64("shutdown-test");
  SupervisorOptions options;
  options.journal_path = path;
  options.config_hash = hash;
  SweepSupervisor supervisor(std::move(options));
  CellHooks hooks;
  hooks.run = [&](std::size_t index, robust::CellContext&) -> std::string {
    if (index == 1) robust::request_shutdown(SIGINT);
    return "cell " + std::to_string(index);
  };
  const SweepReport report = supervisor.run(4, hooks);
  EXPECT_TRUE(report.interrupted);
  EXPECT_FALSE(report.complete());
  EXPECT_EQ(robust::shutdown_signal(), SIGINT);
  // Serial dispatch: cells 0 and 1 completed (the signal lands after cell
  // 1's payload is produced), the rest were never dispatched.
  EXPECT_EQ(report.count(CellOutcome::kOk), 2u);
  EXPECT_EQ(report.count(CellOutcome::kNotRun), 2u);
  // Completed cells reached the journal before exit; a resume would pick
  // up exactly where the sweep stopped.
  EXPECT_EQ(robust::SweepJournal::load(path, hash).size(), 2u);
  std::remove(path.c_str());
}

TEST_F(SupervisorTest, ReportsIdenticalAcrossJobCounts) {
  // The supervised analogue of the pool's determinism contract: outcomes
  // and payloads depend only on cell coordinates, never on thread count —
  // including for cells that go through the retry path.
  auto sweep = [](int jobs) {
    SupervisorOptions options;
    options.jobs = jobs;
    options.max_attempts = 2;
    options.backoff_base_ms = 1.0;
    SweepSupervisor supervisor(std::move(options));
    std::vector<std::string> payloads(16);
    std::array<std::atomic<int>, 16> attempts{};
    CellHooks hooks;
    hooks.run = [&](std::size_t index, robust::CellContext& ctx) {
      const std::uint64_t seed = app::derive_seed(99, index, 0);
      ctx.set_seed(seed);
      // Cells 3 and 11 throw on their first attempt — whichever worker
      // gets there — and succeed on retry. The payload still depends only
      // on the cell's coordinates.
      if ((index == 3 || index == 11) &&
          attempts[index].fetch_add(1) == 0) {
        throw std::runtime_error("transient");
      }
      sim::Simulator sim;
      std::uint64_t fired = 0;
      sim.schedule(sim::SimTime::microseconds(1),
                   [&] { fired = seed % 1000; });
      auto watch = ctx.watch(sim);
      sim.run();
      char buf[64];
      std::snprintf(buf, sizeof buf, "%016llx %llu",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(fired));
      std::string payload = buf;
      payloads[index] = payload;
      return payload;
    };
    const SweepReport report = supervisor.run(16, hooks);
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.count(CellOutcome::kRetried), 2u);
    EXPECT_EQ(report.count(CellOutcome::kOk), 14u);
    return payloads;
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
