#include "net/drr.h"

#include <gtest/gtest.h>

#include <map>

#include "sim/simulator.h"

namespace greencc::net {
namespace {

using sim::SimTime;
using sim::Simulator;

class Counter : public PacketHandler {
 public:
  void handle(Packet pkt) override {
    bytes[pkt.flow] += pkt.size_bytes.count();
    ++packets[pkt.flow];
    order.push_back(pkt.flow);
  }
  std::map<FlowId, std::int64_t> bytes;
  std::map<FlowId, int> packets;
  std::vector<FlowId> order;
};

Packet pkt_of(FlowId flow, std::int32_t size = 1500) {
  Packet p;
  p.flow = flow;
  p.size_bytes = units::Bytes{size};
  return p;
}

DrrPort::Config config() {
  DrrPort::Config c;
  c.rate = units::BitRate::bps(10e9);
  c.propagation = SimTime::zero();
  return c;
}

TEST(Drr, SingleFlowPassesThrough) {
  Simulator sim;
  Counter sink;
  DrrPort port(sim, "drr", config(), &sink);
  for (int i = 0; i < 10; ++i) port.handle(pkt_of(1));
  sim.run();
  EXPECT_EQ(sink.packets[1], 10);
}

TEST(Drr, EqualWeightsShareEqually) {
  Simulator sim;
  Counter sink;
  DrrPort port(sim, "drr", config(), &sink);
  // Keep both flows backlogged with 200 packets each, delivered at line
  // rate; the interleaving must alternate (equal quanta).
  for (int i = 0; i < 200; ++i) {
    port.handle(pkt_of(1));
    port.handle(pkt_of(2));
  }
  sim.run_until(SimTime::microseconds(200));  // ~166 packets worth
  const int a = sink.packets[1];
  const int b = sink.packets[2];
  ASSERT_GT(a + b, 100);
  EXPECT_NEAR(static_cast<double>(a) / (a + b), 0.5, 0.05);
}

TEST(Drr, WeightsSplitBandwidth) {
  Simulator sim;
  Counter sink;
  DrrPort port(sim, "drr", config(), &sink);
  port.set_weight(1, 3.0);
  port.set_weight(2, 1.0);
  for (int i = 0; i < 600; ++i) {
    port.handle(pkt_of(1));
    port.handle(pkt_of(2));
  }
  sim.run_until(SimTime::microseconds(500));
  const double a = static_cast<double>(sink.bytes[1]);
  const double b = static_cast<double>(sink.bytes[2]);
  ASSERT_GT(a + b, 0);
  EXPECT_NEAR(a / (a + b), 0.75, 0.05);
}

TEST(Drr, WorkConservingWhenOneFlowIdles) {
  Simulator sim;
  Counter sink;
  DrrPort port(sim, "drr", config(), &sink);
  port.set_weight(1, 1.0);
  port.set_weight(2, 9.0);
  // Only flow 1 is backlogged: it gets the whole link despite weight 1.
  for (int i = 0; i < 100; ++i) port.handle(pkt_of(1));
  sim.run();
  EXPECT_EQ(sink.packets[1], 100);
  // 100 x 1500 B at 10 Gb/s = 120 us.
  EXPECT_EQ(sim.now(), SimTime::nanoseconds(120'000));
}

TEST(Drr, MixedPacketSizesStillFair) {
  // Byte-level fairness: flow 1 sends jumbo frames, flow 2 small ones; the
  // byte split must still match the weights (that is DRR's whole point vs
  // plain round robin).
  Simulator sim;
  Counter sink;
  DrrPort port(sim, "drr", config(), &sink);
  for (int i = 0; i < 100; ++i) {
    port.handle(pkt_of(1, 9000));
    for (int k = 0; k < 6; ++k) port.handle(pkt_of(2, 1500));
  }
  sim.run_until(SimTime::microseconds(400));
  const double a = static_cast<double>(sink.bytes[1]);
  const double b = static_cast<double>(sink.bytes[2]);
  ASSERT_GT(a + b, 0);
  EXPECT_NEAR(a / (a + b), 0.5, 0.06);
}

TEST(Drr, PerFlowQueueDropsIndependently) {
  Simulator sim;
  Counter sink;
  auto cfg = config();
  cfg.per_flow_queue_bytes = units::Bytes{3'000};  // two 1500 B packets per flow
  DrrPort port(sim, "drr", cfg, &sink);
  for (int i = 0; i < 10; ++i) port.handle(pkt_of(1));
  for (int i = 0; i < 2; ++i) port.handle(pkt_of(2));
  sim.run();
  EXPECT_GT(port.dropped(), 0u);
  // Flow 2 was within its own queue: nothing of it dropped.
  EXPECT_EQ(sink.packets[2], 2);
}

TEST(Drr, RejectsNonPositiveWeight) {
  Simulator sim;
  Counter sink;
  DrrPort port(sim, "drr", config(), &sink);
  EXPECT_THROW(port.set_weight(1, 0.0), std::invalid_argument);
  EXPECT_THROW(port.set_weight(1, -2.0), std::invalid_argument);
}

TEST(Drr, FractionalWeightAccumulatesDeficit) {
  // weight 0.2 => quantum smaller than a frame; the flow must still make
  // progress by accumulating deficit over rounds.
  Simulator sim;
  Counter sink;
  auto cfg = config();
  cfg.per_flow_queue_bytes = units::Bytes{8 << 20};  // keep both flows backlogged
  DrrPort port(sim, "drr", cfg, &sink);
  port.set_weight(1, 0.2);
  port.set_weight(2, 1.0);
  for (int i = 0; i < 300; ++i) {
    port.handle(pkt_of(1, 9000));
    port.handle(pkt_of(2, 9000));
  }
  // Flow 2 drains its 300 packets at ~5/6 of the link; stop well before.
  sim.run_until(SimTime::microseconds(1'500));
  ASSERT_GT(sink.packets[1], 0);
  const double a = static_cast<double>(sink.bytes[1]);
  const double b = static_cast<double>(sink.bytes[2]);
  EXPECT_NEAR(a / (a + b), 0.2 / 1.2, 0.05);
}

}  // namespace
}  // namespace greencc::net
