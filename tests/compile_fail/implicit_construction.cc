// Violation: implicit conversion from a raw count must not compile;
// Bytes construction is explicit.
#include "units/units.h"
greencc::units::Bytes mtu = 1500;
int main() { return static_cast<int>(mtu.count()); }
