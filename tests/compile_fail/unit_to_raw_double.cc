// Violation: a unit type must not decay to a raw double implicitly; leaving
// the units layer requires a named accessor (.watts(), .bps(), ...).
#include "units/units.h"
int main() {
  double w = greencc::units::Power::watts(5.0);
  return static_cast<int>(w);
}
