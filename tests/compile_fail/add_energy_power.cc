// Violation: Energy + Power (J vs W — the stock/flow confusion) must not
// compile.
#include "units/units.h"
using namespace greencc::units;
int main() {
  auto x = Energy::joules(1.0) + Power::watts(1.0);
  return static_cast<int>(x.joules());
}
