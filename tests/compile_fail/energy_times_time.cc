// Violation: Energy * SimTime is dimensionally meaningless (power
// integrates over time; energy does not) and must not compile.
#include "units/units.h"
using namespace greencc;
int main() {
  auto x = units::Energy::joules(1.0) * sim::SimTime::seconds(1.0);
  return static_cast<int>(x.joules());
}
