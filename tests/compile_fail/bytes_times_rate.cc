// Violation: Bytes * BitRate must not compile — only Bytes / BitRate (a
// serialization delay) is meaningful.
#include "units/units.h"
using namespace greencc::units;
int main() {
  auto x = Bytes{1500} * BitRate::gbps(10.0);
  return static_cast<int>(x.count());
}
