// Violation: Bytes + Bits (the canonical factor-of-8 bug) must not compile.
#include "units/units.h"
using namespace greencc::units;
int main() {
  auto x = Bytes{8} + Bits{8};
  return static_cast<int>(x.count());
}
