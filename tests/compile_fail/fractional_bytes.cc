// Violation: a fractional byte count must not compile (int64 rep; braced
// init rejects the narrowing double).
#include "units/units.h"
int main() {
  greencc::units::Bytes b{1500.5};
  return static_cast<int>(b.count());
}
