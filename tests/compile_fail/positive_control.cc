// Positive control for the compile-fail harness: exercises the legal units
// algebra. If THIS fails to syntax-check, the harness flags (include path,
// -std=) are broken and every WILL_FAIL "pass" below is meaningless.
#include "units/units.h"

using namespace greencc;
using namespace greencc::units::literals;

int main() {
  constexpr units::Bytes payload = 1500_bytes + 2_KiB;
  constexpr units::Bits wire = payload.bits();
  constexpr units::BitRate line = 10_gbps;
  constexpr sim::SimTime txt = payload / line;
  constexpr units::Power host = 50_W + 3500_mW;
  constexpr units::Energy spent = host * sim::SimTime::seconds(2.0);
  constexpr units::JoulesPerByte intensity = spent / payload;
  static_assert(wire.count() == (1500 + 2048) * units::kBitsPerByte);
  static_assert(txt.ns() > 0);
  static_assert(intensity.joules_per_byte() > 0.0);
  return 0;
}
