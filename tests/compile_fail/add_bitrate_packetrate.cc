// Violation: BitRate + PacketRate (the two same-shaped host-model inputs)
// must not compile.
#include "units/units.h"
using namespace greencc::units;
int main() {
  auto x = BitRate::bps(1.0) + PacketRate::pps(1.0);
  return static_cast<int>(x.bps());
}
