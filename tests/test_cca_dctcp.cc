#include "cca/dctcp.h"

#include <gtest/gtest.h>

namespace greencc::cca {
namespace {

using sim::SimTime;

CcaConfig config() {
  CcaConfig c;
  c.mss_bytes = units::Bytes{1448};
  c.initial_cwnd = 10;
  return c;
}

AckEvent ack_marked(std::int64_t acked, std::int64_t marked,
                    std::int64_t delivered) {
  AckEvent ev;
  ev.now = SimTime::milliseconds(1);
  ev.acked_segments = acked;
  ev.ecn_echoed = marked;
  ev.rtt = SimTime::microseconds(100);
  ev.srtt = SimTime::microseconds(100);
  ev.min_rtt = SimTime::microseconds(100);
  ev.inflight = 20;
  ev.delivered = delivered;
  return ev;
}

TEST(Dctcp, WantsEcn) {
  Dctcp d(config());
  EXPECT_TRUE(d.wants_ecn());
}

TEST(Dctcp, AlphaStartsConservative) {
  Dctcp d(config());
  EXPECT_DOUBLE_EQ(d.alpha(), 1.0);
}

// Deliver one full window per step so the per-window alpha update fires
// every iteration (a window boundary is one cwnd of delivered data).
void run_windows(Dctcp& d, int windows, double mark_fraction,
                 std::int64_t& delivered) {
  for (int w = 0; w < windows; ++w) {
    const auto acked =
        static_cast<std::int64_t>(d.cwnd_segments()) + 1;
    delivered += acked;
    const auto marked =
        static_cast<std::int64_t>(mark_fraction * static_cast<double>(acked));
    d.on_ack(ack_marked(acked, marked, delivered));
  }
}

TEST(Dctcp, AlphaDecaysWithoutMarks) {
  Dctcp d(config());
  std::int64_t delivered = 0;
  run_windows(d, 60, 0.0, delivered);
  // alpha *= (15/16) per unmarked window: after 60 windows ~0.02.
  EXPECT_LT(d.alpha(), 0.05);
}

TEST(Dctcp, AlphaConvergesToMarkFraction) {
  Dctcp d(config());
  std::int64_t delivered = 0;
  // Persistently mark 25% of each window.
  run_windows(d, 200, 0.25, delivered);
  EXPECT_NEAR(d.alpha(), 0.25, 0.05);
}

TEST(Dctcp, ProportionalDecreaseGentlerThanHalving) {
  // With a small alpha, the multiplicative decrease (1 - alpha/2) barely
  // moves the window — DCTCP's core property.
  Dctcp d(config());
  std::int64_t delivered = 0;
  // Drive alpha down with unmarked windows while growing the window.
  run_windows(d, 60, 0.0, delivered);
  const double alpha = d.alpha();
  ASSERT_LT(alpha, 0.1);
  const double before = d.cwnd_segments();
  const auto acked = static_cast<std::int64_t>(before) + 1;
  delivered += acked;
  d.on_ack(ack_marked(acked, 3, delivered));  // marked window -> decrease
  const double after = d.cwnd_segments();
  EXPECT_GT(after, before * (1.0 - alpha / 2.0) - 1.0);
  EXPECT_GT(after, before * 0.8);  // far gentler than Reno's halving
}

TEST(Dctcp, FullMarkingKeepsAlphaAtOne) {
  // alpha ~= 1 with every segment marked: decrease approaches halving.
  Dctcp d(config());
  std::int64_t delivered = 0;
  run_windows(d, 30, 1.0, delivered);
  EXPECT_NEAR(d.alpha(), 1.0, 0.05);
}

TEST(Dctcp, LossFallsBackToReno) {
  Dctcp d(config());
  std::int64_t delivered = 0;
  for (int i = 0; i < 90; ++i) {
    d.on_ack(ack_marked(1, 0, ++delivered));
  }
  const double before = d.cwnd_segments();
  LossEvent ev;
  ev.now = SimTime::milliseconds(2);
  ev.inflight = static_cast<std::int64_t>(before);
  d.on_loss(ev);
  EXPECT_NEAR(d.cwnd_segments(), before / 2.0, 1.0);
}

}  // namespace
}  // namespace greencc::cca
