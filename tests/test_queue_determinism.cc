// Cross-queue determinism: the calendar queue and the binary heap must be
// observationally indistinguishable. Both keep the same (when, seq) total
// order, so every simulated quantity — flow completion times, retransmit
// counts, joules, queue drops — must come out bit-identical regardless of
// which event store ran the experiment. In-process scenario runs compare
// full results under Simulator::set_default_queue_kind; subprocess runs
// byte-compare the CSVs of the real sweep binaries under the
// GREENCC_EVENT_QUEUE override and different --jobs values.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "app/scenario.h"
#include "sim/simulator.h"

namespace greencc::app {
namespace {

using sim::EventQueueKind;
using sim::Simulator;

/// Flip the process-wide default queue kind for one scope; restore on exit
/// so test order never leaks a kind into unrelated tests.
class ScopedQueueKind {
 public:
  explicit ScopedQueueKind(EventQueueKind kind)
      : saved_(Simulator::default_queue_kind()) {
    Simulator::set_default_queue_kind(kind);
  }
  ~ScopedQueueKind() { Simulator::set_default_queue_kind(saved_); }

 private:
  EventQueueKind saved_;
};

/// A deliberately messy testbed: three CCAs contending a FIFO bottleneck,
/// small enough to run in well under a second but congested enough to
/// exercise drops, retransmissions, RTO arm/cancel storms, and pacing —
/// the timer-heavy paths where an event-order divergence would surface.
ScenarioResult run_contended(EventQueueKind kind) {
  ScopedQueueKind scoped(kind);
  ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = 11;
  config.switch_queue_bytes = units::Bytes{1 << 17};  // shallow buffer: force loss
  Scenario s(config);
  for (const char* cca : {"cubic", "reno", "bbr"}) {
    FlowSpec flow;
    flow.cca = cca;
    flow.bytes = units::Bytes{40'000'000};
    s.add_flow(flow);
  }
  return s.run();
}

/// DRR bottleneck with unequal weights and a rate-limited flow — the other
/// scheduling/timer code path (token buckets, per-flow quantums).
ScenarioResult run_weighted_drr(EventQueueKind kind) {
  ScopedQueueKind scoped(kind);
  ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = 23;
  config.use_drr_bottleneck = true;
  Scenario s(config);
  FlowSpec heavy;
  heavy.cca = "cubic";
  heavy.bytes = units::Bytes{30'000'000};
  heavy.weight = 3.0;
  s.add_flow(heavy);
  FlowSpec light;
  light.cca = "dctcp";
  light.bytes = units::Bytes{30'000'000};
  light.rate_limit = units::BitRate::bps(2e9);
  s.add_flow(light);
  return s.run();
}

/// Bit-exact equality over everything a paper figure could be built from.
/// EXPECT_EQ on doubles deliberately: the contract is identical event
/// order, hence identical arithmetic, hence identical bits — not "close".
void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.duration_sec, b.duration_sec);
  EXPECT_EQ(a.total_energy.joules(), b.total_energy.joules());
  EXPECT_EQ(a.avg_power.watts(), b.avg_power.watts());
  EXPECT_EQ(a.all_completed, b.all_completed);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_EQ(a.bottleneck.enqueued, b.bottleneck.enqueued);
  EXPECT_EQ(a.bottleneck.dropped, b.bottleneck.dropped);
  EXPECT_EQ(a.bottleneck.ecn_marked, b.bottleneck.ecn_marked);
  EXPECT_EQ(a.rx_backlog.dropped, b.rx_backlog.dropped);
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (std::size_t i = 0; i < a.hosts.size(); ++i) {
    EXPECT_EQ(a.hosts[i].energy.joules(), b.hosts[i].energy.joules());
  }
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    SCOPED_TRACE("flow " + std::to_string(i));
    EXPECT_EQ(a.flows[i].delivered_bytes, b.flows[i].delivered_bytes);
    EXPECT_EQ(a.flows[i].fct_sec, b.flows[i].fct_sec);
    EXPECT_EQ(a.flows[i].finished_at_sec, b.flows[i].finished_at_sec);
    EXPECT_EQ(a.flows[i].avg_rate.gbps(), b.flows[i].avg_rate.gbps());
    EXPECT_EQ(a.flows[i].retransmissions, b.flows[i].retransmissions);
    EXPECT_EQ(a.flows[i].timeouts, b.flows[i].timeouts);
    EXPECT_EQ(a.flows[i].segments_sent, b.flows[i].segments_sent);
    EXPECT_EQ(a.flows[i].counters, b.flows[i].counters);
  }
}

TEST(QueueDeterminism, ContendedScenarioIdenticalAcrossQueueKinds) {
  const auto calendar = run_contended(EventQueueKind::kCalendar);
  const auto heap = run_contended(EventQueueKind::kBinaryHeap);
  // The mix must actually stress the loss path, or the comparison is weak.
  std::int64_t retransmissions = 0;
  for (const auto& flow : calendar.flows) {
    retransmissions += flow.retransmissions;
  }
  EXPECT_GT(retransmissions, 0);
  expect_identical(calendar, heap);
}

TEST(QueueDeterminism, WeightedDrrScenarioIdenticalAcrossQueueKinds) {
  const auto calendar = run_weighted_drr(EventQueueKind::kCalendar);
  const auto heap = run_weighted_drr(EventQueueKind::kBinaryHeap);
  expect_identical(calendar, heap);
}

TEST(QueueDeterminism, ExplicitCtorKindOverridesDefault) {
  ScopedQueueKind scoped(EventQueueKind::kBinaryHeap);
  Simulator sim(EventQueueKind::kCalendar);
  EXPECT_EQ(sim.queue_kind(), EventQueueKind::kCalendar);
  EXPECT_STREQ(sim.queue_name(), "calendar");
  Simulator defaulted;
  EXPECT_EQ(defaulted.queue_kind(), EventQueueKind::kBinaryHeap);
}

// ---------------------------------------------------------------------------
// Subprocess half: the real sweep binaries, byte-compared CSV against CSV.
// GREENCC_EVENT_QUEUE is set in the forked child (never in this process),
// and --jobs varies too: queue kind and worker count must both be
// invisible in the output.

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// fork/exec with `GREENCC_EVENT_QUEUE=queue_env` (when non-empty) in the
/// child environment; stdout+stderr to `log_path`. No shell: empty
/// arguments (--cache "") must survive verbatim.
int run_with_queue(std::vector<std::string> args, const std::string& queue_env,
                   const std::string& log_path) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    if (!queue_env.empty()) {
      ::setenv("GREENCC_EVENT_QUEUE", queue_env.c_str(), 1);
    } else {
      ::unsetenv("GREENCC_EVENT_QUEUE");
    }
    const int fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      ::close(fd);
    }
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

/// Run one sweep config under (queue kind, jobs) variants and demand every
/// CSV is byte-identical to the first. Returns the reference CSV so tests
/// can sanity-check it is non-trivial.
std::string sweep_csv_invariant(
    const std::string& binary, std::vector<std::string> base_args,
    const std::string& tag) {
  struct Variant {
    const char* queue;
    const char* jobs;
  };
  const Variant variants[] = {
      {"calendar", "1"}, {"heap", "1"}, {"calendar", "2"}, {"heap", "2"}};
  std::string reference;
  for (const auto& v : variants) {
    const std::string label =
        tag + "_" + v.queue + "_j" + v.jobs;
    const std::string csv = temp_path(label + ".csv");
    std::vector<std::string> args = {binary};
    args.insert(args.end(), base_args.begin(), base_args.end());
    args.insert(args.end(), {"--jobs", v.jobs, "--csv", csv});
    const int status =
        run_with_queue(args, v.queue, temp_path(label + ".log"));
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << label << ": " << read_file(temp_path(label + ".log"));
    const std::string text = read_file(csv);
    EXPECT_FALSE(text.empty()) << label;
    if (reference.empty()) {
      reference = text;
    } else {
      EXPECT_EQ(reference, text)
          << "CSV diverged for " << label
          << " — queue kind or worker count leaked into results";
    }
  }
  return reference;
}

TEST(QueueDeterminism, CcaGridCsvIdenticalAcrossQueueKindsAndJobs) {
  const std::string csv = sweep_csv_invariant(
      CCA_GRID_PATH,
      {"--bytes", "2000000", "--repeats", "2", "--seed", "7", "--cache", ""},
      "grid");
  // More than a header: the full grid of cells made it out.
  EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 5);
}

TEST(QueueDeterminism, LossSweepCsvIdenticalAcrossQueueKindsAndJobs) {
  const std::string csv = sweep_csv_invariant(
      EXT_LOSS_PATH, {"--bytes", "2000000", "--repeats", "1", "--seed", "7"},
      "loss");
  EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 2);
}

}  // namespace
}  // namespace greencc::app
