#include "energy/meter.h"

#include <gtest/gtest.h>

#include "energy/power_model.h"
#include "sim/simulator.h"

namespace greencc::energy {
namespace {

using sim::SimTime;
using sim::Simulator;

TEST(Meter, IdleHostDrawsIdlePower) {
  Simulator sim;
  HostEnergyMeter meter(sim, PackagePowerModel{});
  meter.start();
  sim.run_until(SimTime::seconds(2.0));
  meter.stop();
  const PowerCalibration c;
  EXPECT_NEAR(meter.energy().joules(), c.idle_watts.watts() * 2.0, 0.01);
  EXPECT_NEAR(meter.average_power().watts(), c.idle_watts.watts(), 0.01);
}

TEST(Meter, BusyCoreRaisesPower) {
  Simulator sim;
  HostEnergyMeter meter(sim, PackagePowerModel{});
  CpuCore core;
  meter.attach_core(&core);
  meter.start();
  // Keep the core 50% busy: 0.5 ms of work per 1 ms tick.
  for (int i = 0; i < 1000; ++i) {
    sim.schedule(SimTime::milliseconds(i), [&core, &sim] {
      core.acquire(sim.now(), 0.5e6);
    });
  }
  sim.run_until(SimTime::seconds(1.0));
  meter.stop();
  PackagePowerModel model{};
  HostActivity half;
  half.net_core_utils = {0.5};
  EXPECT_NEAR(meter.average_power().watts(), model.watts(half).watts(), 0.2);
}

TEST(Meter, PacketAccountingDrivesPpsAndGbps) {
  Simulator sim;
  HostEnergyMeter meter(sim, PackagePowerModel{});
  meter.start();
  // 100k packets of 1250 B over 1 s = 100 kpps, 1 Gb/s.
  for (int i = 0; i < 1000; ++i) {
    sim.schedule(SimTime::milliseconds(i), [&meter] {
      for (int k = 0; k < 100; ++k) meter.on_packet_sent(units::Bytes{1250});
    });
  }
  sim.run_until(SimTime::seconds(1.0));
  meter.stop();
  PackagePowerModel model{};
  HostActivity expect;
  expect.net_pkt_rate = units::PacketRate::pps(100'000);
  expect.net_rate = units::BitRate::gbps(1.0);
  EXPECT_NEAR(meter.average_power().watts(), model.watts(expect).watts(), 0.2);
}

TEST(Meter, StressCoresCounted) {
  Simulator sim;
  HostEnergyMeter meter(sim, PackagePowerModel{});
  meter.set_stress_cores(8);
  meter.start();
  sim.run_until(SimTime::seconds(1.0));
  meter.stop();
  const PowerCalibration c;
  EXPECT_NEAR(meter.average_power().watts(), c.idle_watts.watts() + 8 * c.stress_core_watts.watts(),
              0.05);
}

TEST(Meter, ReadEnergyMidRunIsPartial) {
  Simulator sim;
  HostEnergyMeter meter(sim, PackagePowerModel{});
  meter.start();
  std::uint64_t mid = 0;
  sim.schedule(SimTime::seconds(1.0), [&] { mid = meter.read_energy_uj(); });
  sim.run_until(SimTime::seconds(2.0));
  const std::uint64_t end = meter.read_energy_uj();
  const PowerCalibration c;
  EXPECT_NEAR(static_cast<double>(mid) / 1e6, c.idle_watts.watts(), 0.05);
  EXPECT_NEAR(static_cast<double>(end - mid) / 1e6, c.idle_watts.watts(), 0.05);
}

TEST(Meter, StopFreezesIntegration) {
  Simulator sim;
  HostEnergyMeter meter(sim, PackagePowerModel{});
  meter.start();
  sim.schedule(SimTime::seconds(1.0), [&] { meter.stop(); });
  sim.run_until(SimTime::seconds(5.0));
  const PowerCalibration c;
  EXPECT_NEAR(meter.energy().joules(), c.idle_watts.watts() * 1.0, 0.05);
}

TEST(Meter, RecordsPowerSamples) {
  Simulator sim;
  HostEnergyMeter meter(sim, PackagePowerModel{},
                        SimTime::milliseconds(10));
  meter.set_record_samples(true);
  meter.start();
  sim.run_until(SimTime::milliseconds(100));
  meter.stop();
  EXPECT_GE(meter.samples().size(), 9u);
  for (const auto& s : meter.samples()) {
    EXPECT_GT(s.power.watts(), 0.0);
  }
}

TEST(Meter, SubTickAccuracy) {
  // Energy over a partial tick must still integrate correctly.
  Simulator sim;
  HostEnergyMeter meter(sim, PackagePowerModel{}, SimTime::milliseconds(10));
  meter.start();
  sim.run_until(SimTime::milliseconds(15));  // 1.5 ticks
  meter.stop();
  const PowerCalibration c;
  EXPECT_NEAR(meter.energy().joules(), c.idle_watts.watts() * 0.015, 1e-3);
}

}  // namespace
}  // namespace greencc::energy
