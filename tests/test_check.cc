#include "check/check.h"

#include <gtest/gtest.h>

#include <string>

namespace greencc::check {
namespace {

// Every test installs the throwing handler so a fired check surfaces as a
// catchable CheckFailedError instead of aborting the test binary.

TEST(Check, PassingCheckIsSilent) {
  ScopedFailureHandler guard(&throwing_failure_handler);
  EXPECT_NO_THROW(GREENCC_CHECK(1 + 1 == 2) << "never evaluated");
}

TEST(Check, FailingCheckFiresHandler) {
  ScopedFailureHandler guard(&throwing_failure_handler);
  EXPECT_THROW(GREENCC_CHECK(false), CheckFailedError);
}

TEST(Check, FailureCarriesConditionAndLocation) {
  ScopedFailureHandler guard(&throwing_failure_handler);
  try {
    GREENCC_CHECK(2 < 1) << "context " << 42;
    FAIL() << "check did not fire";
  } catch (const CheckFailedError& e) {
    EXPECT_STREQ(e.info.condition, "2 < 1");
    EXPECT_EQ(e.info.message, "context 42");
    EXPECT_GT(e.info.line, 0);
    EXPECT_NE(std::string(e.info.file).find("test_check.cc"),
              std::string::npos);
    const std::string rendered = e.info.to_string();
    EXPECT_NE(rendered.find("check failed: 2 < 1"), std::string::npos);
    EXPECT_NE(rendered.find("context 42"), std::string::npos);
  }
}

TEST(Check, StreamOperandsNotEvaluatedWhenHealthy) {
  ScopedFailureHandler guard(&throwing_failure_handler);
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return "msg";
  };
  GREENCC_CHECK(true) << touch();
  EXPECT_EQ(evaluations, 0);
  EXPECT_THROW(GREENCC_CHECK(false) << touch(), CheckFailedError);
  EXPECT_EQ(evaluations, 1);
}

TEST(Check, HandlerInstallationNestsAndRestores) {
  FailureHandler before = set_failure_handler(nullptr);
  set_failure_handler(before);  // restore; we only wanted to read it
  {
    ScopedFailureHandler outer(&throwing_failure_handler);
    {
      ScopedFailureHandler inner(&throwing_failure_handler);
      EXPECT_THROW(GREENCC_CHECK(false), CheckFailedError);
    }
    // inner popped; outer still installed
    EXPECT_THROW(GREENCC_CHECK(false), CheckFailedError);
  }
  FailureHandler after = set_failure_handler(nullptr);
  set_failure_handler(after);
  EXPECT_EQ(before, after);
}

TEST(Check, DcheckConditionAndStreamTypecheckWhenCompiledOut) {
  ScopedFailureHandler guard(&throwing_failure_handler);
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return false;
  };
#ifdef GREENCC_AUDIT
  // Audit build: DCHECK is a real check.
  EXPECT_THROW(GREENCC_DCHECK(touch()) << "audit", CheckFailedError);
  EXPECT_EQ(evaluations, 1);
#else
  // Measurement build: the condition is dead code — never evaluated, never
  // fired — but it still had to compile, which is the point.
  EXPECT_NO_THROW(GREENCC_DCHECK(touch()) << "compiled out");
  EXPECT_EQ(evaluations, 0);
#endif
}

TEST(Check, MacroBindsAsSingleStatementInIfElse) {
  ScopedFailureHandler guard(&throwing_failure_handler);
  // A macro that expands to more than one statement would attach the else
  // to the wrong if here (or not compile).
  bool reached_else = false;
  if (false)
    GREENCC_CHECK(true) << "untaken";
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

}  // namespace
}  // namespace greencc::check
