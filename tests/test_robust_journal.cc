// SweepJournal: the crash-safety contract. Lines survive round trips
// exactly, later lines win, a torn tail is ignored, and a journal written
// under a different schema/config is never reused.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "robust/journal.h"

namespace {

using greencc::robust::SweepJournal;
using greencc::robust::fnv1a64;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Fnv1a64, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
  // Distinct configs must land on distinct hashes (the whole point).
  EXPECT_NE(fnv1a64("grid bytes=1"), fnv1a64("grid bytes=2"));
}

TEST(SweepJournal, RoundTripsPayloads) {
  const std::string path = temp_path("journal_roundtrip.jsonl");
  const std::uint64_t hash = fnv1a64("config-a");
  {
    SweepJournal journal(path, hash, false);
    journal.append(0, "1.5 2.25 0.125");
    journal.append(7, "plain text");
    journal.append(3, "");
  }
  const auto entries = SweepJournal::load(path, hash);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.at(0), "1.5 2.25 0.125");
  EXPECT_EQ(entries.at(7), "plain text");
  EXPECT_EQ(entries.at(3), "");
  std::remove(path.c_str());
}

TEST(SweepJournal, EscapedPayloadsSurvive) {
  const std::string path = temp_path("journal_escape.jsonl");
  const std::uint64_t hash = fnv1a64("config-esc");
  const std::string nasty = "a\"b\\c\nnewline\ttab\rcr\x01ctl";
  {
    SweepJournal journal(path, hash, false);
    journal.append(1, nasty);
  }
  const auto entries = SweepJournal::load(path, hash);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries.at(1), nasty);
  std::remove(path.c_str());
}

TEST(SweepJournal, LaterLinesWin) {
  const std::string path = temp_path("journal_idempotent.jsonl");
  const std::uint64_t hash = fnv1a64("config-b");
  {
    SweepJournal journal(path, hash, false);
    journal.append(4, "first");
    journal.append(4, "second");
    journal.append(4, "third");
  }
  const auto entries = SweepJournal::load(path, hash);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries.at(4), "third");
  std::remove(path.c_str());
}

TEST(SweepJournal, TruncatedTailLineIsIgnored) {
  const std::string path = temp_path("journal_torn.jsonl");
  const std::uint64_t hash = fnv1a64("config-c");
  {
    SweepJournal journal(path, hash, false);
    journal.append(0, "intact");
    journal.append(1, "will be torn");
  }
  // Simulate the only tear a crash can produce: the final append cut short.
  std::string contents = read_file(path);
  ASSERT_GT(contents.size(), 10u);
  contents.resize(contents.size() - 10);
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << contents;
  }
  const auto entries = SweepJournal::load(path, hash);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries.at(0), "intact");
  std::remove(path.c_str());
}

TEST(SweepJournal, ConfigHashMismatchIgnoresJournal) {
  const std::string path = temp_path("journal_config.jsonl");
  {
    SweepJournal journal(path, fnv1a64("old flags"), false);
    journal.append(0, "stale");
  }
  EXPECT_TRUE(SweepJournal::load(path, fnv1a64("new flags")).empty());
  // Re-opening with preserve=true under the new hash regenerates the file.
  {
    SweepJournal journal(path, fnv1a64("new flags"), true);
    journal.append(2, "fresh");
  }
  const auto entries = SweepJournal::load(path, fnv1a64("new flags"));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries.at(2), "fresh");
  EXPECT_TRUE(SweepJournal::load(path, fnv1a64("old flags")).empty());
  std::remove(path.c_str());
}

TEST(SweepJournal, PreserveAppendsToMatchingJournal) {
  const std::string path = temp_path("journal_resume.jsonl");
  const std::uint64_t hash = fnv1a64("config-d");
  {
    SweepJournal journal(path, hash, false);
    journal.append(0, "before crash");
  }
  {
    SweepJournal journal(path, hash, true);  // the resume path
    journal.append(1, "after resume");
  }
  const auto entries = SweepJournal::load(path, hash);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.at(0), "before crash");
  EXPECT_EQ(entries.at(1), "after resume");
  std::remove(path.c_str());
}

TEST(SweepJournal, MissingFileLoadsEmpty) {
  EXPECT_TRUE(
      SweepJournal::load(temp_path("does_not_exist.jsonl"), 1).empty());
}

TEST(SweepJournal, GarbageLinesAreSkipped) {
  const std::string path = temp_path("journal_garbage.jsonl");
  const std::uint64_t hash = fnv1a64("config-e");
  {
    SweepJournal journal(path, hash, false);
    journal.append(0, "good");
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "not json at all\n";
    out << "{\"task\":oops,\"payload\":\"x\"}\n";
    out << "{\"task\":9,\"payload\":\"unterminated\n";
  }
  const auto entries = SweepJournal::load(path, hash);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries.at(0), "good");
  std::remove(path.c_str());
}

}  // namespace
