#include "stats/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace greencc::stats {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RejectsWrongCellCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, WritesCsv) {
  Table t({"x", "y"});
  t.add_row({"1", "2.5"});
  t.add_row({"hello,world", "3"});
  const std::string path = ::testing::TempDir() + "/table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"hello,world\",3");
  std::remove(path.c_str());
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace greencc::stats
