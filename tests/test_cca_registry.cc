#include <gtest/gtest.h>

#include <algorithm>

#include "cca/cca.h"

namespace greencc::cca {
namespace {

TEST(Registry, ListsAllTenAlgorithmsOfThePaper) {
  const auto& names = all_names();
  EXPECT_EQ(names.size(), 10u);
  for (const char* expected :
       {"reno", "cubic", "dctcp", "bbr", "bbr2", "vegas", "scalable",
        "westwood", "highspeed", "baseline"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(Registry, ConstructsEveryListedAlgorithm) {
  for (const auto& name : all_names()) {
    auto cc = make_cca(name, CcaConfig{});
    ASSERT_NE(cc, nullptr) << name;
    EXPECT_EQ(cc->name(), name);
    EXPECT_GE(cc->cwnd_segments(), 1.0) << name;
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_cca("quic-magic", CcaConfig{}), std::invalid_argument);
  EXPECT_THROW(make_cca("", CcaConfig{}), std::invalid_argument);
}

TEST(Registry, OnlyDctcpWantsEcn) {
  for (const auto& name : all_names()) {
    auto cc = make_cca(name, CcaConfig{});
    EXPECT_EQ(cc->wants_ecn(), name == "dctcp") << name;
  }
}

TEST(Registry, OnlyBbrFamilyPaces) {
  for (const auto& name : all_names()) {
    auto cc = make_cca(name, CcaConfig{});
    const bool paces = cc->pacing_rate().bps() > 0.0;
    EXPECT_EQ(paces, name == "bbr" || name == "bbr2") << name;
  }
}

TEST(Registry, InitialCwndHonoured) {
  CcaConfig config;
  config.initial_cwnd = 4;
  for (const auto& name : all_names()) {
    if (name == "baseline" || name == "bbr" || name == "bbr2") continue;
    auto cc = make_cca(name, config);
    EXPECT_DOUBLE_EQ(cc->cwnd_segments(), 4.0) << name;
  }
}

TEST(Registry, DistinctInstancesAreIndependent) {
  auto a = make_cca("reno", CcaConfig{});
  auto b = make_cca("reno", CcaConfig{});
  AckEvent ev;
  ev.now = sim::SimTime::milliseconds(1);
  ev.acked_segments = 5;
  a->on_ack(ev);
  EXPECT_GT(a->cwnd_segments(), b->cwnd_segments());
}

}  // namespace
}  // namespace greencc::cca
