#include "energy/cpu.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace greencc::energy {
namespace {

using sim::SimTime;

TEST(CpuCore, IdleCoreStartsImmediately) {
  CpuCore core;
  const SimTime done = core.acquire(SimTime::microseconds(10), 500.0);
  EXPECT_EQ(done, SimTime::microseconds(10) + SimTime::nanoseconds(500));
}

TEST(CpuCore, BackToBackWorkSerializes) {
  CpuCore core;
  const SimTime t = SimTime::zero();
  const SimTime d1 = core.acquire(t, 1000.0);
  const SimTime d2 = core.acquire(t, 1000.0);
  EXPECT_EQ(d1, SimTime::nanoseconds(1000));
  EXPECT_EQ(d2, SimTime::nanoseconds(2000));
}

TEST(CpuCore, IdleGapResetsStart) {
  CpuCore core;
  core.acquire(SimTime::zero(), 1000.0);
  // Next work arrives long after the first completes.
  const SimTime done = core.acquire(SimTime::microseconds(10), 1000.0);
  EXPECT_EQ(done, SimTime::microseconds(11));
}

TEST(CpuCore, BusyIntegralExactAcrossBacklog) {
  CpuCore core;
  core.acquire(SimTime::zero(), 10'000.0);  // busy until 10 us
  // At t = 4 us, 4 us of work is complete, 6 us still backlogged.
  EXPECT_DOUBLE_EQ(core.busy_ns_until(SimTime::microseconds(4)), 4'000.0);
  EXPECT_DOUBLE_EQ(core.busy_ns_until(SimTime::microseconds(10)), 10'000.0);
  // After completion the integral stays flat.
  EXPECT_DOUBLE_EQ(core.busy_ns_until(SimTime::microseconds(20)), 10'000.0);
}

TEST(CpuCore, BusyIntegralMonotoneInEventOrder) {
  // Interleave acquires and samples the way the simulator does: time only
  // moves forward. The integral must be monotone and total to the assigned
  // work.
  CpuCore core;
  double prev = 0.0;
  for (int i = 0; i < 10; ++i) {
    core.acquire(SimTime::microseconds(i * 2), 1500.0);
    const double b = core.busy_ns_until(SimTime::microseconds(i * 2));
    EXPECT_GE(b, prev);
    prev = b;
  }
  EXPECT_DOUBLE_EQ(core.busy_ns_until(SimTime::microseconds(100)), 15'000.0);
}

TEST(CpuCore, BusyAtReflectsBacklog) {
  CpuCore core;
  EXPECT_FALSE(core.busy_at(SimTime::zero()));
  core.acquire(SimTime::zero(), 2'000.0);
  EXPECT_TRUE(core.busy_at(SimTime::nanoseconds(1'000)));
  EXPECT_FALSE(core.busy_at(SimTime::nanoseconds(2'000)));
}

TEST(CpuCore, JitterPerturbsWithinAmplitude) {
  sim::Rng rng(99);
  CpuCore core;
  core.set_jitter(&rng, 0.1);
  for (int i = 0; i < 1000; ++i) {
    CpuCore fresh;
    fresh.set_jitter(&rng, 0.1);
    const SimTime done = fresh.acquire(SimTime::zero(), 1000.0);
    EXPECT_GE(done.ns(), 900);
    EXPECT_LE(done.ns(), 1100);
  }
}

TEST(CpuCore, JitterIsDeterministicPerSeed) {
  sim::Rng rng1(7), rng2(7);
  CpuCore a, b;
  a.set_jitter(&rng1, 0.05);
  b.set_jitter(&rng2, 0.05);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.acquire(SimTime::zero(), 1000.0),
              b.acquire(SimTime::zero(), 1000.0));
  }
}

TEST(CpuCore, NoJitterByDefault) {
  CpuCore core;
  EXPECT_EQ(core.acquire(SimTime::zero(), 1234.0),
            SimTime::nanoseconds(1234));
}

}  // namespace
}  // namespace greencc::energy
