#include "cca/cubic.h"

#include <gtest/gtest.h>

#include <cmath>

namespace greencc::cca {
namespace {

using sim::SimTime;

CcaConfig config() {
  CcaConfig c;
  c.mss_bytes = units::Bytes{1448};
  c.initial_cwnd = 10;
  return c;
}

AckEvent ack_at(SimTime now, std::int64_t acked = 1) {
  AckEvent ev;
  ev.now = now;
  ev.acked_segments = acked;
  ev.rtt = SimTime::microseconds(100);
  ev.srtt = SimTime::microseconds(100);
  ev.min_rtt = SimTime::microseconds(100);
  ev.inflight = 50;
  ev.delivered = 1;
  return ev;
}

LossEvent loss_at(SimTime now, std::int64_t inflight) {
  LossEvent ev;
  ev.now = now;
  ev.inflight = inflight;
  ev.lost_segments = 1;
  return ev;
}

TEST(Cubic, BetaDecreaseIsPointSeven) {
  Cubic cubic(config());
  SimTime t = SimTime::milliseconds(1);
  for (int i = 0; i < 90; ++i) cubic.on_ack(ack_at(t));  // slow start to 100
  cubic.on_loss(loss_at(t, 100));
  EXPECT_NEAR(cubic.cwnd_segments(), 70.0, 0.5);
}

TEST(Cubic, FastConvergenceLowersWmaxOnBackToBackLosses) {
  Cubic cubic(config());
  SimTime t = SimTime::milliseconds(1);
  for (int i = 0; i < 90; ++i) cubic.on_ack(ack_at(t));
  cubic.on_loss(loss_at(t, 100));  // W_max = 100, cwnd = 70
  // A second loss below the previous W_max triggers fast convergence:
  // the recorded W_max becomes 70*(2-0.7)/2 = 45.5 rather than 70.
  t += SimTime::milliseconds(1);
  cubic.on_loss(loss_at(t, 70));
  EXPECT_NEAR(cubic.cwnd_segments(), 49.0, 0.5);  // 0.7 * 70
}

TEST(Cubic, ClimbsBackTowardWmaxAfterLoss) {
  Cubic cubic(config());
  SimTime t = SimTime::milliseconds(1);
  for (int i = 0; i < 90; ++i) cubic.on_ack(ack_at(t));
  cubic.on_loss(loss_at(t, 100));
  double prev_w = cubic.cwnd_segments();
  // RTT = 100 us, so 40 ms carries ~400 windows of ACKs; 600 ACKs per step
  // is still conservative.
  for (int step = 0; step < 5; ++step) {
    t += SimTime::milliseconds(40);
    for (int i = 0; i < 600; ++i) cubic.on_ack(ack_at(t));
    const double w = cubic.cwnd_segments();
    EXPECT_GE(w, prev_w);
    prev_w = w;
  }
  EXPECT_GT(prev_w, 85.0);   // most of the way back to W_max = 100
  EXPECT_LE(prev_w, 105.0);  // without wild overshoot
}

TEST(Cubic, EventuallyProbesPastWmax) {
  Cubic cubic(config());
  SimTime t = SimTime::milliseconds(1);
  for (int i = 0; i < 90; ++i) cubic.on_ack(ack_at(t));
  cubic.on_loss(loss_at(t, 100));
  // Long convex phase: after enough time the window exceeds the old W_max.
  for (int step = 0; step < 150; ++step) {
    t += SimTime::milliseconds(40);
    for (int i = 0; i < 40; ++i) cubic.on_ack(ack_at(t));
  }
  EXPECT_GT(cubic.cwnd_segments(), 100.0);
}

TEST(Cubic, TcpFriendlyFloorAtSmallWindows) {
  // At small windows the Reno-equivalent estimate W_est keeps CUBIC at
  // least as aggressive as AIMD even where the cubic target is flat.
  Cubic cubic(config());
  SimTime t = SimTime::milliseconds(1);
  for (int i = 0; i < 10; ++i) cubic.on_ack(ack_at(t));  // cwnd 20
  cubic.on_loss(loss_at(t, 20));                         // cwnd 14
  const double w0 = cubic.cwnd_segments();
  t += SimTime::microseconds(100);
  for (int i = 0; i < static_cast<int>(w0); ++i) cubic.on_ack(ack_at(t));
  EXPECT_GT(cubic.cwnd_segments(), w0 + 0.3);
}

TEST(Cubic, RtoResetsEpochAndWindow) {
  Cubic cubic(config());
  SimTime t = SimTime::milliseconds(1);
  for (int i = 0; i < 90; ++i) cubic.on_ack(ack_at(t));
  cubic.on_rto(t);
  EXPECT_DOUBLE_EQ(cubic.cwnd_segments(), 1.0);
  // Recovers via slow start.
  for (int i = 0; i < 20; ++i) {
    cubic.on_ack(ack_at(t + SimTime::milliseconds(1)));
  }
  EXPECT_GT(cubic.cwnd_segments(), 15.0);
}

TEST(Cubic, PlateauTimeMatchesAnalyticK) {
  // K = cbrt(W_max * (1-beta) / C) = cbrt(100*0.3/0.4) ~= 4.217 s: the
  // window returns to W_max about K seconds after the loss.
  Cubic cubic(config());
  SimTime t = SimTime::milliseconds(1);
  for (int i = 0; i < 90; ++i) cubic.on_ack(ack_at(t));
  cubic.on_loss(loss_at(t, 100));
  // The epoch is anchored at the first ACK after the loss (as in the
  // kernel), so send one immediately.
  cubic.on_ack(ack_at(t));
  const double k = std::cbrt(100.0 * 0.3 / 0.4);
  SimTime probe = t + SimTime::seconds(k * 0.9);
  for (int i = 0; i < 800; ++i) cubic.on_ack(ack_at(probe));
  EXPECT_LT(cubic.cwnd_segments(), 101.0);
  probe = t + SimTime::seconds(k * 1.3);
  for (int i = 0; i < 800; ++i) cubic.on_ack(ack_at(probe));
  EXPECT_GT(cubic.cwnd_segments(), 97.0);
}

}  // namespace
}  // namespace greencc::cca
