#include "fault/impairment.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "check/ledger.h"
#include "fault/plan.h"
#include "fault/schedule.h"
#include "net/port.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace greencc::fault {
namespace {

using sim::SimTime;
using sim::Simulator;

class Collector : public net::PacketHandler {
 public:
  explicit Collector(Simulator& sim) : sim_(sim) {}
  void handle(net::Packet pkt) override {
    arrivals.emplace_back(sim_.now(), pkt);
  }
  std::vector<std::pair<SimTime, net::Packet>> arrivals;

 private:
  Simulator& sim_;
};

net::Packet pkt_of(std::int64_t seq, std::int32_t size = 1500) {
  net::Packet p;
  p.flow = 1;
  p.seq = seq;
  p.size_bytes = units::Bytes{size};
  return p;
}

FaultEvent event_at(SimTime at, FaultEvent::Kind kind) {
  FaultEvent event;
  event.at = at;
  event.kind = kind;
  return event;
}

// Offer `n` packets, one per microsecond, so delayed re-injections can
// interleave with later arrivals.
void offer_spaced(Simulator& sim, ImpairedLink& link, int n) {
  for (int i = 0; i < n; ++i) {
    sim.schedule_at(SimTime::microseconds(i),
                    [&link, i] { link.handle(pkt_of(i)); });
  }
  sim.run();
}

TEST(ImpairedLink, AllZeroConfigIsSynchronousPassThrough) {
  Simulator sim;
  Collector sink(sim);
  ImpairedLink link(sim, "imp", ImpairmentConfig{}, &sink);
  EXPECT_FALSE(ImpairmentConfig{}.any_random());
  link.handle(pkt_of(0));
  // Synchronous: delivered before the simulator even runs, so inserting the
  // disabled stage cannot perturb event ordering.
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first, SimTime::zero());
  EXPECT_EQ(link.stats().arrived, 1u);
  EXPECT_EQ(link.stats().forwarded, 1u);
  EXPECT_EQ(link.total_drops(), 0u);
}

TEST(ImpairedLink, IidLossDropsNearConfiguredRate) {
  Simulator sim;
  Collector sink(sim);
  ImpairmentConfig cfg;
  cfg.loss_rate = 0.1;
  cfg.seed = 7;
  ImpairedLink link(sim, "imp", cfg, &sink);
  const int n = 10'000;
  offer_spaced(sim, link, n);
  EXPECT_NEAR(static_cast<double>(link.stats().loss_drops), 1000.0, 150.0);
  EXPECT_EQ(link.stats().arrived, static_cast<std::uint64_t>(n));
  EXPECT_EQ(link.stats().forwarded + link.stats().loss_drops,
            static_cast<std::uint64_t>(n));
  EXPECT_EQ(sink.arrivals.size(), static_cast<std::size_t>(n) -
                                      link.stats().loss_drops);
}

TEST(ImpairedLink, GilbertElliottLossComesInBursts) {
  Simulator sim;
  Collector sink(sim);
  ImpairmentConfig cfg;
  cfg.ge_p_bad = 0.01;  // rare entry into the bad state...
  cfg.ge_p_good = 0.2;  // ...mean burst length 5 packets
  cfg.seed = 11;
  ImpairedLink link(sim, "imp", cfg, &sink);
  const int n = 10'000;
  offer_spaced(sim, link, n);
  ASSERT_GT(link.stats().burst_drops, 0u);
  EXPECT_EQ(link.stats().loss_drops, 0u);  // iid stage disabled

  // The same loss volume spread i.i.d. would almost never produce adjacent
  // drops; the chain must. Find the dropped seqs and look for a run >= 2.
  std::vector<bool> delivered(n, false);
  for (const auto& [t, p] : sink.arrivals) delivered[p.seq] = true;
  int best_run = 0;
  int run = 0;
  for (int i = 0; i < n; ++i) {
    run = delivered[i] ? 0 : run + 1;
    best_run = std::max(best_run, run);
  }
  EXPECT_GE(best_run, 2);
}

TEST(ImpairedLink, CorruptionForwardsMarkedPackets) {
  Simulator sim;
  Collector sink(sim);
  check::PacketLedger ledger;
  ImpairmentConfig cfg;
  cfg.corrupt_rate = 1.0;
  ImpairedLink link(sim, "imp", cfg, &sink);
  link.set_ledger(&ledger);
  offer_spaced(sim, link, 5);
  // Corrupted packets still traverse the wire (they cost bandwidth); the
  // loss is booked against the ledger at mark time.
  ASSERT_EQ(sink.arrivals.size(), 5u);
  for (const auto& [t, p] : sink.arrivals) EXPECT_TRUE(p.corrupted);
  EXPECT_EQ(link.stats().corrupted, 5u);
  EXPECT_EQ(link.total_drops(), 0u);
  EXPECT_EQ(ledger.data_fault_drops(1), 5);
}

TEST(ImpairedLink, CorruptedPacketLaterQueueDropDoesNotDoubleBook) {
  // The ledger books a corrupted packet once, at mark time; if congestion
  // happens to tail-drop it afterwards the congestive books must not count
  // it again.
  check::PacketLedger ledger;
  net::Packet p = pkt_of(0);
  p.corrupted = true;
  ledger.on_drop(p);
  EXPECT_EQ(ledger.data_drops(1), 0);
}

TEST(ImpairedLink, ReorderHoldsAndRedeliversEveryPacket) {
  Simulator sim;
  Collector sink(sim);
  ImpairmentConfig cfg;
  cfg.reorder_rate = 0.3;
  cfg.reorder_delay = SimTime::microseconds(10);
  cfg.seed = 3;
  ImpairedLink link(sim, "imp", cfg, &sink);
  const int n = 200;
  offer_spaced(sim, link, n);
  // Bounded: everything is delivered exactly once...
  ASSERT_EQ(sink.arrivals.size(), static_cast<std::size_t>(n));
  std::vector<bool> seen(n, false);
  bool out_of_order = false;
  std::int64_t prev = -1;
  for (const auto& [t, p] : sink.arrivals) {
    EXPECT_FALSE(seen[p.seq]);
    seen[p.seq] = true;
    if (p.seq < prev) out_of_order = true;
    prev = std::max(prev, p.seq);
  }
  // ...but held packets were overtaken by later ones.
  EXPECT_GT(link.stats().reordered, 0u);
  EXPECT_TRUE(out_of_order);
  EXPECT_EQ(link.held_packets(), 0);
}

TEST(ImpairedLink, DuplicationDeliversTheCopyToo) {
  Simulator sim;
  Collector sink(sim);
  check::PacketLedger ledger;
  ImpairmentConfig cfg;
  cfg.duplicate_rate = 1.0;
  ImpairedLink link(sim, "imp", cfg, &sink);
  link.set_ledger(&ledger);
  offer_spaced(sim, link, 4);
  EXPECT_EQ(sink.arrivals.size(), 8u);
  EXPECT_EQ(link.stats().duplicated, 4u);
  EXPECT_EQ(link.stats().forwarded, 8u);
  // Fabricated copies are credited to the injected column so receiver
  // arrivals stay balanced against sender transmissions.
  EXPECT_EQ(ledger.data_injected(1), 4);
}

TEST(ImpairedLink, JitterDelaysWithinBound) {
  Simulator sim;
  Collector sink(sim);
  ImpairmentConfig cfg;
  cfg.jitter_max = SimTime::microseconds(10);
  cfg.seed = 5;
  ImpairedLink link(sim, "imp", cfg, &sink);
  const int n = 100;
  offer_spaced(sim, link, n);
  ASSERT_EQ(sink.arrivals.size(), static_cast<std::size_t>(n));
  bool any_delayed = false;
  for (const auto& [t, p] : sink.arrivals) {
    const SimTime sent = SimTime::microseconds(p.seq);
    EXPECT_GE(t, sent);
    EXPECT_LT(t, sent + SimTime::microseconds(10));
    if (t > sent) any_delayed = true;
  }
  EXPECT_TRUE(any_delayed);
  EXPECT_EQ(link.stats().jittered, static_cast<std::uint64_t>(n));
}

TEST(ImpairedLink, LinkDownDiscardsUntilBroughtUp) {
  Simulator sim;
  Collector sink(sim);
  check::PacketLedger ledger;
  ImpairedLink link(sim, "imp", ImpairmentConfig{}, &sink);
  link.set_ledger(&ledger);
  link.handle(pkt_of(0));
  link.set_link_down(true);
  EXPECT_TRUE(link.link_down());
  link.handle(pkt_of(1));
  link.handle(pkt_of(2));
  link.set_link_down(false);
  link.handle(pkt_of(3));
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].second.seq, 0);
  EXPECT_EQ(sink.arrivals[1].second.seq, 3);
  EXPECT_EQ(link.stats().down_drops, 2u);
  EXPECT_EQ(ledger.data_fault_drops(1), 2);
}

TEST(ImpairedLink, EmitsTypedTraceEventsPerFault) {
  Simulator sim;
  Collector sink(sim);
  trace::VectorTraceSink trace;
  ImpairmentConfig cfg;
  cfg.corrupt_rate = 1.0;
  cfg.duplicate_rate = 1.0;
  ImpairedLink link(sim, "imp", cfg, &sink);
  link.set_trace(&trace);
  offer_spaced(sim, link, 3);
  EXPECT_EQ(trace.count(trace::EventClass::kFaultCorrupt), 3u);
  EXPECT_EQ(trace.count(trace::EventClass::kFaultDuplicate), 3u);

  link.set_link_down(true);
  link.handle(pkt_of(9));
  EXPECT_EQ(trace.count(trace::EventClass::kFaultLink), 1u);
  EXPECT_EQ(trace.count(trace::EventClass::kFaultLoss), 1u);
}

TEST(ImpairedLink, AuditBalancesUnderMixedImpairment) {
  Simulator sim;
  Collector sink(sim);
  ImpairmentConfig cfg;
  cfg.loss_rate = 0.05;
  cfg.ge_p_bad = 0.01;
  cfg.ge_p_good = 0.3;
  cfg.corrupt_rate = 0.02;
  cfg.reorder_rate = 0.1;
  cfg.duplicate_rate = 0.05;
  cfg.jitter_max = SimTime::microseconds(3);
  cfg.seed = 23;
  ImpairedLink link(sim, "imp", cfg, &sink);
  offer_spaced(sim, link, 5'000);
  std::vector<std::string> problems;
  link.audit(problems);
  EXPECT_TRUE(problems.empty()) << problems.front();
  EXPECT_EQ(link.held_packets(), 0);
  EXPECT_EQ(link.stats().arrived + link.stats().duplicated,
            link.stats().forwarded + link.total_drops());
}

TEST(ImpairedLink, SameSeedSameFaults) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    Collector sink(sim);
    ImpairmentConfig cfg;
    cfg.loss_rate = 0.1;
    cfg.duplicate_rate = 0.05;
    cfg.seed = seed;
    ImpairedLink link(sim, "imp", cfg, &sink);
    for (int i = 0; i < 2'000; ++i) link.handle(pkt_of(i));
    std::vector<std::int64_t> seqs;
    for (const auto& [t, p] : sink.arrivals) seqs.push_back(p.seq);
    return seqs;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(ImpairedLink, StagesDrawFromIndependentStreams) {
  // Enabling an unrelated stage must not shift which packets the loss stage
  // drops — each stage owns a private splitmix-derived stream.
  auto dropped = [](bool with_duplication) {
    Simulator sim;
    Collector sink(sim);
    ImpairmentConfig cfg;
    cfg.loss_rate = 0.1;
    cfg.seed = 99;
    if (with_duplication) cfg.duplicate_rate = 0.5;
    ImpairedLink link(sim, "imp", cfg, &sink);
    for (int i = 0; i < 2'000; ++i) link.handle(pkt_of(i));
    std::vector<bool> delivered(2'000, false);
    for (const auto& [t, p] : sink.arrivals) delivered[p.seq] = true;
    return delivered;
  };
  EXPECT_EQ(dropped(false), dropped(true));
}

TEST(FaultSchedule, FlapsTheLinkOnTime) {
  Simulator sim;
  Collector sink(sim);
  ImpairedLink link(sim, "imp", ImpairmentConfig{}, &sink);
  trace::VectorTraceSink trace;
  link.set_trace(&trace);
  FaultSchedule schedule;
  schedule.add(event_at(SimTime::microseconds(10),
                        FaultEvent::Kind::kLinkDown));
  schedule.add(event_at(SimTime::microseconds(20), FaultEvent::Kind::kLinkUp));
  schedule.arm(sim, nullptr, &link, &trace);
  for (int i = 0; i < 3; ++i) {
    // Offered at t = 5, 15, 25 us: before, during and after the outage.
    sim.schedule_at(SimTime::microseconds(5 + 10 * i),
                    [&link, i] { link.handle(pkt_of(i)); });
  }
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].second.seq, 0);
  EXPECT_EQ(sink.arrivals[1].second.seq, 2);
  EXPECT_EQ(link.stats().down_drops, 1u);
  EXPECT_EQ(schedule.fired(), 2u);
  EXPECT_EQ(trace.count(trace::EventClass::kFaultLink), 2u);
}

TEST(FaultSchedule, ReratesAndRedelaysThePortMidRun) {
  Simulator sim;
  Collector sink(sim);
  net::PortConfig port_cfg;
  port_cfg.rate = units::BitRate::bps(10e9);  // 1500 B = 1.2 us serialization
  port_cfg.propagation = SimTime::zero();
  net::QueuedPort port(sim, "p", port_cfg, &sink);
  FaultSchedule schedule;
  FaultEvent rate;
  rate.at = SimTime::microseconds(10);
  rate.kind = FaultEvent::Kind::kRate;
  rate.rate = units::BitRate::bps(1e9);  // 10x slower: 12 us serialization
  schedule.add(rate);
  FaultEvent delay;
  delay.at = SimTime::microseconds(10);
  delay.kind = FaultEvent::Kind::kDelay;
  delay.delay = SimTime::microseconds(50);
  schedule.add(delay);
  schedule.arm(sim, &port, nullptr, nullptr);
  port.handle(pkt_of(0));
  sim.schedule_at(SimTime::microseconds(20),
                  [&port] { port.handle(pkt_of(1)); });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].first, SimTime::nanoseconds(1200));
  EXPECT_EQ(sink.arrivals[1].first,
            SimTime::microseconds(20) + SimTime::microseconds(12) +
                SimTime::microseconds(50));
  EXPECT_EQ(schedule.fired(), 2u);
}

TEST(FaultSchedule, ArmValidatesTargets) {
  Simulator sim;
  FaultSchedule down;
  down.add(event_at(SimTime::microseconds(1), FaultEvent::Kind::kLinkDown));
  EXPECT_THROW(down.arm(sim, nullptr, nullptr, nullptr), std::logic_error);

  FaultSchedule bad_rate;
  FaultEvent event;
  event.at = SimTime::microseconds(1);
  event.kind = FaultEvent::Kind::kRate;
  event.rate = units::BitRate::bps(0.0);
  bad_rate.add(event);
  Collector sink(sim);
  net::QueuedPort port(sim, "p", net::PortConfig{}, &sink);
  EXPECT_THROW(bad_rate.arm(sim, &port, nullptr, nullptr), std::logic_error);
}

TEST(FaultPlan, ParsesImpairmentSpec) {
  const ImpairmentConfig cfg = parse_impairments(
      "loss=1e-3,corrupt=1e-4,reorder=0.01,reorder_delay_us=200,dup=1e-3,"
      "jitter_us=50,ge_p=0.001,ge_r=0.1,ge_loss=0.9,seed=7");
  EXPECT_DOUBLE_EQ(cfg.loss_rate, 1e-3);
  EXPECT_DOUBLE_EQ(cfg.corrupt_rate, 1e-4);
  EXPECT_DOUBLE_EQ(cfg.reorder_rate, 0.01);
  EXPECT_EQ(cfg.reorder_delay, SimTime::microseconds(200));
  EXPECT_DOUBLE_EQ(cfg.duplicate_rate, 1e-3);
  EXPECT_EQ(cfg.jitter_max, SimTime::microseconds(50));
  EXPECT_DOUBLE_EQ(cfg.ge_p_bad, 0.001);
  EXPECT_DOUBLE_EQ(cfg.ge_p_good, 0.1);
  EXPECT_DOUBLE_EQ(cfg.ge_loss_bad, 0.9);
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_TRUE(cfg.any_random());

  EXPECT_FALSE(parse_impairments("").any_random());
}

TEST(FaultPlan, RejectsMalformedImpairmentSpecs) {
  EXPECT_THROW(parse_impairments("frobnicate=1"), std::invalid_argument);
  EXPECT_THROW(parse_impairments("loss=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_impairments("loss=-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_impairments("loss"), std::invalid_argument);
  EXPECT_THROW(parse_impairments("loss=abc"), std::invalid_argument);
  // A GE chain that can enter the bad state but never leave it.
  EXPECT_THROW(parse_impairments("ge_p=0.1"), std::invalid_argument);
}

TEST(FaultPlan, ParsesFaultEventSpec) {
  const FaultSchedule schedule =
      parse_fault_events("down@0.5,up@0.6,rate=5e9@1.0,delay_us=50@2.0");
  ASSERT_EQ(schedule.events().size(), 4u);
  EXPECT_EQ(schedule.events()[0].kind, FaultEvent::Kind::kLinkDown);
  EXPECT_EQ(schedule.events()[0].at, SimTime::milliseconds(500));
  EXPECT_EQ(schedule.events()[1].kind, FaultEvent::Kind::kLinkUp);
  EXPECT_EQ(schedule.events()[2].kind, FaultEvent::Kind::kRate);
  EXPECT_DOUBLE_EQ(schedule.events()[2].rate.bps(), 5e9);
  EXPECT_EQ(schedule.events()[3].kind, FaultEvent::Kind::kDelay);
  EXPECT_EQ(schedule.events()[3].delay, SimTime::microseconds(50));

  EXPECT_THROW(parse_fault_events("down"), std::invalid_argument);
  EXPECT_THROW(parse_fault_events("warp@1.0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_events("rate=0@1.0"), std::invalid_argument);
}

TEST(FaultPlan, ActiveOnlyWhenInstalledOrScheduled) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  plan.install = true;
  EXPECT_TRUE(plan.active());
  plan.install = false;
  plan.schedule.add(
      event_at(SimTime::microseconds(1), FaultEvent::Kind::kLinkDown));
  EXPECT_TRUE(plan.active());
}

}  // namespace
}  // namespace greencc::fault
