#include "energy/rapl.h"

#include <gtest/gtest.h>

namespace greencc::energy {
namespace {

using sim::SimTime;

TEST(Rapl, StartsAtZero) {
  RaplCounter rapl;
  EXPECT_EQ(rapl.energy_uj(), 0u);
  EXPECT_DOUBLE_EQ(rapl.joules(), 0.0);
}

TEST(Rapl, IntegratesConstantPower) {
  RaplCounter rapl;
  rapl.advance(SimTime::seconds(2.0), 10.0);  // 10 W for 2 s = 20 J
  EXPECT_NEAR(rapl.joules(), 20.0, 1e-9);
  EXPECT_EQ(rapl.energy_uj(), 20'000'000u);
}

TEST(Rapl, AccumulatesSegments) {
  RaplCounter rapl;
  rapl.advance(SimTime::seconds(1.0), 5.0);   // 5 J
  rapl.advance(SimTime::seconds(3.0), 20.0);  // + 2 s * 20 W = 40 J
  EXPECT_NEAR(rapl.joules(), 45.0, 1e-9);
}

TEST(Rapl, ZeroDurationAddsNothing) {
  RaplCounter rapl;
  rapl.advance(SimTime::seconds(1.0), 5.0);
  rapl.advance(SimTime::seconds(1.0), 100.0);
  EXPECT_NEAR(rapl.joules(), 5.0, 1e-9);
}

TEST(Rapl, MonotoneCounter) {
  RaplCounter rapl;
  double prev = 0.0;
  for (int i = 1; i <= 10; ++i) {
    rapl.advance(SimTime::seconds(i * 0.5), 7.5);
    EXPECT_GE(rapl.joules(), prev);
    prev = rapl.joules();
  }
}

TEST(Rapl, TimeBackwardsThrows) {
  RaplCounter rapl;
  rapl.advance(SimTime::seconds(2.0), 1.0);
  EXPECT_THROW(rapl.advance(SimTime::seconds(1.0), 1.0), std::logic_error);
}

TEST(Rapl, BeforeAfterReadProtocol) {
  // The measurement protocol of §3: read the counter before and after; the
  // difference is the experiment's energy.
  RaplCounter rapl;
  rapl.advance(SimTime::seconds(10.0), 21.49);  // pre-experiment idle
  const auto before = rapl.energy_uj();
  rapl.advance(SimTime::seconds(12.0), 35.82);  // the experiment
  const auto after = rapl.energy_uj();
  EXPECT_NEAR(static_cast<double>(after - before) / 1e6, 2.0 * 35.82, 1e-3);
}

}  // namespace
}  // namespace greencc::energy
