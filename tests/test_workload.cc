#include "app/workload.h"
#include "units/units.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace greencc::app {
namespace {

TEST(Distributions, FixedSizeIsConstant) {
  sim::Rng rng(1);
  const auto dist = fixed_size(12'345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist->sample(rng), 12'345);
  EXPECT_DOUBLE_EQ(dist->mean_bytes(), 12'345.0);
}

TEST(Distributions, BoundedParetoStaysInBounds) {
  sim::Rng rng(2);
  const auto dist = bounded_pareto(1.2, units::Bytes{1'000}, units::Bytes{10'000'000});
  for (int i = 0; i < 10'000; ++i) {
    const auto x = dist->sample(rng);
    ASSERT_GE(x, 1'000);
    ASSERT_LE(x, 10'000'000);
  }
}

TEST(Distributions, BoundedParetoSampleMeanMatchesAnalytic) {
  sim::Rng rng(3);
  const auto dist = bounded_pareto(1.5, units::Bytes{1'000}, units::Bytes{1'000'000});
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(dist->sample(rng));
  }
  EXPECT_NEAR(sum / n, dist->mean_bytes(), 0.05 * dist->mean_bytes());
}

TEST(Distributions, BoundedParetoRejectsBadParameters) {
  EXPECT_THROW(bounded_pareto(0.0, units::Bytes{1}, units::Bytes{10}), std::invalid_argument);
  EXPECT_THROW(bounded_pareto(1.2, units::Bytes{10}, units::Bytes{10}), std::invalid_argument);
}

TEST(Distributions, EmpiricalCdfInterpolates) {
  sim::Rng rng(4);
  const auto dist = empirical_cdf("test", {{100, 0.5}, {1'000, 1.0}});
  int low = 0, high = 0;
  for (int i = 0; i < 10'000; ++i) {
    const auto x = dist->sample(rng);
    ASSERT_GE(x, 100);
    ASSERT_LE(x, 1'000);
    (x <= 550 ? low : high) += 1;
  }
  // Half the mass sits in each segment... the first segment collapses to
  // its anchor region; just require both segments are hit.
  EXPECT_GT(low, 1'000);
  EXPECT_GT(high, 1'000);
}

TEST(Distributions, EmpiricalCdfSampleMeanMatchesAnalytic) {
  sim::Rng rng(5);
  const auto dist = websearch_workload();
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(dist->sample(rng));
  }
  EXPECT_NEAR(sum / n, dist->mean_bytes(), 0.05 * dist->mean_bytes());
}

TEST(Distributions, EmpiricalCdfValidation) {
  EXPECT_THROW(empirical_cdf("bad", {{100, 0.5}}), std::invalid_argument);
  EXPECT_THROW(empirical_cdf("bad", {{100, 0.5}, {50, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(empirical_cdf("bad", {{100, 0.5}, {200, 0.4}}),
               std::invalid_argument);
  EXPECT_THROW(empirical_cdf("bad", {{100, 0.5}, {200, 0.9}}),
               std::invalid_argument);
}

TEST(Distributions, WorkloadShapes) {
  // Data mining is mice-heavier but has a far heavier tail, so its mean is
  // an order of magnitude above web search's.
  const auto web = websearch_workload();
  const auto mining = datamining_workload();
  EXPECT_GT(mining->mean_bytes(), 5.0 * web->mean_bytes());
  sim::Rng rng(6);
  int web_mice = 0, mining_mice = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (web->sample(rng) < 10'000) ++web_mice;
    if (mining->sample(rng) < 10'000) ++mining_mice;
  }
  EXPECT_GT(mining_mice, web_mice);
}

// --- open-loop runs ---

TEST(Workload, RequiresDistributionAndSaneLoad) {
  WorkloadConfig config;
  EXPECT_THROW(run_workload(config), std::invalid_argument);
  const auto dist = fixed_size(100'000);
  config.sizes = dist.get();
  config.load = 1.5;
  EXPECT_THROW(run_workload(config), std::invalid_argument);
}

TEST(Workload, DeliversApproximatelyOfferedLoad) {
  const auto dist = fixed_size(500'000);
  WorkloadConfig config;
  config.sizes = dist.get();
  config.load = 0.4;
  config.horizon = sim::SimTime::seconds(1.0);
  config.seed = 9;
  const auto r = run_workload(config);
  EXPECT_GT(r.flows_started, 100);
  EXPECT_NEAR(r.goodput.gbps(), 4.0, 0.8);
  EXPECT_GT(r.total_energy.joules(), 0.0);
  EXPECT_GT(r.energy_intensity.joules_per_gb(), 0.0);
}

TEST(Workload, SlowdownsAreAtLeastOne) {
  const auto dist = websearch_workload();
  WorkloadConfig config;
  config.sizes = dist.get();
  config.load = 0.3;
  config.horizon = sim::SimTime::seconds(0.5);
  const auto r = run_workload(config);
  EXPECT_GT(r.flows_completed, 0);
  EXPECT_GE(r.mean_slowdown, 1.0);
  EXPECT_GE(r.p99_slowdown, r.mean_slowdown);
}

TEST(Workload, HigherLoadAmortizesIdleEnergy) {
  // The fleet-level concavity claim: joules per delivered GB fall as the
  // hosts get busier.
  const auto dist = fixed_size(1'000'000);
  auto run_at = [&](double load) {
    WorkloadConfig config;
    config.sizes = dist.get();
    config.load = load;
    config.horizon = sim::SimTime::seconds(1.0);
    config.seed = 21;
    return run_workload(config).energy_intensity.joules_per_gb();
  };
  EXPECT_GT(run_at(0.2), run_at(0.7));
}

TEST(Workload, BottleneckRateDrivesArrivalsAndIdealFct) {
  // Regression: lambda and the ideal-FCT baseline were hardcoded to 10 Gb/s,
  // so a 1 Gb/s bottleneck got 10x the intended arrival rate and slowdowns
  // below one. At the same fractional load the slower link must see ~10x
  // fewer flows and still report slowdowns >= 1.
  const auto dist = fixed_size(500'000);
  WorkloadConfig config;
  config.sizes = dist.get();
  config.load = 0.4;
  config.horizon = sim::SimTime::seconds(1.0);
  config.seed = 9;
  const auto fast = run_workload(config);
  config.bottleneck_rate = units::BitRate::bps(1e9);
  const auto slow = run_workload(config);
  EXPECT_GT(slow.flows_started, 10);
  EXPECT_LT(slow.flows_started, fast.flows_started / 5);
  EXPECT_NEAR(slow.goodput.gbps(), 0.4, 0.1);
  EXPECT_GE(slow.mean_slowdown, 1.0);

  config.bottleneck_rate = units::BitRate::bps(0.0);
  EXPECT_THROW(run_workload(config), std::invalid_argument);
}

TEST(Workload, DeterministicPerSeed) {
  const auto dist = websearch_workload();
  WorkloadConfig config;
  config.sizes = dist.get();
  config.load = 0.3;
  config.horizon = sim::SimTime::seconds(0.3);
  config.seed = 33;
  const auto a = run_workload(config);
  const auto b = run_workload(config);
  EXPECT_EQ(a.flows_started, b.flows_started);
  EXPECT_DOUBLE_EQ(a.total_energy.joules(), b.total_energy.joules());
  EXPECT_DOUBLE_EQ(a.p99_slowdown, b.p99_slowdown);
}

}  // namespace
}  // namespace greencc::app
