#include "cca/bbr.h"

#include <gtest/gtest.h>

namespace greencc::cca {
namespace {

using sim::SimTime;

CcaConfig config() {
  CcaConfig c;
  c.mss_bytes = units::Bytes{8948};
  c.initial_cwnd = 10;
  c.line_rate = units::BitRate::bps(10e9);
  c.expected_rtt = SimTime::microseconds(50);
  return c;
}

AckEvent sample(SimTime now, units::BitRate rate, SimTime rtt,
                std::int64_t delivered, std::int64_t inflight = 20) {
  AckEvent ev;
  ev.now = now;
  ev.acked_segments = 2;
  ev.rtt = rtt;
  ev.srtt = rtt;
  ev.min_rtt = rtt;
  ev.inflight = inflight;
  ev.delivered = delivered;
  ev.delivery_rate = rate;
  return ev;
}

// Drive the model with a constant delivery rate through STARTUP and DRAIN
// into PROBE_BW. During DRAIN the reported inflight shrinks below the BDP,
// as it would when the sender drains its queue.
void drive_to_steady(Bbr& bbr, units::BitRate rate, SimTime rtt,
                     SimTime& now, std::int64_t& delivered) {
  for (int i = 0; i < 600; ++i) {
    const std::int64_t inflight =
        bbr.mode() == Bbr::Mode::kDrain ? 2 : 20;
    bbr.on_ack(sample(now, rate, rtt, delivered, inflight));
    delivered += 2;
    now += rtt / 10;
    if (bbr.mode() == Bbr::Mode::kProbeBw) break;
  }
}

TEST(Bbr, StartsInStartupWithHighGain) {
  Bbr bbr(config());
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kStartup);
  EXPECT_GT(bbr.pacing_rate().bps(), 0.0);
}

TEST(Bbr, TracksBottleneckBandwidth) {
  Bbr bbr(config());
  SimTime now = SimTime::microseconds(100);
  std::int64_t delivered = 0;
  drive_to_steady(bbr, units::BitRate::bps(9e9), SimTime::microseconds(50), now, delivered);
  EXPECT_NEAR(bbr.btl_bw_bps(), 9e9, 1e8);
}

TEST(Bbr, ExitsStartupWhenBandwidthPlateaus) {
  Bbr bbr(config());
  SimTime now = SimTime::microseconds(100);
  std::int64_t delivered = 0;
  drive_to_steady(bbr, units::BitRate::bps(9e9), SimTime::microseconds(50), now, delivered);
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kProbeBw);
}

TEST(Bbr, TracksMinRtt) {
  Bbr bbr(config());
  SimTime now = SimTime::microseconds(100);
  std::int64_t delivered = 0;
  drive_to_steady(bbr, units::BitRate::bps(9e9), SimTime::microseconds(50), now, delivered);
  bbr.on_ack(sample(now, units::BitRate::bps(9e9), SimTime::microseconds(37), delivered));
  EXPECT_EQ(bbr.rt_prop(), SimTime::microseconds(37));
}

TEST(Bbr, CwndIsGainTimesBdp) {
  Bbr bbr(config());
  SimTime now = SimTime::microseconds(100);
  std::int64_t delivered = 0;
  drive_to_steady(bbr, units::BitRate::bps(9e9), SimTime::microseconds(50), now, delivered);
  // BDP = 9e9 * 50us / (8948*8) ~= 6.3 segments; cwnd_gain = 2 in ProbeBw.
  EXPECT_NEAR(bbr.cwnd_segments(), 2.0 * 9e9 * 50e-6 / (8948 * 8), 1.0);
}

TEST(Bbr, PacingRateFollowsGainCycle) {
  Bbr bbr(config());
  SimTime now = SimTime::microseconds(100);
  std::int64_t delivered = 0;
  drive_to_steady(bbr, units::BitRate::bps(9e9), SimTime::microseconds(50), now, delivered);
  // Observe at least one 1.25 probe phase and one 0.75 drain phase over a
  // few cycles.
  bool saw_high = false, saw_low = false;
  for (int i = 0; i < 200; ++i) {
    bbr.on_ack(sample(now, units::BitRate::bps(9e9), SimTime::microseconds(50), delivered));
    delivered += 2;
    now += SimTime::microseconds(10);
    const double gain = bbr.pacing_rate().bps() / bbr.btl_bw_bps();
    if (gain > 1.2) saw_high = true;
    if (gain < 0.8) saw_low = true;
  }
  EXPECT_TRUE(saw_high);
  EXPECT_TRUE(saw_low);
}

TEST(Bbr, IgnoresAppLimitedSamples) {
  Bbr bbr(config());
  SimTime now = SimTime::microseconds(100);
  std::int64_t delivered = 0;
  drive_to_steady(bbr, units::BitRate::bps(9e9), SimTime::microseconds(50), now, delivered);
  const double before = bbr.btl_bw_bps();
  // App-limited samples at a lower rate must not drag the estimate down.
  for (int i = 0; i < 100; ++i) {
    auto ev = sample(now, units::BitRate::bps(1e9), SimTime::microseconds(50), delivered);
    ev.app_limited = true;
    bbr.on_ack(ev);
    delivered += 2;
    now += SimTime::microseconds(10);
  }
  EXPECT_GE(bbr.btl_bw_bps(), before * 0.99);
}

TEST(Bbr, LossIsIgnored) {
  Bbr bbr(config());
  SimTime now = SimTime::microseconds(100);
  std::int64_t delivered = 0;
  drive_to_steady(bbr, units::BitRate::bps(9e9), SimTime::microseconds(50), now, delivered);
  const double cwnd = bbr.cwnd_segments();
  LossEvent loss;
  loss.now = now;
  loss.inflight = 20;
  bbr.on_loss(loss);
  EXPECT_DOUBLE_EQ(bbr.cwnd_segments(), cwnd);
}

TEST(Bbr, ProbeRttAfterStaleMin) {
  Bbr bbr(config());
  SimTime now = SimTime::microseconds(100);
  std::int64_t delivered = 0;
  drive_to_steady(bbr, units::BitRate::bps(9e9), SimTime::microseconds(50), now, delivered);
  // Keep delivering with RTTs *above* the recorded min for >10 s.
  for (int i = 0; i < 300 && bbr.mode() != Bbr::Mode::kProbeRtt; ++i) {
    bbr.on_ack(sample(now, units::BitRate::bps(9e9), SimTime::microseconds(80), delivered));
    delivered += 2;
    now += SimTime::milliseconds(50);
  }
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kProbeRtt);
  EXPECT_DOUBLE_EQ(bbr.cwnd_segments(), 4.0);  // clamped to min cwnd
}

TEST(Bbr, RtoRestartsStartup) {
  Bbr bbr(config());
  SimTime now = SimTime::microseconds(100);
  std::int64_t delivered = 0;
  drive_to_steady(bbr, units::BitRate::bps(9e9), SimTime::microseconds(50), now, delivered);
  bbr.on_rto(now);
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kStartup);
}

// --- BBR2 alpha ---

TEST(Bbr2, LossBoundsInflight) {
  Bbr2Alpha bbr2(config());
  SimTime now = SimTime::microseconds(100);
  std::int64_t delivered = 0;
  drive_to_steady(bbr2, units::BitRate::bps(9e9), SimTime::microseconds(50), now, delivered);
  LossEvent loss;
  loss.now = now;
  loss.inflight = 10;
  bbr2.on_loss(loss);
  EXPECT_LE(bbr2.cwnd_segments(), 7.0 + 1e-9);  // 0.7 * 10
}

TEST(Bbr2, InflightBoundRelaxesWithCleanAcks) {
  Bbr2Alpha bbr2(config());
  SimTime now = SimTime::microseconds(100);
  std::int64_t delivered = 0;
  LossEvent loss;
  loss.now = now;
  loss.inflight = 10;
  bbr2.on_loss(loss);
  const double bounded = bbr2.cwnd_segments();
  for (int i = 0; i < 500; ++i) {
    bbr2.on_ack(sample(now, units::BitRate::bps(9e9), SimTime::microseconds(50), delivered));
    delivered += 2;
    now += SimTime::microseconds(5);
  }
  EXPECT_GT(bbr2.cwnd_segments(), bounded);
}

TEST(Bbr2, FixedTimerProbeFiresDespiteFreshMins) {
  // The alpha artifact: PROBE_RTT triggers on a wall-clock timer even when
  // the min-RTT estimate is perfectly fresh.
  Bbr2Alpha bbr2(config());
  SimTime now = SimTime::microseconds(100);
  std::int64_t delivered = 0;
  drive_to_steady(bbr2, units::BitRate::bps(9e9), SimTime::microseconds(50), now, delivered);
  ASSERT_EQ(bbr2.mode(), Bbr::Mode::kProbeBw);
  bool probed = false;
  for (int i = 0; i < 4000; ++i) {
    bbr2.on_ack(sample(now, units::BitRate::bps(9e9), SimTime::microseconds(50), delivered));
    delivered += 2;
    now += SimTime::milliseconds(1);
    if (bbr2.mode() == Bbr::Mode::kProbeRtt) {
      probed = true;
      break;
    }
  }
  EXPECT_TRUE(probed);
  EXPECT_LT(now, SimTime::seconds(2.0));  // well before v1's 10 s schedule
}

TEST(Bbr2, CostsMoreThanV1) {
  Bbr bbr(config());
  Bbr2Alpha bbr2(config());
  EXPECT_GT(bbr2.cost().per_ack_ns, bbr.cost().per_ack_ns);
  EXPECT_GT(bbr2.cost().per_packet_ns, bbr.cost().per_packet_ns);
}

}  // namespace
}  // namespace greencc::cca
