// Unit and integration tests for the production datacenter algorithms the
// paper's §5 asks the community to benchmark: Swift, DCQCN, HPCC, TIMELY —
// plus the INT telemetry substrate HPCC depends on.

#include <gtest/gtest.h>

#include "app/scenario.h"
#include "cca/dcqcn.h"
#include "cca/hpcc.h"
#include "cca/swift.h"
#include "cca/timely.h"

namespace greencc::cca {
namespace {

using sim::SimTime;

CcaConfig config() {
  CcaConfig c;
  c.mss_bytes = units::Bytes{8948};
  c.initial_cwnd = 10;
  c.line_rate = units::BitRate::bps(10e9);
  c.expected_rtt = SimTime::microseconds(50);
  return c;
}

AckEvent ack(SimTime now, SimTime rtt, std::int64_t marked = 0) {
  AckEvent ev;
  ev.now = now;
  ev.acked_segments = 2;
  ev.ecn_echoed = marked;
  ev.rtt = rtt;
  ev.srtt = rtt;
  ev.min_rtt = SimTime::microseconds(50);
  ev.inflight = 20;
  ev.delivered = 1;
  return ev;
}

// --- registry ---

TEST(Datacenter, RegistryListsAllFour) {
  const auto& names = datacenter_names();
  EXPECT_EQ(names.size(), 4u);
  for (const auto& name : names) {
    auto cc = make_cca(name, config());
    EXPECT_EQ(cc->name(), name);
    EXPECT_GE(cc->cwnd_segments(), 1.0);
  }
}

TEST(Datacenter, PaperGridStaysTen) {
  // The paper-figure benches must keep sweeping exactly the paper's ten.
  EXPECT_EQ(all_names().size(), 10u);
  for (const auto& name : datacenter_names()) {
    EXPECT_EQ(std::count(all_names().begin(), all_names().end(), name), 0)
        << name;
  }
}

TEST(Datacenter, CapabilityFlags) {
  EXPECT_TRUE(make_cca("dcqcn", config())->wants_ecn());
  EXPECT_TRUE(make_cca("hpcc", config())->wants_int());
  EXPECT_FALSE(make_cca("swift", config())->wants_int());
  EXPECT_FALSE(make_cca("timely", config())->wants_ecn());
  // The rate-based three pace; Swift is window-based (its sub-one-cwnd
  // pacing regime is clamped away, see swift.h).
  for (const char* name : {"dcqcn", "hpcc", "timely"}) {
    EXPECT_GT(make_cca(name, config())->pacing_rate().bps(), 0.0) << name;
  }
  EXPECT_EQ(make_cca("swift", config())->pacing_rate().bps(), 0.0);
}

// --- Swift ---

TEST(Swift, GrowsBelowTargetDelay) {
  Swift swift(config());
  const double w0 = swift.cwnd_segments();
  SimTime now = SimTime::microseconds(100);
  for (int i = 0; i < 50; ++i) {
    swift.on_ack(ack(now, SimTime::microseconds(60)));  // below target
    now += SimTime::microseconds(10);
  }
  EXPECT_GT(swift.cwnd_segments(), w0);
}

TEST(Swift, ShrinksAboveTargetDelay) {
  Swift swift(config());
  SimTime now = SimTime::microseconds(100);
  for (int i = 0; i < 50; ++i) {
    swift.on_ack(ack(now, SimTime::microseconds(60)));
    now += SimTime::microseconds(10);
  }
  const double grown = swift.cwnd_segments();
  for (int i = 0; i < 50; ++i) {
    swift.on_ack(ack(now, SimTime::milliseconds(2)));  // far above target
    now += SimTime::microseconds(200);
  }
  EXPECT_LT(swift.cwnd_segments(), grown);
}

TEST(Swift, DecreaseRateLimitedToOncePerRtt) {
  Swift swift(config());
  SimTime now = SimTime::microseconds(100);
  for (int i = 0; i < 50; ++i) {
    swift.on_ack(ack(now, SimTime::microseconds(60)));
    now += SimTime::microseconds(10);
  }
  const double before = swift.cwnd_segments();
  // Two over-target ACKs back-to-back: only the first may cut.
  swift.on_ack(ack(now, SimTime::milliseconds(1)));
  const double after_one = swift.cwnd_segments();
  swift.on_ack(ack(now + SimTime::microseconds(1), SimTime::milliseconds(1)));
  EXPECT_LT(after_one, before);
  EXPECT_DOUBLE_EQ(swift.cwnd_segments(), after_one);
}

TEST(Swift, FlowScalingRaisesTargetForSmallWindows) {
  Swift small(config());
  CcaConfig big_config = config();
  big_config.initial_cwnd = 1000;
  Swift big(big_config);
  EXPECT_GT(small.target_delay_sec(), big.target_delay_sec());
}

// --- DCQCN ---

TEST(Dcqcn, StartsAtLineRate) {
  Dcqcn d(config());
  EXPECT_DOUBLE_EQ(d.pacing_rate().bps(), 10e9);
}

TEST(Dcqcn, CnpCutsRate) {
  Dcqcn d(config());
  d.on_ack(ack(SimTime::milliseconds(1), SimTime::microseconds(60), 2));
  EXPECT_LT(d.pacing_rate().bps(), 10e9);
  // alpha rose towards 1.
  EXPECT_GT(d.alpha(), 0.9);
}

TEST(Dcqcn, CnpsCoalescedWithinWindow) {
  Dcqcn d(config());
  d.on_ack(ack(SimTime::milliseconds(1), SimTime::microseconds(60), 2));
  const double after_one = d.pacing_rate().bps();
  // 10 more marked ACKs within 50 us: no further cuts.
  for (int i = 1; i <= 10; ++i) {
    d.on_ack(ack(SimTime::milliseconds(1) + SimTime::microseconds(i),
                 SimTime::microseconds(60), 2));
  }
  EXPECT_DOUBLE_EQ(d.pacing_rate().bps(), after_one);
  // But a mark after the window cuts again.
  d.on_ack(ack(SimTime::milliseconds(1) + SimTime::microseconds(60),
               SimTime::microseconds(60), 2));
  EXPECT_LT(d.pacing_rate().bps(), after_one);
}

TEST(Dcqcn, RateRecoversWithoutMarks) {
  Dcqcn d(config());
  SimTime now = SimTime::milliseconds(1);
  d.on_ack(ack(now, SimTime::microseconds(60), 2));
  const double cut = d.pacing_rate().bps();
  // Clean ACKs for several milliseconds: fast recovery + additive stages.
  for (int i = 0; i < 200; ++i) {
    now += SimTime::microseconds(55);
    d.on_ack(ack(now, SimTime::microseconds(60)));
  }
  EXPECT_GT(d.pacing_rate().bps(), cut * 1.5);
}

TEST(Dcqcn, AlphaDecaysWhenClean) {
  Dcqcn d(config());
  SimTime now = SimTime::milliseconds(1);
  d.on_ack(ack(now, SimTime::microseconds(60), 2));
  const double alpha_after_mark = d.alpha();
  for (int i = 0; i < 100; ++i) {
    now += SimTime::microseconds(55);
    d.on_ack(ack(now, SimTime::microseconds(60)));
  }
  EXPECT_LT(d.alpha(), alpha_after_mark * 0.2);
}

// --- TIMELY ---

TEST(Timely, AdditiveIncreaseBelowTlow) {
  Timely t(config());
  const double r0 = t.pacing_rate().bps();
  SimTime now = SimTime::milliseconds(1);
  for (int i = 0; i < 20; ++i) {
    t.on_ack(ack(now, SimTime::microseconds(60)));  // < T_low = 100 us
    now += SimTime::microseconds(20);
  }
  EXPECT_GT(t.pacing_rate().bps(), r0);
}

TEST(Timely, MultiplicativeDecreaseAboveThigh) {
  Timely t(config());
  SimTime now = SimTime::milliseconds(1);
  for (int i = 0; i < 20; ++i) {
    t.on_ack(ack(now, SimTime::microseconds(60)));
    now += SimTime::microseconds(20);
  }
  const double grown = t.pacing_rate().bps();
  for (int i = 0; i < 10; ++i) {
    t.on_ack(ack(now, SimTime::milliseconds(2)));  // >> T_high = 500 us
    now += SimTime::microseconds(20);
  }
  EXPECT_LT(t.pacing_rate().bps(), grown);
}

TEST(Timely, GradientReactsBetweenThresholds) {
  Timely t(config());
  SimTime now = SimTime::milliseconds(1);
  // Prime with a mid-band RTT.
  t.on_ack(ack(now, SimTime::microseconds(200)));
  // Rising RTTs in the band -> positive gradient -> decrease.
  double rtt_us = 200;
  for (int i = 0; i < 10; ++i) {
    now += SimTime::microseconds(20);
    rtt_us += 30;
    t.on_ack(ack(now, SimTime::nanoseconds(
                          static_cast<std::int64_t>(rtt_us * 1000))));
  }
  const double after_rising = t.pacing_rate().bps();
  // Falling RTTs -> negative gradient -> increase.
  for (int i = 0; i < 10; ++i) {
    now += SimTime::microseconds(20);
    rtt_us -= 30;
    t.on_ack(ack(now, SimTime::nanoseconds(
                          static_cast<std::int64_t>(rtt_us * 1000))));
  }
  EXPECT_GT(t.pacing_rate().bps(), after_rising);
}

// --- HPCC (unit level) ---

AckEvent int_ack(SimTime now, double tx, std::int64_t qlen,
                 units::BitRate link, std::int64_t delivered) {
  AckEvent ev = ack(now, SimTime::microseconds(60));
  ev.delivered = delivered;
  ev.int_count = 1;
  ev.int_hops[0] = {units::Bytes{static_cast<std::int64_t>(tx)},
                    units::Bytes{qlen}, now - SimTime::microseconds(30),
                    link};
  return ev;
}

TEST(Hpcc, ShrinksWhenLinkOverUtilized) {
  Hpcc h(config());
  const double w0 = h.cwnd_segments();
  SimTime now = SimTime::milliseconds(1);
  double tx = 0.0;
  // Deep queue + txRate ~ link rate: U >> eta.
  for (int i = 0; i < 40; ++i) {
    tx += 125'000.0;  // 10G over 100 us intervals
    h.on_ack(int_ack(now, tx, 200'000, units::BitRate::bps(10e9), i * 2));
    now += SimTime::microseconds(100);
  }
  EXPECT_LT(h.cwnd_segments(), w0);
}

TEST(Hpcc, GrowsWhenLinkUnderUtilized) {
  Hpcc h(config());
  SimTime now = SimTime::milliseconds(1);
  double tx = 0.0;
  // First drive it down...
  for (int i = 0; i < 40; ++i) {
    tx += 125'000.0;
    h.on_ack(int_ack(now, tx, 200'000, units::BitRate::bps(10e9), i * 2));
    now += SimTime::microseconds(100);
  }
  const double low = h.cwnd_segments();
  // ...then show an idle link: tiny txRate, empty queue.
  for (int i = 0; i < 200; ++i) {
    tx += 1'000.0;
    h.on_ack(int_ack(now, tx, 0, units::BitRate::bps(10e9), 100 + i * 2));
    now += SimTime::microseconds(100);
  }
  EXPECT_GT(h.cwnd_segments(), low);
}

TEST(Hpcc, IgnoresAcksWithoutTelemetry) {
  Hpcc h(config());
  const double w0 = h.cwnd_segments();
  h.on_ack(ack(SimTime::milliseconds(1), SimTime::microseconds(60)));
  EXPECT_DOUBLE_EQ(h.cwnd_segments(), w0);
}

// --- end-to-end: all four complete transfers and INT flows through ---

class DatacenterEndToEnd : public ::testing::TestWithParam<std::string> {};

TEST_P(DatacenterEndToEnd, CompletesAtBothMtus) {
  for (int mtu : {1500, 9000}) {
    app::ScenarioConfig cfg;
    cfg.tcp.mtu_bytes = units::Bytes{mtu};
    cfg.seed = 13;
    app::Scenario scenario(cfg);
    app::FlowSpec flow;
    flow.cca = GetParam();
    flow.bytes = units::Bytes{125'000'000};
    scenario.add_flow(flow);
    const auto r = scenario.run();
    ASSERT_TRUE(r.all_completed) << GetParam() << " mtu " << mtu;
    EXPECT_GT(r.flows[0].avg_rate.gbps(), 1.0) << GetParam() << " mtu " << mtu;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFour, DatacenterEndToEnd,
                         ::testing::Values("swift", "dcqcn", "hpcc",
                                           "timely"));

TEST(Datacenter, HpccKeepsSwitchQueueShort) {
  // HPCC's 95% target leaves headroom: the bottleneck queue should stay far
  // shallower than a loss-based CCA's.
  auto run = [](const std::string& cca) {
    app::ScenarioConfig cfg;
    cfg.tcp.mtu_bytes = units::Bytes{9000};
    cfg.seed = 13;
    app::Scenario scenario(cfg);
    app::FlowSpec flow;
    flow.cca = cca;
    flow.bytes = units::Bytes{250'000'000};
    scenario.add_flow(flow);
    return scenario.run();
  };
  const auto hpcc = run("hpcc");
  const auto cubic = run("cubic");
  ASSERT_TRUE(hpcc.all_completed);
  EXPECT_LT(hpcc.bottleneck.max_bytes_seen, cubic.bottleneck.max_bytes_seen);
  EXPECT_EQ(hpcc.bottleneck.dropped, 0u);
}

}  // namespace
}  // namespace greencc::cca
