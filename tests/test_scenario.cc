// End-to-end tests of the experiment scenario: the paper's testbed in
// software, with RAPL-style per-host energy accounting.

#include "app/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/stats.h"

namespace greencc::app {
namespace {

using sim::SimTime;

ScenarioConfig small_config(std::uint64_t seed = 1) {
  ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{9000};
  config.seed = seed;
  return config;
}

constexpr std::int64_t kSmallTransfer = 125'000'000;  // 1 Gbit

TEST(Scenario, SingleFlowCompletesNearLineRate) {
  Scenario s(small_config());
  FlowSpec flow;
  flow.cca = "cubic";
  flow.bytes = units::Bytes{kSmallTransfer};
  s.add_flow(flow);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  EXPECT_GT(r.flows[0].avg_rate.gbps(), 8.0);
  EXPECT_GT(r.total_energy.joules(), 0.0);
  EXPECT_GT(r.avg_power.watts(), 21.49);  // above idle
  EXPECT_LT(r.avg_power.watts(), 45.0);
}

TEST(Scenario, RunWithoutFlowsThrows) {
  Scenario s(small_config());
  EXPECT_THROW(s.run(), std::logic_error);
}

TEST(Scenario, DeterministicForSameSeed) {
  auto run_once = [] {
    Scenario s(small_config(7));
    FlowSpec flow;
    flow.bytes = units::Bytes{kSmallTransfer};
    s.add_flow(flow);
    return s.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.total_energy.joules(), b.total_energy.joules());
  EXPECT_DOUBLE_EQ(a.duration_sec, b.duration_sec);
  EXPECT_EQ(a.flows[0].retransmissions, b.flows[0].retransmissions);
}

TEST(Scenario, DifferentSeedsJitterResults) {
  auto run_once = [](std::uint64_t seed) {
    Scenario s(small_config(seed));
    FlowSpec flow;
    flow.bytes = units::Bytes{kSmallTransfer};
    s.add_flow(flow);
    return s.run();
  };
  const auto a = run_once(1);
  const auto b = run_once(2);
  EXPECT_NE(a.total_energy.joules(), b.total_energy.joules());
  // ... but only slightly (the jitter is 2%).
  EXPECT_NEAR(a.total_energy.joules(), b.total_energy.joules(), 0.1 * a.total_energy.joules());
}

TEST(Scenario, EnergyEqualsPowerTimesTime) {
  Scenario s(small_config());
  FlowSpec flow;
  flow.bytes = units::Bytes{kSmallTransfer};
  s.add_flow(flow);
  const auto r = s.run();
  EXPECT_NEAR(r.total_energy.joules(), r.avg_power.watts() * r.duration_sec,
              0.01 * r.total_energy.joules());
}

TEST(Scenario, StressCoresRaisePower) {
  auto run_with_load = [](int cores) {
    auto config = small_config();
    config.stress_cores = cores;
    Scenario s(config);
    FlowSpec flow;
    flow.bytes = units::Bytes{kSmallTransfer};
    s.add_flow(flow);
    return s.run().avg_power.watts();
  };
  const double idle = run_with_load(0);
  const double loaded = run_with_load(8);
  // 8 stress cores add 8 * 3.3 W, but phi(L) simultaneously collapses the
  // network cores' marginal power (the §4.2 mechanism), so the net rise is
  // below the naive sum yet still substantial.
  EXPECT_GT(loaded - idle, 15.0);
  EXPECT_LT(loaded - idle, 8 * 3.3 + 1.0);
}

TEST(Scenario, TwoFlowsShareFairly) {
  Scenario s(small_config());
  FlowSpec flow;
  flow.cca = "cubic";
  flow.bytes = units::Bytes{kSmallTransfer};
  s.add_flow(flow);
  s.add_flow(flow);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  const std::vector<double> rates = {r.flows[0].avg_rate.gbps(),
                                     r.flows[1].avg_rate.gbps()};
  EXPECT_GT(stats::jain_index(rates), 0.85);
  // Two hosts metered.
  EXPECT_EQ(r.hosts.size(), 2u);
}

TEST(Scenario, RateLimitIsRespected) {
  Scenario s(small_config());
  FlowSpec flow;
  flow.bytes = units::Bytes{kSmallTransfer};
  flow.rate_limit = units::BitRate::bps(3e9);
  s.add_flow(flow);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  EXPECT_NEAR(r.flows[0].avg_rate.gbps(), 3.0, 0.2);
}

TEST(Scenario, WorkConservingSecondFlowTakesRemainder) {
  Scenario s(small_config());
  FlowSpec limited;
  limited.bytes = units::Bytes{kSmallTransfer};
  limited.rate_limit = units::BitRate::bps(6e9);
  s.add_flow(limited);
  FlowSpec greedy;
  greedy.bytes = units::Bytes{kSmallTransfer};
  s.add_flow(greedy);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  // Flow 2 gets roughly the remaining 4 Gb/s while flow 1 runs, then the
  // whole link; its average must exceed the leftover share. The limited
  // flow concedes some throughput to queue contention with the greedy one,
  // so its achieved rate sits somewhat below the 6 Gb/s app offer.
  EXPECT_GT(r.flows[1].avg_rate.gbps(), 3.0);
  EXPECT_GT(r.flows[0].avg_rate.gbps(), 4.5);
  EXPECT_LT(r.flows[0].avg_rate.gbps(), 6.3);
}

// Regression for a family of leaks found by LeakSanitizer: the
// self-rescheduling closures (rate-limit token bucket, throughput
// reporter, transport tracer) used to own themselves through a captured
// shared_ptr<std::function> and never free. This run exercises all three
// in one scenario; under the asan preset it fails if any of them is ever
// turned back into a self-owning closure.
TEST(Scenario, SelfReschedulingClosuresDoNotSelfOwn) {
  auto config = small_config();
  config.report_interval = SimTime::milliseconds(10);
  config.trace_interval = SimTime::milliseconds(5);
  Scenario s(config);
  FlowSpec flow;
  flow.bytes = units::Bytes{kSmallTransfer};
  flow.rate_limit = units::BitRate::bps(3e9);
  s.add_flow(flow);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  EXPECT_NEAR(r.flows[0].avg_rate.gbps(), 3.0, 0.2);
  EXPECT_FALSE(r.flows[0].series.empty());
  EXPECT_FALSE(r.flows[0].trace.empty());
}

TEST(Scenario, StartAfterFlowSerializes) {
  Scenario s(small_config());
  FlowSpec first;
  first.bytes = units::Bytes{kSmallTransfer};
  s.add_flow(first);
  FlowSpec second;
  second.bytes = units::Bytes{kSmallTransfer};
  second.start_after_flow = 0;
  s.add_flow(second);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  // Serialized flows both run at ~line rate; total duration is ~2x one
  // transfer.
  EXPECT_GT(r.flows[0].avg_rate.gbps(), 8.0);
  EXPECT_GT(r.flows[1].avg_rate.gbps(), 8.0);
  EXPECT_NEAR(r.duration_sec,
              2.0 * kSmallTransfer * 8.0 / (r.flows[0].avg_rate.gbps() * 1e9), 0.1);
}

TEST(Scenario, ThroughputSeriesSumsToBytes) {
  auto config = small_config();
  config.report_interval = SimTime::milliseconds(10);
  Scenario s(config);
  FlowSpec flow;
  flow.bytes = units::Bytes{kSmallTransfer};
  s.add_flow(flow);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  ASSERT_FALSE(r.flows[0].series.empty());
  double gbit_sum = 0.0;
  double prev_t = 0.0;
  for (const auto& [t, gbps] : r.flows[0].series) {
    gbit_sum += gbps * (t - prev_t);
    prev_t = t;
  }
  // The series under-counts the final partial interval; allow that slack.
  EXPECT_NEAR(gbit_sum, kSmallTransfer * 8.0 / 1e9, 0.15);
}

TEST(Scenario, PowerSeriesRecordedOnRequest) {
  Scenario s(small_config());
  s.set_record_power(true);
  FlowSpec flow;
  flow.bytes = units::Bytes{kSmallTransfer};
  s.add_flow(flow);
  const auto r = s.run();
  ASSERT_FALSE(r.power_series.empty());
  for (const auto& [t, watts] : r.power_series) {
    EXPECT_GT(watts, 15.0);
    EXPECT_LT(watts, 60.0);
  }
}

TEST(Scenario, DctcpGetsEcnMarksInsteadOfDrops) {
  Scenario s(small_config());
  FlowSpec flow;
  flow.cca = "dctcp";
  flow.bytes = units::Bytes{kSmallTransfer};
  s.add_flow(flow);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  EXPECT_GT(r.bottleneck.ecn_marked, 0u);
  EXPECT_EQ(r.bottleneck.dropped, 0u);
}

TEST(Scenario, DeadlineTerminatesStalledRun) {
  auto config = small_config();
  config.deadline = SimTime::seconds(1.0);
  Scenario s(config);
  FlowSpec flow;
  flow.bytes = units::Bytes{1'000'000'000'000};  // 1 TB: cannot finish in 1 s
  s.add_flow(flow);
  const auto r = s.run();
  EXPECT_FALSE(r.all_completed);
  EXPECT_EQ(r.flows[0].fct_sec, -1.0);
}

TEST(Scenario, MtuSweepMonotoneFct) {
  // Larger MTU -> same bytes complete no slower (the §4.4 mechanism).
  double prev_fct = 1e9;
  for (int mtu : {1500, 3000, 6000, 9000}) {
    auto config = small_config();
    config.tcp.mtu_bytes = units::Bytes{mtu};
    Scenario s(config);
    FlowSpec flow;
    flow.bytes = units::Bytes{kSmallTransfer};
    s.add_flow(flow);
    const auto r = s.run();
    ASSERT_TRUE(r.all_completed) << mtu;
    EXPECT_LT(r.flows[0].fct_sec, prev_fct * 1.02) << mtu;
    prev_fct = r.flows[0].fct_sec;
  }
}

TEST(Scenario, TracerSamplesTransportState) {
  auto config = small_config();
  config.trace_interval = SimTime::milliseconds(5);
  Scenario s(config);
  FlowSpec flow;
  flow.cca = "cubic";
  flow.bytes = units::Bytes{kSmallTransfer};
  s.add_flow(flow);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  ASSERT_GT(r.flows[0].trace.size(), 5u);
  for (const auto& sample : r.flows[0].trace) {
    EXPECT_GE(sample.cwnd_segments, 1.0);
    EXPECT_GE(sample.pipe_segments, 0.0);
    EXPECT_GT(sample.t_sec, 0.0);
  }
  // Slow start has already grown the window well past IW10 by the first
  // sample (RTTs are tens of microseconds).
  EXPECT_GT(r.flows[0].trace.front().cwnd_segments, 10.0);
  // Queue depth series recorded alongside.
  EXPECT_FALSE(r.queue_series.empty());
}

TEST(Scenario, TracerSamplesAtConfiguredCadence) {
  auto config = small_config();
  config.trace_interval = SimTime::milliseconds(5);
  Scenario s(config);
  FlowSpec flow;
  flow.bytes = units::Bytes{kSmallTransfer};
  s.add_flow(flow);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  const auto& trace = r.flows[0].trace;
  ASSERT_GT(trace.size(), 3u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_NEAR(trace[i].t_sec - trace[i - 1].t_sec, 0.005, 1e-9) << i;
  }
  // The queue series shares the same clock ticks.
  ASSERT_EQ(r.queue_series.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.queue_series[i].first, trace[i].t_sec);
  }
}

TEST(Scenario, TracerTimestampsStrictlyIncrease) {
  auto config = small_config();
  config.trace_interval = SimTime::milliseconds(2);
  Scenario s(config);
  FlowSpec flow;
  flow.bytes = units::Bytes{kSmallTransfer};
  s.add_flow(flow);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  const auto& trace = r.flows[0].trace;
  ASSERT_GT(trace.size(), 2u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].t_sec, trace[i - 1].t_sec) << i;
  }
}

TEST(Scenario, TracerStopsSamplingCompletedFlows) {
  // Flow 1 finishes long before flow 0; its samples must stop at its own
  // completion rather than running on to the end of the experiment.
  auto config = small_config();
  config.trace_interval = SimTime::milliseconds(2);
  Scenario s(config);
  FlowSpec big;
  big.bytes = units::Bytes{kSmallTransfer};
  s.add_flow(big);
  FlowSpec small;
  small.bytes = units::Bytes{kSmallTransfer / 10};
  small.sender_host = 1;
  s.add_flow(small);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  ASSERT_EQ(r.flows.size(), 2u);
  const double small_done = r.flows[1].finished_at_sec;
  ASSERT_GT(small_done, 0.0);
  EXPECT_LT(r.flows[1].finished_at_sec, r.flows[0].finished_at_sec);
  ASSERT_FALSE(r.flows[1].trace.empty());
  EXPECT_LE(r.flows[1].trace.back().t_sec, small_done);
  // The longer flow keeps sampling past the short one's completion.
  EXPECT_GT(r.flows[0].trace.back().t_sec, small_done);
}

TEST(Scenario, NoTraceByDefault) {
  Scenario s(small_config());
  FlowSpec flow;
  flow.bytes = units::Bytes{kSmallTransfer / 10};
  s.add_flow(flow);
  const auto r = s.run();
  EXPECT_TRUE(r.flows[0].trace.empty());
  EXPECT_TRUE(r.queue_series.empty());
}

TEST(Scenario, ReceiverMeteringOptIn) {
  auto config = small_config();
  config.meter_receiver = true;
  Scenario s(config);
  FlowSpec flow;
  flow.bytes = units::Bytes{kSmallTransfer};
  s.add_flow(flow);
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  // Receiver (host 0) + one sender host.
  ASSERT_EQ(r.hosts.size(), 2u);
  EXPECT_EQ(r.hosts[0].host, 0);
  // The receiver is busier per byte than the sender at this MTU's packet
  // rate but both draw at least idle power.
  for (const auto& host : r.hosts) {
    EXPECT_GT(host.avg_power.watts(), 21.0) << host.host;
    EXPECT_LT(host.avg_power.watts(), 45.0) << host.host;
  }
}

TEST(Scenario, ReceiverMeteringRaisesTotalEnergy) {
  auto run_with = [](bool meter_receiver) {
    auto config = small_config();
    config.meter_receiver = meter_receiver;
    Scenario s(config);
    FlowSpec flow;
    flow.bytes = units::Bytes{kSmallTransfer};
    s.add_flow(flow);
    return s.run().total_energy.joules();
  };
  const double sender_only = run_with(false);
  const double both = run_with(true);
  // Adding a second server roughly doubles the measured energy.
  EXPECT_GT(both, 1.8 * sender_only);
  EXPECT_LT(both, 2.5 * sender_only);
}

TEST(Scenario, ColocatedFlowsShareOneHost) {
  Scenario s(small_config());
  FlowSpec flow;
  flow.bytes = units::Bytes{kSmallTransfer / 2};
  flow.sender_host = 0;
  s.add_flow(flow);
  s.add_flow(flow);  // same host
  const auto r = s.run();
  ASSERT_TRUE(r.all_completed);
  EXPECT_EQ(r.hosts.size(), 1u);
}

}  // namespace
}  // namespace greencc::app
