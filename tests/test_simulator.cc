#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace greencc::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.events_executed(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::microseconds(30), [&] { order.push_back(3); });
  sim.schedule(SimTime::microseconds(10), [&] { order.push_back(1); });
  sim.schedule(SimTime::microseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::microseconds(30));
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.schedule(SimTime::microseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = SimTime::zero();
  sim.schedule(SimTime::milliseconds(7), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::milliseconds(7));
}

TEST(Simulator, NestedSchedulingWorks) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.schedule(SimTime::microseconds(1), tick);
  };
  sim.schedule(SimTime::microseconds(1), tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), SimTime::microseconds(5));
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule(SimTime::microseconds(10), [&] {
    EXPECT_THROW(sim.schedule_at(SimTime::microseconds(5), [] {}),
                 std::logic_error);
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::milliseconds(1), [&] { ++fired; });
  sim.schedule(SimTime::milliseconds(10), [&] { ++fired; });
  sim.run_until(SimTime::milliseconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::milliseconds(5));
  EXPECT_EQ(sim.pending_events(), 1u);
  // Continue to completion.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesDeadlineEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule(SimTime::milliseconds(5), [&] { fired = true; });
  sim.run_until(SimTime::milliseconds(5));
  EXPECT_TRUE(fired);
}

TEST(Simulator, StopAbortsLoop) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(SimTime::microseconds(i), [&] {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 42; ++i) sim.schedule(SimTime::microseconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 42u);
}

TEST(Simulator, EventBudgetStopsRun) {
  // A scenario that reschedules itself forever terminates exactly at the
  // budget — the supervisor's backstop for spinning cells.
  Simulator sim;
  std::function<void()> tick = [&] {
    sim.schedule(SimTime::microseconds(1), tick);
  };
  sim.schedule(SimTime::microseconds(1), tick);
  sim.set_event_budget(500);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 500u);
  EXPECT_TRUE(sim.budget_exhausted());
  EXPECT_FALSE(sim.stop_requested());  // budget, not stop(), ended the run
}

TEST(Simulator, EventBudgetCountsAcrossRuns) {
  // The budget caps lifetime events (what events_executed() counts), so a
  // second run() resumes against the same cap rather than a fresh one.
  Simulator sim;
  for (int i = 1; i <= 10; ++i) sim.schedule(SimTime::microseconds(i), [] {});
  sim.set_event_budget(7);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
  EXPECT_TRUE(sim.budget_exhausted());
  sim.run();  // still exhausted: no further events execute
  EXPECT_EQ(sim.events_executed(), 7u);
  EXPECT_EQ(sim.pending_events(), 3u);
  // Raising the cap lets the remaining events through.
  sim.set_event_budget(0);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 10u);
  EXPECT_FALSE(sim.budget_exhausted());
}

TEST(Simulator, StopFromAnotherThreadCutsRun) {
  // The watchdog pattern: a monitor thread stop()s a simulator whose run
  // loop would otherwise never drain. Carries the `concurrency` label so
  // the tsan build checks the flag's cross-thread handshake.
  Simulator sim;
  std::atomic<bool> running{false};
  std::function<void()> tick = [&] {
    running.store(true);
    sim.schedule(SimTime::microseconds(1), tick);
  };
  sim.schedule(SimTime::microseconds(1), tick);
  std::thread watchdog([&] {
    while (!running.load()) std::this_thread::yield();
    sim.stop();
  });
  sim.run();
  watchdog.join();
  EXPECT_TRUE(sim.stop_requested());
  EXPECT_GE(sim.events_executed(), 1u);
}

// --- Timer ---

TEST(Timer, FiresAtDeadline) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&] { ++fired; });
  timer.arm(SimTime::milliseconds(3));
  EXPECT_TRUE(timer.armed());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
  EXPECT_EQ(sim.now(), SimTime::milliseconds(3));
}

TEST(Timer, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&] { ++fired; });
  timer.arm(SimTime::milliseconds(3));
  sim.schedule(SimTime::milliseconds(1), [&] { timer.cancel(); });
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RearmPushesDeadlineOut) {
  Simulator sim;
  std::vector<SimTime> fire_times;
  Timer timer(sim, [&] { fire_times.push_back(sim.now()); });
  timer.arm(SimTime::milliseconds(2));
  // Re-arm shortly before expiry, pushing the deadline to t=1ms+2ms.
  sim.schedule(SimTime::milliseconds(1), [&] { timer.arm(SimTime::milliseconds(2)); });
  sim.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], SimTime::milliseconds(3));
}

TEST(Timer, RepeatedRearmDoesNotAccumulateEvents) {
  // The coalescing behaviour that keeps TCP's per-ACK RTO re-arming cheap:
  // thousands of arm() calls must not create thousands of events.
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&] { ++fired; });
  for (int i = 0; i < 1000; ++i) {
    sim.schedule(SimTime::microseconds(i), [&] {
      timer.arm(SimTime::milliseconds(10));
    });
  }
  sim.run();
  EXPECT_EQ(fired, 1);
  // 1000 arming events + 1 pending timer event + a small number of chase
  // re-schedules; far fewer than one event per arm.
  EXPECT_LT(sim.events_executed(), 1010u);
}

TEST(Timer, ArmAfterFireWorks) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&] { ++fired; });
  timer.arm(SimTime::milliseconds(1));
  sim.run();
  EXPECT_EQ(fired, 1);
  timer.arm(SimTime::milliseconds(1));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Timer, CancelReclaimsPendingEvent) {
  // The stale-timer leak regression: cancel() must reclaim the scheduled
  // event, not leave it to fire as a no-op.
  Simulator sim;
  Timer timer(sim, [] {});
  timer.arm(SimTime::milliseconds(3));
  EXPECT_EQ(sim.pending_events(), 1u);
  timer.cancel();
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 0u);  // nothing left behind to dispatch
}

TEST(Timer, ArmCancelStormLeavesNoStaleEvents) {
  // At fleet scale every ACK arms and every completion cancels; thousands
  // of arm/cancel rounds must leave pending_events() exact (previously each
  // cancelled arm leaked its heap event until the deadline passed).
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&] { ++fired; });
  for (int i = 0; i < 10'000; ++i) {
    timer.arm(SimTime::milliseconds(10));
    EXPECT_EQ(sim.pending_events(), 1u);
    timer.cancel();
    EXPECT_EQ(sim.pending_events(), 0u);
  }
  EXPECT_EQ(sim.peak_pending_events(), 1u);  // never more than one live
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.events_executed(), 0u);
  EXPECT_EQ(sim.now(), SimTime::zero());  // no stale event dragged the clock
}

TEST(Timer, PullInReclaimsSupersededEvent) {
  // Re-arming to an *earlier* deadline replaces the pending event instead
  // of stacking a second one.
  Simulator sim;
  std::vector<SimTime> fire_times;
  Timer timer(sim, [&] { fire_times.push_back(sim.now()); });
  timer.arm(SimTime::milliseconds(10));
  sim.schedule(SimTime::milliseconds(1),
               [&] { timer.arm(SimTime::milliseconds(1)); });
  sim.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], SimTime::milliseconds(2));
  // Both the pull-in arm and the fire consumed their events; the original
  // 10ms event was cancelled, so only the helper + timer event executed.
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulator, CancelEventReclaimsScheduledCallback) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule(SimTime::milliseconds(1), [&] { ++fired; });
  sim.schedule(SimTime::milliseconds(2), [&] { ++fired; });
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel_event(id);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_executed(), 1u);
  EXPECT_EQ(sim.now(), SimTime::milliseconds(2));
}

TEST(Simulator, QueueKindIsSelectable) {
  Simulator cal(EventQueueKind::kCalendar);
  Simulator heap(EventQueueKind::kBinaryHeap);
  EXPECT_STREQ(cal.queue_name(), "calendar");
  EXPECT_STREQ(heap.queue_name(), "binary-heap");
  const EventQueueKind prior = Simulator::default_queue_kind();
  Simulator::set_default_queue_kind(EventQueueKind::kBinaryHeap);
  EXPECT_EQ(Simulator().queue_kind(), EventQueueKind::kBinaryHeap);
  Simulator::set_default_queue_kind(prior);
}

TEST(Timer, DestructionWithPendingEventIsSafe) {
  Simulator sim;
  int fired = 0;
  {
    auto timer = std::make_unique<Timer>(sim, [&] { ++fired; });
    timer->arm(SimTime::milliseconds(1));
  }  // timer destroyed; its pending event must be a no-op
  sim.run();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace greencc::sim
