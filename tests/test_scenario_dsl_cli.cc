// greencc_sweep CLI contract tests, against the real binary: validation of
// the committed pack, line-accurate rejection of the malformed fixtures,
// --explain plan output, exit codes, deterministic --sample, byte-identity
// across --jobs, and SIGKILL + --resume byte-identity.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string scenario(const std::string& name) {
  return std::string(GREENCC_SCENARIO_DIR) + "/" + name;
}

/// fork/exec with stdout+stderr captured to `log_path` (no shell).
pid_t spawn(std::vector<std::string> args, const std::string& log_path) {
  args.insert(args.begin(), GREENCC_SWEEP_PATH);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    const int fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      ::close(fd);
    }
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

int wait_for_exit(pid_t pid, int timeout_sec) {
  const auto deadline =
      // lint-allow: wall-clock (subprocess timeout; never feeds results)
      std::chrono::steady_clock::now() + std::chrono::seconds(timeout_sec);
  for (;;) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) return status;
    // lint-allow: wall-clock (subprocess timeout; never feeds results)
    if (std::chrono::steady_clock::now() > deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      ADD_FAILURE() << "greencc_sweep exceeded " << timeout_sec << "s";
      return status;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

int run_sweep(const std::vector<std::string>& args,
              const std::string& log_path, int timeout_sec = 240) {
  const int status = wait_for_exit(spawn(args, log_path), timeout_sec);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::size_t journal_entries(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::size_t entries = 0;
  while (std::getline(in, line)) {
    if (line.rfind("{\"task\":", 0) == 0) ++entries;
  }
  return entries;
}

bool wait_for_entries(pid_t pid, const std::string& journal, std::size_t want,
                      int timeout_sec) {
  const auto deadline =
      // lint-allow: wall-clock (subprocess timeout; never feeds results)
      std::chrono::steady_clock::now() + std::chrono::seconds(timeout_sec);
  // lint-allow: wall-clock (subprocess timeout; never feeds results)
  while (std::chrono::steady_clock::now() < deadline) {
    if (journal_entries(journal) >= want) return true;
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

// Downscaled cca_grid invocation: 40 cells x 2 repeats of a 2 MB transfer
// — seconds in total, with enough tasks to interrupt reliably.
std::vector<std::string> grid_args(const std::string& csv) {
  return {"--set",  "flow.0.bytes=2000000",
          "--repeats", "2",
          "--seed", "7",
          "--quiet", "--csv", csv,
          scenario("cca_grid.toml")};
}

// --- Exit codes -------------------------------------------------------------

TEST(SweepCli, UnknownFlagExitsUsage) {
  const std::string log = temp_path("sweep_unknown_flag.log");
  EXPECT_EQ(run_sweep({"--frobnicate", scenario("cca_grid.toml")}, log), 2);
  const std::string out = read_file(log);
  EXPECT_NE(out.find("unknown flag: --frobnicate"), std::string::npos) << out;
  EXPECT_NE(out.find("usage: greencc_sweep"), std::string::npos) << out;
}

TEST(SweepCli, NoInputsExitsUsage) {
  EXPECT_EQ(run_sweep({"--jobs", "2"}, temp_path("sweep_no_inputs.log")), 2);
}

TEST(SweepCli, HelpExitsClean) {
  const std::string log = temp_path("sweep_help.log");
  EXPECT_EQ(run_sweep({"--help"}, log), 0);
  EXPECT_NE(read_file(log).find("usage: greencc_sweep"), std::string::npos);
}

// --- Validation -------------------------------------------------------------

TEST(SweepCli, ValidatesCommittedScenarioTree) {
  const std::string log = temp_path("sweep_validate.log");
  EXPECT_EQ(run_sweep({"--validate", GREENCC_SCENARIO_DIR}, log), 0);
  EXPECT_NE(read_file(log).find(", 0 invalid"), std::string::npos)
      << read_file(log);
}

TEST(SweepCli, RejectsMalformedFixturesWithLineAccurateErrors) {
  const std::string log = temp_path("sweep_validate_bad.log");
  EXPECT_EQ(run_sweep({"--validate", GREENCC_DSL_DATA_DIR}, log), 1);
  const std::string out = read_file(log);
  EXPECT_NE(
      out.find("unknown_key.toml:5: unknown key 'frobnicate' in [scenario]"),
      std::string::npos)
      << out;
  EXPECT_NE(out.find("bad_unit.toml:7: topology.link_delay"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("overlap_axes.toml:11: sweep axis 'b' binds path "
                     "'tcp.mtu', already bound by axis 'a'"),
            std::string::npos)
      << out;
}

// --- Explain ----------------------------------------------------------------

TEST(SweepCli, ExplainShowsPlan) {
  const std::string log = temp_path("sweep_explain.log");
  EXPECT_EQ(run_sweep({"--explain", scenario("cca_grid.toml")}, log), 0);
  const std::string out = read_file(log);
  EXPECT_NE(out.find("cells      40 (mtu=4 x cca=10)"), std::string::npos)
      << out;
  EXPECT_NE(out.find("runs       120"), std::string::npos) << out;
  EXPECT_NE(out.find("csv        cca_grid.csv"), std::string::npos) << out;
  EXPECT_NE(out.find("hash       "), std::string::npos) << out;
}

TEST(SweepCli, SampleIsDeterministic) {
  const std::string log_a = temp_path("sweep_sample_a.log");
  const std::string log_b = temp_path("sweep_sample_b.log");
  const std::vector<std::string> args = {
      "--explain", "--sample", "3", "--sample-seed", "5",
      std::string(GREENCC_SCENARIO_DIR) + "/pack"};
  EXPECT_EQ(run_sweep(args, log_a), 0);
  EXPECT_EQ(run_sweep(args, log_b), 0);
  const std::string a = read_file(log_a);
  EXPECT_EQ(a, read_file(log_b));
  EXPECT_FALSE(a.empty());
}

// --- Determinism across --jobs, and crash/resume ---------------------------

TEST(SweepCli, JobsByteIdentity) {
  const std::string serial_csv = temp_path("sweep_serial.csv");
  const std::string par_csv = temp_path("sweep_par.csv");
  ASSERT_EQ(run_sweep(grid_args(serial_csv), temp_path("sweep_serial.log")),
            0)
      << read_file(temp_path("sweep_serial.log"));
  auto par = grid_args(par_csv);
  par.insert(par.begin(), {"--jobs", "4"});
  ASSERT_EQ(run_sweep(par, temp_path("sweep_par.log")), 0)
      << read_file(temp_path("sweep_par.log"));
  const std::string serial = read_file(serial_csv);
  ASSERT_GT(serial.size(), 100u);
  EXPECT_EQ(serial, read_file(par_csv))
      << "--jobs 4 CSV differs from the serial run";
}

TEST(SweepCli, SigkillThenResumeIsByteIdentical) {
  const std::string serial_csv = temp_path("sweep_ref.csv");
  ASSERT_EQ(run_sweep(grid_args(serial_csv), temp_path("sweep_ref.log")), 0)
      << read_file(temp_path("sweep_ref.log"));
  const std::string reference = read_file(serial_csv);
  ASSERT_GT(reference.size(), 100u);

  const std::string journal = temp_path("sweep_kill_journal.jsonl");
  const std::string csv = temp_path("sweep_kill.csv");
  std::remove(journal.c_str());

  auto args = grid_args(csv);
  args.insert(args.begin(), {"--jobs", "2", "--journal", journal});
  const pid_t pid = spawn(args, temp_path("sweep_kill.log"));
  ASSERT_TRUE(wait_for_entries(pid, journal, 2, 120))
      << "pack finished before it could be killed; raise the transfer size";
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  const int status = wait_for_exit(pid, 60);
  ASSERT_TRUE(WIFSIGNALED(status));

  auto resume_args = args;
  resume_args.push_back("--resume");
  const std::string resume_log = temp_path("sweep_kill_resume.log");
  ASSERT_EQ(run_sweep(resume_args, resume_log), 0) << read_file(resume_log);
  EXPECT_NE(read_file(resume_log).find("resumed="), std::string::npos)
      << read_file(resume_log);
  EXPECT_EQ(read_file(csv), reference)
      << "resumed CSV differs from the uninterrupted serial run";
  std::remove(journal.c_str());
}

}  // namespace
