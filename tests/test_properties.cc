// Cross-cutting property tests: invariants that must hold for every
// algorithm, MTU and loss pattern the testbed can produce.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "app/scenario.h"
#include "cca/cca.h"
#include "energy/cpu.h"
#include "net/port.h"
#include "sim/simulator.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"

namespace greencc {
namespace {

using sim::SimTime;
using sim::Simulator;

// ---------------------------------------------------------------------------
// Packet conservation: every segment handed to the wire is either received
// (possibly as a duplicate) or dropped at a queue. Checked over a direct
// sender->port->receiver wiring where every counter is visible.
// ---------------------------------------------------------------------------

class Conservation
    : public ::testing::TestWithParam<std::tuple<std::string, std::int64_t>> {
};

TEST_P(Conservation, WireAccountingBalances) {
  const auto& [cca_name, queue_bytes] = GetParam();

  Simulator sim;
  energy::CpuCore core;
  tcp::TcpConfig tcp_config;
  cca::CcaConfig cca_config;
  cca_config.mss_bytes = tcp_config.mss_bytes();

  net::PortConfig forward_config;
  forward_config.rate = units::BitRate::bps(1e9);  // slow bottleneck: creates loss
  forward_config.queue_capacity_bytes = units::Bytes{queue_bytes};
  forward_config.propagation = SimTime::microseconds(5);
  net::QueuedPort forward(sim, "fwd", forward_config, nullptr);

  net::PortConfig reverse_config;
  reverse_config.propagation = SimTime::microseconds(5);
  net::QueuedPort reverse(sim, "rev", reverse_config, nullptr);

  tcp::TcpSender sender(sim, 1, 1, 2, tcp_config,
                        cca::make_cca(cca_name, cca_config), &core,
                        &forward);
  tcp::TcpReceiver receiver(sim, 1, 2, tcp_config, &reverse);
  forward.set_next(&receiver);
  reverse.set_next(&sender);

  sender.add_app_data(units::Bytes{3'000'000});
  sender.mark_app_eof();
  sender.start();
  sim.run_until(SimTime::seconds(60.0));

  ASSERT_TRUE(sender.complete()) << cca_name;

  // Conservation over the forward direction.
  const auto sent = sender.stats().segments_sent;
  const auto received = receiver.segments_received();
  const auto dropped = static_cast<std::int64_t>(
      forward.queue_stats().dropped);
  EXPECT_EQ(sent, received + dropped) << cca_name;

  // Stream completeness: the receiver's in-order point equals the stream
  // length, and unique deliveries equal unique sends.
  EXPECT_EQ(receiver.rcv_nxt(), sender.snd_nxt()) << cca_name;
  EXPECT_EQ(received - receiver.duplicate_segments(), sender.snd_nxt())
      << cca_name;

  // Retransmissions cover exactly the drops plus any spurious copies
  // (which the receiver saw as duplicates).
  EXPECT_EQ(sender.stats().retransmissions,
            dropped + receiver.duplicate_segments())
      << cca_name;
}

INSTANTIATE_TEST_SUITE_P(
    CcasAndQueues, Conservation,
    ::testing::Combine(::testing::Values("reno", "cubic", "scalable",
                                         "westwood", "highspeed", "vegas",
                                         "dctcp", "bbr", "swift"),
                       ::testing::Values(30'000, 100'000)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_q" +
             std::to_string(std::get<1>(info.param) / 1000) + "k";
    });

// ---------------------------------------------------------------------------
// Every algorithm (the paper's ten + the datacenter four) completes a
// transfer at every MTU, and the energy accounting stays self-consistent.
// ---------------------------------------------------------------------------

class EveryCcaEveryMtu
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(EveryCcaEveryMtu, CompletesWithConsistentEnergy) {
  const auto& [cca_name, mtu] = GetParam();
  app::ScenarioConfig config;
  config.tcp.mtu_bytes = units::Bytes{mtu};
  config.seed = 5;
  app::Scenario scenario(config);
  app::FlowSpec flow;
  flow.cca = cca_name;
  flow.bytes = units::Bytes{60'000'000};
  scenario.add_flow(flow);
  const auto r = scenario.run();

  ASSERT_TRUE(r.all_completed) << cca_name << " mtu " << mtu;
  EXPECT_GT(r.flows[0].avg_rate.gbps(), 0.5) << cca_name << " mtu " << mtu;
  // Energy = integral of power: average power must lie between idle and
  // the model's plausible ceiling.
  EXPECT_GT(r.avg_power.watts(), 21.49);
  EXPECT_LT(r.avg_power.watts(), 60.0);
  EXPECT_NEAR(r.total_energy.joules(), r.avg_power.watts() * r.duration_sec,
              0.02 * r.total_energy.joules());
}

std::vector<std::tuple<std::string, int>> every_cca_every_mtu() {
  std::vector<std::tuple<std::string, int>> cases;
  for (const auto& name : cca::all_names()) {
    for (int mtu : {1500, 3000, 6000, 9000}) {
      cases.emplace_back(name, mtu);
    }
  }
  for (const auto& name : cca::datacenter_names()) {
    for (int mtu : {1500, 9000}) {
      cases.emplace_back(name, mtu);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, EveryCcaEveryMtu,
                         ::testing::ValuesIn(every_cca_every_mtu()),
                         [](const auto& info) {
                           return std::get<0>(info.param) + "_" +
                                  std::to_string(std::get<1>(info.param));
                         });

// ---------------------------------------------------------------------------
// Determinism: identical seeds give bit-identical results for every
// algorithm family (window, rate-based, INT-driven).
// ---------------------------------------------------------------------------

class DeterminismByFamily : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismByFamily, SameSeedSameJoules) {
  auto run = [&] {
    app::ScenarioConfig config;
    config.tcp.mtu_bytes = units::Bytes{3000};
    config.seed = 99;
    app::Scenario scenario(config);
    app::FlowSpec flow;
    flow.cca = GetParam();
    flow.bytes = units::Bytes{50'000'000};
    scenario.add_flow(flow);
    return scenario.run();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.total_energy.joules(), b.total_energy.joules());
  EXPECT_EQ(a.flows[0].retransmissions, b.flows[0].retransmissions);
  EXPECT_DOUBLE_EQ(a.flows[0].fct_sec, b.flows[0].fct_sec);
}

INSTANTIATE_TEST_SUITE_P(Families, DeterminismByFamily,
                         ::testing::Values("cubic", "bbr", "dcqcn", "hpcc",
                                           "baseline"));

}  // namespace
}  // namespace greencc
