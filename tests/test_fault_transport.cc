// Adversarial transport tests: full TCP sender/receiver pairs driven through
// ImpairedLinks on both the data and ACK paths. The transport must survive
// seeded loss, burst loss, corruption, reordering and duplication without
// livelock, deliver the stream exactly once, and keep the fault ledger's
// extended conservation equation balanced.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "app/scenario.h"
#include "cca/cca.h"
#include "check/ledger.h"
#include "energy/cpu.h"
#include "fault/impairment.h"
#include "net/port.h"
#include "sim/simulator.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"

namespace greencc::fault {
namespace {

using sim::SimTime;
using sim::Simulator;

/// sender -> forward port -> data impairment -> receiver
///        <- ACK impairment <- reverse port  <-
struct ImpairedHarness {
  ImpairedHarness(const std::string& cca_name, ImpairmentConfig data_cfg,
                  ImpairmentConfig ack_cfg = {}) {
    net::PortConfig forward_config;
    forward_config.rate = units::BitRate::bps(1e9);
    forward_config.propagation = SimTime::microseconds(5);
    net::PortConfig reverse_config;
    reverse_config.propagation = SimTime::microseconds(5);

    cca::CcaConfig cca_config;
    cca_config.mss_bytes = tcp_config.mss_bytes();
    auto cc = cca::make_cca(cca_name, cca_config);

    forward = std::make_unique<net::QueuedPort>(sim, "fwd", forward_config,
                                                nullptr);
    reverse = std::make_unique<net::QueuedPort>(sim, "rev", reverse_config,
                                                nullptr);
    sender = std::make_unique<tcp::TcpSender>(sim, /*flow=*/1, /*src=*/1,
                                              /*dst=*/2, tcp_config,
                                              std::move(cc), &core,
                                              forward.get());
    receiver = std::make_unique<tcp::TcpReceiver>(sim, 1, 2, tcp_config,
                                                  reverse.get());
    data_link = std::make_unique<ImpairedLink>(sim, "imp:data", data_cfg,
                                               receiver.get());
    ack_link = std::make_unique<ImpairedLink>(sim, "imp:ack", ack_cfg,
                                              sender.get());
    forward->set_next(data_link.get());
    reverse->set_next(ack_link.get());
    forward->set_ledger(&ledger);
    reverse->set_ledger(&ledger);
    data_link->set_ledger(&ledger);
    ack_link->set_ledger(&ledger);
  }

  void transfer(std::int64_t bytes) {
    sender->add_app_data(units::Bytes{bytes});
    sender->mark_app_eof();
    sender->start();
    sim.run_until(SimTime::seconds(60.0));
  }

  /// The extended conservation equation on the data side, checkable once
  /// the run has quiesced (nothing left in flight or held):
  ///   sent + injected == received + congestion drops + fault drops
  void expect_data_books_balance() {
    EXPECT_EQ(data_link->held_packets(), 0);
    EXPECT_EQ(sender->stats().segments_sent + ledger.data_injected(1),
              receiver->segments_received() + ledger.data_drops(1) +
                  ledger.data_fault_drops(1));
    std::vector<std::string> problems;
    data_link->audit(problems);
    ack_link->audit(problems);
    EXPECT_TRUE(problems.empty()) << problems.front();
  }

  Simulator sim;
  tcp::TcpConfig tcp_config;
  energy::CpuCore core;
  check::PacketLedger ledger;
  std::unique_ptr<net::QueuedPort> forward;
  std::unique_ptr<net::QueuedPort> reverse;
  std::unique_ptr<tcp::TcpSender> sender;
  std::unique_ptr<tcp::TcpReceiver> receiver;
  std::unique_ptr<ImpairedLink> data_link;
  std::unique_ptr<ImpairedLink> ack_link;
};

TEST(FaultTransport, SurvivesIidLossOnBothPaths) {
  ImpairmentConfig data_cfg;
  data_cfg.loss_rate = 0.02;
  data_cfg.seed = 2;
  ImpairmentConfig ack_cfg;
  ack_cfg.loss_rate = 0.02;
  ack_cfg.seed = 3;
  ImpairedHarness h("reno", data_cfg, ack_cfg);
  h.transfer(3'000'000);
  EXPECT_TRUE(h.sender->complete());
  EXPECT_EQ(h.receiver->rcv_nxt(), h.sender->snd_nxt());
  EXPECT_GT(h.data_link->stats().loss_drops, 0u);
  EXPECT_GT(h.sender->stats().retransmissions, 0);
  h.expect_data_books_balance();
}

TEST(FaultTransport, SurvivesBurstLoss) {
  ImpairmentConfig data_cfg;
  data_cfg.ge_p_bad = 0.005;
  data_cfg.ge_p_good = 0.3;
  data_cfg.seed = 4;
  ImpairedHarness h("cubic", data_cfg);
  h.transfer(1'000'000);
  EXPECT_TRUE(h.sender->complete());
  EXPECT_EQ(h.receiver->rcv_nxt(), h.sender->snd_nxt());
  EXPECT_GT(h.data_link->stats().burst_drops, 0u);
  h.expect_data_books_balance();
}

TEST(FaultTransport, CorruptedDataIsChecksumDroppedAndRetransmitted) {
  ImpairmentConfig data_cfg;
  data_cfg.corrupt_rate = 0.02;
  data_cfg.seed = 5;
  ImpairedHarness h("reno", data_cfg);
  h.transfer(1'000'000);
  EXPECT_TRUE(h.sender->complete());
  EXPECT_EQ(h.receiver->rcv_nxt(), h.sender->snd_nxt());
  // Corruption surfaces at the receiver, not on the wire: the damaged
  // segments arrived, failed the checksum, and were retransmitted.
  EXPECT_GT(h.data_link->stats().corrupted, 0u);
  EXPECT_GT(h.receiver->checksum_drops(), 0);
  EXPECT_GT(h.sender->stats().retransmissions, 0);
  h.expect_data_books_balance();
}

TEST(FaultTransport, CorruptedAcksAreIgnoredNotProcessed) {
  ImpairmentConfig ack_cfg;
  ack_cfg.corrupt_rate = 0.05;
  ack_cfg.seed = 6;
  ImpairedHarness h("reno", ImpairmentConfig{}, ack_cfg);
  h.transfer(1'000'000);
  EXPECT_TRUE(h.sender->complete());
  EXPECT_GT(h.sender->stats().checksum_drops, 0);
  // Cumulative ACKs make individual ACK losses nearly free.
  EXPECT_EQ(h.receiver->rcv_nxt(), h.sender->snd_nxt());
}

TEST(FaultTransport, ReorderingAndDuplicationDeliverExactlyOnce) {
  ImpairmentConfig data_cfg;
  data_cfg.reorder_rate = 0.05;
  data_cfg.reorder_delay = SimTime::microseconds(200);
  data_cfg.duplicate_rate = 0.02;
  data_cfg.seed = 7;
  ImpairmentConfig ack_cfg;
  ack_cfg.reorder_rate = 0.05;
  ack_cfg.reorder_delay = SimTime::microseconds(200);
  ack_cfg.seed = 8;
  ImpairedHarness h("cubic", data_cfg, ack_cfg);
  h.transfer(1'000'000);
  EXPECT_TRUE(h.sender->complete());
  // rcv_nxt advances past the stream end exactly once regardless of how
  // many duplicate or out-of-order copies arrived.
  EXPECT_EQ(h.receiver->rcv_nxt(), h.sender->snd_nxt());
  EXPECT_GT(h.data_link->stats().reordered, 0u);
  EXPECT_GT(h.data_link->stats().duplicated, 0u);
  h.expect_data_books_balance();
}

TEST(FaultTransport, EveryCcaSurvivesTheGauntletAcrossSeeds) {
  // No livelock and eventual delivery for each paper CCA under a mix of
  // every impairment at once, across several seeds.
  for (const char* cca : {"reno", "cubic", "bbr", "bbr2", "westwood"}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      ImpairmentConfig data_cfg;
      data_cfg.loss_rate = 0.005;
      data_cfg.ge_p_bad = 0.002;
      data_cfg.ge_p_good = 0.3;
      data_cfg.corrupt_rate = 0.005;
      data_cfg.reorder_rate = 0.02;
      data_cfg.reorder_delay = SimTime::microseconds(100);
      data_cfg.duplicate_rate = 0.01;
      data_cfg.jitter_max = SimTime::microseconds(5);
      data_cfg.seed = seed;
      ImpairmentConfig ack_cfg;
      ack_cfg.loss_rate = 0.005;
      ack_cfg.seed = seed + 100;
      ImpairedHarness h(cca, data_cfg, ack_cfg);
      h.transfer(300'000);
      EXPECT_TRUE(h.sender->complete())
          << cca << " seed " << seed << " did not complete";
      EXPECT_EQ(h.receiver->rcv_nxt(), h.sender->snd_nxt())
          << cca << " seed " << seed;
      h.expect_data_books_balance();
    }
  }
}

TEST(FaultTransport, ArmedAuditorPassesAnImpairedScenario) {
  // End-to-end acceptance shape: a scenario with the impairment stage
  // installed and the invariant auditor armed must complete without any
  // violation (the auditor aborts the process on one), with the injected
  // drops visible in the fault counters.
  app::ScenarioConfig config;
  config.seed = 3;
  config.audit_interval = SimTime::milliseconds(1);
  config.faults.impair.loss_rate = 5e-3;
  config.faults.impair.duplicate_rate = 5e-3;
  config.faults.install = true;
  app::Scenario scenario(std::move(config));
  app::FlowSpec flow;
  flow.cca = "cubic";
  flow.bytes = units::Bytes{20'000'000};
  scenario.add_flow(flow);
  const app::ScenarioResult result = scenario.run();
  EXPECT_TRUE(result.all_completed);
  std::uint64_t fault_drops = 0;
  std::uint64_t injected = 0;
  for (const auto& [name, value] : result.counters) {
    if (name == "fault:data.loss_drops") fault_drops = value;
    if (name == "fault:data.duplicated") injected = value;
  }
  EXPECT_GT(fault_drops, 0u);
  EXPECT_GT(injected, 0u);
}

}  // namespace
}  // namespace greencc::fault
