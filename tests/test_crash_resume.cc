// Crash/resume against the real cca_grid binary. A sweep is SIGKILLed (and
// separately SIGINTed) mid-flight, then resumed from its journal; the
// resumed CSV must be byte-identical to an uninterrupted serial run, because
// per-run seeds derive from (base_seed, cell, repeat) and journal payloads
// round-trip doubles exactly (%.17g).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Small enough that the full grid takes seconds, large enough that a poll
// loop reliably catches the sweep mid-flight.
std::vector<std::string> grid_args(const std::string& csv_path) {
  return {CCA_GRID_PATH, "--bytes", "2000000",  "--repeats", "2",
          "--seed",      "7",       "--cache",  "",          "--csv",
          csv_path};
}

/// fork/exec with stdout+stderr captured to `log_path`. No shell: empty
/// arguments (--cache "") must survive verbatim.
pid_t spawn(std::vector<std::string> args, const std::string& log_path) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    const int fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      ::close(fd);
    }
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

/// Wait for the child with a deadline; on timeout, SIGKILL and fail.
int wait_for_exit(pid_t pid, int timeout_sec) {
  const auto deadline =
      // lint-allow: wall-clock (subprocess timeout; never feeds results)
      std::chrono::steady_clock::now() + std::chrono::seconds(timeout_sec);
  for (;;) {
    int status = 0;
    const pid_t done = ::waitpid(pid, &status, WNOHANG);
    if (done == pid) return status;
    // lint-allow: wall-clock (subprocess timeout; never feeds results)
    if (std::chrono::steady_clock::now() > deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      ADD_FAILURE() << "subprocess " << pid << " exceeded " << timeout_sec
                    << "s";
      return status;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

int run_sync(const std::vector<std::string>& args, const std::string& log_path,
             int timeout_sec = 240) {
  return wait_for_exit(spawn(args, log_path), timeout_sec);
}

std::size_t journal_entries(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::size_t entries = 0;
  while (std::getline(in, line)) {
    if (line.rfind("{\"task\":", 0) == 0) ++entries;
  }
  return entries;
}

/// Poll the journal until it holds at least `want` completed-cell entries.
/// Returns false if the child exits first (sweep finished too fast to be
/// interrupted — a test-environment problem, not a product one).
bool wait_for_entries(pid_t pid, const std::string& journal, std::size_t want,
                      int timeout_sec) {
  const auto deadline =
      // lint-allow: wall-clock (subprocess timeout; never feeds results)
      std::chrono::steady_clock::now() + std::chrono::seconds(timeout_sec);
  // lint-allow: wall-clock (subprocess timeout; never feeds results)
  while (std::chrono::steady_clock::now() < deadline) {
    if (journal_entries(journal) >= want) return true;
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

/// The uninterrupted serial reference CSV, computed once per test binary.
const std::string& reference_csv() {
  static std::string contents;
  static std::once_flag once;
  std::call_once(once, [] {
    const std::string csv = temp_path("grid_reference.csv");
    const int status =
        run_sync(grid_args(csv), temp_path("grid_reference.log"));
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << read_file(temp_path("grid_reference.log"));
    contents = read_file(csv);
    ASSERT_GT(contents.size(), 100u);
  });
  return contents;
}

int parse_summary_count(const std::string& log, const char* key) {
  const auto pos = log.find(key);
  if (pos == std::string::npos) return -1;
  return std::atoi(log.c_str() + pos + std::strlen(key));
}

TEST(CrashResume, SigkillMidSweepThenResumeIsByteIdentical) {
  const std::string journal = temp_path("grid_kill_journal.jsonl");
  const std::string csv = temp_path("grid_kill.csv");
  std::remove(journal.c_str());

  auto args = grid_args(csv);
  args.insert(args.end(), {"--jobs", "2", "--journal", journal});
  const pid_t pid = spawn(args, temp_path("grid_kill.log"));
  // SIGKILL once at least two cells are journaled but (with dozens of
  // tasks pending) the sweep is far from done: the hard-crash case — no
  // handler runs, no flush beyond the per-append fsync.
  ASSERT_TRUE(wait_for_entries(pid, journal, 2, 120))
      << "sweep finished before it could be killed; raise --bytes";
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  const int status = wait_for_exit(pid, 60);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  const std::size_t survived = journal_entries(journal);
  EXPECT_GE(survived, 2u);

  auto resume_args = args;
  resume_args.push_back("--resume");
  const std::string resume_log = temp_path("grid_kill_resume.log");
  const int resume_status = run_sync(resume_args, resume_log);
  ASSERT_TRUE(WIFEXITED(resume_status) && WEXITSTATUS(resume_status) == 0)
      << read_file(resume_log);

  // The resume actually reused the journal rather than re-running the
  // sweep from scratch. A torn final line may drop one entry, never more.
  const std::string log = read_file(resume_log);
  const int resumed = parse_summary_count(log, "resumed=");
  EXPECT_GE(resumed, static_cast<int>(survived) - 1) << log;

  EXPECT_EQ(read_file(csv), reference_csv())
      << "resumed CSV differs from the uninterrupted serial run";
  std::remove(journal.c_str());
}

TEST(CrashResume, SigintFlushesJournalAndExitsPartial) {
  const std::string journal = temp_path("grid_int_journal.jsonl");
  const std::string csv = temp_path("grid_int.csv");
  std::remove(journal.c_str());

  auto args = grid_args(csv);
  args.insert(args.end(), {"--jobs", "2", "--journal", journal});
  const pid_t pid = spawn(args, temp_path("grid_int.log"));
  ASSERT_TRUE(wait_for_entries(pid, journal, 2, 120))
      << "sweep finished before it could be interrupted; raise --bytes";
  ASSERT_EQ(::kill(pid, SIGINT), 0);
  const int status = wait_for_exit(pid, 120);

  // Graceful shutdown: normal exit with the partial-results code, not a
  // signal death, and the health summary says it was interrupted.
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 75);
  const std::string log = read_file(temp_path("grid_int.log"));
  EXPECT_NE(log.find("(interrupted)"), std::string::npos) << log;
  EXPECT_GE(journal_entries(journal), 2u);

  auto resume_args = args;
  resume_args.push_back("--resume");
  const std::string resume_log = temp_path("grid_int_resume.log");
  const int resume_status = run_sync(resume_args, resume_log);
  ASSERT_TRUE(WIFEXITED(resume_status) && WEXITSTATUS(resume_status) == 0)
      << read_file(resume_log);
  EXPECT_EQ(read_file(csv), reference_csv())
      << "resumed CSV differs from the uninterrupted serial run";
  std::remove(journal.c_str());
}

}  // namespace
