// Unit tests for the structured-event tracing layer: class names and
// filter parsing, sink filtering, JSONL formatting, and the counter
// registry.

#include "trace/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "trace/counters.h"

namespace greencc::trace {
namespace {

using sim::SimTime;

Event make_event(EventClass cls, double t_sec = 1.0) {
  Event e;
  e.t = SimTime::seconds(t_sec);
  e.cls = cls;
  e.flow = 3;
  e.src = "switch:egress0";
  e.seq = 42;
  e.value = 9000.0;
  return e;
}

TEST(TraceClasses, EveryClassHasAStableName) {
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(EventClass::kNumClasses); ++i) {
    const auto name = class_name(static_cast<EventClass>(i));
    EXPECT_FALSE(name.empty()) << i;
    // Round trip through the filter parser.
    EXPECT_EQ(parse_class_list(std::string(name)),
              class_bit(static_cast<EventClass>(i)));
  }
}

TEST(TraceClasses, ParseListCombinesBits) {
  const auto mask = parse_class_list("drop,ecn_mark,rto");
  EXPECT_EQ(mask, class_bit(EventClass::kDrop) |
                      class_bit(EventClass::kEcnMark) |
                      class_bit(EventClass::kRto));
}

TEST(TraceClasses, ParseListRejectsUnknownNames) {
  EXPECT_THROW(parse_class_list("drop,bogus"), std::invalid_argument);
  // An empty list is an empty mask, not an error.
  EXPECT_EQ(parse_class_list(""), 0u);
}

TEST(TraceSinkTest, MaskFiltersBeforeRecording) {
  VectorTraceSink sink(class_bit(EventClass::kDrop));
  sink.emit(make_event(EventClass::kDrop));
  sink.emit(make_event(EventClass::kEnqueue));
  sink.emit(make_event(EventClass::kDrop));
  EXPECT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events_emitted(), 2u);
  EXPECT_EQ(sink.count(EventClass::kDrop), 2u);
  EXPECT_EQ(sink.count(EventClass::kEnqueue), 0u);
  EXPECT_TRUE(sink.wants(EventClass::kDrop));
  EXPECT_FALSE(sink.wants(EventClass::kEnqueue));
}

TEST(JsonlSink, FormatsOneObjectPerLine) {
  std::ostringstream out;
  {
    JsonlTraceSink sink(out);
    sink.emit(make_event(EventClass::kDrop, 0.001234));
    auto e = make_event(EventClass::kFlowStart, 2.0);
    e.seq = -1;       // omitted
    e.value = 5e8;
    e.aux = 0.0;      // omitted
    sink.emit(e);
  }
  EXPECT_EQ(out.str(),
            "{\"t\":0.001234000,\"ev\":\"drop\",\"src\":\"switch:egress0\","
            "\"flow\":3,\"seq\":42,\"value\":9000}\n"
            "{\"t\":2.000000000,\"ev\":\"flow_start\","
            "\"src\":\"switch:egress0\",\"flow\":3,\"value\":500000000}\n");
}

TEST(JsonlSink, IncludesAuxWhenNonZero) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  auto e = make_event(EventClass::kCwnd);
  e.aux = 12.5;
  sink.emit(e);
  EXPECT_NE(out.str().find("\"aux\":12.5"), std::string::npos);
}

TEST(JsonlSink, ThrowsWhenFileCannotBeOpened) {
  EXPECT_THROW(JsonlTraceSink("/nonexistent-dir/trace.jsonl"),
               std::runtime_error);
}

TEST(Counters, SnapshotIsNameSorted) {
  CounterRegistry reg;
  std::uint64_t b = 2;
  std::int64_t a = 1;
  reg.add("zeta", [] { return std::uint64_t{3}; });
  reg.add("alpha", &a);
  reg.add("mid", &b);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "alpha");
  EXPECT_EQ(snap[0].second, 1u);
  EXPECT_EQ(snap[1].first, "mid");
  EXPECT_EQ(snap[1].second, 2u);
  EXPECT_EQ(snap[2].first, "zeta");
  EXPECT_EQ(snap[2].second, 3u);
}

TEST(Counters, ReadersSeeLiveValues) {
  CounterRegistry reg;
  std::uint64_t c = 0;
  reg.add("c", &c);
  c = 17;
  EXPECT_EQ(reg.snapshot()[0].second, 17u);
}

TEST(Counters, DuplicateNameThrows) {
  CounterRegistry reg;
  std::uint64_t c = 0;
  reg.add("c", &c);
  EXPECT_THROW(reg.add("c", &c), std::logic_error);
}

TEST(Counters, NegativeSignedCountersClampToZero) {
  CounterRegistry reg;
  std::int64_t c = -5;
  reg.add("c", &c);
  EXPECT_EQ(reg.snapshot()[0].second, 0u);
}

}  // namespace
}  // namespace greencc::trace
