#include "stats/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace greencc::stats {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, StableForLargeOffsets) {
  // Welford must not lose precision with a large common offset.
  Summary s;
  for (double x : {1e9 + 1, 1e9 + 2, 1e9 + 3}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(MeanStddev, SpanHelpers) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Pearson, PerfectCorrelations) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y_pos = {2, 4, 6, 8, 10};
  const std::vector<double> y_neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, y_neg), -1.0, 1e-12);
}

TEST(Pearson, KnownValue) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 1, 4, 3, 5};
  EXPECT_NEAR(pearson(x, y), 0.8, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_EQ(pearson(x, c), 0.0);
}

TEST(Pearson, MismatchThrows) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1};
  EXPECT_THROW(pearson(x, y), std::invalid_argument);
}

TEST(LinearFit, RecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
}

TEST(LinearFit, ConstantXGivesZeroSlope) {
  const std::vector<double> x = {2, 2, 2};
  const std::vector<double> y = {1, 5, 9};
  const auto fit = linear_fit(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(JainIndex, FairAndUnfairExtremes) {
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{5, 5, 5, 5}), 1.0);
  // Fully unfair: index = 1/n.
  EXPECT_NEAR(jain_index(std::vector<double>{10, 0, 0, 0}), 0.25, 1e-12);
}

// Property: Jain's index is always in [1/n, 1] for non-negative allocations.
class JainProperty : public ::testing::TestWithParam<int> {};

TEST_P(JainProperty, Bounded) {
  const int n = GetParam();
  std::vector<double> xs(static_cast<size_t>(n));
  std::uint64_t state = 12345 + static_cast<std::uint64_t>(n);
  for (int trial = 0; trial < 100; ++trial) {
    bool all_zero = true;
    for (auto& x : xs) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      x = static_cast<double>(state >> 40);
      // lint-allow: float-eq (integer-valued by construction)
      if (x != 0.0) all_zero = false;
    }
    if (all_zero) continue;
    const double j = jain_index(xs);
    EXPECT_GE(j, 1.0 / n - 1e-12);
    EXPECT_LE(j, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, JainProperty,
                         ::testing::Values(1, 2, 3, 5, 10, 100));

TEST(Concavity, DetectsConcaveConvexLinear) {
  std::vector<double> xs, concave, convex, linear;
  for (int i = 0; i <= 10; ++i) {
    const double x = i;
    xs.push_back(x);
    concave.push_back(std::sqrt(x + 1.0));
    convex.push_back(x * x);
    linear.push_back(2.0 * x + 1.0);
  }
  EXPECT_TRUE(is_strictly_concave(xs, concave));
  EXPECT_FALSE(is_strictly_concave(xs, convex));
  EXPECT_FALSE(is_strictly_concave(xs, linear));
}

TEST(Concavity, NonIncreasingXThrows) {
  const std::vector<double> xs = {0, 2, 1};
  const std::vector<double> ys = {0, 1, 2};
  EXPECT_THROW(is_strictly_concave(xs, ys), std::invalid_argument);
}

}  // namespace
}  // namespace greencc::stats
