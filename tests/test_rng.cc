#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace greencc::sim {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, UniformMeanConverges) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.01);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.5);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BitsLookUniform) {
  // Cheap sanity: each of the 64 bit positions should be set ~half the time.
  Rng rng(10);
  int counts[64] = {};
  const int n = 4096;
  for (int i = 0; i < n; ++i) {
    std::uint64_t v = rng.next_u64();
    for (int b = 0; b < 64; ++b) {
      if (v & (1ULL << b)) ++counts[b];
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]) / n, 0.5, 0.05)
        << "bit " << b;
  }
}

}  // namespace
}  // namespace greencc::sim
