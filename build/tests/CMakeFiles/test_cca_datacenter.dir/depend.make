# Empty dependencies file for test_cca_datacenter.
# This may be replaced when dependencies are built.
