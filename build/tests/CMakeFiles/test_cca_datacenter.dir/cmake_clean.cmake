file(REMOVE_RECURSE
  "CMakeFiles/test_cca_datacenter.dir/test_cca_datacenter.cc.o"
  "CMakeFiles/test_cca_datacenter.dir/test_cca_datacenter.cc.o.d"
  "test_cca_datacenter"
  "test_cca_datacenter.pdb"
  "test_cca_datacenter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cca_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
