file(REMOVE_RECURSE
  "CMakeFiles/test_switch_power.dir/test_switch_power.cc.o"
  "CMakeFiles/test_switch_power.dir/test_switch_power.cc.o.d"
  "test_switch_power"
  "test_switch_power.pdb"
  "test_switch_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switch_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
