# Empty dependencies file for test_switch_power.
# This may be replaced when dependencies are built.
