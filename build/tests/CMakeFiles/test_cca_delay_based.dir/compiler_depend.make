# Empty compiler generated dependencies file for test_cca_delay_based.
# This may be replaced when dependencies are built.
