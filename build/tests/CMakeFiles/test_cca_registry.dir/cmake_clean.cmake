file(REMOVE_RECURSE
  "CMakeFiles/test_cca_registry.dir/test_cca_registry.cc.o"
  "CMakeFiles/test_cca_registry.dir/test_cca_registry.cc.o.d"
  "test_cca_registry"
  "test_cca_registry.pdb"
  "test_cca_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cca_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
