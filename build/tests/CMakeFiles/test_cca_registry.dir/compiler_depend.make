# Empty compiler generated dependencies file for test_cca_registry.
# This may be replaced when dependencies are built.
