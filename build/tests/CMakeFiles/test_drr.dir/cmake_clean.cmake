file(REMOVE_RECURSE
  "CMakeFiles/test_drr.dir/test_drr.cc.o"
  "CMakeFiles/test_drr.dir/test_drr.cc.o.d"
  "test_drr"
  "test_drr.pdb"
  "test_drr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
