file(REMOVE_RECURSE
  "CMakeFiles/test_cca_dctcp.dir/test_cca_dctcp.cc.o"
  "CMakeFiles/test_cca_dctcp.dir/test_cca_dctcp.cc.o.d"
  "test_cca_dctcp"
  "test_cca_dctcp.pdb"
  "test_cca_dctcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cca_dctcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
