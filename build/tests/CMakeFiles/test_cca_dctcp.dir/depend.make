# Empty dependencies file for test_cca_dctcp.
# This may be replaced when dependencies are built.
