
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cca_dctcp.cc" "tests/CMakeFiles/test_cca_dctcp.dir/test_cca_dctcp.cc.o" "gcc" "tests/CMakeFiles/test_cca_dctcp.dir/test_cca_dctcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/greencc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/greencc_app.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/greencc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/greencc_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/cca/CMakeFiles/greencc_cca.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/greencc_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/greencc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/greencc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
