file(REMOVE_RECURSE
  "CMakeFiles/test_cca_loss_based.dir/test_cca_loss_based.cc.o"
  "CMakeFiles/test_cca_loss_based.dir/test_cca_loss_based.cc.o.d"
  "test_cca_loss_based"
  "test_cca_loss_based.pdb"
  "test_cca_loss_based[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cca_loss_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
