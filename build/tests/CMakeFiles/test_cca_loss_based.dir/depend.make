# Empty dependencies file for test_cca_loss_based.
# This may be replaced when dependencies are built.
