file(REMOVE_RECURSE
  "CMakeFiles/test_cca_cubic.dir/test_cca_cubic.cc.o"
  "CMakeFiles/test_cca_cubic.dir/test_cca_cubic.cc.o.d"
  "test_cca_cubic"
  "test_cca_cubic.pdb"
  "test_cca_cubic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cca_cubic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
