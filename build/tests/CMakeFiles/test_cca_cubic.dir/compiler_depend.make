# Empty compiler generated dependencies file for test_cca_cubic.
# This may be replaced when dependencies are built.
