file(REMOVE_RECURSE
  "CMakeFiles/test_cca_bbr.dir/test_cca_bbr.cc.o"
  "CMakeFiles/test_cca_bbr.dir/test_cca_bbr.cc.o.d"
  "test_cca_bbr"
  "test_cca_bbr.pdb"
  "test_cca_bbr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cca_bbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
