# Empty dependencies file for test_cca_bbr.
# This may be replaced when dependencies are built.
