# Empty dependencies file for ext_incast.
# This may be replaced when dependencies are built.
