file(REMOVE_RECURSE
  "CMakeFiles/ext_incast.dir/ext_incast.cc.o"
  "CMakeFiles/ext_incast.dir/ext_incast.cc.o.d"
  "ext_incast"
  "ext_incast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_incast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
