file(REMOVE_RECURSE
  "CMakeFiles/ablation_baseline_collapse.dir/ablation_baseline_collapse.cc.o"
  "CMakeFiles/ablation_baseline_collapse.dir/ablation_baseline_collapse.cc.o.d"
  "ablation_baseline_collapse"
  "ablation_baseline_collapse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_baseline_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
