# Empty compiler generated dependencies file for ablation_baseline_collapse.
# This may be replaced when dependencies are built.
