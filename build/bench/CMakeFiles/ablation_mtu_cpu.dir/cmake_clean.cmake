file(REMOVE_RECURSE
  "CMakeFiles/ablation_mtu_cpu.dir/ablation_mtu_cpu.cc.o"
  "CMakeFiles/ablation_mtu_cpu.dir/ablation_mtu_cpu.cc.o.d"
  "ablation_mtu_cpu"
  "ablation_mtu_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mtu_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
