# Empty compiler generated dependencies file for ablation_mtu_cpu.
# This may be replaced when dependencies are built.
