file(REMOVE_RECURSE
  "CMakeFiles/ablation_fig1_drr.dir/ablation_fig1_drr.cc.o"
  "CMakeFiles/ablation_fig1_drr.dir/ablation_fig1_drr.cc.o.d"
  "ablation_fig1_drr"
  "ablation_fig1_drr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fig1_drr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
