# Empty compiler generated dependencies file for ablation_fig1_drr.
# This may be replaced when dependencies are built.
