# Empty compiler generated dependencies file for ext_datacenter_ccas.
# This may be replaced when dependencies are built.
