file(REMOVE_RECURSE
  "CMakeFiles/ext_datacenter_ccas.dir/ext_datacenter_ccas.cc.o"
  "CMakeFiles/ext_datacenter_ccas.dir/ext_datacenter_ccas.cc.o.d"
  "ext_datacenter_ccas"
  "ext_datacenter_ccas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_datacenter_ccas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
