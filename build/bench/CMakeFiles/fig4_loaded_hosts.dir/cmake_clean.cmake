file(REMOVE_RECURSE
  "CMakeFiles/fig4_loaded_hosts.dir/fig4_loaded_hosts.cc.o"
  "CMakeFiles/fig4_loaded_hosts.dir/fig4_loaded_hosts.cc.o.d"
  "fig4_loaded_hosts"
  "fig4_loaded_hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_loaded_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
