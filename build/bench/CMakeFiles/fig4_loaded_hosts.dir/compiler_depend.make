# Empty compiler generated dependencies file for fig4_loaded_hosts.
# This may be replaced when dependencies are built.
