file(REMOVE_RECURSE
  "CMakeFiles/ext_srpt_energy.dir/ext_srpt_energy.cc.o"
  "CMakeFiles/ext_srpt_energy.dir/ext_srpt_energy.cc.o.d"
  "ext_srpt_energy"
  "ext_srpt_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_srpt_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
