file(REMOVE_RECURSE
  "CMakeFiles/ablation_simcore.dir/ablation_simcore.cc.o"
  "CMakeFiles/ablation_simcore.dir/ablation_simcore.cc.o.d"
  "ablation_simcore"
  "ablation_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
