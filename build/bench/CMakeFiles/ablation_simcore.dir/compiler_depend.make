# Empty compiler generated dependencies file for ablation_simcore.
# This may be replaced when dependencies are built.
