# Empty compiler generated dependencies file for ablation_theorem1.
# This may be replaced when dependencies are built.
