file(REMOVE_RECURSE
  "CMakeFiles/ablation_multiflow.dir/ablation_multiflow.cc.o"
  "CMakeFiles/ablation_multiflow.dir/ablation_multiflow.cc.o.d"
  "ablation_multiflow"
  "ablation_multiflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
