# Empty compiler generated dependencies file for ablation_multiflow.
# This may be replaced when dependencies are built.
