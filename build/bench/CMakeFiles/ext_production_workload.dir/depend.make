# Empty dependencies file for ext_production_workload.
# This may be replaced when dependencies are built.
