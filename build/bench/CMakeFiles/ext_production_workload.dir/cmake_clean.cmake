file(REMOVE_RECURSE
  "CMakeFiles/ext_production_workload.dir/ext_production_workload.cc.o"
  "CMakeFiles/ext_production_workload.dir/ext_production_workload.cc.o.d"
  "ext_production_workload"
  "ext_production_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_production_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
