# Empty dependencies file for fig7_energy_vs_fct.
# This may be replaced when dependencies are built.
