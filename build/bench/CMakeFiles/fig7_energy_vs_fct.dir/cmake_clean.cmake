file(REMOVE_RECURSE
  "CMakeFiles/fig7_energy_vs_fct.dir/fig7_energy_vs_fct.cc.o"
  "CMakeFiles/fig7_energy_vs_fct.dir/fig7_energy_vs_fct.cc.o.d"
  "fig7_energy_vs_fct"
  "fig7_energy_vs_fct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_energy_vs_fct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
