# Empty dependencies file for fig1_unfair_savings.
# This may be replaced when dependencies are built.
