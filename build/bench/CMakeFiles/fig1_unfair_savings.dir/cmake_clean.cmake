file(REMOVE_RECURSE
  "CMakeFiles/fig1_unfair_savings.dir/fig1_unfair_savings.cc.o"
  "CMakeFiles/fig1_unfair_savings.dir/fig1_unfair_savings.cc.o.d"
  "fig1_unfair_savings"
  "fig1_unfair_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_unfair_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
