file(REMOVE_RECURSE
  "CMakeFiles/fig8_energy_vs_retx.dir/fig8_energy_vs_retx.cc.o"
  "CMakeFiles/fig8_energy_vs_retx.dir/fig8_energy_vs_retx.cc.o.d"
  "fig8_energy_vs_retx"
  "fig8_energy_vs_retx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_energy_vs_retx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
