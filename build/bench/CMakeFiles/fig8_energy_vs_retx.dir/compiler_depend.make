# Empty compiler generated dependencies file for fig8_energy_vs_retx.
# This may be replaced when dependencies are built.
