file(REMOVE_RECURSE
  "CMakeFiles/fig2_power_curve.dir/fig2_power_curve.cc.o"
  "CMakeFiles/fig2_power_curve.dir/fig2_power_curve.cc.o.d"
  "fig2_power_curve"
  "fig2_power_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_power_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
