# Empty dependencies file for fig2_power_curve.
# This may be replaced when dependencies are built.
