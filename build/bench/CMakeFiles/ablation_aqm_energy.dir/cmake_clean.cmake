file(REMOVE_RECURSE
  "CMakeFiles/ablation_aqm_energy.dir/ablation_aqm_energy.cc.o"
  "CMakeFiles/ablation_aqm_energy.dir/ablation_aqm_energy.cc.o.d"
  "ablation_aqm_energy"
  "ablation_aqm_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aqm_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
