file(REMOVE_RECURSE
  "CMakeFiles/fig3_timeseries.dir/fig3_timeseries.cc.o"
  "CMakeFiles/fig3_timeseries.dir/fig3_timeseries.cc.o.d"
  "fig3_timeseries"
  "fig3_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
