file(REMOVE_RECURSE
  "CMakeFiles/fig5_cca_energy.dir/fig5_cca_energy.cc.o"
  "CMakeFiles/fig5_cca_energy.dir/fig5_cca_energy.cc.o.d"
  "fig5_cca_energy"
  "fig5_cca_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cca_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
