# Empty dependencies file for fig6_cca_power.
# This may be replaced when dependencies are built.
