file(REMOVE_RECURSE
  "CMakeFiles/fig6_cca_power.dir/fig6_cca_power.cc.o"
  "CMakeFiles/fig6_cca_power.dir/fig6_cca_power.cc.o.d"
  "fig6_cca_power"
  "fig6_cca_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cca_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
