# Empty compiler generated dependencies file for ablation_cca_microcost.
# This may be replaced when dependencies are built.
