file(REMOVE_RECURSE
  "CMakeFiles/ablation_cca_microcost.dir/ablation_cca_microcost.cc.o"
  "CMakeFiles/ablation_cca_microcost.dir/ablation_cca_microcost.cc.o.d"
  "ablation_cca_microcost"
  "ablation_cca_microcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cca_microcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
