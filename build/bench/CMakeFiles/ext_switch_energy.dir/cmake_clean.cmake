file(REMOVE_RECURSE
  "CMakeFiles/ext_switch_energy.dir/ext_switch_energy.cc.o"
  "CMakeFiles/ext_switch_energy.dir/ext_switch_energy.cc.o.d"
  "ext_switch_energy"
  "ext_switch_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_switch_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
