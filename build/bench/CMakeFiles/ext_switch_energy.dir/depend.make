# Empty dependencies file for ext_switch_energy.
# This may be replaced when dependencies are built.
