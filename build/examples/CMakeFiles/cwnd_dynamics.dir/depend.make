# Empty dependencies file for cwnd_dynamics.
# This may be replaced when dependencies are built.
