file(REMOVE_RECURSE
  "CMakeFiles/cwnd_dynamics.dir/cwnd_dynamics.cpp.o"
  "CMakeFiles/cwnd_dynamics.dir/cwnd_dynamics.cpp.o.d"
  "cwnd_dynamics"
  "cwnd_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwnd_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
