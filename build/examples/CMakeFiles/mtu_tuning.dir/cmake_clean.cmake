file(REMOVE_RECURSE
  "CMakeFiles/mtu_tuning.dir/mtu_tuning.cpp.o"
  "CMakeFiles/mtu_tuning.dir/mtu_tuning.cpp.o.d"
  "mtu_tuning"
  "mtu_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtu_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
