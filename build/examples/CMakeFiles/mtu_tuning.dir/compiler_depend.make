# Empty compiler generated dependencies file for mtu_tuning.
# This may be replaced when dependencies are built.
