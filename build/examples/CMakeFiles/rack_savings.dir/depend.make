# Empty dependencies file for rack_savings.
# This may be replaced when dependencies are built.
