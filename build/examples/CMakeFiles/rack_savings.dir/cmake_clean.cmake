file(REMOVE_RECURSE
  "CMakeFiles/rack_savings.dir/rack_savings.cpp.o"
  "CMakeFiles/rack_savings.dir/rack_savings.cpp.o.d"
  "rack_savings"
  "rack_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rack_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
