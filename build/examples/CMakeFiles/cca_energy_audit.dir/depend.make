# Empty dependencies file for cca_energy_audit.
# This may be replaced when dependencies are built.
