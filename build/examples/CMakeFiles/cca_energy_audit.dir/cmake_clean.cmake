file(REMOVE_RECURSE
  "CMakeFiles/cca_energy_audit.dir/cca_energy_audit.cpp.o"
  "CMakeFiles/cca_energy_audit.dir/cca_energy_audit.cpp.o.d"
  "cca_energy_audit"
  "cca_energy_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cca_energy_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
