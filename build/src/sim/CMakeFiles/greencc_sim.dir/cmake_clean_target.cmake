file(REMOVE_RECURSE
  "libgreencc_sim.a"
)
