# Empty compiler generated dependencies file for greencc_sim.
# This may be replaced when dependencies are built.
