file(REMOVE_RECURSE
  "CMakeFiles/greencc_sim.dir/rng.cc.o"
  "CMakeFiles/greencc_sim.dir/rng.cc.o.d"
  "CMakeFiles/greencc_sim.dir/simulator.cc.o"
  "CMakeFiles/greencc_sim.dir/simulator.cc.o.d"
  "libgreencc_sim.a"
  "libgreencc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greencc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
