file(REMOVE_RECURSE
  "libgreencc_app.a"
)
