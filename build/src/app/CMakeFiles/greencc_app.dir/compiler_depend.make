# Empty compiler generated dependencies file for greencc_app.
# This may be replaced when dependencies are built.
