file(REMOVE_RECURSE
  "CMakeFiles/greencc_app.dir/runner.cc.o"
  "CMakeFiles/greencc_app.dir/runner.cc.o.d"
  "CMakeFiles/greencc_app.dir/scenario.cc.o"
  "CMakeFiles/greencc_app.dir/scenario.cc.o.d"
  "CMakeFiles/greencc_app.dir/workload.cc.o"
  "CMakeFiles/greencc_app.dir/workload.cc.o.d"
  "libgreencc_app.a"
  "libgreencc_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greencc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
