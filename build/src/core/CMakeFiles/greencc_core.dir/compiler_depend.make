# Empty compiler generated dependencies file for greencc_core.
# This may be replaced when dependencies are built.
