file(REMOVE_RECURSE
  "libgreencc_core.a"
)
