file(REMOVE_RECURSE
  "CMakeFiles/greencc_core.dir/allocation.cc.o"
  "CMakeFiles/greencc_core.dir/allocation.cc.o.d"
  "CMakeFiles/greencc_core.dir/efficiency.cc.o"
  "CMakeFiles/greencc_core.dir/efficiency.cc.o.d"
  "CMakeFiles/greencc_core.dir/scheduler.cc.o"
  "CMakeFiles/greencc_core.dir/scheduler.cc.o.d"
  "CMakeFiles/greencc_core.dir/theorem.cc.o"
  "CMakeFiles/greencc_core.dir/theorem.cc.o.d"
  "libgreencc_core.a"
  "libgreencc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greencc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
