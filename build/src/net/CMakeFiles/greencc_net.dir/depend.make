# Empty dependencies file for greencc_net.
# This may be replaced when dependencies are built.
