file(REMOVE_RECURSE
  "CMakeFiles/greencc_net.dir/drr.cc.o"
  "CMakeFiles/greencc_net.dir/drr.cc.o.d"
  "CMakeFiles/greencc_net.dir/port.cc.o"
  "CMakeFiles/greencc_net.dir/port.cc.o.d"
  "CMakeFiles/greencc_net.dir/queue.cc.o"
  "CMakeFiles/greencc_net.dir/queue.cc.o.d"
  "CMakeFiles/greencc_net.dir/switch.cc.o"
  "CMakeFiles/greencc_net.dir/switch.cc.o.d"
  "libgreencc_net.a"
  "libgreencc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greencc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
