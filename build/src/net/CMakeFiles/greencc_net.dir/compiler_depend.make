# Empty compiler generated dependencies file for greencc_net.
# This may be replaced when dependencies are built.
