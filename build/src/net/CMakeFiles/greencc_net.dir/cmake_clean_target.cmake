file(REMOVE_RECURSE
  "libgreencc_net.a"
)
