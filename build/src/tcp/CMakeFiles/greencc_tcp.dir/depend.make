# Empty dependencies file for greencc_tcp.
# This may be replaced when dependencies are built.
