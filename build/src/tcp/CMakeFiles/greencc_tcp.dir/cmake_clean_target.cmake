file(REMOVE_RECURSE
  "libgreencc_tcp.a"
)
