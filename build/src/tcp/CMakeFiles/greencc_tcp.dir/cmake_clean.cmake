file(REMOVE_RECURSE
  "CMakeFiles/greencc_tcp.dir/receiver.cc.o"
  "CMakeFiles/greencc_tcp.dir/receiver.cc.o.d"
  "CMakeFiles/greencc_tcp.dir/sender.cc.o"
  "CMakeFiles/greencc_tcp.dir/sender.cc.o.d"
  "CMakeFiles/greencc_tcp.dir/seq_range_set.cc.o"
  "CMakeFiles/greencc_tcp.dir/seq_range_set.cc.o.d"
  "libgreencc_tcp.a"
  "libgreencc_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greencc_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
