
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cca/bbr.cc" "src/cca/CMakeFiles/greencc_cca.dir/bbr.cc.o" "gcc" "src/cca/CMakeFiles/greencc_cca.dir/bbr.cc.o.d"
  "/root/repo/src/cca/registry.cc" "src/cca/CMakeFiles/greencc_cca.dir/registry.cc.o" "gcc" "src/cca/CMakeFiles/greencc_cca.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/greencc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/greencc_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/greencc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
