file(REMOVE_RECURSE
  "CMakeFiles/greencc_cca.dir/bbr.cc.o"
  "CMakeFiles/greencc_cca.dir/bbr.cc.o.d"
  "CMakeFiles/greencc_cca.dir/registry.cc.o"
  "CMakeFiles/greencc_cca.dir/registry.cc.o.d"
  "libgreencc_cca.a"
  "libgreencc_cca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greencc_cca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
