# Empty compiler generated dependencies file for greencc_cca.
# This may be replaced when dependencies are built.
