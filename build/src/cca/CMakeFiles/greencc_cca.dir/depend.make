# Empty dependencies file for greencc_cca.
# This may be replaced when dependencies are built.
