file(REMOVE_RECURSE
  "libgreencc_cca.a"
)
