# Empty dependencies file for greencc_run.
# This may be replaced when dependencies are built.
