file(REMOVE_RECURSE
  "CMakeFiles/greencc_run.dir/greencc_run.cc.o"
  "CMakeFiles/greencc_run.dir/greencc_run.cc.o.d"
  "greencc_run"
  "greencc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greencc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
