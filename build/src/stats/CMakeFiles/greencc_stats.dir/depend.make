# Empty dependencies file for greencc_stats.
# This may be replaced when dependencies are built.
