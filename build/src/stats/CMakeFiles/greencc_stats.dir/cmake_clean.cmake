file(REMOVE_RECURSE
  "CMakeFiles/greencc_stats.dir/json.cc.o"
  "CMakeFiles/greencc_stats.dir/json.cc.o.d"
  "CMakeFiles/greencc_stats.dir/stats.cc.o"
  "CMakeFiles/greencc_stats.dir/stats.cc.o.d"
  "CMakeFiles/greencc_stats.dir/table.cc.o"
  "CMakeFiles/greencc_stats.dir/table.cc.o.d"
  "libgreencc_stats.a"
  "libgreencc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greencc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
