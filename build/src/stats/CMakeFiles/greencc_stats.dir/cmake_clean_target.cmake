file(REMOVE_RECURSE
  "libgreencc_stats.a"
)
