# Empty dependencies file for greencc_energy.
# This may be replaced when dependencies are built.
