file(REMOVE_RECURSE
  "libgreencc_energy.a"
)
