
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/cpu.cc" "src/energy/CMakeFiles/greencc_energy.dir/cpu.cc.o" "gcc" "src/energy/CMakeFiles/greencc_energy.dir/cpu.cc.o.d"
  "/root/repo/src/energy/meter.cc" "src/energy/CMakeFiles/greencc_energy.dir/meter.cc.o" "gcc" "src/energy/CMakeFiles/greencc_energy.dir/meter.cc.o.d"
  "/root/repo/src/energy/power_model.cc" "src/energy/CMakeFiles/greencc_energy.dir/power_model.cc.o" "gcc" "src/energy/CMakeFiles/greencc_energy.dir/power_model.cc.o.d"
  "/root/repo/src/energy/rapl.cc" "src/energy/CMakeFiles/greencc_energy.dir/rapl.cc.o" "gcc" "src/energy/CMakeFiles/greencc_energy.dir/rapl.cc.o.d"
  "/root/repo/src/energy/switch_power.cc" "src/energy/CMakeFiles/greencc_energy.dir/switch_power.cc.o" "gcc" "src/energy/CMakeFiles/greencc_energy.dir/switch_power.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/greencc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/greencc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
