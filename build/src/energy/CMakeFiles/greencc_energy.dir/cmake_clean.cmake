file(REMOVE_RECURSE
  "CMakeFiles/greencc_energy.dir/cpu.cc.o"
  "CMakeFiles/greencc_energy.dir/cpu.cc.o.d"
  "CMakeFiles/greencc_energy.dir/meter.cc.o"
  "CMakeFiles/greencc_energy.dir/meter.cc.o.d"
  "CMakeFiles/greencc_energy.dir/power_model.cc.o"
  "CMakeFiles/greencc_energy.dir/power_model.cc.o.d"
  "CMakeFiles/greencc_energy.dir/rapl.cc.o"
  "CMakeFiles/greencc_energy.dir/rapl.cc.o.d"
  "CMakeFiles/greencc_energy.dir/switch_power.cc.o"
  "CMakeFiles/greencc_energy.dir/switch_power.cc.o.d"
  "libgreencc_energy.a"
  "libgreencc_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greencc_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
