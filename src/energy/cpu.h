#pragma once

#include <cstdint>

#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace greencc::energy {

/// Work-accounted CPU core.
///
/// Each flow's transmit path runs on one core (one iperf3 process per flow in
/// the paper's setup). The core serializes work: a packet handed to a busy
/// core starts processing only when the backlog drains, which is what caps a
/// single flow's throughput at small MTUs (Section 4.4's mechanism). The core
/// also keeps an exact busy-time integral so the energy meter can compute
/// utilization over each sampling window.
class CpuCore {
 public:
  /// Charge `work_ns` of core time starting no earlier than `now`; returns
  /// the completion time (when the result of the work — e.g. a packet handed
  /// to the NIC — becomes available).
  sim::SimTime acquire(sim::SimTime now, double work_ns);

  /// Charge work that does not gate any event (e.g. ACK processing): it
  /// extends the busy integral but the caller does not wait for it.
  void charge(sim::SimTime now, double work_ns) { acquire(now, work_ns); }

  /// Completed busy time (ns) up to `now`. Exact via
  /// completed = assigned - backlog(now).
  ///
  /// Precondition: `now` must not precede the latest acquire()/charge()
  /// call (the backlog identity only holds looking forward from the last
  /// assignment). The energy meter samples in event order, which satisfies
  /// this by construction.
  double busy_ns_until(sim::SimTime now) const;

  /// Earliest time new work could start.
  sim::SimTime free_at() const { return busy_until_; }

  bool busy_at(sim::SimTime now) const { return busy_until_ > now; }

  /// Multiply every work item by (1 + amplitude * U(-1,1)): cache and
  /// scheduler noise on a real host. This is what gives repeated runs the
  /// run-to-run spread the paper reports as error bars.
  void set_jitter(sim::Rng* rng, double amplitude) {
    rng_ = rng;
    jitter_ = amplitude;
  }

 private:
  sim::SimTime busy_until_ = sim::SimTime::zero();
  double assigned_ns_ = 0.0;
  sim::Rng* rng_ = nullptr;
  double jitter_ = 0.0;
};

}  // namespace greencc::energy
