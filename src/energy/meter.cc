#include "energy/meter.h"

#include <algorithm>

namespace greencc::energy {

HostEnergyMeter::HostEnergyMeter(sim::Simulator& sim, PackagePowerModel model,
                                 sim::SimTime tick)
    : sim_(sim), model_(std::move(model)), tick_len_(tick) {
  last_watts_ = model_.watts(HostActivity{});
}

void HostEnergyMeter::attach_core(CpuCore* core) {
  cores_.push_back(core);
  last_busy_ns_.push_back(core->busy_ns_until(sim_.now()));
}

void HostEnergyMeter::start() {
  if (running_) return;
  running_ = true;
  start_time_ = last_tick_ = sim_.now();
  rapl_.advance(sim_.now(), 0.0);  // align the counter's clock
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    last_busy_ns_[i] = cores_[i]->busy_ns_until(sim_.now());
  }
  last_tx_bytes_ = tx_bytes_;
  last_tx_packets_ = tx_packets_;
  sim_.schedule(tick_len_, [this] { tick(); });
}

void HostEnergyMeter::stop() {
  if (!running_) return;
  integrate_to_now();
  running_ = false;
}

void HostEnergyMeter::tick() {
  if (!running_) return;
  integrate_to_now();
  sim_.schedule(tick_len_, [this] { tick(); });
}

units::Power HostEnergyMeter::instantaneous_power(sim::SimTime window_start,
                                                  sim::SimTime now) {
  const double window_ns = static_cast<double>((now - window_start).ns());
  HostActivity activity;
  activity.stress_cores = stress_cores_;
  activity.net_core_utils.reserve(cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const double busy = cores_[i]->busy_ns_until(now);
    const double delta = std::max(0.0, busy - last_busy_ns_[i]);
    last_busy_ns_[i] = busy;
    activity.net_core_utils.push_back(window_ns > 0 ? delta / window_ns : 0.0);
  }
  const double bytes =
      static_cast<double>((tx_bytes_ - last_tx_bytes_).count());
  const double packets = static_cast<double>(tx_packets_ - last_tx_packets_);
  last_tx_bytes_ = tx_bytes_;
  last_tx_packets_ = tx_packets_;
  activity.net_rate =
      window_ns > 0
          ? units::BitRate::gbps(bytes * units::kBitsPerByteF / window_ns)
          : units::BitRate::zero();  // B/ns == Gb/s / 8
  activity.net_pkt_rate =
      window_ns > 0
          ? units::PacketRate::pps(packets * units::kNanosPerSecond / window_ns)
          : units::PacketRate::zero();
  return model_.watts(activity);
}

void HostEnergyMeter::integrate_to_now() {
  const sim::SimTime now = sim_.now();
  if (now <= last_tick_) return;
  // The window's power is computed from the utilization over the window and
  // applied retroactively across it (RAPL's own model updates are similarly
  // windowed, at ~1 ms granularity).
  last_watts_ = instantaneous_power(last_tick_, now);
  rapl_.advance(now, last_watts_.watts());
  if (record_samples_) samples_.push_back({now, last_watts_});
  last_tick_ = now;
}

std::uint64_t HostEnergyMeter::read_energy_uj() {
  if (running_) integrate_to_now();
  return rapl_.energy_uj();
}

units::Energy HostEnergyMeter::energy() {
  if (running_) integrate_to_now();
  return units::Energy::joules(rapl_.joules());
}

units::Power HostEnergyMeter::average_power() {
  const sim::SimTime elapsed = sim_.now() - start_time_;
  if (elapsed <= sim::SimTime::zero()) return last_watts_;
  return energy() / elapsed;
}

void HostEnergyMeter::register_counters(trace::CounterRegistry& reg,
                                        const std::string& prefix) {
  reg.add(prefix + "tx_packets", &tx_packets_);
  reg.add(prefix + "tx_bytes", &tx_bytes_);
  reg.add(prefix + "energy_uj", [this] { return read_energy_uj(); });
}

}  // namespace greencc::energy
