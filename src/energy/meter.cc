#include "energy/meter.h"

#include <algorithm>

namespace greencc::energy {

HostEnergyMeter::HostEnergyMeter(sim::Simulator& sim, PackagePowerModel model,
                                 sim::SimTime tick)
    : sim_(sim), model_(std::move(model)), tick_len_(tick) {
  last_watts_ = model_.watts(HostActivity{});
}

void HostEnergyMeter::attach_core(CpuCore* core) {
  cores_.push_back(core);
  last_busy_ns_.push_back(core->busy_ns_until(sim_.now()));
}

void HostEnergyMeter::start() {
  if (running_) return;
  running_ = true;
  start_time_ = last_tick_ = sim_.now();
  rapl_.advance(sim_.now(), 0.0);  // align the counter's clock
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    last_busy_ns_[i] = cores_[i]->busy_ns_until(sim_.now());
  }
  last_tx_bytes_ = tx_bytes_;
  last_tx_packets_ = tx_packets_;
  sim_.schedule(tick_len_, [this] { tick(); });
}

void HostEnergyMeter::stop() {
  if (!running_) return;
  integrate_to_now();
  running_ = false;
}

void HostEnergyMeter::tick() {
  if (!running_) return;
  integrate_to_now();
  sim_.schedule(tick_len_, [this] { tick(); });
}

double HostEnergyMeter::instantaneous_watts(sim::SimTime window_start,
                                            sim::SimTime now) {
  const double window_ns = static_cast<double>((now - window_start).ns());
  HostActivity activity;
  activity.stress_cores = stress_cores_;
  activity.net_core_utils.reserve(cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const double busy = cores_[i]->busy_ns_until(now);
    const double delta = std::max(0.0, busy - last_busy_ns_[i]);
    last_busy_ns_[i] = busy;
    activity.net_core_utils.push_back(window_ns > 0 ? delta / window_ns : 0.0);
  }
  const double bytes = static_cast<double>(tx_bytes_ - last_tx_bytes_);
  const double packets = static_cast<double>(tx_packets_ - last_tx_packets_);
  last_tx_bytes_ = tx_bytes_;
  last_tx_packets_ = tx_packets_;
  activity.net_gbps =
      window_ns > 0 ? bytes * 8.0 / window_ns : 0.0;  // B/ns == Gb/s / 8
  activity.net_pps = window_ns > 0 ? packets * 1e9 / window_ns : 0.0;
  return model_.watts(activity);
}

void HostEnergyMeter::integrate_to_now() {
  const sim::SimTime now = sim_.now();
  if (now <= last_tick_) return;
  // The window's power is computed from the utilization over the window and
  // applied retroactively across it (RAPL's own model updates are similarly
  // windowed, at ~1 ms granularity).
  last_watts_ = instantaneous_watts(last_tick_, now);
  rapl_.advance(now, last_watts_);
  if (record_samples_) samples_.push_back({now, last_watts_});
  last_tick_ = now;
}

std::uint64_t HostEnergyMeter::read_energy_uj() {
  if (running_) integrate_to_now();
  return rapl_.energy_uj();
}

double HostEnergyMeter::joules() {
  if (running_) integrate_to_now();
  return rapl_.joules();
}

double HostEnergyMeter::average_watts() {
  const double elapsed = (sim_.now() - start_time_).sec();
  if (elapsed <= 0.0) return last_watts_;
  return joules() / elapsed;
}

void HostEnergyMeter::register_counters(trace::CounterRegistry& reg,
                                        const std::string& prefix) {
  reg.add(prefix + "tx_packets", &tx_packets_);
  reg.add(prefix + "tx_bytes", &tx_bytes_);
  reg.add(prefix + "energy_uj", [this] { return read_energy_uj(); });
}

}  // namespace greencc::energy
