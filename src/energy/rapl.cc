#include "energy/rapl.h"

#include <stdexcept>

namespace greencc::energy {

void RaplCounter::advance(sim::SimTime now, double watts) {
  if (now < last_update_) {
    throw std::logic_error("RaplCounter::advance: time went backwards");
  }
  joules_ += watts * (now - last_update_).sec();
  last_update_ = now;
}

}  // namespace greencc::energy
