#pragma once

#include <cstdint>

#include "sim/time.h"

namespace greencc::energy {

/// RAPL-style cumulative energy counter.
///
/// Mirrors the measurement protocol of the paper: Intel RAPL exposes a
/// monotonically increasing microjoule counter per package; the experiment
/// harness reads it before and after a run and reports the difference. Our
/// counter is advanced by the energy meter with (elapsed-time x power)
/// increments.
class RaplCounter {
 public:
  /// Integrate `watts` of constant power from the last update until `now`.
  void advance(sim::SimTime now, double watts);

  /// Cumulative energy in microjoules (the unit of the real interface).
  std::uint64_t energy_uj() const {
    return static_cast<std::uint64_t>(joules_ * 1e6);
  }

  /// Cumulative energy in joules.
  double joules() const { return joules_; }

  sim::SimTime last_update() const { return last_update_; }

 private:
  double joules_ = 0.0;
  sim::SimTime last_update_ = sim::SimTime::zero();
};

}  // namespace greencc::energy
