#pragma once

#include <span>
#include <vector>

#include "energy/calibration.h"
#include "units/units.h"

namespace greencc::energy {

/// Instantaneous activity snapshot of one host, the input to the power model.
struct HostActivity {
  /// Utilization in [0,1] of each network-active core (one per flow/process,
  /// mirroring one iperf3 process per flow in the paper's setup).
  std::vector<double> net_core_utils;
  /// Number of cores kept busy by the background `stress` workload (§4.2).
  int stress_cores = 0;
  /// Aggregate transmit rate (drives the load/network interaction). A
  /// distinct type from the packet rate below so the two same-shaped model
  /// inputs cannot be swapped at a construction site.
  units::BitRate net_rate;
  /// Aggregate transmit packet rate (drives the interrupt/wakeup term).
  units::PacketRate net_pkt_rate;
};

/// Package power model for one server, calibrated to the paper (see
/// calibration.h for the fit). Strictly concave in network throughput, which
/// is the property Theorem 1 and the headline Fig 1 result rest on.
class PackagePowerModel {
 public:
  explicit PackagePowerModel(PowerCalibration calib = {}) : calib_(calib) {}

  /// Total package power for the given activity.
  units::Power watts(const HostActivity& activity) const;

  /// Power of a single-flow sender at `rate` average throughput with the
  /// given work-per-Gbps and packets-per-Gb ratios (utilization =
  /// gbps * util_per_gbps, pps = gbps * pps_per_gbps). This is the
  /// closed-form p(x) of Fig 2, used by the analysis library; the simulator
  /// computes the same quantity from measured work instead.
  units::Power single_flow_watts(units::BitRate rate, double util_per_gbps,
                                 double pps_per_gbps = 0.0,
                                 double load_fraction = 0.0) const;

  /// Concave per-core network power component f(u), u in [0,1].
  units::Power core_power(double utilization) const;

  /// Marginal-network-power attenuation on loaded packages, phi(L) in (0,1].
  double phi(double load_fraction) const;

  const PowerCalibration& calibration() const { return calib_; }

 private:
  PowerCalibration calib_;
};

}  // namespace greencc::energy
