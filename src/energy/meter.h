#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/cpu.h"
#include "energy/power_model.h"
#include "energy/rapl.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "trace/counters.h"
#include "units/units.h"

namespace greencc::energy {

/// Per-host energy meter: samples core utilizations on a fixed tick, feeds
/// them through the package power model and integrates into a RAPL counter.
///
/// Tick resolution trades accuracy for event count; the default of 1 ms
/// resolves the paper's shortest experiments (2 s transfers, Fig 1/3) to
/// 0.05%. Utilization within a tick comes from the cores' exact busy-time
/// integrals, so the only discretization error is the stair-stepping of the
/// concave power curve across a tick.
class HostEnergyMeter {
 public:
  HostEnergyMeter(sim::Simulator& sim, PackagePowerModel model,
                  sim::SimTime tick = sim::SimTime::milliseconds(1));

  /// Register a network-active core. Cores must outlive the meter's run.
  void attach_core(CpuCore* core);

  /// Set the number of cores loaded by the background stress workload.
  void set_stress_cores(int cores) { stress_cores_ = cores; }
  int stress_cores() const { return stress_cores_; }

  /// Called by the NIC for every transmitted packet (drives the Gb/s and
  /// packet-rate power terms).
  void on_packet_sent(units::Bytes bytes) {
    tx_bytes_ += bytes;
    ++tx_packets_;
  }

  /// Begin sampling. Must be called before the simulator runs.
  void start();

  /// Stop sampling after the current tick and integrate up to `now`.
  void stop();

  /// Energy reading as the experiment harness would take it (µJ).
  std::uint64_t read_energy_uj();

  /// Total energy integrated so far, including a partial final tick.
  units::Energy energy();

  /// Mean power over the sampled interval so far.
  units::Power average_power();

  /// Most recent instantaneous power sample.
  units::Power last_power() const { return last_watts_; }

  /// Power samples recorded each tick (time, power) — Fig 2/4 series.
  struct PowerSample {
    sim::SimTime when;
    units::Power power;
  };
  const std::vector<PowerSample>& samples() const { return samples_; }
  void set_record_samples(bool record) { record_samples_ = record; }

  /// Register "<prefix>tx_packets", "<prefix>tx_bytes" and the RAPL-style
  /// "<prefix>energy_uj" reading. Non-const: reading energy integrates the
  /// meter up to now, exactly like a real RAPL read.
  void register_counters(trace::CounterRegistry& reg,
                         const std::string& prefix);

 private:
  void tick();
  void integrate_to_now();
  units::Power instantaneous_power(sim::SimTime window_start, sim::SimTime now);

  sim::Simulator& sim_;
  PackagePowerModel model_;
  sim::SimTime tick_len_;
  std::vector<CpuCore*> cores_;
  std::vector<double> last_busy_ns_;
  int stress_cores_ = 0;
  units::Bytes tx_bytes_;
  units::Bytes last_tx_bytes_;
  std::int64_t tx_packets_ = 0;
  std::int64_t last_tx_packets_ = 0;
  RaplCounter rapl_;
  sim::SimTime last_tick_ = sim::SimTime::zero();
  sim::SimTime start_time_ = sim::SimTime::zero();
  units::Power last_watts_;
  bool running_ = false;
  bool record_samples_ = false;
  std::vector<PowerSample> samples_;
};

}  // namespace greencc::energy
