#pragma once

#include <cstdint>
#include <vector>

#include "net/port.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "units/units.h"

namespace greencc::energy {

/// Port power profiles for networking equipment, §5's last research
/// direction. The paper cites two observations:
///  * measured switches draw near-constant power regardless of load
///    (Fan et al. 2007, Kazandjieva et al. 2013) — `kConstant`;
///  * equipment *should* reduce power at low load via rate adaptation and
///    sleeping (Nedevschi et al. 2008) — `kRateAdaptive`, `kSleepCapable`.
/// "If a data center contained such equipment, our results imply that there
/// could be significant power savings by increasing load imbalance across
/// data center links."
enum class PortPowerProfile {
  kConstant,      ///< admin-up port draws full power at any load
  kRateAdaptive,  ///< discrete rate steps: a lightly-loaded port drops to a
                  ///< lower-speed, lower-power mode
  kSleepCapable,  ///< rate adaptation + deep sleep after an idle period
};

struct SwitchPowerConfig {
  /// Fans, CPU, fabric (Tofino-class).
  units::Power chassis_watts = units::Power::watts(150.0);
  /// Port in its full-rate mode.
  units::Power port_full_watts = units::Power::watts(2.5);
  /// Port stepped down to its low rate.
  units::Power port_low_watts = units::Power::watts(0.5);
  /// Port in deep sleep.
  units::Power port_sleep_watts = units::Power::watts(0.1);
  double low_rate_fraction = 0.1;   ///< low mode serves up to this load
  sim::SimTime sleep_after = sim::SimTime::milliseconds(1);
};

/// Integrates switch energy from per-port activity, sampling each port's
/// transmitted bytes on a fixed tick (like HostEnergyMeter does for hosts).
class SwitchEnergyMeter {
 public:
  SwitchEnergyMeter(sim::Simulator& sim, SwitchPowerConfig config,
                    PortPowerProfile profile,
                    sim::SimTime tick = sim::SimTime::milliseconds(1));

  /// Register an egress port to meter. Ports must outlive the meter.
  void attach_port(const net::QueuedPort* port);

  void start();
  void stop();

  units::Energy energy();
  units::Power average_power();

  /// Power of one port at the given utilization/idle time, exposed for
  /// tests and analytical use.
  units::Power port_power(double utilization, sim::SimTime idle_for) const;

 private:
  void tick();
  void integrate_to_now();

  struct PortState {
    const net::QueuedPort* port;
    units::Bytes last_bytes;
    sim::SimTime last_active;
  };

  sim::Simulator& sim_;
  SwitchPowerConfig config_;
  PortPowerProfile profile_;
  sim::SimTime tick_len_;
  std::vector<PortState> ports_;
  units::Energy joules_;
  sim::SimTime start_time_;
  sim::SimTime last_tick_;
  bool running_ = false;
};

}  // namespace greencc::energy
