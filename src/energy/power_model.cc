#include "energy/power_model.h"

#include <algorithm>
#include <cmath>

namespace greencc::energy {

units::Power PackagePowerModel::core_power(double utilization) const {
  const double u = std::clamp(utilization, 0.0, 1.0);
  return calib_.net_amplitude_watts *
         (1.0 - std::exp(-u / calib_.net_util_scale));
}

double PackagePowerModel::phi(double load_fraction) const {
  const double l = std::clamp(load_fraction, 0.0, 1.0);
  return calib_.phi_decay_amp * std::exp(-calib_.phi_decay_rate * l) +
         calib_.phi_floor;
}

units::Power PackagePowerModel::watts(const HostActivity& activity) const {
  const double load =
      static_cast<double>(activity.stress_cores) / calib_.total_cores;
  units::Power p = calib_.idle_watts;
  p += calib_.stress_core_watts * static_cast<double>(activity.stress_cores);
  const double attenuation = phi(load);
  for (double u : activity.net_core_utils) {
    p += attenuation * core_power(u);
  }
  p += units::Power::watts(calib_.omega_watts_per_pps *
                           activity.net_pkt_rate.pps());
  p += units::Power::watts(calib_.chi_watts_per_gbps * load *
                           activity.net_rate.gbps());
  return p;
}

units::Power PackagePowerModel::single_flow_watts(units::BitRate rate,
                                                  double util_per_gbps,
                                                  double pps_per_gbps,
                                                  double load_fraction) const {
  const double gbps = rate.gbps();
  HostActivity a;
  a.net_core_utils = {gbps * util_per_gbps};
  a.stress_cores = static_cast<int>(
      std::lround(load_fraction * calib_.total_cores));
  a.net_rate = rate;
  a.net_pkt_rate = units::PacketRate::pps(gbps * pps_per_gbps);
  return watts(a);
}

}  // namespace greencc::energy
