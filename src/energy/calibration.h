#pragma once

#include <cstdint>

#include "units/units.h"

namespace greencc::energy {

/// Calibration constants for the host power / CPU-work model.
///
/// The paper measures a dual-socket Xeon E5-2630 v3 server (32 physical
/// cores) with Intel RAPL. We cannot measure that hardware, so the model is
/// fitted to the paper's *published* numbers; each constant below cites the
/// anchor it comes from. Everything is a plain struct member so tests and
/// ablation benches can perturb individual constants.
///
/// Power model (see PackagePowerModel):
///
///   P = P_idle                                 (package idle, Fig 2 @ 0 Gb/s)
///     + stress_core_watts * k                  (k background-stress cores)
///     + phi(L) * sum_i f(u_i)                  (network-active cores)
///     + omega * pps                            (interrupt/wakeup cost)
///     + chi * L * x_gbps                       (load/network interaction)
///
///   f(u)   = amplitude * (1 - exp(-u / util_scale))   -- strictly concave
///   phi(L) = phi_decay_amp * exp(-phi_decay_rate * L) + phi_floor
///
/// Derivation of the fit:
///  * Fig 2 (CUBIC, MTU 9000): p(0)=21.49 W, p(5 Gb/s)=34.23 W,
///    p(10 Gb/s)=35.82 W. The work model (WorkCalibration below) gives a
///    core utilization u5 = 0.46492 at 5 Gb/s and 2*u5 at 10 Gb/s, and the
///    packet rates are 69.4 kpps / 138.9 kpps. With omega = 20 W/Mpps
///    (chosen so MTU-1500 power lands in Fig 6's 40-48 W band), solving
///      A(1-t) + omega*69.4k = 12.74,  A(1-t^2) + omega*138.9k = 14.33
///    gives t = exp(-u5/util_scale) = 0.01762, hence
///    util_scale = 0.11512 and A = 11.554.
///  * Section 4.2 savings triple (16% @ L=0, ~1% @ L=0.25, ~0.17% @ L=0.75)
///    pins phi(L). The full-speed-then-idle saving depends on the concavity
///    gap 2p(5)-p(10)-p(0) = phi(L)*A*(1-t)^2 (the linear pps/chi terms
///    cancel); solving the three savings equations gives
///    phi(L) = 0.966*exp(-10.21 L) + 0.032.
///  * Fig 4 power levels (~100 W at 75% load with idle network, ~120 W at
///    10 Gb/s) pin stress_core_watts = 3.3 W/core and chi = 2.6 W/(Gb/s).
struct PowerCalibration {
  units::Power idle_watts = units::Power::watts(21.49);
  units::Power net_amplitude_watts = units::Power::watts(13.013);
  double net_util_scale = 0.13754;
  /// Mixed-dimension fit coefficients (W per pps, W per Gb/s, utilization
  /// per Gb/s, pps per Gb/s). These are regression slopes against the
  /// paper's figures, not first-class quantities, so they stay raw doubles.
  double omega_watts_per_pps = 10.0 / 1e6;  // lint-allow: unit-suffix (paper-fit ratio coefficient, W/pps)
  units::Power stress_core_watts = units::Power::watts(3.3);
  double phi_decay_amp = 0.968;
  double phi_floor = 0.032;
  double phi_decay_rate = 10.19;
  double chi_watts_per_gbps = 2.6;  // lint-allow: unit-suffix (paper-fit ratio coefficient, W/(Gb/s))
  int total_cores = 32;

  /// Utilization and packet rate per Gb/s of a CUBIC sender at MTU 9000 —
  /// the operating point of the Fig 2 fit; used by the closed-form
  /// analyses to evaluate p(x) without running the simulator.
  double fig2_util_per_gbps = 0.35754 / 5.0;  // lint-allow: unit-suffix (paper-fit ratio coefficient)
  double fig2_pps_per_gbps = 13'888.9;  // lint-allow: unit-suffix (paper-fit ratio coefficient)
};

/// CPU work costs for the transmit/receive path, in nanoseconds of core time.
///
/// Fitted so the end hosts cap throughput the way §3/§4.4 describe (jumbo
/// frames required for line rate; 50 GB at MTU 1500 lands in the 60-90 s
/// FCT cluster of Fig 7):
///
///   sender rate cap ~= MTU*8 / (pkt_ns + MTU*byte_ns + ack share)
///   9000 B: ~14 Gb/s (never binding; the switch is)   1500 B: ~8.5 Gb/s
///
///   receiver cap ~= MTU*8 / (rx_pkt_ns + MTU*rx_byte_ns)
///   9000 B: ~10.4 Gb/s (above line rate)    1500 B: ~7.5 Gb/s
///
/// The receiver's softirq path is costlier per byte, so at 1500 B the
/// *receiver* is the end-host bottleneck; its packet-counted backlog queue
/// tail-drops, which is the loss source congestion control adapts to and
/// the constant-cwnd baseline keeps slamming into (Fig 8's millions of
/// retransmissions). A backlog drop happens after DMA + first touch, so it
/// still consumes rx_drop_ns of the processing stage — the paper's
/// "more frequent memory accesses and packet loss" overhead of running
/// without congestion control.
struct WorkCalibration {
  double pkt_ns = 500.0;        ///< fixed cost per transmitted packet
  double byte_ns = 0.50;        ///< copy/DMA-setup cost per byte
  double ack_ns = 250.0;        ///< fixed cost per processed ACK
  double retx_ns = 2200.0;      ///< extra recovery cost per retransmission
                                ///< (scoreboard walk, rbtree fixups)
  double timeout_ns = 250000.0; ///< RTO slow-path cost (flush, state reset)

  double rx_pkt_ns = 535.0;     ///< receiver fixed cost per packet
  double rx_byte_ns = 0.7097;   ///< receiver per-byte cost
  double rx_drop_ns = 1400.0;   ///< service consumed by a backlog drop
  int rx_backlog_packets = 12;  ///< receive-ring/backlog depth (packets)
};

/// Per-CCA compute cost, charged per ACK processed (cwnd arithmetic) and per
/// packet sent (pacing/tso-split overhead). The paper observes a ~14% power
/// spread across CCAs (Fig 6) and a ~40% energy gap between BBR and the
/// alpha-quality BBR2 port (Fig 5) but does not decompose the causes; these
/// constants are implementation-complexity estimates (cost of the actual
/// arithmetic in the Linux implementations) scaled to land in the reported
/// spread. They are inputs to the model, not measured results.
struct CcaCost {
  double per_ack_ns = 20.0;
  double per_packet_ns = 0.0;
};

}  // namespace greencc::energy
