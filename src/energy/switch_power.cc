#include "energy/switch_power.h"

#include <algorithm>

namespace greencc::energy {

SwitchEnergyMeter::SwitchEnergyMeter(sim::Simulator& sim,
                                     SwitchPowerConfig config,
                                     PortPowerProfile profile,
                                     sim::SimTime tick)
    : sim_(sim), config_(config), profile_(profile), tick_len_(tick) {}

void SwitchEnergyMeter::attach_port(const net::QueuedPort* port) {
  PortState state;
  state.port = port;
  state.last_bytes = port->bytes_sent();
  state.last_active = sim_.now();
  ports_.push_back(state);
}

void SwitchEnergyMeter::start() {
  if (running_) return;
  running_ = true;
  start_time_ = last_tick_ = sim_.now();
  for (auto& p : ports_) {
    p.last_bytes = p.port->bytes_sent();
    p.last_active = sim_.now();
  }
  sim_.schedule(tick_len_, [this] { tick(); });
}

void SwitchEnergyMeter::stop() {
  if (!running_) return;
  integrate_to_now();
  running_ = false;
}

units::Power SwitchEnergyMeter::port_power(double utilization,
                                           sim::SimTime idle_for) const {
  switch (profile_) {
    case PortPowerProfile::kConstant:
      return config_.port_full_watts;
    case PortPowerProfile::kRateAdaptive:
      // A port serving <= low_rate_fraction of its line rate steps down to
      // its low-speed mode; anything above needs the full-rate mode.
      return utilization <= config_.low_rate_fraction
                 ? config_.port_low_watts
                 : config_.port_full_watts;
    case PortPowerProfile::kSleepCapable:
      if (utilization <= 0.0 && idle_for >= config_.sleep_after) {
        return config_.port_sleep_watts;
      }
      return utilization <= config_.low_rate_fraction
                 ? config_.port_low_watts
                 : config_.port_full_watts;
  }
  return config_.port_full_watts;
}

void SwitchEnergyMeter::integrate_to_now() {
  const sim::SimTime now = sim_.now();
  if (now <= last_tick_) return;
  const sim::SimTime window = now - last_tick_;
  const double window_sec = window.sec();
  units::Power watts = config_.chassis_watts;
  for (auto& p : ports_) {
    const units::Bytes bytes = p.port->bytes_sent();
    const double delta = static_cast<double>((bytes - p.last_bytes).count());
    p.last_bytes = bytes;
    const double util = delta * units::kBitsPerByteF /
                        (p.port->config().rate.bps() * window_sec);
    if (delta > 0) p.last_active = now;
    watts += port_power(util, now - p.last_active);
  }
  joules_ += watts * window;
  last_tick_ = now;
}

void SwitchEnergyMeter::tick() {
  if (!running_) return;
  integrate_to_now();
  sim_.schedule(tick_len_, [this] { tick(); });
}

units::Energy SwitchEnergyMeter::energy() {
  if (running_) integrate_to_now();
  return joules_;
}

units::Power SwitchEnergyMeter::average_power() {
  const sim::SimTime elapsed = sim_.now() - start_time_;
  if (elapsed <= sim::SimTime::zero()) return config_.chassis_watts;
  return energy() / elapsed;
}

}  // namespace greencc::energy
