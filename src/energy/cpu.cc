#include "energy/cpu.h"

#include <algorithm>

namespace greencc::energy {

sim::SimTime CpuCore::acquire(sim::SimTime now, double work_ns) {
  if (rng_ != nullptr && jitter_ > 0.0) {
    work_ns *= 1.0 + jitter_ * rng_->uniform(-1.0, 1.0);
  }
  const sim::SimTime start = std::max(now, busy_until_);
  busy_until_ = start + sim::SimTime::nanoseconds(
                            static_cast<std::int64_t>(work_ns));
  assigned_ns_ += work_ns;
  return busy_until_;
}

double CpuCore::busy_ns_until(sim::SimTime now) const {
  const double backlog_ns =
      busy_until_ > now ? static_cast<double>((busy_until_ - now).ns()) : 0.0;
  return assigned_ns_ - backlog_ns;
}

}  // namespace greencc::energy
