// greencc_run — the command-line experiment driver, an iperf3-like front
// door to the testbed:
//
//   greencc_run --cca cubic --mtu 9000 --bytes 2e9
//   greencc_run --cca cubic,bbr,dctcp --flows 2 --schedule fsi --repeats 5
//   greencc_run --schedule srpt --sizes 1e9,2.5e8,2.5e8 --json out.json
//   greencc_run --cca cubic --repeats 10 --journal runs.jsonl --resume
//   greencc_run --list-ccas
//
// Prints the paper-style measurement summary per run (energy, power, FCT,
// retransmissions) and optionally a machine-readable JSON document.
//
// The (CCA x repeat) sweep runs under the robust::SweepSupervisor: a run
// that throws is retried (--retries) then quarantined instead of aborting
// the whole sweep, --deadline/--event-budget bound each run, --journal
// persists finished runs crash-safely and --resume replays them. Partial
// results exit 75.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "app/parallel_runner.h"
#include "app/scenario.h"
#include "cca/cca.h"
#include "core/scheduler.h"
#include "fault/plan.h"
#include "robust/journal.h"
#include "robust/shutdown.h"
#include "robust/supervisor.h"
#include "stats/json.h"
#include "stats/stats.h"
#include "stats/table.h"
#include "trace/trace.h"
#include "units/units.h"

using namespace greencc;

namespace {

struct Options {
  std::vector<std::string> ccas = {"cubic"};
  int mtu = 9000;
  units::Bytes bytes{2'000'000'000};
  std::vector<units::Bytes> sizes;  // overrides bytes/flows when set
  int flows = 1;
  std::string schedule = "fair";  // fair | fsi | srpt | weighted:<f>
  int load_pct = 0;
  int repeats = 1;
  std::uint64_t seed = 1;
  int jobs = 1;
  bool progress = false;
  units::BitRate rate_limit;
  std::string json_path;
  std::string trace_out;
  std::string impair_spec;
  bool have_impair = false;
  std::string fault_events_spec;
  trace::ClassMask trace_mask = trace::kAllClasses;
  bool audit = false;
  bool counters = false;
  double deadline_sec = 0.0;
  std::uint64_t event_budget = 0;
  int retries = 0;
  std::string journal_path;
  bool resume = false;
  bool list_ccas = false;
  bool help = false;
};

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "greencc_run — energy measurement of congestion-controlled "
      "transfers\n\n"
      "  --cca a[,b,...]      algorithms to run (default cubic); see "
      "--list-ccas\n"
      "  --mtu N              wire MTU in bytes (default 9000)\n"
      "  --bytes N            bytes per flow (default 2e9; accepts 2e9 "
      "notation)\n"
      "  --flows N            equal flows per run (default 1)\n"
      "  --sizes a,b,...      per-flow sizes; implies --flows\n"
      "  --schedule S         fair | fsi | srpt | weighted:<fraction>\n"
      "  --rate G             app rate limit per flow in Gb/s (0 = none)\n"
      "  --load P             background load percent on sender hosts\n"
      "  --repeats K          repeated runs; per-run seeds are splitmix-"
      "derived\n"
      "                       from (seed, cca index, repeat)\n"
      "  --seed S             base RNG seed (default 1)\n"
      "  --jobs N             worker threads for the sweep (default 1; "
      "0 = all\n"
      "                       cores); results identical for any N\n"
      "  --progress           print one wall-clock line per finished run\n"
      "  --deadline SEC       wall-clock watchdog per run (0 = none); a cut\n"
      "                       run is reported timed_out, not aggregated\n"
      "  --event-budget N     simulator event budget per run (0 = none)\n"
      "  --retries K          re-attempt a throwing run K times (capped\n"
      "                       exponential backoff) before quarantining it\n"
      "  --journal FILE       crash-safe journal of finished runs (JSONL,\n"
      "                       fsync per line)\n"
      "  --resume             replay a matching journal, re-run only what\n"
      "                       is missing; results are bit-identical to an\n"
      "                       uninterrupted sweep (restored runs have empty\n"
      "                       counters and a zero profile — only work done\n"
      "                       in this invocation is profiled)\n"
      "  --json FILE          write machine-readable results (includes run\n"
      "                       profile, counters and the supervisor health\n"
      "                       report)\n"
      "  --trace-out FILE     write a JSONL event trace; with multiple runs\n"
      "                       each gets FILE.<cca>-r<repeat>, and the sweep\n"
      "                       supervisor's events go to FILE.supervisor\n"
      "  --trace-filter C,..  event classes to trace (default all): enqueue\n"
      "                       drop ecn_mark retransmit rto recovery_enter\n"
      "                       recovery_exit cwnd tlp flow_start flow_finish\n"
      "                       ack_sent invariant fault_loss fault_corrupt\n"
      "                       fault_reorder fault_duplicate fault_link\n"
      "                       supervisor_retry supervisor_timeout\n"
      "                       supervisor_quarantine\n"
      "  --impair SPEC        impair the bottleneck link, e.g.\n"
      "                       'loss=1e-3,reorder=0.01' (keys: loss corrupt\n"
      "                       reorder reorder_delay_us dup jitter_us ge_p\n"
      "                       ge_r ge_loss seed)\n"
      "  --fault-events SPEC  timed link events, e.g.\n"
      "                       'down@0.5,up@0.6,rate=5e9@1.0,delay_us=50@2.0'\n"
      "  --audit              run the invariant auditor every 10 ms of sim\n"
      "                       time (aborts the run on the first violation)\n"
      "  --counters           print per-scenario counters after the summary\n"
      "  --list-ccas          list available algorithms and exit\n\n"
      "exit codes: 0 complete, 1 I/O error, 2 usage, 75 partial results\n"
      "(quarantined/timed-out runs or an interrupting signal)\n");
}

std::int64_t parse_bytes(const std::string& s) {
  return static_cast<std::int64_t>(std::stod(s));
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream stream(s);
  std::string item;
  while (std::getline(stream, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else if (arg == "--list-ccas") {
      opt.list_ccas = true;
    } else if (arg == "--cca") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.ccas = split(v, ',');
    } else if (arg == "--mtu") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.mtu = std::atoi(v);
    } else if (arg == "--bytes") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.bytes = units::Bytes{parse_bytes(v)};
    } else if (arg == "--sizes") {
      const char* v = next();
      if (!v) return std::nullopt;
      for (const auto& item : split(v, ',')) {
        opt.sizes.push_back(units::Bytes{parse_bytes(item)});
      }
    } else if (arg == "--flows") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.flows = std::atoi(v);
    } else if (arg == "--schedule") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.schedule = v;
    } else if (arg == "--rate") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.rate_limit = units::BitRate::gbps(std::atof(v));
    } else if (arg == "--load") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.load_pct = std::atoi(v);
    } else if (arg == "--repeats") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.repeats = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.jobs = std::atoi(v);
    } else if (arg == "--progress") {
      opt.progress = true;
    } else if (arg == "--deadline") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.deadline_sec = std::atof(v);
    } else if (arg == "--event-budget") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.event_budget = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--retries") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.retries = std::atoi(v);
    } else if (arg == "--journal") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.journal_path = v;
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.json_path = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.trace_out = v;
    } else if (arg == "--trace-filter") {
      const char* v = next();
      if (!v) return std::nullopt;
      try {
        opt.trace_mask = trace::parse_class_list(v);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "--trace-filter: %s\n", e.what());
        return std::nullopt;
      }
    } else if (arg == "--impair") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.impair_spec = v;
      opt.have_impair = true;
    } else if (arg == "--fault-events") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.fault_events_spec = v;
    } else if (arg == "--audit") {
      opt.audit = true;
    } else if (arg == "--counters") {
      opt.counters = true;
    } else {
      std::fprintf(stderr, "greencc_run: unknown flag: %s\n\n", arg.c_str());
      return std::nullopt;
    }
  }
  // Validate the schedule here, not in build_flows: a typo'd --schedule is
  // a usage error (exit 2), not something to quarantine per run.
  if (opt.schedule != "fair" && opt.schedule != "fsi" &&
      opt.schedule != "srpt" && opt.schedule.rfind("weighted:", 0) != 0) {
    std::fprintf(stderr, "greencc_run: unknown schedule: %s\n\n",
                 opt.schedule.c_str());
    return std::nullopt;
  }
  if (opt.resume && opt.journal_path.empty()) {
    opt.journal_path = "greencc_run_journal.jsonl";
  }
  return opt;
}

std::vector<app::FlowSpec> build_flows(const Options& opt,
                                       const std::string& cca) {
  if (!opt.sizes.empty()) {
    const auto policy = opt.schedule == "srpt"
                            ? core::SizedSchedule::kSrptSerial
                        : opt.schedule == "fsi"
                            ? core::SizedSchedule::kFifoSerial
                            : core::SizedSchedule::kFairShare;
    return core::make_sized_schedule(policy, opt.sizes, cca);
  }
  core::Schedule policy = core::Schedule::kFairShare;
  double fraction = 0.5;
  if (opt.schedule == "fsi") {
    policy = core::Schedule::kFullSpeedThenIdle;
  } else if (opt.schedule.rfind("weighted:", 0) == 0) {
    policy = core::Schedule::kWeighted;
    fraction = std::atof(opt.schedule.c_str() + 9);
  } else if (opt.schedule == "srpt") {
    policy = core::Schedule::kFullSpeedThenIdle;  // equal sizes: same thing
  } else if (opt.schedule != "fair") {
    throw std::invalid_argument("unknown schedule: " + opt.schedule);
  }
  auto specs = core::make_schedule(policy, opt.flows, opt.bytes, cca,
                                   units::BitRate::gbps(10), fraction);
  if (!opt.rate_limit.is_zero()) {
    for (auto& spec : specs) {
      spec.rate_limit = opt.rate_limit;
    }
  }
  return specs;
}

/// One total run traces straight into FILE; sweeps and repeats each get
/// their own file so parallel runs never share a sink.
std::string trace_file_name(const Options& opt, const std::string& cca,
                            std::size_t run_index) {
  if (opt.ccas.size() == 1 && opt.repeats <= 1) return opt.trace_out;
  return opt.trace_out + "." + cca + "-r" + std::to_string(run_index);
}

/// Journal payload for one run: the scalars the summary/JSON below read,
/// %.17g so a resumed sweep reproduces them bit-identically. Per-flow
/// counters and the execution profile are deliberately not journaled — a
/// restored run has empty counters and a zero profile.
std::string encode_run(const app::ScenarioResult& run) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "%.17g %.17g %.17g %d %zu",
                run.total_energy.joules(), run.avg_power.watts(),
                run.duration_sec, run.all_completed ? 1 : 0,
                run.flows.size());
  std::string payload = buf;
  for (const auto& flow : run.flows) {
    // The rate is journaled in its bps representation (not Gb/s) so a
    // resumed sweep restores the exact double without a unit conversion.
    std::snprintf(buf, sizeof buf,
                  " %" PRId64 " %.17g %.17g %.17g %" PRId64,
                  flow.bytes.count(), flow.fct_sec, flow.finished_at_sec,
                  flow.avg_rate.bps(), flow.retransmissions);
    payload += buf;
  }
  return payload;
}

bool decode_run(const std::string& payload, const std::string& cca,
                app::ScenarioResult& run) {
  std::istringstream in(payload);
  int completed = 0;
  std::size_t nflows = 0;
  double joules = 0.0;
  double watts = 0.0;
  if (!(in >> joules >> watts >> run.duration_sec >> completed >> nflows) ||
      nflows > 10'000) {
    return false;
  }
  run.total_energy = units::Energy::joules(joules);
  run.avg_power = units::Power::watts(watts);
  run.all_completed = completed != 0;
  run.stop_reason = completed ? "completed" : "deadline";
  run.flows.resize(nflows);
  for (auto& flow : run.flows) {
    std::int64_t bytes = 0;
    double rate_bps = 0.0;  // lint-allow: unit-suffix (journal wire field)
    if (!(in >> bytes >> flow.fct_sec >> flow.finished_at_sec >> rate_bps >>
          flow.retransmissions)) {
      return false;
    }
    flow.bytes = units::Bytes{bytes};
    flow.avg_rate = units::BitRate::bps(rate_bps);
    flow.cca = cca;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) {
    print_usage(stderr);
    return 2;
  }
  const Options& opt = *parsed;

  if (opt.help) {
    print_usage(stdout);
    return 0;
  }
  if (opt.list_ccas) {
    std::printf("paper algorithms   :");
    for (const auto& name : cca::all_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\ndatacenter (ext.)  :");
    for (const auto& name : cca::datacenter_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }

  robust::install_shutdown_handler();

  fault::FaultPlan fault_plan;
  try {
    if (opt.have_impair) {
      fault_plan.impair = fault::parse_impairments(opt.impair_spec);
      fault_plan.install = true;
    }
    if (!opt.fault_events_spec.empty()) {
      fault_plan.schedule = fault::parse_fault_events(opt.fault_events_spec);
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  // The (CCA x repeat) sweep, flattened: task t is repeat (t % reps) of
  // algorithm (t / reps). Seeds derive from (seed, cca index, repeat) —
  // exactly the pre-supervisor derivation, so existing results reproduce.
  const auto reps = static_cast<std::size_t>(std::max(opt.repeats, 1));
  const std::size_t total = opt.ccas.size() * reps;
  std::vector<app::ScenarioResult> runs(total);
  std::vector<char> present(total, 0);

  // Binds the journal to every option that can change the numbers (jobs,
  // output and supervision knobs excluded).
  std::ostringstream canon;
  // The "/2" tags the journal payload format (rates are journaled in bps);
  // older journals hash differently and are not replayed.
  canon << "greencc_run/2 mtu=" << opt.mtu << " bytes=" << opt.bytes.count()
        << " flows=" << opt.flows << " schedule=" << opt.schedule
        << " load=" << opt.load_pct << " repeats=" << reps
        << " seed=" << opt.seed << " rate=" << opt.rate_limit.gbps()
        << " impair=" << opt.impair_spec
        << " events=" << opt.fault_events_spec << " ccas=";
  for (const auto& name : opt.ccas) canon << name << ",";
  canon << " sizes=";
  for (const auto size : opt.sizes) canon << size.count() << ",";

  robust::SupervisorOptions sup;
  sup.jobs = opt.jobs;
  sup.max_attempts = std::max(opt.retries, 0) + 1;
  sup.cell_deadline_sec = opt.deadline_sec;
  sup.event_budget = opt.event_budget;
  sup.journal_path = opt.journal_path;
  sup.config_hash = robust::fnv1a64(canon.str());
  sup.resume = opt.resume;
  std::unique_ptr<trace::JsonlTraceSink> sup_sink;
  if (!opt.trace_out.empty()) {
    sup_sink = std::make_unique<trace::JsonlTraceSink>(
        opt.trace_out + ".supervisor", opt.trace_mask);
    sup.trace = sup_sink.get();
  }
  if (opt.progress) {
    sup.progress = [&](std::size_t done, std::size_t n, std::size_t index,
                       double secs) {
      const std::string& cca_name = opt.ccas[index / reps];
      const app::RunProfile& prof = runs[index].profile;
      std::fprintf(stderr,
                   "  %s: [%zu/%zu] repeat %zu seed=%llu  %.2fs  "
                   "%llu events (%.2fM ev/s, peak queue %llu)\n",
                   cca_name.c_str(), done, n, index % reps,
                   static_cast<unsigned long long>(app::derive_seed(
                       opt.seed, index / reps, index % reps)),
                   secs,
                   static_cast<unsigned long long>(prof.events_executed),
                   prof.events_per_sec / 1e6,
                   static_cast<unsigned long long>(prof.peak_pending_events));
    };
  }

  robust::CellHooks hooks;
  hooks.run = [&](std::size_t t, robust::CellContext& ctx) -> std::string {
    const std::size_t ci = t / reps;
    const std::size_t rep = t % reps;
    const std::string& cca_name = opt.ccas[ci];
    const std::uint64_t seed = app::derive_seed(opt.seed, ci, rep);
    ctx.set_seed(seed);
    // Sink before scenario: the scenario (holding the raw sink pointer)
    // must be destroyed first, flushing through a still-live sink.
    std::unique_ptr<trace::TraceSink> sink;
    if (!opt.trace_out.empty()) {
      sink = std::make_unique<trace::JsonlTraceSink>(
          trace_file_name(opt, cca_name, rep), opt.trace_mask);
    }
    app::ScenarioConfig config;
    config.tcp.mtu_bytes = units::Bytes{opt.mtu};
    config.seed = seed;
    config.stress_cores = opt.load_pct * 32 / 100;
    config.faults = fault_plan;
    if (opt.audit) {
      config.audit_interval = sim::SimTime::milliseconds(10);
    }
    app::Scenario scenario(std::move(config));
    for (const auto& spec : build_flows(opt, cca_name)) {
      scenario.add_flow(spec);
    }
    if (sink) scenario.set_trace_sink(sink.get());
    auto watch = ctx.watch(scenario.simulator());
    app::ScenarioResult result = scenario.run();
    if (ctx.cut() || result.stop_reason == "stopped" ||
        result.stop_reason == "budget_exhausted") {
      return {};  // truncated run: neither published nor journaled
    }
    std::string payload = encode_run(result);
    runs[t] = std::move(result);
    present[t] = 1;
    return payload;
  };
  hooks.restore = [&](std::size_t t, const std::string& payload) {
    app::ScenarioResult run;
    if (!decode_run(payload, opt.ccas[t / reps], run)) return;
    runs[t] = std::move(run);
    present[t] = 1;
  };

  robust::SweepSupervisor supervisor(std::move(sup));
  const robust::SweepReport report = supervisor.run(total, hooks);
  std::fprintf(stderr, "%s\n", report.summary().c_str());
  for (const auto* rec : report.quarantine()) {
    std::fprintf(stderr, "  %s: %s rep %zu (seed=%" PRIu64 "): %s\n",
                 std::string(robust::outcome_name(rec->outcome)).c_str(),
                 opt.ccas[rec->index / reps].c_str(), rec->index % reps,
                 rec->seed, rec->error.c_str());
  }

  stats::JsonWriter json;
  json.begin_object();
  json.key("runs").begin_array();

  stats::Table table({"cca", "energy[J]", "sd", "power[W]", "duration[s]",
                      "retx", "completed"});
  std::string counters_text;

  // Aggregate serially in (cca, repeat) order after the sweep drained:
  // bit-identical for any --jobs value, with or without --resume. Absent
  // runs (quarantined/timed-out/not-run) are skipped — the health report
  // above discloses them, and the cca's "completed" column reads NO.
  for (std::size_t ci = 0; ci < opt.ccas.size(); ++ci) {
    const std::string& cca_name = opt.ccas[ci];
    stats::Summary joules, watts, duration_sec, retransmissions;
    std::vector<const app::ScenarioResult*> cca_runs;
    bool all_done = true;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const std::size_t t = ci * reps + rep;
      if (!present[t]) {
        all_done = false;
        continue;
      }
      const auto& run = runs[t];
      cca_runs.push_back(&run);
      all_done &= run.all_completed;
      joules.add(run.total_energy.joules());
      watts.add(run.avg_power.watts());
      duration_sec.add(run.duration_sec);
      std::int64_t retx = 0;
      for (const auto& flow : run.flows) retx += flow.retransmissions;
      retransmissions.add(static_cast<double>(retx));
    }

    table.add_row({cca_name, stats::Table::num(joules.mean(), 1),
                   stats::Table::num(joules.stddev(), 2),
                   stats::Table::num(watts.mean(), 2),
                   stats::Table::num(duration_sec.mean(), 3),
                   stats::Table::num(retransmissions.mean(), 0),
                   all_done ? "yes" : "NO"});

    json.begin_object();
    json.field("cca", cca_name);
    json.field("mtu", opt.mtu);
    json.field("schedule", opt.schedule);
    json.field("load_pct", opt.load_pct);
    json.field("repeats", opt.repeats);
    json.field("energy_joules_mean", joules.mean());
    json.field("energy_joules_stddev", joules.stddev());
    json.field("power_watts_mean", watts.mean());
    json.field("duration_sec_mean", duration_sec.mean());
    json.field("retransmissions_mean", retransmissions.mean());
    json.field("all_completed", all_done);

    // Simulator execution profile, aggregated over the repeats: total work
    // and the worst event-queue high-water mark. Covers only runs executed
    // by this invocation — journal-restored runs did no work here.
    double wall_total = 0.0;
    std::uint64_t events_total = 0;
    std::uint64_t peak_pending = 0;
    for (const auto* run : cca_runs) {
      wall_total += run->profile.wall_seconds;
      events_total += run->profile.events_executed;
      peak_pending = std::max(peak_pending, run->profile.peak_pending_events);
    }
    json.key("profile").begin_object();
    json.field("wall_seconds", wall_total);
    json.field("events_executed", events_total);
    json.field("peak_pending_events", peak_pending);
    json.field("events_per_sec",
               wall_total > 0 ? static_cast<double>(events_total) / wall_total
                              : 0.0);
    json.end_object();

    // Counters and per-flow detail come from the cca's first surviving
    // repeat (empty counters when that repeat was restored from a journal).
    json.key("counters").begin_object();
    if (!cca_runs.empty()) {
      for (const auto& [name, v] : cca_runs.front()->counters) {
        json.field(name, v);
      }
    }
    json.end_object();

    json.key("flows").begin_array();
    if (!cca_runs.empty()) {
      for (const auto& flow : cca_runs.front()->flows) {
        json.begin_object();
        json.field("cca", flow.cca);
        json.field("bytes", flow.bytes.count());
        json.field("fct_sec", flow.fct_sec);
        json.field("finished_at_sec", flow.finished_at_sec);
        json.field("avg_gbps", flow.avg_rate.gbps());
        json.field("retransmissions", flow.retransmissions);
        json.key("counters").begin_object();
        for (const auto& [name, v] : flow.counters) {
          json.field(name, v);
        }
        json.end_object();
        json.end_object();
      }
    }
    json.end_array();
    json.end_object();

    if (opt.counters && !cca_runs.empty()) {
      counters_text += "\ncounters (" + cca_name + ", first repeat):\n";
      for (const auto& [name, v] : cca_runs.front()->counters) {
        counters_text += "  " + name + " = " + std::to_string(v) + "\n";
      }
    }
  }

  json.end_array();
  json.key("supervisor");
  report.write_json(json);
  json.end_object();

  table.print(std::cout);
  if (!counters_text.empty()) std::fputs(counters_text.c_str(), stdout);

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    out << json.str() << "\n";
    std::printf("\nwrote %s\n", opt.json_path.c_str());
  }
  return report.complete() ? 0 : robust::kPartialResultsExit;
}
