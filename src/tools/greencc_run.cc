// greencc_run — the command-line experiment driver, an iperf3-like front
// door to the testbed:
//
//   greencc_run --cca cubic --mtu 9000 --bytes 2e9
//   greencc_run --cca cubic,bbr,dctcp --flows 2 --schedule fsi --repeats 5
//   greencc_run --schedule srpt --sizes 1e9,2.5e8,2.5e8 --json out.json
//   greencc_run --list-ccas
//
// Prints the paper-style measurement summary per run (energy, power, FCT,
// retransmissions) and optionally a machine-readable JSON document.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "app/runner.h"
#include "cca/cca.h"
#include "core/scheduler.h"
#include "fault/plan.h"
#include "stats/json.h"
#include "stats/table.h"
#include "trace/trace.h"

using namespace greencc;

namespace {

struct Options {
  std::vector<std::string> ccas = {"cubic"};
  int mtu = 9000;
  std::int64_t bytes = 2'000'000'000;
  std::vector<std::int64_t> sizes;  // overrides bytes/flows when set
  int flows = 1;
  std::string schedule = "fair";  // fair | fsi | srpt | weighted:<f>
  int load_pct = 0;
  int repeats = 1;
  std::uint64_t seed = 1;
  int jobs = 1;
  bool progress = false;
  double rate_limit_gbps = 0.0;
  std::string json_path;
  std::string trace_out;
  std::string impair_spec;
  bool have_impair = false;
  std::string fault_events_spec;
  trace::ClassMask trace_mask = trace::kAllClasses;
  bool audit = false;
  bool counters = false;
  bool list_ccas = false;
  bool help = false;
};

void print_usage() {
  std::printf(
      "greencc_run — energy measurement of congestion-controlled "
      "transfers\n\n"
      "  --cca a[,b,...]      algorithms to run (default cubic); see "
      "--list-ccas\n"
      "  --mtu N              wire MTU in bytes (default 9000)\n"
      "  --bytes N            bytes per flow (default 2e9; accepts 2e9 "
      "notation)\n"
      "  --flows N            equal flows per run (default 1)\n"
      "  --sizes a,b,...      per-flow sizes; implies --flows\n"
      "  --schedule S         fair | fsi | srpt | weighted:<fraction>\n"
      "  --rate G             app rate limit per flow in Gb/s (0 = none)\n"
      "  --load P             background load percent on sender hosts\n"
      "  --repeats K          repeated runs; per-run seeds are splitmix-"
      "derived\n"
      "                       from (seed, cca index, repeat)\n"
      "  --seed S             base RNG seed (default 1)\n"
      "  --jobs N             worker threads for the repeats (default 1; "
      "0 = all\n"
      "                       cores); results identical for any N\n"
      "  --progress           print one wall-clock line per finished run\n"
      "  --json FILE          write machine-readable results (includes run\n"
      "                       profile and counters)\n"
      "  --trace-out FILE     write a JSONL event trace; with multiple runs\n"
      "                       each gets FILE.<cca>-r<repeat>\n"
      "  --trace-filter C,..  event classes to trace (default all): enqueue\n"
      "                       drop ecn_mark retransmit rto recovery_enter\n"
      "                       recovery_exit cwnd tlp flow_start flow_finish\n"
      "                       ack_sent invariant fault_loss fault_corrupt\n"
      "                       fault_reorder fault_duplicate fault_link\n"
      "  --impair SPEC        impair the bottleneck link, e.g.\n"
      "                       'loss=1e-3,reorder=0.01' (keys: loss corrupt\n"
      "                       reorder reorder_delay_us dup jitter_us ge_p\n"
      "                       ge_r ge_loss seed)\n"
      "  --fault-events SPEC  timed link events, e.g.\n"
      "                       'down@0.5,up@0.6,rate=5e9@1.0,delay_us=50@2.0'\n"
      "  --audit              run the invariant auditor every 10 ms of sim\n"
      "                       time (aborts the run on the first violation)\n"
      "  --counters           print per-scenario counters after the summary\n"
      "  --list-ccas          list available algorithms and exit\n");
}

std::int64_t parse_bytes(const std::string& s) {
  return static_cast<std::int64_t>(std::stod(s));
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream stream(s);
  std::string item;
  while (std::getline(stream, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else if (arg == "--list-ccas") {
      opt.list_ccas = true;
    } else if (arg == "--cca") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.ccas = split(v, ',');
    } else if (arg == "--mtu") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.mtu = std::atoi(v);
    } else if (arg == "--bytes") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.bytes = parse_bytes(v);
    } else if (arg == "--sizes") {
      const char* v = next();
      if (!v) return std::nullopt;
      for (const auto& item : split(v, ',')) {
        opt.sizes.push_back(parse_bytes(item));
      }
    } else if (arg == "--flows") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.flows = std::atoi(v);
    } else if (arg == "--schedule") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.schedule = v;
    } else if (arg == "--rate") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.rate_limit_gbps = std::atof(v);
    } else if (arg == "--load") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.load_pct = std::atoi(v);
    } else if (arg == "--repeats") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.repeats = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.jobs = std::atoi(v);
    } else if (arg == "--progress") {
      opt.progress = true;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.json_path = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.trace_out = v;
    } else if (arg == "--trace-filter") {
      const char* v = next();
      if (!v) return std::nullopt;
      try {
        opt.trace_mask = trace::parse_class_list(v);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "--trace-filter: %s\n", e.what());
        return std::nullopt;
      }
    } else if (arg == "--impair") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.impair_spec = v;
      opt.have_impair = true;
    } else if (arg == "--fault-events") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.fault_events_spec = v;
    } else if (arg == "--audit") {
      opt.audit = true;
    } else if (arg == "--counters") {
      opt.counters = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return std::nullopt;
    }
  }
  return opt;
}

std::vector<app::FlowSpec> build_flows(const Options& opt,
                                       const std::string& cca) {
  if (!opt.sizes.empty()) {
    const auto policy = opt.schedule == "srpt"
                            ? core::SizedSchedule::kSrptSerial
                        : opt.schedule == "fsi"
                            ? core::SizedSchedule::kFifoSerial
                            : core::SizedSchedule::kFairShare;
    return core::make_sized_schedule(policy, opt.sizes, cca);
  }
  core::Schedule policy = core::Schedule::kFairShare;
  double fraction = 0.5;
  if (opt.schedule == "fsi") {
    policy = core::Schedule::kFullSpeedThenIdle;
  } else if (opt.schedule.rfind("weighted:", 0) == 0) {
    policy = core::Schedule::kWeighted;
    fraction = std::atof(opt.schedule.c_str() + 9);
  } else if (opt.schedule == "srpt") {
    policy = core::Schedule::kFullSpeedThenIdle;  // equal sizes: same thing
  } else if (opt.schedule != "fair") {
    throw std::invalid_argument("unknown schedule: " + opt.schedule);
  }
  auto specs =
      core::make_schedule(policy, opt.flows, opt.bytes, cca, 10e9, fraction);
  if (opt.rate_limit_gbps > 0.0) {
    for (auto& spec : specs) spec.rate_limit_bps = opt.rate_limit_gbps * 1e9;
  }
  return specs;
}

/// One total run traces straight into FILE; sweeps and repeats each get
/// their own file so parallel runs never share a sink.
std::string trace_file_name(const Options& opt, const std::string& cca,
                            std::size_t run_index) {
  if (opt.ccas.size() == 1 && opt.repeats <= 1) return opt.trace_out;
  return opt.trace_out + "." + cca + "-r" + std::to_string(run_index);
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) return 2;
  const Options& opt = *parsed;

  if (opt.help) {
    print_usage();
    return 0;
  }
  if (opt.list_ccas) {
    std::printf("paper algorithms   :");
    for (const auto& name : cca::all_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\ndatacenter (ext.)  :");
    for (const auto& name : cca::datacenter_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }

  fault::FaultPlan fault_plan;
  try {
    if (opt.have_impair) {
      fault_plan.impair = fault::parse_impairments(opt.impair_spec);
      fault_plan.install = true;
    }
    if (!opt.fault_events_spec.empty()) {
      fault_plan.schedule = fault::parse_fault_events(opt.fault_events_spec);
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  stats::JsonWriter json;
  json.begin_object();
  json.key("runs").begin_array();

  stats::Table table({"cca", "energy[J]", "sd", "power[W]", "duration[s]",
                      "retx", "completed"});
  std::string counters_text;

  std::uint64_t cca_index = 0;
  for (const auto& cca_name : opt.ccas) {
    auto builder = [&](std::uint64_t seed) {
      app::ScenarioConfig config;
      config.tcp.mtu_bytes = opt.mtu;
      config.seed = seed;
      config.stress_cores = opt.load_pct * 32 / 100;
      config.faults = fault_plan;
      if (opt.audit) {
        config.audit_interval = sim::SimTime::milliseconds(10);
      }
      auto scenario = std::make_unique<app::Scenario>(config);
      for (const auto& spec : build_flows(opt, cca_name)) {
        scenario->add_flow(spec);
      }
      return scenario;
    };

    app::RepeatOptions repeat_options;
    repeat_options.repeats = opt.repeats;
    repeat_options.base_seed = opt.seed;
    repeat_options.cell_index = cca_index++;  // one cell per algorithm
    repeat_options.jobs = opt.jobs;
    repeat_options.progress = opt.progress;
    repeat_options.label = cca_name;
    if (!opt.trace_out.empty()) {
      repeat_options.trace_sink_factory =
          [&opt, cca_name](std::size_t run_index)
          -> std::unique_ptr<trace::TraceSink> {
        return std::make_unique<trace::JsonlTraceSink>(
            trace_file_name(opt, cca_name, run_index), opt.trace_mask);
      };
    }

    app::RepeatResult agg;
    try {
      agg = app::run_repeated(builder, repeat_options);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", cca_name.c_str(), e.what());
      return 1;
    }

    bool all_done = true;
    for (const auto& run : agg.runs) all_done &= run.all_completed;

    table.add_row({cca_name, stats::Table::num(agg.joules.mean(), 1),
                   stats::Table::num(agg.joules.stddev(), 2),
                   stats::Table::num(agg.watts.mean(), 2),
                   stats::Table::num(agg.duration_sec.mean(), 3),
                   stats::Table::num(agg.retransmissions.mean(), 0),
                   all_done ? "yes" : "NO"});

    json.begin_object();
    json.field("cca", cca_name);
    json.field("mtu", opt.mtu);
    json.field("schedule", opt.schedule);
    json.field("load_pct", opt.load_pct);
    json.field("repeats", opt.repeats);
    json.field("energy_joules_mean", agg.joules.mean());
    json.field("energy_joules_stddev", agg.joules.stddev());
    json.field("power_watts_mean", agg.watts.mean());
    json.field("duration_sec_mean", agg.duration_sec.mean());
    json.field("retransmissions_mean", agg.retransmissions.mean());
    json.field("all_completed", all_done);

    // Simulator execution profile, aggregated over the repeats: total work
    // and the worst event-queue high-water mark.
    double wall_total = 0.0;
    std::uint64_t events_total = 0;
    std::uint64_t peak_pending = 0;
    for (const auto& run : agg.runs) {
      wall_total += run.profile.wall_seconds;
      events_total += run.profile.events_executed;
      peak_pending = std::max(peak_pending, run.profile.peak_pending_events);
    }
    json.key("profile").begin_object();
    json.field("wall_seconds", wall_total);
    json.field("events_executed", events_total);
    json.field("peak_pending_events", peak_pending);
    json.field("events_per_sec",
               wall_total > 0 ? static_cast<double>(events_total) / wall_total
                              : 0.0);
    json.end_object();

    json.key("counters").begin_object();
    for (const auto& [name, v] : agg.runs.front().counters) {
      json.field(name, v);
    }
    json.end_object();

    json.key("flows").begin_array();
    for (const auto& flow : agg.runs.front().flows) {
      json.begin_object();
      json.field("cca", flow.cca);
      json.field("bytes", flow.bytes);
      json.field("fct_sec", flow.fct_sec);
      json.field("finished_at_sec", flow.finished_at_sec);
      json.field("avg_gbps", flow.avg_gbps);
      json.field("retransmissions", flow.retransmissions);
      json.key("counters").begin_object();
      for (const auto& [name, v] : flow.counters) {
        json.field(name, v);
      }
      json.end_object();
      json.end_object();
    }
    json.end_array();
    json.end_object();

    if (opt.counters) {
      counters_text += "\ncounters (" + cca_name + ", repeat 0):\n";
      for (const auto& [name, v] : agg.runs.front().counters) {
        counters_text += "  " + name + " = " + std::to_string(v) + "\n";
      }
    }
  }

  json.end_array();
  json.end_object();

  table.print(std::cout);
  if (!counters_text.empty()) std::fputs(counters_text.c_str(), stdout);

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    out << json.str() << "\n";
    std::printf("\nwrote %s\n", opt.json_path.c_str());
  }
  return 0;
}
