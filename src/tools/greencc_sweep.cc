// greencc_sweep — the scenario-pack driver: executes declarative TOML
// scenario files (src/scenario_dsl/) under the sweep supervisor.
//
//   greencc_sweep scenarios/cca_grid.toml
//   greencc_sweep --jobs 0 --csv grid.csv scenarios/cca_grid.toml
//   greencc_sweep --validate scenarios/
//   greencc_sweep --explain scenarios/ext_energy_under_loss.toml
//   greencc_sweep --set flow.0.bytes=60MB --repeats 2 scenarios/cca_grid.toml
//   greencc_sweep --journal sweep.jsonl --resume scenarios/cca_grid.toml
//   greencc_sweep --sample 12 --sample-seed 7 scenarios/pack/
//
// Positional arguments are scenario files or directories (scanned
// recursively for *.toml, sorted). Each scenario expands its [sweep] axes
// into a cell grid, runs every (cell, repeat) under robust::SweepSupervisor
// (watchdog, retries, crash-safe journal, --resume), and writes the CSV its
// [output] section declares. Results are bit-identical for any --jobs value
// and across kill/--resume cycles.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "robust/shutdown.h"
#include "scenario_dsl/doc.h"
#include "scenario_dsl/pack.h"
#include "scenario_dsl/runner.h"

using namespace greencc;

namespace {

struct Options {
  std::vector<std::string> inputs;  // files or directories
  bool validate = false;
  bool explain = false;
  dsl::RunOptions run;
  std::size_t sample = 0;  // 0 = run everything
  std::uint64_t sample_seed = 1;
  bool help = false;
};

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "greencc_sweep — run declarative scenario packs (TOML)\n\n"
               "usage: greencc_sweep [options] <scenario.toml | dir>...\n\n"
               "  --validate           parse, type-check and compile every "
               "scenario;\n"
               "                       run nothing (exit 0 clean, 1 invalid)\n"
               "  --explain            print the expanded sweep (cells, axes,\n"
               "                       config hash, CSV path); run nothing\n"
               "  --jobs N             worker threads (default 1; 0 = all "
               "cores);\n"
               "                       results identical for any N\n"
               "  --seed S             override the scenario's base seed\n"
               "  --repeats K          override the scenario's repeats\n"
               "  --csv FILE           override the output CSV path (single\n"
               "                       scenario only)\n"
               "  --set PATH=VALUE     override a scenario field before "
               "expansion\n"
               "                       (same paths as sweep axes; "
               "repeatable)\n"
               "  --audit              arm the invariant auditor (10 ms "
               "cadence)\n"
               "  --deadline SEC       wall-clock watchdog per run (0 = "
               "none)\n"
               "  --event-budget N     simulator event budget per run (0 = "
               "none)\n"
               "  --retries K          re-attempt a throwing run K times "
               "before\n"
               "                       quarantining it\n"
               "  --journal FILE       crash-safe journal of finished runs;\n"
               "                       with several scenarios each uses\n"
               "                       FILE.<scenario-name>\n"
               "  --resume             replay a matching journal, re-run "
               "only\n"
               "                       what is missing (bit-identical)\n"
               "  --sample N           run only a deterministic N-file "
               "sample\n"
               "                       of the inputs (CI subsetting)\n"
               "  --sample-seed S      seed of that sample (default 1)\n"
               "  --quiet              suppress per-run progress lines\n\n"
               "exit codes: 0 complete, 1 invalid scenario or I/O error,\n"
               "2 usage, 75 partial results\n");
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "greencc_sweep: missing value for %s\n\n",
                     arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else if (arg == "--validate") {
      opt.validate = true;
    } else if (arg == "--explain") {
      opt.explain = true;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.run.jobs = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.run.have_seed = true;
      opt.run.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--repeats") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.run.repeats = std::atoi(v);
    } else if (arg == "--csv") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.run.csv_path = v;
    } else if (arg == "--set") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (std::strchr(v, '=') == nullptr) {
        std::fprintf(stderr,
                     "greencc_sweep: --set expects PATH=VALUE, got '%s'\n\n",
                     v);
        return std::nullopt;
      }
      opt.run.overrides.push_back(v);
    } else if (arg == "--audit") {
      opt.run.audit = true;
    } else if (arg == "--deadline") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.run.cell_deadline_sec = std::atof(v);
    } else if (arg == "--event-budget") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.run.event_budget = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--retries") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.run.max_attempts = std::atoi(v) + 1;
    } else if (arg == "--journal") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.run.journal_path = v;
    } else if (arg == "--resume") {
      opt.run.resume = true;
    } else if (arg == "--sample") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.sample = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--sample-seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.sample_seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--quiet") {
      opt.run.progress = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "greencc_sweep: unknown flag: %s\n\n", arg.c_str());
      return std::nullopt;
    } else {
      opt.inputs.push_back(arg);
    }
  }
  if (!opt.help && opt.inputs.empty()) {
    std::fprintf(stderr, "greencc_sweep: no scenario files given\n\n");
    return std::nullopt;
  }
  if (opt.run.resume && opt.run.journal_path.empty()) {
    opt.run.journal_path = "greencc_sweep_journal.jsonl";
  }
  return opt;
}

/// Expand directories into their sorted *.toml contents; files pass
/// through. Returns nullopt (usage error) for an input that is neither.
std::optional<std::vector<std::string>> expand_inputs(
    const std::vector<std::string>& inputs) {
  std::vector<std::string> files;
  for (const std::string& input : inputs) {
    std::vector<std::string> scanned = dsl::list_scenarios(input);
    if (!scanned.empty()) {
      files.insert(files.end(), scanned.begin(), scanned.end());
      continue;
    }
    // Not a directory with scenarios — treat as a file path (existence is
    // checked when it is opened, yielding a proper error message).
    files.push_back(input);
  }
  return files;
}

int do_validate(const std::vector<std::string>& files) {
  const dsl::ValidationSummary summary = dsl::validate_pack(files);
  for (const dsl::ValidationIssue& issue : summary.issues) {
    std::fprintf(stderr, "%s\n", issue.error.c_str());
  }
  std::printf("validated %zu scenario file%s: %zu cells, %zu runs, %zu invalid\n",
              summary.files, summary.files == 1 ? "" : "s", summary.cells,
              summary.runs, summary.issues.size());
  return summary.issues.empty() ? 0 : 1;
}

int do_explain(const std::vector<std::string>& files, const Options& opt) {
  int bad = 0;
  for (const std::string& file : files) {
    try {
      const dsl::ScenarioDoc doc = dsl::load_scenario_file(file);
      const dsl::PackPlan plan = dsl::plan_sweep(doc, opt.run);
      std::printf("%s\n", file.c_str());
      std::printf("  name       %s\n", doc.name.c_str());
      if (!doc.description.empty()) {
        std::printf("  about      %s\n", doc.description.c_str());
      }
      std::printf("  cells      %zu", plan.cells);
      if (!plan.axes.empty()) {
        std::printf(" (");
        for (std::size_t a = 0; a < plan.axes.size(); ++a) {
          std::printf("%s%s=%zu", a ? " x " : "", plan.axes[a].first.c_str(),
                      plan.axes[a].second);
        }
        std::printf(")");
      }
      std::printf("\n");
      std::printf("  repeats    %zu\n", plan.repeats);
      std::printf("  runs       %zu\n", plan.runs);
      std::printf("  csv        %s\n", plan.csv_path.c_str());
      std::printf("  hash       %016" PRIx64 "\n", plan.config_hash);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      bad = 1;
    }
  }
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) {
    print_usage(stderr);
    return 2;
  }
  const Options& opt = *parsed;
  if (opt.help) {
    print_usage(stdout);
    return 0;
  }

  auto expanded = expand_inputs(opt.inputs);
  if (!expanded) return 2;
  std::vector<std::string> files = *expanded;
  if (opt.sample > 0) {
    files = dsl::sample_pack(files, opt.sample, opt.sample_seed);
  }

  if (opt.validate) return do_validate(files);
  if (opt.explain) return do_explain(files, opt);

  if (!opt.run.csv_path.empty() && files.size() > 1) {
    std::fprintf(stderr,
                 "greencc_sweep: --csv needs a single scenario, got %zu\n\n",
                 files.size());
    print_usage(stderr);
    return 2;
  }

  robust::install_shutdown_handler();

  bool partial = false;
  for (const std::string& file : files) {
    dsl::RunOptions run = opt.run;
    try {
      const dsl::ScenarioDoc doc = dsl::load_scenario_file(file);
      if (!run.journal_path.empty() && files.size() > 1) {
        run.journal_path = opt.run.journal_path + "." + doc.name;
      }
      const dsl::SweepOutcome outcome = dsl::run_sweep(doc, run);
      std::fprintf(stderr, "%s: %s\n", doc.name.c_str(),
                   outcome.report.summary().c_str());
      for (const auto* rec : outcome.report.quarantine()) {
        std::fprintf(stderr, "  %s: cell %zu rep %zu (seed=%" PRIu64 "): %s\n",
                     std::string(robust::outcome_name(rec->outcome)).c_str(),
                     rec->index / outcome.repeats,
                     rec->index % outcome.repeats, rec->seed,
                     rec->error.c_str());
      }
      std::printf("%s: %zu cells x %zu repeats -> %s\n", doc.name.c_str(),
                  outcome.cells, outcome.repeats, outcome.csv_path.c_str());
      partial = partial || !outcome.report.complete();
      if (outcome.report.interrupted) break;
    } catch (const dsl::DslError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "greencc_sweep: %s: %s\n", file.c_str(), e.what());
      return 1;
    }
  }
  return partial ? robust::kPartialResultsExit : 0;
}
