#include "trace/trace.h"

#include <array>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "stats/json.h"

namespace greencc::trace {

namespace {

constexpr std::size_t kNumClasses =
    static_cast<std::size_t>(EventClass::kNumClasses);

constexpr std::array<std::string_view, kNumClasses> kClassNames = {
    "enqueue",        "drop",          "ecn_mark", "retransmit",
    "rto",            "recovery_enter", "recovery_exit", "cwnd",
    "tlp",            "flow_start",    "flow_finish",   "ack_sent",
    "invariant",      "fault_loss",    "fault_corrupt", "fault_reorder",
    "fault_duplicate", "fault_link",   "supervisor_retry",
    "supervisor_timeout", "supervisor_quarantine",
};

}  // namespace

std::string_view class_name(EventClass c) {
  const auto i = static_cast<std::size_t>(c);
  return i < kNumClasses ? kClassNames[i] : "unknown";
}

ClassMask parse_class_list(const std::string& csv) {
  ClassMask mask = 0;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    bool found = false;
    for (std::size_t i = 0; i < kNumClasses; ++i) {
      if (item == kClassNames[i]) {
        mask |= class_bit(static_cast<EventClass>(i));
        found = true;
        break;
      }
    }
    if (!found) {
      std::string valid;
      for (const auto& name : kClassNames) {
        if (!valid.empty()) valid += ", ";
        valid += name;
      }
      throw std::invalid_argument("unknown trace class '" + item +
                                  "' (valid: " + valid + ")");
    }
  }
  return mask;
}

JsonlTraceSink::JsonlTraceSink(const std::string& path, ClassMask mask)
    : TraceSink(mask),
      owned_(std::make_unique<std::ofstream>(path)),
      out_(owned_.get()) {
  if (!owned_->is_open()) {
    throw std::runtime_error("JsonlTraceSink: cannot open " + path);
  }
}

JsonlTraceSink::JsonlTraceSink(std::ostream& out, ClassMask mask)
    : TraceSink(mask), out_(&out) {}

JsonlTraceSink::~JsonlTraceSink() = default;

void JsonlTraceSink::record(const Event& e) {
  // Hand-formatted for the per-packet hot path; strings still go through
  // the shared JSON escaping so component names can never corrupt a line.
  char buf[160];
  int n = std::snprintf(buf, sizeof(buf), "{\"t\":%.9f,\"ev\":\"", e.t.sec());
  out_->write(buf, n);
  const auto ev = class_name(e.cls);
  out_->write(ev.data(), static_cast<std::streamsize>(ev.size()));
  *out_ << "\",\"src\":\"" << stats::JsonWriter::escape(std::string(e.src))
        << "\",\"flow\":" << e.flow;
  if (e.seq >= 0) {
    n = std::snprintf(buf, sizeof(buf), ",\"seq\":%lld",
                      static_cast<long long>(e.seq));
    out_->write(buf, n);
  }
  n = std::snprintf(buf, sizeof(buf), ",\"value\":%.10g", e.value);
  out_->write(buf, n);
  // lint-allow: float-eq (0.0 is the exact "field unset" sentinel)
  if (e.aux != 0.0) {
    n = std::snprintf(buf, sizeof(buf), ",\"aux\":%.10g", e.aux);
    out_->write(buf, n);
  }
  if (!e.detail.empty()) {
    *out_ << ",\"detail\":\""
          << stats::JsonWriter::escape(std::string(e.detail)) << "\"";
  }
  out_->write("}\n", 2);
}

std::uint64_t VectorTraceSink::count(EventClass c) const {
  std::uint64_t n = 0;
  for (const auto& e : events_) {
    if (e.cls == c) ++n;
  }
  return n;
}

}  // namespace greencc::trace
