#include "trace/counters.h"

#include <algorithm>
#include <stdexcept>

namespace greencc::trace {

void CounterRegistry::add(std::string name, Reader reader) {
  for (const auto& [existing, unused] : entries_) {
    if (existing == name) {
      throw std::logic_error("CounterRegistry: duplicate counter '" + name +
                             "'");
    }
  }
  entries_.emplace_back(std::move(name), std::move(reader));
}

void CounterRegistry::add(std::string name, const std::uint64_t* value) {
  add(std::move(name), [value] { return *value; });
}

void CounterRegistry::add(std::string name, const std::int64_t* value) {
  add(std::move(name), [value] {
    return *value > 0 ? static_cast<std::uint64_t>(*value) : 0;
  });
}

void CounterRegistry::add(std::string name, const units::Bytes* value) {
  add(std::move(name), [value] {
    const std::int64_t count = value->count();
    return count > 0 ? static_cast<std::uint64_t>(count) : 0;
  });
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(entries_.size());
  for (const auto& [name, reader] : entries_) {
    out.emplace_back(name, reader());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace greencc::trace
