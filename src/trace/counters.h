#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "units/units.h"

namespace greencc::trace {

/// Registry of named monotonic counters, pull-model (Prometheus-collector
/// style): components *register* a reader over counters they already
/// maintain, and `snapshot()` materializes (name, value) pairs on demand.
///
/// The pull model keeps every component hot path untouched — registration
/// happens once (typically at end of run, before the snapshot) and costs
/// nothing while the simulation executes. Names are hierarchical by
/// convention: "<component>.<counter>", e.g. "switch:egress0.dropped" or
/// "sender.retransmissions".
class CounterRegistry {
 public:
  using Reader = std::function<std::uint64_t()>;

  /// Register a counter. Throws std::logic_error on a duplicate name —
  /// a duplicate always indicates a wiring bug (two components claiming
  /// the same identity).
  void add(std::string name, Reader reader);

  /// Convenience: read a live unsigned counter by address. The pointee
  /// must outlive the registry's last snapshot.
  void add(std::string name, const std::uint64_t* value);

  /// Convenience for signed counters (TcpStats et al.); negative values
  /// clamp to zero rather than wrapping.
  void add(std::string name, const std::int64_t* value);

  /// Convenience for strongly-typed byte counters (reported as a raw byte
  /// count, same clamping as the signed overload).
  void add(std::string name, const units::Bytes* value);

  std::size_t size() const { return entries_.size(); }

  /// Current value of every counter, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

 private:
  std::vector<std::pair<std::string, Reader>> entries_;
};

}  // namespace greencc::trace
