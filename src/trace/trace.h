#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace greencc::trace {

/// Classes of traced events. Each maps 1:1 to a stable wire name (see
/// `class_name`) used in the JSONL output and in `--trace-filter` lists.
enum class EventClass : std::uint32_t {
  kEnqueue = 0,    ///< packet admitted to a queue (value = queue bytes after)
  kDrop,           ///< packet dropped (tail drop or AQM; value = queue bytes)
  kEcnMark,        ///< CE mark applied by a queue (value = queue bytes)
  kRetransmit,     ///< sender retransmitted a segment (value = cwnd)
  kRto,            ///< retransmission timeout fired (value = backoff level)
  kRecoveryEnter,  ///< fast recovery entered (seq = recovery point)
  kRecoveryExit,   ///< fast recovery left (value = cwnd)
  kCwnd,           ///< CCA changed its window (value = cwnd, aux = srtt us)
  kTlp,            ///< tail-loss probe sent (seq = probed segment)
  kFlowStart,      ///< flow began transmitting (value = bytes to send)
  kFlowFinish,     ///< flow fully acknowledged (value = FCT seconds)
  kAckSent,        ///< receiver emitted an ACK (seq = rcv_nxt, value = ECE)
  kInvariant,      ///< invariant violation (src = component, detail = why)
  kFaultLoss,      ///< injected non-congestive loss (detail = iid/burst/down)
  kFaultCorrupt,   ///< packet corrupted in flight (receiver checksum-drops it)
  kFaultReorder,   ///< packet held for delayed re-injection (value = delay us)
  kFaultDuplicate, ///< duplicate copy injected (value = extra copies)
  kFaultLink,      ///< scheduled link event (value = 1 down / 0 up,
                   ///< detail = down/up/rate/delay; aux = new rate or us)
  kSupervisorRetry,      ///< sweep cell attempt failed, retrying (seq =
                         ///< cell index, value = attempt, detail = error)
  kSupervisorTimeout,    ///< cell cut by watchdog deadline / event budget
  kSupervisorQuarantine, ///< cell quarantined after max attempts
  kNumClasses,     // sentinel, keep last
};

/// Bitmask over event classes, for sink-side filtering.
using ClassMask = std::uint32_t;

constexpr ClassMask class_bit(EventClass c) {
  return ClassMask{1} << static_cast<std::uint32_t>(c);
}

constexpr ClassMask kAllClasses =
    (ClassMask{1} << static_cast<std::uint32_t>(EventClass::kNumClasses)) - 1;

/// Stable wire name of a class ("drop", "ecn_mark", ...).
std::string_view class_name(EventClass c);

/// Parse a comma-separated list of class names into a mask. Throws
/// std::invalid_argument on an unknown name (listing the valid ones).
ClassMask parse_class_list(const std::string& csv);

/// One typed, timestamped event. Events are tiny value types; producers
/// build them on the stack only when a sink is attached, so a traced-off
/// run pays a single branch-on-nullptr per potential event site.
///
/// `src` identifies the emitting component (a queue/port name such as
/// "switch:egress0", or "tcp:sender" / "tcp:receiver"); it must point at
/// storage that outlives the emit call — sinks serialize immediately.
struct Event {
  sim::SimTime t;
  EventClass cls = EventClass::kEnqueue;
  std::uint64_t flow = 0;   ///< 0 when the event is not flow-specific
  std::string_view src{};   ///< emitting component
  std::int64_t seq = -1;    ///< segment index where applicable, else -1
  double value = 0.0;       ///< class-specific primary value (see EventClass)
  double aux = 0.0;         ///< class-specific secondary value
  std::string_view detail{};  ///< free-form context (invariant messages);
                              ///< same lifetime contract as `src`
};

/// Destination of a run's event stream.
///
/// Ownership and threading: one sink belongs to exactly one scenario run.
/// The simulator is single-threaded, so events arrive in non-decreasing
/// simulated-time order and no locking is needed; parallel repeats
/// (`--jobs N`) are race-free because every run owns a distinct sink.
class TraceSink {
 public:
  explicit TraceSink(ClassMask mask = kAllClasses) : mask_(mask) {}
  virtual ~TraceSink() = default;

  bool wants(EventClass c) const { return (mask_ & class_bit(c)) != 0; }
  ClassMask mask() const { return mask_; }

  /// Filtered entry point used by producers.
  void emit(const Event& e) {
    if (!wants(e.cls)) return;
    ++events_emitted_;
    record(e);
  }

  std::uint64_t events_emitted() const { return events_emitted_; }

 protected:
  virtual void record(const Event& e) = 0;

 private:
  ClassMask mask_;
  std::uint64_t events_emitted_ = 0;
};

/// Sink writing one JSON object per line (JSONL), the format every trace
/// consumer (jq, pandas.read_json(lines=True)) ingests directly:
///
///   {"t":0.001234,"ev":"drop","src":"switch:egress0","flow":1,
///    "seq":4242,"value":1048576}
///
/// `seq` is omitted when negative and `aux` when zero; all other fields are
/// always present. String escaping reuses stats::JsonWriter::escape.
class JsonlTraceSink : public TraceSink {
 public:
  /// Write to an owned file (truncates). Throws std::runtime_error if the
  /// file cannot be opened.
  explicit JsonlTraceSink(const std::string& path,
                          ClassMask mask = kAllClasses);

  /// Write to a caller-owned stream (must outlive the sink).
  explicit JsonlTraceSink(std::ostream& out, ClassMask mask = kAllClasses);

  ~JsonlTraceSink() override;

 protected:
  void record(const Event& e) override;

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
};

/// Sink collecting events in memory — the assertion surface for tests.
class VectorTraceSink : public TraceSink {
 public:
  explicit VectorTraceSink(ClassMask mask = kAllClasses) : TraceSink(mask) {}

  const std::vector<Event>& events() const { return events_; }
  std::uint64_t count(EventClass c) const;

 protected:
  void record(const Event& e) override { events_.push_back(e); }

 private:
  std::vector<Event> events_;
};

}  // namespace greencc::trace
