#include "fault/impairment.h"

#include <utility>

namespace greencc::fault {

namespace {
constexpr std::string_view kIid = "iid";
constexpr std::string_view kBurst = "burst";
constexpr std::string_view kDown = "link-down";
}  // namespace

void ImpairedLink::handle(net::Packet pkt) {
  ++stats_.arrived;

  if (down_) {
    ++stats_.down_drops;
    drop(pkt, trace::EventClass::kFaultLoss, kDown);
    return;
  }

  // Stage order is part of the determinism contract: loss, burst, corrupt,
  // duplicate, reorder, jitter. Each stage consults only its own RNG stream,
  // and only when enabled, so a disabled stage leaves every other stream's
  // draw sequence untouched.
  if (config_.loss_rate > 0.0 && loss_rng_.bernoulli(config_.loss_rate)) {
    ++stats_.loss_drops;
    drop(pkt, trace::EventClass::kFaultLoss, kIid);
    return;
  }

  if (config_.ge_p_bad > 0.0) {
    // Advance the Gilbert–Elliott chain once per packet, then apply the
    // state's loss probability. Two draws per packet (transition + loss)
    // keeps the draw count state-independent, so the stream stays aligned
    // regardless of the path taken.
    const double transition = ge_rng_.next_double();
    const double loss = ge_rng_.next_double();
    if (ge_bad_) {
      if (transition < config_.ge_p_good) ge_bad_ = false;
    } else {
      if (transition < config_.ge_p_bad) ge_bad_ = true;
    }
    if (ge_bad_ && loss < config_.ge_loss_bad) {
      ++stats_.burst_drops;
      drop(pkt, trace::EventClass::kFaultLoss, kBurst);
      return;
    }
  }

  if (config_.corrupt_rate > 0.0 && !pkt.corrupted &&
      corrupt_rng_.bernoulli(config_.corrupt_rate)) {
    // The packet keeps moving — it costs wire bandwidth and receiver
    // processing — but the endpoint checksum will reject it, so account the
    // loss now, where the flow is known and the decision is made. The
    // endpoint discard itself is deterministic.
    pkt.corrupted = true;
    ++stats_.corrupted;
    if (ledger_ != nullptr) ledger_->on_fault_drop(pkt);
    if (trace_ != nullptr) {
      trace_->emit({sim_.now(), trace::EventClass::kFaultCorrupt, pkt.flow,
                    name_, pkt.seq});
    }
  }

  if (config_.duplicate_rate > 0.0 &&
      duplicate_rng_.bernoulli(config_.duplicate_rate)) {
    // The copy is fabricated: credit it to the ledger's injected column so
    // receiver arrivals stay balanced against sender transmissions.
    ++stats_.duplicated;
    if (ledger_ != nullptr) {
      ledger_->on_fault_inject(pkt);
      // A copy of an already-corrupted packet dies at the receiver checksum
      // like the original; book its loss now (same rule as the corrupt
      // stage: account at decision time, the discard is deterministic).
      if (pkt.corrupted) ledger_->on_fault_drop(pkt);
    }
    if (trace_ != nullptr) {
      trace_->emit({sim_.now(), trace::EventClass::kFaultDuplicate, pkt.flow,
                    name_, pkt.seq, 1.0});
    }
    forward(pkt, sim::SimTime::zero());
  }

  if (config_.reorder_rate > 0.0 &&
      reorder_rng_.bernoulli(config_.reorder_rate)) {
    ++stats_.reordered;
    if (trace_ != nullptr) {
      trace_->emit({sim_.now(), trace::EventClass::kFaultReorder, pkt.flow,
                    name_, pkt.seq, config_.reorder_delay.us()});
    }
    forward(std::move(pkt), config_.reorder_delay);
    return;
  }

  if (config_.jitter_max > sim::SimTime::zero()) {
    ++stats_.jittered;
    const auto jitter = sim::SimTime::nanoseconds(
        static_cast<std::int64_t>(jitter_rng_.next_below(
            static_cast<std::uint64_t>(config_.jitter_max.ns()))));
    forward(std::move(pkt), jitter);
    return;
  }

  forward(std::move(pkt), sim::SimTime::zero());
}

void ImpairedLink::forward(net::Packet pkt, sim::SimTime extra_delay) {
  if (extra_delay == sim::SimTime::zero()) {
    // Synchronous pass-through: no event is scheduled, so an all-zero
    // impairment stage preserves the unimpaired event ordering exactly.
    ++stats_.forwarded;
    next_->handle(pkt);
    return;
  }
  ++held_;
  sim_.schedule(extra_delay, [this, pkt]() {
    --held_;
    ++stats_.forwarded;
    next_->handle(pkt);
  });
}

void ImpairedLink::drop(const net::Packet& pkt, trace::EventClass cls,
                        std::string_view why) {
  if (ledger_ != nullptr) ledger_->on_fault_drop(pkt);
  if (trace_ != nullptr) {
    trace_->emit({sim_.now(), cls, pkt.flow, name_, pkt.seq, 0.0, 0.0, why});
  }
}

void ImpairedLink::set_link_down(bool down) {
  if (down_ == down) return;
  down_ = down;
  if (trace_ != nullptr) {
    trace_->emit({sim_.now(), trace::EventClass::kFaultLink, 0, name_, -1,
                  down ? 1.0 : 0.0, 0.0, down ? "down" : "up"});
  }
}

void ImpairedLink::register_counters(trace::CounterRegistry& reg) const {
  reg.add(name_ + ".arrived", &stats_.arrived);
  reg.add(name_ + ".forwarded", &stats_.forwarded);
  reg.add(name_ + ".loss_drops", &stats_.loss_drops);
  reg.add(name_ + ".burst_drops", &stats_.burst_drops);
  reg.add(name_ + ".down_drops", &stats_.down_drops);
  reg.add(name_ + ".corrupted", &stats_.corrupted);
  reg.add(name_ + ".reordered", &stats_.reordered);
  reg.add(name_ + ".duplicated", &stats_.duplicated);
}

void ImpairedLink::audit(std::vector<std::string>& problems) const {
  // Conservation at the link: every arrival and fabricated duplicate either
  // went downstream, was dropped, or is still held for re-injection.
  const std::uint64_t in = stats_.arrived + stats_.duplicated;
  const std::uint64_t out =
      stats_.forwarded + total_drops() + static_cast<std::uint64_t>(held_);
  if (held_ < 0) {
    problems.push_back(name_ + ": held packet count is negative (" +
                       std::to_string(held_) + ")");
  } else if (in != out) {
    problems.push_back(name_ + ": packet books do not balance: arrived " +
                       std::to_string(stats_.arrived) + " + duplicated " +
                       std::to_string(stats_.duplicated) + " != forwarded " +
                       std::to_string(stats_.forwarded) + " + dropped " +
                       std::to_string(total_drops()) + " + held " +
                       std::to_string(held_));
  }
}

}  // namespace greencc::fault
