#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/ledger.h"
#include "net/packet.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "trace/counters.h"
#include "trace/trace.h"

namespace greencc::fault {

/// What an ImpairedLink does to traversing packets. All rates are per
/// packet; a rate of zero disables that stage entirely (it draws no random
/// numbers, so a present-but-disabled stage is bit-identical to no stage).
struct ImpairmentConfig {
  /// Independent (i.i.d.) non-congestive loss probability per packet.
  double loss_rate = 0.0;

  /// Gilbert–Elliott burst loss: a two-state Markov chain advanced once per
  /// packet. In the good state packets pass (subject to the i.i.d. rate
  /// above); in the bad state each packet is dropped with `ge_loss_bad`.
  /// Enabled when `ge_p_bad > 0`. Mean burst length is 1/ge_p_good packets,
  /// mean gap 1/ge_p_bad.
  double ge_p_bad = 0.0;    ///< P(good -> bad) per packet
  double ge_p_good = 0.0;   ///< P(bad -> good) per packet
  double ge_loss_bad = 1.0; ///< drop probability while in the bad state

  /// Probability a packet's payload is damaged in flight. The packet is
  /// forwarded (it costs wire bandwidth and downstream processing) with
  /// `Packet::corrupted` set; the receiving endpoint checksum-drops it.
  double corrupt_rate = 0.0;

  /// Probability a packet is held back and re-injected `reorder_delay`
  /// later, overtaken by whatever passes through in between. Bounded: a
  /// held packet is always delivered, exactly once, after the fixed delay.
  double reorder_rate = 0.0;
  sim::SimTime reorder_delay = sim::SimTime::microseconds(100);

  /// Probability a packet is delivered twice (the duplicate is injected
  /// immediately after the original).
  double duplicate_rate = 0.0;

  /// Per-packet delay jitter, uniform in [0, jitter_max). Zero disables.
  sim::SimTime jitter_max = sim::SimTime::zero();

  /// Base seed for the link's per-stage RNG streams; combine with the run
  /// seed before handing the config to an ImpairedLink so repeats stay
  /// statistically independent.
  std::uint64_t seed = 1;

  /// True when any stage can fire. A config that returns false behaves as a
  /// plain pass-through wire.
  bool any_random() const {
    return loss_rate > 0.0 || ge_p_bad > 0.0 || corrupt_rate > 0.0 ||
           reorder_rate > 0.0 || duplicate_rate > 0.0 ||
           jitter_max > sim::SimTime::zero();
  }
};

/// Counters kept by an ImpairedLink; benches and tests read these, and the
/// audit layer re-derives the conservation equation from them.
struct ImpairmentStats {
  std::uint64_t arrived = 0;      ///< packets offered to the link
  std::uint64_t forwarded = 0;    ///< delivered downstream (incl. corrupted
                                  ///< and duplicate copies)
  std::uint64_t loss_drops = 0;   ///< i.i.d. loss
  std::uint64_t burst_drops = 0;  ///< Gilbert–Elliott bad-state loss
  std::uint64_t down_drops = 0;   ///< discarded while the link was down
  std::uint64_t corrupted = 0;    ///< forwarded with the corrupted flag
  std::uint64_t reordered = 0;    ///< held for delayed re-injection
  std::uint64_t duplicated = 0;   ///< extra copies injected
  std::uint64_t jittered = 0;     ///< forwarded through a jitter delay
};

/// A deterministic link-impairment stage: a net::PacketHandler wrapper
/// insertable in front of any handler (typically between a QueuedPort and
/// its downstream hop), implementing non-congestive loss (i.i.d. and
/// Gilbert–Elliott burst), corruption, bounded reordering, duplication,
/// jitter, and link down/up flaps.
///
/// Determinism contract: every stage draws from its own RNG stream, derived
/// via sim::mix_seed from (config.seed, site-name hash, stage index). A
/// stage whose rate is zero draws nothing, so adding a disabled stage — or
/// the whole link, with an all-zero config — leaves the simulation
/// bit-identical; and because the streams are private to the link, enabling
/// impairment never perturbs any other component's randomness (scenario
/// jitter, AQM, workload arrivals). Runs are therefore reproducible across
/// `--jobs` values exactly like unimpaired ones.
///
/// Accounting contract: every removed packet is reported to the run's
/// PacketLedger as a fault drop and every fabricated duplicate as an
/// injection, so the auditor's per-flow conservation equation
/// (sent + injected == delivered + dropped + fault_dropped + in_flight)
/// balances under injection. Each fault also emits a typed trace event
/// (fault_loss / fault_corrupt / fault_reorder / fault_duplicate).
class ImpairedLink : public net::PacketHandler {
 public:
  ImpairedLink(sim::Simulator& sim, std::string name,
               const ImpairmentConfig& config, net::PacketHandler* next)
      : sim_(sim),
        name_(std::move(name)),
        config_(config),
        site_(sim::site_hash(name_)),
        loss_rng_(sim::mix_seed(config.seed, site_, 0)),
        ge_rng_(sim::mix_seed(config.seed, site_, 1)),
        corrupt_rng_(sim::mix_seed(config.seed, site_, 2)),
        reorder_rng_(sim::mix_seed(config.seed, site_, 3)),
        duplicate_rng_(sim::mix_seed(config.seed, site_, 4)),
        jitter_rng_(sim::mix_seed(config.seed, site_, 5)),
        next_(next) {}

  void handle(net::Packet pkt) override;

  /// Downstream handler can be swapped after construction (wiring cycles).
  void set_next(net::PacketHandler* next) { next_ = next; }

  /// Take the link down (every arriving packet is discarded and accounted
  /// as a fault drop) or bring it back up. Driven by FaultSchedule.
  void set_link_down(bool down);
  bool link_down() const { return down_; }

  /// Attach this run's event sink (nullptr = off; one untaken branch per
  /// packet when off).
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }

  /// Attach the run's drop ledger so injected faults stay balanced in the
  /// auditor's conservation equation.
  void set_ledger(check::PacketLedger* ledger) { ledger_ = ledger; }

  /// Register "<name>.loss_drops", "<name>.duplicated", ... counters.
  void register_counters(trace::CounterRegistry& reg) const;

  /// Re-derive the link's books: arrivals plus fabricated duplicates must
  /// equal forwards plus drops plus packets still held for re-injection,
  /// and the held count must be non-negative and bounded by arrivals.
  /// Appends one line per discrepancy to `problems`.
  void audit(std::vector<std::string>& problems) const;

  const ImpairmentStats& stats() const { return stats_; }
  std::uint64_t total_drops() const {
    return stats_.loss_drops + stats_.burst_drops + stats_.down_drops;
  }
  /// Packets currently held for delayed (reorder/jitter) re-injection.
  std::int64_t held_packets() const { return held_; }
  const std::string& name() const { return name_; }
  const ImpairmentConfig& config() const { return config_; }

 private:
  void drop(const net::Packet& pkt, trace::EventClass cls,
            std::string_view why);
  void forward(net::Packet pkt, sim::SimTime extra_delay);

  sim::Simulator& sim_;
  std::string name_;
  ImpairmentConfig config_;
  std::uint64_t site_;
  sim::Rng loss_rng_;
  sim::Rng ge_rng_;
  sim::Rng corrupt_rng_;
  sim::Rng reorder_rng_;
  sim::Rng duplicate_rng_;
  sim::Rng jitter_rng_;
  net::PacketHandler* next_;
  trace::TraceSink* trace_ = nullptr;
  check::PacketLedger* ledger_ = nullptr;
  bool down_ = false;
  bool ge_bad_ = false;  ///< Gilbert–Elliott chain state
  std::int64_t held_ = 0;
  ImpairmentStats stats_;
};

}  // namespace greencc::fault
