#include "fault/plan.h"

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace greencc::fault {

namespace {

double parse_number(const std::string& key, const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault spec: bad number '" + text +
                                "' for key '" + key + "'");
  }
}

double parse_probability(const std::string& key, const std::string& text) {
  const double v = parse_number(key, text);
  if (v < 0.0 || v > 1.0) {
    throw std::invalid_argument("fault spec: '" + key + "=" + text +
                                "' must lie in [0, 1]");
  }
  return v;
}

}  // namespace

ImpairmentConfig parse_impairments(const std::string& spec) {
  ImpairmentConfig config;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault spec: expected key=value, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "loss") {
      config.loss_rate = parse_probability(key, value);
    } else if (key == "corrupt") {
      config.corrupt_rate = parse_probability(key, value);
    } else if (key == "reorder") {
      config.reorder_rate = parse_probability(key, value);
    } else if (key == "reorder_delay_us") {
      config.reorder_delay = sim::SimTime::nanoseconds(
          static_cast<std::int64_t>(parse_number(key, value) * 1e3));
    } else if (key == "dup") {
      config.duplicate_rate = parse_probability(key, value);
    } else if (key == "jitter_us") {
      config.jitter_max = sim::SimTime::nanoseconds(
          static_cast<std::int64_t>(parse_number(key, value) * 1e3));
    } else if (key == "ge_p") {
      config.ge_p_bad = parse_probability(key, value);
    } else if (key == "ge_r") {
      config.ge_p_good = parse_probability(key, value);
    } else if (key == "ge_loss") {
      config.ge_loss_bad = parse_probability(key, value);
    } else if (key == "seed") {
      config.seed = static_cast<std::uint64_t>(parse_number(key, value));
    } else {
      throw std::invalid_argument(
          "fault spec: unknown key '" + key +
          "' (valid: loss, corrupt, reorder, reorder_delay_us, dup, "
          "jitter_us, ge_p, ge_r, ge_loss, seed)");
    }
  }
  if (config.ge_p_bad > 0.0 && config.ge_p_good <= 0.0) {
    throw std::invalid_argument(
        "fault spec: ge_p needs ge_r > 0 (or bursts never end)");
  }
  return config;
}

FaultSchedule parse_fault_events(const std::string& spec) {
  FaultSchedule schedule;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    const auto at_pos = item.rfind('@');
    if (at_pos == std::string::npos) {
      throw std::invalid_argument(
          "fault events: expected '<event>@<seconds>', got '" + item + "'");
    }
    FaultEvent event;
    const std::string when = item.substr(at_pos + 1);
    const double sec = parse_number("@", when);
    if (sec < 0.0) {
      throw std::invalid_argument("fault events: time must be >= 0 in '" +
                                  item + "'");
    }
    event.at = sim::SimTime::seconds(sec);
    const std::string what = item.substr(0, at_pos);
    if (what == "down") {
      event.kind = FaultEvent::Kind::kLinkDown;
    } else if (what == "up") {
      event.kind = FaultEvent::Kind::kLinkUp;
    } else if (what.rfind("rate=", 0) == 0) {
      event.kind = FaultEvent::Kind::kRate;
      event.rate = units::BitRate::bps(parse_number("rate", what.substr(5)));
      if (event.rate.bps() <= 0.0) {
        throw std::invalid_argument("fault events: rate must be > 0 in '" +
                                    item + "'");
      }
    } else if (what.rfind("delay_us=", 0) == 0) {
      event.kind = FaultEvent::Kind::kDelay;
      const double us = parse_number("delay_us", what.substr(9));
      if (us < 0.0) {
        throw std::invalid_argument(
            "fault events: delay must be >= 0 in '" + item + "'");
      }
      event.delay =
          sim::SimTime::nanoseconds(static_cast<std::int64_t>(us * 1e3));
    } else {
      throw std::invalid_argument(
          "fault events: unknown event '" + what +
          "' (valid: down, up, rate=<bps>, delay_us=<us>)");
    }
    schedule.add(event);
  }
  return schedule;
}

}  // namespace greencc::fault
