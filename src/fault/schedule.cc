#include "fault/schedule.h"

#include <stdexcept>

namespace greencc::fault {

void FaultSchedule::arm(sim::Simulator& sim, net::QueuedPort* port,
                        ImpairedLink* link, trace::TraceSink* sink) const {
  for (const auto& event : events_) {
    switch (event.kind) {
      case FaultEvent::Kind::kLinkDown:
      case FaultEvent::Kind::kLinkUp:
        if (link == nullptr) {
          throw std::logic_error(
              "FaultSchedule: link down/up event without an impairment "
              "stage to apply it to");
        }
        break;
      case FaultEvent::Kind::kRate:
        if (port == nullptr || event.rate.bps() <= 0.0) {
          throw std::logic_error(
              "FaultSchedule: rate event needs a port and a positive rate");
        }
        break;
      case FaultEvent::Kind::kDelay:
        if (port == nullptr || event.delay < sim::SimTime::zero()) {
          throw std::logic_error(
              "FaultSchedule: delay event needs a port and a non-negative "
              "delay");
        }
        break;
    }
    sim.schedule_at(event.at, [this, event, port, link, sink, &sim]() {
      ++fired_;
      switch (event.kind) {
        case FaultEvent::Kind::kLinkDown:
          link->set_link_down(true);  // emits its own fault_link event
          break;
        case FaultEvent::Kind::kLinkUp:
          link->set_link_down(false);
          break;
        case FaultEvent::Kind::kRate:
          port->set_rate(event.rate);
          if (sink != nullptr) {
            sink->emit({sim.now(), trace::EventClass::kFaultLink, 0,
                        port->name(), -1, 0.0, event.rate.bps(), "rate"});
          }
          break;
        case FaultEvent::Kind::kDelay:
          port->set_propagation(event.delay);
          if (sink != nullptr) {
            sink->emit({sim.now(), trace::EventClass::kFaultLink, 0,
                        port->name(), -1, 0.0, event.delay.us(), "delay"});
          }
          break;
      }
    });
  }
}

}  // namespace greencc::fault
