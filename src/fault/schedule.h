#pragma once

#include <vector>

#include "net/port.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "trace/trace.h"
#include "units/units.h"

#include "fault/impairment.h"

namespace greencc::fault {

/// One timed fault event applied to the bottleneck link.
struct FaultEvent {
  enum class Kind {
    kLinkDown,  ///< discard everything arriving at the impairment stage
    kLinkUp,    ///< restore forwarding
    kRate,      ///< re-rate the bottleneck port to `rate`
    kDelay,     ///< change the bottleneck propagation delay to `delay`
  };

  sim::SimTime at;            ///< absolute simulated time
  Kind kind = Kind::kLinkDown;
  units::BitRate rate;        ///< kRate only
  sim::SimTime delay;         ///< kDelay only
};

/// A deterministic timetable of link events (down/up flaps, bandwidth and
/// delay changes). Events are plain simulator callbacks scheduled up front
/// by `arm()`, so they interleave with packet events under the simulator's
/// usual same-time FIFO rule — no polling, no wall clock.
class FaultSchedule {
 public:
  void add(FaultEvent event) { events_.push_back(event); }
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Schedule every event against its targets. `link` receives down/up
  /// flaps (may be null if none are scheduled); `port` receives rate and
  /// delay changes (may be null likewise). Each fired event also emits a
  /// fault_link trace event on `sink` when attached.
  ///
  /// Call once per run, before sim.run(); the schedule must outlive it.
  void arm(sim::Simulator& sim, net::QueuedPort* port, ImpairedLink* link,
           trace::TraceSink* sink) const;

  /// Number of events that have fired so far (test/bench surface).
  std::uint64_t fired() const { return fired_; }

 private:
  std::vector<FaultEvent> events_;
  mutable std::uint64_t fired_ = 0;
};

}  // namespace greencc::fault
