#pragma once

#include <string>

#include "fault/impairment.h"
#include "fault/schedule.h"

namespace greencc::fault {

/// Everything a scenario needs to know about fault injection: an
/// impairment-stage config plus a timetable of link events. Defaults to
/// fully inert — a default-constructed plan changes nothing about a run.
struct FaultPlan {
  ImpairmentConfig impair;
  FaultSchedule schedule;

  /// Install the impairment stage even if every rate is zero. Set by the
  /// `--impair` parser so that "present but disabled" is expressible — the
  /// determinism suite asserts that such a stage leaves a run
  /// byte-identical to one with no stage at all.
  bool install = false;

  /// True when the scenario must build fault machinery at all.
  bool active() const { return install || !schedule.empty(); }
};

/// Parse a `--impair` spec: comma-separated key=value pairs.
///
///   loss=1e-3            i.i.d. loss probability
///   corrupt=1e-4         corruption probability
///   reorder=0.01         reorder probability
///   reorder_delay_us=200 re-injection delay (default 100)
///   dup=1e-3             duplication probability
///   jitter_us=50         max uniform jitter
///   ge_p=0.001           Gilbert–Elliott P(good->bad)
///   ge_r=0.1             Gilbert–Elliott P(bad->good)
///   ge_loss=1.0          drop probability in the bad state (default 1)
///   seed=7               impairment RNG seed (mixed with the run seed)
///
/// An empty spec ("") is valid and yields an all-zero config with
/// `install` semantics (the caller sets FaultPlan::install). Throws
/// std::invalid_argument on unknown keys, malformed pairs or out-of-range
/// values (probabilities must lie in [0, 1]).
ImpairmentConfig parse_impairments(const std::string& spec);

/// Parse a `--fault-events` spec: comma-separated timed events, each
/// suffixed `@<seconds>`:
///
///   down@0.5        link goes down at t=0.5s
///   up@0.6          link comes back at t=0.6s
///   rate=5e9@1.0    bottleneck re-rated to 5 Gb/s at t=1.0s
///   delay_us=50@2.0 propagation set to 50us at t=2.0s
///
/// Throws std::invalid_argument on malformed specs.
FaultSchedule parse_fault_events(const std::string& spec);

}  // namespace greencc::fault
