#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace greencc::check {
struct AuditCorruptor;
}  // namespace greencc::check

namespace greencc::tcp {

/// An ordered set of disjoint half-open segment ranges [start, end).
///
/// Used by the receiver to track out-of-order data (the reassembly queue)
/// and to generate SACK blocks. Ranges merge on insert, so memory is bounded
/// by the number of holes, not the number of segments.
class SeqRangeSet {
 public:
  /// Insert [start, end), merging with any adjacent/overlapping ranges.
  void insert(std::int64_t start, std::int64_t end);

  /// True if `seq` is contained in some range.
  bool contains(std::int64_t seq) const;

  /// Remove everything below `seq` (delivered to the application).
  void erase_below(std::int64_t seq);

  /// If a range starts exactly at `seq`, return its end; otherwise `seq`.
  /// (How far the cumulative ACK can advance once `seq` arrives.)
  std::int64_t contiguous_end(std::int64_t seq) const;

  /// Up to `max_blocks` ranges strictly above `above`, lowest first.
  struct Block {
    std::int64_t start;
    std::int64_t end;
  };

  /// The range containing `seq`; {seq, seq} if not contained.
  Block range_containing(std::int64_t seq) const;
  std::vector<Block> blocks_above(std::int64_t above,
                                  std::size_t max_blocks) const;

  bool empty() const { return ranges_.empty(); }
  std::size_t range_count() const { return ranges_.size(); }

  /// The lowest range, or {0, 0} when empty.
  Block front() const;

  /// Structural invariant: every range is non-empty, ranges are strictly
  /// separated (merging on insert leaves no two adjacent or overlapping
  /// ranges). Returns false and explains via `why` (if non-null) on the
  /// first violation.
  bool well_formed(std::string* why = nullptr) const;

 private:
  friend struct check::AuditCorruptor;  // tests corrupt private state

  // start -> end
  std::map<std::int64_t, std::int64_t> ranges_;
};

}  // namespace greencc::tcp
