#pragma once

#include <cstdint>
#include <deque>

#include <string>
#include <vector>

#include "net/packet.h"
#include "sim/simulator.h"
#include "tcp/seq_range_set.h"
#include "tcp/tcp_config.h"
#include "trace/counters.h"
#include "trace/trace.h"

namespace greencc::tcp {

/// TCP receiver endpoint: reassembly, delayed ACKs, SACK generation and
/// DCTCP-style ECN echo.
///
/// ACK policy mirrors the kernel: every `delack_segments`-th in-order
/// segment is acknowledged immediately, out-of-order arrivals and CE-state
/// changes force an immediate (dup-)ACK with SACK blocks, and a short
/// delayed-ACK timer flushes anything left over so the sender never stalls
/// on the last odd segment.
class TcpReceiver : public net::PacketHandler {
 public:
  TcpReceiver(sim::Simulator& sim, net::FlowId flow, net::HostId self,
              const TcpConfig& config, net::PacketHandler* nic);

  /// Data segments from the network arrive here.
  void handle(net::Packet pkt) override;

  /// Attach this run's event sink (nullptr = tracing off). The receiver
  /// emits ack_sent events under src "tcp:receiver", completing the
  /// per-flow sender/receiver view of one time-ordered stream.
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }

  /// Register this flow's receive-side counters over the live fields.
  void register_counters(trace::CounterRegistry& reg,
                         const std::string& prefix) const;

  std::int64_t rcv_nxt() const { return rcv_nxt_; }
  std::int64_t segments_received() const { return segments_received_; }
  std::int64_t duplicate_segments() const { return duplicate_segments_; }
  std::int64_t acks_sent() const { return acks_sent_; }
  /// Segments discarded by the checksum (fault-injected corruption); they
  /// never count as received.
  std::int64_t checksum_drops() const { return checksum_drops_; }

  /// Verify reassembly-queue consistency at an event boundary: the
  /// out-of-order set is well-formed, sits strictly above rcv_nxt (anything
  /// at or below it was delivered and erased), recent-arrival hints refer
  /// to buffered or delivered data, and the delayed-ACK debt respects its
  /// threshold (a CE arrival or threshold hit forces an immediate ACK, so
  /// pending CE echoes never outlive the handler). Appends discrepancies
  /// to `problems`.
  void audit(std::vector<std::string>& problems) const;

 private:
  friend struct check::AuditCorruptor;  // tests corrupt private state

  void send_ack(const net::Packet& trigger);
  void on_delack_timeout();

  sim::Simulator& sim_;
  net::FlowId flow_;
  net::HostId self_;
  TcpConfig config_;
  net::PacketHandler* nic_;

  std::int64_t rcv_nxt_ = 0;
  SeqRangeSet out_of_order_;
  /// Recently arrived out-of-order sequence numbers, newest first: SACK
  /// blocks are generated from these, so the advertised blocks are the most
  /// recently changed ones (RFC 2018), not merely the lowest. With many
  /// holes this is what lets the sender eventually learn about everything
  /// that did arrive.
  std::deque<std::int64_t> recent_ooo_;
  int unacked_segments_ = 0;
  std::int32_t pending_ce_ = 0;
  bool have_trigger_ = false;
  net::Packet last_trigger_;  ///< echo source for rate-sample fields
  sim::Timer delack_timer_;

  trace::TraceSink* trace_ = nullptr;
  std::int64_t segments_received_ = 0;
  std::int64_t duplicate_segments_ = 0;
  std::int64_t acks_sent_ = 0;
  std::int64_t checksum_drops_ = 0;
};

}  // namespace greencc::tcp
