#pragma once

#include <cstdint>
#include <vector>

#include "check/check.h"

namespace greencc::tcp {

/// Dense per-segment window state: a ring buffer over the contiguous
/// sequence range [begin_seq, end_seq).
///
/// The SACK scoreboard's keys are exactly the un-cum-acked segments — new
/// sends append at snd_nxt, cumulative ACKs pop a prefix, everything in
/// between stays put — so a node-per-segment `std::map` pays an allocation,
/// red-black rebalance, and pointer chase per segment for what is really a
/// sliding array. This ring gives O(1) append/lookup/pop-front with one
/// allocation per capacity doubling, and per-flow memory that tracks the
/// window high-water mark instead of the allocator's node heap.
template <typename T>
class SeqWindow {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// Lowest stored sequence number (== snd_una for the scoreboard).
  std::int64_t begin_seq() const { return base_; }
  /// One past the highest stored sequence number (== snd_nxt).
  std::int64_t end_seq() const {
    return base_ + static_cast<std::int64_t>(count_);
  }
  bool contains(std::int64_t seq) const {
    return seq >= begin_seq() && seq < end_seq();
  }

  /// Pointer to the entry for `seq`, or nullptr when it is outside the
  /// window (already cum-acked or never sent).
  T* find(std::int64_t seq) {
    return contains(seq) ? &slot(seq - base_) : nullptr;
  }
  const T* find(std::int64_t seq) const {
    return contains(seq) ? &slot(seq - base_) : nullptr;
  }

  /// Entry for `seq`; must be inside the window.
  T& at(std::int64_t seq) {
    GREENCC_DCHECK(contains(seq))
        << "seq " << seq << " outside window [" << begin_seq() << ", "
        << end_seq() << ")";
    return slot(seq - base_);
  }
  const T& at(std::int64_t seq) const {
    GREENCC_DCHECK(contains(seq))
        << "seq " << seq << " outside window [" << begin_seq() << ", "
        << end_seq() << ")";
    return slot(seq - base_);
  }

  /// Entry for begin_seq(); the window must be non-empty.
  T& front() { return at(begin_seq()); }

  /// Append a fresh (value-initialized) entry for `seq`, which must extend
  /// the window by exactly one: the next sequence number, or any value when
  /// the window is empty (it becomes the new base).
  T& append(std::int64_t seq) {
    if (empty()) base_ = seq;
    GREENCC_DCHECK(seq == end_seq())
        << "append of seq " << seq << " would leave a gap (window end is "
        << end_seq() << ")";
    if (count_ == data_.size()) grow();
    T& entry = slot(count_);
    entry = T{};
    ++count_;
    return entry;
  }

  /// Drop the entry at begin_seq(); the window must be non-empty.
  void pop_front() {
    GREENCC_DCHECK(!empty()) << "pop_front on an empty window";
    slot(0) = T{};  // release anything the entry owns
    head_ = (head_ + 1) & (data_.size() - 1);
    ++base_;
    --count_;
  }

 private:
  T& slot(std::int64_t offset) {
    return data_[(head_ + static_cast<std::size_t>(offset)) &
                 (data_.size() - 1)];
  }
  const T& slot(std::int64_t offset) const {
    return data_[(head_ + static_cast<std::size_t>(offset)) &
                 (data_.size() - 1)];
  }

  void grow() {
    const std::size_t new_cap = data_.empty() ? 16 : data_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i) next[i] = std::move(slot(i));
    data_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> data_;  ///< power-of-two capacity ring storage
  std::size_t head_ = 0;  ///< index of base_'s slot
  std::size_t count_ = 0;
  std::int64_t base_ = 0;
};

}  // namespace greencc::tcp
