#include "tcp/sender.h"

#include <algorithm>

#include "check/check.h"

namespace greencc::tcp {

namespace {
constexpr std::string_view kTraceSrc = "tcp:sender";
}  // namespace

TcpSender::TcpSender(sim::Simulator& sim, net::FlowId flow, net::HostId src,
                     net::HostId dst, const TcpConfig& config,
                     std::unique_ptr<cca::CongestionControl> cc,
                     energy::CpuCore* core, net::PacketHandler* nic,
                     energy::WorkCalibration work)
    : sim_(sim),
      flow_(flow),
      src_(src),
      dst_(dst),
      config_(config),
      cc_(std::move(cc)),
      core_(core),
      nic_(nic),
      work_(work),
      rtt_(config.min_rto, config.max_rto),
      rto_timer_(sim, [this] { on_rto(); }),
      tlp_timer_(sim, [this] { on_tlp(); }),
      pace_timer_(sim, [this] { maybe_send(); }) {}

TcpSender::~TcpSender() = default;

void TcpSender::add_app_data(units::Bytes bytes) {
  leftover_bytes_ += bytes;
  const std::int64_t segments =
      leftover_bytes_.count() / config_.mss_bytes().count();
  app_limit_segments_ += segments;
  leftover_bytes_ -= segments * config_.mss_bytes();
  app_limited_now_ = false;
}

std::int64_t TcpSender::inflight_segments() const { return pipe_; }

bool TcpSender::can_send() const {
  const auto cwnd = static_cast<std::int64_t>(cc_->cwnd_segments());
  if (pipe_ >= cwnd) return false;
  return !retx_queue_.empty() || snd_nxt_ < app_limit_segments_;
}

double TcpSender::pacing_interval_ns(units::Bytes wire_bytes) const {
  const double rate = cc_->pacing_rate().bps();
  if (rate <= 0.0) return 0.0;
  return static_cast<double>(wire_bytes.count()) * units::kBitsPerByteF *
         units::kNanosPerSecond / rate;
}

void TcpSender::maybe_send() {
  while (can_send()) {
    if (cc_->pacing_rate().bps() > 0.0 && sim_.now() < next_pacing_time_) {
      // One coalesced wakeup; re-arming replaces any earlier deadline.
      pace_timer_.arm(next_pacing_time_ - sim_.now());
      return;
    }
    if (!retx_queue_.empty()) {
      const std::int64_t seq = *retx_queue_.begin();
      retx_queue_.erase(retx_queue_.begin());
      send_segment(seq, /*is_retx=*/true);
    } else {
      send_segment(snd_nxt_, /*is_retx=*/false);
      ++snd_nxt_;
    }
  }
  // Stopped with window open but no data: the flow is application-limited,
  // which taints subsequent delivery-rate samples (BBR must not mistake an
  // idle app for a slow network) and freezes loss-based window growth
  // (RFC 2861 congestion-window validation).
  cwnd_limited_now_ =
      pipe_ >= static_cast<std::int64_t>(cc_->cwnd_segments());
  if (retx_queue_.empty() && snd_nxt_ >= app_limit_segments_ &&
      !cwnd_limited_now_) {
    app_limited_now_ = true;
  }
}

void TcpSender::send_segment(std::int64_t seq, bool is_retx) {
  GREENCC_DCHECK(seq >= snd_una_)
      << "flow " << flow_ << ": transmitting segment " << seq
      << " already cumulatively acked (snd_una " << snd_una_ << ")";
  cwnd_hw_ = std::max(cwnd_hw_,
                      static_cast<std::int64_t>(cc_->cwnd_segments()));
  const units::Bytes wire_bytes = config_.mss_bytes() + config_.header_bytes;
  const auto cost = cc_->cost();
  double work_ns = work_.pkt_ns +
                   work_.byte_ns * static_cast<double>(wire_bytes.count()) +
                   cost.per_packet_ns;
  if (is_retx) work_ns += work_.retx_ns;
  const sim::SimTime release = core_->acquire(sim_.now(), work_ns);

  net::Packet pkt;
  pkt.flow = flow_;
  pkt.src = src_;
  pkt.dst = dst_;
  pkt.seq = seq;
  pkt.size_bytes = wire_bytes;
  pkt.ecn_capable = cc_->wants_ecn();
  pkt.int_enabled = cc_->wants_int();
  pkt.sent_time = release;
  pkt.delivered_at_send = delivered_;
  pkt.delivered_time_at_send = delivered_time_;
  pkt.app_limited = app_limited_now_;
  pkt.is_retx = is_retx;

  SegState& seg = is_retx ? scoreboard_.at(seq) : scoreboard_.append(seq);
  if (is_retx) {
    ++seg.transmissions;
    ++stats_.retransmissions;
    if (trace_) {
      trace_->emit({sim_.now(), trace::EventClass::kRetransmit, flow_,
                    kTraceSrc, seq, cc_->cwnd_segments()});
    }
    // The retransmitted copy is back in flight; it can be declared lost
    // again by RACK once something sent after it is delivered.
    if (seg.lost) {
      seg.lost = false;
      --lost_out_;
    }
    if (!seg.in_pipe) {
      seg.in_pipe = true;
      ++pipe_;
    }
  } else {
    seg.in_pipe = true;
    ++pipe_;
    unsacked_.insert(seq);
  }
  GREENCC_DCHECK(pipe_ <= cwnd_hw_ + 1)
      << "flow " << flow_ << ": pipe " << pipe_
      << " exceeds the window high-water mark " << cwnd_hw_
      << " plus the TLP probe";
  xmit_order_.emplace(release, XmitRecord{seq, seg.transmissions});
  seg.sent_time = release;
  seg.delivered_at_send = delivered_;
  seg.delivered_time_at_send = delivered_time_;
  seg.app_limited = app_limited_now_;
  ++stats_.segments_sent;

  // One event per packet keeps the (when, seq) schedule identical to the
  // direct form, but the packet rides in the tx ring: a release event that
  // finds earlier same-instant deliveries already done simply no-ops.
  txq_.emplace_back(release, pkt);
  sim_.schedule_at(release, [this] { on_tx_event(); });

  if (cc_->pacing_rate().bps() > 0.0) {
    const double interval = pacing_interval_ns(wire_bytes);
    const sim::SimTime base = std::max(next_pacing_time_, sim_.now());
    next_pacing_time_ =
        base + sim::SimTime::nanoseconds(static_cast<std::int64_t>(interval));
  }
  arm_rto();
}

void TcpSender::on_tx_event() {
  // Release times are monotone (the CPU core serializes send work), so the
  // due packets are exactly the front run of the ring.
  const sim::SimTime now = sim_.now();
  while (!txq_.empty() && txq_.front().first <= now) {
    const net::Packet pkt = txq_.front().second;
    txq_.pop_front();
    nic_->handle(pkt);
  }
}

void TcpSender::handle(net::Packet pkt) {
  if (!pkt.is_ack) return;  // data towards a sender endpoint: ignore
  if (pkt.corrupted) {
    // Checksum failure on the ACK path: the packet cost wire bandwidth but
    // carries no usable feedback. The injecting ImpairedLink already
    // reported the loss to the ledger.
    ++stats_.checksum_drops;
    return;
  }
  process_ack(pkt);
}

void TcpSender::process_ack(const net::Packet& ack) {
  const sim::SimTime now = sim_.now();
  ++stats_.acks_received;
  const auto cost = cc_->cost();
  core_->charge(now, work_.ack_ns + cost.per_ack_ns);

  std::int64_t newly_delivered = 0;
  sim::SimTime rtt_sample = sim::SimTime::zero();
  const std::int64_t prev_una = snd_una_;

  // --- cumulative advance ---
  if (ack.ack_seq > snd_una_) {
    while (!scoreboard_.empty() && scoreboard_.begin_seq() < ack.ack_seq) {
      const std::int64_t seq = scoreboard_.begin_seq();
      SegState& seg = scoreboard_.front();
      if (!seg.sacked) {
        ++newly_delivered;
        if (seg.transmissions == 1) {
          rtt_sample = now - seg.sent_time;  // Karn: first transmissions only
        }
        rack_xmit_time_ = std::max(rack_xmit_time_, seg.sent_time);
      }
      if (seg.in_pipe) --pipe_;
      if (seg.sacked) --sacked_out_;
      if (seg.lost) --lost_out_;
      retx_queue_.erase(seq);
      unsacked_.erase(seq);
      scoreboard_.pop_front();
    }
    snd_una_ = ack.ack_seq;
    GREENCC_DCHECK(pipe_ >= 0 && sacked_out_ >= 0 && lost_out_ >= 0)
        << "flow " << flow_ << ": aggregate went negative after cumulative "
        << "advance to " << snd_una_ << " (pipe " << pipe_ << ", sacked_out "
        << sacked_out_ << ", lost_out " << lost_out_ << ")";
  }

  // --- SACK blocks (via the unsacked index: O(newly sacked)) ---
  for (const auto& block : ack.sack) {
    if (block.empty()) continue;
    for (auto it = unsacked_.lower_bound(block.start);
         it != unsacked_.end() && *it < block.end;) {
      const std::int64_t seq = *it;
      SegState* seg_ptr = scoreboard_.find(seq);
      if (seg_ptr == nullptr) {
        it = unsacked_.erase(it);  // stale (should not happen)
        continue;
      }
      SegState& seg = *seg_ptr;
      seg.sacked = true;
      ++sacked_out_;
      ++newly_delivered;
      if (seg.lost) {
        seg.lost = false;
        --lost_out_;
        retx_queue_.erase(seq);
      }
      if (seg.in_pipe) {
        seg.in_pipe = false;
        --pipe_;
      }
      if (seg.transmissions == 1) {
        rtt_sample = now - seg.sent_time;
      }
      rack_xmit_time_ = std::max(rack_xmit_time_, seg.sent_time);
      highest_sacked_ = std::max(highest_sacked_, seq);
      it = unsacked_.erase(it);
    }
  }

  if (rtt_sample > sim::SimTime::zero()) rtt_.add_sample(rtt_sample, now);

  if (newly_delivered > 0) {
    delivered_ += newly_delivered;
    delivered_time_ = now;
    stats_.delivered_segments = delivered_;
  }
  if (ack.ece) stats_.ecn_echoes += ack.ece_count;

  // --- RACK loss detection ---
  const std::int64_t newly_lost = detect_losses_rack();
  if (newly_lost > 0 && !in_recovery_) enter_recovery(newly_lost);

  if (in_recovery_ && snd_una_ >= recovery_point_) {
    in_recovery_ = false;
    cc_->on_recovered(now);
    if (trace_) {
      trace_->emit({now, trace::EventClass::kRecoveryExit, flow_, kTraceSrc,
                    snd_una_, cc_->cwnd_segments()});
    }
  }
  if (snd_una_ > prev_una) {
    rto_backoff_ = 0;
    tlp_allowed_ = true;  // forward progress: a new probe may be sent later
  }

  // --- delivery-rate sample (tcp_rate_gen equivalent) ---
  units::BitRate delivery_rate = units::BitRate::zero();
  if (ack.delivered_time_at_send > sim::SimTime::zero() ||
      ack.delivered_at_send > 0) {
    const sim::SimTime interval = now - ack.delivered_time_at_send;
    const std::int64_t delta = delivered_ - ack.delivered_at_send;
    if (interval > sim::SimTime::zero() && delta > 0) {
      delivery_rate = units::BitRate::bps(
          static_cast<double>(delta) *
          static_cast<double>(config_.mss_bytes().count()) *
          units::kBitsPerByteF / interval.sec());
    }
  }

  // --- feed the congestion controller ---
  cca::AckEvent ev;
  ev.now = now;
  ev.acked_segments = newly_delivered;
  ev.ecn_echoed = ack.ece ? ack.ece_count : 0;
  ev.rtt = rtt_sample;
  ev.srtt = rtt_.srtt();
  ev.min_rtt = rtt_.min_rtt();
  ev.inflight = pipe_;
  ev.delivered = delivered_;
  ev.delivery_rate = delivery_rate;
  ev.app_limited = ack.app_limited;
  ev.in_recovery = in_recovery_;
  ev.cwnd_limited = cwnd_limited_now_;
  ev.int_count = ack.int_count;
  ev.int_hops = ack.int_hops;
  cc_->on_ack(ev);
  if (trace_) trace_cwnd();

  // --- RTO management & completion ---
  if (pipe_ > 0 || !retx_queue_.empty() ||
      snd_una_ < app_limit_segments_) {
    arm_rto();
  } else {
    rto_timer_.cancel();
    tlp_timer_.cancel();
  }

  if (!completed_ && complete()) {
    completed_ = true;
    rto_timer_.cancel();
    tlp_timer_.cancel();
    if (on_complete_) on_complete_();
    return;
  }

  maybe_send();
}

void TcpSender::mark_lost(std::int64_t seq, SegState& seg) {
  seg.lost = true;
  ++lost_out_;
  if (seg.in_pipe) {
    seg.in_pipe = false;
    --pipe_;
  }
  retx_queue_.insert(seq);
}

std::int64_t TcpSender::detect_losses_rack() {
  if (rack_xmit_time_ == sim::SimTime::zero()) return 0;
  // Reordering window: a quarter of the min RTT (RFC 8985's default).
  const sim::SimTime reo_wnd =
      rtt_.min_rtt() > sim::SimTime::zero() ? rtt_.min_rtt() / 4
                                            : sim::SimTime::microseconds(10);
  std::int64_t newly_lost = 0;
  while (!xmit_order_.empty()) {
    const auto it = xmit_order_.begin();
    if (it->first + reo_wnd >= rack_xmit_time_) break;
    const XmitRecord rec = it->second;
    xmit_order_.erase(it);
    SegState* seg_ptr = scoreboard_.find(rec.seq);
    if (seg_ptr == nullptr) continue;                  // already cum-acked
    SegState& seg = *seg_ptr;
    if (seg.sacked || seg.lost) continue;              // delivered or queued
    if (seg.transmissions != rec.transmission) continue;  // stale record
    mark_lost(rec.seq, seg);
    ++newly_lost;
  }
  return newly_lost;
}

void TcpSender::enter_recovery(std::int64_t newly_lost) {
  in_recovery_ = true;
  recovery_point_ = snd_nxt_;
  ++stats_.recoveries;
  cca::LossEvent ev;
  ev.now = sim_.now();
  ev.inflight = pipe_;
  ev.lost_segments = newly_lost;
  cc_->on_loss(ev);
  if (trace_) {
    trace_->emit({sim_.now(), trace::EventClass::kRecoveryEnter, flow_,
                  kTraceSrc, recovery_point_, cc_->cwnd_segments(),
                  static_cast<double>(newly_lost)});
    trace_cwnd();
  }
}

void TcpSender::on_rto() {
  if (completed_) return;
  ++stats_.timeouts;
  core_->charge(sim_.now(), work_.timeout_ns);
  cc_->on_rto(sim_.now());
  in_recovery_ = false;
  if (trace_) {
    trace_->emit({sim_.now(), trace::EventClass::kRto, flow_, kTraceSrc,
                  snd_una_, static_cast<double>(rto_backoff_)});
    trace_cwnd();
  }

  // Everything outstanding is presumed lost; retransmit in order.
  for (std::int64_t seq : unsacked_) {
    SegState& seg = scoreboard_.at(seq);
    if (seg.lost) continue;
    mark_lost(seq, seg);
  }
  rto_backoff_ = std::min(rto_backoff_ + 1, 10);
  arm_rto();
  maybe_send();
}

void TcpSender::arm_rto() {
  sim::SimTime timeout = rtt_.rto();
  for (int i = 0; i < rto_backoff_; ++i) {
    timeout = std::min(timeout * 2, config_.max_rto);
  }
  rto_timer_.arm(timeout);
  // Tail-loss probe (RFC 8985): a quick retransmission of the newest
  // outstanding segment well before the RTO, so that a lost tail still
  // produces SACK feedback and fast recovery instead of a 200 ms stall.
  if (tlp_allowed_ && rtt_.srtt() > sim::SimTime::zero()) {
    const sim::SimTime pto =
        std::min(2 * rtt_.srtt() + sim::SimTime::milliseconds(1), timeout / 2);
    tlp_timer_.arm(pto);
  }
}

void TcpSender::on_tlp() {
  if (completed_ || !tlp_allowed_) return;
  // Probe with the highest unsacked in-flight segment, if any.
  for (auto it = unsacked_.rbegin(); it != unsacked_.rend(); ++it) {
    const SegState* seg = scoreboard_.find(*it);
    if (seg == nullptr || seg->lost) continue;
    tlp_allowed_ = false;
    if (trace_) {
      trace_->emit({sim_.now(), trace::EventClass::kTlp, flow_, kTraceSrc,
                    *it, static_cast<double>(pipe_)});
    }
    send_segment(*it, /*is_retx=*/true);
    return;
  }
}

void TcpSender::trace_cwnd() {
  // Only called with trace_ set; emits one event per *change* so a stable
  // window costs nothing even while tracing.
  const double cwnd = cc_->cwnd_segments();
  if (cwnd == last_traced_cwnd_) return;
  last_traced_cwnd_ = cwnd;
  trace_->emit({sim_.now(), trace::EventClass::kCwnd, flow_, kTraceSrc,
                snd_una_, cwnd, rtt_.srtt().us()});
}

void TcpSender::audit(std::vector<std::string>& problems) const {
  auto tag = [this](const std::string& what) {
    return "flow " + std::to_string(flow_) + ": " + what;
  };

  if (snd_una_ < 0 || snd_una_ > snd_nxt_) {
    problems.push_back(tag("sequence space inverted: snd_una " +
                           std::to_string(snd_una_) + ", snd_nxt " +
                           std::to_string(snd_nxt_)));
  }
  if (snd_nxt_ > app_limit_segments_) {
    problems.push_back(tag("snd_nxt " + std::to_string(snd_nxt_) +
                           " beyond available app data " +
                           std::to_string(app_limit_segments_)));
  }

  // Re-derive the cached aggregates from the per-segment flags.
  std::int64_t sacked = 0, lost = 0, in_pipe = 0;
  if (!scoreboard_.empty() && (scoreboard_.begin_seq() < snd_una_ ||
                               scoreboard_.end_seq() > snd_nxt_)) {
    problems.push_back(tag(
        "scoreboard window [" + std::to_string(scoreboard_.begin_seq()) +
        ", " + std::to_string(scoreboard_.end_seq()) + ") outside [snd_una " +
        std::to_string(snd_una_) + ", snd_nxt " + std::to_string(snd_nxt_) +
        ")"));
  }
  for (std::int64_t seq = scoreboard_.begin_seq();
       seq < scoreboard_.end_seq(); ++seq) {
    const SegState& seg = scoreboard_.at(seq);
    if (seg.sacked) ++sacked;
    if (seg.lost) ++lost;
    if (seg.in_pipe) ++in_pipe;
    if (seg.sacked && seg.lost) {
      problems.push_back(tag("segment " + std::to_string(seq) +
                             " both sacked and lost"));
    }
    if (seg.sacked && seg.in_pipe) {
      problems.push_back(tag("segment " + std::to_string(seq) +
                             " sacked yet still counted in the pipe"));
    }
    if (seg.transmissions < 1) {
      problems.push_back(tag("segment " + std::to_string(seq) +
                             " on the scoreboard with " +
                             std::to_string(seg.transmissions) +
                             " transmissions"));
    }
    if (!seg.sacked && unsacked_.count(seq) == 0) {
      problems.push_back(tag("unsacked segment " + std::to_string(seq) +
                             " missing from the unsacked index"));
    }
  }
  if (sacked != sacked_out_) {
    problems.push_back(tag("sacked_out " + std::to_string(sacked_out_) +
                           " != " + std::to_string(sacked) +
                           " sacked flags on the scoreboard"));
  }
  if (lost != lost_out_) {
    problems.push_back(tag("lost_out " + std::to_string(lost_out_) + " != " +
                           std::to_string(lost) +
                           " lost flags on the scoreboard"));
  }
  if (in_pipe != pipe_) {
    problems.push_back(tag("pipe " + std::to_string(pipe_) + " != " +
                           std::to_string(in_pipe) +
                           " in_pipe flags on the scoreboard"));
  }

  // Index sets point back into the scoreboard with the matching flags.
  for (const std::int64_t seq : unsacked_) {
    const SegState* seg = scoreboard_.find(seq);
    if (seg == nullptr) {
      problems.push_back(tag("unsacked index holds " + std::to_string(seq) +
                             " which is not on the scoreboard"));
    } else if (seg->sacked) {
      problems.push_back(tag("unsacked index holds sacked segment " +
                             std::to_string(seq)));
    }
  }
  for (const std::int64_t seq : retx_queue_) {
    const SegState* seg = scoreboard_.find(seq);
    if (seg == nullptr) {
      problems.push_back(tag("retransmission queue holds " +
                             std::to_string(seq) +
                             " which is not on the scoreboard"));
      continue;
    }
    if (!seg->lost || seg->sacked || seg->in_pipe) {
      problems.push_back(tag("retransmission queue holds segment " +
                             std::to_string(seq) +
                             " that is not (lost, un-sacked, out of pipe)"));
    }
  }

  if (highest_sacked_ >= snd_nxt_) {
    problems.push_back(tag("highest_sacked " +
                           std::to_string(highest_sacked_) +
                           " at or beyond snd_nxt " +
                           std::to_string(snd_nxt_)));
  }
  if (pipe_ > cwnd_hw_ + 1) {
    problems.push_back(tag("pipe " + std::to_string(pipe_) +
                           " exceeds the window high-water mark " +
                           std::to_string(cwnd_hw_) + " plus the TLP probe"));
  }
  if (stats_.retransmissions > stats_.segments_sent) {
    problems.push_back(tag("retransmissions " +
                           std::to_string(stats_.retransmissions) +
                           " exceed segments_sent " +
                           std::to_string(stats_.segments_sent)));
  }
  if (stats_.delivered_segments != delivered_) {
    problems.push_back(tag("stats.delivered_segments " +
                           std::to_string(stats_.delivered_segments) +
                           " != delivery accounting " +
                           std::to_string(delivered_)));
  }
  if (in_recovery_ && recovery_point_ > snd_nxt_) {
    problems.push_back(tag("recovery point " +
                           std::to_string(recovery_point_) +
                           " beyond snd_nxt " + std::to_string(snd_nxt_)));
  }
}

void TcpSender::register_counters(trace::CounterRegistry& reg,
                                  const std::string& prefix) const {
  reg.add(prefix + "segments_sent", &stats_.segments_sent);
  reg.add(prefix + "retransmissions", &stats_.retransmissions);
  reg.add(prefix + "timeouts", &stats_.timeouts);
  reg.add(prefix + "recoveries", &stats_.recoveries);
  reg.add(prefix + "delivered_segments", &stats_.delivered_segments);
  reg.add(prefix + "acks_received", &stats_.acks_received);
  reg.add(prefix + "ecn_echoes", &stats_.ecn_echoes);
  reg.add(prefix + "checksum_drops", &stats_.checksum_drops);
}

}  // namespace greencc::tcp
