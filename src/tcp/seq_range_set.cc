#include "tcp/seq_range_set.h"

#include <algorithm>
#include <stdexcept>

namespace greencc::tcp {

void SeqRangeSet::insert(std::int64_t start, std::int64_t end) {
  if (end <= start) {
    throw std::invalid_argument("SeqRangeSet::insert: empty range");
  }
  // Find the first range that could touch [start, end): the predecessor of
  // start, if it reaches start, else the first range starting >= start.
  auto it = ranges_.upper_bound(start);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) it = prev;
  }
  // Absorb every overlapping/adjacent range.
  while (it != ranges_.end() && it->first <= end) {
    start = std::min(start, it->first);
    end = std::max(end, it->second);
    it = ranges_.erase(it);
  }
  ranges_.emplace(start, end);
}

bool SeqRangeSet::contains(std::int64_t seq) const {
  auto it = ranges_.upper_bound(seq);
  if (it == ranges_.begin()) return false;
  --it;
  return seq < it->second;
}

void SeqRangeSet::erase_below(std::int64_t seq) {
  auto it = ranges_.begin();
  while (it != ranges_.end() && it->second <= seq) {
    it = ranges_.erase(it);
  }
  if (it != ranges_.end() && it->first < seq) {
    const std::int64_t end = it->second;
    ranges_.erase(it);
    ranges_.emplace(seq, end);
  }
}

std::int64_t SeqRangeSet::contiguous_end(std::int64_t seq) const {
  auto it = ranges_.upper_bound(seq);
  if (it == ranges_.begin()) return seq;
  --it;
  return seq < it->second ? it->second : seq;
}

SeqRangeSet::Block SeqRangeSet::range_containing(std::int64_t seq) const {
  auto it = ranges_.upper_bound(seq);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (seq < prev->second) return {prev->first, prev->second};
  }
  return {seq, seq};
}

SeqRangeSet::Block SeqRangeSet::front() const {
  if (ranges_.empty()) return {0, 0};
  return {ranges_.begin()->first, ranges_.begin()->second};
}

bool SeqRangeSet::well_formed(std::string* why) const {
  const std::int64_t* prev_end = nullptr;
  for (const auto& [start, end] : ranges_) {
    if (end <= start) {
      if (why) {
        *why = "empty range [" + std::to_string(start) + ", " +
               std::to_string(end) + ")";
      }
      return false;
    }
    // Adjacent ranges (prev_end == start) must have merged on insert.
    if (prev_end != nullptr && *prev_end >= start) {
      if (why) {
        *why = "range starting at " + std::to_string(start) +
               " touches previous range ending at " +
               std::to_string(*prev_end);
      }
      return false;
    }
    prev_end = &end;
  }
  return true;
}

std::vector<SeqRangeSet::Block> SeqRangeSet::blocks_above(
    std::int64_t above, std::size_t max_blocks) const {
  std::vector<Block> out;
  for (auto it = ranges_.upper_bound(above);
       it != ranges_.end() && out.size() < max_blocks; ++it) {
    out.push_back({it->first, it->second});
  }
  // A range may straddle `above`: include its tail.
  auto it = ranges_.upper_bound(above);
  if (it != ranges_.begin()) {
    --it;
    if (it->second > above && out.size() < max_blocks) {
      out.insert(out.begin(), {above, it->second});
      if (out.size() > max_blocks) out.pop_back();
    }
  }
  return out;
}

}  // namespace greencc::tcp
