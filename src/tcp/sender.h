#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cca/cca.h"
#include "energy/calibration.h"
#include "energy/cpu.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "tcp/rtt.h"
#include "tcp/seq_window.h"
#include "tcp/tcp_config.h"
#include "trace/counters.h"
#include "trace/trace.h"

namespace greencc::check {
struct AuditCorruptor;
}  // namespace greencc::check

namespace greencc::tcp {

/// TCP bulk-data sender.
///
/// Implements the transport machinery the Linux stack provides to every CC
/// module: a SACK scoreboard, RFC 6675-style fast retransmit/recovery, RTO
/// with exponential backoff, delivery-rate sampling (for BBR), optional
/// pacing, and ECN negotiation. The congestion controller is a plug-in; the
/// sender consults `cwnd_segments()` / `pacing_rate()` after feeding it
/// the ACK/loss events.
///
/// Energy coupling: every transmitted segment, processed ACK, retransmission
/// and timeout charges the host CPU core (see WorkCalibration); the core in
/// turn gates packet release, so at small MTUs the CPU — not the NIC — is
/// the throughput bottleneck, exactly the effect §4.4 of the paper measures.
///
/// The connection starts established (no handshake): the paper's unit of
/// measurement is a multi-second bulk transfer where setup cost is noise.
class TcpSender : public net::PacketHandler {
 public:
  TcpSender(sim::Simulator& sim, net::FlowId flow, net::HostId src,
            net::HostId dst, const TcpConfig& config,
            std::unique_ptr<cca::CongestionControl> cc,
            energy::CpuCore* core, net::PacketHandler* nic,
            energy::WorkCalibration work = {});
  ~TcpSender();

  /// Queue `bytes` of application data (converted to whole segments).
  void add_app_data(units::Bytes bytes);

  /// Declare that no more application data is coming. Completion is only
  /// reported after this: a rate-limited app that has merely drained its
  /// token bucket has not finished its transfer.
  void mark_app_eof() { app_eof_ = true; }

  /// True once the app signalled EOF and everything queued has been
  /// cumulatively ACKed.
  bool complete() const {
    return app_eof_ && snd_una_ >= app_limit_segments_ &&
           app_limit_segments_ > 0;
  }

  /// Invoked once when `complete()` first becomes true.
  void set_on_complete(std::function<void()> cb) {
    on_complete_ = std::move(cb);
  }

  /// Kick the send loop (call after add_app_data / at flow start).
  void start() { maybe_send(); }

  /// ACKs from the network arrive here.
  void handle(net::Packet pkt) override;

  /// Attach this run's event sink (nullptr = tracing off). The sender
  /// emits retransmit, RTO, recovery enter/exit, cwnd-change and TLP
  /// events under src "tcp:sender".
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }

  /// Register this flow's transport counters ("<prefix>retransmissions",
  /// "<prefix>timeouts", ...) over the live TcpStats fields.
  void register_counters(trace::CounterRegistry& reg,
                         const std::string& prefix) const;

  const TcpStats& stats() const { return stats_; }
  const cca::CongestionControl& congestion_control() const { return *cc_; }
  std::int64_t inflight_segments() const;
  std::int64_t snd_una() const { return snd_una_; }
  std::int64_t snd_nxt() const { return snd_nxt_; }
  bool in_recovery() const { return in_recovery_; }
  const RttEstimator& rtt() const { return rtt_; }

  /// Re-derive the scoreboard's cached aggregates (pipe / sacked_out /
  /// lost_out) from the per-segment flags, cross-check the index sets
  /// (unsacked, retransmission queue) against the scoreboard, and verify
  /// the sequence-space and in-flight bounds. Appends one line per
  /// discrepancy to `problems` (empty = healthy).
  void audit(std::vector<std::string>& problems) const;

 private:
  friend struct check::AuditCorruptor;  // tests corrupt private state

  struct SegState {
    sim::SimTime sent_time;
    std::int64_t delivered_at_send = 0;
    sim::SimTime delivered_time_at_send;
    bool app_limited = false;
    bool sacked = false;
    bool lost = false;
    bool in_pipe = false;  ///< currently counted in the pipe estimate
    int transmissions = 1;
  };

  void maybe_send();
  bool can_send() const;
  void send_segment(std::int64_t seq, bool is_retx);
  void process_ack(const net::Packet& ack);
  void enter_recovery(std::int64_t newly_lost);
  /// RACK-style loss detection (RFC 8985): a segment is lost once a segment
  /// transmitted sufficiently later has been delivered. Returns the number
  /// of segments newly marked lost.
  std::int64_t detect_losses_rack();
  void mark_lost(std::int64_t seq, SegState& seg);
  void on_rto();
  void on_tlp();
  /// Deliver every queued transmission whose release time has arrived.
  void on_tx_event();
  void arm_rto();
  double pacing_interval_ns(units::Bytes wire_bytes) const;
  /// Emit a cwnd event if the controller's window moved since last emit.
  void trace_cwnd();

  sim::Simulator& sim_;
  net::FlowId flow_;
  net::HostId src_;
  net::HostId dst_;
  TcpConfig config_;
  std::unique_ptr<cca::CongestionControl> cc_;
  energy::CpuCore* core_;
  net::PacketHandler* nic_;
  energy::WorkCalibration work_;

  // --- sequence state (segment indices) ---
  std::int64_t snd_una_ = 0;   ///< lowest unacked segment
  std::int64_t snd_nxt_ = 0;   ///< next never-sent segment
  std::int64_t app_limit_segments_ = 0;  ///< data available from the app
  units::Bytes leftover_bytes_;          ///< sub-segment remainder

  // --- scoreboard ---
  /// Per-segment state over [snd_una, snd_nxt): the keys are dense (new
  /// sends append at snd_nxt, cumulative ACKs pop the front), so the
  /// scoreboard lives in a ring buffer instead of a node-per-segment map.
  SeqWindow<SegState> scoreboard_;
  /// Segments in the scoreboard that are not (yet) SACKed. SACK blocks can
  /// span thousands of already-delivered segments; iterating this index
  /// instead of the raw range keeps ACK processing O(newly-sacked), not
  /// O(window) — essential for the baseline's 10k-segment pinned window.
  std::set<std::int64_t> unsacked_;
  std::set<std::int64_t> retx_queue_;            ///< lost, awaiting re-send
  /// Transmissions ordered by send time, for RACK: (xmit time, seq,
  /// transmission number). Entries are lazily discarded when stale.
  struct XmitRecord {
    std::int64_t seq;
    int transmission;
  };
  std::multimap<sim::SimTime, XmitRecord> xmit_order_;
  /// Send time of the most recently delivered (sacked/acked) transmission.
  sim::SimTime rack_xmit_time_ = sim::SimTime::zero();
  std::int64_t sacked_out_ = 0;
  std::int64_t lost_out_ = 0;
  std::int64_t pipe_ = 0;  ///< RFC 6675 pipe: segments believed in flight
  std::int64_t highest_sacked_ = -1;
  /// High-water mark of the controller's window, sampled at every send.
  /// pipe_ can exceed the *current* cwnd (the window shrinks on loss while
  /// flight is full) but never this mark + 1 (the +1 is the TLP probe).
  std::int64_t cwnd_hw_ = 0;

  // --- recovery state ---
  bool in_recovery_ = false;
  std::int64_t recovery_point_ = 0;

  // --- delivery accounting (rate samples) ---
  std::int64_t delivered_ = 0;
  sim::SimTime delivered_time_ = sim::SimTime::zero();

  // --- timers / pacing ---
  RttEstimator rtt_;
  sim::Timer rto_timer_;
  sim::Timer tlp_timer_;
  sim::Timer pace_timer_;  ///< single coalesced pacing wakeup
  bool tlp_allowed_ = true;  ///< one probe per stall episode
  int rto_backoff_ = 0;
  sim::SimTime next_pacing_time_ = sim::SimTime::zero();

  /// Transmissions awaiting their CPU-gated release time, in release order
  /// (core release times are monotone). Keeping the ~280-byte packets here
  /// instead of inside per-event closures keeps each release event down to
  /// a `this` capture — small enough for std::function's inline storage, so
  /// the pacing hot path stops heap-allocating per packet — and lets one
  /// event deliver every packet that shares its release instant.
  std::deque<std::pair<sim::SimTime, net::Packet>> txq_;

  bool app_limited_now_ = false;
  bool cwnd_limited_now_ = false;  ///< last send attempt hit the window
  bool app_eof_ = false;
  trace::TraceSink* trace_ = nullptr;
  double last_traced_cwnd_ = -1.0;
  TcpStats stats_;
  std::function<void()> on_complete_;
  bool completed_ = false;
};

}  // namespace greencc::tcp
