#pragma once

#include <algorithm>

#include "sim/time.h"

namespace greencc::tcp {

/// RFC 6298 RTT estimator with a windowed minimum.
///
/// srtt/rttvar follow the classic (1/8, 1/4) exponential filters; the RTO is
/// srtt + 4*rttvar clamped to [min_rto, max_rto] with Linux's 200 ms default
/// floor — which matters for energy: a flow stalled in RTO burns idle power
/// while its completion time grows (the paper's baseline module hits this).
class RttEstimator {
 public:
  RttEstimator(sim::SimTime min_rto, sim::SimTime max_rto)
      : min_rto_(min_rto), max_rto_(max_rto) {}

  void add_sample(sim::SimTime rtt, sim::SimTime now) {
    if (rtt <= sim::SimTime::zero()) return;
    if (srtt_ == sim::SimTime::zero()) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
    } else {
      const sim::SimTime err =
          rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;  // |rtt - srtt|
      rttvar_ = (3 * rttvar_ + err) / 4;
      srtt_ = (7 * srtt_ + rtt) / 8;
    }
    // Windowed min-RTT (10 s window, as tcp_min_rtt in Linux).
    if (min_rtt_ == sim::SimTime::zero() || rtt <= min_rtt_ ||
        now - min_rtt_stamp_ > kMinRttWindow) {
      min_rtt_ = rtt;
      min_rtt_stamp_ = now;
    }
  }

  sim::SimTime srtt() const { return srtt_; }
  sim::SimTime rttvar() const { return rttvar_; }
  sim::SimTime min_rtt() const { return min_rtt_; }

  sim::SimTime rto() const {
    if (srtt_ == sim::SimTime::zero()) return sim::SimTime::seconds(1.0);
    return std::clamp(srtt_ + 4 * rttvar_, min_rto_, max_rto_);
  }

 private:
  static constexpr sim::SimTime kMinRttWindow = sim::SimTime::seconds(10.0);

  sim::SimTime min_rto_;
  sim::SimTime max_rto_;
  sim::SimTime srtt_ = sim::SimTime::zero();
  sim::SimTime rttvar_ = sim::SimTime::zero();
  sim::SimTime min_rtt_ = sim::SimTime::zero();
  sim::SimTime min_rtt_stamp_ = sim::SimTime::zero();
};

}  // namespace greencc::tcp
