#pragma once

#include <cstdint>

#include "sim/time.h"
#include "units/units.h"

namespace greencc::tcp {

/// Transport parameters shared by sender and receiver.
///
/// `mtu_bytes` is the wire MTU as the paper sweeps it (1500/3000/6000/9000);
/// the MSS is derived by subtracting the 52 bytes of IPv4 + TCP headers with
/// timestamps, matching what iperf3 over Linux would use.
struct TcpConfig {
  units::Bytes mtu_bytes{9000};
  units::Bytes header_bytes{52};
  units::Bytes ack_bytes{64};  ///< wire size of a pure ACK

  sim::SimTime min_rto = sim::SimTime::milliseconds(200);  // Linux default
  sim::SimTime max_rto = sim::SimTime::seconds(30.0);

  int dupack_threshold = 3;     ///< RFC 6675 DupThresh in segments
  int delack_segments = 2;      ///< ACK every n-th in-order segment
  sim::SimTime delack_timeout = sim::SimTime::microseconds(500);

  std::int64_t initial_cwnd = 10;  // IW10

  units::Bytes mss_bytes() const { return mtu_bytes - header_bytes; }
};

/// Per-flow transport statistics, the counters `iperf3 -J` would report.
struct TcpStats {
  std::int64_t segments_sent = 0;       ///< data segments put on the wire
  std::int64_t retransmissions = 0;     ///< of those, retransmitted ones
  std::int64_t timeouts = 0;            ///< RTO episodes
  std::int64_t recoveries = 0;          ///< fast-recovery episodes
  std::int64_t delivered_segments = 0;  ///< cumulative, incl. sacked
  std::int64_t acks_received = 0;
  std::int64_t ecn_echoes = 0;
  /// ACKs discarded by the checksum (fault-injected corruption); the
  /// transport never processes them, so they are not in acks_received.
  std::int64_t checksum_drops = 0;
};

}  // namespace greencc::tcp
