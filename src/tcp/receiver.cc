#include "tcp/receiver.h"

#include <algorithm>

namespace greencc::tcp {

TcpReceiver::TcpReceiver(sim::Simulator& sim, net::FlowId flow,
                         net::HostId self, const TcpConfig& config,
                         net::PacketHandler* nic)
    : sim_(sim),
      flow_(flow),
      self_(self),
      config_(config),
      nic_(nic),
      delack_timer_(sim, [this] { on_delack_timeout(); }) {}

void TcpReceiver::handle(net::Packet pkt) {
  if (pkt.is_ack || pkt.flow != flow_) return;
  if (pkt.corrupted) {
    // Checksum failure: the segment consumed wire bandwidth and receive
    // processing but never reaches the transport — no reassembly, no ACK.
    // The injecting ImpairedLink already reported the loss to the ledger.
    ++checksum_drops_;
    return;
  }
  ++segments_received_;
  if (pkt.ce) ++pending_ce_;

  bool out_of_order = false;
  if (pkt.seq == rcv_nxt_) {
    // In-order: advance across any previously buffered range.
    ++rcv_nxt_;
    rcv_nxt_ = out_of_order_.contiguous_end(rcv_nxt_);
    out_of_order_.erase_below(rcv_nxt_);
  } else if (pkt.seq > rcv_nxt_) {
    out_of_order_.insert(pkt.seq, pkt.seq + 1);
    recent_ooo_.push_front(pkt.seq);
    if (recent_ooo_.size() > 12) recent_ooo_.pop_back();
    out_of_order = true;
  } else {
    // Below rcv_nxt: spurious retransmission; ACK immediately so the
    // sender's scoreboard converges.
    ++duplicate_segments_;
    out_of_order = true;
  }

  last_trigger_ = pkt;
  have_trigger_ = true;
  ++unacked_segments_;

  if (out_of_order || unacked_segments_ >= config_.delack_segments ||
      pkt.ce) {
    send_ack(pkt);
  } else {
    delack_timer_.arm(config_.delack_timeout);
  }
}

void TcpReceiver::send_ack(const net::Packet& trigger) {
  net::Packet ack;
  ack.flow = flow_;
  ack.src = self_;
  ack.dst = trigger.src;
  ack.is_ack = true;
  ack.ack_seq = rcv_nxt_;
  ack.size_bytes = config_.ack_bytes;

  // RFC 2018: first block describes the range containing the most recent
  // arrival, followed by the next most recently changed ranges.
  std::size_t filled = 0;
  auto add_block = [&](std::int64_t seq) {
    if (filled >= ack.sack.size() || seq < rcv_nxt_) return;
    if (!out_of_order_.contains(seq)) return;
    const auto range = out_of_order_.range_containing(seq);
    for (std::size_t i = 0; i < filled; ++i) {
      if (ack.sack[i].start == std::max(range.start, rcv_nxt_)) return;
    }
    ack.sack[filled++] = {std::max(range.start, rcv_nxt_), range.end};
  };
  if (!trigger.is_ack && trigger.seq >= rcv_nxt_) add_block(trigger.seq);
  for (std::int64_t seq : recent_ooo_) add_block(seq);
  // Pad with the lowest ranges if slots remain (helps the sender fill the
  // oldest holes' context).
  if (filled < ack.sack.size()) {
    const auto blocks =
        out_of_order_.blocks_above(rcv_nxt_, ack.sack.size());
    for (const auto& b : blocks) {
      if (filled >= ack.sack.size()) break;
      bool dup = false;
      for (std::size_t i = 0; i < filled; ++i) {
        if (ack.sack[i].start == b.start) dup = true;
      }
      if (!dup) ack.sack[filled++] = {b.start, b.end};
    }
  }

  ack.ece = pending_ce_ > 0;
  ack.ece_count = pending_ce_;
  pending_ce_ = 0;

  // Echo the trigger's rate-sample bookkeeping back to the sender.
  ack.sent_time = trigger.sent_time;
  ack.delivered_at_send = trigger.delivered_at_send;
  ack.delivered_time_at_send = trigger.delivered_time_at_send;
  ack.app_limited = trigger.app_limited;
  // INT sink: reflect the telemetry stack (HPCC's ACK path).
  ack.int_count = trigger.int_count;
  ack.int_hops = trigger.int_hops;

  unacked_segments_ = 0;
  delack_timer_.cancel();
  ++acks_sent_;
  if (trace_) {
    trace_->emit({sim_.now(), trace::EventClass::kAckSent, flow_,
                  "tcp:receiver", rcv_nxt_,
                  static_cast<double>(ack.ece_count)});
  }
  nic_->handle(ack);
}

void TcpReceiver::register_counters(trace::CounterRegistry& reg,
                                    const std::string& prefix) const {
  reg.add(prefix + "segments_received", &segments_received_);
  reg.add(prefix + "duplicate_segments", &duplicate_segments_);
  reg.add(prefix + "acks_sent", &acks_sent_);
  reg.add(prefix + "checksum_drops", &checksum_drops_);
}

void TcpReceiver::on_delack_timeout() {
  if (unacked_segments_ > 0 && have_trigger_) {
    send_ack(last_trigger_);
  }
}

void TcpReceiver::audit(std::vector<std::string>& problems) const {
  std::string why;
  if (!out_of_order_.well_formed(&why)) {
    problems.push_back("reassembly queue malformed: " + why);
  }
  // Everything at or below rcv_nxt was delivered and erased; a range
  // starting exactly at rcv_nxt would have advanced the cumulative ACK.
  if (!out_of_order_.empty() && out_of_order_.front().start <= rcv_nxt_) {
    problems.push_back("reassembly queue holds [" +
                       std::to_string(out_of_order_.front().start) + ", " +
                       std::to_string(out_of_order_.front().end) +
                       ") at or below rcv_nxt " + std::to_string(rcv_nxt_));
  }
  // SACK hints must refer to data the receiver actually has: still
  // buffered, or already delivered past the cumulative ACK.
  for (std::int64_t seq : recent_ooo_) {
    if (seq >= rcv_nxt_ && !out_of_order_.contains(seq)) {
      problems.push_back("recent out-of-order hint " + std::to_string(seq) +
                         " neither delivered nor buffered");
    }
  }
  // A delayed-ACK debt at the threshold (or any pending CE echo) forces an
  // immediate ACK inside the handler, so neither survives to an event
  // boundary.
  if (unacked_segments_ < 0 || unacked_segments_ >= config_.delack_segments) {
    problems.push_back("delayed-ACK debt " +
                       std::to_string(unacked_segments_) +
                       " outside [0, " +
                       std::to_string(config_.delack_segments) + ")");
  }
  if (pending_ce_ != 0) {
    problems.push_back(std::to_string(pending_ce_) +
                       " CE mark(s) pending outside the receive handler");
  }
  if (rcv_nxt_ < 0 || segments_received_ < 0 || acks_sent_ < 0) {
    problems.push_back("negative counter: rcv_nxt " +
                       std::to_string(rcv_nxt_) + ", segments_received " +
                       std::to_string(segments_received_) + ", acks_sent " +
                       std::to_string(acks_sent_));
  }
}

}  // namespace greencc::tcp
