#include "robust/supervisor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "robust/journal.h"
#include "robust/shutdown.h"
#include "stats/json.h"

namespace greencc::robust {

namespace {

constexpr std::string_view kSupervisorSrc = "supervisor";

/// Watchdog poll cadence: the deadline-enforcement granularity. Cheap —
/// the thread scans a handful of pointers per tick — and fine-grained
/// enough that a 1 s cell deadline means "about a second".
constexpr std::chrono::milliseconds kWatchdogTick{20};

std::string describe_exception(std::exception_ptr error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

std::string_view outcome_name(CellOutcome outcome) {
  switch (outcome) {
    case CellOutcome::kOk: return "ok";
    case CellOutcome::kRetried: return "retried";
    case CellOutcome::kTimedOut: return "timed_out";
    case CellOutcome::kQuarantined: return "quarantined";
    case CellOutcome::kResumed: return "resumed";
    case CellOutcome::kNotRun: return "not_run";
  }
  return "unknown";
}

std::size_t SweepReport::count(CellOutcome outcome) const {
  std::size_t n = 0;
  for (const auto& cell : cells) {
    if (cell.outcome == outcome) ++n;
  }
  return n;
}

std::vector<const CellRecord*> SweepReport::quarantine() const {
  std::vector<const CellRecord*> failed;
  for (const auto& cell : cells) {
    if (cell.outcome == CellOutcome::kTimedOut ||
        cell.outcome == CellOutcome::kQuarantined) {
      failed.push_back(&cell);
    }
  }
  return failed;
}

bool SweepReport::complete() const {
  if (interrupted) return false;
  for (const auto& cell : cells) {
    if (cell.outcome == CellOutcome::kTimedOut ||
        cell.outcome == CellOutcome::kQuarantined ||
        cell.outcome == CellOutcome::kNotRun) {
      return false;
    }
  }
  return true;
}

std::string SweepReport::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "supervisor: ok=%zu retried=%zu timed_out=%zu "
                "quarantined=%zu resumed=%zu not_run=%zu%s",
                count(CellOutcome::kOk), count(CellOutcome::kRetried),
                count(CellOutcome::kTimedOut),
                count(CellOutcome::kQuarantined),
                count(CellOutcome::kResumed), count(CellOutcome::kNotRun),
                interrupted ? " (interrupted)" : "");
  return buf;
}

void SweepReport::write_json(stats::JsonWriter& json) const {
  json.begin_object();
  json.field("ok", static_cast<std::int64_t>(count(CellOutcome::kOk)));
  json.field("retried",
             static_cast<std::int64_t>(count(CellOutcome::kRetried)));
  json.field("timed_out",
             static_cast<std::int64_t>(count(CellOutcome::kTimedOut)));
  json.field("quarantined",
             static_cast<std::int64_t>(count(CellOutcome::kQuarantined)));
  json.field("resumed",
             static_cast<std::int64_t>(count(CellOutcome::kResumed)));
  json.field("not_run",
             static_cast<std::int64_t>(count(CellOutcome::kNotRun)));
  json.field("interrupted", interrupted);
  json.key("cells").begin_array();
  for (const auto& cell : cells) {
    // Per-cell wall time for every executed cell; full failure records
    // (seed, error, events) for the quarantine list.
    if (cell.outcome == CellOutcome::kResumed) continue;
    json.begin_object();
    json.field("index", static_cast<std::int64_t>(cell.index));
    json.field("outcome", std::string(outcome_name(cell.outcome)));
    json.field("attempts", cell.attempts);
    json.field("wall_sec", cell.wall_sec);
    json.field("events_executed", cell.events_executed);
    if (cell.outcome == CellOutcome::kTimedOut ||
        cell.outcome == CellOutcome::kQuarantined) {
      json.field("seed", cell.seed);
      json.field("error", cell.error);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

double backoff_ms(int failed_attempts, double base_ms, double cap_ms) {
  if (failed_attempts <= 0 || base_ms <= 0.0) return 0.0;
  // Exponent is clamped before exp2 so huge attempt counts cannot
  // overflow to inf; the cap governs anyway.
  const double doublings = std::min(failed_attempts - 1, 40);
  return std::min(base_ms * std::exp2(doublings), cap_ms);
}

// --- CellContext -----------------------------------------------------------

CellContext::WatchGuard::WatchGuard(CellContext& ctx, sim::Simulator& sim)
    : ctx_(ctx) {
  if (ctx_.owner_.options_.event_budget != 0) {
    sim.set_event_budget(ctx_.owner_.options_.event_budget);
  }
  std::lock_guard<std::mutex> lock(ctx_.mu_);
  ctx_.sim_ = &sim;
  // lint-allow: wall-clock (watchdog deadline; never feeds sim results)
  ctx_.started_ = std::chrono::steady_clock::now();
}

CellContext::WatchGuard::~WatchGuard() {
  std::lock_guard<std::mutex> lock(ctx_.mu_);
  if (ctx_.sim_ != nullptr) {
    // Snapshot while the simulator is still alive: the supervisor reads
    // these after the task returns, when the scenario is long destroyed.
    ctx_.events_ = ctx_.sim_->events_executed();
    ctx_.budget_exhausted_ = ctx_.sim_->budget_exhausted();
    ctx_.sim_ = nullptr;
  }
}

void CellContext::set_seed(std::uint64_t seed) { seed_ = seed; }

bool CellContext::cut() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cut_;
}

// --- SweepSupervisor -------------------------------------------------------

SweepSupervisor::SweepSupervisor(SupervisorOptions options)
    : options_(std::move(options)) {}

SweepSupervisor::~SweepSupervisor() = default;

void SweepSupervisor::register_context(CellContext* ctx) {
  std::lock_guard<std::mutex> lock(active_mu_);
  active_.push_back(ctx);
}

void SweepSupervisor::deregister_context(CellContext* ctx) {
  std::lock_guard<std::mutex> lock(active_mu_);
  active_.erase(std::remove(active_.begin(), active_.end(), ctx),
                active_.end());
}

void SweepSupervisor::watchdog_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mu_);
      watchdog_cv_.wait_for(lock, kWatchdogTick,
                            [this] { return watchdog_exit_; });
      if (watchdog_exit_) return;
    }
    // lint-allow: wall-clock (watchdog deadline; never feeds sim results)
    const auto now = std::chrono::steady_clock::now();
    const bool shutdown = shutdown_requested();
    std::lock_guard<std::mutex> lock(active_mu_);
    for (CellContext* ctx : active_) {
      std::lock_guard<std::mutex> ctx_lock(ctx->mu_);
      if (ctx->sim_ == nullptr || ctx->cut_) continue;
      const double elapsed =
          std::chrono::duration<double>(now - ctx->started_).count();
      if (shutdown || (options_.cell_deadline_sec > 0.0 &&
                       elapsed > options_.cell_deadline_sec)) {
        ctx->cut_ = true;
        ctx->sim_->stop();  // atomic; the run loop exits after this event
      }
    }
  }
}

void SweepSupervisor::emit(trace::EventClass cls, std::size_t index,
                           double value, const std::string& detail) {
  if (options_.trace == nullptr) return;
  std::lock_guard<std::mutex> lock(trace_mu_);
  trace::Event event;
  // lint-allow: wall-clock (supervisor events are wall-time stamped)
  event.t = sim::SimTime::seconds(
      std::chrono::duration<double>(
          // lint-allow: wall-clock (supervisor events are wall-time stamped)
          std::chrono::steady_clock::now() - sweep_start_)
          .count());
  event.cls = cls;
  event.src = kSupervisorSrc;
  event.seq = static_cast<std::int64_t>(index);
  event.value = value;
  event.detail = detail;
  options_.trace->emit(event);
}

void SweepSupervisor::run_cell(std::size_t index, const CellHooks& hooks,
                               CellRecord& record) {
  const int max_attempts = std::max(options_.max_attempts, 1);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (shutdown_requested()) {
      // Could be attempt 1 (never dispatched) or a retry abandoned by the
      // shutdown — either way the cell has no result and resume re-runs it.
      record.outcome = CellOutcome::kNotRun;
      if (record.error.empty()) record.error = "interrupted by shutdown";
      return;
    }
    record.attempts = attempt;
    CellContext ctx(*this);
    register_context(&ctx);
    // lint-allow: wall-clock (per-cell wall time for the health report)
    const auto started = std::chrono::steady_clock::now();
    std::string payload;
    std::exception_ptr error;
    try {
      payload = hooks.run(index, ctx);
    } catch (...) {
      error = std::current_exception();
    }
    deregister_context(&ctx);
    record.wall_sec =
        std::chrono::duration<double>(
            // lint-allow: wall-clock (per-cell wall time for health report)
            std::chrono::steady_clock::now() - started)
            .count();
    record.events_executed = ctx.events_;
    record.seed = ctx.seed_;

    if (!error) {
      if (ctx.cut()) {
        if (shutdown_requested()) {
          record.outcome = CellOutcome::kNotRun;
          record.error = "interrupted by shutdown";
        } else {
          record.outcome = CellOutcome::kTimedOut;
          char buf[128];
          std::snprintf(buf, sizeof(buf),
                        "wall deadline (%.3fs) exceeded after %.3fs",
                        options_.cell_deadline_sec, record.wall_sec);
          record.error = buf;
          emit(trace::EventClass::kSupervisorTimeout, index, record.wall_sec,
               record.error);
        }
        return;  // deterministic sim: retrying would stall again
      }
      if (ctx.budget_exhausted_) {
        record.outcome = CellOutcome::kTimedOut;
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "event budget (%llu) exhausted after %llu events",
                      static_cast<unsigned long long>(options_.event_budget),
                      static_cast<unsigned long long>(record.events_executed));
        record.error = buf;
        emit(trace::EventClass::kSupervisorTimeout, index,
             static_cast<double>(record.events_executed), record.error);
        return;
      }
      record.outcome =
          attempt > 1 ? CellOutcome::kRetried : CellOutcome::kOk;
      record.error.clear();
      if (journal_) {
        std::lock_guard<std::mutex> lock(journal_mu_);
        journal_->append(index, payload);
      }
      return;
    }

    record.error = describe_exception(error);
    if (attempt == max_attempts) {
      record.outcome = CellOutcome::kQuarantined;
      emit(trace::EventClass::kSupervisorQuarantine, index,
           static_cast<double>(attempt), record.error);
      return;
    }
    emit(trace::EventClass::kSupervisorRetry, index,
         static_cast<double>(attempt), record.error);
    // Capped exponential backoff, sliced so a shutdown interrupts the
    // sleep within one watchdog tick.
    double remaining =
        backoff_ms(attempt, options_.backoff_base_ms, options_.backoff_cap_ms);
    while (remaining > 0.0 && !shutdown_requested()) {
      const double slice = std::min(remaining, 20.0);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slice));
      remaining -= slice;
    }
  }
}

SweepReport SweepSupervisor::run(std::size_t n, const CellHooks& hooks) {
  SweepReport report;
  report.cells.resize(n);
  for (std::size_t i = 0; i < n; ++i) report.cells[i].index = i;
  // lint-allow: wall-clock (timestamps supervisor trace events only)
  sweep_start_ = std::chrono::steady_clock::now();

  // Resume: replay the journal, restore completed cells, run the rest.
  std::vector<char> done(n, 0);
  if (options_.resume && !options_.journal_path.empty()) {
    const auto entries =
        SweepJournal::load(options_.journal_path, options_.config_hash);
    for (const auto& [task, payload] : entries) {
      if (task >= n) continue;
      if (hooks.restore) hooks.restore(task, payload);
      report.cells[task].outcome = CellOutcome::kResumed;
      done[task] = 1;
    }
  }
  if (!options_.journal_path.empty()) {
    journal_ = std::make_unique<SweepJournal>(
        options_.journal_path, options_.config_hash, options_.resume);
  }

  std::vector<std::size_t> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!done[i]) pending.push_back(i);
  }

  watchdog_exit_ = false;
  watchdog_ = std::thread([this] { watchdog_loop(); });

  app::ProgressFn progress;
  if (options_.progress) {
    progress = [this, &pending](std::size_t completed, std::size_t total,
                                std::size_t pending_index, double secs) {
      options_.progress(completed, total, pending[pending_index], secs);
    };
  }
  app::ParallelRunner pool(options_.jobs, std::move(progress));
  // run_cell never throws, so the pool's own failure path stays idle.
  pool.for_each_index(pending.size(), [&](std::size_t j) {
    run_cell(pending[j], hooks, report.cells[pending[j]]);
  });

  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_exit_ = true;
  }
  watchdog_cv_.notify_all();
  watchdog_.join();

  report.interrupted = shutdown_requested();
  journal_.reset();  // final fsync + close: the journal is flushed on exit
  return report;
}

}  // namespace greencc::robust
