#include "robust/shutdown.h"

#include <csignal>

#include <atomic>

namespace greencc::robust {

namespace {

std::atomic<int> g_shutdown_signal{0};

// Async-signal-safe: only atomics and sigaction-family calls. On the
// second delivery of the same signal the default disposition is restored
// and the signal re-raised, so an operator's second Ctrl-C kills a process
// whose graceful path is itself stuck.
void on_signal(int sig) {
  int expected = 0;
  if (!g_shutdown_signal.compare_exchange_strong(expected, sig)) {
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  }
}

}  // namespace

void install_shutdown_handler() {
  struct sigaction action {};
  action.sa_handler = on_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking reads promptly
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool shutdown_requested() {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int shutdown_signal() {
  return g_shutdown_signal.load(std::memory_order_relaxed);
}

void request_shutdown(int sig) {
  int expected = 0;
  g_shutdown_signal.compare_exchange_strong(expected, sig);
}

void reset_shutdown_for_test() { g_shutdown_signal.store(0); }

}  // namespace greencc::robust
