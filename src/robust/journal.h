#pragma once

// Crash-safe write-ahead journal for experiment sweeps.
//
// One JSONL file per sweep: a header line binding the journal to a schema
// version and a 64-bit hash of the sweep configuration, then one line per
// completed cell appended — with a single write(2) followed by fsync(2) —
// the moment its result is known. A `kill -9` therefore loses at most the
// cells that were in flight; `--resume` replays the journal and re-runs
// only what is missing. Because every cell's seed derives from
// (base_seed, cell, repeat) and never from completion order, a resumed
// sweep is bit-identical to an uninterrupted one.
//
// The payload is an opaque string chosen by the integration (the CCA grid
// stores its aggregation inputs as %.17g text, which round-trips IEEE
// doubles exactly). Torn tail lines — the only kind a crash can produce,
// appends being sequential — fail to parse and are ignored on load; a
// duplicated task line is resolved last-writer-wins, so replaying a
// journal is idempotent.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace greencc::robust {

/// FNV-1a 64-bit — the sweep-config fingerprint carried in journal and
/// grid-cache headers. Not cryptographic; collision risk is irrelevant at
/// "did I rerun with different flags" scale.
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

class SweepJournal {
 public:
  /// Bump when the line format changes; a mismatched journal is ignored on
  /// load and overwritten on open.
  static constexpr int kSchemaVersion = 1;

  /// Parse `path` and return the payload of every journaled task, later
  /// lines winning. Returns empty when the file is missing or its header
  /// does not match (other schema version, other config hash) — a stale
  /// journal must never seed a resume. Unparseable lines (a torn tail
  /// after a crash) are skipped.
  static std::map<std::size_t, std::string> load(const std::string& path,
                                                 std::uint64_t config_hash);

  /// Open for appending. When `preserve` is set and the existing header
  /// matches, completed lines are kept (the resume path); otherwise the
  /// file is truncated and a fresh header written. Throws
  /// std::runtime_error when the file cannot be opened.
  SweepJournal(std::string path, std::uint64_t config_hash, bool preserve);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Append one task's result as a single atomic, fsync'd line. Safe to
  /// call from any one thread at a time (the supervisor serializes).
  void append(std::size_t task, const std::string& payload);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace greencc::robust
