#pragma once

// SweepSupervisor — a supervised, restartable experiment orchestrator
// layered over app::ParallelRunner.
//
// The bare pool gives a grid sweep throughput; the supervisor gives it
// survival. Every cell runs under:
//
//   watchdog     a wall-clock deadline enforced by a monitor thread that
//                cuts a stalled cell via the (atomic) Simulator stop flag,
//                combined with a Simulator event budget so a scenario that
//                spins without advancing wall time still terminates;
//   retry        throwing cells are re-attempted with capped exponential
//                backoff, then quarantined after max_attempts with a
//                structured failure record — the sweep completes and
//                reports partial results instead of rethrowing the first
//                exception and discarding every finished cell;
//   journal      each completed cell's payload is append-fsync'd to a
//                crash-safe JSONL journal (see journal.h); resume replays
//                it and re-runs only missing cells, bit-identically
//                because seeds derive from coordinates, never order;
//   shutdown     SIGINT/SIGTERM (via shutdown.h) stops dispatch, cuts
//                in-flight cells, flushes the journal, and surfaces
//                `interrupted` so tools exit kPartialResultsExit.
//
// Retrying is deliberately limited to *throwing* cells: simulations are
// deterministic, so a cell that hit its deadline or budget would stall
// again — it is recorded as timed out (and listed in the quarantine
// report) on the first attempt.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "app/parallel_runner.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace greencc::stats {
class JsonWriter;
}

namespace greencc::robust {

enum class CellOutcome : int {
  kOk = 0,      ///< completed on the first attempt
  kRetried,     ///< completed after at least one failed attempt
  kTimedOut,    ///< cut by the watchdog (wall deadline or event budget)
  kQuarantined, ///< threw on every attempt; structured record kept
  kResumed,     ///< restored from the journal, not re-run
  kNotRun,      ///< never completed: shutdown before/while it ran
};

std::string_view outcome_name(CellOutcome outcome);

/// Per-cell entry of the sweep health report.
struct CellRecord {
  std::size_t index = 0;
  CellOutcome outcome = CellOutcome::kOk;
  int attempts = 0;
  double wall_sec = 0.0;  ///< wall time of the final attempt
  std::uint64_t events_executed = 0;  ///< simulator events of final attempt
  std::uint64_t seed = 0;  ///< derived seed (CellContext::set_seed)
  std::string error;       ///< last exception text / cut reason
};

/// The per-sweep health report: one record per cell plus the
/// ok/retried/timed_out/quarantined tally surfaced in --json output.
struct SweepReport {
  std::vector<CellRecord> cells;  ///< index-ordered, one per task
  bool interrupted = false;       ///< a shutdown signal stopped the sweep

  std::size_t count(CellOutcome outcome) const;
  /// Cells that terminally failed (timed out or quarantined) — the list a
  /// partial grid must disclose next to its numbers.
  std::vector<const CellRecord*> quarantine() const;
  /// True when every cell completed (fresh or from the journal) and no
  /// shutdown interrupted the sweep — the "exit 0" condition.
  bool complete() const;
  /// One line for stderr: "supervisor: ok=38 retried=1 ... (interrupted)".
  std::string summary() const;
  /// Emit the report as a JSON object (counts + quarantine records) into
  /// an open writer; the caller supplies the surrounding key.
  void write_json(stats::JsonWriter& json) const;
};

/// Capped exponential backoff before retry number `failed_attempts + 1`:
/// base * 2^(failed_attempts - 1), clamped to cap. Pure, so the schedule
/// is unit-testable without sleeping.
double backoff_ms(int failed_attempts, double base_ms, double cap_ms);

struct SupervisorOptions {
  /// Worker threads (ParallelRunner semantics: 1 serial, <= 0 all cores).
  int jobs = 1;
  /// Attempts per cell before quarantine (>= 1; 1 = no retries).
  int max_attempts = 1;
  double backoff_base_ms = 10.0;
  double backoff_cap_ms = 2000.0;
  /// Wall-clock deadline per cell attempt; 0 = none. Enforced by the
  /// watchdog thread, so granularity is its poll interval (~20 ms).
  double cell_deadline_sec = 0.0;
  /// Simulator event budget per cell attempt; 0 = none. Applied to every
  /// simulator the cell registers via CellContext::watch.
  std::uint64_t event_budget = 0;
  /// Journal file; empty disables journaling (and resume).
  std::string journal_path;
  /// Binds journal lines to this sweep's configuration; a journal written
  /// under a different hash (other flags, other binary schema) is ignored
  /// and regenerated.
  std::uint64_t config_hash = 0;
  /// Replay a matching journal and skip completed cells.
  bool resume = false;
  /// Forwarded per-completed-cell progress callback (original task index).
  app::ProgressFn progress;
  /// Sweep-level sink for supervisor-* events (retry/timeout/quarantine).
  /// Unlike scenario sinks this one is shared across workers; the
  /// supervisor serializes emission internally. Event timestamps are wall
  /// seconds since the sweep started (there is no sweep-global sim clock).
  trace::TraceSink* trace = nullptr;
};

class SweepSupervisor;

/// Handed to each cell attempt. The cell registers its simulator so the
/// watchdog can cut it, and reports its derived seed for failure records.
class CellContext {
 public:
  /// RAII registration: while alive, the watchdog may stop() the
  /// simulator; the destructor snapshots events_executed / budget state
  /// (while the simulator is still alive) and deregisters. Construct it
  /// *after* the scenario so it is destroyed first.
  class WatchGuard {
   public:
    WatchGuard(CellContext& ctx, sim::Simulator& sim);
    ~WatchGuard();
    WatchGuard(const WatchGuard&) = delete;
    WatchGuard& operator=(const WatchGuard&) = delete;

   private:
    CellContext& ctx_;
  };

  WatchGuard watch(sim::Simulator& sim) { return WatchGuard(*this, sim); }

  /// Record the cell's derived seed for the health report.
  void set_seed(std::uint64_t seed);

  /// True when the watchdog (deadline or shutdown) cut this attempt.
  /// Usable from inside the task to skip publishing a truncated result.
  bool cut() const;

 private:
  friend class SweepSupervisor;
  explicit CellContext(SweepSupervisor& owner) : owner_(owner) {}

  SweepSupervisor& owner_;
  mutable std::mutex mu_;
  sim::Simulator* sim_ = nullptr;                 // guarded by mu_
  // lint-allow: wall-clock (watchdog deadline bookkeeping; guarded by mu_)
  std::chrono::steady_clock::time_point started_;
  bool cut_ = false;                              // guarded by mu_
  bool budget_exhausted_ = false;  // snapshot, written by WatchGuard dtor
  std::uint64_t events_ = 0;       // snapshot, written by WatchGuard dtor
  std::uint64_t seed_ = 0;
};

/// The two integration points of a sweep. `run` executes cell `index` and
/// returns the payload to journal (ignored for cut attempts); `restore`
/// (optional) rebuilds the cell's in-memory result from a journaled
/// payload on resume.
struct CellHooks {
  std::function<std::string(std::size_t index, CellContext& ctx)> run;
  std::function<void(std::size_t index, const std::string& payload)> restore;
};

class SweepSupervisor {
 public:
  explicit SweepSupervisor(SupervisorOptions options);
  ~SweepSupervisor();

  SweepSupervisor(const SweepSupervisor&) = delete;
  SweepSupervisor& operator=(const SweepSupervisor&) = delete;

  /// Run cells [0, n) under supervision and return the health report.
  /// Never throws for cell failures (that is the point); throws only for
  /// supervisor-level errors (an unwritable journal).
  SweepReport run(std::size_t n, const CellHooks& hooks);

 private:
  friend class CellContext;

  void watchdog_loop();
  void register_context(CellContext* ctx);
  void deregister_context(CellContext* ctx);
  void emit(trace::EventClass cls, std::size_t index, double value,
            const std::string& detail);
  void run_cell(std::size_t index, const CellHooks& hooks,
                CellRecord& record);

  SupervisorOptions options_;

  std::mutex active_mu_;
  std::vector<CellContext*> active_;

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_exit_ = false;
  std::thread watchdog_;

  std::mutex journal_mu_;
  std::unique_ptr<class SweepJournal> journal_;

  std::mutex trace_mu_;
  // lint-allow: wall-clock (timestamps supervisor trace events only)
  std::chrono::steady_clock::time_point sweep_start_;
};

}  // namespace greencc::robust
