#pragma once

// Graceful-shutdown plumbing for long sweeps: a SIGINT/SIGTERM handler that
// flips one process-wide atomic flag. The SweepSupervisor polls it — it
// stops dispatching new cells, budget-cuts in-flight ones, flushes the
// journal and returns a partial report — and the driving tool exits with
// kPartialResultsExit so scripts can distinguish "rerun with --resume"
// from a hard failure. A second signal restores the default disposition,
// so a second Ctrl-C still force-kills a wedged process.

namespace greencc::robust {

/// Exit status of a tool whose sweep finished with partial results
/// (quarantined / timed-out cells, or an interrupting signal). 75 is
/// sysexits.h EX_TEMPFAIL — "temporary failure, retrying may succeed",
/// which is exactly what `--resume` offers. Distinct from 0 (complete),
/// 1 (hard error) and 2 (usage).
constexpr int kPartialResultsExit = 75;

/// Install the SIGINT/SIGTERM handler (idempotent; call once from main
/// before starting a sweep). Without this, signals keep their default
/// kill-the-process behavior and shutdown_requested() never fires.
void install_shutdown_handler();

/// True once SIGINT/SIGTERM was delivered (or request_shutdown() called).
bool shutdown_requested();

/// The signal number that triggered shutdown, or 0 when none.
int shutdown_signal();

/// Programmatic trigger with the same effect as receiving `sig` — the test
/// hook for the supervisor's shutdown path, and usable by embedders that
/// manage signals themselves.
void request_shutdown(int sig);

/// Clear the flag (tests only; real shutdowns are one-way).
void reset_shutdown_for_test();

}  // namespace greencc::robust
