#include "robust/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "stats/json.h"

namespace greencc::robust {

namespace {

std::string header_line(std::uint64_t config_hash) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"journal\":\"greencc-sweep\",\"schema\":%d,"
                "\"config\":\"%016llx\"}",
                SweepJournal::kSchemaVersion,
                static_cast<unsigned long long>(config_hash));
  return buf;
}

/// Inverse of stats::JsonWriter::escape for the subset it emits. Returns
/// false on malformed input (a torn line).
bool unescape(std::string_view in, std::string& out) {
  out.clear();
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '\\') {
      out += in[i];
      continue;
    }
    if (++i >= in.size()) return false;
    switch (in[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'u': {
        if (i + 4 >= in.size()) return false;
        unsigned code = 0;
        for (int k = 1; k <= 4; ++k) {
          const char c = in[i + k];
          code <<= 4;
          if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
          else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
          else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
          else return false;
        }
        if (code > 0xFF) return false;  // the writer only escapes controls
        out += static_cast<char>(code);
        i += 4;
        break;
      }
      default: return false;
    }
  }
  return true;
}

/// Parse one `{"task":N,"payload":"..."}` line. A crash can only tear the
/// final line, but the parser rejects any malformed one.
bool parse_entry(const std::string& line, std::size_t& task,
                 std::string& payload) {
  constexpr std::string_view kTask = "{\"task\":";
  constexpr std::string_view kPayload = ",\"payload\":\"";
  if (line.rfind(kTask, 0) != 0) return false;
  std::size_t pos = kTask.size();
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') return false;
  task = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    task = task * 10 + static_cast<std::size_t>(line[pos++] - '0');
  }
  if (line.compare(pos, kPayload.size(), kPayload) != 0) return false;
  pos += kPayload.size();
  // Find the closing unescaped quote; the line must end exactly with "}.
  std::size_t end = pos;
  while (end < line.size() && line[end] != '"') {
    end += line[end] == '\\' ? 2 : 1;
  }
  if (end >= line.size() || line.compare(end, 2, "\"}") != 0 ||
      end + 2 != line.size()) {
    return false;
  }
  return unescape(std::string_view(line).substr(pos, end - pos), payload);
}

}  // namespace

std::map<std::size_t, std::string> SweepJournal::load(
    const std::string& path, std::uint64_t config_hash) {
  std::map<std::size_t, std::string> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string line;
  if (!std::getline(in, line) || line != header_line(config_hash)) {
    return entries;  // stale schema or different sweep config: ignore all
  }
  // Read the rest wholesale so a file without a trailing newline (torn
  // final write) still splits the same way getline would.
  std::string payload;
  while (std::getline(in, line)) {
    std::size_t task = 0;
    if (parse_entry(line, task, payload)) entries[task] = payload;
  }
  return entries;
}

SweepJournal::SweepJournal(std::string path, std::uint64_t config_hash,
                           bool preserve)
    : path_(std::move(path)) {
  bool append_existing = false;
  if (preserve) {
    // Keep completed lines only when the header proves they belong to this
    // exact sweep; anything else is regenerated from scratch.
    std::ifstream in(path_);
    std::string first;
    append_existing =
        in && std::getline(in, first) && first == header_line(config_hash);
  }
  const int flags =
      O_WRONLY | O_CREAT | (append_existing ? O_APPEND : O_TRUNC);
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("SweepJournal: cannot open " + path_);
  }
  if (!append_existing) {
    const std::string header = header_line(config_hash) + "\n";
    if (::write(fd_, header.data(), header.size()) !=
        static_cast<ssize_t>(header.size())) {
      throw std::runtime_error("SweepJournal: cannot write header to " +
                               path_);
    }
    ::fsync(fd_);
  }
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

void SweepJournal::append(std::size_t task, const std::string& payload) {
  std::string line = "{\"task\":" + std::to_string(task) + ",\"payload\":\"" +
                     stats::JsonWriter::escape(payload) + "\"}\n";
  // One write(2) per line (O_APPEND appends are atomic at this size), then
  // fsync so a completed cell survives power loss, not just a process kill.
  if (::write(fd_, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    throw std::runtime_error("SweepJournal: short write to " + path_);
  }
  ::fsync(fd_);
}

}  // namespace greencc::robust
