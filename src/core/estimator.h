#pragma once

namespace greencc::core {

/// Fleet-scale extrapolation of per-host savings, reproducing §4.2's
/// back-of-envelope: "The energy to run a typical data center rack is on
/// the order of $10k/year. With around 100k racks in a typical data center,
/// a 1% improvement corresponds to a cost savings of on the order of
/// $10 million/year."
struct SavingsEstimator {
  double rack_cost_usd_per_year = 10'000.0;  ///< [Schmitt 2021]
  int racks = 100'000;                       ///< [Leonard 2021]

  double fleet_cost_usd_per_year() const {
    return rack_cost_usd_per_year * racks;
  }

  /// Dollars saved per year by an energy reduction of `savings_fraction`.
  double usd_per_year(double savings_fraction) const {
    return fleet_cost_usd_per_year() * savings_fraction;
  }

  /// Energy saved per year, assuming a $/kWh price (US industrial average
  /// ~$0.08/kWh), expressed in GWh. Context for the TWh figures in §1.
  double gwh_per_year(double savings_fraction,
                      double usd_per_kwh = 0.08) const {
    return usd_per_year(savings_fraction) / usd_per_kwh / 1e6;
  }
};

}  // namespace greencc::core
