#pragma once

#include <functional>
#include <span>

#include "sim/rng.h"

namespace greencc::core {

/// Utilities around Theorem 1 of the paper:
///
///   Let x in R^n_{>0} be flow throughputs sharing a link of capacity C and
///   P(x) = sum_i p(x_i). If p is strictly concave, the fair allocation
///   x* = (C/n, ..., C/n) maximizes P over all allocations with sum = C:
///   fairness is the *least* energy-efficient operating point.
///
/// `p` is any per-flow power function (the calibrated model provides one);
/// the tests sweep synthetic concave/convex/linear families through these
/// helpers as property checks.
class Theorem1 {
 public:
  using PowerFn = std::function<double(double)>;

  /// P(x) = sum p(x_i).
  static double total_power(std::span<const double> throughputs,
                            const PowerFn& p);

  /// Power of the fair allocation (C/n each).
  static double fair_power(double capacity, int flows, const PowerFn& p);

  /// Sample `trials` random allocations y with sum(y) = C and verify
  /// P(fair) > P(y) for every one. Returns the number of violations
  /// (0 when the theorem holds on every sample).
  static int count_violations(double capacity, int flows, const PowerFn& p,
                              int trials, sim::Rng& rng,
                              double tolerance = 1e-9);

  /// Numerically check strict concavity of p on [0, capacity] with `steps`
  /// samples.
  static bool is_strictly_concave(double capacity, const PowerFn& p,
                                  int steps = 64, double tolerance = 0.0);

  /// Energy of a "full speed, then idle" schedule relative to fair sharing
  /// for n identical flows, each with `bits` to send over capacity C:
  /// returns (E_fair - E_fsi) / E_fair. Positive iff FSI saves energy.
  /// Derivation: fair runs n flows at C/n for T = n*bits/C; FSI runs each
  /// flow at C for T/n while the other n-1 hosts idle at p(0).
  static double fsi_savings(double capacity, int flows, const PowerFn& p);
};

}  // namespace greencc::core
