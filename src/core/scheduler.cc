#include "core/scheduler.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace greencc::core {

std::string to_string(Schedule schedule) {
  switch (schedule) {
    case Schedule::kFairShare:
      return "fair-share";
    case Schedule::kWeighted:
      return "weighted";
    case Schedule::kFullSpeedThenIdle:
      return "full-speed-then-idle";
  }
  return "?";
}

std::vector<app::FlowSpec> make_schedule(Schedule schedule, int flows,
                                         units::Bytes bytes_per_flow,
                                         const std::string& cca,
                                         units::BitRate bottleneck_rate,
                                         double fraction) {
  if (flows < 1) throw std::invalid_argument("make_schedule: flows < 1");
  std::vector<app::FlowSpec> specs;
  for (int i = 0; i < flows; ++i) {
    app::FlowSpec spec;
    spec.cca = cca;
    spec.bytes = bytes_per_flow;
    switch (schedule) {
      case Schedule::kFairShare:
        break;  // all unlimited, all start at once
      case Schedule::kWeighted:
        if (flows != 2) {
          throw std::invalid_argument("kWeighted is a two-flow schedule");
        }
        // Flow 0 takes `fraction` of the link; flow 1 is work-conserving
        // and mops up the rest (and the whole link once flow 0 is done).
        if (i == 0) spec.rate_limit = bottleneck_rate * fraction;
        break;
      case Schedule::kFullSpeedThenIdle:
        if (i > 0) spec.start_after_flow = i - 1;
        break;
    }
    specs.push_back(spec);
  }
  return specs;
}

std::string to_string(SizedSchedule schedule) {
  switch (schedule) {
    case SizedSchedule::kFairShare:
      return "fair-share";
    case SizedSchedule::kFifoSerial:
      return "fifo-serial";
    case SizedSchedule::kSrptSerial:
      return "srpt-serial";
    case SizedSchedule::kLongestFirst:
      return "longest-first";
  }
  return "?";
}

std::vector<app::FlowSpec> make_sized_schedule(
    SizedSchedule schedule, const std::vector<units::Bytes>& bytes,
    const std::string& cca) {
  if (bytes.empty()) {
    throw std::invalid_argument("make_sized_schedule: no transfers");
  }
  // Order of execution (indices into `bytes`).
  std::vector<std::size_t> order(bytes.size());
  std::iota(order.begin(), order.end(), 0);
  switch (schedule) {
    case SizedSchedule::kFairShare:
    case SizedSchedule::kFifoSerial:
      break;
    case SizedSchedule::kSrptSerial:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return bytes[a] < bytes[b];
                       });
      break;
    case SizedSchedule::kLongestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return bytes[a] > bytes[b];
                       });
      break;
  }

  // Flows are added in input order (stable flow identities); the chain is
  // expressed through start_after_flow in execution order.
  std::vector<app::FlowSpec> specs(bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    specs[i].cca = cca;
    specs[i].bytes = bytes[i];
  }
  if (schedule != SizedSchedule::kFairShare) {
    for (std::size_t pos = 1; pos < order.size(); ++pos) {
      specs[order[pos]].start_after_flow = static_cast<int>(order[pos - 1]);
    }
  }
  return specs;
}

}  // namespace greencc::core
