#pragma once

#include <string>
#include <vector>

#include "app/scenario.h"
#include "units/units.h"

namespace greencc::core {

/// Flow-scheduling strategies compared throughout the paper. A scheduler
/// turns a set of transfers into FlowSpecs for the scenario builder.
enum class Schedule {
  /// Every flow unlimited; the CCA converges to the TCP fair share.
  kFairShare,
  /// Flow 1 rate-limited to `fraction` of capacity, flow 2 work-conserving
  /// (the Fig 1 sweep's interior points).
  kWeighted,
  /// Flows run one after another at line rate — the paper's most
  /// energy-efficient, least fair schedule (SRPT-like serialization).
  kFullSpeedThenIdle,
};

std::string to_string(Schedule schedule);

/// Build the flow specs for `flows` equal transfers of `bytes_per_flow`
/// using `cca`, under the given schedule. `fraction` only applies to
/// kWeighted.
std::vector<app::FlowSpec> make_schedule(Schedule schedule, int flows,
                                         units::Bytes bytes_per_flow,
                                         const std::string& cca,
                                         units::BitRate bottleneck_rate,
                                         double fraction = 0.5);

/// How to order transfers of *different* sizes — the §5 direction of
/// approximating Shortest Remaining Processing Time first (pFabric, Homa,
/// Aeolus, PIAS): "to improve energy efficiency, CCAs should aim to send as
/// fast as possible for minimal completion time ... measure the energy
/// usage of existing transport protocols that approximate [SRPT]".
enum class SizedSchedule {
  kFairShare,       ///< all transfers run concurrently
  kFifoSerial,      ///< run one at a time, arrival (input) order
  kSrptSerial,      ///< run one at a time, shortest first
  kLongestFirst,    ///< run one at a time, longest first (the anti-SRPT)
};

std::string to_string(SizedSchedule schedule);

/// Build FlowSpecs for transfers of the given sizes under the policy.
/// Serial policies chain flows via start_after_flow in the chosen order.
std::vector<app::FlowSpec> make_sized_schedule(
    SizedSchedule schedule, const std::vector<units::Bytes>& bytes,
    const std::string& cca);

}  // namespace greencc::core
