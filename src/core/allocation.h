#pragma once

#include <vector>

#include "energy/power_model.h"

namespace greencc::core {

/// Closed-form energy analysis of two flows sharing a bottleneck under an
/// asymmetric bandwidth split — the analytical counterpart of the Fig 1
/// experiment, used to cross-check the simulated numbers.
///
/// Flow 1 is limited to `fraction` of the capacity; flow 2 (work-conserving)
/// uses the rest and, once flow 1 finishes, the full link. Each flow sends
/// `bits` and runs on its own host whose power follows the calibrated p(x).
class AllocationAnalysis {
 public:
  AllocationAnalysis(energy::PackagePowerModel model, double capacity_bps,
                     double util_per_gbps, double pps_per_gbps)
      : model_(std::move(model)),
        capacity_bps_(capacity_bps),
        util_per_gbps_(util_per_gbps),
        pps_per_gbps_(pps_per_gbps) {}

  /// Per-host power at `gbps` (the Fig 2 curve).
  double power_watts(double gbps, double load_fraction = 0.0) const {
    return model_.single_flow_watts(gbps, util_per_gbps_, pps_per_gbps_,
                                    load_fraction);
  }

  struct Result {
    double fraction = 0.5;
    double duration_sec = 0.0;
    double energy_joules = 0.0;
    double savings_vs_fair = 0.0;  ///< (E_fair - E) / E_fair
  };

  /// Energy of the two-host experiment at a given split; `fraction` in
  /// [0.5, 1.0]. fraction == 1 is "full speed, then idle".
  Result energy_at_fraction(double fraction, double bits_per_flow,
                            double load_fraction = 0.0) const;

  /// Sweep Fig 1's x-axis.
  std::vector<Result> sweep(const std::vector<double>& fractions,
                            double bits_per_flow,
                            double load_fraction = 0.0) const;

 private:
  energy::PackagePowerModel model_;
  double capacity_bps_;
  double util_per_gbps_;
  double pps_per_gbps_;
};

}  // namespace greencc::core
