#pragma once

#include <vector>

#include "energy/power_model.h"
#include "units/units.h"

namespace greencc::core {

/// Closed-form energy analysis of two flows sharing a bottleneck under an
/// asymmetric bandwidth split — the analytical counterpart of the Fig 1
/// experiment, used to cross-check the simulated numbers.
///
/// Flow 1 is limited to `fraction` of the capacity; flow 2 (work-conserving)
/// uses the rest and, once flow 1 finishes, the full link. Each flow sends
/// a fixed number of bits and runs on its own host whose power follows the
/// calibrated p(x).
class AllocationAnalysis {
 public:
  AllocationAnalysis(energy::PackagePowerModel model, units::BitRate capacity,
                     double util_per_gbps, double pps_per_gbps)
      : model_(std::move(model)),
        capacity_(capacity),
        util_per_gbps_(util_per_gbps),
        pps_per_gbps_(pps_per_gbps) {}

  /// Per-host power at `rate` (the Fig 2 curve).
  units::Power power(units::BitRate rate, double load_fraction = 0.0) const {
    return model_.single_flow_watts(rate, util_per_gbps_, pps_per_gbps_,
                                    load_fraction);
  }

  struct Result {
    double fraction = 0.5;
    double duration_sec = 0.0;
    units::Energy energy;
    double savings_vs_fair = 0.0;  ///< (E_fair - E) / E_fair
  };

  /// Energy of the two-host experiment at a given split; `fraction` in
  /// [0.5, 1.0]. fraction == 1 is "full speed, then idle".
  Result energy_at_fraction(double fraction, units::Bits bits_per_flow,
                            double load_fraction = 0.0) const;

  /// Sweep Fig 1's x-axis.
  std::vector<Result> sweep(const std::vector<double>& fractions,
                            units::Bits bits_per_flow,
                            double load_fraction = 0.0) const;

 private:
  energy::PackagePowerModel model_;
  units::BitRate capacity_;
  /// Paper-fit ratio coefficients (see PowerCalibration): raw doubles on
  /// purpose.
  double util_per_gbps_;  // lint-allow: unit-suffix (paper-fit ratio coefficient)
  double pps_per_gbps_;  // lint-allow: unit-suffix (paper-fit ratio coefficient)
};

}  // namespace greencc::core
