#include "core/theorem.h"

#include <stdexcept>
#include <vector>

namespace greencc::core {

double Theorem1::total_power(std::span<const double> throughputs,
                             const PowerFn& p) {
  double total = 0.0;
  for (double x : throughputs) total += p(x);
  return total;
}

double Theorem1::fair_power(double capacity, int flows, const PowerFn& p) {
  if (flows <= 0) throw std::invalid_argument("fair_power: flows <= 0");
  return flows * p(capacity / flows);
}

int Theorem1::count_violations(double capacity, int flows, const PowerFn& p,
                               int trials, sim::Rng& rng, double tolerance) {
  if (flows < 2) throw std::invalid_argument("count_violations: flows < 2");
  const double fair = fair_power(capacity, flows, p);
  int violations = 0;
  std::vector<double> alloc(static_cast<std::size_t>(flows));
  for (int t = 0; t < trials; ++t) {
    // Random point on the simplex sum = C via normalized exponentials.
    double sum = 0.0;
    for (auto& a : alloc) {
      a = rng.exponential(1.0);
      sum += a;
    }
    bool is_fair = true;
    for (auto& a : alloc) {
      a *= capacity / sum;
      if (std::abs(a - capacity / flows) > 1e-12) is_fair = false;
    }
    if (is_fair) continue;  // the theorem compares against *other* points
    if (total_power(alloc, p) >= fair - tolerance) ++violations;
  }
  return violations;
}

bool Theorem1::is_strictly_concave(double capacity, const PowerFn& p,
                                   int steps, double tolerance) {
  if (steps < 3) throw std::invalid_argument("is_strictly_concave: steps < 3");
  // Midpoint criterion on a uniform grid: p((a+b)/2) > (p(a)+p(b))/2.
  const double h = capacity / steps;
  for (int i = 0; i + 2 <= steps; ++i) {
    const double a = i * h;
    const double b = (i + 2) * h;
    const double mid = (i + 1) * h;
    if (p(mid) <= (p(a) + p(b)) / 2.0 + tolerance) return false;
  }
  return true;
}

double Theorem1::fsi_savings(double capacity, int flows, const PowerFn& p) {
  if (flows < 1) throw std::invalid_argument("fsi_savings: flows < 1");
  // Both schedules take total time T = n * bits / C; energies below are per
  // unit T (the bits cancel in the ratio).
  const double n = flows;
  const double e_fair = n * p(capacity / n);          // all senders, all of T
  const double e_fsi = p(capacity) + (n - 1) * p(0.0);  // one active at a time
  if (e_fair <= 0.0) return 0.0;
  return (e_fair - e_fsi) / e_fair;
}

}  // namespace greencc::core
