#include "core/efficiency.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "stats/stats.h"

namespace greencc::core {

namespace {
std::pair<std::vector<double>, std::vector<double>> columns(
    const std::vector<GridCell>& cells, double GridCell::*x,
    double GridCell::*y, const std::string& exclude, int mtu = 0) {
  std::vector<double> xs, ys;
  for (const auto& cell : cells) {
    if (!exclude.empty() && cell.cca == exclude) continue;
    if (mtu != 0 && cell.mtu_bytes != mtu) continue;
    xs.push_back(cell.*x);
    ys.push_back(cell.*y);
  }
  return {std::move(xs), std::move(ys)};
}
}  // namespace

double EfficiencyReport::corr_energy_power(int mtu) const {
  auto [xs, ys] = columns(cells_, &GridCell::energy_joules,
                          &GridCell::power_watts, "", mtu);
  return stats::pearson(xs, ys);
}

double EfficiencyReport::corr_energy_fct() const {
  auto [xs, ys] =
      columns(cells_, &GridCell::energy_joules, &GridCell::fct_sec, "");
  return stats::pearson(xs, ys);
}

double EfficiencyReport::corr_energy_retx(const std::string& exclude) const {
  auto [xs, ys] = columns(cells_, &GridCell::energy_joules,
                          &GridCell::retransmissions, exclude);
  return stats::pearson(xs, ys);
}

const GridCell* EfficiencyReport::find(const std::string& cca,
                                       int mtu) const {
  for (const auto& cell : cells_) {
    if (cell.cca == cca && cell.mtu_bytes == mtu) return &cell;
  }
  return nullptr;
}

double EfficiencyReport::mtu_savings(const std::string& cca) const {
  int min_mtu = std::numeric_limits<int>::max();
  int max_mtu = 0;
  for (const auto& cell : cells_) {
    if (cell.cca != cca) continue;
    min_mtu = std::min(min_mtu, cell.mtu_bytes);
    max_mtu = std::max(max_mtu, cell.mtu_bytes);
  }
  const GridCell* small = find(cca, min_mtu);
  const GridCell* large = find(cca, max_mtu);
  if (small == nullptr || large == nullptr || small == large) {
    throw std::invalid_argument("mtu_savings: need at least two MTUs for " +
                                cca);
  }
  return (small->energy_joules - large->energy_joules) /
         small->energy_joules;
}

double EfficiencyReport::savings_vs(const std::string& cca,
                                    const std::string& baseline_cca,
                                    int mtu) const {
  const GridCell* a = find(cca, mtu);
  const GridCell* b = find(baseline_cca, mtu);
  if (a == nullptr || b == nullptr) {
    throw std::invalid_argument("savings_vs: missing grid cell");
  }
  return (b->energy_joules - a->energy_joules) / b->energy_joules;
}

}  // namespace greencc::core
