#include "core/allocation.h"

#include <algorithm>
#include <stdexcept>

namespace greencc::core {

AllocationAnalysis::Result AllocationAnalysis::energy_at_fraction(
    double fraction, double bits_per_flow, double load_fraction) const {
  if (fraction < 0.5 || fraction > 1.0) {
    throw std::invalid_argument(
        "energy_at_fraction: fraction must be in [0.5, 1]");
  }
  const double c_gbps = capacity_bps_ / 1e9;
  const double x1 = fraction * c_gbps;         // flow 1's limited rate
  const double x2 = (1.0 - fraction) * c_gbps; // flow 2 while flow 1 runs

  // Flow 1 finishes at t1; flow 2 then runs at full speed. Total duration
  // is always 2*bits/C because the bottleneck is work-conserving.
  const double t1 = bits_per_flow / (x1 * 1e9);
  const double total = 2.0 * bits_per_flow / capacity_bps_;

  // Host 1: sends at x1 until t1, idles after.
  const double e1 = power_watts(x1, load_fraction) * t1 +
                    power_watts(0.0, load_fraction) * (total - t1);
  // Host 2: sends at x2 until t1, then at line rate until total.
  // (fraction == 1 means host 2 idles first, then bursts — same energy.)
  const double e2 = power_watts(x2, load_fraction) * t1 +
                    power_watts(c_gbps, load_fraction) * (total - t1);

  Result r;
  r.fraction = fraction;
  r.duration_sec = total;
  r.energy_joules = e1 + e2;
  const double fair =
      2.0 * power_watts(c_gbps / 2.0, load_fraction) * total;
  r.savings_vs_fair = (fair - r.energy_joules) / fair;
  return r;
}

std::vector<AllocationAnalysis::Result> AllocationAnalysis::sweep(
    const std::vector<double>& fractions, double bits_per_flow,
    double load_fraction) const {
  std::vector<Result> out;
  out.reserve(fractions.size());
  for (double f : fractions) {
    out.push_back(energy_at_fraction(f, bits_per_flow, load_fraction));
  }
  return out;
}

}  // namespace greencc::core
