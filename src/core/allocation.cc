#include "core/allocation.h"

#include <algorithm>
#include <stdexcept>

namespace greencc::core {

AllocationAnalysis::Result AllocationAnalysis::energy_at_fraction(
    double fraction, units::Bits bits_per_flow, double load_fraction) const {
  if (fraction < 0.5 || fraction > 1.0) {
    throw std::invalid_argument(
        "energy_at_fraction: fraction must be in [0.5, 1]");
  }
  const double bits = static_cast<double>(bits_per_flow.count());
  const double c = capacity_.gbps();  // closed form works in Gb/s
  const double x1 = fraction * c;         // flow 1's limited rate
  const double x2 = (1.0 - fraction) * c; // flow 2 while flow 1 runs

  // Flow 1 finishes at t1; flow 2 then runs at full speed. Total duration
  // is always 2*bits/C because the bottleneck is work-conserving.
  const double t1 = bits / (x1 * units::kBitsPerGigabit);
  const double total = 2.0 * bits / capacity_.bps();

  // Host 1: sends at x1 until t1, idles after.
  const double e1 =
      power(units::BitRate::gbps(x1), load_fraction).watts() * t1 +
      power(units::BitRate::zero(), load_fraction).watts() * (total - t1);
  // Host 2: sends at x2 until t1, then at line rate until total.
  // (fraction == 1 means host 2 idles first, then bursts — same energy.)
  const double e2 =
      power(units::BitRate::gbps(x2), load_fraction).watts() * t1 +
      power(units::BitRate::gbps(c), load_fraction).watts() *
          (total - t1);

  Result r;
  r.fraction = fraction;
  r.duration_sec = total;
  r.energy = units::Energy::joules(e1 + e2);
  const double fair =
      2.0 * power(units::BitRate::gbps(c / 2.0), load_fraction).watts() *
      total;
  r.savings_vs_fair = (fair - r.energy.joules()) / fair;
  return r;
}

std::vector<AllocationAnalysis::Result> AllocationAnalysis::sweep(
    const std::vector<double>& fractions, units::Bits bits_per_flow,
    double load_fraction) const {
  std::vector<Result> out;
  out.reserve(fractions.size());
  for (double f : fractions) {
    out.push_back(energy_at_fraction(f, bits_per_flow, load_fraction));
  }
  return out;
}

}  // namespace greencc::core
