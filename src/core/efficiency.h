#pragma once

#include <string>
#include <vector>

namespace greencc::core {

/// One cell of the CCA x MTU measurement grid behind Figs 5-8: the mean of
/// the repeated runs of one (algorithm, MTU) scenario.
struct GridCell {
  std::string cca;
  int mtu_bytes = 0;        // lint-allow: unit-suffix (CSV wire-format row)
  double energy_joules = 0.0;  // lint-allow: unit-suffix (CSV wire-format row)
  double energy_stddev = 0.0;
  double power_watts = 0.0;    // lint-allow: unit-suffix (CSV wire-format row)
  double fct_sec = 0.0;
  double retransmissions = 0.0;
};

/// Cross-metric analysis over the measurement grid, producing the
/// correlation figures the paper reports:
///  * corr(total energy, average power) ~ -0.8   (§4.3, Figs 5 vs 6)
///  * corr(total energy, retransmissions) ~ 0.47 excluding BBR2 (§4.5, Fig 8)
class EfficiencyReport {
 public:
  void add(GridCell cell) { cells_.push_back(std::move(cell)); }
  const std::vector<GridCell>& cells() const { return cells_; }

  /// When `mtu_bytes` is non-zero, restrict to that MTU's cells: the
  /// paper's -0.8 compares the CCA orderings of Fig 5 vs Fig 6 at fixed
  /// MTU, where the (energy, power) relation is inverse; pooling MTUs
  /// instead lets the MTU effect (small MTU -> more power *and* more
  /// energy) dominate with the opposite sign.
  double corr_energy_power(int mtu = 0) const;
  double corr_energy_fct() const;
  /// `exclude` names a CCA left out (the paper excludes the "highly
  /// variable BBR2 measurements"); empty string excludes nothing.
  double corr_energy_retx(const std::string& exclude = "") const;

  /// Mean energy reduction (fraction) from the smallest to the largest MTU
  /// for one algorithm (§4.4: 13.4%..31.9% going 1500 -> 9000).
  double mtu_savings(const std::string& cca) const;

  /// Energy of `cca` relative to `baseline_cca` at the given MTU:
  /// (E_base - E_cca) / E_base (§4.3: 8.2%..14.2% for everything but BBR2).
  double savings_vs(const std::string& cca, const std::string& baseline_cca,
                    int mtu) const;

 private:
  const GridCell* find(const std::string& cca, int mtu) const;
  std::vector<GridCell> cells_;
};

}  // namespace greencc::core
