#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace greencc::sim {

/// Handle of a scheduled event, issued by Simulator::schedule/schedule_at.
/// Handles are unique over a simulator's lifetime (they are the FIFO
/// tie-break sequence numbers) and never reused, so a handle unambiguously
/// names one event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = ~EventId{0};

/// Priority queue of simulator events, totally ordered by (when, seq):
/// earliest deadline first, FIFO among events scheduled for the same
/// instant. Both implementations honour that exact order, which is what
/// makes them interchangeable bit-for-bit (the cross-queue determinism
/// suite holds them to it).
///
/// Cancellation contract: cancel(id) may only be called for an event that
/// is still pending (pushed, not yet popped). The queue tombstones it —
/// the callback is destroyed without running, the event stops counting in
/// size(), and the slot is physically reclaimed lazily (at the point the
/// queue would have surfaced it, or during compaction/rebuild). Callers
/// that may race an event's execution must track pending-ness themselves;
/// Timer does.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  struct Event {
    SimTime when;
    EventId seq = 0;  ///< tie-breaker: FIFO among same-time events
    Callback cb;
  };

  virtual ~EventQueue() = default;

  /// Insert an event. `ev.seq` must be strictly greater than every seq
  /// pushed before (the simulator's monotone counter guarantees this).
  virtual void push(Event ev) = 0;

  /// Remove and return the minimum live event by (when, seq). The event is
  /// *moved* out — no const_cast of a frozen heap node, the callback's
  /// ownership transfers to the caller. Requires !empty().
  virtual Event pop_move() = 0;

  /// Deadline of the next live event. Requires !empty(). (Non-const: the
  /// queue may prune tombstones while looking.)
  virtual SimTime next_when() = 0;

  /// Tombstone a pending event; see the class comment for the contract.
  /// Returns true (the event will never run) for a pending id.
  virtual bool cancel(EventId id) = 0;

  /// Number of live (non-cancelled, not yet popped) events.
  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }

  virtual const char* name() const = 0;
};

namespace detail {

/// Ascending (when, seq) — the queue's total order. A struct rather than a
/// free function so sorts receive a stateless functor the optimizer inlines
/// (passing a function pointer keeps every comparison an indirect call —
/// measurably the hold model's single largest cost).
struct EventBefore {
  bool operator()(const EventQueue::Event& a,
                  const EventQueue::Event& b) const {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
};
inline constexpr EventBefore event_before{};

/// Tombstone-set membership with the common-case (no cancellations
/// outstanding) short-circuited to one branch.
inline bool contains(const std::unordered_set<EventId>& s, EventId id) {
  return !s.empty() && s.count(id) != 0;
}

/// Binary min-heap over a vector, ordered by event_before. Unlike
/// std::priority_queue it exposes its root for moving out, so popping an
/// event never needs to const_cast away a frozen node.
class EventHeap {
 public:
  void push(EventQueue::Event ev) {
    v_.push_back(std::move(ev));
    sift_up(v_.size() - 1);
  }
  /// Requires !empty().
  EventQueue::Event pop_move() {
    EventQueue::Event out = std::move(v_.front());
    v_.front() = std::move(v_.back());
    v_.pop_back();
    if (!v_.empty()) sift_down(0);
    return out;
  }
  const EventQueue::Event& top() const { return v_.front(); }
  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  /// Destructive drain into `out` (heap order, not sorted).
  void drain_into(std::vector<EventQueue::Event>& out) {
    for (auto& ev : v_) out.push_back(std::move(ev));
    v_.clear();
  }

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  std::vector<EventQueue::Event> v_;
};

}  // namespace detail

/// The pre-calendar event core: one O(log n) heap op per event. Kept as the
/// reference implementation for the cross-queue determinism suite and as
/// the baseline ablation_simcore measures the calendar queue against.
class BinaryHeapQueue final : public EventQueue {
 public:
  void push(Event ev) override;
  Event pop_move() override;
  SimTime next_when() override;
  bool cancel(EventId id) override;
  std::size_t size() const override { return live_; }
  const char* name() const override { return "binary-heap"; }

 private:
  void prune();  ///< pop tombstoned events off the root

  detail::EventHeap heap_;
  std::unordered_set<EventId> cancelled_;
  std::size_t live_ = 0;
};

/// Calendar queue (Brown 1988) with an overflow heap for far-future events
/// — the event core sized for million-flow sweeps.
///
/// Simulated time is monotone and packet-event horizons are short (a
/// serialization plus a propagation delay), the textbook conditions for a
/// calendar queue: a power-of-two ring of `nbuckets` buckets, each
/// `width` ns wide, covers the near future; an event lands in bucket
/// (when / width) mod nbuckets in O(1). Dequeue keeps a cursor bucket
/// whose due events are sorted once into a ready run and then popped off
/// the front, preserving the exact (when, seq) order of the binary heap.
/// Events beyond the ring's horizon (long RTO and idle timers) wait in a
/// small overflow heap and migrate into the ring as the cursor advances.
///
/// The ring resizes itself: when occupancy exceeds ~2 events per bucket it
/// doubles the bucket count and re-derives the bucket width from the
/// observed event spacing (3x the mean gap, Brown's rule), so both the
/// 2-flow dumbbell and the 1M-flow fleet see ~O(1) per event.
class CalendarQueue final : public EventQueue {
 public:
  CalendarQueue();

  void push(Event ev) override;
  Event pop_move() override;
  SimTime next_when() override;
  bool cancel(EventId id) override;
  std::size_t size() const override { return live_; }
  const char* name() const override { return "calendar"; }

  // Introspection for tests / the resize policy's own asserts.
  std::size_t bucket_count() const { return buckets_.size(); }
  std::int64_t bucket_width_ns() const { return width_ns_; }
  std::size_t overflow_size() const { return overflow_.size(); }

 private:
  static constexpr std::size_t kMinBuckets = 256;
  /// Ring growth cap: 2^18 buckets keeps the (empty-bucket) footprint a
  /// few MB; beyond it occupancy grows past one event per bucket, which
  /// only flattens the constant, not the O(1).
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 18;
  static constexpr int kInitialWidthShift = 10;  // 1024 ns buckets
  /// Empty cursor advances tolerated per dequeue before a rebuild
  /// re-anchors the window at the next live event (guards against a
  /// stale tiny width making the cursor crawl across a long idle gap).
  static constexpr std::size_t kMaxEmptySteps = 1024;
  /// Cursor-bucket population that triggers a width re-derivation (guards
  /// against a stale wide width concentrating the live set in a few
  /// buckets, where every in-window push pays an O(bucket) sorted
  /// insert). Only fires when the bucket's events span more than one ns —
  /// a same-instant burst cannot be split by any width.
  static constexpr std::size_t kMaxBucketLoad = 64;

  /// End of the ring's coverage, kept incrementally (cursor advances add
  /// one width; rebuilds recompute) so the hot paths compare against a
  /// member instead of recomputing size * width.
  std::int64_t horizon_end_ns() const { return horizon_end_ns_; }
  void reset_horizon_end() {
    horizon_end_ns_ = cal_start_ns_ +
                      static_cast<std::int64_t>(buckets_.size()) * width_ns_;
  }
  bool is_cancelled(EventId id) const {
    return detail::contains(cancelled_, id);
  }
  /// Make ready_[ready_pos_] the global minimum live event, advancing the
  /// cursor / migrating overflow as needed. Returns false iff no live
  /// events remain.
  bool ensure_ready();
  void insert_ready(Event ev);
  void load_bucket();
  /// Double the ring and re-derive the width from observed event spacing.
  void rebuild();
  void migrate_overflow();

  std::vector<std::vector<Event>> buckets_;
  std::size_t mask_;               ///< buckets_.size() - 1 (power of two)
  std::int64_t width_ns_;          ///< always 1 << width_shift_
  /// Bucket widths are powers of two so the per-push bucket index is a
  /// shift, not a 64-bit division (which alone costs a third of the
  /// hold-model budget at fleet densities).
  int width_shift_;
  std::int64_t cal_start_ns_ = 0;  ///< cursor bucket covers
                                   ///< [cal_start, cal_start + width)
  std::int64_t horizon_end_ns_;    ///< cal_start + nbuckets * width
  std::size_t cursor_ = 0;
  std::size_t wheel_count_ = 0;    ///< events stored in buckets_

  std::vector<Event> ready_;       ///< sorted due run; front at ready_pos_
  std::size_t ready_pos_ = 0;

  detail::EventHeap overflow_;     ///< events at/beyond the horizon
  /// Deadline of the overflow root (INT64_MAX when empty), mirrored here
  /// so the once-per-cursor-advance "anything due to migrate?" test reads
  /// a member instead of the heap. May be stale-low for a tombstoned root
  /// — conservative: the extra migrate call just prunes it.
  std::int64_t overflow_min_ns_ = kNoOverflow;
  static constexpr std::int64_t kNoOverflow =
      std::numeric_limits<std::int64_t>::max();

  std::unordered_set<EventId> cancelled_;
  std::size_t live_ = 0;
};

/// Which event core a Simulator uses. The calendar queue is the default;
/// the binary heap remains selectable (GREENCC_EVENT_QUEUE=heap or an
/// explicit constructor argument) so the determinism suite can hold the
/// two to byte-identical results.
enum class EventQueueKind {
  kCalendar,
  kBinaryHeap,
};

}  // namespace greencc::sim
