#include "sim/simulator.h"

#include <cstdlib>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "check/check.h"

namespace greencc::sim {

namespace {

std::atomic<int>& default_kind_storage() {
  // Resolved once, lazily: the environment wins on first use, after which
  // set_default_queue_kind() can override (tests flip it per-section).
  static std::atomic<int> kind{[] {
    const char* env = std::getenv("GREENCC_EVENT_QUEUE");
    if (env && std::string_view(env) == "heap") {
      return static_cast<int>(EventQueueKind::kBinaryHeap);
    }
    return static_cast<int>(EventQueueKind::kCalendar);
  }()};
  return kind;
}

std::unique_ptr<EventQueue> make_queue(EventQueueKind kind) {
  if (kind == EventQueueKind::kBinaryHeap) {
    return std::make_unique<BinaryHeapQueue>();
  }
  return std::make_unique<CalendarQueue>();
}

}  // namespace

EventQueueKind Simulator::default_queue_kind() {
  return static_cast<EventQueueKind>(
      default_kind_storage().load(std::memory_order_relaxed));
}

void Simulator::set_default_queue_kind(EventQueueKind kind) {
  default_kind_storage().store(static_cast<int>(kind),
                               std::memory_order_relaxed);
}

Simulator::Simulator(EventQueueKind kind)
    : kind_(kind), queue_(make_queue(kind)) {}

EventId Simulator::schedule_at(SimTime when, Callback cb) {
  if (when < now_) {
    throw std::logic_error("Simulator::schedule_at: time is in the past");
  }
  const EventId id = next_seq_++;
  queue_->push(EventQueue::Event{when, id, std::move(cb)});
  if (queue_->size() > peak_pending_) peak_pending_ = queue_->size();
  return id;
}

void Simulator::cancel_event(EventId id) {
  GREENCC_DCHECK(id != kInvalidEventId) << "cancel_event(kInvalidEventId)";
  queue_->cancel(id);
}

bool Simulator::dispatch_next() {
  if (queue_->empty()) return false;
  EventQueue::Event ev = queue_->pop_move();
  GREENCC_CHECK(ev.when >= now_)
      << "event scheduled in the past: head at " << ev.when.to_string()
      << " but the clock already reads " << now_.to_string() << " (seq "
      << ev.seq << ", " << queue_->size() << " pending)";
  now_ = ev.when;
  ++events_executed_;
  ev.cb();
  return true;
}

void Simulator::run() {
  stopped_.store(false, std::memory_order_relaxed);
  while (!budget_exhausted() && !stop_requested() && dispatch_next()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_.store(false, std::memory_order_relaxed);
  while (!budget_exhausted() && !stop_requested() && !queue_->empty() &&
         queue_->next_when() <= deadline) {
    dispatch_next();
  }
  if (now_ < deadline && !stop_requested() && !budget_exhausted()) {
    now_ = deadline;
  }
}

void Timer::arm(SimTime delay) {
  armed_ = true;
  expiry_ = sim_.now() + delay;
  ensure_event_at(expiry_);
}

void Timer::ensure_event_at(SimTime when) {
  // An event already pending at or before `when` will notice the (possibly
  // pushed-out) deadline when it fires and re-schedule itself; one event
  // covers any number of arm() calls that only move the deadline out.
  if (event_pending_ && event_time_ <= when) return;
  if (event_pending_) {
    // Deadline pulled in: the pending event is too late to be of use, and
    // the new one supersedes it — reclaim rather than leave it to fire.
    sim_.cancel_event(event_id_);
  }
  event_pending_ = true;
  event_time_ = when;
  event_id_ = sim_.schedule_at(when, [this] { on_event(); });
}

void Timer::cancel() {
  armed_ = false;
  if (event_pending_) {
    sim_.cancel_event(event_id_);
    event_pending_ = false;
    event_id_ = kInvalidEventId;
  }
}

void Timer::on_event() {
  event_pending_ = false;
  event_id_ = kInvalidEventId;
  if (!armed_) return;
  if (expiry_ > sim_.now()) {
    // Deadline moved out since this event was scheduled: chase it.
    ensure_event_at(expiry_);
    return;
  }
  armed_ = false;
  on_expire_();
}

std::string SimTime::to_string() const {
  // Pick the unit by the *rounded* magnitude so boundaries never carry into
  // a fourth integer digit: 999,999,999 ns would render as "1000.000ms"
  // under a raw-ns threshold, but %.3f rounds it to one second, so it must
  // take the seconds branch and print "1.000s".
  const std::int64_t mag = ns_ < 0 ? -ns_ : ns_;
  char buf[32];
  if (mag >= 999'999'500) {
    snprintf(buf, sizeof(buf), "%.3fs", sec());
  } else if (mag >= 1'000'000) {
    snprintf(buf, sizeof(buf), "%.3fms", ms());
  } else {
    snprintf(buf, sizeof(buf), "%.3fus", us());
  }
  return buf;
}

}  // namespace greencc::sim
