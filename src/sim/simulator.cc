#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

#include "check/check.h"

namespace greencc::sim {

void Simulator::schedule_at(SimTime when, Callback cb) {
  if (when < now_) {
    throw std::logic_error("Simulator::schedule_at: time is in the past");
  }
  queue_.push(Event{when, next_seq_++, std::move(cb)});
  if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
}

bool Simulator::dispatch_next() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the callback has to be moved out, so we
  // const_cast the node we are about to pop. This is safe: the move does not
  // change the ordering fields.
  Event& top = const_cast<Event&>(queue_.top());
  GREENCC_CHECK(top.when >= now_)
      << "event scheduled in the past: head at " << top.when.to_string()
      << " but the clock already reads " << now_.to_string() << " (seq "
      << top.seq << ", " << queue_.size() << " pending)";
  now_ = top.when;
  Callback cb = std::move(top.cb);
  queue_.pop();
  ++events_executed_;
  cb();
  return true;
}

void Simulator::run() {
  stopped_.store(false, std::memory_order_relaxed);
  while (!budget_exhausted() && !stop_requested() && dispatch_next()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_.store(false, std::memory_order_relaxed);
  while (!budget_exhausted() && !stop_requested() && !queue_.empty() &&
         queue_.top().when <= deadline) {
    dispatch_next();
  }
  if (now_ < deadline && !stop_requested() && !budget_exhausted()) {
    now_ = deadline;
  }
}

void Timer::arm(SimTime delay) {
  armed_ = true;
  expiry_ = sim_.now() + delay;
  ensure_event_at(expiry_);
}

void Timer::ensure_event_at(SimTime when) {
  // If an event is already pending at or before `when`, it will notice the
  // (possibly pushed-out) deadline when it fires and re-schedule itself.
  if (event_pending_ && event_time_ <= when) return;
  event_pending_ = true;
  event_time_ = when;
  std::weak_ptr<bool> alive = alive_;
  sim_.schedule_at(when, [this, alive] {
    if (auto locked = alive.lock(); locked && *locked) on_event();
  });
}

void Timer::on_event() {
  event_pending_ = false;
  if (!armed_) return;
  if (expiry_ > sim_.now()) {
    // Deadline moved out since this event was scheduled: chase it.
    ensure_event_at(expiry_);
    return;
  }
  armed_ = false;
  on_expire_();
}

std::string SimTime::to_string() const {
  const double s = sec();
  char buf[32];
  if (ns_ >= 1'000'000'000 || ns_ <= -1'000'000'000) {
    snprintf(buf, sizeof(buf), "%.3fs", s);
  } else if (ns_ >= 1'000'000 || ns_ <= -1'000'000) {
    snprintf(buf, sizeof(buf), "%.3fms", ms());
  } else {
    snprintf(buf, sizeof(buf), "%.3fus", us());
  }
  return buf;
}

}  // namespace greencc::sim
