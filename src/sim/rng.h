#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace greencc::sim {

/// Deterministic pseudo-random number generator (xoshiro256++).
///
/// Experiments must be exactly reproducible from a seed: the paper repeats
/// every scenario 10 times and reports standard deviations, and our test
/// suite asserts bit-identical reruns. `std::mt19937` would work but its
/// distributions are not guaranteed identical across standard library
/// implementations; we therefore implement both the generator and the
/// distributions we need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state, as
    // recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97f4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform over the full 64-bit range.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's nearly-divisionless method would be faster, but modulo bias
    // at our bounds (<< 2^64) is negligible and this keeps the code obvious.
    return next_u64() % bound;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Exponentially distributed double with the given mean.
  double exponential(double mean);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean, double stddev);

  /// True with probability p.
  bool bernoulli(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Derive an independent RNG stream seed from a base seed and two stream
/// coordinates (a site identifier and a stream index within the site).
///
/// Same construction as the experiment layer's per-run seed derivation:
/// golden-ratio multiples keep distinct coordinates at distinct pre-mix
/// values even for small inputs, and the SplitMix64 finalizer avalanches
/// every input bit. Subsystems that own several RNG streams (one per
/// impairment type per link, say) derive each from (seed, site, stream) so
/// that enabling, disabling or reordering one stream never perturbs the
/// draw sequence of another.
constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t site,
                                 std::uint64_t stream) {
  std::uint64_t x = seed;
  x += 0x9E3779B97F4A7C15ULL * (site + 1);
  x += 0xD1B54A32D192ED03ULL * (stream + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Stable 64-bit hash of a site name (FNV-1a), for use as the `site`
/// coordinate of mix_seed when sites are identified by string.
constexpr std::uint64_t site_hash(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace greencc::sim
