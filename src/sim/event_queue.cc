#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "check/check.h"

namespace greencc::sim {

namespace detail {

void EventHeap::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!event_before(v_[i], v_[parent])) break;
    std::swap(v_[i], v_[parent]);
    i = parent;
  }
}

void EventHeap::sift_down(std::size_t i) {
  const std::size_t n = v_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    if (left < n && event_before(v_[left], v_[smallest])) smallest = left;
    if (right < n && event_before(v_[right], v_[smallest])) smallest = right;
    if (smallest == i) return;
    std::swap(v_[i], v_[smallest]);
    i = smallest;
  }
}

}  // namespace detail

// --- BinaryHeapQueue ---

void BinaryHeapQueue::push(Event ev) {
  heap_.push(std::move(ev));
  ++live_;
}

void BinaryHeapQueue::prune() {
  while (!heap_.empty() && detail::contains(cancelled_, heap_.top().seq)) {
    cancelled_.erase(heap_.top().seq);
    heap_.pop_move();  // destroys the tombstoned callback
  }
}

EventQueue::Event BinaryHeapQueue::pop_move() {
  prune();
  GREENCC_DCHECK(!heap_.empty()) << "pop_move on an empty event queue";
  --live_;
  return heap_.pop_move();
}

SimTime BinaryHeapQueue::next_when() {
  prune();
  GREENCC_DCHECK(!heap_.empty()) << "next_when on an empty event queue";
  return heap_.top().when;
}

bool BinaryHeapQueue::cancel(EventId id) {
  GREENCC_DCHECK(live_ > 0) << "cancel " << id << " on an empty event queue";
  cancelled_.insert(id);
  --live_;
  return true;
}

// --- CalendarQueue ---

CalendarQueue::CalendarQueue()
    : buckets_(kMinBuckets),
      mask_(kMinBuckets - 1),
      width_ns_(std::int64_t{1} << kInitialWidthShift),
      width_shift_(kInitialWidthShift) {
  reset_horizon_end();
}

void CalendarQueue::push(Event ev) {
  GREENCC_DCHECK(ev.when.ns() >= 0)
      << "calendar queue requires non-negative times, got " << ev.when.ns();
  ++live_;
  const std::int64_t t = ev.when.ns();
  if (t < cal_start_ns_ + width_ns_) {
    // Due within the cursor bucket's window (or behind a cursor that ran
    // ahead during run_until): joins the sorted ready run directly.
    insert_ready(std::move(ev));
    // A window much wider than the schedule's spacing funnels every push
    // through this sorted insert — O(run length) each. Re-derive the
    // width once the run is long and spreads over more than one ns (a
    // same-instant burst cannot be split by any width; anything wider
    // can, because in-window spreads are always below the current width).
    if (ready_.size() - ready_pos_ > kMaxBucketLoad &&
        ready_.back().when.ns() - ready_[ready_pos_].when.ns() >= 1) {
      rebuild();
    }
    return;
  }
  if (t < horizon_end_ns_) {
    buckets_[static_cast<std::size_t>(t >> width_shift_) & mask_].push_back(
        std::move(ev));
    ++wheel_count_;
    // Rebuild when occupancy passes ~2 events per bucket — unless the ring
    // is already at its size cap, where a rebuild would change nothing and
    // the trigger would otherwise fire on every subsequent push.
    if (wheel_count_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
      rebuild();
    }
    return;
  }
  if (t < overflow_min_ns_) overflow_min_ns_ = t;
  overflow_.push(std::move(ev));
}

void CalendarQueue::insert_ready(Event ev) {
  const auto begin = ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_);
  const auto it =
      std::lower_bound(begin, ready_.end(), ev, detail::event_before);
  ready_.insert(it, std::move(ev));
}

void CalendarQueue::load_bucket() {
  // Every event still in the cursor bucket lies inside its current window
  // (earlier laps were drained when the cursor last passed, later laps are
  // still beyond the horizon), so the whole bucket becomes the ready run.
  std::vector<Event>& bucket = buckets_[cursor_];
  wheel_count_ -= bucket.size();
  ready_pos_ = 0;
  if (cancelled_.empty()) {
    // Common case (no tombstones outstanding anywhere): adopt the bucket's
    // storage wholesale — the old ready run holds only moved-out husks, so
    // the swap trades allocations instead of moving events one by one.
    ready_.swap(bucket);
    bucket.clear();
  } else {
    ready_.clear();
    for (Event& ev : bucket) {
      if (is_cancelled(ev.seq)) {
        cancelled_.erase(ev.seq);  // reclaim the tombstone
        continue;
      }
      ready_.push_back(std::move(ev));
    }
    bucket.clear();
  }
  // Steady-state occupancy is 1-2 events per bucket; handle those without
  // std::sort's call and dispatch overhead.
  if (ready_.size() <= 2) {
    if (ready_.size() == 2 && detail::event_before(ready_[1], ready_[0])) {
      std::swap(ready_[0], ready_[1]);
    }
    return;
  }
  std::sort(ready_.begin(), ready_.end(), detail::event_before);
  // A width left over from a sparser era concentrates a compressed live
  // set into a few heavy buckets; re-derive it while the evidence (one
  // overloaded, genuinely multi-ns bucket) is in hand. A bucket spanning
  // even 2 ns can be split by a narrower width (its span is always below
  // the current width); only a same-instant burst is unsplittable.
  if (ready_.size() > kMaxBucketLoad &&
      ready_.back().when.ns() - ready_.front().when.ns() >= 1) {
    rebuild();
  }
}

void CalendarQueue::migrate_overflow() {
  if (overflow_min_ns_ >= horizon_end_ns_) return;  // nothing due yet
  while (!overflow_.empty()) {
    if (detail::contains(cancelled_, overflow_.top().seq)) {
      cancelled_.erase(overflow_.top().seq);
      overflow_.pop_move();
      continue;
    }
    if (overflow_.top().when.ns() >= horizon_end_ns_) break;
    Event ev = overflow_.pop_move();
    const std::int64_t t = ev.when.ns();
    if (t < cal_start_ns_ + width_ns_) {
      insert_ready(std::move(ev));
    } else {
      buckets_[static_cast<std::size_t>(t >> width_shift_) & mask_].push_back(
          std::move(ev));
      ++wheel_count_;
    }
  }
  overflow_min_ns_ = overflow_.empty() ? kNoOverflow : overflow_.top().when.ns();
}

bool CalendarQueue::ensure_ready() {
  std::size_t empty_steps = 0;
  for (;;) {
    // Skip tombstoned events at the front of the ready run.
    while (ready_pos_ < ready_.size() &&
           is_cancelled(ready_[ready_pos_].seq)) {
      cancelled_.erase(ready_[ready_pos_].seq);
      ready_[ready_pos_].cb = nullptr;  // destroy the callback now
      ++ready_pos_;
    }
    if (ready_pos_ < ready_.size()) return true;

    if (wheel_count_ == 0) {
      // Ring empty: jump the cursor straight to the first overflow event
      // instead of stepping through (possibly millions of) empty buckets.
      ready_.clear();
      ready_pos_ = 0;
      while (!overflow_.empty() &&
             detail::contains(cancelled_, overflow_.top().seq)) {
        cancelled_.erase(overflow_.top().seq);
        overflow_.pop_move();
      }
      if (overflow_.empty()) {
        overflow_min_ns_ = kNoOverflow;
        return false;  // no live events anywhere
      }
      overflow_min_ns_ = overflow_.top().when.ns();
      const std::int64_t t = overflow_min_ns_;
      cal_start_ns_ = (t >> width_shift_) << width_shift_;
      reset_horizon_end();
      cursor_ = static_cast<std::size_t>(t >> width_shift_) & mask_;
      // migrate_overflow() inserts in-window events into the ready run, so
      // the (empty) cursor bucket must be loaded first — load_bucket()
      // resets the run.
      load_bucket();
      migrate_overflow();
      continue;
    }

    // A stale (too narrow) width can leave the cursor crawling across a
    // long idle gap one empty bucket at a time; after enough fruitless
    // steps, rebuild — it re-derives the width and re-anchors the window
    // at the next live event, making the following iteration terminal.
    if (++empty_steps > kMaxEmptySteps) {
      rebuild();
      empty_steps = 0;
      continue;
    }

    // Advance the cursor one bucket; the horizon moves with it, so any
    // overflow events that just came inside migrate into the ring. Order
    // matters: load_bucket() resets the ready run, migrate_overflow()
    // appends to it.
    cal_start_ns_ += width_ns_;
    horizon_end_ns_ += width_ns_;
    cursor_ = (cursor_ + 1) & mask_;
    if (buckets_[cursor_].empty()) {
      ready_.clear();
      ready_pos_ = 0;
    } else {
      load_bucket();
    }
    migrate_overflow();
  }
}

EventQueue::Event CalendarQueue::pop_move() {
  const bool have = ensure_ready();
  GREENCC_DCHECK(have) << "pop_move on an empty event queue";
  (void)have;
  --live_;
  Event out = std::move(ready_[ready_pos_]);
  ++ready_pos_;
  // Compact a long consumed prefix so the ready run cannot grow without
  // bound while events keep chaining inside one bucket window.
  if (ready_pos_ > 1024 && ready_pos_ * 2 > ready_.size()) {
    ready_.erase(ready_.begin(),
                 ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_));
    ready_pos_ = 0;
  }
  return out;
}

SimTime CalendarQueue::next_when() {
  const bool have = ensure_ready();
  GREENCC_DCHECK(have) << "next_when on an empty event queue";
  (void)have;
  return ready_[ready_pos_].when;
}

bool CalendarQueue::cancel(EventId id) {
  GREENCC_DCHECK(live_ > 0) << "cancel " << id << " on an empty event queue";
  cancelled_.insert(id);
  --live_;
  return true;
}

void CalendarQueue::rebuild() {
  // Gather the ring's live events plus the un-popped tail of the ready
  // run, dropping tombstones (this is where cancel-heavy workloads
  // physically reclaim their slots). The ready run must be folded in: the
  // rebuilt window can shrink, and a ready event beyond the new window
  // would otherwise order-invert against later pushes that land in
  // buckets. The overflow heap stays where it is — migrate_overflow()
  // pulls in whatever the new horizon covers at the end — so a rebuild
  // costs O(wheel), not O(everything pending), and the schedule's far
  // tail never gets re-sorted just because the near cluster changed
  // density.
  std::vector<Event> events;
  events.reserve(wheel_count_ + (ready_.size() - ready_pos_));
  const auto take = [&](Event& ev) {
    if (is_cancelled(ev.seq)) {
      cancelled_.erase(ev.seq);
      return;
    }
    events.push_back(std::move(ev));
  };
  std::size_t remaining = wheel_count_;
  for (auto& bucket : buckets_) {
    if (remaining == 0) break;
    if (bucket.empty()) continue;
    remaining -= bucket.size();
    for (Event& ev : bucket) take(ev);
    bucket.clear();
  }
  for (std::size_t i = ready_pos_; i < ready_.size(); ++i) take(ready_[i]);
  ready_.clear();
  ready_pos_ = 0;
  std::sort(events.begin(), events.end(), detail::event_before);

  // Brown's rule, sampled at the head of the schedule: bucket width ~ 3x
  // the mean gap among the next events due, bucket count ~ the event
  // population, so occupancy stays near one and both insert and dequeue
  // stay O(1). Sampling the head (not the full span) keeps a dense
  // working set fast even when sparse far-future timers would stretch the
  // global mean gap by orders of magnitude; the far tail just stays in
  // the overflow heap, where it belongs.
  if (events.size() >= 2) {
    const std::size_t sample = std::min<std::size_t>(events.size(), 256);
    const std::int64_t span =
        events[sample - 1].when.ns() - events.front().when.ns();
    const std::int64_t mean_gap =
        span / static_cast<std::int64_t>(sample - 1);
    const std::int64_t want = std::max<std::int64_t>(1, mean_gap);
    width_shift_ = 0;
    while ((std::int64_t{1} << width_shift_) < want && width_shift_ < 62) {
      ++width_shift_;
    }
    width_ns_ = std::int64_t{1} << width_shift_;
  }
  // Size the ring for the whole pending population (live_ counts the
  // overflow heap too — O(1) to know), not just the gathered near set:
  // overflow events stream into the ring as the cursor advances, and an
  // undersized ring would shunt them right back out. When the target
  // matches the current size the array is left alone — every bucket is
  // already empty after the gather, and keeping them preserves their
  // capacity (a full reassign frees and reallocates thousands of vectors).
  std::size_t target = kMinBuckets;
  while (target < live_ && target < kMaxBuckets) target *= 2;
  if (target != buckets_.size()) {
    buckets_.assign(target, {});
    mask_ = target - 1;
  }
  wheel_count_ = 0;

  // Anchor the cursor window at the earliest pending event so everything
  // redistributes at or ahead of it. (Pushes behind the window — possible
  // when the earliest pending event is ahead of the simulated clock — go
  // straight to the ready run, so a forward-anchored window stays safe.)
  // With nothing gathered the earliest pending event is the overflow top:
  // anchor there so migrate_overflow() can pull the head straight in.
  if (!events.empty()) {
    cal_start_ns_ = (events.front().when.ns() >> width_shift_) << width_shift_;
  } else if (!overflow_.empty()) {
    cal_start_ns_ =
        (overflow_.top().when.ns() >> width_shift_) << width_shift_;
  } else {
    cal_start_ns_ = (cal_start_ns_ >> width_shift_) << width_shift_;
  }
  cursor_ = static_cast<std::size_t>(cal_start_ns_ >> width_shift_) & mask_;
  reset_horizon_end();

  for (Event& ev : events) {
    const std::int64_t t = ev.when.ns();
    if (t < cal_start_ns_ + width_ns_) {
      insert_ready(std::move(ev));  // due within the cursor window
    } else if (t < horizon_end_ns_) {
      buckets_[static_cast<std::size_t>(t >> width_shift_) & mask_].push_back(
          std::move(ev));
      ++wheel_count_;
    } else {
      if (t < overflow_min_ns_) overflow_min_ns_ = t;
      overflow_.push(std::move(ev));
    }
  }
  // A wider ring may now cover events that waited in the overflow heap.
  migrate_overflow();
}

}  // namespace greencc::sim
