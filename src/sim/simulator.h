#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace greencc::sim {

/// Discrete-event simulator.
///
/// A single-threaded event loop with a virtual clock. Events scheduled for
/// the same instant execute in scheduling order (a monotonically increasing
/// sequence number breaks ties), which makes every run fully deterministic.
///
/// The event store is pluggable (EventQueueKind): a calendar queue with
/// O(1) amortized operations by default, with the former binary heap kept
/// selectable so the determinism suite can hold both to byte-identical
/// results. Scheduling returns an EventId; cancel_event(id) reclaims a
/// pending event instead of leaving it to fire as a no-op (Timer relies on
/// this for true cancellation).
///
/// Ownership: callbacks are `std::function<void()>`; any state they capture
/// must outlive the simulator run. Network elements typically capture `this`
/// and are owned by the experiment scenario, which also owns the simulator.
class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// `kind` selects the event core; the default is the calendar queue
  /// unless overridden process-wide (set_default_queue_kind or the
  /// GREENCC_EVENT_QUEUE environment variable — "heap" or "calendar").
  explicit Simulator(EventQueueKind kind = default_queue_kind());
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Process-wide default event core. Resolved once from the
  /// GREENCC_EVENT_QUEUE environment variable ("heap" selects the binary
  /// heap; anything else, or unset, the calendar queue).
  static EventQueueKind default_queue_kind();
  /// Override the process-wide default (tests; takes effect for Simulators
  /// constructed afterwards). Thread-safe.
  static void set_default_queue_kind(EventQueueKind kind);

  /// Which event core this simulator runs on.
  EventQueueKind queue_kind() const { return kind_; }
  /// The event core's self-description ("calendar", "binary-heap").
  const char* queue_name() const { return queue_->name(); }

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule `cb` to run `delay` after the current time. Returns a handle
  /// usable with cancel_event() while the event is pending.
  EventId schedule(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedule `cb` at an absolute time (must not be in the past).
  EventId schedule_at(SimTime when, Callback cb);

  /// Reclaim a pending event: its callback is destroyed without running and
  /// it stops counting in pending_events(). Must only be called for an
  /// event that has not yet fired (callers track pending-ness; see Timer).
  void cancel_event(EventId id);

  /// Run until the event queue drains or `stop()` is called.
  void run();

  /// Run until the clock reaches `deadline` (events at exactly `deadline`
  /// still execute) or the queue drains.
  void run_until(SimTime deadline);

  /// Abort the run loop after the current event returns. Safe to call from
  /// another thread (the sweep supervisor's watchdog cutting a stalled
  /// run): the flag is atomic and the loop re-reads it before every
  /// dispatch. Everything else on this class stays single-threaded.
  void stop() { stopped_.store(true, std::memory_order_relaxed); }

  /// True once stop() has been requested and no run has started since.
  /// (run()/run_until() clear the flag on entry, so after a run this
  /// reports whether that run was cut short by stop().)
  bool stop_requested() const {
    return stopped_.load(std::memory_order_relaxed);
  }

  /// Cap the total number of events this simulator may execute (counted by
  /// `events_executed()`, i.e. over the simulator's lifetime, not per run).
  /// When the cap is reached, run()/run_until() return instead of spinning
  /// forever on a pathological scenario, and `budget_exhausted()` reports
  /// why. 0 (the default) means unlimited.
  void set_event_budget(std::uint64_t budget) { event_budget_ = budget; }
  std::uint64_t event_budget() const { return event_budget_; }
  bool budget_exhausted() const {
    return event_budget_ != 0 && events_executed_ >= event_budget_;
  }

  /// Number of events executed so far (instrumentation / microbenchmarks).
  /// Cancelled events never execute and never count.
  std::uint64_t events_executed() const { return events_executed_; }

  /// Number of live events waiting in the queue. Cancelled events stop
  /// counting the moment cancel_event() reclaims them.
  std::size_t pending_events() const { return queue_->size(); }

  /// High-water mark of `pending_events()` over the simulator's lifetime —
  /// the run-profiling figure that bounds event-queue memory and per-event
  /// cost.
  std::size_t peak_pending_events() const { return peak_pending_; }

 private:
  bool dispatch_next();

  SimTime now_ = SimTime::zero();
  EventQueueKind kind_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t event_budget_ = 0;  // 0 = unlimited
  std::size_t peak_pending_ = 0;
  // Atomic so a watchdog thread can cut a run; see stop().
  std::atomic<bool> stopped_{false};
  std::unique_ptr<EventQueue> queue_;
};

/// One-shot, re-armable timer (the pattern used for TCP retransmission
/// timeouts).
///
/// Re-arming a timer on every ACK would flood the event queue with events.
/// Instead the timer keeps at most one pending simulator event: when the
/// deadline is pushed *out*, the pending event is kept and silently
/// re-schedules itself on firing (one event per deadline horizon, not per
/// arm); when the deadline is pulled *in* or the timer is cancelled, the
/// pending event is reclaimed through Simulator::cancel_event — nothing
/// stale stays behind to distort pending-event counts or queue costs.
///
/// Lifetime: the timer must not outlive the simulator. Destruction cancels
/// the pending event, so the callback can safely capture `this`.
class Timer {
 public:
  /// `on_expire` runs when the armed deadline passes. The callback must
  /// outlive the timer.
  Timer(Simulator& sim, std::function<void()> on_expire)
      : sim_(sim), on_expire_(std::move(on_expire)) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { cancel(); }

  /// (Re)arm to fire `delay` from now. Replaces any previous deadline.
  void arm(SimTime delay);

  /// Disarm and reclaim the pending simulator event, if any.
  void cancel();

  bool armed() const { return armed_; }
  SimTime expiry() const { return expiry_; }

 private:
  void ensure_event_at(SimTime when);
  void on_event();

  Simulator& sim_;
  std::function<void()> on_expire_;
  bool armed_ = false;
  SimTime expiry_ = SimTime::zero();
  bool event_pending_ = false;
  SimTime event_time_ = SimTime::zero();
  EventId event_id_ = kInvalidEventId;
};

}  // namespace greencc::sim
