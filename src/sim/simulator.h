#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace greencc::sim {

/// Discrete-event simulator.
///
/// A single-threaded event loop with a virtual clock. Events scheduled for
/// the same instant execute in scheduling order (a monotonically increasing
/// sequence number breaks ties), which makes every run fully deterministic.
///
/// Ownership: callbacks are `std::function<void()>`; any state they capture
/// must outlive the simulator run. Network elements typically capture `this`
/// and are owned by the experiment scenario, which also owns the simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule `cb` to run `delay` after the current time.
  void schedule(SimTime delay, Callback cb) { schedule_at(now_ + delay, std::move(cb)); }

  /// Schedule `cb` at an absolute time (must not be in the past).
  void schedule_at(SimTime when, Callback cb);

  /// Run until the event queue drains or `stop()` is called.
  void run();

  /// Run until the clock reaches `deadline` (events at exactly `deadline`
  /// still execute) or the queue drains.
  void run_until(SimTime deadline);

  /// Abort the run loop after the current event returns. Safe to call from
  /// another thread (the sweep supervisor's watchdog cutting a stalled
  /// run): the flag is atomic and the loop re-reads it before every
  /// dispatch. Everything else on this class stays single-threaded.
  void stop() { stopped_.store(true, std::memory_order_relaxed); }

  /// True once stop() has been requested and no run has started since.
  /// (run()/run_until() clear the flag on entry, so after a run this
  /// reports whether that run was cut short by stop().)
  bool stop_requested() const {
    return stopped_.load(std::memory_order_relaxed);
  }

  /// Cap the total number of events this simulator may execute (counted by
  /// `events_executed()`, i.e. over the simulator's lifetime, not per run).
  /// When the cap is reached, run()/run_until() return instead of spinning
  /// forever on a pathological scenario, and `budget_exhausted()` reports
  /// why. 0 (the default) means unlimited.
  void set_event_budget(std::uint64_t budget) { event_budget_ = budget; }
  std::uint64_t event_budget() const { return event_budget_; }
  bool budget_exhausted() const {
    return event_budget_ != 0 && events_executed_ >= event_budget_;
  }

  /// Number of events executed so far (instrumentation / microbenchmarks).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Number of events waiting in the queue.
  std::size_t pending_events() const { return queue_.size(); }

  /// High-water mark of `pending_events()` over the simulator's lifetime —
  /// the run-profiling figure that bounds event-queue memory and heap-op
  /// cost (push/pop are O(log pending)).
  std::size_t peak_pending_events() const { return peak_pending_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool dispatch_next();

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t event_budget_ = 0;  // 0 = unlimited
  std::size_t peak_pending_ = 0;
  // Atomic so a watchdog thread can cut a run; see stop().
  std::atomic<bool> stopped_{false};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// One-shot, re-armable timer (the pattern used for TCP retransmission
/// timeouts).
///
/// Re-arming a timer on every ACK would flood the event queue with stale
/// events. Instead the timer keeps at most one pending simulator event: when
/// that event fires before the desired expiry (because the deadline was
/// pushed out in the meantime) it silently re-schedules itself for the
/// current deadline.
class Timer {
 public:
  /// `on_expire` runs when the armed deadline passes. The callback must
  /// outlive the timer.
  Timer(Simulator& sim, std::function<void()> on_expire)
      : sim_(sim), on_expire_(std::move(on_expire)) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { cancel(); }

  /// (Re)arm to fire `delay` from now. Replaces any previous deadline.
  void arm(SimTime delay);

  /// Disarm; a pending simulator event becomes a no-op.
  void cancel() { armed_ = false; }

  bool armed() const { return armed_; }
  SimTime expiry() const { return expiry_; }

 private:
  void ensure_event_at(SimTime when);
  void on_event();

  Simulator& sim_;
  std::function<void()> on_expire_;
  bool armed_ = false;
  SimTime expiry_ = SimTime::zero();
  bool event_pending_ = false;
  SimTime event_time_ = SimTime::zero();
  // Liveness guard: a pending simulator event holds a weak reference to this
  // flag, so an event firing after the timer's destruction is a no-op rather
  // than a use-after-free.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace greencc::sim
