#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace greencc::sim {

/// Simulated time with nanosecond resolution.
///
/// A strong type wrapping a signed 64-bit nanosecond count. The range
/// (+/- ~292 years) is far beyond any experiment length. All simulator,
/// network and transport code exchanges `SimTime` values rather than raw
/// integers so that unit mistakes (e.g. microseconds where nanoseconds were
/// meant) cannot compile silently.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Factory functions make the unit explicit at every construction site.
  static constexpr SimTime nanoseconds(std::int64_t ns) { return SimTime{ns}; }
  static constexpr SimTime microseconds(std::int64_t us) {
    return SimTime{us * 1'000};
  }
  static constexpr SimTime milliseconds(std::int64_t ms) {
    return SimTime{ms * 1'000'000};
  }
  static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }
  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() { return SimTime{INT64_MAX}; }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns_ - b.ns_};
  }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return a * k; }
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ / k};
  }
  /// Ratio of two durations (e.g. rtt / min_rtt).
  friend constexpr double operator/(SimTime a, SimTime b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  /// Scale a duration by a floating point factor (used by pacing math).
  constexpr SimTime scaled(double f) const {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(ns_) * f)};
  }

  std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// Duration needed to serialize `bytes` onto a link of `bits_per_sec`.
constexpr SimTime serialization_delay(std::int64_t bytes, double bits_per_sec) {
  return SimTime::nanoseconds(
      static_cast<std::int64_t>(static_cast<double>(bytes) * 8.0 * 1e9 /
                                bits_per_sec));
}

}  // namespace greencc::sim
