#include "sim/rng.h"

#include <cmath>

namespace greencc::sim {

double Rng::exponential(double mean) {
  // Inverse-CDF sampling; 1 - u avoids log(0).
  return -mean * std::log(1.0 - next_double());
}

double Rng::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
    // lint-allow: float-eq (exact rejection bound of Marsaglia polar)
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return mean + stddev * u * factor;
}

}  // namespace greencc::sim
