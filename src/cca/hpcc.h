#pragma once

#include <array>

#include "cca/cca.h"

namespace greencc::cca {

/// HPCC (Li et al., SIGCOMM 2019) — High Precision Congestion Control,
/// driven by per-hop in-band network telemetry (INT) from programmable
/// switches; the third production algorithm the paper's §5 names.
///
/// Every ACK carries the INT stack the data packet collected (cumulative
/// txBytes, queue depth, timestamp and speed per hop). The sender computes
/// each link's normalized inflight
///
///   U_j = qlen / (B_j * T) + txRate_j / B_j
///
/// takes the bottleneck max, and sets the window multiplicatively towards
/// the 95% utilization target eta with a small additive probe:
///
///   W = W_c / (maxU / eta) + W_ai
///
/// with the reference window W_c updated once per RTT (at most maxStage
/// multiplicative steps per reference update, as in the paper's Alg. 1).
class Hpcc final : public CongestionControl {
 public:
  explicit Hpcc(const CcaConfig& config)
      : config_(config),
        base_rtt_(config.expected_rtt),
        cwnd_(bdp_segments()),
        w_c_(cwnd_) {}

  bool wants_int() const override { return true; }

  void on_ack(const AckEvent& ev) override {
    if (ev.int_count == 0) return;  // no telemetry, nothing to react to

    // Per-RTT reference update: when everything sent at the last update
    // has been delivered, commit W as the new reference W_c.
    if (ev.delivered >= next_update_delivered_) {
      w_c_ = cwnd_;
      inc_stage_ = 0;
      next_update_delivered_ = ev.delivered + ev.inflight;
    }

    const double max_u = measure_inflight(ev);
    if (max_u <= 0.0) return;

    const double k = std::max(max_u / kEta, 1e-3);
    double w_new = w_c_ / k + kWai;
    if (max_u < kEta && inc_stage_ >= kMaxStage) {
      // Utilization below target and we already probed maxStage times
      // against this reference: take the faster direct update.
      w_new = cwnd_ / k + kWai;
      w_c_ = w_new;
      inc_stage_ = 0;
      next_update_delivered_ = ev.delivered + ev.inflight;
    } else {
      ++inc_stage_;
    }
    cwnd_ = std::clamp(w_new, kMinCwnd, 2.0 * bdp_segments());
  }

  void on_loss(const LossEvent&) override {
    // INT sees congestion long before loss; on an actual loss halve.
    cwnd_ = std::max(kMinCwnd, cwnd_ * 0.5);
  }

  void on_rto(sim::SimTime) override { cwnd_ = kMinCwnd; }

  double cwnd_segments() const override { return cwnd_; }

  units::BitRate pacing_rate() const override {
    // Pace the window over the base RTT (HPCC is window-limited + paced).
    return units::BitRate::bps(
        cwnd_ * static_cast<double>(config_.mss_bytes.count()) *
        units::kBitsPerByteF / base_rtt_.sec());
  }

  energy::CcaCost cost() const override {
    // Per-hop INT parsing and the utilization math dominate; the SIGCOMM
    // paper implements this in NIC hardware precisely because it is heavy.
    return {.per_ack_ns = 180.0, .per_packet_ns = 20.0};
  }

  std::string name() const override { return "hpcc"; }

  double last_max_utilization() const { return last_max_u_; }

 private:
  double bdp_segments() const {
    return std::max(kMinCwnd,
                    config_.line_rate.bps() * base_rtt_.sec() /
                        (static_cast<double>(config_.mss_bytes.count()) *
                         units::kBitsPerByteF));
  }

  /// Max over hops of the normalized inflight U_j; keeps the previous INT
  /// stack for the txRate finite difference.
  double measure_inflight(const AckEvent& ev) {
    double max_u = 0.0;
    for (std::uint8_t i = 0; i < ev.int_count && i < ev.int_hops.size();
         ++i) {
      const auto& hop = ev.int_hops[i];
      const auto& prev = prev_hops_[i];
      double u = static_cast<double>(hop.qlen_bytes.count()) *
                 units::kBitsPerByteF /
                 (hop.link_rate.bps() * base_rtt_.sec());
      if (have_prev_ && hop.ts > prev.ts) {
        const units::BitRate tx_rate = units::BitRate::bps(
            static_cast<double>((hop.tx_bytes - prev.tx_bytes).count()) *
            units::kBitsPerByteF / (hop.ts - prev.ts).sec());
        u += tx_rate / hop.link_rate;
      }
      max_u = std::max(max_u, u);
    }
    prev_hops_ = ev.int_hops;
    have_prev_ = true;
    // EWMA over roughly one base RTT, as in Alg. 1's tau/T weighting.
    last_max_u_ = have_u_ ? 0.8 * last_max_u_ + 0.2 * max_u : max_u;
    have_u_ = true;
    return last_max_u_;
  }

  static constexpr double kEta = 0.95;   // target utilization
  static constexpr double kWai = 0.08;   // additive probe (segments)
  static constexpr int kMaxStage = 5;
  static constexpr double kMinCwnd = 1.0;

  CcaConfig config_;
  sim::SimTime base_rtt_;
  double cwnd_;
  double w_c_;
  int inc_stage_ = 0;
  std::int64_t next_update_delivered_ = 0;
  std::array<net::IntRecord, 4> prev_hops_{};
  bool have_prev_ = false;
  double last_max_u_ = 0.0;
  bool have_u_ = false;
};

}  // namespace greencc::cca
