#pragma once

#include "cca/loss_based.h"

namespace greencc::cca {

/// TCP Vegas (Brakmo et al. 1994, Linux tcp_vegas.c): delay-based
/// congestion avoidance. Once per RTT, compare the expected rate
/// (cwnd/baseRTT) to the actual rate (cwnd/RTT); the difference in segments
/// queued at the bottleneck steers the window:
///
///   diff = cwnd * (RTT - baseRTT) / RTT
///   diff < alpha (2): grow by one segment per RTT
///   diff > beta  (4): shrink by one segment per RTT
///
/// Falls back to Reno behaviour in slow start and on loss.
class Vegas final : public LossBasedCca {
 public:
  using LossBasedCca::LossBasedCca;

  std::string name() const override { return "vegas"; }

  energy::CcaCost cost() const override {
    // Two divides and the min-RTT bookkeeping per ACK.
    return {.per_ack_ns = 130.0, .per_packet_ns = 0.0};
  }

  void on_ack(const AckEvent& ev) override {
    if (ev.rtt > sim::SimTime::zero() &&
        (base_rtt_ == sim::SimTime::zero() || ev.rtt < base_rtt_)) {
      base_rtt_ = ev.rtt;
    }
    if (ev.rtt > sim::SimTime::zero()) {
      min_rtt_this_epoch_ = min_rtt_this_epoch_ == sim::SimTime::zero()
                                ? ev.rtt
                                : std::min(min_rtt_this_epoch_, ev.rtt);
    }
    if (ev.in_recovery || ev.acked_segments <= 0) return;

    if (in_slow_start()) {
      // Vegas doubles every *other* RTT in slow start; approximating with
      // standard slow start changes only the first few RTTs of a transfer.
      LossBasedCca::on_ack(ev);
      epoch_start_ = ev.now;
      return;
    }

    // One adjustment per RTT epoch.
    if (ev.srtt > sim::SimTime::zero() && ev.now - epoch_start_ >= ev.srtt &&
        base_rtt_ > sim::SimTime::zero() &&
        min_rtt_this_epoch_ > sim::SimTime::zero()) {
      const double rtt = min_rtt_this_epoch_.sec();
      const double diff = cwnd_ * (rtt - base_rtt_.sec()) / rtt;
      if (diff < kAlpha) {
        if (ev.cwnd_limited) cwnd_ += 1.0;
      } else if (diff > kBeta) {
        cwnd_ -= 1.0;
      }
      clamp();
      epoch_start_ = ev.now;
      min_rtt_this_epoch_ = sim::SimTime::zero();
    }
  }

 protected:
  void congestion_avoidance(const AckEvent&) override {
    // Handled by the per-RTT epoch logic in on_ack().
  }

 private:
  static constexpr double kAlpha = 2.0;
  static constexpr double kBeta = 4.0;

  sim::SimTime base_rtt_ = sim::SimTime::zero();
  sim::SimTime min_rtt_this_epoch_ = sim::SimTime::zero();
  sim::SimTime epoch_start_ = sim::SimTime::zero();
};

}  // namespace greencc::cca
