#include "cca/bbr.h"

#include <algorithm>

namespace greencc::cca {

namespace {
constexpr double kDrainGain = 1.0 / 2.885;
constexpr double kProbeGainUp = 1.25;
constexpr double kProbeGainDown = 0.75;
constexpr int kGainCycleLength = 8;
constexpr double kMinCwnd = 4.0;
}  // namespace

Bbr::Bbr(const CcaConfig& config) : config_(config) {
  pacing_gain_ = startup_gain();
  cwnd_gain_ = startup_gain();
  // Until the first bandwidth sample, pace at an initial-window estimate,
  // as the kernel does (IW over the initial RTT estimate).
  btl_bw_bps_ = static_cast<double>(config.initial_cwnd) *
                static_cast<double>(config.mss_bytes.count()) *
                units::kBitsPerByteF / config.expected_rtt.sec();
}

double Bbr::bdp_segments() const {
  if (btl_bw_bps_ <= 0.0 || rt_prop_ == sim::SimTime::zero()) {
    return static_cast<double>(config_.initial_cwnd);
  }
  return btl_bw_bps_ * rt_prop_.sec() /
         (static_cast<double>(config_.mss_bytes.count()) *
          units::kBitsPerByteF);
}

void Bbr::update_filters(const AckEvent& ev) {
  // Round accounting: a round trip ends when data sent after the previous
  // round's end is delivered. Rounds are frozen during PROBE_RTT: with the
  // window clamped to 4 segments, "rounds" would tick every 4 delivered
  // segments and age the real bandwidth estimate out of the max filter.
  if (ev.delivered >= next_round_delivered_ && mode_ != Mode::kProbeRtt) {
    next_round_delivered_ = ev.delivered + ev.inflight;
    ++round_count_;
  }

  // RTprop min filter with expiry. The expiry flag is latched *before* the
  // stamp refresh: it is what sends v1 into PROBE_RTT (the kernel's
  // bbr_update_min_rtt does the same).
  if (ev.rtt > sim::SimTime::zero()) {
    rt_prop_expired_ = rt_prop_stamp_ > sim::SimTime::zero() &&
                       ev.now > rt_prop_stamp_ + probe_rtt_interval();
    if (rt_prop_ == sim::SimTime::zero() || ev.rtt <= rt_prop_ ||
        rt_prop_expired_) {
      rt_prop_ = ev.rtt;
      rt_prop_stamp_ = ev.now;
    }
  }

  // BtlBw max filter over the last 10 rounds. App-limited samples only
  // raise the estimate, never refresh it (they understate capacity).
  if (ev.delivery_rate.bps() > 0.0 &&
      (!ev.app_limited || ev.delivery_rate.bps() > btl_bw_bps_)) {
    auto& slot = bw_window_[static_cast<std::size_t>(round_count_ % 10)];
    if (slot.round != round_count_) {
      slot = {0.0, round_count_};
    }
    slot.bps = std::max(slot.bps, ev.delivery_rate.bps());
    double max_bw = 0.0;
    for (const auto& s : bw_window_) {
      if (round_count_ - s.round < 10) max_bw = std::max(max_bw, s.bps);
    }
    if (max_bw > 0.0) btl_bw_bps_ = max_bw;
  }
}

void Bbr::advance_mode(const AckEvent& ev) {
  switch (mode_) {
    case Mode::kStartup: {
      // Full pipe: bandwidth grew <25% for 3 consecutive rounds.
      if (btl_bw_bps_ > full_bw_ * 1.25) {
        full_bw_ = btl_bw_bps_;
        full_bw_rounds_ = 0;
      } else if (ev.delivered >= next_round_delivered_ - ev.inflight) {
        // Evaluated once per round; round_count_ increments handled above.
      }
      if (btl_bw_bps_ <= full_bw_ * 1.25 && round_count_ > last_full_check_) {
        ++full_bw_rounds_;
        last_full_check_ = round_count_;
      }
      if (full_bw_rounds_ >= 3) {
        mode_ = Mode::kDrain;
        pacing_gain_ = kDrainGain;
        cwnd_gain_ = startup_gain();
      }
      break;
    }
    case Mode::kDrain:
      if (static_cast<double>(ev.inflight) <= bdp_segments()) {
        mode_ = Mode::kProbeBw;
        cycle_index_ = 0;
        cycle_stamp_ = ev.now;
        pacing_gain_ = kProbeGainUp;
        cwnd_gain_ = 2.0;
      }
      break;
    case Mode::kProbeBw: {
      if (rt_prop_ > sim::SimTime::zero() &&
          ev.now - cycle_stamp_ >= rt_prop_) {
        cycle_index_ = (cycle_index_ + 1) % kGainCycleLength;
        cycle_stamp_ = ev.now;
      }
      if (cycle_index_ == 0) {
        pacing_gain_ = kProbeGainUp;
      } else if (cycle_index_ == 1) {
        pacing_gain_ = kProbeGainDown;
      } else {
        pacing_gain_ = cruise_gain();
      }
      cwnd_gain_ = 2.0;
      // Time to re-probe min RTT?
      const bool probe_due = probe_on_fixed_timer()
                                 ? ev.now - last_probe_stamp_ >
                                       probe_rtt_interval()
                                 : rt_prop_expired_;
      if (probe_due) {
        mode_ = Mode::kProbeRtt;
        probe_rtt_done_ = ev.now + probe_rtt_duration();
        pacing_gain_ = 1.0;
      }
      break;
    }
    case Mode::kProbeRtt:
      rt_prop_expired_ = false;
      if (ev.now >= probe_rtt_done_) {
        rt_prop_stamp_ = ev.now;
        last_probe_stamp_ = ev.now;
        mode_ = Mode::kProbeBw;
        cycle_index_ = 2;  // resume cruising
        cycle_stamp_ = ev.now;
        pacing_gain_ = cruise_gain();
        cwnd_gain_ = 2.0;
      }
      break;
  }
}

void Bbr::on_ack(const AckEvent& ev) {
  last_inflight_ = ev.inflight;
  update_filters(ev);
  advance_mode(ev);
}

void Bbr::on_loss(const LossEvent&) {
  // v1 deliberately does not react to individual losses.
}

void Bbr::on_rto(sim::SimTime) {
  // Conservative restart, mirroring bbr_undo/loss-recovery interplay: keep
  // the model but restart the cycle.
  mode_ = Mode::kStartup;
  pacing_gain_ = startup_gain();
  cwnd_gain_ = startup_gain();
  full_bw_ = 0.0;
  full_bw_rounds_ = 0;
}

double Bbr::cwnd_segments() const {
  if (mode_ == Mode::kProbeRtt) return kMinCwnd;
  return std::max(kMinCwnd, cwnd_gain_ * bdp_segments());
}

units::BitRate Bbr::pacing_rate() const {
  return units::BitRate::bps(std::max(1e6, pacing_gain_ * btl_bw_bps_));
}

void Bbr2Alpha::on_ack(const AckEvent& ev) {
  Bbr::on_ack(ev);
  // v2 probes the inflight bound back up slowly when loss stays absent.
  if (inflight_hi_ < 1e17 && !ev.in_recovery) {
    inflight_hi_ += 0.02 * static_cast<double>(ev.acked_segments);
  }
}

void Bbr2Alpha::on_loss(const LossEvent& ev) {
  // v2 mechanism: bound inflight at beta * the inflight that saw loss.
  inflight_hi_ = std::max(kMinCwnd, 0.7 * static_cast<double>(ev.inflight));
}

double Bbr2Alpha::cwnd_segments() const {
  return std::min(Bbr::cwnd_segments(), inflight_hi_);
}

}  // namespace greencc::cca
