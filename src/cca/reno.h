#pragma once

#include "cca/loss_based.h"

namespace greencc::cca {

/// TCP Reno / NewReno congestion avoidance (RFC 5681): cwnd grows by one
/// segment per RTT (1/cwnd per ACKed segment), halves on loss.
class Reno final : public LossBasedCca {
 public:
  using LossBasedCca::LossBasedCca;

  std::string name() const override { return "reno"; }

  energy::CcaCost cost() const override {
    // One addition and one divide per ACK in tcp_reno_cong_avoid().
    return {.per_ack_ns = 70.0, .per_packet_ns = 0.0};
  }

 protected:
  void congestion_avoidance(const AckEvent& ev) override {
    cwnd_ += static_cast<double>(ev.acked_segments) / cwnd_;
  }
};

/// The paper's custom baseline module: congestion control disabled, cwnd
/// pinned to a large constant. "It uses a constantly large cwnd value while
/// running the same logic for other TCP mechanisms, i.e., retransmission
/// timeouts, selective acknowledgments, and loss recovery" (§4.3). The
/// paper warns this collapses with competing flows; benches only ever run it
/// alone, like the paper does.
class ConstantCwndBaseline final : public CongestionControl {
 public:
  explicit ConstantCwndBaseline(const CcaConfig& config, double cwnd = 10000.0)
      : config_(config), cwnd_(cwnd) {}

  void on_ack(const AckEvent&) override {}
  void on_loss(const LossEvent&) override {}
  void on_rto(sim::SimTime) override {}

  double cwnd_segments() const override { return cwnd_; }

  energy::CcaCost cost() const override {
    // No cwnd computation at all.
    return {.per_ack_ns = 25.0, .per_packet_ns = 0.0};
  }

  std::string name() const override { return "baseline"; }

 private:
  [[maybe_unused]] CcaConfig config_;
  double cwnd_;
};

}  // namespace greencc::cca
