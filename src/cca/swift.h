#pragma once

#include <algorithm>
#include <cmath>

#include "cca/cca.h"

namespace greencc::cca {

/// Swift (Kumar et al., SIGCOMM 2020) — Google's production delay-based
/// datacenter congestion control, one of the three algorithms the paper's
/// §5 explicitly asks the community to benchmark.
///
/// Core rule: keep the end-to-end delay at a *target* that scales with the
/// flow's share (smaller windows tolerate more delay):
///
///   target = base_target + fs_alpha / sqrt(cwnd) bounded by fs_range
///   delay <= target : additive increase (ai per RTT)
///   delay  > target : multiplicative decrease proportional to the
///                     overshoot, at most once per RTT, capped at max_mdf
///
/// Swift's sub-one-packet cwnd (pacing below 1) is clamped at one segment
/// here; at the datacenter BDPs of the paper's testbed the clamp is not
/// reached. Hop-count scaling of the target is folded into base_target
/// (the simulated path has a fixed hop count).
class Swift final : public CongestionControl {
 public:
  explicit Swift(const CcaConfig& config)
      : config_(config),
        cwnd_(static_cast<double>(config.initial_cwnd)),
        base_target_(config.expected_rtt * 2) {}

  void on_ack(const AckEvent& ev) override {
    if (ev.acked_segments <= 0 || ev.rtt <= sim::SimTime::zero()) return;
    const double delay = ev.rtt.sec();
    const double target = target_delay_sec();

    if (delay <= target) {
      if (ev.cwnd_limited && !ev.in_recovery) {
        // Additive increase: ai segments per RTT.
        cwnd_ += kAi * static_cast<double>(ev.acked_segments) / cwnd_;
      }
    } else if (can_decrease(ev.now)) {
      const double factor =
          std::max(1.0 - kBeta * (delay - target) / delay, 1.0 - kMaxMdf);
      cwnd_ *= factor;
      last_decrease_ = ev.now;
    }
    clamp();
  }

  void on_loss(const LossEvent& ev) override {
    if (can_decrease(ev.now)) {
      cwnd_ *= 1.0 - kMaxMdf;
      last_decrease_ = ev.now;
      clamp();
    }
  }

  void on_rto(sim::SimTime now) override {
    cwnd_ = kMinCwnd;
    last_decrease_ = now;
  }

  double cwnd_segments() const override { return cwnd_; }

  energy::CcaCost cost() const override {
    // Target computation (sqrt), delay comparison and the pacing-adjacent
    // bookkeeping of the production implementation.
    return {.per_ack_ns = 90.0, .per_packet_ns = 10.0};
  }

  std::string name() const override { return "swift"; }

  double target_delay_sec() const {
    const double fs =
        std::clamp(kFsAlpha / std::sqrt(std::max(cwnd_, 1.0)), 0.0, kFsRange);
    return base_target_.sec() + fs;
  }

 private:
  bool can_decrease(sim::SimTime now) const {
    // At most one multiplicative decrease per RTT-ish interval.
    return last_decrease_ == sim::SimTime::zero() ||
           now - last_decrease_ >= base_target_;
  }

  void clamp() { cwnd_ = std::clamp(cwnd_, kMinCwnd, 1.0e6); }

  static constexpr double kAi = 1.0;       // segments per RTT
  static constexpr double kBeta = 0.8;     // decrease responsiveness
  static constexpr double kMaxMdf = 0.5;   // max multiplicative decrease
  static constexpr double kMinCwnd = 1.0;
  static constexpr double kFsAlpha = 4e-5;  // flow-scaling numerator (s)
  static constexpr double kFsRange = 1e-4;  // flow-scaling bound (s)

  CcaConfig config_;
  double cwnd_;
  sim::SimTime base_target_;
  sim::SimTime last_decrease_ = sim::SimTime::zero();
};

}  // namespace greencc::cca
