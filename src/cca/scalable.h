#pragma once

#include "cca/loss_based.h"

namespace greencc::cca {

/// Scalable TCP (Kelly 2003): MIMD — cwnd += 0.01 per ACKed segment in
/// congestion avoidance, cwnd *= 0.875 on loss. Matches Linux
/// tcp_scalable.c (TCP_SCALABLE_AI_CNT = 100, MD factor 1/8).
class Scalable final : public LossBasedCca {
 public:
  using LossBasedCca::LossBasedCca;

  std::string name() const override { return "scalable"; }

  energy::CcaCost cost() const override {
    return {.per_ack_ns = 70.0, .per_packet_ns = 0.0};
  }

 protected:
  void congestion_avoidance(const AckEvent& ev) override {
    cwnd_ += 0.01 * static_cast<double>(ev.acked_segments);
  }

  double decrease_target(const LossEvent& ev) override {
    return std::max(static_cast<double>(ev.inflight), cwnd_) * 0.875;
  }
};

}  // namespace greencc::cca
