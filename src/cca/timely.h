#pragma once

#include <algorithm>

#include "cca/cca.h"

namespace greencc::cca {

/// TIMELY (Mittal et al., SIGCOMM 2015) — RTT-gradient rate control, the
/// delay-based counterpart of DCQCN in the datacenter CC literature the
/// paper's §5 surveys (via the DCQCN-vs-TIMELY analysis it cites).
///
/// Per RTT sample:
///   rtt_diff <- (1-a)*rtt_diff + a*(rtt - prev_rtt)
///   g = rtt_diff / min_rtt            (normalized gradient)
///   rtt < T_low  : rate += delta      (additive probe)
///   rtt > T_high : rate *= 1 - b*(1 - T_high/rtt)
///   otherwise    : g <= 0 ? rate += N*delta (HAI after 5 good samples)
///                         : rate *= (1 - b*g)
class Timely final : public CongestionControl {
 public:
  explicit Timely(const CcaConfig& config)
      : config_(config),
        rate_bps_(config.line_rate.bps() * 0.1),
        t_low_(config.expected_rtt * 2),
        t_high_(config.expected_rtt * 10) {}

  void on_ack(const AckEvent& ev) override {
    if (ev.rtt <= sim::SimTime::zero()) return;
    const double rtt = ev.rtt.sec();
    // lint-allow: float-eq (0.0 is the exact "no sample yet" sentinel)
    if (prev_rtt_ == 0.0) {
      prev_rtt_ = rtt;
      return;
    }
    rtt_diff_ = (1.0 - kAlpha) * rtt_diff_ + kAlpha * (rtt - prev_rtt_);
    prev_rtt_ = rtt;
    const double min_rtt = ev.min_rtt > sim::SimTime::zero()
                               ? ev.min_rtt.sec()
                               : config_.expected_rtt.sec();
    const double gradient = rtt_diff_ / min_rtt;

    if (rtt < t_low_.sec()) {
      rate_bps_ += kDeltaBps;
      hai_count_ = 0;
    } else if (rtt > t_high_.sec()) {
      rate_bps_ *= 1.0 - kBeta * (1.0 - t_high_.sec() / rtt);
      hai_count_ = 0;
    } else if (gradient <= 0.0) {
      const int n = ++hai_count_ >= kHaiThreshold ? 5 : 1;
      rate_bps_ += n * kDeltaBps;
    } else {
      rate_bps_ *= 1.0 - kBeta * std::min(gradient, 1.0);
      hai_count_ = 0;
    }
    rate_bps_ = std::clamp(rate_bps_, kMinRateBps, config_.line_rate.bps());
  }

  void on_loss(const LossEvent&) override {
    rate_bps_ = std::max(kMinRateBps, rate_bps_ * 0.5);
    hai_count_ = 0;
  }

  void on_rto(sim::SimTime) override {
    rate_bps_ = std::max(kMinRateBps, config_.line_rate.bps() * 0.01);
    hai_count_ = 0;
  }

  double cwnd_segments() const override {
    const double bdp = rate_bps_ * (4.0 * config_.expected_rtt.sec()) /
                       (static_cast<double>(config_.mss_bytes.count()) * units::kBitsPerByteF);
    return std::max(4.0, bdp);
  }

  units::BitRate pacing_rate() const override {
    return units::BitRate::bps(rate_bps_);
  }

  energy::CcaCost cost() const override {
    // Gradient filter + rate update per completion event.
    return {.per_ack_ns = 120.0, .per_packet_ns = 15.0};
  }

  std::string name() const override { return "timely"; }

  double rate_bps() const { return rate_bps_; }

 private:
  static constexpr double kAlpha = 0.875;   // gradient EWMA weight
  static constexpr double kBeta = 0.8;      // multiplicative decrease
  static constexpr double kDeltaBps = 10e6; // additive step (10 Mb/s)
  static constexpr int kHaiThreshold = 5;
  static constexpr double kMinRateBps = 10e6;

  CcaConfig config_;
  double rate_bps_;
  sim::SimTime t_low_;
  sim::SimTime t_high_;
  double prev_rtt_ = 0.0;
  double rtt_diff_ = 0.0;
  int hai_count_ = 0;
};

}  // namespace greencc::cca
