#pragma once

#include "cca/loss_based.h"

namespace greencc::cca {

/// TCP Westwood+ (Gerla et al. 2001, Linux tcp_westwood.c): Reno-style
/// growth, but on loss the window is set from an end-to-end bandwidth
/// estimate instead of blind halving:
///
///   ssthresh = BWE * RTTmin / MSS
///
/// The bandwidth estimate is a low-pass filter over per-RTT delivery
/// samples, exactly the (7/8, 1/8) first-order filter the kernel uses.
class Westwood final : public LossBasedCca {
 public:
  using LossBasedCca::LossBasedCca;

  std::string name() const override { return "westwood"; }

  energy::CcaCost cost() const override {
    // Bandwidth filter update + westwood_update_window() per ACK.
    return {.per_ack_ns = 150.0, .per_packet_ns = 0.0};
  }

  void on_ack(const AckEvent& ev) override {
    update_bandwidth(ev);
    LossBasedCca::on_ack(ev);
  }

  double bandwidth_estimate_bps() const { return bw_est_bps_; }

 protected:
  void congestion_avoidance(const AckEvent& ev) override {
    cwnd_ += static_cast<double>(ev.acked_segments) / cwnd_;
  }

  double decrease_target(const LossEvent& ev) override {
    if (bw_est_bps_ <= 0.0 || min_rtt_ == sim::SimTime::zero()) {
      return std::max(static_cast<double>(ev.inflight), cwnd_) / 2.0;
    }
    const double bdp_segments =
        bw_est_bps_ * min_rtt_.sec() /
        (static_cast<double>(config_.mss_bytes.count()) *
         units::kBitsPerByteF);
    return bdp_segments;
  }

 private:
  void update_bandwidth(const AckEvent& ev) {
    if (ev.min_rtt > sim::SimTime::zero() &&
        (min_rtt_ == sim::SimTime::zero() || ev.min_rtt < min_rtt_)) {
      min_rtt_ = ev.min_rtt;
    }
    acked_since_sample_ += ev.acked_segments;
    // One bandwidth sample per RTT, as in westwood_update_window().
    const sim::SimTime interval = ev.now - last_sample_time_;
    if (ev.srtt > sim::SimTime::zero() && interval >= ev.srtt) {
      // Raw bps: feeds the trailing-underscore filter state below.
      const double bw_sample =
          static_cast<double>(acked_since_sample_) *
          static_cast<double>(config_.mss_bytes.count()) *
          units::kBitsPerByteF / interval.sec();
      // First-order filter: new = 7/8 old + 1/8 sample (after seeding).
      // lint-allow: float-eq (0.0 is the exact "unseeded filter" sentinel)
      bw_est_bps_ = bw_est_bps_ == 0.0
                        ? bw_sample
                        : 0.875 * bw_est_bps_ + 0.125 * bw_sample;
      acked_since_sample_ = 0;
      last_sample_time_ = ev.now;
    }
  }

  double bw_est_bps_ = 0.0;
  std::int64_t acked_since_sample_ = 0;
  sim::SimTime last_sample_time_ = sim::SimTime::zero();
  sim::SimTime min_rtt_ = sim::SimTime::zero();
};

}  // namespace greencc::cca
