#pragma once

#include <cmath>

#include "cca/loss_based.h"

namespace greencc::cca {

/// CUBIC (RFC 8312, Linux tcp_cubic.c) — the kernel default and the
/// algorithm of the paper's headline experiments (Figs 1-4).
///
/// After a loss at window W_max, the window follows
///   W(t) = C * (t - K)^3 + W_max,  K = cbrt(W_max * beta_decr / C)
/// so it rises quickly back toward W_max, plateaus, then probes. The
/// TCP-friendly region keeps it at least as aggressive as Reno at small
/// BDPs. Fast convergence lowers W_max when a flow is losing share.
/// HyStart is not modelled (it only alters the first slow start; the
/// paper's transfers are seconds long).
class Cubic final : public LossBasedCca {
 public:
  using LossBasedCca::LossBasedCca;

  std::string name() const override { return "cubic"; }

  energy::CcaCost cost() const override {
    // Cube root + cubic polynomial + TCP-friendly estimate per ACK.
    return {.per_ack_ns = 190.0, .per_packet_ns = 0.0};
  }

 protected:
  void congestion_avoidance(const AckEvent& ev) override {
    if (epoch_start_ == sim::SimTime::zero()) {
      // New epoch: anchor the cubic at the current window.
      epoch_start_ = ev.now;
      if (cwnd_ < w_max_) {
        k_ = std::cbrt((w_max_ - cwnd_) / kC);
        origin_ = w_max_;
      } else {
        k_ = 0.0;
        origin_ = cwnd_;
      }
      w_est_ = cwnd_;
    }

    // Target window a full RTT in the future, as the kernel computes it.
    const double t = (ev.now - epoch_start_ + ev.srtt).sec();
    const double target = origin_ + kC * std::pow(t - k_, 3.0);

    if (target > cwnd_) {
      cwnd_ += (target - cwnd_) / cwnd_ *
               static_cast<double>(ev.acked_segments);
    } else {
      // Plateau: probe very slowly (1% of a segment per RTT equivalent).
      cwnd_ += 0.01 * static_cast<double>(ev.acked_segments) / cwnd_;
    }

    // TCP-friendly region (RFC 8312 §4.2): W_est grows Reno-like with the
    // AIMD factor 3*b/(2-b).
    const double b = 1.0 - kBeta;
    w_est_ += 3.0 * b / (2.0 - b) * static_cast<double>(ev.acked_segments) /
              cwnd_;
    if (w_est_ > cwnd_) cwnd_ = w_est_;
  }

  double decrease_target(const LossEvent& ev) override {
    const double w = std::max(static_cast<double>(ev.inflight), cwnd_);
    // Fast convergence: release bandwidth when W_max is trending down.
    w_max_ = w < w_max_ ? w * (2.0 - kBeta) / 2.0 : w;
    epoch_start_ = sim::SimTime::zero();
    return w * kBeta;
  }

  void on_rto_reset() { epoch_start_ = sim::SimTime::zero(); }

 public:
  void on_rto(sim::SimTime now) override {
    LossBasedCca::on_rto(now);
    epoch_start_ = sim::SimTime::zero();
    w_max_ = 0.0;
  }

 private:
  static constexpr double kC = 0.4;     // cubic scaling constant
  static constexpr double kBeta = 0.7;  // multiplicative decrease factor

  double w_max_ = 0.0;
  double origin_ = 0.0;
  double k_ = 0.0;
  double w_est_ = 0.0;
  sim::SimTime epoch_start_ = sim::SimTime::zero();
};

}  // namespace greencc::cca
