#pragma once

#include <array>
#include <cstdint>

#include "cca/cca.h"

namespace greencc::cca {

/// BBR v1 (Cardwell et al. 2017, Linux tcp_bbr.c), model-based congestion
/// control: estimate the bottleneck bandwidth (windowed-max of delivery-rate
/// samples) and the round-trip propagation delay (windowed-min RTT), pace at
/// gain * BtlBw and cap inflight at cwnd_gain * BDP.
///
/// The four phases of the kernel implementation are modelled:
///   STARTUP   - pacing gain 2/ln2 until bandwidth stops growing (3 rounds
///               without 25% growth), then
///   DRAIN     - inverse gain until inflight <= BDP, then
///   PROBE_BW  - the 8-phase gain cycle [1.25, 0.75, 1 x6], and
///   PROBE_RTT - every 10 s, cwnd down to 4 for 200 ms to re-measure RTprop.
///
/// Loss is ignored by design (v1); only the transport's RTO path resets us.
class Bbr : public CongestionControl {
 public:
  explicit Bbr(const CcaConfig& config);

  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  void on_rto(sim::SimTime now) override;

  double cwnd_segments() const override;
  units::BitRate pacing_rate() const override;

  energy::CcaCost cost() const override {
    // Max/min filter updates, BDP math and pacing-rate computation per
    // ACK, plus per-packet pacing/TSO-split work on the transmit path.
    return {.per_ack_ns = 260.0, .per_packet_ns = 40.0};
  }

  std::string name() const override { return "bbr"; }

  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };
  Mode mode() const { return mode_; }
  double btl_bw_bps() const { return btl_bw_bps_; }
  sim::SimTime rt_prop() const { return rt_prop_; }

 protected:
  // Tunables overridden by the BBR2-alpha subclass.
  virtual double startup_gain() const { return 2.885; }
  virtual double cruise_gain() const { return 1.0; }
  virtual sim::SimTime probe_rtt_interval() const {
    return sim::SimTime::seconds(10.0);
  }
  virtual sim::SimTime probe_rtt_duration() const {
    return sim::SimTime::milliseconds(200);
  }
  /// v1 enters PROBE_RTT only when the min-RTT estimate has gone stale.
  /// The BBR2-alpha artifact probes on a fixed timer instead, regardless of
  /// how fresh the estimate is — the bug class the paper's 40% energy gap
  /// points at.
  virtual bool probe_on_fixed_timer() const { return false; }

  double bdp_segments() const;
  void update_filters(const AckEvent& ev);
  void advance_mode(const AckEvent& ev);

  CcaConfig config_;
  Mode mode_ = Mode::kStartup;
  double pacing_gain_ = 2.885;
  double cwnd_gain_ = 2.885;

  // Bottleneck bandwidth: windowed max over the last 10 rounds.
  double btl_bw_bps_ = 0.0;
  struct BwSample {
    double bps = 0.0;
    std::int64_t round = 0;
  };
  std::array<BwSample, 10> bw_window_{};

  // RTprop: windowed min with 10 s expiry.
  sim::SimTime rt_prop_ = sim::SimTime::zero();
  sim::SimTime rt_prop_stamp_ = sim::SimTime::zero();
  bool rt_prop_expired_ = false;  ///< filter aged out on this ACK

  // Round counting via the delivered counter.
  std::int64_t round_count_ = 0;
  std::int64_t next_round_delivered_ = 0;

  // STARTUP full-bandwidth detection.
  double full_bw_ = 0.0;
  int full_bw_rounds_ = 0;
  std::int64_t last_full_check_ = -1;

  // PROBE_BW gain cycling.
  int cycle_index_ = 0;
  sim::SimTime cycle_stamp_ = sim::SimTime::zero();

  // PROBE_RTT bookkeeping.
  sim::SimTime probe_rtt_done_ = sim::SimTime::zero();
  sim::SimTime last_probe_stamp_ = sim::SimTime::zero();

  std::int64_t last_inflight_ = 0;
};

/// BBR2 as the paper measured it: "Google's alpha release of BBR2", which
/// they found to use ~40% more energy than v1 and suspected of "lacking
/// efficient implementation or prone to undiscovered bugs" (§4.3).
///
/// We model the v2 mechanisms that differ from v1 (loss-bounded inflight cap,
/// gentler startup) plus two alpha-maturity artifacts calibrated to land the
/// reported gap: an over-aggressive PROBE_RTT schedule (450 ms at minimal
/// cwnd every 1.1 s — a plausible mis-scheduled timer) and markedly higher
/// per-packet compute cost (unoptimized fixed-point pacing math on the
/// transmit path).
class Bbr2Alpha final : public Bbr {
 public:
  explicit Bbr2Alpha(const CcaConfig& config) : Bbr(config) {}

  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;

  double cwnd_segments() const override;

  energy::CcaCost cost() const override {
    return {.per_ack_ns = 600.0, .per_packet_ns = 350.0};
  }

  std::string name() const override { return "bbr2"; }

 protected:
  double startup_gain() const override { return 2.0; }
  double cruise_gain() const override { return 0.9; }
  sim::SimTime probe_rtt_interval() const override {
    return sim::SimTime::seconds(1.1);
  }
  sim::SimTime probe_rtt_duration() const override {
    return sim::SimTime::milliseconds(450);
  }
  bool probe_on_fixed_timer() const override { return true; }

 private:
  double inflight_hi_ = 1e18;  // loss-informed inflight bound (v2 mechanism)
};

}  // namespace greencc::cca
