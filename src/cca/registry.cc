#include <functional>
#include <map>
#include <stdexcept>

#include "cca/bbr.h"
#include "cca/cca.h"
#include "cca/cubic.h"
#include "cca/dcqcn.h"
#include "cca/dctcp.h"
#include "cca/highspeed.h"
#include "cca/hpcc.h"
#include "cca/reno.h"
#include "cca/scalable.h"
#include "cca/swift.h"
#include "cca/timely.h"
#include "cca/vegas.h"
#include "cca/westwood.h"

namespace greencc::cca {

namespace {

using Factory =
    std::function<std::unique_ptr<CongestionControl>(const CcaConfig&)>;

template <typename T>
std::unique_ptr<CongestionControl> make(const CcaConfig& config) {
  return std::make_unique<T>(config);
}

// Ordered the way the paper's Figure 5 x-axis lists them.
const std::map<std::string, Factory>& factories() {
  static const std::map<std::string, Factory> kFactories = {
      {"bbr", make<Bbr>},
      {"westwood", make<Westwood>},
      {"highspeed", make<HighSpeed>},
      {"scalable", make<Scalable>},
      {"reno", make<Reno>},
      {"vegas", make<Vegas>},
      {"dctcp", make<Dctcp>},
      {"cubic", make<Cubic>},
      {"baseline", make<ConstantCwndBaseline>},
      {"bbr2", make<Bbr2Alpha>},
      // The production datacenter algorithms of the paper's section 5
      // (see datacenter_names()).
      {"swift", make<Swift>},
      {"dcqcn", make<Dcqcn>},
      {"hpcc", make<Hpcc>},
      {"timely", make<Timely>},
  };
  return kFactories;
}

}  // namespace

std::unique_ptr<CongestionControl> make_cca(const std::string& name,
                                            const CcaConfig& config) {
  auto it = factories().find(name);
  if (it == factories().end()) {
    throw std::invalid_argument("unknown congestion control algorithm: " +
                                name);
  }
  return it->second(config);
}

const std::vector<std::string>& all_names() {
  // Figure 5's ordering (increasing energy at MTU 1500 in the paper).
  static const std::vector<std::string> kNames = {
      "bbr",  "westwood", "highspeed", "scalable", "reno",
      "vegas", "dctcp",   "cubic",     "baseline", "bbr2"};
  return kNames;
}

const std::vector<std::string>& datacenter_names() {
  static const std::vector<std::string> kNames = {"swift", "dcqcn", "hpcc",
                                                  "timely"};
  return kNames;
}

}  // namespace greencc::cca
