#pragma once

#include "cca/loss_based.h"

namespace greencc::cca {

/// DCTCP (Alizadeh et al. 2010, Linux tcp_dctcp.c): ECN-proportional
/// multiplicative decrease. The receiver echoes CE marks; once per window
/// the sender updates the moving fraction of marked segments
///
///   alpha = (1 - g) * alpha + g * F        (g = 1/16)
///
/// and, if any segment in the window was marked, shrinks
///
///   cwnd = cwnd * (1 - alpha / 2).
///
/// Loss handling is Reno's. Requires ECN marking at the bottleneck (the
/// scenario topology enables a step-marking threshold when the flow's CCA
/// wants ECN).
class Dctcp final : public LossBasedCca {
 public:
  using LossBasedCca::LossBasedCca;

  std::string name() const override { return "dctcp"; }

  bool wants_ecn() const override { return true; }

  energy::CcaCost cost() const override {
    // alpha EWMA plus the CE bookkeeping on every ACK.
    return {.per_ack_ns = 140.0, .per_packet_ns = 0.0};
  }

  void on_ack(const AckEvent& ev) override {
    acked_in_window_ += ev.acked_segments;
    marked_in_window_ += ev.ecn_echoed;

    // Window boundary: one observation window is one RTT's worth of
    // delivered data (the kernel uses snd_una crossing a recorded seq; with
    // delivered counters this is equivalent).
    if (ev.delivered >= next_window_delivered_) {
      const double f =
          acked_in_window_ > 0
              ? static_cast<double>(marked_in_window_) /
                    static_cast<double>(acked_in_window_)
              : 0.0;
      alpha_ = (1.0 - kG) * alpha_ + kG * f;
      if (marked_in_window_ > 0 && !ev.in_recovery) {
        cwnd_ = cwnd_ * (1.0 - alpha_ / 2.0);
        ssthresh_ = cwnd_;
        clamp();
      }
      acked_in_window_ = 0;
      marked_in_window_ = 0;
      next_window_delivered_ =
          ev.delivered + static_cast<std::int64_t>(cwnd_);
    }

    LossBasedCca::on_ack(ev);
  }

  double alpha() const { return alpha_; }

 protected:
  void congestion_avoidance(const AckEvent& ev) override {
    cwnd_ += static_cast<double>(ev.acked_segments) / cwnd_;
  }

 private:
  static constexpr double kG = 1.0 / 16.0;

  double alpha_ = 1.0;  // kernel starts alpha at 1 to be conservative
  std::int64_t acked_in_window_ = 0;
  std::int64_t marked_in_window_ = 0;
  std::int64_t next_window_delivered_ = 0;
};

}  // namespace greencc::cca
