#pragma once

#include <cmath>

#include "cca/loss_based.h"

namespace greencc::cca {

/// HighSpeed TCP (RFC 3649): the AIMD increase a(w) and decrease b(w)
/// parameters scale with the window so large-BDP flows recover quickly.
///
/// We use the analytic response function of RFC 3649 §5 rather than the
/// precomputed 73-row kernel table: for w <= 38 behave exactly like Reno;
/// above that,
///   b(w) = (0.1 - 0.5) * (log w - log 38)/(log 83000 - log 38) + 0.5
///   p(w) = 0.078 / w^1.2
///   a(w) = w^2 * p(w) * 2 * b(w) / (2 - b(w))
/// which is the formula the kernel table itself was generated from.
class HighSpeed final : public LossBasedCca {
 public:
  using LossBasedCca::LossBasedCca;

  std::string name() const override { return "highspeed"; }

  energy::CcaCost cost() const override {
    // Table walk + two multiplies per ACK in tcp_highspeed.c.
    return {.per_ack_ns = 120.0, .per_packet_ns = 0.0};
  }

  static double a_of_w(double w) {
    if (w <= kLowWindow) return 1.0;
    const double b = b_of_w(w);
    const double p = 0.078 / std::pow(w, 1.2);
    return std::max(1.0, w * w * p * 2.0 * b / (2.0 - b));
  }

  static double b_of_w(double w) {
    if (w <= kLowWindow) return 0.5;
    const double frac = (std::log(w) - std::log(kLowWindow)) /
                        (std::log(kHighWindow) - std::log(kLowWindow));
    return std::max(0.1, 0.5 + (0.1 - 0.5) * frac);
  }

 protected:
  void congestion_avoidance(const AckEvent& ev) override {
    cwnd_ += a_of_w(cwnd_) * static_cast<double>(ev.acked_segments) / cwnd_;
  }

  double decrease_target(const LossEvent& ev) override {
    const double w = std::max(static_cast<double>(ev.inflight), cwnd_);
    return w * (1.0 - b_of_w(w));
  }

 private:
  static constexpr double kLowWindow = 38.0;
  static constexpr double kHighWindow = 83000.0;
};

}  // namespace greencc::cca
