#pragma once

#include <algorithm>

#include "cca/cca.h"

namespace greencc::cca {

/// Shared machinery of the loss-based window algorithms (Reno, CUBIC,
/// Scalable, HighSpeed, Westwood, Vegas, DCTCP): a congestion window with
/// slow start below ssthresh, and the standard RTO reaction (cwnd back to 1
/// segment, ssthresh halved — RFC 5681 §3.1). Subclasses override the
/// congestion-avoidance increase and the multiplicative decrease.
class LossBasedCca : public CongestionControl {
 public:
  explicit LossBasedCca(const CcaConfig& config)
      : config_(config), cwnd_(static_cast<double>(config.initial_cwnd)) {}

  void on_ack(const AckEvent& ev) override {
    if (ev.acked_segments <= 0) return;
    if (ev.in_recovery) return;  // window frozen during recovery
    if (!ev.cwnd_limited) return;  // RFC 2861: no growth when app-limited
    if (cwnd_ < ssthresh_) {
      // Slow start: one segment per acked segment, not beyond ssthresh.
      cwnd_ = std::min(cwnd_ + static_cast<double>(ev.acked_segments),
                       std::max(ssthresh_, cwnd_));
      if (cwnd_ >= ssthresh_) congestion_avoidance(ev);
    } else {
      congestion_avoidance(ev);
    }
    clamp();
  }

  void on_loss(const LossEvent& ev) override {
    ssthresh_ = std::max(2.0, decrease_target(ev));
    cwnd_ = ssthresh_;
    clamp();
  }

  void on_rto(sim::SimTime /*now*/) override {
    ssthresh_ = std::max(2.0, cwnd_ / 2.0);
    cwnd_ = 1.0;
  }

  double cwnd_segments() const override { return cwnd_; }

 protected:
  /// Additive (or otherwise) increase while not in slow start.
  virtual void congestion_avoidance(const AckEvent& ev) = 0;

  /// New ssthresh/cwnd when entering fast recovery.
  virtual double decrease_target(const LossEvent& ev) {
    return std::max(static_cast<double>(ev.inflight), cwnd_) / 2.0;
  }

  void clamp() { cwnd_ = std::clamp(cwnd_, 1.0, kMaxCwnd); }

  bool in_slow_start() const { return cwnd_ < ssthresh_; }

  static constexpr double kMaxCwnd = 1 << 20;

  CcaConfig config_;
  double cwnd_;
  double ssthresh_ = kMaxCwnd;
};

}  // namespace greencc::cca
