#pragma once

#include <algorithm>

#include "cca/cca.h"

namespace greencc::cca {

/// DCQCN (Zhu et al., SIGCOMM 2015) — the rate-based, ECN-driven congestion
/// control of large RDMA deployments; §5 of the paper names it as a
/// production algorithm to benchmark.
///
/// The reaction point keeps a current rate RC and target rate RT:
///  * on congestion notification (ECE-marked ACK, the CNP equivalent):
///      alpha <- (1-g)*alpha + g,  RT <- RC,  RC <- RC * (1 - alpha/2)
///  * otherwise alpha decays every kAlphaTimer, and the rate recovers in
///    stages every kRateTimer: five "fast recovery" stages of
///    RC <- (RT+RC)/2, then additive stages RT += R_AI, then hyper
///    increase RT += 10*R_AI.
///
/// DCQCN is rate-based: the sender paces at RC; the window is a loose cap
/// of one (paced) bandwidth-delay product so it never gates before the
/// rate limiter does. Hardware CNP coalescing (one CNP per 50 us) maps to
/// per-ACK ECE marks coalesced by the receiver's delayed ACKs.
class Dcqcn final : public CongestionControl {
 public:
  explicit Dcqcn(const CcaConfig& config)
      : config_(config),
        rc_bps_(config.line_rate.bps()),
        rt_bps_(config.line_rate.bps()) {}

  bool wants_ecn() const override { return true; }

  void on_ack(const AckEvent& ev) override {
    if (last_event_ == sim::SimTime::zero()) last_event_ = ev.now;

    if (ev.ecn_echoed > 0) {
      // Congestion notification. The NP generates at most one CNP per
      // 50 us window, so marked ACKs inside the window are coalesced.
      if (last_cut_ == sim::SimTime::zero() ||
          ev.now - last_cut_ >= kCnpInterval) {
        alpha_ = (1.0 - kG) * alpha_ + kG;
        rt_bps_ = rc_bps_;
        rc_bps_ = std::max(kMinRateBps, rc_bps_ * (1.0 - alpha_ / 2.0));
        stage_ = 0;
        last_cut_ = ev.now;
        last_rate_timer_ = ev.now;
        last_alpha_timer_ = ev.now;
      }
      return;
    }

    // Alpha decay timer.
    while (ev.now - last_alpha_timer_ >= kAlphaTimer) {
      alpha_ *= 1.0 - kG;
      last_alpha_timer_ += kAlphaTimer;
    }

    // Rate increase timer (stage machine).
    while (ev.now - last_rate_timer_ >= kRateTimer) {
      last_rate_timer_ += kRateTimer;
      ++stage_;
      if (stage_ > kFastRecoveryStages) {
        const double r_ai =
            stage_ > 2 * kFastRecoveryStages ? 10.0 * kRaiBps : kRaiBps;
        rt_bps_ = std::min(config_.line_rate.bps(), rt_bps_ + r_ai);
      }
      rc_bps_ = std::min(config_.line_rate.bps(), (rt_bps_ + rc_bps_) / 2.0);
    }
  }

  void on_loss(const LossEvent&) override {
    // RDMA fabrics are lossless (PFC); over a lossy path DCQCN treats loss
    // like a congestion notification.
    rt_bps_ = rc_bps_;
    rc_bps_ = std::max(kMinRateBps, rc_bps_ * 0.5);
    stage_ = 0;
  }

  void on_rto(sim::SimTime) override {
    rc_bps_ = rt_bps_ = std::max(kMinRateBps, config_.line_rate.bps() * 0.01);
    stage_ = 0;
  }

  double cwnd_segments() const override {
    // Loose cap: two paced BDPs at an assumed worst-case RTT.
    const double bdp = rc_bps_ * (4.0 * config_.expected_rtt.sec()) /
                       (static_cast<double>(config_.mss_bytes.count()) * units::kBitsPerByteF);
    return std::max(4.0, bdp);
  }

  units::BitRate pacing_rate() const override {
    return units::BitRate::bps(rc_bps_);
  }

  energy::CcaCost cost() const override {
    // Timer bookkeeping + the rate math of the NIC firmware emulation.
    return {.per_ack_ns = 110.0, .per_packet_ns = 15.0};
  }

  std::string name() const override { return "dcqcn"; }

  double alpha() const { return alpha_; }
  double current_rate_bps() const { return rc_bps_; }

 private:
  static constexpr double kG = 1.0 / 16.0;
  static constexpr double kRaiBps = 40e6;  // additive step (40 Mb/s)
  static constexpr int kFastRecoveryStages = 5;
  static constexpr double kMinRateBps = 10e6;
  static constexpr sim::SimTime kAlphaTimer = sim::SimTime::microseconds(55);
  static constexpr sim::SimTime kRateTimer = sim::SimTime::microseconds(55);
  static constexpr sim::SimTime kCnpInterval = sim::SimTime::microseconds(50);

  CcaConfig config_;
  double rc_bps_;
  double rt_bps_;
  double alpha_ = 1.0;
  int stage_ = 0;
  sim::SimTime last_cut_ = sim::SimTime::zero();
  sim::SimTime last_event_ = sim::SimTime::zero();
  sim::SimTime last_alpha_timer_ = sim::SimTime::zero();
  sim::SimTime last_rate_timer_ = sim::SimTime::zero();
};

}  // namespace greencc::cca
