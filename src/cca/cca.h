#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "energy/calibration.h"
#include "net/packet.h"
#include "sim/time.h"
#include "units/units.h"

namespace greencc::cca {

/// Everything a congestion controller may look at when an ACK arrives.
/// Mirrors (a simplified) `struct rate_sample` + `tcp_sock` view that Linux
/// hands to its CC modules.
struct AckEvent {
  sim::SimTime now;
  std::int64_t acked_segments = 0;   ///< newly cum-acked + newly sacked
  std::int64_t ecn_echoed = 0;       ///< of those, how many carried CE echo
  sim::SimTime rtt;                  ///< RTT sample of this ACK (0 if none)
  sim::SimTime srtt;                 ///< smoothed RTT
  sim::SimTime min_rtt;              ///< windowed minimum RTT
  std::int64_t inflight = 0;         ///< packets outstanding after this ACK
  std::int64_t delivered = 0;        ///< total segments delivered so far
  units::BitRate delivery_rate;      ///< rate sample (zero if not available)
  bool app_limited = false;          ///< rate sample taken while app-limited
  bool in_recovery = false;          ///< loss recovery in progress
  /// Whether the sender was actually constrained by cwnd when this ACK's
  /// data was in flight. Congestion-window validation (RFC 2861): loss-based
  /// algorithms must not grow the window while the application, not the
  /// window, limits sending. Defaults to true so unit drivers exercise
  /// growth without extra setup.
  bool cwnd_limited = true;

  /// In-band telemetry reflected by the receiver (HPCC). Zero hops when the
  /// path does not stamp INT or the algorithm did not request it.
  std::uint8_t int_count = 0;
  std::array<net::IntRecord, 4> int_hops{};
};

/// Reported once per loss-recovery episode (the Linux CA_Recovery entry),
/// not per lost packet.
struct LossEvent {
  sim::SimTime now;
  std::int64_t inflight = 0;
  std::int64_t lost_segments = 0;
};

/// Congestion control algorithm interface.
///
/// Implementations own only their control state; all transport bookkeeping
/// (scoreboard, timers, rate sampling) lives in tcp::TcpSender, which calls
/// these hooks exactly the way the kernel drives its modules:
///   * on_ack        - every ACK that advances delivery
///   * on_loss       - entering fast-recovery (once per episode)
///   * on_rto        - retransmission timeout fired
///   * on_recovered  - recovery episode completed
///
/// `cwnd_segments()` is sampled after every hook. A non-zero
/// `pacing_rate()` makes the sender space packets out instead of
/// transmitting cwnd-bursts (BBR-style).
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void on_ack(const AckEvent& ev) = 0;
  virtual void on_loss(const LossEvent& ev) = 0;
  virtual void on_rto(sim::SimTime now) = 0;
  virtual void on_recovered(sim::SimTime /*now*/) {}

  /// Current congestion window in segments (>= 1).
  virtual double cwnd_segments() const = 0;

  /// Pacing rate; zero disables pacing (pure window control).
  virtual units::BitRate pacing_rate() const { return units::BitRate::zero(); }

  /// Compute-cost model for the energy accounting (see calibration.h).
  virtual energy::CcaCost cost() const = 0;

  /// Whether the sender should mark packets ECN-capable (DCTCP, DCQCN).
  virtual bool wants_ecn() const { return false; }

  /// Whether the sender should request in-band telemetry stamping (HPCC).
  virtual bool wants_int() const { return false; }

  virtual std::string name() const = 0;
};

/// Link parameters a CCA may want at construction time.
struct CcaConfig {
  units::Bytes mss_bytes{8948};            ///< segment payload size
  units::BitRate line_rate = units::BitRate::gbps(10);  ///< initial pacing
  sim::SimTime expected_rtt = sim::SimTime::microseconds(50);
  std::int64_t initial_cwnd = 10;          ///< Linux default IW10
};

/// Factory registry. All ten algorithms of the paper register themselves;
/// benches iterate `all_names()` to sweep the full grid.
std::unique_ptr<CongestionControl> make_cca(const std::string& name,
                                            const CcaConfig& config);
const std::vector<std::string>& all_names();

/// The production datacenter algorithms the paper's §5 asks the community
/// to benchmark: Swift, DCQCN, HPCC and TIMELY. Constructed through the
/// same factory; listed separately so the paper-grid benches stay exactly
/// the paper's ten.
const std::vector<std::string>& datacenter_names();

}  // namespace greencc::cca
