#include "app/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace greencc::app {

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t cell_index,
                          std::uint64_t repeat_index) {
  // Golden-ratio multiples keep distinct (cell, repeat) pairs at distinct
  // pre-mix values even when base_seed is small; the SplitMix64 finalizer
  // then avalanches every input bit across the output.
  std::uint64_t x = base_seed;
  x += 0x9E3779B97F4A7C15ULL * (cell_index + 1);
  x += 0xD1B54A32D192ED03ULL * (repeat_index + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

namespace {

/// One worker's slice of the index space: [next, last). The owner takes
/// from the front, thieves take from the back. A mutex per slice keeps the
/// protocol obvious and is uncontended except at steal time; per-run
/// simulations are many orders of magnitude slower than the lock.
struct Slice {
  std::mutex mu;
  std::size_t next = 0;
  std::size_t last = 0;

  bool take_front(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (next >= last) return false;
    out = next++;
    return true;
  }

  bool steal_back(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (next >= last) return false;
    out = --last;
    return true;
  }
};

}  // namespace

ParallelRunner::ParallelRunner(int jobs, ProgressFn progress)
    : jobs_(jobs), progress_(std::move(progress)) {
  if (jobs_ <= 0) {
    jobs_ = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs_ <= 0) jobs_ = 1;
  }
}

namespace {

std::string describe(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

void ParallelRunner::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& task) const {
  auto failures = for_each_index_collect(n, task);
  if (failures.empty()) return;
  if (failures.size() == 1) std::rethrow_exception(failures.front().error);
  std::string message = std::to_string(failures.size()) + " of " +
                        std::to_string(n) + " tasks failed:";
  for (const auto& failure : failures) {
    message += " [" + std::to_string(failure.index) + "] " + failure.message +
               ";";
  }
  message.pop_back();
  throw std::runtime_error(message);
}

std::vector<TaskFailure> ParallelRunner::for_each_index_collect(
    std::size_t n, const std::function<void(std::size_t)>& task) const {
  std::vector<TaskFailure> failures;
  if (n == 0) return failures;

  std::atomic<std::size_t> completed{0};
  std::mutex progress_mu;
  std::mutex error_mu;

  auto run_one = [&](std::size_t index) {
    // lint-allow: wall-clock (progress reporting only; never feeds results)
    const auto started = std::chrono::steady_clock::now();
    try {
      task(index);
    } catch (...) {
      auto error = std::current_exception();
      std::lock_guard<std::mutex> lock(error_mu);
      failures.push_back(TaskFailure{index, describe(error), error});
    }
    const std::size_t done = completed.fetch_add(1) + 1;
    if (progress_) {
      const double secs =  // lint-allow: wall-clock (progress line only)
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      std::lock_guard<std::mutex> lock(progress_mu);
      progress_(done, n, index, secs);
    }
  };

  // Failures are sorted by index before returning, so the report reads in
  // task order whatever the completion order was.
  auto sorted = [&failures] {
    std::sort(failures.begin(), failures.end(),
              [](const TaskFailure& a, const TaskFailure& b) {
                return a.index < b.index;
              });
    return std::move(failures);
  };

  const auto workers = std::min(static_cast<std::size_t>(jobs_), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
    return sorted();
  }

  // Worker w starts owning the contiguous slice [w*n/W, (w+1)*n/W).
  std::vector<Slice> slices(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    slices[w].next = w * n / workers;
    slices[w].last = (w + 1) * n / workers;
  }

  auto worker_loop = [&](std::size_t me) {
    std::size_t index;
    for (;;) {
      if (slices[me].take_front(index)) {
        run_one(index);
        continue;
      }
      // Own slice dry: scan the other slices for work to steal. Indices are
      // only ever consumed, so an unsuccessful full scan means the
      // remaining work is already in flight on other workers.
      bool stole = false;
      for (std::size_t off = 1; off < workers && !stole; ++off) {
        stole = slices[(me + off) % workers].steal_back(index);
      }
      if (!stole) return;
      run_one(index);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(worker_loop, w);
  for (auto& thread : threads) thread.join();
  return sorted();
}

}  // namespace greencc::app
