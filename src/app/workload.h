#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"
#include "units/units.h"

namespace greencc::app {

/// Flow-size distributions for datacenter workloads — the §5 ask to test
/// "with the sorts of workloads used in production data centers".
class FlowSizeDistribution {
 public:
  virtual ~FlowSizeDistribution() = default;
  virtual std::int64_t sample(sim::Rng& rng) const = 0;
  virtual double mean_bytes() const = 0;
  virtual std::string name() const = 0;
};

/// All flows the same size (the paper's own bulk-transfer workload).
std::unique_ptr<FlowSizeDistribution> fixed_size(std::int64_t bytes);

/// Bounded Pareto — the classic heavy tail.
std::unique_ptr<FlowSizeDistribution> bounded_pareto(double alpha,
                                                     units::Bytes min_bytes,
                                                     units::Bytes max_bytes);

/// Piecewise-linear empirical CDF given (bytes, cumulative probability)
/// points sorted by bytes, ending at probability 1.
std::unique_ptr<FlowSizeDistribution> empirical_cdf(
    std::string name,
    std::vector<std::pair<std::int64_t, double>> points);

/// Approximation of the web-search workload CDF (DCTCP, Fig. 2 of Alizadeh
/// et al. 2010): mostly short query/background flows with multi-MB tails.
std::unique_ptr<FlowSizeDistribution> websearch_workload();

/// Approximation of the data-mining workload CDF (VL2, Greenberg et al.
/// 2009): >50% mice under 1 KB with a tail beyond 100 MB.
std::unique_ptr<FlowSizeDistribution> datamining_workload();

/// One finished (or unfinished) flow of an open-loop run.
struct WorkloadFlowStats {
  units::Bytes bytes;
  double fct_sec = -1.0;   ///< -1: still running at the horizon
  double slowdown = 0.0;   ///< fct / ideal (line-rate serialization + RTT)
};

struct WorkloadConfig {
  std::string cca = "cubic";
  units::Bytes mtu_bytes{9000};
  /// Bottleneck line rate. Drives the scenario topology, the Poisson
  /// arrival rate (load is a fraction of *this* rate) and the ideal-FCT
  /// baseline slowdowns are computed against.
  units::BitRate bottleneck_rate = units::BitRate::gbps(10);
  double load = 0.5;        ///< offered load, fraction of the line rate
  int sender_hosts = 8;         ///< arrivals round-robin across this pool
  sim::SimTime horizon = sim::SimTime::seconds(2.0);
  std::uint64_t seed = 1;
  const FlowSizeDistribution* sizes = nullptr;  ///< required
};

struct WorkloadResult {
  int flows_started = 0;
  int flows_completed = 0;
  units::BitRate goodput;        ///< delivered bytes over the horizon
  units::Energy total_energy;    ///< all sender hosts, horizon-long
  units::JoulesPerByte energy_intensity;  ///< total energy / delivered bytes
  double mean_slowdown = 0.0;
  double p99_slowdown = 0.0;
  double mice_p99_slowdown = 0.0;      ///< flows < 100 KB
  double elephant_mean_slowdown = 0.0; ///< flows >= 1 MB
  std::vector<WorkloadFlowStats> flows;
};

/// Run an open-loop Poisson-arrival workload against the paper's testbed
/// topology and report FCT slowdowns and energy. The arrival rate is
/// derived from the target load:
/// lambda = load * bottleneck_bps / mean flow size.
WorkloadResult run_workload(const WorkloadConfig& config);

}  // namespace greencc::app
