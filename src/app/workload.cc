#include "app/workload.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "app/scenario.h"
#include "stats/stats.h"

namespace greencc::app {

namespace {

class FixedSize final : public FlowSizeDistribution {
 public:
  explicit FixedSize(std::int64_t bytes) : bytes_(bytes) {}
  std::int64_t sample(sim::Rng&) const override { return bytes_; }
  double mean_bytes() const override { return static_cast<double>(bytes_); }
  std::string name() const override {
    return "fixed-" + std::to_string(bytes_);
  }

 private:
  std::int64_t bytes_;
};

class BoundedPareto final : public FlowSizeDistribution {
 public:
  BoundedPareto(double alpha, std::int64_t lo, std::int64_t hi)
      : alpha_(alpha), lo_(static_cast<double>(lo)),
        hi_(static_cast<double>(hi)) {
    if (alpha <= 0 || lo <= 0 || hi <= lo) {
      throw std::invalid_argument("bounded_pareto: bad parameters");
    }
  }

  std::int64_t sample(sim::Rng& rng) const override {
    // Inverse CDF of the bounded Pareto.
    const double u = rng.next_double();
    const double la = std::pow(lo_, alpha_);
    const double ha = std::pow(hi_, alpha_);
    const double x =
        std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
    return static_cast<std::int64_t>(x);
  }

  double mean_bytes() const override {
    // lint-allow: float-eq (exact special case: the alpha=1 closed form)
    if (alpha_ == 1.0) {
      return lo_ * hi_ / (hi_ - lo_) * std::log(hi_ / lo_);
    }
    const double la = std::pow(lo_, alpha_);
    const double ha = std::pow(hi_, alpha_);
    return la / (1.0 - la / ha) * (alpha_ / (alpha_ - 1.0)) *
           (1.0 / std::pow(lo_, alpha_ - 1.0) -
            1.0 / std::pow(hi_, alpha_ - 1.0));
  }

  std::string name() const override { return "bounded-pareto"; }

 private:
  double alpha_;
  double lo_;
  double hi_;
};

class EmpiricalCdf final : public FlowSizeDistribution {
 public:
  EmpiricalCdf(std::string name,
               std::vector<std::pair<std::int64_t, double>> points)
      : name_(std::move(name)), points_(std::move(points)) {
    if (points_.size() < 2 || points_.back().second < 1.0) {
      throw std::invalid_argument("empirical_cdf: need points up to p=1");
    }
    double prev_p = -1.0;
    std::int64_t prev_b = -1;
    for (const auto& [bytes, p] : points_) {
      if (bytes <= prev_b || p < prev_p) {
        throw std::invalid_argument("empirical_cdf: points not monotone");
      }
      prev_b = bytes;
      prev_p = p;
    }
    // Mean via the trapezoid decomposition of the inverse CDF.
    mean_ = 0.0;
    double p0 = 0.0;
    double b0 = static_cast<double>(points_.front().first);
    for (const auto& [bytes, p] : points_) {
      const double b1 = static_cast<double>(bytes);
      mean_ += (p - p0) * (b0 + b1) / 2.0;
      p0 = p;
      b0 = b1;
    }
  }

  std::int64_t sample(sim::Rng& rng) const override {
    const double u = rng.next_double();
    double p0 = 0.0;
    double b0 = static_cast<double>(points_.front().first);
    for (const auto& [bytes, p] : points_) {
      const double b1 = static_cast<double>(bytes);
      if (u <= p) {
        const double frac = p > p0 ? (u - p0) / (p - p0) : 1.0;
        return static_cast<std::int64_t>(b0 + frac * (b1 - b0));
      }
      p0 = p;
      b0 = b1;
    }
    return points_.back().first;
  }

  double mean_bytes() const override { return mean_; }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<std::pair<std::int64_t, double>> points_;
  double mean_ = 0.0;
};

}  // namespace

std::unique_ptr<FlowSizeDistribution> fixed_size(std::int64_t bytes) {
  return std::make_unique<FixedSize>(bytes);
}

std::unique_ptr<FlowSizeDistribution> bounded_pareto(double alpha,
                                                     units::Bytes min_bytes,
                                                     units::Bytes max_bytes) {
  return std::make_unique<BoundedPareto>(alpha, min_bytes.count(),
                                         max_bytes.count());
}

std::unique_ptr<FlowSizeDistribution> empirical_cdf(
    std::string name, std::vector<std::pair<std::int64_t, double>> points) {
  return std::make_unique<EmpiricalCdf>(std::move(name), std::move(points));
}

std::unique_ptr<FlowSizeDistribution> websearch_workload() {
  // Approximation of the DCTCP paper's web-search CDF.
  return empirical_cdf("websearch", {{6'000, 0.15},
                                     {13'000, 0.20},
                                     {19'000, 0.30},
                                     {33'000, 0.40},
                                     {53'000, 0.53},
                                     {133'000, 0.60},
                                     {667'000, 0.70},
                                     {1'333'000, 0.80},
                                     {3'333'000, 0.90},
                                     {6'667'000, 0.97},
                                     {20'000'000, 1.00}});
}

std::unique_ptr<FlowSizeDistribution> datamining_workload() {
  // Approximation of the VL2 data-mining CDF.
  return empirical_cdf("datamining", {{100, 0.50},
                                      {1'000, 0.60},
                                      {10'000, 0.70},
                                      {100'000, 0.75},
                                      {1'000'000, 0.80},
                                      {10'000'000, 0.90},
                                      {100'000'000, 0.95},
                                      {1'000'000'000, 1.00}});
}

WorkloadResult run_workload(const WorkloadConfig& config) {
  if (config.sizes == nullptr) {
    throw std::invalid_argument("run_workload: sizes distribution required");
  }
  if (config.load <= 0.0 || config.load >= 1.0) {
    throw std::invalid_argument("run_workload: load must be in (0, 1)");
  }
  if (config.bottleneck_rate.bps() <= 0.0) {
    throw std::invalid_argument("run_workload: bottleneck rate must be > 0");
  }

  ScenarioConfig scenario_config;
  scenario_config.bottleneck_rate = config.bottleneck_rate;
  scenario_config.tcp.mtu_bytes = config.mtu_bytes;
  scenario_config.seed = config.seed;
  scenario_config.deadline = config.horizon;
  Scenario scenario(scenario_config);
  scenario.enable_open_loop();

  // Arrival process: Poisson with mean inter-arrival 1/lambda. The arrival
  // RNG gets its own mix_seed site so it can never collide with the
  // scenario's internal streams (or the fault subsystem's) at nearby seeds.
  sim::Rng rng(sim::mix_seed(config.seed,
                             sim::site_hash("workload:arrivals"), 0));
  const double lambda = config.load * config.bottleneck_rate.bps() /
                        units::kBitsPerByteF /
                        config.sizes->mean_bytes();  // flows/sec

  auto& sim = scenario.simulator();
  const auto* sizes = config.sizes;
  const std::string cca = config.cca;
  const int pool = config.sender_hosts;
  int next_host = 0;
  // The closure reschedules itself through a reference capture rather than
  // an owning shared_ptr (which would cycle and leak); every local it
  // references outlives scenario.run(), after which no events fire.
  std::function<void()> arrival;
  arrival = [&scenario, &sim, &rng, &arrival, &next_host, sizes, cca, pool,
             lambda] {
    FlowSpec spec;
    spec.cca = cca;
    spec.bytes = units::Bytes{std::max<std::int64_t>(sizes->sample(rng), 1)};
    spec.sender_host = next_host++ % pool;
    scenario.spawn_flow(spec);
    sim.schedule(sim::SimTime::seconds(rng.exponential(1.0 / lambda)),
                 arrival);
  };
  sim.schedule(sim::SimTime::seconds(rng.exponential(1.0 / lambda)),
               arrival);

  const auto result = scenario.run();

  WorkloadResult out;
  out.flows_started = static_cast<int>(result.flows.size());
  out.total_energy = result.total_energy;

  const double base_rtt_sec = 30e-6;  // topology's unloaded RTT
  std::vector<double> slowdowns, mice, elephants;
  units::Bytes delivered_bytes;
  for (const auto& flow : result.flows) {
    WorkloadFlowStats stats;
    stats.bytes = flow.bytes;
    stats.fct_sec = flow.fct_sec;
    delivered_bytes += flow.delivered_bytes;
    if (flow.fct_sec > 0) {
      ++out.flows_completed;
      const double ideal = static_cast<double>(flow.bytes.count()) *
                               units::kBitsPerByteF /
                               config.bottleneck_rate.bps() +
                           base_rtt_sec;
      stats.slowdown = flow.fct_sec / ideal;
      slowdowns.push_back(stats.slowdown);
      if (flow.bytes < units::Bytes{100'000}) mice.push_back(stats.slowdown);
      if (flow.bytes >= units::Bytes{1'000'000}) {
        elephants.push_back(stats.slowdown);
      }
    }
    out.flows.push_back(stats);
  }
  const double horizon_sec = config.horizon.sec();
  out.goodput = units::BitRate::bps(
      static_cast<double>(delivered_bytes.count()) * units::kBitsPerByteF /
      horizon_sec);
  out.energy_intensity = delivered_bytes > units::Bytes::zero()
                             ? out.total_energy / delivered_bytes
                             : units::JoulesPerByte::zero();
  out.mean_slowdown = stats::mean(slowdowns);
  out.p99_slowdown = stats::percentile(slowdowns, 99.0);
  out.mice_p99_slowdown = stats::percentile(mice, 99.0);
  out.elephant_mean_slowdown = stats::mean(elephants);
  return out;
}

}  // namespace greencc::app
