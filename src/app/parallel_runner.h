#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

namespace greencc::app {

/// Deterministic per-run seed derivation, shared by the serial and parallel
/// experiment paths.
///
/// The historical scheme `base_seed + i` hands adjacent grid cells
/// overlapping seed sequences (cell A's repeat 1 reruns cell B's repeat 0
/// exactly), so repeats were not statistically independent across cells.
/// Here the three coordinates are combined with golden-ratio multiples and
/// pushed through the SplitMix64 finalizer: changing any coordinate by one
/// scrambles the whole 64-bit output, and the derivation depends only on
/// (base_seed, cell, repeat) — never on thread count or completion order.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t cell_index,
                          std::uint64_t repeat_index);

/// Progress callback: (completed so far, total, task index, seconds the
/// task took). Invoked under an internal mutex, so implementations may
/// print to stderr without further locking.
using ProgressFn =
    std::function<void(std::size_t, std::size_t, std::size_t, double)>;

/// One task's failure, as collected by for_each_index_collect: the index
/// it ran as, the exception text, and the original exception for callers
/// that need to rethrow it.
struct TaskFailure {
  std::size_t index = 0;
  std::string message;
  std::exception_ptr error;
};

/// A small work-stealing thread pool for embarrassingly parallel experiment
/// sweeps (repeat loops, CCA x MTU grids).
///
/// `for_each_index(n, task)` runs task(0..n-1) across `jobs` worker threads
/// and blocks until every index has finished. Each worker owns a contiguous
/// slice of the index space and steals from the tail of other workers'
/// slices when its own runs dry, so uneven per-task cost (slow CCAs, small
/// MTUs) cannot idle the pool.
///
/// Determinism contract: the pool imposes no shared mutable state on tasks.
/// Each task must write only to its own result slot and every simulation
/// seeds its own RNG (via derive_seed); under that contract results are
/// bit-identical for any thread count and any completion order — only the
/// interleaving of progress lines may differ.
class ParallelRunner {
 public:
  /// jobs <= 0 selects std::thread::hardware_concurrency(); jobs == 1 runs
  /// every task inline on the calling thread (the exact serial path).
  explicit ParallelRunner(int jobs = 1, ProgressFn progress = nullptr);

  int jobs() const { return jobs_; }

  /// Run task(i) for every i in [0, n); blocks until all tasks completed.
  /// Failures no longer vanish: a single failing task rethrows its
  /// original exception after the pool drains; multiple failures throw a
  /// std::runtime_error aggregating every task's index and message (in
  /// index order), so a sweep's second and third crashes are never
  /// silently discarded behind the first.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& task) const;

  /// Like for_each_index, but never throws for task failures: every task
  /// runs and every failure is returned (index-ordered; empty means all
  /// succeeded). The sweep supervisor consumes this full list; bare-pool
  /// callers get the aggregated throw above.
  std::vector<TaskFailure> for_each_index_collect(
      std::size_t n, const std::function<void(std::size_t)>& task) const;

 private:
  int jobs_;
  ProgressFn progress_;
};

}  // namespace greencc::app
