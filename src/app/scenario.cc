#include "app/scenario.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "cca/cca.h"

namespace greencc::app {

namespace {
constexpr std::string_view kScenarioSrc = "scenario";
}  // namespace

/// Dispatches packets to per-flow endpoints within one host.
class Scenario::Demux : public net::PacketHandler {
 public:
  void attach(net::FlowId flow, net::PacketHandler* endpoint) {
    endpoints_[flow] = endpoint;
  }
  void handle(net::Packet pkt) override {
    auto it = endpoints_.find(pkt.flow);
    if (it != endpoints_.end()) it->second->handle(pkt);
  }

 private:
  std::unordered_map<net::FlowId, net::PacketHandler*> endpoints_;
};

/// One sender server: bonded NIC, an energy meter, and one CPU core (and
/// one TCP sender) per flow placed on it — one iperf3 process per flow.
struct Scenario::SenderHost {
  net::HostId id = 0;
  std::unique_ptr<Demux> ack_stack;
  std::unique_ptr<net::BondedNic> nic;
  std::unique_ptr<energy::HostEnergyMeter> meter;
  std::vector<std::unique_ptr<energy::CpuCore>> cores;
};

struct Scenario::FlowState {
  FlowSpec spec;
  net::FlowId id = 0;
  int host_index = 0;
  units::BitRate current_rate_limit;  ///< live copy; zero = unlimited
  std::unique_ptr<tcp::TcpSender> sender;
  std::unique_ptr<tcp::TcpReceiver> receiver;
  sim::SimTime started = sim::SimTime::zero();
  sim::SimTime completed = sim::SimTime::zero();
  bool has_started = false;
  bool done = false;
  std::int64_t bytes_granted = 0;
  /// Token-bucket fractional remainder; deliberately a raw double because
  /// units::Bytes is integral and the carry is sub-byte.
  double rate_carry_bytes = 0.0;  // lint-allow: unit-suffix (fractional carry)
  std::int64_t last_report_segments = 0;
  sim::SimTime last_report_time = sim::SimTime::zero();
  std::vector<std::pair<double, double>> series;
  std::vector<FlowResult::TraceSample> trace;
};

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (config_.audit_interval > sim::SimTime::zero()) {
    check::InvariantAuditor::Config audit;
    audit.cadence = config_.audit_interval;
    auditor_ = std::make_unique<check::InvariantAuditor>(audit);
    auditor_->watch_simulator(&sim_);
    // Every queue of the topology reports drops to the ledger (wired at
    // each creation site below), so the global in-flight bound is sound.
    auditor_->set_complete_topology(true);
  }
  switch_ = std::make_unique<net::Switch>(sim_);
  if (auditor_) auditor_->watch_switch("switch", switch_.get());
  build_receiver_host();
}

Scenario::~Scenario() = default;

void Scenario::build_receiver_host() {
  receiver_stack_ = std::make_unique<Demux>();

  // Receiver packet-processing stage (softirq path): service rate depends
  // on the MTU via the per-packet overhead; the backlog queue in front of
  // it tail-drops, which is the end-host loss source at small MTUs.
  net::PortConfig rx_proc;
  rx_proc.rate = units::BitRate::bps(units::kBitsPerByteF /
                                     config_.work.rx_byte_ns *
                                     units::kNanosPerSecond);
  rx_proc.per_packet_ns = config_.work.rx_pkt_ns;
  rx_proc.propagation = sim::SimTime::zero();
  rx_proc.queue_capacity_bytes = units::Bytes{1 << 30};  // packet cap governs
  rx_proc.queue_capacity_packets =
      static_cast<std::size_t>(config_.work.rx_backlog_packets);
  rx_proc.drop_service_ns = config_.work.rx_drop_ns;
  // ECN-capable flows get marked here too (RED-style qdisc marking at the
  // host), at half the backlog depth — without this, ECN-driven algorithms
  // are blind to the receiver-CPU bottleneck at small MTUs.
  rx_proc.ecn_threshold_bytes =
      (config_.work.rx_backlog_packets / 2) * config_.tcp.mtu_bytes;
  rx_backlog_ = std::make_unique<net::QueuedPort>(
      sim_, "receiver:softirq", rx_proc, receiver_stack_.get());

  // Fault injection: the impairment stage sits on the bottleneck wire, in
  // front of the receiver backlog, so injected loss/reorder/corruption hits
  // exactly where real link impairments would — after the switch queue,
  // before end-host processing. Its RNG streams are re-derived from the
  // run seed so parallel repeats stay independent and deterministic.
  net::PacketHandler* bottleneck_sink = rx_backlog_.get();
  if (config_.faults.active()) {
    fault::ImpairmentConfig impair = config_.faults.impair;
    impair.seed = sim::mix_seed(config_.seed, sim::site_hash("fault:data"),
                                impair.seed);
    impaired_link_ = std::make_unique<fault::ImpairedLink>(
        sim_, "fault:data", impair, rx_backlog_.get());
    bottleneck_sink = impaired_link_.get();
  }

  // Switch -> receiver: the 10 Gb/s bottleneck of every experiment, with
  // DCTCP-style step marking for ECN-capable traffic. With
  // use_drr_bottleneck the egress becomes a per-flow weighted scheduler
  // instead (Fig 1's split enforced in the network).
  if (config_.use_drr_bottleneck) {
    net::DrrPort::Config drr;
    drr.rate = config_.bottleneck_rate;
    drr.propagation = config_.link_delay;
    drr.per_flow_queue_bytes = config_.switch_queue_bytes / 2;
    drr_bottleneck_ = std::make_unique<net::DrrPort>(sim_, "switch:drr", drr,
                                                     bottleneck_sink);
    net::PortConfig ingress;  // wire-speed hop in front of the scheduler
    ingress.rate = config_.bottleneck_rate * 4.0;
    ingress.propagation = sim::SimTime::zero();
    bottleneck_port_ = &switch_->add_egress(kReceiverHost, ingress,
                                            drr_bottleneck_.get());
  } else {
    net::PortConfig bottleneck;
    bottleneck.rate = config_.bottleneck_rate;
    bottleneck.propagation = config_.link_delay;
    bottleneck.queue_capacity_bytes = config_.switch_queue_bytes;
    bottleneck.ecn_threshold_bytes = config_.ecn_threshold_bytes;
    bottleneck.aqm = config_.bottleneck_aqm;
    // CoDel's "nearly empty" floor is two MTUs; tie it to the MTU this
    // experiment actually runs rather than the AqmConfig default.
    bottleneck.aqm.mtu_bytes = config_.tcp.mtu_bytes;
    bottleneck_port_ = &switch_->add_egress(kReceiverHost, bottleneck,
                                            bottleneck_sink);
  }

  // Receiver -> switch: ACK return path, never congested.
  net::PortConfig ack_port;
  ack_port.rate = config_.bottleneck_rate;
  ack_port.propagation = config_.link_delay;
  receiver_nic_ = std::make_unique<net::QueuedPort>(
      sim_, "receiver:nic", ack_port, switch_.get());

  if (auditor_) {
    check::PacketLedger* ledger = &auditor_->ledger();
    switch_->set_ledger(ledger);  // bottleneck (or DRR ingress) egress
    rx_backlog_->set_ledger(ledger);
    receiver_nic_->set_ledger(ledger);
    auditor_->watch_port(rx_backlog_.get());
    auditor_->watch_port(receiver_nic_.get());
    if (impaired_link_) {
      impaired_link_->set_ledger(ledger);
      auditor_->watch_impairment(impaired_link_.get());
    }
    if (drr_bottleneck_) {
      drr_bottleneck_->set_ledger(ledger);
      auditor_->watch_drr("switch:drr", drr_bottleneck_.get());
    }
  }

  if (config_.meter_receiver) {
    // The receiver server as its own RAPL domain: one softirq/app core
    // charged per processed packet, per backlog drop and per generated ACK.
    receiver_meter_ = std::make_unique<energy::HostEnergyMeter>(
        sim_, energy::PackagePowerModel(config_.power), config_.meter_tick);
    receiver_core_ = std::make_unique<energy::CpuCore>();
    receiver_core_->set_jitter(&rng_, config_.work_jitter);
    receiver_meter_->attach_core(receiver_core_.get());
    auto* meter = receiver_meter_.get();
    auto* core = receiver_core_.get();
    const auto* work = &config_.work;
    auto* sim = &sim_;
    rx_backlog_->set_on_transmit([meter, core, sim, work](units::Bytes b) {
      meter->on_packet_sent(b);  // drives the pps/Gb/s power terms
      core->charge(sim->now(),
                   work->rx_pkt_ns +
                       work->rx_byte_ns * static_cast<double>(b.count()));
    });
    rx_backlog_->set_on_drop([core, sim, work](units::Bytes) {
      core->charge(sim->now(), work->rx_drop_ns);
    });
    receiver_nic_->set_on_transmit([core, sim, work](units::Bytes) {
      core->charge(sim->now(), work->ack_ns);  // ACK generation
    });
  }
}

Scenario::SenderHost& Scenario::sender_host(int index) {
  while (static_cast<int>(senders_.size()) <= index) {
    auto host = std::make_unique<SenderHost>();
    host->id = static_cast<net::HostId>(senders_.size() + 1);
    host->ack_stack = std::make_unique<Demux>();

    net::PortConfig nic_port;
    nic_port.rate = config_.bottleneck_rate;
    nic_port.propagation = config_.link_delay;
    host->nic = std::make_unique<net::BondedNic>(
        sim_, "sender" + std::to_string(host->id),
        config_.sender_nic_ports, nic_port, switch_.get());

    host->meter = std::make_unique<energy::HostEnergyMeter>(
        sim_, energy::PackagePowerModel(config_.power), config_.meter_tick);
    host->meter->set_stress_cores(config_.stress_cores);
    auto* meter = host->meter.get();
    host->nic->set_on_transmit(
        [meter](units::Bytes bytes) { meter->on_packet_sent(bytes); });

    // ACK return egress from the switch to this host.
    net::PortConfig return_port;
    return_port.rate = config_.bottleneck_rate;
    return_port.propagation = config_.link_delay;
    net::QueuedPort& ret =
        switch_->add_egress(host->id, return_port, host->ack_stack.get());
    if (trace_) {
      host->nic->set_trace(trace_);
      ret.set_trace(trace_);
    }
    if (auditor_) {
      host->nic->set_ledger(&auditor_->ledger());
      ret.set_ledger(&auditor_->ledger());
      auditor_->watch_nic("sender" + std::to_string(host->id),
                          host->nic.get());
    }

    // Hosts born mid-run (open-loop arrivals) start metering immediately.
    if (metering_started_) host->meter->start();

    senders_.push_back(std::move(host));
  }
  return *senders_[static_cast<std::size_t>(index)];
}

void Scenario::add_flow(const FlowSpec& spec) {
  auto flow = std::make_unique<FlowState>();
  flow->spec = spec;
  flow->id = flows_.size() + 1;
  flow->host_index = spec.sender_host >= 0
                         ? spec.sender_host
                         : static_cast<int>(flows_.size());

  SenderHost& host = sender_host(flow->host_index);
  auto core = std::make_unique<energy::CpuCore>();
  core->set_jitter(&rng_, config_.work_jitter);
  host.meter->attach_core(core.get());

  cca::CcaConfig cca_config;
  cca_config.mss_bytes = config_.tcp.mss_bytes();
  cca_config.line_rate = config_.bottleneck_rate;
  cca_config.initial_cwnd = config_.tcp.initial_cwnd;
  auto cc = cca::make_cca(spec.cca, cca_config);

  flow->sender = std::make_unique<tcp::TcpSender>(
      sim_, flow->id, host.id, kReceiverHost, config_.tcp, std::move(cc),
      core.get(), host.nic.get(), config_.work);
  host.ack_stack->attach(flow->id, flow->sender.get());

  flow->receiver = std::make_unique<tcp::TcpReceiver>(
      sim_, flow->id, kReceiverHost, config_.tcp, receiver_nic_.get());
  receiver_stack_->attach(flow->id, flow->receiver.get());
  if (trace_) {
    flow->sender->set_trace(trace_);
    flow->receiver->set_trace(trace_);
  }
  if (drr_bottleneck_) drr_bottleneck_->set_weight(flow->id, spec.weight);
  if (auditor_) {
    auditor_->watch_flow(flow->id, flow->sender.get(), flow->receiver.get());
  }

  host.cores.push_back(std::move(core));
  flows_.push_back(std::move(flow));
}

void Scenario::set_trace_sink(trace::TraceSink* sink) {
  trace_ = sink;
  // Everything built so far; components created after this call are wired
  // at creation (sender_host / add_flow check trace_).
  switch_->set_trace(sink);
  rx_backlog_->set_trace(sink);
  receiver_nic_->set_trace(sink);
  if (impaired_link_) impaired_link_->set_trace(sink);
  for (auto& host : senders_) host->nic->set_trace(sink);
  for (auto& flow : flows_) {
    flow->sender->set_trace(sink);
    flow->receiver->set_trace(sink);
  }
}

void Scenario::on_flow_complete(FlowState& flow) {
  flow.done = true;
  flow.completed = sim_.now();
  last_completion_ = sim_.now();
  ++completed_flows_;
  if (trace_) {
    trace_->emit({sim_.now(), trace::EventClass::kFlowFinish, flow.id,
                  kScenarioSrc, -1, (flow.completed - flow.started).sec(),
                  0.0});
  }

  // Start any flow chained behind this one ("full speed, then idle").
  const int this_index = static_cast<int>(flow.id) - 1;
  for (auto& next : flows_) {
    if (!next->done && next->spec.start_after_flow == this_index &&
        !next->has_started && next.get() != &flow) {
      start_flow(*next);
    }
    // Release rate caps held only while this flow was running.
    if (!next->done && next->spec.unlimit_after_flow == this_index &&
        next.get() != &flow && next->current_rate_limit.bps() > 0.0) {
      next->current_rate_limit = units::BitRate::zero();
      if (next->has_started) {
        // Grant everything still owed and let TCP rip.
        const std::int64_t mss = config_.tcp.mss_bytes().count();
        const std::int64_t total =
            (next->spec.bytes.count() + mss - 1) / mss * mss;
        const std::int64_t owed = total - next->bytes_granted;
        if (owed > 0) {
          next->bytes_granted = total;
          next->sender->add_app_data(units::Bytes{owed});
          next->sender->mark_app_eof();
          next->sender->start();
        }
      }
    }
  }

  if (!open_loop_ && completed_flows_ == static_cast<int>(flows_.size())) {
    sim_.stop();
  }
}

void Scenario::spawn_flow(const FlowSpec& spec) {
  if (!open_loop_) {
    throw std::logic_error("spawn_flow requires enable_open_loop()");
  }
  add_flow(spec);
  start_flow(*flows_.back());
}

void Scenario::start_flow(FlowState& flow) {
  flow.started = sim_.now();
  flow.has_started = true;
  flow.last_report_time = sim_.now();
  flow.current_rate_limit = flow.spec.rate_limit;
  if (trace_) {
    trace_->emit({sim_.now(), trace::EventClass::kFlowStart, flow.id,
                  kScenarioSrc, -1,
                  static_cast<double>(flow.spec.bytes.count()), 0.0});
  }
  auto* state = &flow;
  flow.sender->set_on_complete([this, state] { on_flow_complete(*state); });

  const std::int64_t mss = config_.tcp.mss_bytes().count();
  const std::int64_t total =
      (flow.spec.bytes.count() + mss - 1) / mss * mss;  // whole segments

  if (flow.spec.rate_limit.bps() <= 0.0) {
    flow.sender->add_app_data(units::Bytes{total});
    flow.sender->mark_app_eof();
    flow.sender->start();
    return;
  }

  // Application token bucket (iperf3 -b): grant bytes every 500 us.
  sim_.schedule(sim::SimTime::zero(), [this, state] { pump_flow(*state); });
}

void Scenario::pump_flow(FlowState& flow) {
  const std::int64_t mss = config_.tcp.mss_bytes().count();
  const std::int64_t total =
      (flow.spec.bytes.count() + mss - 1) / mss * mss;  // whole segments
  const sim::SimTime refill = sim::SimTime::microseconds(500);
  if (flow.done || flow.bytes_granted >= total) return;
  // Released rate caps are handled elsewhere.
  if (flow.current_rate_limit.bps() <= 0.0) return;
  flow.rate_carry_bytes +=
      flow.current_rate_limit.bps() / units::kBitsPerByteF * refill.sec();
  auto grant = static_cast<std::int64_t>(flow.rate_carry_bytes);
  grant = std::min(grant, total - flow.bytes_granted);
  if (grant > 0) {
    flow.rate_carry_bytes -= static_cast<double>(grant);
    flow.bytes_granted += grant;
    flow.sender->add_app_data(units::Bytes{grant});
    if (flow.bytes_granted >= total) flow.sender->mark_app_eof();
    flow.sender->start();
  }
  if (flow.bytes_granted < total) {
    sim_.schedule(refill, [this, state = &flow] { pump_flow(*state); });
  }
}

ScenarioResult Scenario::run() {
  if (flows_.empty() && !open_loop_) {
    throw std::logic_error("Scenario::run: no flows added");
  }
  experiment_start_ = sim_.now();

  metering_started_ = true;
  for (auto& host : senders_) {
    host->meter->set_record_samples(record_power_);
    host->meter->start();
  }
  if (receiver_meter_) receiver_meter_->start();

  for (auto& flow : flows_) {
    if (flow->spec.start_after_flow >= 0) continue;
    sim_.schedule_at(std::max(sim_.now(), flow->spec.start_time),
                     [this, f = flow.get()] { start_flow(*f); });
  }

  // Optional throughput reporter (Fig 3 time series).
  std::shared_ptr<std::function<void()>> reporter;
  if (config_.report_interval > sim::SimTime::zero()) {
    reporter = std::make_shared<std::function<void()>>();
    // Self-capture must be weak: a by-value shared_ptr capture would make
    // the function own itself and leak. The strong ref above outlives
    // run_until, so lock() succeeds for every in-run tick.
    *reporter = [this, weak = std::weak_ptr<std::function<void()>>(reporter)] {
      for (auto& flow : flows_) {
        const std::int64_t segs = flow->sender->snd_una();
        const double gbps =
            static_cast<double>(segs - flow->last_report_segments) *
            static_cast<double>(config_.tcp.mss_bytes().count()) *
            units::kBitsPerByteF /
            (sim_.now() - flow->last_report_time).sec() /
            units::kBitsPerGigabit;
        flow->series.emplace_back(sim_.now().sec(), gbps);
        flow->last_report_segments = segs;
        flow->last_report_time = sim_.now();
      }
      if (auto self = weak.lock()) {
        sim_.schedule(config_.report_interval, *self);
      }
    };
    sim_.schedule(config_.report_interval, *reporter);
  }

  // Optional transport-state tracer (cwnd / srtt / pipe + queue depth).
  std::shared_ptr<std::function<void()>> tracer;
  std::vector<std::pair<double, std::int64_t>> queue_series;
  if (config_.trace_interval > sim::SimTime::zero()) {
    tracer = std::make_shared<std::function<void()>>();
    // Weak self-capture for the same reason as the reporter above.
    *tracer = [this, weak = std::weak_ptr<std::function<void()>>(tracer),
               &queue_series] {
      for (auto& flow : flows_) {
        if (flow->done || !flow->has_started) continue;
        FlowResult::TraceSample sample;
        sample.t_sec = sim_.now().sec();
        sample.cwnd_segments =
            flow->sender->congestion_control().cwnd_segments();
        sample.srtt_us = flow->sender->rtt().srtt().us();
        sample.pipe_segments =
            static_cast<double>(flow->sender->inflight_segments());
        flow->trace.push_back(sample);
      }
      queue_series.emplace_back(sim_.now().sec(),
                                bottleneck_port_->queue_bytes().count());
      if (auto self = weak.lock()) {
        sim_.schedule(config_.trace_interval, *self);
      }
    };
    sim_.schedule(config_.trace_interval, *tracer);
  }

  if (auditor_) {
    auditor_->set_trace(trace_);
    auditor_->arm(sim_);
  }

  // Arm the fault timetable (link flaps, re-rating) against the bottleneck.
  if (!config_.faults.schedule.empty()) {
    config_.faults.schedule.arm(sim_, bottleneck_port_, impaired_link_.get(),
                                trace_);
  }

  // Profile the simulator's own execution, not scenario setup: wall-clock
  // and event counts bracket run_until alone.
  const std::uint64_t events_before = sim_.events_executed();
  // lint-allow: wall-clock (run profile measures host time, not sim results)
  const auto wall_start = std::chrono::steady_clock::now();
  sim_.run_until(config_.deadline);
  const auto wall_end = std::chrono::steady_clock::now();  // lint-allow: wall-clock

  if (auditor_) {
    // Final end-of-run walk: the cadence may not land on the last event,
    // and a run is only certified clean if its terminal state audits too.
    auditor_->disarm();
    auditor_->check_now();
  }

  // Energy protocol: counters are read when the last flow completes, like
  // the paper's before/after RAPL reads around the whole experiment.
  ScenarioResult result;
  result.profile.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.profile.events_executed = sim_.events_executed() - events_before;
  result.profile.peak_pending_events = sim_.peak_pending_events();
  result.profile.events_per_sec =
      result.profile.wall_seconds > 0.0
          ? static_cast<double>(result.profile.events_executed) /
                result.profile.wall_seconds
          : 0.0;
  result.all_completed = completed_flows_ == static_cast<int>(flows_.size());
  // Outcome taxonomy for the sweep supervisor (and anyone else reading a
  // partial run): normal completion also calls sim_.stop(), so it must be
  // classified first; an external stop only shows once completion is ruled
  // out. The end-of-run audit above ran in every case — a cut cell still
  // has its books checked, so a quarantined cell cannot silently hide an
  // unbalanced packet ledger.
  if (result.all_completed) {
    result.stop_reason = "completed";
  } else if (sim_.budget_exhausted()) {
    result.stop_reason = "budget_exhausted";
  } else if (sim_.stop_requested()) {
    result.stop_reason = "stopped";
  } else {
    result.stop_reason = "deadline";
  }
  const sim::SimTime end =
      result.all_completed ? last_completion_ : sim_.now();
  result.duration_sec = (end - experiment_start_).sec();

  if (receiver_meter_) {
    receiver_meter_->stop();
    ScenarioResult::HostEnergy he;
    he.host = 0;  // the receiver
    he.energy = receiver_meter_->energy();
    he.avg_power = result.duration_sec > 0
                       ? units::Power::watts(he.energy.joules() /
                                             result.duration_sec)
                       : units::Power::zero();
    result.total_energy += he.energy;
    result.hosts.push_back(he);
  }
  for (auto& host : senders_) {
    host->meter->stop();
    ScenarioResult::HostEnergy he;
    he.host = static_cast<int>(host->id);
    he.energy = host->meter->energy();
    he.avg_power = result.duration_sec > 0
                       ? units::Power::watts(he.energy.joules() /
                                             result.duration_sec)
                       : units::Power::zero();
    result.total_energy += he.energy;
    result.hosts.push_back(he);
    if (host->id == 1) {
      for (const auto& s : host->meter->samples()) {
        result.power_series.emplace_back(s.when.sec(), s.power.watts());
      }
    }
  }
  result.avg_power = result.duration_sec > 0
                         ? units::Power::watts(result.total_energy.joules() /
                                               result.duration_sec)
                         : units::Power::zero();

  for (auto& flow : flows_) {
    FlowResult fr;
    fr.flow = flow->id;
    fr.cca = flow->spec.cca;
    fr.bytes = flow->spec.bytes;
    fr.fct_sec = flow->done ? (flow->completed - flow->started).sec() : -1.0;
    fr.finished_at_sec =
        flow->done ? (flow->completed - experiment_start_).sec() : -1.0;
    // The bps representation is the exact `bytes * 8 / fct` double; readers
    // reporting Gb/s divide by 1e9 exactly as the raw arithmetic here did.
    fr.avg_rate = fr.fct_sec > 0
                      ? units::BitRate::bps(
                            static_cast<double>(fr.bytes.count()) *
                            units::kBitsPerByteF / fr.fct_sec)
                      : units::BitRate::zero();
    fr.delivered_bytes = units::Bytes{std::min<std::int64_t>(
        flow->sender->snd_una() * config_.tcp.mss_bytes().count(),
        flow->spec.bytes.count())};
    fr.retransmissions = flow->sender->stats().retransmissions;
    fr.timeouts = flow->sender->stats().timeouts;
    fr.segments_sent = flow->sender->stats().segments_sent;
    fr.series = std::move(flow->series);
    fr.trace = std::move(flow->trace);
    result.flows.push_back(std::move(fr));
  }
  result.bottleneck = bottleneck_port_->queue_stats();
  if (drr_bottleneck_) {
    result.bottleneck.dropped += drr_bottleneck_->dropped();
  }
  result.rx_backlog = rx_backlog_->queue_stats();
  result.queue_series = std::move(queue_series);
  collect_counters(result);
  return result;
}

void Scenario::collect_counters(ScenarioResult& result) {
  // Pull-model snapshot: readers over counters the components already keep,
  // registered only here at end of run — the simulation hot path never sees
  // the registry.
  trace::CounterRegistry reg;
  switch_->register_counters(reg);  // every egress port + unroutable
  rx_backlog_->register_counters(reg);
  receiver_nic_->register_counters(reg);
  if (impaired_link_) impaired_link_->register_counters(reg);
  if (drr_bottleneck_) {
    reg.add("switch:drr.dropped", [this] {
      return static_cast<std::uint64_t>(drr_bottleneck_->dropped());
    });
  }
  if (receiver_meter_) {
    receiver_meter_->register_counters(reg, "host0.meter.");
  }
  for (auto& host : senders_) {
    host->nic->register_counters(reg);
    host->meter->register_counters(
        reg, "host" + std::to_string(host->id) + ".meter.");
  }
  result.counters = reg.snapshot();

  // Per-flow transport counters, matched to result.flows by index.
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    trace::CounterRegistry flow_reg;
    flows_[i]->sender->register_counters(flow_reg, "sender.");
    flows_[i]->receiver->register_counters(flow_reg, "receiver.");
    result.flows[i].counters = flow_reg.snapshot();
  }
}

}  // namespace greencc::app
