#include "app/scenario_builder.h"

#include <stdexcept>

namespace greencc::app {

std::unique_ptr<Scenario> ScenarioBuilder::build() const {
  auto scenario = std::make_unique<Scenario>(config_);
  for (const FlowSpec& spec : flows_) scenario->add_flow(spec);
  return scenario;
}

ScenarioResult ScenarioBuilder::run() const { return build()->run(); }

WorkloadBuilder& WorkloadBuilder::sizes(const std::string& spec) {
  if (spec.rfind("fixed:", 0) == 0) {
    const std::int64_t bytes = std::stoll(spec.substr(6));
    if (bytes <= 0) {
      throw std::invalid_argument("workload sizes: fixed size must be > 0");
    }
    sizes_ = fixed_size(bytes);
  } else if (spec == "websearch") {
    sizes_ = websearch_workload();
  } else if (spec == "datamining") {
    sizes_ = datamining_workload();
  } else {
    throw std::invalid_argument(
        "workload sizes: expected fixed:<bytes>, websearch or datamining, "
        "got '" +
        spec + "'");
  }
  config_.sizes = sizes_.get();
  return *this;
}

WorkloadResult WorkloadBuilder::run() const {
  if (config_.sizes == nullptr) {
    throw std::invalid_argument("workload: no flow-size distribution set");
  }
  return run_workload(config_);
}

}  // namespace greencc::app
