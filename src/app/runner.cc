#include "app/runner.h"

namespace greencc::app {

RepeatResult run_repeated(
    const std::function<std::unique_ptr<Scenario>(std::uint64_t seed)>& builder,
    int repeats, std::uint64_t base_seed) {
  RepeatResult agg;
  for (int i = 0; i < repeats; ++i) {
    auto scenario = builder(base_seed + static_cast<std::uint64_t>(i));
    ScenarioResult result = scenario->run();
    agg.joules.add(result.total_joules);
    agg.watts.add(result.avg_watts);
    agg.duration_sec.add(result.duration_sec);
    std::int64_t retx = 0;
    for (const auto& flow : result.flows) retx += flow.retransmissions;
    agg.retransmissions.add(static_cast<double>(retx));
    agg.runs.push_back(std::move(result));
  }
  return agg;
}

}  // namespace greencc::app
