#include "app/runner.h"

#include <algorithm>
#include <cstdio>

namespace greencc::app {

RepeatResult run_repeated(
    const std::function<std::unique_ptr<Scenario>(std::uint64_t seed)>& builder,
    const RepeatOptions& options) {
  const auto repeats = static_cast<std::size_t>(std::max(options.repeats, 0));
  std::vector<ScenarioResult> runs(repeats);

  ProgressFn progress;
  if (options.progress) {
    // The pool invokes this after runs[index] is written, so the run's
    // profile is safe to read here.
    progress = [&options, &runs](std::size_t done, std::size_t total,
                                 std::size_t index, double secs) {
      const RunProfile& prof = runs[index].profile;
      std::fprintf(stderr,
                   "  %s: [%zu/%zu] repeat %zu seed=%llu  %.2fs  "
                   "%llu events (%.2fM ev/s, peak queue %llu)\n",
                   options.label.c_str(), done, total, index,
                   static_cast<unsigned long long>(derive_seed(
                       options.base_seed, options.cell_index, index)),
                   secs,
                   static_cast<unsigned long long>(prof.events_executed),
                   prof.events_per_sec / 1e6,
                   static_cast<unsigned long long>(prof.peak_pending_events));
    };
  }

  ParallelRunner pool(options.jobs, std::move(progress));
  pool.for_each_index(repeats, [&](std::size_t i) {
    auto scenario =
        builder(derive_seed(options.base_seed, options.cell_index, i));
    std::unique_ptr<trace::TraceSink> sink;
    if (options.trace_sink_factory) {
      sink = options.trace_sink_factory(i);
      if (sink) scenario->set_trace_sink(sink.get());
    }
    runs[i] = scenario->run();
    // scenario (the only holder of the sink pointer) dies before the sink.
    scenario.reset();
  });

  // Aggregate serially in repeat order after the pool drained: bit-identical
  // to the jobs=1 path regardless of completion order.
  RepeatResult agg;
  for (auto& result : runs) {
    agg.joules.add(result.total_energy.joules());
    agg.watts.add(result.avg_power.watts());
    agg.duration_sec.add(result.duration_sec);
    std::int64_t retx = 0;
    for (const auto& flow : result.flows) retx += flow.retransmissions;
    agg.retransmissions.add(static_cast<double>(retx));
    agg.runs.push_back(std::move(result));
  }
  return agg;
}

RepeatResult run_repeated(
    const std::function<std::unique_ptr<Scenario>(std::uint64_t seed)>& builder,
    int repeats, std::uint64_t base_seed) {
  RepeatOptions options;
  options.repeats = repeats;
  options.base_seed = base_seed;
  return run_repeated(builder, options);
}

}  // namespace greencc::app
