#include "app/runner.h"

#include <algorithm>
#include <cstdio>

namespace greencc::app {

RepeatResult run_repeated(
    const std::function<std::unique_ptr<Scenario>(std::uint64_t seed)>& builder,
    const RepeatOptions& options) {
  const auto repeats = static_cast<std::size_t>(std::max(options.repeats, 0));
  std::vector<ScenarioResult> runs(repeats);

  ProgressFn progress;
  if (options.progress) {
    progress = [&options](std::size_t done, std::size_t total,
                          std::size_t index, double secs) {
      std::fprintf(stderr, "  %s: [%zu/%zu] repeat %zu seed=%llu  %.2fs\n",
                   options.label.c_str(), done, total, index,
                   static_cast<unsigned long long>(derive_seed(
                       options.base_seed, options.cell_index, index)),
                   secs);
    };
  }

  ParallelRunner pool(options.jobs, std::move(progress));
  pool.for_each_index(repeats, [&](std::size_t i) {
    auto scenario =
        builder(derive_seed(options.base_seed, options.cell_index, i));
    runs[i] = scenario->run();
  });

  // Aggregate serially in repeat order after the pool drained: bit-identical
  // to the jobs=1 path regardless of completion order.
  RepeatResult agg;
  for (auto& result : runs) {
    agg.joules.add(result.total_joules);
    agg.watts.add(result.avg_watts);
    agg.duration_sec.add(result.duration_sec);
    std::int64_t retx = 0;
    for (const auto& flow : result.flows) retx += flow.retransmissions;
    agg.retransmissions.add(static_cast<double>(retx));
    agg.runs.push_back(std::move(result));
  }
  return agg;
}

RepeatResult run_repeated(
    const std::function<std::unique_ptr<Scenario>(std::uint64_t seed)>& builder,
    int repeats, std::uint64_t base_seed) {
  RepeatOptions options;
  options.repeats = repeats;
  options.base_seed = base_seed;
  return run_repeated(builder, options);
}

}  // namespace greencc::app
