#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "app/parallel_runner.h"
#include "app/scenario.h"
#include "stats/stats.h"
#include "trace/trace.h"

namespace greencc::app {

/// Aggregate of repeated scenario runs — the paper repeats every scenario
/// 10 times and reports means with standard deviations.
struct RepeatResult {
  stats::Summary joules;
  stats::Summary watts;
  stats::Summary duration_sec;
  stats::Summary retransmissions;
  std::vector<ScenarioResult> runs;
};

/// How to repeat (and optionally parallelize) a scenario.
struct RepeatOptions {
  int repeats = 1;
  std::uint64_t base_seed = 1;
  /// Grid-cell coordinate mixed into the per-run seed. Callers sweeping a
  /// grid (CCA x MTU, fraction, load) give every cell a distinct index so
  /// repeats are statistically independent across cells; a single-cell
  /// caller leaves it 0.
  std::uint64_t cell_index = 0;
  /// Worker threads for the repeats; 1 = serial on the calling thread,
  /// <= 0 = all hardware threads. Results are bit-identical regardless.
  int jobs = 1;
  /// Emit one wall-clock line per finished run to stderr.
  bool progress = false;
  std::string label = "run";  ///< prefix for progress lines
  /// When set, called once per run with the repeat index; the returned sink
  /// is attached to that run's scenario and destroyed (flushing it) right
  /// after the run finishes. One sink per run keeps parallel repeats
  /// race-free — sinks are never shared across worker threads. Return
  /// nullptr to leave a particular run untraced.
  std::function<std::unique_ptr<trace::TraceSink>(std::size_t run_index)>
      trace_sink_factory;
};

/// Run `builder` `options.repeats` times with distinct seeds and aggregate.
///
/// The builder receives the run's seed and must return a fully configured
/// Scenario (flows added). Seeds are `derive_seed(base_seed, cell_index,
/// i)` — see parallel_runner.h — so any individual run can be reproduced
/// exactly and repeats never overlap across grid cells. Aggregation happens
/// in repeat order after all runs finish, so the result is bit-identical
/// for any `jobs` value.
RepeatResult run_repeated(
    const std::function<std::unique_ptr<Scenario>(std::uint64_t seed)>& builder,
    const RepeatOptions& options);

/// Serial convenience overload (jobs = 1, cell_index = 0).
RepeatResult run_repeated(
    const std::function<std::unique_ptr<Scenario>(std::uint64_t seed)>& builder,
    int repeats, std::uint64_t base_seed = 1);

}  // namespace greencc::app
