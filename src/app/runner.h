#pragma once

#include <functional>
#include <vector>

#include "app/scenario.h"
#include "stats/stats.h"

namespace greencc::app {

/// Aggregate of repeated scenario runs — the paper repeats every scenario
/// 10 times and reports means with standard deviations.
struct RepeatResult {
  stats::Summary joules;
  stats::Summary watts;
  stats::Summary duration_sec;
  stats::Summary retransmissions;
  std::vector<ScenarioResult> runs;
};

/// Run `builder` `repeats` times with distinct seeds and aggregate.
///
/// The builder receives the run's seed and must return a fully configured
/// Scenario (flows added). Seeds are `base_seed + i`, so any individual run
/// can be reproduced exactly.
RepeatResult run_repeated(
    const std::function<std::unique_ptr<Scenario>(std::uint64_t seed)>& builder,
    int repeats, std::uint64_t base_seed = 1);

}  // namespace greencc::app
