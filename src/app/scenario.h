#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/auditor.h"
#include "energy/calibration.h"
#include "fault/plan.h"
#include "energy/cpu.h"
#include "energy/meter.h"
#include "net/packet.h"
#include "net/drr.h"
#include "net/switch.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"
#include "tcp/tcp_config.h"
#include "trace/counters.h"
#include "trace/trace.h"
#include "units/units.h"

namespace greencc::app {

/// One flow of the experiment: an iperf3-like bulk transfer, optionally
/// rate-limited (iperf3 -b) with an application-level token bucket.
struct FlowSpec {
  std::string cca = "cubic";
  units::Bytes bytes{1'250'000'000};   ///< 10 Gbit, the Fig 1 default
  units::BitRate rate_limit;           ///< zero = unlimited
  sim::SimTime start_time = sim::SimTime::zero();
  /// Host to place the sender on; -1 allocates a dedicated host (the
  /// default — each flow then has its own RAPL domain, the accounting the
  /// paper's Fig 1 analysis uses).
  int sender_host = -1;
  /// If >= 0, ignore start_time and start when that flow (by add order)
  /// completes — the "full speed, then idle" schedule of Figs 1/3.
  int start_after_flow = -1;
  /// If >= 0, drop this flow's rate limit once that flow (by add order)
  /// completes — the Fig 1 weighted schedule: flow 2 is held to the
  /// leftover bandwidth while flow 1 runs, then "uses the rest of the
  /// link".
  int unlimit_after_flow = -1;
  /// Scheduling weight at a DRR bottleneck (use_drr_bottleneck). The Fig 1
  /// split enforced in-network instead of at the application.
  double weight = 1.0;
};

/// Testbed parameters mirroring §3 of the paper.
struct ScenarioConfig {
  tcp::TcpConfig tcp;
  units::BitRate bottleneck_rate = units::BitRate::gbps(10);
  sim::SimTime link_delay = sim::SimTime::microseconds(5);
  units::Bytes switch_queue_bytes{1 << 20};
  /// ECN step-marking threshold at the bottleneck, applied to ECN-capable
  /// packets (only DCTCP sets ECT). ~65 full-size 1500B frames.
  units::Bytes ecn_threshold_bytes{100'000};
  /// Full AQM override for the bottleneck queue (RED, CoDel); when mode is
  /// kNone the step threshold above applies.
  net::AqmConfig bottleneck_aqm;
  int sender_nic_ports = 2;  ///< bonded 2x10G, as in the paper
  /// Replace the bottleneck's FIFO with per-flow DRR scheduling (weights
  /// from FlowSpec::weight). ECN step marking is FIFO-only.
  bool use_drr_bottleneck = false;
  int stress_cores = 0;      ///< background load on every sender host
  energy::PowerCalibration power;
  energy::WorkCalibration work;
  sim::SimTime meter_tick = sim::SimTime::milliseconds(1);
  sim::SimTime report_interval = sim::SimTime::zero();  ///< 0 = no series
  /// When set, per-flow transport state (cwnd, srtt, pipe) and the
  /// bottleneck queue depth are sampled at this interval into the result's
  /// trace vectors — the window-dynamics view used when debugging a CCA.
  sim::SimTime trace_interval = sim::SimTime::zero();
  /// Meter the receiver server too (the paper's testbed has two metered
  /// servers; its Fig 1 arithmetic, which we default to, accounts senders
  /// only). When set, the receiver appears in ScenarioResult::hosts as
  /// host 0 and its energy joins total_joules.
  bool meter_receiver = false;
  /// Run-to-run variability: per-work-item cost jitter amplitude (cache and
  /// scheduling noise on real hosts; gives the stddev the paper reports
  /// over its 10 repeats).
  double work_jitter = 0.02;
  std::uint64_t seed = 1;
  sim::SimTime deadline = sim::SimTime::seconds(600.0);
  /// When set, an InvariantAuditor walks the whole topology at this
  /// simulated-time cadence (plus once at end of run) and aborts — with a
  /// structured report through the trace sink — on the first broken
  /// invariant. Zero (the default) keeps the audit layer entirely out of
  /// the run; measurement builds pay nothing.
  sim::SimTime audit_interval = sim::SimTime::zero();
  /// Fault injection (src/fault/): when active, an ImpairedLink is
  /// installed on the bottleneck link in front of the receiver backlog and
  /// the plan's schedule of link events is armed against the bottleneck
  /// port. The impairment RNG is re-derived from (seed, plan seed) per run,
  /// so repeats stay independent and `--jobs` determinism holds. Inactive
  /// (the default) builds no fault machinery at all.
  fault::FaultPlan faults;
};

/// Result of one finished flow.
struct FlowResult {
  net::FlowId flow = 0;
  std::string cca;
  units::Bytes bytes;
  units::Bytes delivered_bytes;  ///< cumulatively ACKed (<= bytes)
  double fct_sec = 0.0;      ///< completion minus this flow's own start
  double finished_at_sec = 0.0;  ///< completion relative to experiment start
                                 ///< (what SRPT-style orderings optimize)
  units::BitRate avg_rate;
  std::int64_t retransmissions = 0;
  std::int64_t timeouts = 0;
  std::int64_t segments_sent = 0;
  /// Throughput time series (interval end time, Gb/s) when
  /// `report_interval` is set.
  std::vector<std::pair<double, double>> series;

  /// Transport-state samples when `trace_interval` is set.
  struct TraceSample {
    double t_sec = 0.0;
    double cwnd_segments = 0.0;
    double srtt_us = 0.0;
    double pipe_segments = 0.0;
  };
  std::vector<TraceSample> trace;

  /// This flow's transport counters ("sender.retransmissions",
  /// "receiver.acks_sent", ...), snapshotted at end of run.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Execution profile of one scenario run — how hard the simulator worked,
/// as opposed to what the simulated network did.
struct RunProfile {
  /// Host wall-clock spent in run() — profiling of the simulator process
  /// itself, not a simulated quantity, so it stays a raw double.
  double wall_seconds = 0.0;  // lint-allow: unit-suffix (host wall-clock profiling)
  std::uint64_t events_executed = 0;    ///< simulator events dispatched
  std::uint64_t peak_pending_events = 0;  ///< event-queue high-water mark
  double events_per_sec = 0.0;          ///< executed / wall_seconds
};

/// Result of one scenario run.
struct ScenarioResult {
  std::vector<FlowResult> flows;
  double duration_sec = 0.0;      ///< start of experiment to last completion
  units::Energy total_energy;     ///< summed over sender hosts
  units::Power avg_power;         ///< total_energy / duration
  struct HostEnergy {
    int host = 0;
    units::Energy energy;
    units::Power avg_power;
  };
  std::vector<HostEnergy> hosts;
  /// Bottleneck-port statistics (drops, marks).
  net::QueueStats bottleneck;
  /// Receiver softirq backlog statistics (end-host drops).
  net::QueueStats rx_backlog;
  bool all_completed = false;
  /// Power samples of host 0 (populated when `record_power` set).
  std::vector<std::pair<double, double>> power_series;
  /// Bottleneck queue depth samples (time, bytes) when `trace_interval` set.
  std::vector<std::pair<double, std::int64_t>> queue_series;
  /// Network- and energy-side counters (switch ports, receiver backlog,
  /// NICs, meters), snapshotted at end of run, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Simulator execution profile of this run.
  RunProfile profile;
  /// Why the run ended: "completed" (every flow finished), "deadline"
  /// (sim-time deadline hit first), "stopped" (Simulator::stop() from
  /// outside — the supervisor watchdog's wall-deadline cut), or
  /// "budget_exhausted" (the Simulator event budget ran out). Anything but
  /// "completed" means the measurements cover a truncated run; the sweep
  /// supervisor never journals or aggregates such cells.
  std::string stop_reason = "completed";
};

/// Builds and runs the paper's testbed: N sender hosts with bonded NICs, a
/// switch whose egress to the single receiver host is the 10 Gb/s
/// bottleneck, per-host RAPL-style energy metering, and one TCP flow per
/// FlowSpec. The scenario owns every object for the duration of `run()`.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Add a flow before calling run().
  void add_flow(const FlowSpec& spec);

  /// Open-loop mode: run() no longer stops when every flow added so far
  /// completes; it runs to the deadline while spawn_flow() injects arrivals.
  void enable_open_loop() { open_loop_ = true; }

  /// Inject and immediately start a flow while the simulator is running
  /// (call from a scheduled event; requires enable_open_loop()).
  void spawn_flow(const FlowSpec& spec);

  /// Record host-0 power samples into the result (Fig 2/4 series).
  void set_record_power(bool record) { record_power_ = record; }

  /// Attach a structured-event sink for this run (call before run(); the
  /// sink must outlive it). Every flow's sender and receiver, every NIC
  /// port and the bottleneck queue then share one time-ordered stream.
  /// nullptr (the default) keeps tracing compiled out of the hot path —
  /// each event site is a single untaken branch.
  void set_trace_sink(trace::TraceSink* sink);

  /// Run until all flows complete (or the deadline hits) and report.
  ScenarioResult run();

  sim::Simulator& simulator() { return sim_; }

  /// The run's invariant auditor, or nullptr when `audit_interval` is zero.
  check::InvariantAuditor* auditor() { return auditor_.get(); }

 private:
  struct SenderHost;
  struct FlowState;

  void build_receiver_host();
  SenderHost& sender_host(int index);
  void start_flow(FlowState& flow);
  void pump_flow(FlowState& flow);
  void on_flow_complete(FlowState& flow);
  void collect_counters(ScenarioResult& result);

  ScenarioConfig config_;
  sim::Simulator sim_;
  sim::Rng rng_;
  std::unique_ptr<check::InvariantAuditor> auditor_;
  std::unique_ptr<net::Switch> switch_;
  std::vector<std::unique_ptr<SenderHost>> senders_;
  std::vector<std::unique_ptr<FlowState>> flows_;

  // Receiver side.
  class Demux;
  std::unique_ptr<Demux> receiver_stack_;
  std::unique_ptr<net::QueuedPort> rx_backlog_;
  std::unique_ptr<fault::ImpairedLink> impaired_link_;
  std::unique_ptr<net::DrrPort> drr_bottleneck_;
  std::unique_ptr<net::QueuedPort> receiver_nic_;
  std::unique_ptr<energy::HostEnergyMeter> receiver_meter_;
  std::unique_ptr<energy::CpuCore> receiver_core_;
  net::QueuedPort* bottleneck_port_ = nullptr;

  int completed_flows_ = 0;
  bool open_loop_ = false;
  bool metering_started_ = false;
  sim::SimTime experiment_start_ = sim::SimTime::zero();
  sim::SimTime last_completion_ = sim::SimTime::zero();
  bool record_power_ = false;
  trace::TraceSink* trace_ = nullptr;

  static constexpr net::HostId kReceiverHost = 0;
};

}  // namespace greencc::app
