#include "app/config_canon.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace greencc::app {

namespace {

/// FNV-1a 64-bit, duplicated from robust/journal.h to keep app/ free of a
/// dependency on the robust layer (robust already depends on app).
constexpr std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Appends "key=value;" pairs in a fixed order. Doubles are %.17g so the
/// canonical form distinguishes any two doubles that compare unequal.
class Canon {
 public:
  void field(const char* key, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    raw(key, buf);
  }
  void field(const char* key, std::int64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    raw(key, buf);
  }
  void field(const char* key, std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    raw(key, buf);
  }
  void field(const char* key, int v) {
    field(key, static_cast<std::int64_t>(v));
  }
  void field(const char* key, bool v) { raw(key, v ? "1" : "0"); }
  void field(const char* key, const std::string& v) { raw(key, v.c_str()); }
  void field(const char* key, units::Bytes v) { field(key, v.count()); }
  void field(const char* key, units::BitRate v) { field(key, v.bps()); }
  void field(const char* key, units::Power v) { field(key, v.watts()); }
  void field(const char* key, sim::SimTime v) { field(key, v.ns()); }

  void open(const char* section) { out_ << section << "{"; }
  void close() { out_ << "}"; }

  std::string str() const { return out_.str(); }

 private:
  void raw(const char* key, const char* value) {
    out_ << key << "=" << value << ";";
  }
  std::ostringstream out_;
};

void canon_tcp(Canon& c, const tcp::TcpConfig& tcp) {
  c.open("tcp");
  c.field("mtu", tcp.mtu_bytes);
  c.field("header", tcp.header_bytes);
  c.field("ack", tcp.ack_bytes);
  c.field("min_rto", tcp.min_rto);
  c.field("max_rto", tcp.max_rto);
  c.field("dupack", tcp.dupack_threshold);
  c.field("delack_segments", tcp.delack_segments);
  c.field("delack_timeout", tcp.delack_timeout);
  c.field("initial_cwnd", tcp.initial_cwnd);
  c.close();
}

void canon_aqm(Canon& c, const net::AqmConfig& aqm) {
  c.open("aqm");
  c.field("mode", static_cast<int>(aqm.mode));
  c.field("step", aqm.step_threshold_bytes);
  c.field("red_min", aqm.red_min_bytes);
  c.field("red_max", aqm.red_max_bytes);
  c.field("red_maxp", aqm.red_max_probability);
  c.field("red_weight", aqm.red_weight);
  c.field("red_idle", aqm.red_idle_packet_time);
  c.field("red_seed", aqm.red_seed);
  c.field("codel_target", aqm.codel_target);
  c.field("codel_interval", aqm.codel_interval);
  c.field("mtu", aqm.mtu_bytes);
  c.close();
}

void canon_power(Canon& c, const energy::PowerCalibration& p) {
  c.open("power");
  c.field("idle", p.idle_watts);
  c.field("net_amp", p.net_amplitude_watts);
  c.field("net_util_scale", p.net_util_scale);
  c.field("omega", p.omega_watts_per_pps);
  c.field("stress_core", p.stress_core_watts);
  c.field("phi_amp", p.phi_decay_amp);
  c.field("phi_floor", p.phi_floor);
  c.field("phi_rate", p.phi_decay_rate);
  c.field("chi", p.chi_watts_per_gbps);
  c.field("cores", p.total_cores);
  c.field("fig2_util", p.fig2_util_per_gbps);
  c.field("fig2_pps", p.fig2_pps_per_gbps);
  c.close();
}

void canon_work(Canon& c, const energy::WorkCalibration& w) {
  c.open("work");
  c.field("pkt", w.pkt_ns);
  c.field("byte", w.byte_ns);
  c.field("ack", w.ack_ns);
  c.field("retx", w.retx_ns);
  c.field("timeout", w.timeout_ns);
  c.field("rx_pkt", w.rx_pkt_ns);
  c.field("rx_byte", w.rx_byte_ns);
  c.field("rx_drop", w.rx_drop_ns);
  c.field("rx_backlog", w.rx_backlog_packets);
  c.close();
}

void canon_faults(Canon& c, const fault::FaultPlan& plan) {
  c.open("faults");
  c.field("install", plan.install);
  const fault::ImpairmentConfig& imp = plan.impair;
  c.field("loss", imp.loss_rate);
  c.field("ge_p_bad", imp.ge_p_bad);
  c.field("ge_p_good", imp.ge_p_good);
  c.field("ge_loss_bad", imp.ge_loss_bad);
  c.field("corrupt", imp.corrupt_rate);
  c.field("reorder", imp.reorder_rate);
  c.field("reorder_delay", imp.reorder_delay);
  c.field("dup", imp.duplicate_rate);
  c.field("jitter", imp.jitter_max);
  c.field("seed", imp.seed);
  c.open("events");
  for (const fault::FaultEvent& ev : plan.schedule.events()) {
    c.field("at", ev.at);
    c.field("kind", static_cast<int>(ev.kind));
    c.field("rate", ev.rate);
    c.field("delay", ev.delay);
  }
  c.close();
  c.close();
}

void canon_flow(Canon& c, const FlowSpec& spec) {
  c.open("flow");
  c.field("cca", spec.cca);
  c.field("bytes", spec.bytes);
  c.field("rate_limit", spec.rate_limit);
  c.field("start", spec.start_time);
  c.field("sender_host", spec.sender_host);
  c.field("start_after", spec.start_after_flow);
  c.field("unlimit_after", spec.unlimit_after_flow);
  c.field("weight", spec.weight);
  c.close();
}

void canon_config(Canon& c, const ScenarioConfig& config) {
  // Bump the version tag whenever a field is added or the rendering of an
  // existing one changes: every cache and journal keyed off config_hash
  // then regenerates instead of silently matching a stale fingerprint.
  c.open("scenario/v1");
  canon_tcp(c, config.tcp);
  c.field("bottleneck", config.bottleneck_rate);
  c.field("link_delay", config.link_delay);
  c.field("switch_queue", config.switch_queue_bytes);
  c.field("ecn_threshold", config.ecn_threshold_bytes);
  canon_aqm(c, config.bottleneck_aqm);
  c.field("nic_ports", config.sender_nic_ports);
  c.field("drr", config.use_drr_bottleneck);
  c.field("stress_cores", config.stress_cores);
  canon_power(c, config.power);
  canon_work(c, config.work);
  c.field("meter_tick", config.meter_tick);
  c.field("report_interval", config.report_interval);
  c.field("trace_interval", config.trace_interval);
  c.field("meter_receiver", config.meter_receiver);
  c.field("work_jitter", config.work_jitter);
  c.field("seed", config.seed);
  c.field("deadline", config.deadline);
  c.field("audit_interval", config.audit_interval);
  canon_faults(c, config.faults);
  c.close();
}

}  // namespace

std::string canonical_string(const FlowSpec& spec) {
  Canon c;
  canon_flow(c, spec);
  return c.str();
}

std::string canonical_string(const ScenarioConfig& config) {
  Canon c;
  canon_config(c, config);
  return c.str();
}

std::string canonical_string(const ScenarioConfig& config,
                             const std::vector<FlowSpec>& flows) {
  Canon c;
  canon_config(c, config);
  for (const FlowSpec& spec : flows) canon_flow(c, spec);
  return c.str();
}

std::uint64_t config_hash(const ScenarioConfig& config) {
  return fnv1a64(canonical_string(config));
}

std::uint64_t config_hash(const ScenarioConfig& config,
                          const std::vector<FlowSpec>& flows) {
  return fnv1a64(canonical_string(config, flows));
}

bool operator==(const FlowSpec& a, const FlowSpec& b) {
  return canonical_string(a) == canonical_string(b);
}
bool operator!=(const FlowSpec& a, const FlowSpec& b) { return !(a == b); }

bool operator==(const ScenarioConfig& a, const ScenarioConfig& b) {
  return canonical_string(a) == canonical_string(b);
}
bool operator!=(const ScenarioConfig& a, const ScenarioConfig& b) {
  return !(a == b);
}

}  // namespace greencc::app
