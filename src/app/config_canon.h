#pragma once

// Canonical serialization of ScenarioConfig / FlowSpec.
//
// One deterministic, version-tagged text rendering covering *every* field
// that can change a run's numbers. Three consumers:
//
//   equality   operator== on configs is defined as canonical-string
//              equality, so "same config" always means "same bytes in the
//              canonical form" — there is no second, subtly different
//              member-by-member notion to drift out of sync;
//   hashing    config_hash() = FNV-1a over the canonical string. The grid
//              cache and every sweep journal bind to this hash instead of
//              hand-maintained ad-hoc strings that silently miss fields
//              added later;
//   round-trip the scenario DSL's property test parses a file, compiles
//              it, re-serializes the document, re-parses and re-compiles —
//              and asserts the two canonical strings are identical.
//
// Doubles are rendered with %.17g (exact IEEE-754 round-trip), integers in
// decimal, times as nanosecond counts. Adding a field to ScenarioConfig
// without extending the canonical form is caught by the coverage test in
// tests/test_scenario_dsl.cc (sizeof tripwire).

#include <cstdint>
#include <string>
#include <vector>

#include "app/scenario.h"

namespace greencc::app {

/// Canonical text form of one flow spec.
std::string canonical_string(const FlowSpec& spec);

/// Canonical text form of a full scenario config (all nested structs:
/// tcp, AQM, calibration, faults).
std::string canonical_string(const ScenarioConfig& config);

/// Canonical text form of a whole experiment cell: the config plus its
/// flows in add order.
std::string canonical_string(const ScenarioConfig& config,
                             const std::vector<FlowSpec>& flows);

/// FNV-1a 64-bit hash of the canonical string — the fingerprint caches and
/// journals bind to.
std::uint64_t config_hash(const ScenarioConfig& config);
std::uint64_t config_hash(const ScenarioConfig& config,
                          const std::vector<FlowSpec>& flows);

/// Equality via canonical form. Two configs compare equal exactly when
/// every number a run can observe is identical.
bool operator==(const FlowSpec& a, const FlowSpec& b);
bool operator!=(const FlowSpec& a, const FlowSpec& b);
bool operator==(const ScenarioConfig& a, const ScenarioConfig& b);
bool operator!=(const ScenarioConfig& a, const ScenarioConfig& b);

}  // namespace greencc::app
