#pragma once

// Fluent builders over ScenarioConfig / WorkloadConfig — the construction
// API the scenario DSL compiler targets (src/scenario_dsl/compile.cc), and
// a friendlier front door than struct-field poking for hand-written
// experiments. A builder is a value: copy it to fork a family of variants
// from a shared base, exactly what sweep expansion does per cell.

#include <memory>
#include <string>
#include <vector>

#include "app/scenario.h"
#include "app/workload.h"

namespace greencc::app {

class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;
  explicit ScenarioBuilder(ScenarioConfig base) : config_(std::move(base)) {}

  ScenarioBuilder& seed(std::uint64_t s) {
    config_.seed = s;
    return *this;
  }
  ScenarioBuilder& mtu(units::Bytes bytes) {
    config_.tcp.mtu_bytes = bytes;
    return *this;
  }
  ScenarioBuilder& bottleneck(units::BitRate rate) {
    config_.bottleneck_rate = rate;
    return *this;
  }
  ScenarioBuilder& link_delay(sim::SimTime delay) {
    config_.link_delay = delay;
    return *this;
  }
  ScenarioBuilder& switch_queue(units::Bytes bytes) {
    config_.switch_queue_bytes = bytes;
    return *this;
  }
  ScenarioBuilder& ecn_threshold(units::Bytes bytes) {
    config_.ecn_threshold_bytes = bytes;
    return *this;
  }
  ScenarioBuilder& aqm(const net::AqmConfig& aqm) {
    config_.bottleneck_aqm = aqm;
    return *this;
  }
  ScenarioBuilder& nic_ports(int ports) {
    config_.sender_nic_ports = ports;
    return *this;
  }
  ScenarioBuilder& drr_bottleneck(bool on) {
    config_.use_drr_bottleneck = on;
    return *this;
  }
  ScenarioBuilder& stress_cores(int cores) {
    config_.stress_cores = cores;
    return *this;
  }
  ScenarioBuilder& meter_receiver(bool on) {
    config_.meter_receiver = on;
    return *this;
  }
  ScenarioBuilder& work_jitter(double jitter) {
    config_.work_jitter = jitter;
    return *this;
  }
  ScenarioBuilder& deadline(sim::SimTime t) {
    config_.deadline = t;
    return *this;
  }
  ScenarioBuilder& audit_interval(sim::SimTime t) {
    config_.audit_interval = t;
    return *this;
  }
  ScenarioBuilder& report_interval(sim::SimTime t) {
    config_.report_interval = t;
    return *this;
  }
  ScenarioBuilder& trace_interval(sim::SimTime t) {
    config_.trace_interval = t;
    return *this;
  }
  ScenarioBuilder& power(const energy::PowerCalibration& p) {
    config_.power = p;
    return *this;
  }
  ScenarioBuilder& work(const energy::WorkCalibration& w) {
    config_.work = w;
    return *this;
  }
  ScenarioBuilder& faults(const fault::FaultPlan& plan) {
    config_.faults = plan;
    return *this;
  }

  ScenarioBuilder& add_flow(FlowSpec spec) {
    flows_.push_back(std::move(spec));
    return *this;
  }

  /// Direct access for sweep-axis application (sweep cells mutate a copy
  /// of the base builder through these).
  ScenarioConfig& config() { return config_; }
  const ScenarioConfig& config() const { return config_; }
  std::vector<FlowSpec>& flows() { return flows_; }
  const std::vector<FlowSpec>& flows() const { return flows_; }

  /// Construct the Scenario with every flow added, ready to run().
  std::unique_ptr<Scenario> build() const;

  /// Build and run in one step.
  ScenarioResult run() const;

 private:
  ScenarioConfig config_;
  std::vector<FlowSpec> flows_;
};

class WorkloadBuilder {
 public:
  WorkloadBuilder() = default;

  WorkloadBuilder& cca(std::string name) {
    config_.cca = std::move(name);
    return *this;
  }
  WorkloadBuilder& mtu(units::Bytes bytes) {
    config_.mtu_bytes = bytes;
    return *this;
  }
  WorkloadBuilder& bottleneck(units::BitRate rate) {
    config_.bottleneck_rate = rate;
    return *this;
  }
  WorkloadBuilder& load(double fraction) {
    config_.load = fraction;
    return *this;
  }
  WorkloadBuilder& sender_hosts(int hosts) {
    config_.sender_hosts = hosts;
    return *this;
  }
  WorkloadBuilder& horizon(sim::SimTime t) {
    config_.horizon = t;
    return *this;
  }
  WorkloadBuilder& seed(std::uint64_t s) {
    config_.seed = s;
    return *this;
  }
  /// Flow-size distribution by name: "fixed:<bytes>", "websearch",
  /// "datamining". Throws std::invalid_argument on anything else.
  WorkloadBuilder& sizes(const std::string& spec);

  WorkloadConfig& config() { return config_; }
  const WorkloadConfig& config() const { return config_; }

  /// Run the open-loop workload (keeps the distribution alive for the
  /// duration of the call).
  WorkloadResult run() const;

 private:
  WorkloadConfig config_;
  std::shared_ptr<FlowSizeDistribution> sizes_;
};

}  // namespace greencc::app
