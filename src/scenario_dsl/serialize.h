#pragma once

// Canonical re-serialization of a ScenarioDoc back to DSL text. Every
// exposed key is written explicitly (no reliance on defaults), times as
// nanosecond counts, sizes as byte integers, rates in bps, doubles as
// %.17g — so serialize(parse(text)) always re-parses, and re-parsing
// compiles to a bit-identical app::ScenarioConfig. The round-trip property
// test in tests/test_scenario_dsl.cc holds the DSL to exactly that.

#include <string>

#include "scenario_dsl/doc.h"

namespace greencc::dsl {

std::string serialize_scenario(const ScenarioDoc& doc);

}  // namespace greencc::dsl
